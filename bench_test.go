// Benchmarks: one per reproduced table/figure (driving the same experiment
// code cmd/milexp uses, at a reduced run length so `go test -bench` stays
// tractable), plus micro-benchmarks of the codec hot paths.
package mil_test

import (
	"math/rand"
	"testing"

	"mil/internal/bitblock"
	"mil/internal/code"
	"mil/internal/experiments"
	"mil/internal/sim"
	"mil/internal/workload"
)

// benchOps keeps figure benchmarks short; the real numbers come from
// cmd/milexp with the full budget.
const benchOps = 150

// benchFigure runs one experiment generator end to end per iteration.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	var gen experiments.Generator
	for _, g := range experiments.Generators() {
		if g.ID == id {
			gen = g
		}
	}
	if gen.Run == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOps)
		t, err := gen.Run(r)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure1(b *testing.B)   { benchFigure(b, "Figure 1") }
func BenchmarkFigure2(b *testing.B)   { benchFigure(b, "Figure 2") }
func BenchmarkFigure4(b *testing.B)   { benchFigure(b, "Figure 4") }
func BenchmarkFigure5(b *testing.B)   { benchFigure(b, "Figure 5") }
func BenchmarkFigure6(b *testing.B)   { benchFigure(b, "Figure 6") }
func BenchmarkFigure7(b *testing.B)   { benchFigure(b, "Figure 7") }
func BenchmarkTable4(b *testing.B)    { benchFigure(b, "Table 4") }
func BenchmarkFigure16a(b *testing.B) { benchFigure(b, "Figure 16(a)") }
func BenchmarkFigure16b(b *testing.B) { benchFigure(b, "Figure 16(b)") }
func BenchmarkFigure17a(b *testing.B) { benchFigure(b, "Figure 17(a)") }
func BenchmarkFigure17b(b *testing.B) { benchFigure(b, "Figure 17(b)") }
func BenchmarkFigure18a(b *testing.B) { benchFigure(b, "Figure 18(a)") }
func BenchmarkFigure18b(b *testing.B) { benchFigure(b, "Figure 18(b)") }
func BenchmarkFigure19a(b *testing.B) { benchFigure(b, "Figure 19(a)") }
func BenchmarkFigure19b(b *testing.B) { benchFigure(b, "Figure 19(b)") }
func BenchmarkFigure20(b *testing.B)  { benchFigure(b, "Figure 20") }
func BenchmarkFigure21(b *testing.B)  { benchFigure(b, "Figure 21") }
func BenchmarkFigure22(b *testing.B)  { benchFigure(b, "Figure 22") }

// BenchmarkSimulatorCycle measures raw simulator throughput: one full GUPS
// MiL run per iteration.
func BenchmarkSimulatorCycle(b *testing.B) {
	bm, err := workload.ByName("GUPS")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			System: sim.Server, Scheme: "mil", Benchmark: bm, MemOpsPerThread: benchOps,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Mem.ColumnCommands() == 0 {
			b.Fatal("no traffic")
		}
	}
}

// Codec micro-benchmarks: encode/decode throughput per 64-byte block.

func randomBlocks(n int) []bitblock.Block {
	rng := rand.New(rand.NewSource(42))
	out := make([]bitblock.Block, n)
	for i := range out {
		rng.Read(out[i][:])
	}
	return out
}

func benchEncode(b *testing.B, c code.Codec) {
	blocks := randomBlocks(64)
	b.SetBytes(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bu := c.Encode(&blocks[i%len(blocks)])
		if bu.Beats != c.Beats() {
			b.Fatal("bad burst")
		}
	}
}

func benchRoundTrip(b *testing.B, c code.Codec) {
	blocks := randomBlocks(64)
	b.SetBytes(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := &blocks[i%len(blocks)]
		if got, err := c.Decode(c.Encode(blk)); err != nil || got != *blk {
			b.Fatal("round trip failed")
		}
	}
}

func BenchmarkEncodeDBI(b *testing.B)     { benchEncode(b, code.DBI{}) }
func BenchmarkEncodeMiLC(b *testing.B)    { benchEncode(b, code.MiLC{}) }
func BenchmarkEncodeLWC3(b *testing.B)    { benchEncode(b, code.LWC3{}) }
func BenchmarkEncodeCAFO2(b *testing.B)   { benchEncode(b, code.NewCAFO(2)) }
func BenchmarkEncodeCAFO4(b *testing.B)   { benchEncode(b, code.NewCAFO(4)) }
func BenchmarkRoundTripDBI(b *testing.B)  { benchRoundTrip(b, code.DBI{}) }
func BenchmarkRoundTripMiLC(b *testing.B) { benchRoundTrip(b, code.MiLC{}) }
func BenchmarkRoundTripLWC3(b *testing.B) { benchRoundTrip(b, code.LWC3{}) }
