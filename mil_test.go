package mil_test

import (
	"testing"

	"mil"
)

func TestFacadeRun(t *testing.T) {
	res, err := mil.Run(mil.Config{
		System: mil.Server, Scheme: "mil", Benchmark: "GUPS",
		MemOpsPerThread: 200, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.ColumnCommands() == 0 || res.SystemJ() <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestFacadeRejectsUnknownBenchmark(t *testing.T) {
	if _, err := mil.Run(mil.Config{System: mil.Server, Scheme: "mil", Benchmark: "nope"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFacadeLists(t *testing.T) {
	if len(mil.Benchmarks()) != 11 {
		t.Fatalf("benchmarks = %v", mil.Benchmarks())
	}
	if len(mil.Schemes()) == 0 {
		t.Fatal("no schemes")
	}
}

func TestFacadeCodec(t *testing.T) {
	c, err := mil.NewCodec("milc")
	if err != nil {
		t.Fatal(err)
	}
	blk := mil.BlockFromBytes([]byte("facade-level round trip check"))
	if got, err := c.Decode(c.Encode(&blk)); err != nil || got != blk {
		t.Fatal("round trip failed")
	}
	if _, err := mil.NewCodec("bogus"); err == nil {
		t.Fatal("bogus codec accepted")
	}
}

func TestFacadeLookaheadOverride(t *testing.T) {
	res, err := mil.Run(mil.Config{
		System: mil.Server, Scheme: "mil", Benchmark: "MM",
		MemOpsPerThread: 150, LookaheadX: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CPUCycles <= 0 {
		t.Fatal("no cycles")
	}
}

func TestMobileFacadeRun(t *testing.T) {
	res, err := mil.Run(mil.Config{
		System: mil.Mobile, Scheme: "baseline", Benchmark: "HISTOGRAM",
		MemOpsPerThread: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.CostUnits == 0 {
		t.Fatal("no IO cost accounted")
	}
}
