package bitblock

import (
	"fmt"
	"math/bits"
	"strings"
)

// Bits is a growable bit vector used to assemble codewords. Bit 0 is the
// first bit appended.
type Bits struct {
	words []uint64
	n     int
}

// NewBits returns a bit vector with capacity hint nbits.
func NewBits(nbits int) *Bits {
	return &Bits{words: make([]uint64, 0, (nbits+63)/64)}
}

// Len returns the number of bits stored.
func (b *Bits) Len() int { return b.n }

// Append adds the low nbits of v, least-significant bit first.
func (b *Bits) Append(v uint64, nbits int) {
	if nbits < 0 || nbits > 64 {
		panic(fmt.Sprintf("bitblock: Append nbits %d out of range", nbits))
	}
	if nbits == 0 {
		// A zero-length append at a word boundary must not grow words: the
		// stale word would sit ahead of n and corrupt later appends.
		return
	}
	if nbits < 64 {
		v &= (1 << nbits) - 1
	}
	off := b.n % 64
	if off == 0 {
		b.words = append(b.words, v)
	} else {
		b.words[len(b.words)-1] |= v << off
		if off+nbits > 64 {
			b.words = append(b.words, v>>(64-off))
		}
	}
	b.n += nbits
}

// AppendBit adds a single bit.
func (b *Bits) AppendBit(v bool) {
	if v {
		b.Append(1, 1)
	} else {
		b.Append(0, 1)
	}
}

// Get returns bit i.
func (b *Bits) Get(i int) bool {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitblock: Get(%d) out of range [0,%d)", i, b.n))
	}
	return b.words[i/64]>>(i%64)&1 == 1
}

// Set assigns bit i.
func (b *Bits) Set(i int, v bool) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitblock: Set(%d) out of range [0,%d)", i, b.n))
	}
	if v {
		b.words[i/64] |= 1 << (i % 64)
	} else {
		b.words[i/64] &^= 1 << (i % 64)
	}
}

// Uint64 extracts nbits starting at bit offset off, least-significant bit
// first.
func (b *Bits) Uint64(off, nbits int) uint64 {
	if nbits < 0 || nbits > 64 || off < 0 || off+nbits > b.n {
		panic(fmt.Sprintf("bitblock: Uint64(%d,%d) out of range [0,%d)", off, nbits, b.n))
	}
	if nbits == 0 {
		return 0
	}
	w, s := off/64, off%64
	v := b.words[w] >> s
	if s+nbits > 64 {
		v |= b.words[w+1] << (64 - s)
	}
	if nbits < 64 {
		v &= (1 << nbits) - 1
	}
	return v
}

// CountOnes returns the number of 1 bits.
func (b *Bits) CountOnes() int {
	n := 0
	for i, w := range b.words {
		if (i+1)*64 > b.n {
			w &= (1 << (b.n - i*64)) - 1
		}
		n += bits.OnesCount64(w)
	}
	return n
}

// CountZeros returns the number of 0 bits.
func (b *Bits) CountZeros() int { return b.n - b.CountOnes() }

// String renders the vector as 0s and 1s, bit 0 first (useful in tests).
func (b *Bits) String() string {
	var sb strings.Builder
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
