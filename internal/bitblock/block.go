// Package bitblock provides the bit-level data structures shared by the
// coding schemes and the energy model: 512-bit cache blocks, the per-chip
// lane layout of Figure 12, arbitrary-length bit vectors for codewords, and
// bus bursts (pins x beats) with zero and transition counting.
package bitblock

import "math/bits"

// BlockBytes is the size of a cache block in bytes (64B lines throughout the
// paper's two systems).
const BlockBytes = 64

// Chips is the number of x8 DRAM chips in a rank (Figure 12(a)).
const Chips = 8

// LaneBits is the number of bits each chip contributes to a block.
const LaneBits = 64

// Block is a 512-bit cache block. Byte b*8+c is carried by chip c during
// beat b of the burst, matching the critical-word-first layout of
// Figure 12(a).
type Block [BlockBytes]byte

// Lane returns chip c's 64-bit slice of the block. Bit 8*b+i of the result
// is bit i of the byte chip c transmits during beat b, so the low byte is
// the first beat.
func (blk *Block) Lane(c int) uint64 {
	var v uint64
	for b := 0; b < 8; b++ {
		v |= uint64(blk[b*Chips+c]) << (8 * b)
	}
	return v
}

// SetLane stores a 64-bit chip slice back into the block, inverting Lane.
func (blk *Block) SetLane(c int, v uint64) {
	for b := 0; b < 8; b++ {
		blk[b*Chips+c] = byte(v >> (8 * b))
	}
}

// CountZeros returns the number of 0 bits in the block.
func (blk *Block) CountZeros() int {
	return 8*BlockBytes - blk.CountOnes()
}

// CountOnes returns the number of 1 bits in the block.
func (blk *Block) CountOnes() int {
	n := 0
	for _, b := range blk {
		n += bits.OnesCount8(b)
	}
	return n
}

// FromBytes builds a Block from up to 64 bytes of data; shorter inputs are
// zero padded.
func FromBytes(p []byte) Block {
	var blk Block
	copy(blk[:], p)
	return blk
}
