package bitblock

import (
	"fmt"
	"math/bits"
)

// Burst is the physical appearance of one data transfer on the bus: Beats
// consecutive bit-times over Width pins. Pins that a coding scheme leaves
// undriven are recorded in the driven mask so that they cost no IO energy
// (an undriven POD pin parks at VDDQ, the free level).
type Burst struct {
	Width int // pins
	Beats int
	// beat b occupies bits [b*Width, (b+1)*Width) of data; pin p of beat b
	// is bit b*Width+p.
	data   []uint64
	driven []uint64 // per-pin mask, 1 = pin carries data during this burst
}

// NewBurst allocates a zeroed burst. All pins start driven.
func NewBurst(width, beats int) *Burst {
	bu := &Burst{}
	bu.Reset(width, beats)
	return bu
}

// Reset reshapes the burst to width x beats, zeroes every bit, and marks all
// pins driven, reusing the existing backing arrays when they are large
// enough. It is the allocation-free equivalent of NewBurst for callers that
// keep a scratch burst across operations.
func (bu *Burst) Reset(width, beats int) {
	if width <= 0 || width > 128 || beats <= 0 {
		panic(fmt.Sprintf("bitblock: bad burst dims %dx%d", width, beats))
	}
	bu.Width, bu.Beats = width, beats
	nd := (width*beats + 63) / 64
	if cap(bu.data) < nd {
		bu.data = make([]uint64, nd)
	} else {
		bu.data = bu.data[:nd]
		for i := range bu.data {
			bu.data[i] = 0
		}
	}
	nw := (width + 63) / 64
	if cap(bu.driven) < nw {
		bu.driven = make([]uint64, nw)
	} else {
		bu.driven = bu.driven[:nw]
	}
	for i := range bu.driven {
		bu.driven[i] = ^uint64(0)
	}
	if width%64 != 0 {
		bu.driven[nw-1] = 1<<(width%64) - 1
	}
}

// Bit returns the value on pin p during beat b.
func (bu *Burst) Bit(beat, pin int) bool {
	i := bu.index(beat, pin)
	return bu.data[i/64]>>(i%64)&1 == 1
}

// SetBit assigns the value on pin p during beat b.
func (bu *Burst) SetBit(beat, pin int, v bool) {
	i := bu.index(beat, pin)
	if v {
		bu.data[i/64] |= 1 << (i % 64)
	} else {
		bu.data[i/64] &^= 1 << (i % 64)
	}
}

func (bu *Burst) index(beat, pin int) int {
	if beat < 0 || beat >= bu.Beats || pin < 0 || pin >= bu.Width {
		panic(fmt.Sprintf("bitblock: burst index (%d,%d) out of %dx%d", beat, pin, bu.Beats, bu.Width))
	}
	return beat*bu.Width + pin
}

// SetBeat assigns up to 64 pins of beat b starting at pin base from the low
// bits of v.
func (bu *Burst) SetBeat(beat, base int, v uint64, nbits int) {
	if nbits <= 0 {
		return
	}
	if nbits > 64 {
		panic(fmt.Sprintf("bitblock: SetBeat nbits %d", nbits))
	}
	_ = bu.index(beat, base+nbits-1) // bounds check once
	if nbits < 64 {
		v &= 1<<nbits - 1
	}
	i := beat*bu.Width + base
	w, s := i/64, i%64
	mask := uint64(1)<<s - 1
	if s+nbits < 64 {
		mask |= ^uint64(0) << (s + nbits)
	}
	bu.data[w] = bu.data[w]&mask | v<<s
	if s+nbits > 64 {
		rem := s + nbits - 64
		bu.data[w+1] = bu.data[w+1]&(^uint64(0)<<rem) | v>>(64-s)
	}
}

// BeatBits extracts nbits pins of beat b starting at pin base.
func (bu *Burst) BeatBits(beat, base, nbits int) uint64 {
	if nbits <= 0 {
		return 0
	}
	if nbits > 64 {
		panic(fmt.Sprintf("bitblock: BeatBits nbits %d", nbits))
	}
	_ = bu.index(beat, base+nbits-1)
	i := beat*bu.Width + base
	w, s := i/64, i%64
	v := bu.data[w] >> s
	if s+nbits > 64 {
		v |= bu.data[w+1] << (64 - s)
	}
	if nbits < 64 {
		v &= 1<<nbits - 1
	}
	return v
}

// SetDriven marks pin p as driven (true) or parked (false) for the whole
// burst. Parked pins contribute no zeros and no transitions.
func (bu *Burst) SetDriven(pin int, v bool) {
	if pin < 0 || pin >= bu.Width {
		panic(fmt.Sprintf("bitblock: pin %d out of range", pin))
	}
	if v {
		bu.driven[pin/64] |= 1 << (pin % 64)
	} else {
		bu.driven[pin/64] &^= 1 << (pin % 64)
	}
}

// Driven reports whether pin p carries data during this burst.
func (bu *Burst) Driven(pin int) bool {
	return bu.driven[pin/64]>>(pin%64)&1 == 1
}

// DrivenPins returns the number of driven pins.
func (bu *Burst) DrivenPins() int {
	n := 0
	for _, w := range bu.driven {
		n += bits.OnesCount64(w)
	}
	return n
}

// DrivenWords returns the per-pin driven mask as two 64-bit words: pin p is
// driven iff bit p of hi<<64|lo is set. Bits at and above Width are zero.
func (bu *Burst) DrivenWords() (lo, hi uint64) {
	lo = bu.driven[0]
	if len(bu.driven) > 1 {
		hi = bu.driven[1]
	}
	return lo, hi
}

// BeatWords extracts all Width pins of beat b as two 64-bit words: pin p is
// bit p of hi<<64|lo. Bits at and above Width are zero. Together with
// SetBeatWords it is the word-parallel alternative to per-pin Bit/SetBit on
// the counting and serialization hot paths.
func (bu *Burst) BeatWords(beat int) (lo, hi uint64) {
	if beat < 0 || beat >= bu.Beats {
		panic(fmt.Sprintf("bitblock: beat %d out of %d", beat, bu.Beats))
	}
	i := beat * bu.Width
	w, s := i/64, i%64
	lo = bu.data[w] >> s
	if s > 0 && w+1 < len(bu.data) {
		lo |= bu.data[w+1] << (64 - s)
	}
	if bu.Width < 64 {
		return lo & (1<<bu.Width - 1), 0
	}
	if bu.Width == 64 {
		return lo, 0
	}
	if w+1 < len(bu.data) {
		hi = bu.data[w+1] >> s
	}
	if s > 0 && w+2 < len(bu.data) {
		hi |= bu.data[w+2] << (64 - s)
	}
	if bu.Width < 128 {
		hi &= 1<<(bu.Width-64) - 1
	}
	return lo, hi
}

// SetBeatWords assigns all Width pins of beat b from two 64-bit words (pin p
// = bit p of hi<<64|lo); bits at and above Width are ignored.
func (bu *Burst) SetBeatWords(beat int, lo, hi uint64) {
	if bu.Width > 64 {
		bu.SetBeat(beat, 0, lo, 64)
		bu.SetBeat(beat, 64, hi, bu.Width-64)
		return
	}
	bu.SetBeat(beat, 0, lo, bu.Width)
}

// ExtendBeats grows the burst to total beats in place, driving every driven
// pin high in the appended beats (the free pad level on a POD interface);
// undriven pins stay low. Used by burst-stretching codecs and the write-CRC
// path to avoid re-copying the data beats.
func (bu *Burst) ExtendBeats(total int) {
	if total < bu.Beats {
		panic(fmt.Sprintf("bitblock: cannot shrink %d-beat burst to %d", bu.Beats, total))
	}
	if total == bu.Beats {
		return
	}
	old := bu.Beats
	nd := (bu.Width*total + 63) / 64
	if cap(bu.data) >= nd {
		bu.data = bu.data[:nd]
	} else {
		grown := make([]uint64, nd)
		copy(grown, bu.data)
		bu.data = grown
	}
	bu.Beats = total
	d0, d1 := bu.DrivenWords()
	for b := old; b < total; b++ {
		bu.SetBeatWords(b, d0, d1)
	}
}

// CountZeros returns the number of 0 bit-times on driven pins, the quantity
// the DDR4 POD IO energy is proportional to (Section 2.1.1). It runs
// word-parallel: two XOR/AND/popcount words per beat instead of a per-pin
// walk.
func (bu *Burst) CountZeros() int {
	d0, d1 := bu.DrivenWords()
	ones := 0
	for b := 0; b < bu.Beats; b++ {
		lo, hi := bu.BeatWords(b)
		ones += bits.OnesCount64(lo&d0) + bits.OnesCount64(hi&d1)
	}
	return bu.Beats*bu.DrivenPins() - ones
}

// CountOnes returns the number of 1 bit-times on driven pins.
func (bu *Burst) CountOnes() int {
	return bu.Beats*bu.DrivenPins() - bu.CountZeros()
}

// BusState is the last value driven on each pin of a (<=128-wire) bus,
// carried between bursts so transition counting (LPDDR3, Section 2.1.2)
// spans burst boundaries.
type BusState struct {
	last [2]uint64
}

// Pin returns the current level of pin p.
func (s *BusState) Pin(p int) bool { return s.last[p/64]>>(p%64)&1 == 1 }

// SetPin forces pin p's level, used to initialize the idle bus.
func (s *BusState) SetPin(p int, v bool) {
	if v {
		s.last[p/64] |= 1 << (p % 64)
	} else {
		s.last[p/64] &^= 1 << (p % 64)
	}
}

// Transitions counts the wire toggles this burst causes on driven pins given
// the bus state before the burst, and advances the state. Undriven pins hold
// their previous level. It runs word-parallel: each beat is two
// XOR-with-state/AND-driven/popcount words, and the state advances by mask
// merge instead of per-pin stores.
func (bu *Burst) Transitions(s *BusState) int {
	d0, d1 := bu.DrivenWords()
	n := 0
	for b := 0; b < bu.Beats; b++ {
		lo, hi := bu.BeatWords(b)
		n += bits.OnesCount64((lo^s.last[0])&d0) + bits.OnesCount64((hi^s.last[1])&d1)
		s.last[0] = s.last[0]&^d0 | lo&d0
		s.last[1] = s.last[1]&^d1 | hi&d1
	}
	return n
}

// TotalBits returns beats x driven pins, the bus occupancy of the burst.
func (bu *Burst) TotalBits() int { return bu.Beats * bu.DrivenPins() }
