package bitblock

import (
	"fmt"
	"math/bits"
)

// Burst is the physical appearance of one data transfer on the bus: Beats
// consecutive bit-times over Width pins. Pins that a coding scheme leaves
// undriven are recorded in the driven mask so that they cost no IO energy
// (an undriven POD pin parks at VDDQ, the free level).
type Burst struct {
	Width int // pins
	Beats int
	// beat b occupies bits [b*Width, (b+1)*Width) of data; pin p of beat b
	// is bit b*Width+p.
	data   []uint64
	driven []uint64 // per-pin mask, 1 = pin carries data during this burst
}

// NewBurst allocates a zeroed burst. All pins start driven.
func NewBurst(width, beats int) *Burst {
	if width <= 0 || width > 128 || beats <= 0 {
		panic(fmt.Sprintf("bitblock: bad burst dims %dx%d", width, beats))
	}
	n := width * beats
	bu := &Burst{
		Width:  width,
		Beats:  beats,
		data:   make([]uint64, (n+63)/64),
		driven: make([]uint64, (width+63)/64),
	}
	for p := 0; p < width; p++ {
		bu.driven[p/64] |= 1 << (p % 64)
	}
	return bu
}

// Bit returns the value on pin p during beat b.
func (bu *Burst) Bit(beat, pin int) bool {
	i := bu.index(beat, pin)
	return bu.data[i/64]>>(i%64)&1 == 1
}

// SetBit assigns the value on pin p during beat b.
func (bu *Burst) SetBit(beat, pin int, v bool) {
	i := bu.index(beat, pin)
	if v {
		bu.data[i/64] |= 1 << (i % 64)
	} else {
		bu.data[i/64] &^= 1 << (i % 64)
	}
}

func (bu *Burst) index(beat, pin int) int {
	if beat < 0 || beat >= bu.Beats || pin < 0 || pin >= bu.Width {
		panic(fmt.Sprintf("bitblock: burst index (%d,%d) out of %dx%d", beat, pin, bu.Beats, bu.Width))
	}
	return beat*bu.Width + pin
}

// SetBeat assigns up to 64 pins of beat b starting at pin base from the low
// bits of v.
func (bu *Burst) SetBeat(beat, base int, v uint64, nbits int) {
	if nbits <= 0 {
		return
	}
	if nbits > 64 {
		panic(fmt.Sprintf("bitblock: SetBeat nbits %d", nbits))
	}
	_ = bu.index(beat, base+nbits-1) // bounds check once
	if nbits < 64 {
		v &= 1<<nbits - 1
	}
	i := beat*bu.Width + base
	w, s := i/64, i%64
	mask := uint64(1)<<s - 1
	if s+nbits < 64 {
		mask |= ^uint64(0) << (s + nbits)
	}
	bu.data[w] = bu.data[w]&mask | v<<s
	if s+nbits > 64 {
		rem := s + nbits - 64
		bu.data[w+1] = bu.data[w+1]&(^uint64(0)<<rem) | v>>(64-s)
	}
}

// BeatBits extracts nbits pins of beat b starting at pin base.
func (bu *Burst) BeatBits(beat, base, nbits int) uint64 {
	if nbits <= 0 {
		return 0
	}
	if nbits > 64 {
		panic(fmt.Sprintf("bitblock: BeatBits nbits %d", nbits))
	}
	_ = bu.index(beat, base+nbits-1)
	i := beat*bu.Width + base
	w, s := i/64, i%64
	v := bu.data[w] >> s
	if s+nbits > 64 {
		v |= bu.data[w+1] << (64 - s)
	}
	if nbits < 64 {
		v &= 1<<nbits - 1
	}
	return v
}

// SetDriven marks pin p as driven (true) or parked (false) for the whole
// burst. Parked pins contribute no zeros and no transitions.
func (bu *Burst) SetDriven(pin int, v bool) {
	if pin < 0 || pin >= bu.Width {
		panic(fmt.Sprintf("bitblock: pin %d out of range", pin))
	}
	if v {
		bu.driven[pin/64] |= 1 << (pin % 64)
	} else {
		bu.driven[pin/64] &^= 1 << (pin % 64)
	}
}

// Driven reports whether pin p carries data during this burst.
func (bu *Burst) Driven(pin int) bool {
	return bu.driven[pin/64]>>(pin%64)&1 == 1
}

// DrivenPins returns the number of driven pins.
func (bu *Burst) DrivenPins() int {
	n := 0
	for _, w := range bu.driven {
		n += bits.OnesCount64(w)
	}
	return n
}

// drivenChunk extracts the driven-mask bits for pins [base, base+n).
func (bu *Burst) drivenChunk(base, n int) uint64 {
	w, s := base/64, base%64
	v := bu.driven[w] >> s
	if s+n > 64 && w+1 < len(bu.driven) {
		v |= bu.driven[w+1] << (64 - s)
	}
	if n < 64 {
		v &= 1<<n - 1
	}
	return v
}

// CountZeros returns the number of 0 bit-times on driven pins, the quantity
// the DDR4 POD IO energy is proportional to (Section 2.1.1).
func (bu *Burst) CountZeros() int {
	ones := 0
	for b := 0; b < bu.Beats; b++ {
		for base := 0; base < bu.Width; base += 64 {
			n := bu.Width - base
			if n > 64 {
				n = 64
			}
			v := bu.BeatBits(b, base, n) & bu.drivenChunk(base, n)
			ones += bits.OnesCount64(v)
		}
	}
	return bu.Beats*bu.DrivenPins() - ones
}

// CountOnes returns the number of 1 bit-times on driven pins.
func (bu *Burst) CountOnes() int {
	return bu.Beats*bu.DrivenPins() - bu.CountZeros()
}

// BusState is the last value driven on each pin of a (<=128-wire) bus,
// carried between bursts so transition counting (LPDDR3, Section 2.1.2)
// spans burst boundaries.
type BusState struct {
	last [2]uint64
}

// Pin returns the current level of pin p.
func (s *BusState) Pin(p int) bool { return s.last[p/64]>>(p%64)&1 == 1 }

// SetPin forces pin p's level, used to initialize the idle bus.
func (s *BusState) SetPin(p int, v bool) {
	if v {
		s.last[p/64] |= 1 << (p % 64)
	} else {
		s.last[p/64] &^= 1 << (p % 64)
	}
}

// Transitions counts the wire toggles this burst causes on driven pins given
// the bus state before the burst, and advances the state. Undriven pins hold
// their previous level.
func (bu *Burst) Transitions(s *BusState) int {
	n := 0
	for b := 0; b < bu.Beats; b++ {
		for p := 0; p < bu.Width; p++ {
			if !bu.Driven(p) {
				continue
			}
			v := bu.Bit(b, p)
			if v != s.Pin(p) {
				n++
				s.SetPin(p, v)
			}
		}
	}
	return n
}

// TotalBits returns beats x driven pins, the bus occupancy of the burst.
func (bu *Burst) TotalBits() int { return bu.Beats * bu.DrivenPins() }
