package bitblock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLaneRoundTrip(t *testing.T) {
	f := func(raw [64]byte) bool {
		blk := Block(raw)
		var out Block
		for c := 0; c < Chips; c++ {
			out.SetLane(c, blk.Lane(c))
		}
		return out == blk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLaneLayout(t *testing.T) {
	var blk Block
	for i := range blk {
		blk[i] = byte(i)
	}
	// Chip 3's beat-5 byte is blk[5*8+3] = 43, in bits [40,48) of the lane.
	lane := blk.Lane(3)
	if got := byte(lane >> 40); got != 43 {
		t.Fatalf("lane byte = %d, want 43", got)
	}
}

func TestBlockCounts(t *testing.T) {
	var blk Block
	if blk.CountZeros() != 512 || blk.CountOnes() != 0 {
		t.Fatalf("zero block: zeros=%d ones=%d", blk.CountZeros(), blk.CountOnes())
	}
	for i := range blk {
		blk[i] = 0xff
	}
	if blk.CountZeros() != 0 || blk.CountOnes() != 512 {
		t.Fatalf("ones block: zeros=%d ones=%d", blk.CountZeros(), blk.CountOnes())
	}
	blk[0] = 0xf0
	if blk.CountZeros() != 4 {
		t.Fatalf("zeros = %d, want 4", blk.CountZeros())
	}
}

func TestFromBytesPads(t *testing.T) {
	blk := FromBytes([]byte{1, 2, 3})
	if blk[0] != 1 || blk[2] != 3 || blk[3] != 0 || blk[63] != 0 {
		t.Fatalf("unexpected block %v", blk[:4])
	}
}

func TestBitsAppendGet(t *testing.T) {
	b := NewBits(100)
	b.Append(0b1011, 4)
	b.AppendBit(true)
	b.Append(0, 3)
	if b.Len() != 8 {
		t.Fatalf("len = %d, want 8", b.Len())
	}
	// Bit 0 first: 1011 LSB-first = 1,1,0,1 then the single 1, then 000.
	want := "11011000"
	if got := b.String(); got != want {
		t.Fatalf("bits = %s, want %s", got, want)
	}
	if b.CountOnes() != 4 || b.CountZeros() != 4 {
		t.Fatalf("ones=%d zeros=%d", b.CountOnes(), b.CountZeros())
	}
}

func TestBitsCrossWordExtract(t *testing.T) {
	b := NewBits(200)
	rng := rand.New(rand.NewSource(7))
	var ref []bool
	for i := 0; i < 200; i++ {
		v := rng.Intn(2) == 1
		b.AppendBit(v)
		ref = append(ref, v)
	}
	for off := 0; off < 140; off += 7 {
		got := b.Uint64(off, 60)
		var want uint64
		for i := 0; i < 60; i++ {
			if ref[off+i] {
				want |= 1 << i
			}
		}
		if got != want {
			t.Fatalf("Uint64(%d,60) = %x, want %x", off, got, want)
		}
	}
}

func TestBitsAppendCrossesWordBoundary(t *testing.T) {
	b := NewBits(128)
	b.Append(0, 60)
	b.Append(0xfff, 12) // straddles the 64-bit word boundary
	if b.Len() != 72 {
		t.Fatalf("len = %d", b.Len())
	}
	if got := b.Uint64(60, 12); got != 0xfff {
		t.Fatalf("straddled read = %x", got)
	}
	if b.CountOnes() != 12 {
		t.Fatalf("ones = %d", b.CountOnes())
	}
}

func TestBitsSet(t *testing.T) {
	b := NewBits(10)
	b.Append(0, 10)
	b.Set(3, true)
	b.Set(9, true)
	b.Set(3, false)
	if b.Get(3) || !b.Get(9) || b.CountOnes() != 1 {
		t.Fatalf("set/get mismatch: %s", b.String())
	}
}

func TestBurstZeroCounting(t *testing.T) {
	bu := NewBurst(9, 4)
	// All zeros: 36 zero bit-times.
	if got := bu.CountZeros(); got != 36 {
		t.Fatalf("zeros = %d, want 36", got)
	}
	bu.SetBit(0, 0, true)
	bu.SetBit(3, 8, true)
	if got := bu.CountZeros(); got != 34 {
		t.Fatalf("zeros = %d, want 34", got)
	}
	// Parking a pin removes its bit-times from the count.
	bu.SetDriven(8, false)
	if got := bu.CountZeros(); got != 31 {
		t.Fatalf("zeros with parked pin = %d, want 31", got)
	}
	if bu.DrivenPins() != 8 {
		t.Fatalf("driven pins = %d, want 8", bu.DrivenPins())
	}
	if bu.TotalBits() != 32 {
		t.Fatalf("total bits = %d, want 32", bu.TotalBits())
	}
}

func TestBurstBeatHelpers(t *testing.T) {
	bu := NewBurst(72, 8)
	bu.SetBeat(2, 9, 0x1a5, 9)
	if got := bu.BeatBits(2, 9, 9); got != 0x1a5 {
		t.Fatalf("beat bits = %x, want 1a5", got)
	}
	if got := bu.BeatBits(2, 0, 9); got != 0 {
		t.Fatalf("adjacent pins disturbed: %x", got)
	}
}

func TestBurstTransitions(t *testing.T) {
	bu := NewBurst(2, 3)
	// pin0: 1,0,1  pin1: 0,0,0
	bu.SetBit(0, 0, true)
	bu.SetBit(2, 0, true)
	var s BusState // both pins start low
	// pin0 toggles at beats 0,1,2 (0->1->0->1) = 3; pin1 stays low = 0.
	if got := bu.Transitions(&s); got != 3 {
		t.Fatalf("transitions = %d, want 3", got)
	}
	if !s.Pin(0) || s.Pin(1) {
		t.Fatalf("final state wrong: pin0=%v pin1=%v", s.Pin(0), s.Pin(1))
	}
	// Replaying the same burst from the updated state: pin0 is high, burst
	// starts high -> toggles at beats 1,2 only.
	if got := bu.Transitions(&s); got != 2 {
		t.Fatalf("second pass transitions = %d, want 2", got)
	}
}

func TestBurstTransitionsSkipUndriven(t *testing.T) {
	bu := NewBurst(2, 4)
	for b := 0; b < 4; b++ {
		bu.SetBit(b, 1, b%2 == 0)
	}
	bu.SetDriven(1, false)
	var s BusState
	if got := bu.Transitions(&s); got != 0 {
		t.Fatalf("undriven pin produced %d transitions", got)
	}
}

func TestBurstPanicsOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bu := NewBurst(8, 2)
	bu.Bit(2, 0)
}

func TestBurstWordOpsMatchBitOps(t *testing.T) {
	// SetBeat/BeatBits/CountZeros use word-level fast paths; check them
	// against the per-bit reference on widths that straddle word borders.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.Intn(90)
		beats := 1 + rng.Intn(16)
		bu := NewBurst(width, beats)
		ref := NewBurst(width, beats)
		for n := 0; n < 20; n++ {
			beat := rng.Intn(beats)
			nbits := 1 + rng.Intn(64)
			base := rng.Intn(width)
			if base+nbits > width {
				nbits = width - base
			}
			v := rng.Uint64()
			bu.SetBeat(beat, base, v, nbits)
			for i := 0; i < nbits; i++ {
				ref.SetBit(beat, base+i, v>>i&1 == 1)
			}
		}
		for b := 0; b < beats; b++ {
			for p := 0; p < width; p++ {
				if bu.Bit(b, p) != ref.Bit(b, p) {
					t.Fatalf("trial %d: bit (%d,%d) differs", trial, b, p)
				}
			}
		}
		// Random chunk reads.
		for n := 0; n < 20; n++ {
			beat := rng.Intn(beats)
			nbits := 1 + rng.Intn(64)
			base := rng.Intn(width)
			if base+nbits > width {
				nbits = width - base
			}
			got := bu.BeatBits(beat, base, nbits)
			var want uint64
			for i := 0; i < nbits; i++ {
				if ref.Bit(beat, base+i) {
					want |= 1 << i
				}
			}
			if got != want {
				t.Fatalf("trial %d: BeatBits mismatch %x != %x", trial, got, want)
			}
		}
		// Zero counting with a random undriven pin set.
		for p := 0; p < width; p++ {
			if rng.Intn(4) == 0 {
				bu.SetDriven(p, false)
				ref.SetDriven(p, false)
			}
		}
		refZeros := 0
		for b := 0; b < beats; b++ {
			for p := 0; p < width; p++ {
				if ref.Driven(p) && !ref.Bit(b, p) {
					refZeros++
				}
			}
		}
		if got := bu.CountZeros(); got != refZeros {
			t.Fatalf("trial %d: CountZeros %d != %d", trial, got, refZeros)
		}
	}
}

// TestAppendZeroLength is the regression test for the stale-zero-word bug:
// Append(v, 0) at a word boundary used to grow the backing array without
// advancing the length, leaving a phantom word that corrupted the next
// append and later made CountOnes shift by a negative amount.
func TestAppendZeroLength(t *testing.T) {
	b := NewBits(8)
	b.Append(0, 0) // word-boundary zero-length append: must be a no-op
	b.AppendBit(true)
	if b.Len() != 1 || !b.Get(0) {
		t.Fatalf("after Append(0,0)+AppendBit(true): len=%d get0=%v", b.Len(), b.Len() > 0 && b.Get(0))
	}
	if got := b.CountOnes(); got != 1 {
		t.Fatalf("CountOnes = %d, want 1", got)
	}
	// Same at an interior word boundary.
	b = NewBits(128)
	b.Append(^uint64(0), 64)
	b.Append(0x5, 0) // nbits=0 must ignore v entirely
	b.Append(0xff, 8)
	if b.Len() != 72 || b.CountOnes() != 72 {
		t.Fatalf("len=%d ones=%d, want 72/72", b.Len(), b.CountOnes())
	}
}
