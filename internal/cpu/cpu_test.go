package cpu

import (
	"testing"

	"mil/internal/cache"
)

// listStream replays a fixed op list.
type listStream struct {
	ops []Op
	i   int
}

func (s *listStream) Next() (Op, bool) {
	if s.i >= len(s.ops) {
		return Op{}, false
	}
	op := s.ops[s.i]
	s.i++
	return op, true
}

// ctrlPort is a MemPort whose completions the test triggers manually.
type ctrlPort struct {
	pending map[int64]func(int64)
	reads   int
}

func newCtrlPort() *ctrlPort { return &ctrlPort{pending: map[int64]func(int64){}} }

func (p *ctrlPort) ReadLine(line int64, demand bool, stream int, done func(int64)) bool {
	p.reads++
	p.pending[line] = done
	return true
}
func (p *ctrlPort) WriteLine(line int64, stream int) bool { return true }
func (p *ctrlPort) Promote(line int64)                    {}
func (p *ctrlPort) complete(line int64) {
	done := p.pending[line]
	delete(p.pending, line)
	done(line)
}

func smallHier(t *testing.T, port cache.MemPort, cores int) *cache.Hierarchy {
	t.Helper()
	h, err := cache.NewHierarchy(cache.Config{
		Cores: cores, LineBytes: 64,
		L1Size: 64 * 8, L1Ways: 2, L1HitLat: 2,
		L2Size: 64 * 64, L2Ways: 4, L2HitLat: 8,
		MSHRs: 8,
	}, port)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Cores: 0, ThreadsPerCore: 1, IssueWidth: 1},
		{Cores: 1, ThreadsPerCore: 0, IssueWidth: 1},
		{Cores: 1, ThreadsPerCore: 1, IssueWidth: 0},
		{Cores: 1, ThreadsPerCore: 1, IssueWidth: 1, OutOfOrder: true, MaxOutstanding: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	good := ServerConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Threads() != 32 {
		t.Fatalf("server threads = %d", good.Threads())
	}
	mobile := MobileConfig()
	if mobile.Threads() != 8 {
		t.Fatal("mobile threads")
	}
}

func TestStreamCountMustMatch(t *testing.T) {
	port := newCtrlPort()
	h := smallHier(t, port, 1)
	cfg := Config{Cores: 1, ThreadsPerCore: 1, IssueWidth: 1}
	if _, err := NewProcessor(cfg, h, nil); err == nil {
		t.Error("empty stream slice accepted")
	}
	if _, err := NewProcessor(cfg, nil, []Stream{&listStream{}}); err == nil {
		t.Error("nil hierarchy accepted")
	}
}

func TestComputeTiming(t *testing.T) {
	port := newCtrlPort()
	h := smallHier(t, port, 1)
	p, err := NewProcessor(Config{Cores: 1, ThreadsPerCore: 1, IssueWidth: 2}, h,
		[]Stream{&listStream{ops: []Op{{Kind: OpCompute, N: 10}}}})
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	for ; !p.Done() && now < 100; now++ {
		p.Tick(now)
	}
	// 10 instructions at width 2 = 5 cycles, +1 tick to observe the end.
	if ft := p.FinishTimes()[0]; ft != 5 {
		t.Fatalf("finish at %d, want 5", ft)
	}
	if p.Retired != 10 {
		t.Fatalf("retired = %d", p.Retired)
	}
}

func TestInOrderBlocksOnMiss(t *testing.T) {
	port := newCtrlPort()
	h := smallHier(t, port, 1)
	p, err := NewProcessor(Config{Cores: 1, ThreadsPerCore: 1, IssueWidth: 1}, h,
		[]Stream{&listStream{ops: []Op{
			{Kind: OpLoad, Addr: 0},
			{Kind: OpLoad, Addr: 64 * 100},
		}}})
	if err != nil {
		t.Fatal(err)
	}
	for now := int64(0); now < 50; now++ {
		p.Tick(now)
	}
	if port.reads != 1 {
		t.Fatalf("in-order issued %d reads while blocked, want 1", port.reads)
	}
	port.complete(0)
	for now := int64(50); now < 100; now++ {
		p.Tick(now)
	}
	if port.reads != 2 {
		t.Fatalf("second load never issued: %d", port.reads)
	}
	port.complete(100)
	for now := int64(100); now < 150 && !p.Done(); now++ {
		p.Tick(now)
	}
	if !p.Done() {
		t.Fatal("processor never finished")
	}
	if p.StallTics == 0 {
		t.Fatal("no stall cycles recorded for a blocking miss")
	}
}

func TestOutOfOrderOverlapsMisses(t *testing.T) {
	port := newCtrlPort()
	h := smallHier(t, port, 1)
	p, err := NewProcessor(Config{Cores: 1, ThreadsPerCore: 1, IssueWidth: 1, OutOfOrder: true, MaxOutstanding: 4}, h,
		[]Stream{&listStream{ops: []Op{
			{Kind: OpLoad, Addr: 0},
			{Kind: OpLoad, Addr: 64 * 100},
			{Kind: OpLoad, Addr: 64 * 200},
		}}})
	if err != nil {
		t.Fatal(err)
	}
	for now := int64(0); now < 20; now++ {
		p.Tick(now)
	}
	if port.reads != 3 {
		t.Fatalf("OoO core issued %d reads, want 3 overlapped", port.reads)
	}
}

func TestOutOfOrderWindowLimit(t *testing.T) {
	port := newCtrlPort()
	h := smallHier(t, port, 1)
	p, err := NewProcessor(Config{Cores: 1, ThreadsPerCore: 1, IssueWidth: 1, OutOfOrder: true, MaxOutstanding: 2}, h,
		[]Stream{&listStream{ops: []Op{
			{Kind: OpLoad, Addr: 0},
			{Kind: OpLoad, Addr: 64 * 100},
			{Kind: OpLoad, Addr: 64 * 200},
		}}})
	if err != nil {
		t.Fatal(err)
	}
	for now := int64(0); now < 20; now++ {
		p.Tick(now)
	}
	if port.reads != 2 {
		t.Fatalf("window of 2 let %d misses fly", port.reads)
	}
	port.complete(0)
	for now := int64(20); now < 40; now++ {
		p.Tick(now)
	}
	if port.reads != 3 {
		t.Fatalf("third load never issued after a completion: %d", port.reads)
	}
}

func TestStoresDoNotBlock(t *testing.T) {
	port := newCtrlPort()
	h := smallHier(t, port, 1)
	p, err := NewProcessor(Config{Cores: 1, ThreadsPerCore: 1, IssueWidth: 1}, h,
		[]Stream{&listStream{ops: []Op{
			{Kind: OpStore, Addr: 0},
			{Kind: OpStore, Addr: 64 * 100},
			{Kind: OpCompute, N: 1},
		}}})
	if err != nil {
		t.Fatal(err)
	}
	for now := int64(0); now < 20 && !p.Done(); now++ {
		p.Tick(now)
	}
	// Both store misses issued, thread finished without waiting for fills.
	if port.reads != 2 {
		t.Fatalf("store misses issued %d reads", port.reads)
	}
	if !p.Done() {
		t.Fatal("stores blocked the thread")
	}
	if p.StoreOps != 2 {
		t.Fatalf("store ops = %d", p.StoreOps)
	}
}

func TestMultithreadedCoreHidesLatency(t *testing.T) {
	port := newCtrlPort()
	h := smallHier(t, port, 1)
	// Two threads on one core: when thread 0 blocks, thread 1 proceeds.
	p, err := NewProcessor(Config{Cores: 1, ThreadsPerCore: 2, IssueWidth: 1}, h,
		[]Stream{
			&listStream{ops: []Op{{Kind: OpLoad, Addr: 0}}},
			&listStream{ops: []Op{{Kind: OpCompute, N: 4}}},
		})
	if err != nil {
		t.Fatal(err)
	}
	for now := int64(0); now < 20; now++ {
		p.Tick(now)
	}
	times := p.FinishTimes()
	if times[1] == 0 || times[1] > 10 {
		t.Fatalf("thread 1 did not make progress under thread 0's miss: %v", times)
	}
	port.complete(0)
	for now := int64(20); now < 40 && !p.Done(); now++ {
		p.Tick(now)
	}
	if !p.Done() {
		t.Fatal("thread 0 never unblocked")
	}
}

func TestL1HitLatencyApplied(t *testing.T) {
	port := newCtrlPort()
	h := smallHier(t, port, 1)
	p, err := NewProcessor(Config{Cores: 1, ThreadsPerCore: 1, IssueWidth: 1}, h,
		[]Stream{&listStream{ops: []Op{
			{Kind: OpLoad, Addr: 0},
			{Kind: OpLoad, Addr: 8}, // same line: L1 hit after the fill
		}}})
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	for ; now < 10; now++ {
		p.Tick(now)
	}
	port.complete(0)
	for ; !p.Done() && now < 50; now++ {
		p.Tick(now)
	}
	if !p.Done() {
		t.Fatal("did not finish")
	}
	if p.LoadOps != 2 {
		t.Fatalf("loads = %d", p.LoadOps)
	}
}
