package cpu

import (
	"fmt"

	"mil/internal/snap"
)

// Snapshot serializes the processor's timing state and per-thread
// contexts. Thread streams are serialized by their own package (they hold
// the workload RNG state); the processor records everything else a thread
// carries, including any Retry-parked pending op.
func (p *Processor) Snapshot(w *snap.Writer) {
	w.I64(p.now)
	w.I64(p.ticked)
	w.I64(p.Retired)
	w.I64(p.LoadOps)
	w.I64(p.StoreOps)
	w.I64(p.StallTics)
	w.Len(len(p.threads))
	for _, t := range p.threads {
		w.I64(t.readyAt)
		w.Bool(t.blocked)
		w.Bool(t.finished)
		w.Bool(t.pending != nil)
		if t.pending != nil {
			w.Int(int(t.pending.Kind))
			w.I64(t.pending.N)
			w.I64(t.pending.Addr)
		}
		w.Int(t.inflight)
		w.I64(t.doneAt)
	}
}

// Restore implements snap.Snapshotter.
func (p *Processor) Restore(r *snap.Reader) error {
	p.now = r.I64()
	p.ticked = r.I64()
	p.Retired = r.I64()
	p.LoadOps = r.I64()
	p.StoreOps = r.I64()
	p.StallTics = r.I64()
	n := r.Len()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(p.threads) {
		return fmt.Errorf("cpu: snapshot has %d threads, config has %d", n, len(p.threads))
	}
	for _, t := range p.threads {
		t.readyAt = r.I64()
		t.blocked = r.Bool()
		t.finished = r.Bool()
		t.pending = nil
		if r.Bool() {
			t.pending = &Op{Kind: OpKind(r.Int()), N: r.I64(), Addr: r.I64()}
		}
		t.inflight = r.Int()
		t.doneAt = r.I64()
	}
	return r.Err()
}
