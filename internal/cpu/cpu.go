// Package cpu provides the core timing models of Table 2: in-order
// 4-way-multithreaded Niagara-like cores for the microserver system and
// 3-issue out-of-order cores for the mobile system. Cores execute abstract
// instruction streams (compute bursts interleaved with loads and stores)
// against the cache hierarchy; the models capture what matters to the
// memory system: how much latency each thread can hide and how many misses
// it keeps in flight.
package cpu

import (
	"fmt"

	"mil/internal/cache"
	"mil/internal/obs"
	"mil/internal/sched"
)

// OpKind classifies stream operations.
type OpKind int

// Operation kinds.
const (
	// OpCompute executes N non-memory instructions.
	OpCompute OpKind = iota
	// OpLoad reads the byte address Addr.
	OpLoad
	// OpStore writes the byte address Addr.
	OpStore
)

// Op is one operation of a thread's dynamic instruction stream.
type Op struct {
	Kind OpKind
	N    int64 // instruction count for OpCompute
	Addr int64 // byte address for OpLoad/OpStore
}

// Stream produces a thread's dynamic instruction stream.
type Stream interface {
	// Next returns the next operation, or ok=false when the thread is done.
	Next() (op Op, ok bool)
}

// Config describes the processor.
type Config struct {
	Cores          int
	ThreadsPerCore int
	// OutOfOrder lets threads run past load misses (mobile cores); in-order
	// threads block on every miss (Niagara threads hide latency through
	// multithreading instead).
	OutOfOrder bool
	// IssueWidth is the per-thread non-memory IPC.
	IssueWidth int
	// MaxOutstanding caps a thread's in-flight load misses when OutOfOrder.
	MaxOutstanding int
}

// ServerConfig returns the Niagara-like core complex of Table 2: 8 in-order
// cores, 4 threads each, issue width 2.
func ServerConfig() Config {
	return Config{Cores: 8, ThreadsPerCore: 4, OutOfOrder: false, IssueWidth: 2, MaxOutstanding: 1}
}

// MobileConfig returns the Snapdragon-like core complex of Table 2: 8
// out-of-order single-threaded cores, issue width 3.
func MobileConfig() Config {
	return Config{Cores: 8, ThreadsPerCore: 1, OutOfOrder: true, IssueWidth: 3, MaxOutstanding: 4}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Cores <= 0 || c.ThreadsPerCore <= 0:
		return fmt.Errorf("cpu: %d cores x %d threads", c.Cores, c.ThreadsPerCore)
	case c.IssueWidth <= 0:
		return fmt.Errorf("cpu: issue width %d", c.IssueWidth)
	case c.OutOfOrder && c.MaxOutstanding <= 0:
		return fmt.Errorf("cpu: out-of-order with %d outstanding misses", c.MaxOutstanding)
	}
	return nil
}

// Threads returns the total hardware thread count.
func (c *Config) Threads() int { return c.Cores * c.ThreadsPerCore }

// thread is one hardware context.
type thread struct {
	core     int
	stream   Stream
	readyAt  int64
	blocked  bool // waiting on a fill (or a full miss window)
	finished bool
	pending  *Op // op rejected with Retry, to reissue
	inflight int // outstanding load misses (OoO)
	doneAt   int64
}

// Processor drives all threads against the hierarchy.
type Processor struct {
	cfg     Config
	hier    *cache.Hierarchy
	threads []*thread
	now     int64
	ticked  int64 // last cycle presented to Tick (-1 before the first)

	Retired   int64 // instructions completed (all threads)
	LoadOps   int64
	StoreOps  int64
	StallTics int64 // thread-cycles spent blocked

	// threadBlocks, when attached via SetObs, counts transitions into the
	// blocked state (a core wedged on a demand miss). Nil is a no-op.
	threadBlocks *obs.Counter
	// blocks is the always-on mirror of threadBlocks, kept for the trace
	// record/replay layer (DESIGN.md §5.11) so a replayed run can report
	// the counter without the processor present. Not serialized in
	// snapshots: trace recording and resume are mutually exclusive.
	blocks int64
}

// ThreadBlocks reports the number of transitions into the blocked state.
func (p *Processor) ThreadBlocks() int64 { return p.blocks }

// SetObs attaches the observability layer. Nil-safe: a disabled Obs
// leaves the processor on its zero-cost path.
func (p *Processor) SetObs(o *obs.Obs) {
	if !o.Enabled() {
		return
	}
	p.threadBlocks = o.Counter("cpu_thread_blocks_total")
}

// NewProcessor builds a processor whose thread i runs streams[i]. The
// stream slice length must equal cfg.Threads().
func NewProcessor(cfg Config, hier *cache.Hierarchy, streams []Stream) (*Processor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if hier == nil {
		return nil, fmt.Errorf("cpu: nil hierarchy")
	}
	if len(streams) != cfg.Threads() {
		return nil, fmt.Errorf("cpu: %d streams for %d threads", len(streams), cfg.Threads())
	}
	p := &Processor{cfg: cfg, hier: hier, ticked: -1}
	for i, s := range streams {
		p.threads = append(p.threads, &thread{core: i / cfg.ThreadsPerCore, stream: s})
	}
	return p, nil
}

// Done reports whether every thread has drained its stream.
func (p *Processor) Done() bool {
	for _, t := range p.threads {
		if !t.finished {
			return false
		}
	}
	return true
}

// FinishTimes returns each thread's completion cycle (valid once Done).
func (p *Processor) FinishTimes() []int64 {
	out := make([]int64, len(p.threads))
	for i, t := range p.threads {
		out[i] = t.doneAt
	}
	return out
}

// NextWake returns a lower bound on the next CPU cycle at which a thread
// can step (the internal/sched contract): the earliest readyAt over
// runnable threads. Blocked threads wake via cache fills, which happen on
// cycles the event loop lands on anyway; finished threads never wake.
func (p *Processor) NextWake(now int64) int64 {
	w := sched.Never
	for _, t := range p.threads {
		if t.finished || t.blocked {
			continue
		}
		if t.readyAt <= now {
			return now + 1
		}
		w = min(w, t.readyAt)
	}
	return w
}

// SkipTo charges the stall cycles the skipped window (ticked, now) would
// have accumulated: one per blocked unfinished thread per skipped cycle.
// It must run before the cycle's fills unblock threads - in the per-cycle
// loop those threads were still blocked throughout the window.
func (p *Processor) SkipTo(now int64) {
	n := now - p.ticked - 1
	if n <= 0 {
		return
	}
	for _, t := range p.threads {
		if !t.finished && t.blocked {
			p.StallTics += n
		}
	}
}

// Tick advances every thread one CPU cycle.
func (p *Processor) Tick(now int64) {
	p.now = now
	p.ticked = now
	for i, t := range p.threads {
		if t.finished {
			continue
		}
		if t.blocked {
			p.StallTics++
			continue
		}
		if t.readyAt > now {
			continue
		}
		p.step(i, t, now)
	}
}

// step executes (or retries) one operation for thread ti.
func (p *Processor) step(ti int, t *thread, now int64) {
	var op Op
	if t.pending != nil {
		op = *t.pending
		t.pending = nil
	} else {
		var ok bool
		op, ok = t.stream.Next()
		if !ok {
			t.finished = true
			t.doneAt = now
			return
		}
	}

	switch op.Kind {
	case OpCompute:
		n := op.N
		if n < 1 {
			n = 1
		}
		cycles := (n + int64(p.cfg.IssueWidth) - 1) / int64(p.cfg.IssueWidth)
		t.readyAt = now + cycles
		p.Retired += n

	case OpLoad:
		// The thread index tags the waiter so a snapshot can re-link the
		// loadDone closure on restore (see cache.AccessTagged).
		res, lat := p.hier.AccessTagged(t.core, op.Addr, false, ti, p.loadDone(t))
		switch res {
		case cache.Hit:
			t.readyAt = now + lat
			p.Retired++
			p.LoadOps++
		case cache.Miss:
			p.Retired++
			p.LoadOps++
			if p.cfg.OutOfOrder {
				t.inflight++
				if t.inflight >= p.cfg.MaxOutstanding {
					t.blocked = true // miss window full: stall until one returns
					p.blocks++
					p.threadBlocks.Inc()
				} else {
					t.readyAt = now + 1 // keep running under the miss
				}
			} else {
				t.blocked = true
				p.blocks++
				p.threadBlocks.Inc()
			}
		case cache.Retry:
			t.pending = &op
			t.readyAt = now + 1
		}

	case OpStore:
		res, lat := p.hier.AccessTagged(t.core, op.Addr, true, ti, nil)
		switch res {
		case cache.Hit:
			t.readyAt = now + lat
			p.Retired++
			p.StoreOps++
		case cache.Miss:
			// Write-allocate miss; the store buffer hides the fill.
			t.readyAt = now + 1
			p.Retired++
			p.StoreOps++
		case cache.Retry:
			t.pending = &op
			t.readyAt = now + 1
		}

	default:
		panic(fmt.Sprintf("cpu: unknown op kind %d", op.Kind))
	}
}

// LoadDoneFor rebuilds the fill callback for hardware thread ti, for
// re-linking MSHR waiters when restoring a snapshot.
func (p *Processor) LoadDoneFor(ti int) func() { return p.loadDone(p.threads[ti]) }

// loadDone builds the fill callback for a thread's load miss.
func (p *Processor) loadDone(t *thread) func() {
	return func() {
		if p.cfg.OutOfOrder {
			if t.inflight > 0 {
				t.inflight--
			}
			if t.blocked && t.inflight < p.cfg.MaxOutstanding {
				t.blocked = false
				t.readyAt = p.now + 1
			}
			return
		}
		t.blocked = false
		t.readyAt = p.now + 1
	}
}
