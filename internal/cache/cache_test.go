package cache

import (
	"testing"
)

func newArray(t *testing.T, size, ways int) *Array {
	t.Helper()
	a, err := NewArray(size, 64, ways)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestArrayValidation(t *testing.T) {
	if _, err := NewArray(0, 64, 4); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewArray(64*12, 64, 4); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := NewArray(64*10, 64, 3); err == nil {
		t.Error("ragged ways accepted")
	}
}

func TestArrayHitMiss(t *testing.T) {
	a := newArray(t, 64*8, 2) // 4 sets x 2 ways
	if a.Lookup(5) != Invalid {
		t.Fatal("cold lookup hit")
	}
	a.Insert(5, Exclusive, false)
	if a.Lookup(5) != Exclusive {
		t.Fatal("inserted line missed")
	}
	if a.Hits != 1 || a.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", a.Hits, a.Misses)
	}
}

func TestArrayLRUEviction(t *testing.T) {
	a := newArray(t, 64*8, 2) // 4 sets
	// Lines 0, 4, 8 share set 0 (4 sets).
	a.Insert(0, Exclusive, false)
	a.Insert(4, Exclusive, false)
	a.Lookup(0) // make line 4 the LRU
	v := a.Insert(8, Exclusive, false)
	if !v.Valid || v.Line != 4 {
		t.Fatalf("victim = %+v, want line 4", v)
	}
	if a.Peek(0) == Invalid || a.Peek(8) == Invalid {
		t.Fatal("survivors missing")
	}
}

func TestArrayDirtyTracking(t *testing.T) {
	a := newArray(t, 64*8, 2)
	a.Insert(3, Modified, true)
	if !a.Dirty(3) {
		t.Fatal("dirty bit lost")
	}
	a.Insert(3, Shared, false) // re-insert must not clear dirty
	if !a.Dirty(3) {
		t.Fatal("re-insert cleared dirty bit")
	}
	st, dirty := a.Invalidate(3)
	if st != Shared || !dirty {
		t.Fatalf("invalidate = %v/%v", st, dirty)
	}
	if a.Dirty(3) {
		t.Fatal("dirty after invalidate")
	}
}

func TestArrayStatePanicsOnAbsent(t *testing.T) {
	a := newArray(t, 64*8, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.SetState(77, Modified)
}

func TestStateString(t *testing.T) {
	want := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d -> %q", s, s.String())
		}
	}
}

func TestPrefetcherTrainsOnStreams(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{Streams: 4, Distance: 4, Degree: 2})
	if out := p.OnDemandMiss(100); out != nil {
		t.Fatalf("first miss prefetched %v", out)
	}
	if out := p.OnDemandMiss(101); out != nil {
		t.Fatalf("stride-establishing miss prefetched %v", out)
	}
	out := p.OnDemandMiss(102)
	if len(out) != 2 || out[0] != 106 || out[1] != 107 {
		t.Fatalf("prefetches = %v, want [106 107]", out)
	}
}

func TestPrefetcherDescendingStream(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{Streams: 4, Distance: 2, Degree: 1})
	p.OnDemandMiss(100)
	p.OnDemandMiss(99)
	out := p.OnDemandMiss(98)
	if len(out) != 1 || out[0] != 96 {
		t.Fatalf("prefetches = %v, want [96]", out)
	}
}

func TestPrefetcherLearnsStrides(t *testing.T) {
	// A stride-8 sweep (multigrid coarse level) must prefetch in strides.
	p := NewPrefetcher(PrefetchConfig{Streams: 4, Distance: 4, Degree: 2})
	p.OnDemandMiss(100)
	if out := p.OnDemandMiss(108); out != nil {
		t.Fatalf("stride not yet confirmed: %v", out)
	}
	out := p.OnDemandMiss(116)
	if len(out) != 2 || out[0] != 116+8*4 || out[1] != 116+8*5 {
		t.Fatalf("prefetches = %v, want [148 156]", out)
	}
}

func TestPrefetcherIgnoresRandomMisses(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{Streams: 4, Distance: 4, Degree: 2})
	for _, l := range []int64{100, 5000, 90000, 1234567} {
		if out := p.OnDemandMiss(l); out != nil {
			t.Fatalf("random miss %d prefetched %v", l, out)
		}
	}
}

func TestPrefetcherDisabled(t *testing.T) {
	if NewPrefetcher(PrefetchConfig{}) != nil {
		t.Fatal("zero config should disable")
	}
}

// fakePort records memory traffic and completes reads on demand.
type fakePort struct {
	reads    []int64
	writes   []int64
	pending  map[int64]func(int64)
	rejectRd bool
	rejectWr bool
}

func newFakePort() *fakePort { return &fakePort{pending: map[int64]func(int64){}} }

func (p *fakePort) ReadLine(line int64, demand bool, stream int, done func(int64)) bool {
	if p.rejectRd {
		return false
	}
	p.reads = append(p.reads, line)
	p.pending[line] = done
	return true
}

func (p *fakePort) WriteLine(line int64, stream int) bool {
	if p.rejectWr {
		return false
	}
	p.writes = append(p.writes, line)
	return true
}

func (p *fakePort) Promote(line int64) {}

func (p *fakePort) complete(line int64) {
	done := p.pending[line]
	delete(p.pending, line)
	done(line)
}

func smallConfig() Config {
	return Config{
		Cores: 2, LineBytes: 64,
		L1Size: 64 * 8, L1Ways: 2, L1HitLat: 2,
		L2Size: 64 * 64, L2Ways: 4, L2HitLat: 8,
		MSHRs: 4,
	}
}

func newHierarchy(t *testing.T, cfg Config) (*Hierarchy, *fakePort) {
	t.Helper()
	port := newFakePort()
	h, err := NewHierarchy(cfg, port)
	if err != nil {
		t.Fatal(err)
	}
	return h, port
}

func TestHierarchyValidation(t *testing.T) {
	port := newFakePort()
	cfg := smallConfig()
	cfg.Cores = 0
	if _, err := NewHierarchy(cfg, port); err == nil {
		t.Error("zero cores accepted")
	}
	cfg = smallConfig()
	cfg.MSHRs = 0
	if _, err := NewHierarchy(cfg, port); err == nil {
		t.Error("zero MSHRs accepted")
	}
	if _, err := NewHierarchy(smallConfig(), nil); err == nil {
		t.Error("nil port accepted")
	}
}

func TestColdMissGoesToMemoryAndFills(t *testing.T) {
	h, port := newHierarchy(t, smallConfig())
	fired := false
	res, _ := h.Access(0, 0x1000, false, func() { fired = true })
	if res != Miss {
		t.Fatalf("result = %v", res)
	}
	if len(port.reads) != 1 || port.reads[0] != 0x1000/64 {
		t.Fatalf("reads = %v", port.reads)
	}
	port.complete(0x1000 / 64)
	if !fired {
		t.Fatal("done not called on fill")
	}
	// Now a hit, exclusive (sole owner).
	res, lat := h.Access(0, 0x1000, false, nil)
	if res != Hit || lat != 2 {
		t.Fatalf("after fill: %v/%d", res, lat)
	}
	if h.l1[0].Peek(0x1000/64) != Exclusive {
		t.Fatalf("state = %v, want E", h.l1[0].Peek(0x1000/64))
	}
}

func TestMSHRMergesDuplicateMisses(t *testing.T) {
	h, port := newHierarchy(t, smallConfig())
	n := 0
	h.Access(0, 0x2000, false, func() { n++ })
	h.Access(1, 0x2000, false, func() { n++ })
	if len(port.reads) != 1 {
		t.Fatalf("duplicate miss issued twice: %v", port.reads)
	}
	if h.Stats().MSHRMerges != 1 {
		t.Fatalf("merges = %d", h.Stats().MSHRMerges)
	}
	port.complete(0x2000 / 64)
	if n != 2 {
		t.Fatalf("waiters fired = %d", n)
	}
	// Both cores now share the line.
	if h.l1[0].Peek(0x2000/64) != Shared || h.l1[1].Peek(0x2000/64) != Shared {
		t.Fatal("sharers not in S")
	}
}

func TestMSHRCapacityForcesRetry(t *testing.T) {
	cfg := smallConfig()
	cfg.MSHRs = 1
	h, _ := newHierarchy(t, cfg)
	if res, _ := h.Access(0, 0x0, false, func() {}); res != Miss {
		t.Fatal("first miss rejected")
	}
	if res, _ := h.Access(0, 0x4000, false, func() {}); res != Retry {
		t.Fatal("second miss not rejected with MSHRs full")
	}
}

func TestStoreGetsModifiedAndWritesBackOnEviction(t *testing.T) {
	h, port := newHierarchy(t, smallConfig())
	h.Access(0, 0x0, true, nil)
	port.complete(0)
	if h.l1[0].Peek(0) != Modified {
		t.Fatalf("store state = %v", h.l1[0].Peek(0))
	}
	// Evict through L2 pressure: fill the L2 set holding line 0.
	// L2: 64 lines, 4 ways -> 16 sets; lines 0,16,32,... share set 0.
	for i := int64(1); i <= 4; i++ {
		l := i * 16
		h.Access(1, l*64, false, nil)
		port.complete(l)
	}
	if len(port.writes) != 1 || port.writes[0] != 0 {
		t.Fatalf("writes = %v, want [0]", port.writes)
	}
	// The back-invalidation must have removed the L1 copy too.
	if h.l1[0].Peek(0) != Invalid {
		t.Fatal("inclusive back-invalidation failed")
	}
}

func TestUpgradeInvalidatesOtherSharers(t *testing.T) {
	h, port := newHierarchy(t, smallConfig())
	h.Access(0, 0x0, false, func() {})
	h.Access(1, 0x0, false, func() {})
	port.complete(0)
	// Core 0 stores: hit in S, must upgrade and kill core 1's copy.
	res, lat := h.Access(0, 0x0, true, nil)
	if res != Hit {
		t.Fatalf("upgrade result %v", res)
	}
	if lat != 2+8 {
		t.Fatalf("upgrade latency %d, want L1+L2", lat)
	}
	if h.l1[0].Peek(0) != Modified {
		t.Fatal("writer not in M")
	}
	if h.l1[1].Peek(0) != Invalid {
		t.Fatal("other sharer survived the upgrade")
	}
	if h.Stats().Upgrades != 1 {
		t.Fatalf("upgrades = %d", h.Stats().Upgrades)
	}
}

func TestInterventionOnDirtyRemoteLine(t *testing.T) {
	h, port := newHierarchy(t, smallConfig())
	h.Access(0, 0x0, true, func() {})
	port.complete(0)
	// Core 1 reads the line core 0 modified: L2 hit with intervention.
	res, lat := h.Access(1, 0x0, false, nil)
	if res != Hit {
		t.Fatalf("result %v", res)
	}
	if lat != 2+8+8 {
		t.Fatalf("latency %d, want intervention penalty", lat)
	}
	if h.l1[0].Peek(0) != Shared || h.l1[1].Peek(0) != Shared {
		t.Fatal("post-intervention states wrong")
	}
	if h.Stats().Interventions != 1 {
		t.Fatalf("interventions = %d", h.Stats().Interventions)
	}
	// The dirty data must not be lost: evicting from L2 writes it back.
	for i := int64(1); i <= 4; i++ {
		h.Access(0, i*16*64, false, func() {})
		port.complete(i * 16)
	}
	if len(port.writes) != 1 {
		t.Fatalf("dirty intervention data lost: writes = %v", port.writes)
	}
}

func TestRetryAfterPortRejection(t *testing.T) {
	h, port := newHierarchy(t, smallConfig())
	port.rejectRd = true
	if res, _ := h.Access(0, 0x0, false, func() {}); res != Miss {
		t.Fatal("miss rejected despite free MSHR")
	}
	if len(port.reads) != 0 {
		t.Fatal("read issued while port rejecting")
	}
	port.rejectRd = false
	h.Tick()
	if len(port.reads) != 1 {
		t.Fatal("Tick did not retry the read")
	}
	port.complete(0)
	if res, _ := h.Access(0, 0x0, false, nil); res != Hit {
		t.Fatal("line not filled after retried read")
	}
}

func TestWritebackQueueDrainsOnTick(t *testing.T) {
	h, port := newHierarchy(t, smallConfig())
	h.Access(0, 0x0, true, func() {})
	port.complete(0)
	port.rejectWr = true
	for i := int64(1); i <= 4; i++ {
		h.Access(1, i*16*64, false, func() {})
		port.complete(i * 16)
	}
	if len(port.writes) != 0 {
		t.Fatal("write issued while rejected")
	}
	if !h.Pending() {
		t.Fatal("pending writeback not reported")
	}
	port.rejectWr = false
	h.Tick()
	if len(port.writes) != 1 || port.writes[0] != 0 {
		t.Fatalf("writes = %v", port.writes)
	}
}

func TestPendingWritebackServesSubsequentMiss(t *testing.T) {
	h, port := newHierarchy(t, smallConfig())
	h.Access(0, 0x0, true, func() {})
	port.complete(0)
	port.rejectWr = true
	for i := int64(1); i <= 4; i++ {
		h.Access(1, i*16*64, false, func() {})
		port.complete(i * 16)
	}
	// Line 0's writeback is stuck in the queue; a new access must see its
	// data (hit) rather than fetch a stale copy from memory.
	res, _ := h.Access(0, 0x0, false, nil)
	if res != Hit {
		t.Fatalf("result %v, want Hit from pending writeback", res)
	}
	if len(port.reads) != 5 {
		t.Fatalf("unexpected memory read: %v", port.reads)
	}
}

func TestDemandMissTriggersPrefetches(t *testing.T) {
	cfg := smallConfig()
	cfg.Prefetch = PrefetchConfig{Streams: 4, Distance: 2, Degree: 2}
	h, port := newHierarchy(t, cfg)
	for i := int64(0); i < 3; i++ {
		h.Access(0, i*64, false, func() {})
		port.complete(i)
	}
	// The third miss trains the stream: prefetches for lines 4,5 issue.
	s := h.Stats()
	if s.PrefetchesIssued != 2 {
		t.Fatalf("prefetches issued = %d", s.PrefetchesIssued)
	}
	if len(port.reads) != 5 {
		t.Fatalf("reads = %v", port.reads)
	}
	port.complete(4)
	port.complete(5)
	// Prefetched lines hit in the L2 (not L1).
	res, lat := h.Access(0, 4*64, false, nil)
	if res != Hit || lat != 2+8 {
		t.Fatalf("prefetched line: %v/%d", res, lat)
	}
}

func TestServerAndMobileConfigsBuild(t *testing.T) {
	for _, cfg := range []Config{ServerConfig(), MobileConfig()} {
		if _, err := NewHierarchy(cfg, newFakePort()); err != nil {
			t.Errorf("config %+v: %v", cfg, err)
		}
	}
}
