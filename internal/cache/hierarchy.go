package cache

import (
	"fmt"

	"mil/internal/obs"
	"mil/internal/sched"
)

// Config describes the two-level hierarchy of Table 2.
type Config struct {
	Cores     int
	LineBytes int

	L1Size   int
	L1Ways   int
	L1HitLat int64 // CPU cycles

	L2Size   int
	L2Ways   int
	L2HitLat int64 // CPU cycles, on top of the L1 miss

	MSHRs    int // outstanding distinct line misses at the L2
	Prefetch PrefetchConfig
}

// ServerConfig returns the Niagara-like microserver hierarchy of Table 2.
func ServerConfig() Config {
	return Config{
		Cores: 8, LineBytes: 64,
		L1Size: 32 << 10, L1Ways: 4, L1HitLat: 2,
		L2Size: 4 << 20, L2Ways: 8, L2HitLat: 16,
		MSHRs:    64,
		Prefetch: PrefetchConfig{Streams: 128, Distance: 16, Degree: 4},
	}
}

// MobileConfig returns the Snapdragon-like mobile hierarchy of Table 2.
func MobileConfig() Config {
	return Config{
		Cores: 8, LineBytes: 64,
		L1Size: 32 << 10, L1Ways: 4, L1HitLat: 2,
		L2Size: 2 << 20, L2Ways: 8, L2HitLat: 8,
		MSHRs:    96,
		Prefetch: PrefetchConfig{Streams: 128, Distance: 8, Degree: 2},
	}
}

// MemPort is the hierarchy's view of the memory system. ReadLine/WriteLine
// return false when the controller queue is full; the hierarchy retries on
// Tick. done is invoked with the line address when the read's data has
// arrived, so callers can pass one long-lived callback instead of
// allocating a capturing closure per (re)issue. Promote upgrades an
// in-flight prefetch read to demand priority (a core is now blocked on
// it); it is a no-op for lines that are not in flight.
type MemPort interface {
	ReadLine(line int64, demand bool, stream int, done func(line int64)) bool
	WriteLine(line int64, stream int) bool
	Promote(line int64)
}

// mshrEntry tracks one outstanding line fill.
type mshrEntry struct {
	issued  bool
	demand  bool
	stream  int
	waiters []waiter
}

// waiter is a core access blocked on a fill. tag identifies the done
// callback for snapshot/restore: callers that need their waiters to
// survive a checkpoint pass a stable tag (the CPU passes the hardware
// thread index) and re-provide the callback on restore; untagged waiters
// (tag < 0) are test-only and cannot be checkpointed mid-miss.
type waiter struct {
	core  int
	write bool
	tag   int
	done  func()
}

// AccessResult reports how an access resolved.
type AccessResult int

// Access outcomes.
const (
	// Hit: the access completed; the latency return value is valid.
	Hit AccessResult = iota
	// Miss: the access went to memory; done will be called on arrival.
	Miss
	// Retry: structural hazard (MSHRs full); retry next cycle.
	Retry
)

// Stats aggregates hierarchy counters.
type Stats struct {
	L1Hits, L1Misses  int64
	L2Hits, L2Misses  int64
	MSHRMerges        int64
	PrefetchHits      int64 // demand touches of prefetched L2 lines
	Writebacks        int64
	Upgrades          int64
	Interventions     int64
	PrefetchesIssued  int64
	PrefetchesDropped int64 // already present or pending
	BackInvalidations int64
}

// Hierarchy is the shared cache system for all cores.
type Hierarchy struct {
	cfg  Config
	port MemPort

	l1      []*Array
	l2      *Array
	sharers map[int64]uint16 // L1 bitmask per L2-resident line
	mshr    map[int64]*mshrEntry
	retryQ  []int64 // unissued fills, in allocation order (determinism)
	wbQueue []int64 // writebacks awaiting port acceptance
	pf      *Prefetcher
	fillFn  func(int64) // h.fill bound once, reused by every ReadLine

	// acted records whether the last Tick changed any state (drained a
	// writeback, issued a retry, or dropped a stale entry). A Tick that
	// only collected rejections leaves the hierarchy in a fixed point:
	// with the memory port's state frozen, every later Tick would be the
	// identical no-op, so the event core need not wake for it.
	acted bool

	stats Stats

	// obs, when non-nil, carries the hierarchy's metric handles; nil (the
	// default) keeps every instrumented site on a single-branch path.
	obs *hierObs

	// Boundary backpressure counters for the trace record/replay layer
	// (DESIGN.md §5.11): always-on plain mirrors of the wbQueued/fillRetry/
	// wbPeak obs handles, so a recorded trace can reproduce a full run's
	// metrics CSV without the hierarchy present. Deliberately not part of
	// Stats (they measure the port boundary, not the caches) and not
	// serialized in snapshots (trace recording and resume are mutually
	// exclusive, so they never need to survive one).
	wbBackpressure int64
	fillRetries    int64
	wbQueuePeak    int64
}

// hierObs holds the hierarchy's pre-resolved observability handles.
type hierObs struct {
	wbQueued  *obs.Counter // writebacks deferred by port backpressure
	fillRetry *obs.Counter // fill issues rejected by the port
	pfDropped *obs.Counter // prefetches dropped (present, pending, or no MSHR)
	wbPeak    *obs.Gauge   // writeback-queue high-water mark
}

// SetObs attaches the observability layer. Call before the first access.
// Nil-safe: a disabled Obs leaves the hierarchy on its zero-cost path.
func (h *Hierarchy) SetObs(o *obs.Obs) {
	if !o.Enabled() {
		return
	}
	h.obs = &hierObs{
		wbQueued:  o.Counter("cache_wb_backpressure_total"),
		fillRetry: o.Counter("cache_fill_retry_total"),
		pfDropped: o.Counter("cache_prefetch_dropped_total"),
		wbPeak:    o.Gauge("cache_wb_queue_peak"),
	}
}

// BoundaryStats reports the port-boundary backpressure counters the trace
// recorder folds into a trace (see the field comments above).
func (h *Hierarchy) BoundaryStats() (wbBackpressure, fillRetries, wbQueuePeak int64) {
	return h.wbBackpressure, h.fillRetries, h.wbQueuePeak
}

// NewHierarchy builds the hierarchy over a memory port.
func NewHierarchy(cfg Config, port MemPort) (*Hierarchy, error) {
	if cfg.Cores <= 0 || cfg.Cores > 16 {
		return nil, fmt.Errorf("cache: cores = %d", cfg.Cores)
	}
	if cfg.MSHRs <= 0 {
		return nil, fmt.Errorf("cache: MSHRs = %d", cfg.MSHRs)
	}
	if port == nil {
		return nil, fmt.Errorf("cache: nil memory port")
	}
	h := &Hierarchy{
		cfg: cfg, port: port,
		sharers: make(map[int64]uint16),
		mshr:    make(map[int64]*mshrEntry),
		pf:      NewPrefetcher(cfg.Prefetch),
	}
	h.fillFn = h.fill // bound once; every ReadLine shares it
	for i := 0; i < cfg.Cores; i++ {
		l1, err := NewArray(cfg.L1Size, cfg.LineBytes, cfg.L1Ways)
		if err != nil {
			return nil, err
		}
		h.l1 = append(h.l1, l1)
	}
	var err error
	h.l2, err = NewArray(cfg.L2Size, cfg.LineBytes, cfg.L2Ways)
	if err != nil {
		return nil, err
	}
	return h, nil
}

// Stats returns a snapshot of the counters.
func (h *Hierarchy) Stats() Stats {
	s := h.stats
	for _, l1 := range h.l1 {
		s.L1Hits += l1.Hits
		s.L1Misses += l1.Misses
	}
	s.L2Hits += h.l2.Hits
	s.L2Misses += h.l2.Misses
	if h.pf != nil {
		s.PrefetchesIssued = h.pf.Issued
	}
	return s
}

// Pending reports outstanding fills or writebacks.
func (h *Hierarchy) Pending() bool { return len(h.mshr) > 0 || len(h.wbQueue) > 0 }

// FillHandler returns the hierarchy's long-lived fill callback — the same
// function every ReadLine passes to the memory port. Snapshot restore uses
// it to re-link in-flight reads that were serialized without their
// (unserializable) callback closures.
func (h *Hierarchy) FillHandler() func(int64) { return h.fillFn }

// Access performs a load (write=false) or store (write=true) to a byte
// address from the given core. On Miss, done fires when the line arrives.
func (h *Hierarchy) Access(core int, addr int64, write bool, done func()) (AccessResult, int64) {
	return h.AccessTagged(core, addr, write, -1, done)
}

// AccessTagged is Access with a caller-chosen waiter tag (see waiter); use
// it when the done callback must survive a snapshot/restore cycle.
func (h *Hierarchy) AccessTagged(core int, addr int64, write bool, tag int, done func()) (AccessResult, int64) {
	line := addr / int64(h.cfg.LineBytes)
	l1 := h.l1[core]

	switch st := l1.Lookup(line); st {
	case Modified, Exclusive:
		if write {
			l1.SetState(line, Modified)
			l1.MarkDirty(line)
		}
		return Hit, h.cfg.L1HitLat
	case Shared:
		if !write {
			return Hit, h.cfg.L1HitLat
		}
		// Upgrade: invalidate the other sharers through the L2.
		h.stats.Upgrades++
		h.invalidateOthers(line, core)
		l1.SetState(line, Modified)
		l1.MarkDirty(line)
		return Hit, h.cfg.L1HitLat + h.cfg.L2HitLat
	}

	// L1 miss. A pending writeback of this line short-circuits to a hit.
	if h.cancelPendingWriteback(line) {
		h.l2.Insert(line, Shared, true)
	}

	if st := h.l2.Lookup(line); st != Invalid {
		lat := h.cfg.L1HitLat + h.cfg.L2HitLat
		if h.ownerHasModified(line, core) {
			h.stats.Interventions++
			lat += h.cfg.L2HitLat // owner writeback/downgrade round
		}
		// The first demand touch of a prefetched line keeps the stream
		// alive: without this, covered streams stop training and the
		// prefetcher stalls until misses resume.
		if h.pf != nil && h.l2.TakePrefetched(line) {
			h.stats.PrefetchHits++
			for _, pl := range h.pf.OnDemandMiss(line) {
				h.issuePrefetch(pl, core)
			}
		}
		h.fillL1(core, line, write)
		return Hit, lat
	}

	// L2 miss: allocate or merge into an MSHR.
	if e, ok := h.mshr[line]; ok {
		h.stats.MSHRMerges++
		e.waiters = append(e.waiters, waiter{core: core, write: write, tag: tag, done: done})
		if !e.demand {
			// A demand access caught up with a prefetch: promote the
			// in-flight request so the controller stops deprioritizing it.
			e.demand = true
			e.stream = core
			h.port.Promote(line)
		}
		return Miss, 0
	}
	if len(h.mshr) >= h.cfg.MSHRs {
		return Retry, 0
	}
	e := &mshrEntry{demand: true, stream: core, waiters: []waiter{{core: core, write: write, tag: tag, done: done}}}
	h.mshr[line] = e
	e.issued = h.port.ReadLine(line, true, core, h.fillFn)
	if entry, ok := h.mshr[line]; ok && !entry.issued {
		h.queueFillRetry(line)
	}

	if h.pf != nil {
		for _, pl := range h.pf.OnDemandMiss(line) {
			h.issuePrefetch(pl, core)
		}
	}
	return Miss, 0
}

// issuePrefetch allocates a prefetch MSHR for a line unless it is already
// present or pending.
func (h *Hierarchy) issuePrefetch(line int64, stream int) {
	if h.l2.Peek(line) != Invalid {
		h.dropPrefetch()
		return
	}
	if _, ok := h.mshr[line]; ok {
		h.dropPrefetch()
		return
	}
	if len(h.mshr) >= h.cfg.MSHRs {
		h.dropPrefetch()
		return
	}
	e := &mshrEntry{demand: false, stream: stream}
	h.mshr[line] = e
	e.issued = h.port.ReadLine(line, false, stream, h.fillFn)
	if entry, ok := h.mshr[line]; ok && !entry.issued {
		h.queueFillRetry(line)
	}
}

// dropPrefetch records one dropped prefetch in both counter sets.
func (h *Hierarchy) dropPrefetch() {
	h.stats.PrefetchesDropped++
	if h.obs != nil {
		h.obs.pfDropped.Inc()
	}
}

// queueFillRetry records a port-rejected fill and queues its replay.
func (h *Hierarchy) queueFillRetry(line int64) {
	h.retryQ = append(h.retryQ, line)
	h.fillRetries++
	if h.obs != nil {
		h.obs.fillRetry.Inc()
	}
}

// Tick retries work the memory port previously rejected.
func (h *Hierarchy) Tick() {
	h.acted = false
	// Writebacks first: draining them in order preserves the same-line
	// ordering the cancelPendingWriteback fast path relies on.
	kept := h.wbQueue[:0]
	for i, line := range h.wbQueue {
		if !h.port.WriteLine(line, 0) {
			kept = append(kept, h.wbQueue[i:]...)
			break
		}
		h.acted = true
	}
	h.wbQueue = kept
	// Retry unissued fills in allocation order; map iteration would make
	// the schedule nondeterministic. A handful of rejections means the
	// controller queues are still full, so stop burning the cycle.
	keptR := h.retryQ[:0]
	rejections := 0
	for qi, ln := range h.retryQ {
		e, ok := h.mshr[ln]
		if !ok || e.issued {
			h.acted = true // stale entry dropped from the queue
			continue
		}
		if rejections >= 4 {
			keptR = append(keptR, h.retryQ[qi:]...)
			break
		}
		e.issued = h.port.ReadLine(ln, e.demand, e.stream, h.fillFn)
		if e.issued {
			h.acted = true
			continue
		}
		rejections++
		keptR = append(keptR, ln)
	}
	h.retryQ = keptR
}

// NextWake returns a lower bound on the next CPU cycle at which Tick can
// do anything, under the internal/sched contract: now+1 while anything
// is still queued (or the last Tick made progress), Never once the
// queues are empty - any change after that comes from fills or new
// accesses, which occur on cycles the event loop already lands on.
//
// Queued-but-rejected work must keep the hierarchy ticking every cycle
// even though each retry looks like a fixed point: the port's acceptance
// can change behind its back within the same landed cycle - the
// processor runs after the hierarchy and may promote a queued prefetch
// to demand, freeing the controller's prefetch-share admission cap - so
// the steplock loop's retry would succeed one cycle later, on a cycle no
// other wake term lands on.
func (h *Hierarchy) NextWake(now int64) int64 {
	if h.acted || len(h.wbQueue) > 0 || len(h.retryQ) > 0 {
		return now + 1
	}
	return sched.Never
}

// fill handles a line arriving from memory.
func (h *Hierarchy) fill(line int64) {
	e, ok := h.mshr[line]
	if !ok {
		panic(fmt.Sprintf("cache: fill for line %d without MSHR", line))
	}
	delete(h.mshr, line)

	h.installL2(line)
	if !e.demand {
		h.l2.SetPrefetched(line)
	}
	for _, w := range e.waiters {
		h.fillL1(w.core, line, w.write)
		if w.done != nil {
			w.done()
		}
	}
}

// installL2 inserts a line into the L2, handling inclusive eviction.
func (h *Hierarchy) installL2(line int64) {
	v := h.l2.Insert(line, Shared, false)
	if !v.Valid {
		return
	}
	// Back-invalidate L1 copies of the victim (inclusivity).
	dirty := v.Dirty
	if mask := h.sharers[v.Line]; mask != 0 {
		for c := 0; c < h.cfg.Cores; c++ {
			if mask>>c&1 == 0 {
				continue
			}
			h.stats.BackInvalidations++
			if _, d := h.l1[c].Invalidate(v.Line); d {
				dirty = true
			}
		}
		delete(h.sharers, v.Line)
	}
	if dirty {
		h.writeback(v.Line)
	}
}

// writeback sends a dirty line to memory, queueing on backpressure.
func (h *Hierarchy) writeback(line int64) {
	h.stats.Writebacks++
	if !h.port.WriteLine(line, 0) {
		h.wbQueue = append(h.wbQueue, line)
		h.wbBackpressure++
		if n := int64(len(h.wbQueue)); n > h.wbQueuePeak {
			h.wbQueuePeak = n
		}
		if h.obs != nil {
			h.obs.wbQueued.Inc()
			h.obs.wbPeak.Max(int64(len(h.wbQueue)))
		}
	}
}

// cancelPendingWriteback removes line from the writeback queue, returning
// whether it was there (its data is still the freshest copy).
func (h *Hierarchy) cancelPendingWriteback(line int64) bool {
	for i, l := range h.wbQueue {
		if l == line {
			h.wbQueue = append(h.wbQueue[:i], h.wbQueue[i+1:]...)
			h.stats.Writebacks--
			return true
		}
	}
	return false
}

// ownerHasModified reports whether an L1 other than core holds the line in
// M, downgrading it (read sharing) as a side effect.
func (h *Hierarchy) ownerHasModified(line int64, core int) bool {
	mask := h.sharers[line]
	for c := 0; c < h.cfg.Cores; c++ {
		if c == core || mask>>c&1 == 0 {
			continue
		}
		if h.l1[c].Peek(line) == Modified {
			h.l1[c].SetState(line, Shared)
			h.l2.Insert(line, Shared, true) // owner's data flows into the L2
			return true
		}
	}
	return false
}

// invalidateOthers removes every other L1's copy, absorbing dirty data into
// the L2.
func (h *Hierarchy) invalidateOthers(line int64, core int) {
	mask := h.sharers[line]
	for c := 0; c < h.cfg.Cores; c++ {
		if c == core || mask>>c&1 == 0 {
			continue
		}
		if _, dirty := h.l1[c].Invalidate(line); dirty {
			h.l2.Insert(line, Shared, true)
		}
	}
	h.sharers[line] = mask & (1 << core)
}

// fillL1 installs a line into a core's L1 with the right MESI state and
// updates the sharer set, spilling any L1 victim into the L2.
func (h *Hierarchy) fillL1(core int, line int64, write bool) {
	mask := h.sharers[line]
	others := mask &^ (1 << core)

	var st State
	switch {
	case write:
		if others != 0 {
			h.invalidateOthers(line, core)
		}
		st = Modified
	case others != 0:
		st = Shared
		// A second reader demotes any exclusive/modified holder to S,
		// pushing modified data into the L2.
		for c := 0; c < h.cfg.Cores; c++ {
			if c == core || others>>c&1 == 0 {
				continue
			}
			switch h.l1[c].Peek(line) {
			case Modified:
				h.l1[c].SetState(line, Shared)
				h.l2.Insert(line, Shared, true)
			case Exclusive:
				h.l1[c].SetState(line, Shared)
			}
		}
	default:
		st = Exclusive
	}

	v := h.l1[core].Insert(line, st, write)
	if write {
		h.sharers[line] = 1 << core
	} else {
		h.sharers[line] |= 1 << core
	}

	if v.Valid {
		// Shrink the victim's sharer set; push dirty data into the L2.
		h.sharers[v.Line] &^= 1 << core
		if h.sharers[v.Line] == 0 {
			delete(h.sharers, v.Line)
		}
		if v.Dirty {
			if h.l2.Peek(v.Line) != Invalid {
				h.l2.MarkDirty(v.Line)
			} else {
				// Inclusivity was broken by an L2 eviction race; write the
				// data home directly.
				h.writeback(v.Line)
			}
		}
	}
}
