package cache

import (
	"fmt"
	"sort"

	"mil/internal/snap"
)

// Snapshot serializes the array's replacement and coherence state. The
// geometry (set count, associativity) is not serialized — Restore decodes
// into an array NewArray already built from the same Config — but it is
// recorded as a guard so a snapshot cannot silently restore into an array
// of a different shape.
func (a *Array) Snapshot(w *snap.Writer) {
	w.Int(len(a.sets))
	w.Int(a.ways)
	w.U64(a.tick)
	w.I64(a.Hits)
	w.I64(a.Misses)
	for _, set := range a.sets {
		for i := range set {
			l := &set[i]
			w.I64(l.tag)
			w.U8(uint8(l.state))
			w.Bool(l.dirty)
			w.Bool(l.prefetch)
			w.U64(l.lru)
		}
	}
}

// Restore implements snap.Snapshotter.
func (a *Array) Restore(r *snap.Reader) error {
	sets, ways := r.Int(), r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if sets != len(a.sets) || ways != a.ways {
		return fmt.Errorf("cache: snapshot geometry %dx%d, array is %dx%d", sets, ways, len(a.sets), a.ways)
	}
	a.tick = r.U64()
	a.Hits = r.I64()
	a.Misses = r.I64()
	for _, set := range a.sets {
		for i := range set {
			l := &set[i]
			l.tag = r.I64()
			l.state = State(r.U8())
			l.dirty = r.Bool()
			l.prefetch = r.Bool()
			l.lru = r.U64()
		}
	}
	return r.Err()
}

// Snapshot serializes the stream table and training counters.
func (p *Prefetcher) Snapshot(w *snap.Writer) {
	w.Len(len(p.streams))
	w.U64(p.tick)
	w.I64(p.Trained)
	w.I64(p.Issued)
	for i := range p.streams {
		s := &p.streams[i]
		w.Bool(s.valid)
		w.I64(s.lastLine)
		w.I64(s.stride)
		w.Bool(s.confident)
		w.U64(s.lru)
	}
}

// Restore implements snap.Snapshotter.
func (p *Prefetcher) Restore(r *snap.Reader) error {
	n := r.Len()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(p.streams) {
		return fmt.Errorf("cache: snapshot has %d prefetch streams, config has %d", n, len(p.streams))
	}
	p.tick = r.U64()
	p.Trained = r.I64()
	p.Issued = r.I64()
	for i := range p.streams {
		s := &p.streams[i]
		s.valid = r.Bool()
		s.lastLine = r.I64()
		s.stride = r.I64()
		s.confident = r.Bool()
		s.lru = r.U64()
	}
	return r.Err()
}

// Snapshot serializes the full hierarchy state. MSHR waiter callbacks are
// closures and cannot be serialized; each waiter instead records its tag
// (see AccessTagged) plus whether a callback was attached, and Restore
// re-links callbacks through a caller-supplied resolver. Map contents are
// written in sorted key order so identical states encode identically.
func (h *Hierarchy) Snapshot(w *snap.Writer) {
	for _, l1 := range h.l1 {
		l1.Snapshot(w)
	}
	h.l2.Snapshot(w)

	keys := make([]int64, 0, len(h.sharers))
	for line := range h.sharers {
		keys = append(keys, line)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Len(len(keys))
	for _, line := range keys {
		w.I64(line)
		w.U32(uint32(h.sharers[line]))
	}

	keys = keys[:0]
	for line := range h.mshr {
		keys = append(keys, line)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Len(len(keys))
	for _, line := range keys {
		e := h.mshr[line]
		w.I64(line)
		w.Bool(e.issued)
		w.Bool(e.demand)
		w.Int(e.stream)
		w.Len(len(e.waiters))
		for _, wt := range e.waiters {
			w.Int(wt.core)
			w.Bool(wt.write)
			w.Int(wt.tag)
			w.Bool(wt.done != nil)
		}
	}

	w.I64s(h.retryQ)
	w.I64s(h.wbQueue)
	w.Bool(h.pf != nil)
	if h.pf != nil {
		h.pf.Snapshot(w)
	}
	w.Bool(h.acted)

	s := &h.stats
	w.I64(s.L1Hits)
	w.I64(s.L1Misses)
	w.I64(s.L2Hits)
	w.I64(s.L2Misses)
	w.I64(s.MSHRMerges)
	w.I64(s.PrefetchHits)
	w.I64(s.Writebacks)
	w.I64(s.Upgrades)
	w.I64(s.Interventions)
	w.I64(s.PrefetchesIssued)
	w.I64(s.PrefetchesDropped)
	w.I64(s.BackInvalidations)
}

// Restore rebuilds the hierarchy from a snapshot. resolve maps a waiter's
// tag back to its done callback (the CPU passes thread indices; resolve
// returns that thread's completion function). It is only consulted for
// waiters that had a callback at snapshot time.
func (h *Hierarchy) Restore(r *snap.Reader, resolve func(tag int) func()) error {
	for _, l1 := range h.l1 {
		if err := l1.Restore(r); err != nil {
			return err
		}
	}
	if err := h.l2.Restore(r); err != nil {
		return err
	}

	ns := r.Len()
	h.sharers = make(map[int64]uint16, ns)
	for i := 0; i < ns; i++ {
		line := r.I64()
		h.sharers[line] = uint16(r.U32())
	}

	nm := r.Len()
	h.mshr = make(map[int64]*mshrEntry, nm)
	for i := 0; i < nm; i++ {
		line := r.I64()
		e := &mshrEntry{issued: r.Bool(), demand: r.Bool(), stream: r.Int()}
		nw := r.Len()
		for j := 0; j < nw; j++ {
			wt := waiter{core: r.Int(), write: r.Bool(), tag: r.Int()}
			if r.Bool() { // had a callback
				if wt.tag < 0 {
					return fmt.Errorf("cache: snapshot waiter for line %d has a callback but no tag", line)
				}
				wt.done = resolve(wt.tag)
			}
			e.waiters = append(e.waiters, wt)
		}
		h.mshr[line] = e
	}

	h.retryQ = r.I64s()
	h.wbQueue = r.I64s()
	hadPF := r.Bool()
	if hadPF != (h.pf != nil) {
		return fmt.Errorf("cache: snapshot prefetcher presence %v, config says %v", hadPF, h.pf != nil)
	}
	if h.pf != nil {
		if err := h.pf.Restore(r); err != nil {
			return err
		}
	}
	h.acted = r.Bool()

	s := &h.stats
	s.L1Hits = r.I64()
	s.L1Misses = r.I64()
	s.L2Hits = r.I64()
	s.L2Misses = r.I64()
	s.MSHRMerges = r.I64()
	s.PrefetchHits = r.I64()
	s.Writebacks = r.I64()
	s.Upgrades = r.I64()
	s.Interventions = r.I64()
	s.PrefetchesIssued = r.I64()
	s.PrefetchesDropped = r.I64()
	s.BackInvalidations = r.I64()
	return r.Err()
}
