package cache

// PrefetchConfig parameterizes the stream prefetcher of Table 2
// (nstreams/distance/degree). A zero Streams count disables prefetching.
// Distance and Degree are in stride units, so strided sweeps (multigrid,
// FFT passes) prefetch as effectively as unit-stride streams.
type PrefetchConfig struct {
	Streams  int
	Distance int
	Degree   int
}

// matchWindow is how far (in lines) a miss may land from a stream's last
// access and still belong to it.
const matchWindow = 64

// stream is one tracked access stream with stride learning.
type stream struct {
	valid     bool
	lastLine  int64
	stride    int64 // learned delta; 0 while untrained
	confident bool  // the stride repeated at least once
	lru       uint64
}

// Prefetcher is a stride-learning stream prefetcher trained on demand L2
// misses (and on first demand touches of prefetched lines, which the
// hierarchy feeds back through the same entry point).
type Prefetcher struct {
	cfg     PrefetchConfig
	streams []stream
	tick    uint64

	Trained int64 // accesses that advanced a confident stream
	Issued  int64 // prefetch lines produced
}

// NewPrefetcher returns a prefetcher, or nil if cfg disables it.
func NewPrefetcher(cfg PrefetchConfig) *Prefetcher {
	if cfg.Streams <= 0 || cfg.Degree <= 0 || cfg.Distance <= 0 {
		return nil
	}
	return &Prefetcher{cfg: cfg, streams: make([]stream, cfg.Streams)}
}

// OnDemandMiss trains the prefetcher with a demand-accessed line and
// returns the lines to prefetch (possibly none).
func (p *Prefetcher) OnDemandMiss(line int64) []int64 {
	p.tick++
	// Closest stream within the window.
	best, bestDist := -1, int64(matchWindow+1)
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			continue
		}
		d := line - s.lastLine
		if d < 0 {
			d = -d
		}
		if d != 0 && d < bestDist {
			best, bestDist = i, d
		}
	}
	if best < 0 {
		// Allocate over the LRU slot.
		v := 0
		for i := 1; i < len(p.streams); i++ {
			if !p.streams[i].valid {
				v = i
				break
			}
			if p.streams[i].lru < p.streams[v].lru {
				v = i
			}
		}
		p.streams[v] = stream{valid: true, lastLine: line, lru: p.tick}
		return nil
	}

	s := &p.streams[best]
	delta := line - s.lastLine
	s.lru = p.tick
	s.lastLine = line
	if delta != s.stride {
		// New or changed stride: relearn before prefetching.
		s.stride = delta
		s.confident = false
		return nil
	}
	s.confident = true
	p.Trained++
	out := make([]int64, 0, p.cfg.Degree)
	for i := 0; i < p.cfg.Degree; i++ {
		target := line + s.stride*int64(p.cfg.Distance+i)
		if target >= 0 {
			out = append(out, target)
		}
	}
	p.Issued += int64(len(out))
	return out
}
