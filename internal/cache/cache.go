// Package cache implements the on-chip memory hierarchy of Table 2:
// per-core write-back L1 data caches kept coherent with MESI, a shared
// inclusive multi-bank L2, MSHRs that merge outstanding misses, and the
// stream prefetcher. It filters the cores' accesses down to the DRAM
// traffic the MiL framework operates on.
package cache

import "fmt"

// State is a MESI coherence state.
type State uint8

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// line is one cache frame.
type line struct {
	tag      int64
	state    State
	dirty    bool
	prefetch bool   // filled by a prefetch and not yet touched by demand
	lru      uint64 // larger = more recently used
}

// Array is a set-associative cache array over cache-line indices, with true
// LRU replacement. It tracks tags and states only; data content lives in
// the memory value model.
type Array struct {
	sets    [][]line
	setMask int64
	ways    int
	tick    uint64

	Hits   int64
	Misses int64
}

// NewArray builds an array of the given total size. sizeBytes/lineBytes
// must be a power-of-two multiple of ways.
func NewArray(sizeBytes, lineBytes, ways int) (*Array, error) {
	if sizeBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cache: bad dims %d/%d/%d", sizeBytes, lineBytes, ways)
	}
	linesTotal := sizeBytes / lineBytes
	if linesTotal%ways != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible by %d ways", linesTotal, ways)
	}
	nsets := linesTotal / ways
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: %d sets not a power of two", nsets)
	}
	a := &Array{sets: make([][]line, nsets), setMask: int64(nsets - 1), ways: ways}
	for i := range a.sets {
		a.sets[i] = make([]line, ways)
	}
	return a, nil
}

// Ways returns the associativity.
func (a *Array) Ways() int { return a.ways }

// Sets returns the set count.
func (a *Array) Sets() int { return len(a.sets) }

func (a *Array) set(lineAddr int64) []line { return a.sets[lineAddr&a.setMask] }

// Lookup finds lineAddr and touches LRU on hit. It returns the line's
// state, or Invalid on miss.
func (a *Array) Lookup(lineAddr int64) State {
	set := a.set(lineAddr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			a.tick++
			set[i].lru = a.tick
			a.Hits++
			return set[i].state
		}
	}
	a.Misses++
	return Invalid
}

// Peek is Lookup without LRU or statistics side effects.
func (a *Array) Peek(lineAddr int64) State {
	set := a.set(lineAddr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			return set[i].state
		}
	}
	return Invalid
}

// SetState transitions an existing line's coherence state; it panics if the
// line is absent (coherence bugs should be loud).
func (a *Array) SetState(lineAddr int64, s State) {
	set := a.set(lineAddr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			if s == Invalid {
				set[i] = line{}
				return
			}
			set[i].state = s
			return
		}
	}
	panic(fmt.Sprintf("cache: SetState(%d, %v) on absent line", lineAddr, s))
}

// Dirty reports the line's dirty bit (false if absent).
func (a *Array) Dirty(lineAddr int64) bool {
	set := a.set(lineAddr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			return set[i].dirty
		}
	}
	return false
}

// MarkDirty sets the dirty bit; panics if the line is absent.
func (a *Array) MarkDirty(lineAddr int64) {
	set := a.set(lineAddr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			set[i].dirty = true
			return
		}
	}
	panic(fmt.Sprintf("cache: MarkDirty(%d) on absent line", lineAddr))
}

// SetPrefetched marks a present line as prefetch-filled.
func (a *Array) SetPrefetched(lineAddr int64) {
	set := a.set(lineAddr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			set[i].prefetch = true
			return
		}
	}
}

// TakePrefetched clears and returns a line's prefetch mark; the first
// demand touch of a prefetched line uses it to keep the stream running.
func (a *Array) TakePrefetched(lineAddr int64) bool {
	set := a.set(lineAddr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			was := set[i].prefetch
			set[i].prefetch = false
			return was
		}
	}
	return false
}

// Victim describes a line evicted by Insert.
type Victim struct {
	Line  int64
	State State
	Dirty bool
	Valid bool
}

// Insert places lineAddr in state s, evicting the LRU way if the set is
// full. Inserting a line that is already present just updates its state.
func (a *Array) Insert(lineAddr int64, s State, dirty bool) Victim {
	set := a.set(lineAddr)
	a.tick++
	// Already present: refresh.
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			set[i].state = s
			set[i].dirty = set[i].dirty || dirty
			set[i].lru = a.tick
			return Victim{}
		}
	}
	// Free way.
	for i := range set {
		if set[i].state == Invalid {
			set[i] = line{tag: lineAddr, state: s, dirty: dirty, lru: a.tick}
			return Victim{}
		}
	}
	// Evict LRU.
	v := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[v].lru {
			v = i
		}
	}
	victim := Victim{Line: set[v].tag, State: set[v].state, Dirty: set[v].dirty, Valid: true}
	set[v] = line{tag: lineAddr, state: s, dirty: dirty, lru: a.tick}
	return victim
}

// Invalidate removes a line if present, returning its prior state and
// dirty bit.
func (a *Array) Invalidate(lineAddr int64) (State, bool) {
	set := a.set(lineAddr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			s, d := set[i].state, set[i].dirty
			set[i] = line{}
			return s, d
		}
	}
	return Invalid, false
}
