package obs

// Obs bundles the two observability sinks a simulation can feed: the
// metrics registry and the command/bus trace. Either (or both) may be
// nil; components must treat a nil *Obs exactly like a fully-nil one.
// Components resolve their handles from Obs once at construction and
// keep a single nil-checked pointer on the hot path, so a disabled run
// pays one branch and zero allocations.
type Obs struct {
	Metrics *Registry
	Trace   *Trace
}

// Enabled reports whether any sink is attached.
func (o *Obs) Enabled() bool {
	return o != nil && (o.Metrics != nil || o.Trace != nil)
}

// Counter resolves a counter handle, nil-safe on a nil *Obs.
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge resolves a gauge handle, nil-safe on a nil *Obs.
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Hist resolves a histogram handle, nil-safe on a nil *Obs.
func (o *Obs) Hist(name string, edges ...int64) *Hist {
	if o == nil {
		return nil
	}
	return o.Metrics.Hist(name, edges...)
}

// NewTrack registers a trace track, nil-safe on a nil *Obs (returns a
// nil no-op track).
func (o *Obs) NewTrack(name string, scale int64) *Track {
	if o == nil {
		return nil
	}
	return o.Trace.NewTrack(name, scale)
}

// IdleWindowEdges are the bucket edges (in DRAM cycles) for the
// data-bus idle-window-length histogram — the direct measurement of the
// Figure-5 opportunity MiL exploits. Windows shorter than a burst
// (<= 8 cycles at BL16) are unusable; the paper's schemes need 2–8
// extra bus cycles per burst.
var IdleWindowEdges = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}
