package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter value = %d, want 42", got)
	}
	if again := r.Counter("c"); again != c {
		t.Fatalf("second Counter lookup returned a different handle")
	}

	g := r.Gauge("g")
	g.Max(5)
	g.Max(3) // lower sample must not regress the maximum
	g.Max(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge value = %d, want 9", got)
	}
}

func TestHistBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Hist("h", 1, 4, 16)
	for _, v := range []int64{0, 1, 2, 4, 5, 16, 17, 1000} {
		h.Add(v)
	}
	// v <= edge lands in the first matching bucket: {0,1} -> le<=1,
	// {2,4} -> le<=4, {5,16} -> le<=16, {17,1000} -> overflow.
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if got := h.Bucket(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 0+1+2+4+5+16+17+1000 {
		t.Errorf("sum = %d, want %d", h.Sum(), 0+1+2+4+5+16+17+1000)
	}
	// First registration wins; a later call with different edges returns
	// the same histogram.
	if again := r.Hist("h", 2, 3); again != h {
		t.Fatalf("second Hist lookup returned a different handle")
	}
}

func TestHistRejectsBadEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("non-increasing edges did not panic")
		}
	}()
	NewRegistry().Hist("bad", 4, 4)
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("x"), r.Gauge("x"), r.Hist("x", 1)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil handles")
	}
	c.Inc()
	c.Add(3)
	g.Max(7)
	h.Add(9)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Bucket(0) != 0 {
		t.Fatalf("nil handles recorded state")
	}
	if err := r.WriteCSV(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WriteCSV: %v", err)
	}

	var o *Obs
	if o.Enabled() {
		t.Fatalf("nil Obs reports Enabled")
	}
	o.Counter("x").Inc()
	o.Gauge("x").Max(1)
	o.Hist("x", 1).Add(1)
	o.NewTrack("x", 1).Instant("e", 0, Args{})
}

func TestNilHandlesZeroAlloc(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Hist
		k *Track
	)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Max(3)
		h.Add(4)
		k.Instant("e", 1, Args{})
		k.Slice("s", 1, 2, Args{})
	}); n != 0 {
		t.Fatalf("nil handles allocate: %v allocs/op, want 0", n)
	}
}

func TestLiveHandlesZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Hist("h", 1, 2, 4)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Max(5)
		h.Add(3)
	}); n != 0 {
		t.Fatalf("recording through resolved handles allocates: %v allocs/op, want 0", n)
	}
}

func TestWriteCSVDeterministic(t *testing.T) {
	r := NewRegistry()
	// Register out of order; the snapshot must sort by kind then name.
	r.Counter("zeta").Add(2)
	r.Counter("alpha").Add(1)
	r.Gauge("peak").Max(7)
	h := r.Hist("win", 1, 4)
	h.Add(1)
	h.Add(3)
	h.Add(99)

	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"kind,name,field,value",
		"counter,alpha,,1",
		"counter,zeta,,2",
		"gauge,peak,,7",
		"hist,win,le<=1,1",
		"hist,win,le<=4,1",
		"hist,win,le<=+Inf,1",
		"hist,win,count,3",
		"hist,win,sum,103",
		"",
	}, "\n")
	if sb.String() != want {
		t.Errorf("CSV snapshot mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestConcurrentRecordingCommutes drives the registry from many
// goroutines and checks the totals are exact: counter adds, histogram
// buckets, and gauge maxima all commute, which is what makes experiment
// metrics byte-identical at any -j.
func TestConcurrentRecordingCommutes(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Hist("h", 10, 100)
			for i := 0; i < per; i++ {
				c.Inc()
				g.Max(int64(w*per + i))
				h.Add(int64(i % 150))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("g").Value(); got != workers*per-1 {
		t.Errorf("gauge = %d, want %d", got, workers*per-1)
	}
	if got := r.Hist("h", 10, 100).Count(); got != workers*per {
		t.Errorf("hist count = %d, want %d", got, workers*per)
	}
}
