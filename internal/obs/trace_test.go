package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// decodeTrace round-trips the exporter's output through encoding/json,
// which is the library Perfetto-compatible consumers agree with: if this
// parses, the hand-rolled writer produced valid JSON.
func decodeTrace(t *testing.T, tr *Trace) map[string]any {
	t.Helper()
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v\n%s", err, sb.String())
	}
	return doc
}

func events(t *testing.T, doc map[string]any) []map[string]any {
	t.Helper()
	raw, ok := doc["traceEvents"].([]any)
	if !ok {
		t.Fatalf("traceEvents missing or not an array: %v", doc["traceEvents"])
	}
	out := make([]map[string]any, len(raw))
	for i, e := range raw {
		out[i] = e.(map[string]any)
	}
	return out
}

func TestTraceJSONShape(t *testing.T) {
	tr := NewTrace(16)
	tr.SetTimebase(2) // 2ns per CPU cycle
	cmd := tr.NewTrack("ch0 cmd", 2)
	bus := tr.NewTrack("ch0 bus", 2)
	cmd.Instant("RD", 10, Args{HasLoc: true, Rank: 1, Group: 2, Bank: 3, Row: 77})
	bus.Slice("burst", 10, 18, Args{HasData: true, Beats: 8, Zeros: 3, Codec: "mil"})
	bus.Slice("idle", 18, 50, Args{})

	doc := decodeTrace(t, tr)
	if doc["displayTimeUnit"] != "ns" {
		t.Errorf("displayTimeUnit = %v, want ns", doc["displayTimeUnit"])
	}
	evs := events(t, doc)
	// Two metadata records per track, then the three events.
	if len(evs) != 4+3 {
		t.Fatalf("got %d events, want 7", len(evs))
	}
	meta := evs[0]
	if meta["ph"] != "M" || meta["name"] != "thread_name" {
		t.Errorf("first record is not a thread_name metadata event: %v", meta)
	}
	if name := meta["args"].(map[string]any)["name"]; name != "ch0 cmd" {
		t.Errorf("track name = %v, want ch0 cmd", name)
	}

	inst := evs[4]
	if inst["ph"] != "i" || inst["s"] != "t" {
		t.Errorf("instant missing thread scope: %v", inst)
	}
	// DRAM tick 10 at scale 2 = CPU cycle 20 = 40ns = 0.040us.
	if ts := inst["ts"].(float64); ts != 0.040 {
		t.Errorf("instant ts = %v us, want 0.040", ts)
	}
	args := inst["args"].(map[string]any)
	if args["rank"] != 1.0 || args["group"] != 2.0 || args["bank"] != 3.0 || args["row"] != 77.0 {
		t.Errorf("command location args = %v", args)
	}

	slice := evs[5]
	if slice["ph"] != "X" {
		t.Errorf("slice ph = %v, want X", slice["ph"])
	}
	if dur := slice["dur"].(float64); dur != 0.032 { // 8 DRAM ticks * 2 * 2ns
		t.Errorf("slice dur = %v us, want 0.032", dur)
	}
	sargs := slice["args"].(map[string]any)
	if sargs["beats"] != 8.0 || sargs["zeros"] != 3.0 || sargs["codec"] != "mil" {
		t.Errorf("burst args = %v", sargs)
	}
	if _, ok := evs[6]["args"]; ok {
		t.Errorf("zero-value Args emitted an args object: %v", evs[6])
	}
}

func TestTraceBounded(t *testing.T) {
	tr := NewTrace(4)
	k := tr.NewTrack("t", 1)
	for i := int64(0); i < 10; i++ {
		k.Instant("e", i, Args{})
	}
	if tr.Len() != 4 {
		t.Errorf("recorded %d events, want cap 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
	doc := decodeTrace(t, tr)
	if got := doc["milsimDroppedEvents"].(float64); got != 6 {
		t.Errorf("milsimDroppedEvents = %v, want 6", got)
	}
}

func TestTraceNameEscaping(t *testing.T) {
	tr := NewTrace(4)
	k := tr.NewTrack("quote\"back\\slash", 1)
	k.Instant("tab\there", 0, Args{})
	doc := decodeTrace(t, tr)
	evs := events(t, doc)
	if name := evs[0]["args"].(map[string]any)["name"]; name != "quote\"back\\slash" {
		t.Errorf("track name did not round-trip: %v", name)
	}
	if name := evs[2]["name"]; name != "tab\there" {
		t.Errorf("event name did not round-trip: %v", name)
	}
}

func TestTraceIgnoresEmptySlices(t *testing.T) {
	tr := NewTrace(4)
	k := tr.NewTrack("t", 1)
	k.Slice("empty", 5, 5, Args{})
	k.Slice("inverted", 5, 3, Args{})
	if tr.Len() != 0 {
		t.Errorf("degenerate slices were recorded: %d events", tr.Len())
	}
}

func TestNilTraceNoOps(t *testing.T) {
	var tr *Trace
	tr.SetTimebase(2)
	k := tr.NewTrack("t", 1)
	if k != nil {
		t.Fatalf("nil trace handed out a non-nil track")
	}
	k.Instant("e", 0, Args{})
	k.Slice("s", 0, 1, Args{})
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("nil trace recorded state")
	}
	if err := tr.WriteJSON(&strings.Builder{}); err != nil {
		t.Fatalf("nil trace WriteJSON: %v", err)
	}
}
