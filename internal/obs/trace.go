package obs

import (
	"fmt"
	"io"
	"strconv"
)

// Trace is a bounded in-memory recorder of timeline events, exported as
// Chrome trace-event JSON (the format Perfetto and chrome://tracing
// load). Producers record through *Track handles — one track per
// conceptual timeline (a channel's command stream, its data bus, the
// event core) — with timestamps in their own clock domain; each track
// carries a scale converting its ticks to CPU cycles, and the exporter
// converts CPU cycles to wall time with the timebase set by the driver.
//
// A nil *Trace (and the nil *Track it hands out) is a valid no-op, so
// tracing shares the zero-cost-when-disabled discipline of the registry.
// The recorder is NOT safe for concurrent producers: tracing is a
// single-simulation, single-worker affair (milsim forces -j 1).
type Trace struct {
	cap     int
	dropped int64
	tracks  []*Track
	names   []string
	events  []traceEvent
	// nsPerCPUCycle converts CPU cycles to nanoseconds on export.
	nsPerCPUCycle float64
}

// Phase bytes from the trace-event format: complete slices and instants.
const (
	phaseSlice   = 'X'
	phaseInstant = 'i'
)

type traceEvent struct {
	tid  int32
	ph   byte
	ts   int64 // CPU cycles
	dur  int64 // CPU cycles, slices only
	name string
	args Args
}

// Args are the structured annotations attached to a trace event. The
// zero value emits no args object. Fields are split into groups with
// presence flags so the exporter can keep the JSON minimal.
type Args struct {
	// DRAM command location (HasLoc).
	HasLoc bool
	Rank   int32
	Group  int32
	Bank   int32
	Row    int32
	// Data-burst annotations (HasData).
	HasData bool
	Beats   int32
	Zeros   int32
	Codec   string
}

// Track is a named timeline within a trace. Events recorded through a
// track are stamped with its thread id and scaled from the producer's
// clock domain into CPU cycles.
type Track struct {
	tr    *Trace
	tid   int32
	scale int64
}

// NewTrace returns a recorder that keeps at most capEvents events;
// further events are counted as dropped rather than recorded, so a
// runaway simulation cannot exhaust memory. capEvents <= 0 selects a
// default of 1<<20.
func NewTrace(capEvents int) *Trace {
	if capEvents <= 0 {
		capEvents = 1 << 20
	}
	return &Trace{cap: capEvents, nsPerCPUCycle: 1}
}

// SetTimebase sets the wall-time duration of one CPU cycle, used on
// export. Defaults to 1ns per cycle.
func (t *Trace) SetTimebase(nsPerCPUCycle float64) {
	if t == nil || nsPerCPUCycle <= 0 {
		return
	}
	t.nsPerCPUCycle = nsPerCPUCycle
}

// NewTrack registers a timeline. scale is the number of CPU cycles per
// tick of the producer's clock (1 for CPU-domain producers, 2 for
// DRAM-domain producers under the standard 2:1 clock). Returns nil on a
// nil trace. Tracks are displayed in registration order.
func (t *Trace) NewTrack(name string, scale int64) *Track {
	if t == nil {
		return nil
	}
	if scale <= 0 {
		scale = 1
	}
	tk := &Track{tr: t, tid: int32(len(t.tracks) + 1), scale: scale}
	t.tracks = append(t.tracks, tk)
	t.names = append(t.names, name)
	return tk
}

// Dropped reports how many events were discarded after the recorder
// filled (0 on a nil trace).
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Len reports the number of recorded events (0 on a nil trace).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

func (t *Trace) record(ev traceEvent) {
	if len(t.events) >= t.cap {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Instant records a point event at tick ts of the track's clock.
func (k *Track) Instant(name string, ts int64, args Args) {
	if k == nil {
		return
	}
	k.tr.record(traceEvent{tid: k.tid, ph: phaseInstant, ts: ts * k.scale, name: name, args: args})
}

// Slice records a duration event covering ticks [start, end) of the
// track's clock. Empty and inverted spans are ignored.
func (k *Track) Slice(name string, start, end int64, args Args) {
	if k == nil || end <= start {
		return
	}
	k.tr.record(traceEvent{tid: k.tid, ph: phaseSlice, ts: start * k.scale, dur: (end - start) * k.scale, name: name, args: args})
}

// WriteJSON writes the trace in Chrome trace-event JSON object format:
// a metadata thread_name/thread_sort_index pair per track followed by
// the recorded events, timestamps in microseconds. Perfetto and
// chrome://tracing both load the output directly. Output is
// deterministic: field order is fixed and floats are formatted with
// three fractional digits (nanosecond resolution).
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := &errWriter{w: w}
	bw.str(`{"displayTimeUnit":"ns","traceEvents":[`)
	first := true
	sep := func() {
		if !first {
			bw.str(",")
		}
		first = false
	}
	for i, tk := range t.tracks {
		sep()
		bw.str(`{"ph":"M","pid":1,"tid":`)
		bw.int(int64(tk.tid))
		bw.str(`,"name":"thread_name","args":{"name":`)
		bw.quoted(t.names[i])
		bw.str(`}}`)
		sep()
		bw.str(`{"ph":"M","pid":1,"tid":`)
		bw.int(int64(tk.tid))
		bw.str(`,"name":"thread_sort_index","args":{"sort_index":`)
		bw.int(int64(tk.tid))
		bw.str(`}}`)
	}
	for i := range t.events {
		ev := &t.events[i]
		sep()
		bw.str(`{"ph":"`)
		bw.w.Write([]byte{ev.ph})
		bw.str(`","pid":1,"tid":`)
		bw.int(int64(ev.tid))
		bw.str(`,"ts":`)
		bw.us(ev.ts, t.nsPerCPUCycle)
		if ev.ph == phaseSlice {
			bw.str(`,"dur":`)
			bw.us(ev.dur, t.nsPerCPUCycle)
		}
		if ev.ph == phaseInstant {
			bw.str(`,"s":"t"`)
		}
		bw.str(`,"name":`)
		bw.quoted(ev.name)
		if ev.args.HasLoc || ev.args.HasData {
			bw.str(`,"args":{`)
			afirst := true
			field := func(name string, v int64) {
				if !afirst {
					bw.str(",")
				}
				afirst = false
				bw.str(`"`)
				bw.str(name)
				bw.str(`":`)
				bw.int(v)
			}
			if ev.args.HasLoc {
				field("rank", int64(ev.args.Rank))
				field("group", int64(ev.args.Group))
				field("bank", int64(ev.args.Bank))
				field("row", int64(ev.args.Row))
			}
			if ev.args.HasData {
				field("beats", int64(ev.args.Beats))
				field("zeros", int64(ev.args.Zeros))
				if ev.args.Codec != "" {
					bw.str(`,"codec":`)
					bw.quoted(ev.args.Codec)
				}
			}
			bw.str("}")
		}
		bw.str("}")
	}
	bw.str("]")
	if t.dropped > 0 {
		bw.str(`,"milsimDroppedEvents":`)
		bw.int(t.dropped)
	}
	bw.str("}\n")
	return bw.err
}

// errWriter concentrates error handling for the hand-rolled exporter.
type errWriter struct {
	w   io.Writer
	err error
	buf [32]byte
}

func (e *errWriter) str(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

func (e *errWriter) int(v int64) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(strconv.AppendInt(e.buf[:0], v, 10))
}

// us writes a CPU-cycle timestamp as microseconds with fixed
// three-digit precision.
func (e *errWriter) us(cycles int64, nsPerCycle float64) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(strconv.AppendFloat(e.buf[:0], float64(cycles)*nsPerCycle/1000, 'f', 3, 64))
}

func (e *errWriter) quoted(s string) {
	if e.err != nil {
		return
	}
	// Track and event names are simple identifiers; fall back to fmt for
	// anything that needs escaping.
	for i := 0; i < len(s); i++ {
		if s[i] == '"' || s[i] == '\\' || s[i] < 0x20 {
			_, e.err = io.WriteString(e.w, fmt.Sprintf("%q", s))
			return
		}
	}
	e.str(`"`)
	e.str(s)
	e.str(`"`)
}
