// Package obs is the simulator's observability layer: a metrics registry
// (counters, gauges, fixed-bucket histograms) and a bounded per-command
// trace recorder with a Chrome trace-event exporter (DESIGN.md §5.9).
//
// The layer is strictly zero-cost when disabled. Every handle type
// (*Counter, *Gauge, *Hist, *Track) treats a nil receiver as a no-op, and
// every instrumented component keeps a single nil-checked pointer so the
// disabled hot path is one predictable branch and zero allocations —
// verified by AllocsPerRun tests in memctrl and obs.
//
// All mutating registry operations are atomic integer updates (counters
// and histogram buckets add; gauges take a running maximum), so
// concurrent simulation workers produce byte-identical snapshots at any
// worker count: integer sums and maxima commute. Quantities that are
// naturally floating point (energy) are recorded as rounded integer
// nanojoules for the same reason.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter is
// a valid no-op handle.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be >= 0; negative adds are a programming error but
// are not checked on the hot path).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge records a running maximum. Max is the only mutator so that
// concurrent recording commutes; use it for peaks (queue depths, window
// lengths), not for last-value semantics.
type Gauge struct {
	v atomic.Int64
}

// Max raises the gauge to n if n is larger.
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current maximum (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Hist is a fixed-bucket histogram over int64 samples. Bucket i counts
// samples v <= edges[i] (first matching edge); samples beyond the last
// edge land in the overflow bucket. Count and Sum track all samples, so
// an instrumented quantity can be reconciled exactly against independent
// aggregate counters (the Figure-5 idle-cycle reconciliation test).
type Hist struct {
	edges   []int64
	buckets []atomic.Int64 // len(edges)+1; last is overflow
	count   atomic.Int64
	sum     atomic.Int64
}

// Add records one sample.
func (h *Hist) Add(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.edges) && v > h.edges[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples (0 on a nil handle).
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples (0 on a nil handle).
func (h *Hist) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket returns the count in bucket i (i == len(edges) is overflow).
func (h *Hist) Bucket(i int) int64 {
	if h == nil {
		return 0
	}
	return h.buckets[i].Load()
}

// Registry names and owns metric handles. Handle lookup takes a mutex
// and may allocate; hot paths must resolve handles once up front and
// record through them (recording is lock-free). A nil *Registry hands
// out nil handles, so components can thread a possibly-nil registry
// without guards at every increment site.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Hist returns the histogram registered under name, creating it with the
// given bucket edges on first use. Edges must be strictly increasing; a
// later call with different edges returns the existing histogram (the
// first registration wins). Returns nil on a nil registry.
func (r *Registry) Hist(name string, edges ...int64) *Hist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		for i := 1; i < len(edges); i++ {
			if edges[i] <= edges[i-1] {
				panic(fmt.Sprintf("obs: histogram %q edges not strictly increasing", name))
			}
		}
		h = &Hist{edges: append([]int64(nil), edges...), buckets: make([]atomic.Int64, len(edges)+1)}
		r.hists[name] = h
	}
	return h
}

// WriteCSV writes a deterministic snapshot: one `counter,name,value` /
// `gauge,name,value` line per metric and one `hist,name,le<=edge,count`
// line per bucket (plus `count` and `sum` rows), all sorted by kind then
// name. Byte-identical output at any worker count is a tested invariant.
func (r *Registry) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	if _, err := io.WriteString(w, "kind,name,field,value\n"); err != nil {
		return err
	}
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "counter,%s,,%d\n", name, r.counters[name].Value()); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "gauge,%s,,%d\n", name, r.gauges[name].Value()); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		for i, edge := range h.edges {
			if _, err := fmt.Fprintf(w, "hist,%s,le<=%s,%d\n", name, strconv.FormatInt(edge, 10), h.buckets[i].Load()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "hist,%s,le<=+Inf,%d\n", name, h.buckets[len(h.edges)].Load()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "hist,%s,count,%d\n", name, h.count.Load()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "hist,%s,sum,%d\n", name, h.sum.Load()); err != nil {
			return err
		}
	}
	return nil
}
