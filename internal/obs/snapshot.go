package obs

import (
	"fmt"
	"sort"
	"sync/atomic"

	"mil/internal/snap"
)

// Snapshot serializes every registered metric in sorted-name order.
// Components re-resolve their handles on restore as they do at startup,
// so values land back in the same named slots; histograms restore into
// existing registrations when present and re-create them (edges included)
// otherwise.
func (r *Registry) Snapshot(w *snap.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()

	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Len(len(names))
	for _, name := range names {
		w.String(name)
		w.I64(r.counters[name].Value())
	}

	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Len(len(names))
	for _, name := range names {
		w.String(name)
		w.I64(r.gauges[name].Value())
	}

	names = names[:0]
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Len(len(names))
	for _, name := range names {
		h := r.hists[name]
		w.String(name)
		w.I64s(h.edges)
		buckets := make([]int64, len(h.buckets))
		for i := range h.buckets {
			buckets[i] = h.buckets[i].Load()
		}
		w.I64s(buckets)
		w.I64(h.count.Load())
		w.I64(h.sum.Load())
	}
}

// Restore implements snap.Snapshotter.
func (r *Registry) Restore(rd *snap.Reader) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	nc := rd.Len()
	for i := 0; i < nc; i++ {
		name := rd.String()
		v := rd.I64()
		c, ok := r.counters[name]
		if !ok {
			c = &Counter{}
			r.counters[name] = c
		}
		c.v.Store(v)
	}
	ng := rd.Len()
	for i := 0; i < ng; i++ {
		name := rd.String()
		v := rd.I64()
		g, ok := r.gauges[name]
		if !ok {
			g = &Gauge{}
			r.gauges[name] = g
		}
		g.v.Store(v)
	}
	nh := rd.Len()
	for i := 0; i < nh; i++ {
		name := rd.String()
		edges := rd.I64s()
		buckets := rd.I64s()
		count := rd.I64()
		sum := rd.I64()
		h, ok := r.hists[name]
		if !ok {
			h = &Hist{edges: edges, buckets: make([]atomic.Int64, len(edges)+1)}
			r.hists[name] = h
		}
		if len(buckets) != len(h.buckets) {
			return fmt.Errorf("obs: snapshot histogram %q has %d buckets, this build has %d", name, len(buckets), len(h.buckets))
		}
		for i := range buckets {
			h.buckets[i].Store(buckets[i])
		}
		h.count.Store(count)
		h.sum.Store(sum)
	}
	return rd.Err()
}
