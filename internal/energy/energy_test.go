package energy

import (
	"testing"

	"mil/internal/dram"
	"mil/internal/memctrl"
)

func TestPowerPresetsValid(t *testing.T) {
	for _, p := range []DRAMPower{DDR4Power(), LPDDR3Power()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestPowerValidation(t *testing.T) {
	p := DDR4Power()
	p.VDD = 0
	if p.Validate() == nil {
		t.Error("zero VDD accepted")
	}
	p = DDR4Power()
	p.IDD3N = p.IDD2N - 1
	if p.Validate() == nil {
		t.Error("IDD3N < IDD2N accepted")
	}
	p = DDR4Power()
	p.IDD4R = 0
	if p.Validate() == nil {
		t.Error("zero IDD4R accepted")
	}
}

// syntheticStats builds a plausible run for formula checks.
func syntheticStats() *memctrl.Stats {
	s := memctrl.NewStats()
	s.Reads = 1000
	s.Writes = 500
	s.Activates = 300
	s.Refreshes = 10
	s.BusyCycles = 6000
	s.CostUnits = 300000
	s.Zeros = 300000
	s.BurstBeats = 12000
	s.CodecBursts["milc"] = 1200
	s.CodecBursts["lwc3"] = 300
	return s
}

func TestDRAMEnergyBreakdownPositive(t *testing.T) {
	b, err := DRAMEnergy(DDR4Power(), dram.DDR4_3200(), 2, syntheticStats(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"background": b.Background, "actpre": b.ActPre, "rdwr": b.RdWr,
		"refresh": b.Refresh, "io": b.IO, "codec": b.Codec,
	} {
		if v <= 0 {
			t.Errorf("%s energy = %v, want > 0", name, v)
		}
	}
	if b.Total() <= b.Background {
		t.Error("total not larger than background")
	}
}

func TestDRAMEnergyScalesWithZeros(t *testing.T) {
	s1 := syntheticStats()
	s2 := syntheticStats()
	s2.CostUnits *= 2
	b1, err := DRAMEnergy(DDR4Power(), dram.DDR4_3200(), 2, s1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := DRAMEnergy(DDR4Power(), dram.DDR4_3200(), 2, s2, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if b2.IO <= b1.IO*1.9 || b2.IO >= b1.IO*2.1 {
		t.Fatalf("IO energy not proportional: %v vs %v", b1.IO, b2.IO)
	}
	if b2.Background != b1.Background {
		t.Fatal("background should not depend on zeros")
	}
}

func TestDRAMEnergyLongerRunMoreBackground(t *testing.T) {
	s := syntheticStats()
	b1, _ := DRAMEnergy(DDR4Power(), dram.DDR4_3200(), 2, s, 100000)
	b2, _ := DRAMEnergy(DDR4Power(), dram.DDR4_3200(), 2, s, 200000)
	if b2.Background <= b1.Background {
		t.Fatal("background must grow with runtime")
	}
	if b2.IO != b1.IO {
		t.Fatal("IO must not grow with runtime alone")
	}
}

func TestDRAMEnergyRejectsBadInput(t *testing.T) {
	if _, err := DRAMEnergy(DDR4Power(), dram.DDR4_3200(), 2, syntheticStats(), 0); err == nil {
		t.Error("zero cycles accepted")
	}
	bad := DDR4Power()
	bad.VDD = -1
	if _, err := DRAMEnergy(bad, dram.DDR4_3200(), 2, syntheticStats(), 1000); err == nil {
		t.Error("invalid power accepted")
	}
}

func TestBaselineHasNoCodecEnergy(t *testing.T) {
	s := syntheticStats()
	s.CodecBursts = map[string]int64{"dbi": 1500}
	b, err := DRAMEnergy(DDR4Power(), dram.DDR4_3200(), 2, s, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if b.Codec != 0 {
		t.Fatalf("DBI baseline charged codec energy %v", b.Codec)
	}
}

func TestCAFOAndStretchedMapToMiLCCosts(t *testing.T) {
	for _, name := range []string{"cafo2", "cafo4", "milc+bl12"} {
		if _, ok := codecCostsFor(name); !ok {
			t.Errorf("%s has no codec cost class", name)
		}
	}
	if _, ok := codecCostsFor("raw"); ok {
		t.Error("raw should have no codec cost")
	}
}

func TestTable4Values(t *testing.T) {
	milc := Table4["milc"]
	if milc.Enc.AreaUM2 != 1429 || milc.Enc.PowerMW != 3.32 || milc.Enc.LatencyNS != 0.35 {
		t.Fatalf("MiLC encoder row mismatch: %+v", milc.Enc)
	}
	lwc := Table4["lwc3"]
	if lwc.Dec.AreaUM2 != 81 || lwc.Dec.PowerMW != 0.70 || lwc.Dec.LatencyNS != 0.12 {
		t.Fatalf("3-LWC decoder row mismatch: %+v", lwc.Dec)
	}
}

func TestCPUEnergy(t *testing.T) {
	p := ServerCPUPower()
	e := CPUEnergy(p, 1.0, 0)
	if e != p.StaticW {
		t.Fatalf("static-only energy %v", e)
	}
	e2 := CPUEnergy(p, 1.0, 1_000_000_000)
	if e2 <= e {
		t.Fatal("instructions add no energy")
	}
	sys := SystemEnergy{CPU: 2, DRAM: Breakdown{Background: 1, IO: 0.5}}
	if sys.Total() != 3.5 {
		t.Fatalf("system total %v", sys.Total())
	}
}

func TestLPDDR3BackgroundMuchLowerThanDDR4(t *testing.T) {
	// The mobile part's background power must be far below the server's -
	// that asymmetry is why MiL's IO savings matter more on LPDDR3
	// (Section 7.4).
	s := syntheticStats()
	d4, _ := DRAMEnergy(DDR4Power(), dram.DDR4_3200(), 2, s, 100000)
	// Same wall-clock seconds: LPDDR3's clock is 2x slower.
	lp, _ := DRAMEnergy(LPDDR3Power(), dram.LPDDR3_1600(), 2, s, 50000)
	if lp.Background*4 > d4.Background {
		t.Fatalf("LPDDR3 background %v not << DDR4 %v", lp.Background, d4.Background)
	}
}

func TestHybridCodecCosts(t *testing.T) {
	c, ok := codecCostsFor("hybrid")
	if !ok {
		t.Fatal("hybrid has no cost class")
	}
	milc := Table4["milc"]
	lwc := Table4["lwc3"]
	if c.Enc.PowerMW <= lwc.Enc.PowerMW || c.Enc.PowerMW >= milc.Enc.PowerMW {
		t.Fatalf("hybrid encoder power %v not between the halves", c.Enc.PowerMW)
	}
}
