// Package energy implements the evaluation's energy models (Section 6):
// a Micron-power-calculator-style DRAM model driven by IDD currents
// (background, activate/precharge, read/write, refresh), the IO interface
// models of Section 2.1 (POD zeros on DDR4, wire toggles on unterminated
// LPDDR3), the synthesized codec costs of Table 4, and a McPAT-like CPU
// envelope for the system-energy roll-ups of Figure 19.
package energy

import (
	"fmt"
	"math"

	"mil/internal/dram"
	"mil/internal/memctrl"
	"mil/internal/obs"
)

// DRAMPower holds the electrical constants of one memory technology. The
// IDD currents are per rank (the per-chip datasheet values times the chips
// per rank), in milliamperes at VDD.
type DRAMPower struct {
	Name string
	VDD  float64 // volts

	IDD2N float64 // precharge standby
	IDD2P float64 // fast power-down (the Section 7.3 extension)
	IDD3N float64 // active standby (the evaluated default, Section 7.3)
	IDD0  float64 // ACT-PRE cycling average
	IDD4R float64 // burst read
	IDD4W float64 // burst write
	IDD5  float64 // refresh burst

	// IOEnergyPJ is the picojoules one IO cost unit consumes: one zero
	// bit-time on the VDDQ-terminated DDR4 bus, or one wire toggle on the
	// unterminated LPDDR3 bus.
	IOEnergyPJ float64
}

// DDR4Power returns the DDR4-3200 constants: per-chip datasheet IDDs times
// eight x8 chips per rank, and the POD driver/termination dissipation per
// transmitted zero (VDDQ^2/(Ron+Rtt) for one bit time, plus the secondary
// termination paths of a dual-rank channel).
func DDR4Power() DRAMPower {
	return DRAMPower{
		Name: "DDR4-3200", VDD: 1.2,
		IDD2N: 8 * 34, IDD2P: 8 * 22, IDD3N: 8 * 44, IDD0: 8 * 58,
		IDD4R: 8 * 150, IDD4W: 8 * 130, IDD5: 8 * 190,
		IOEnergyPJ: 13.0,
	}
}

// LPDDR3Power returns the LPDDR3-1600 constants: aggressively low
// background currents (the mobile optimization the paper leans on in
// Section 7.4) and the CV^2 toggle energy of the unterminated bus.
func LPDDR3Power() DRAMPower {
	return DRAMPower{
		Name: "LPDDR3-1600", VDD: 1.2,
		IDD2N: 12, IDD2P: 2, IDD3N: 30, IDD0: 70,
		IDD4R: 320, IDD4W: 300, IDD5: 350,
		IOEnergyPJ: 14.0,
	}
}

// Validate reports nonsensical constants.
func (p *DRAMPower) Validate() error {
	if p.VDD <= 0 || p.IOEnergyPJ <= 0 {
		return fmt.Errorf("energy: VDD %v / IO %v", p.VDD, p.IOEnergyPJ)
	}
	for _, v := range []float64{p.IDD2N, p.IDD3N, p.IDD0, p.IDD4R, p.IDD4W, p.IDD5} {
		if v <= 0 {
			return fmt.Errorf("energy: non-positive IDD in %s", p.Name)
		}
	}
	if p.IDD3N < p.IDD2N || p.IDD4R < p.IDD3N || p.IDD4W < p.IDD3N {
		return fmt.Errorf("energy: IDD ordering violated in %s", p.Name)
	}
	if p.IDD2P < 0 || p.IDD2P > p.IDD2N {
		return fmt.Errorf("energy: IDD2P %v outside [0, IDD2N] in %s", p.IDD2P, p.Name)
	}
	return nil
}

// CodecCost is one synthesized block from Table 4 (22nm DRAM process).
type CodecCost struct {
	AreaUM2   float64
	PowerMW   float64
	LatencyNS float64
}

// CodecCosts is a codec's encoder/decoder pair.
type CodecCosts struct {
	Enc CodecCost
	Dec CodecCost
}

// Table4 reproduces the paper's synthesis results for the two MiL codecs.
// CAFO is modeled as a MiLC-class encoder per iteration.
var Table4 = map[string]CodecCosts{
	"milc": {
		Enc: CodecCost{AreaUM2: 1429, PowerMW: 3.32, LatencyNS: 0.35},
		Dec: CodecCost{AreaUM2: 188, PowerMW: 0.16, LatencyNS: 0.39},
	},
	"lwc3": {
		Enc: CodecCost{AreaUM2: 173, PowerMW: 0.44, LatencyNS: 0.10},
		Dec: CodecCost{AreaUM2: 81, PowerMW: 0.70, LatencyNS: 0.12},
	},
}

// codecCostsFor maps any codec name to its Table 4 class: the DBI/BI
// baselines round to zero (their codecs exist in both configurations), the
// MiL codes use their synthesized numbers, and CAFO variants use MiLC-class
// hardware.
func codecCostsFor(name string) (CodecCosts, bool) {
	if c, ok := Table4[name]; ok {
		return c, true
	}
	if len(name) >= 4 && name[:4] == "cafo" {
		return Table4["milc"], true
	}
	if len(name) >= 4 && name[:4] == "milc" { // stretched variants
		return Table4["milc"], true
	}
	switch {
	case name == "optmem", len(name) >= 4 && name[:4] == "vlwc":
		// The literature codecs are table lookups (optmem) or a short
		// enumerative pipeline (vlwc): comparable logic depth to the 3-LWC
		// mapper, so they borrow its synthesized block. Deliberately NOT
		// entries in Table4 itself, which reproduces the paper's table
		// verbatim (and feeds the table-4.md golden).
		return Table4["lwc3"], true
	case len(name) >= 3 && name[:3] == "zad":
		// ZAD's encoder is an 8-input NOR per chunk and its decoder a mask
		// mux: well under a tenth of the 3-LWC mapper. Round the same way
		// the DBI baseline does - the codec energy term stays zero rather
		// than inventing an unsynthesized number.
		return CodecCosts{}, false
	}
	if name == "hybrid" {
		// Half a MiLC lane plus half a 3-LWC lane per chip.
		m, l := Table4["milc"], Table4["lwc3"]
		return CodecCosts{
			Enc: CodecCost{
				AreaUM2:   (m.Enc.AreaUM2 + l.Enc.AreaUM2) / 2,
				PowerMW:   (m.Enc.PowerMW + l.Enc.PowerMW) / 2,
				LatencyNS: m.Enc.LatencyNS,
			},
			Dec: CodecCost{
				AreaUM2:   (m.Dec.AreaUM2 + l.Dec.AreaUM2) / 2,
				PowerMW:   (m.Dec.PowerMW + l.Dec.PowerMW) / 2,
				LatencyNS: m.Dec.LatencyNS,
			},
		}, true
	}
	return CodecCosts{}, false
}

// Breakdown is the DRAM energy split of Figure 18, in joules.
type Breakdown struct {
	Background float64
	ActPre     float64
	RdWr       float64
	Refresh    float64
	IO         float64
	Codec      float64
}

// Total returns the DRAM system energy.
func (b Breakdown) Total() float64 {
	return b.Background + b.ActPre + b.RdWr + b.Refresh + b.IO + b.Codec
}

// DRAMEnergy computes the Figure 18 breakdown for a finished run.
//   - power: the technology constants
//   - dev: the device timing/geometry (for tCK, tRC, tRFC, ranks)
//   - channels: channel count
//   - s: aggregated controller statistics
//   - cycles: elapsed DRAM cycles
func DRAMEnergy(power DRAMPower, dev dram.Config, channels int, s *memctrl.Stats, cycles int64) (Breakdown, error) {
	if err := power.Validate(); err != nil {
		return Breakdown{}, err
	}
	if cycles <= 0 {
		return Breakdown{}, fmt.Errorf("energy: %d elapsed cycles", cycles)
	}
	tckNS := dev.ClockNS
	seconds := float64(cycles) * tckNS * 1e-9
	mw2w := 1e-3
	ranks := float64(dev.Geometry.Ranks * channels)

	var b Breakdown
	// Background: ranks sit in active standby (the open-page policy keeps
	// rows open and the evaluated systems lack a fast power-down mode,
	// Section 7.3), except for rank-cycles the power-down extension spent
	// in IDD2P.
	rankSeconds := seconds * ranks
	pdSeconds := float64(s.PowerDownCycles) * tckNS * 1e-9
	if pdSeconds > rankSeconds {
		pdSeconds = rankSeconds
	}
	b.Background = power.IDD3N*mw2w*power.VDD*(rankSeconds-pdSeconds) +
		power.IDD2P*mw2w*power.VDD*pdSeconds

	// Activate/precharge: the incremental IDD0 current over standby for
	// one tRC window per activation.
	actSec := float64(dev.Timing.RC) * tckNS * 1e-9
	b.ActPre = (power.IDD0 - power.IDD3N) * mw2w * power.VDD * actSec * float64(s.Activates)

	// Read/write burst current over the cycles the bus carried data. Reads
	// and writes are close enough to use the issued-command ratio.
	rw := float64(s.Reads + s.Writes)
	if rw > 0 {
		readFrac := float64(s.Reads) / rw
		busSec := float64(s.BusyCycles) * tckNS * 1e-9
		iddRW := power.IDD4R*readFrac + power.IDD4W*(1-readFrac)
		b.RdWr = (iddRW - power.IDD3N) * mw2w * power.VDD * busSec
	}

	// Refresh: incremental IDD5 current for tRFC per REF command.
	refSec := float64(dev.Timing.RFC) * tckNS * 1e-9
	b.Refresh = (power.IDD5 - power.IDD3N) * mw2w * power.VDD * refSec * float64(s.Refreshes)

	// IO: proportional to the accounted cost units (zeros or toggles).
	b.IO = power.IOEnergyPJ * 1e-12 * float64(s.CostUnits)

	// Codec: encoder+decoder power over each coded burst's wire time.
	for name, bursts := range s.CodecBursts {
		costs, ok := codecCostsFor(name)
		if !ok {
			continue // raw/dbi/bi: no MiL codec engaged
		}
		// Approximate burst wire time from the aggregate beat count share.
		if s.ColumnCommands() == 0 {
			continue
		}
		avgBeats := float64(s.BurstBeats) / float64(s.ColumnCommands())
		burstSec := avgBeats / 2 * tckNS * 1e-9
		b.Codec += (costs.Enc.PowerMW + costs.Dec.PowerMW) * mw2w * burstSec * float64(bursts)
	}
	return b, nil
}

// RetryEnergyJ returns the IO energy wasted on bursts that ended NACKed and
// had to be replayed. It is a subset of Breakdown.IO - CostUnits already
// charges every burst put on the wire, including failed transfers, their
// replays, and write-CRC beats - broken out so fault experiments can report
// the reliability tax separately.
func RetryEnergyJ(power DRAMPower, s *memctrl.Stats) float64 {
	return power.IOEnergyPJ * 1e-12 * float64(s.RetryCostUnits)
}

// CPUPower is the McPAT-like envelope for the cores, caches, and uncore.
// Energy = StaticW x time + DynPJPerInstr x instructions. The constants are
// calibrated so DRAM contributes the share of system energy the paper's
// platforms exhibit (DRAM-heavy microservers, efficiency-optimized mobile).
type CPUPower struct {
	Name         string
	StaticW      float64
	DynPJPerInst float64
}

// ServerCPUPower returns the Niagara-like microserver envelope.
func ServerCPUPower() CPUPower {
	return CPUPower{Name: "microserver", StaticW: 3.2, DynPJPerInst: 95}
}

// MobileCPUPower returns the Snapdragon-like mobile envelope.
func MobileCPUPower() CPUPower {
	return CPUPower{Name: "mobile", StaticW: 1.0, DynPJPerInst: 110}
}

// CPUEnergy computes the non-DRAM system energy for a run.
func CPUEnergy(p CPUPower, seconds float64, instructions int64) float64 {
	return p.StaticW*seconds + p.DynPJPerInst*1e-12*float64(instructions)
}

// SystemEnergy is the Figure 19 quantity.
type SystemEnergy struct {
	DRAM Breakdown
	CPU  float64
}

// Total returns the full-system energy in joules.
func (s SystemEnergy) Total() float64 { return s.DRAM.Total() + s.CPU }

// RecordMetrics publishes a finished run's energy accounting into the
// observability registry as integer nanojoule counters. Rounding to
// integers before the (commutative) counter adds keeps multi-worker
// metric snapshots byte-identical at any worker count; at nanojoule
// resolution the rounding error is far below the model's fidelity.
func RecordMetrics(o *obs.Obs, b Breakdown, cpuJ, retryJ float64) {
	if !o.Enabled() {
		return
	}
	nj := func(name string, joules float64) {
		o.Counter(name).Add(int64(math.Round(joules * 1e9)))
	}
	nj("energy_dram_background_nj_total", b.Background)
	nj("energy_dram_actpre_nj_total", b.ActPre)
	nj("energy_dram_rdwr_nj_total", b.RdWr)
	nj("energy_dram_refresh_nj_total", b.Refresh)
	nj("energy_dram_io_nj_total", b.IO)
	nj("energy_dram_codec_nj_total", b.Codec)
	nj("energy_cpu_nj_total", cpuJ)
	nj("energy_retry_nj_total", retryJ)
}
