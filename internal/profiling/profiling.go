// Package profiling wires the runtime/pprof collectors behind the
// -cpuprofile/-memprofile flags that cmd/milsim and cmd/milbench share, so
// the codec and scheduler hot paths can be inspected with `go tool pprof`
// (see `make profile`).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns a
// stop function that finishes the CPU profile and snapshots the heap into
// memPath (when non-empty). Either path may be empty; stop is never nil and
// must be called before the process exits for the profiles to be valid.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle allocation statistics before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
