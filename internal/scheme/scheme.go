// Package scheme is the single source of truth for the coding
// configurations the simulator accepts. Every scheme — a policy that
// picks codecs per burst, the phy it drives, its aliases, and the
// front-end timing class its request stream belongs to — registers one
// self-describing Descriptor here, and everything else resolves through
// the registry: sim builds policies with Build and keys its trace cache
// with TimingClass, the experiment tables and the milsim/milexp/milcodec
// CLIs enumerate Names and CodecNames, and -list-schemes prints
// WriteTable. Adding a codec or policy is one registration plus tests,
// not a cross-cutting switch-statement hunt.
//
// Re-entrancy contract (shared with package sim): the registry is built
// once at init and never mutated afterwards — an init-time constant
// table, safe for any number of concurrent readers.
package scheme

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"mil/internal/code"
	"mil/internal/memctrl"
	"mil/internal/milcore"
)

// Platform carries the interface properties a scheme build depends on.
type Platform struct {
	// POD is true on the VDDQ-terminated DDR4 interface, where transmitted
	// zeros cost energy; false selects the unterminated LPDDR3 interface
	// driven with transition signaling, where toggles cost energy.
	POD bool
}

// String names the platform the way the availability column prints it.
func (p Platform) String() string {
	if p.POD {
		return "server-ddr4"
	}
	return "mobile-lpddr3"
}

// Options carries the per-run knobs a scheme build may consume.
type Options struct {
	// LookaheadX overrides MiL's look-ahead distance when > 0.
	LookaheadX int
	// Seed is the run seed; stateful adaptive policies (mil-bandit)
	// derive their private PRNG streams from it so runs stay
	// bit-reproducible per seed.
	Seed uint64
}

// Descriptor is one scheme's registration: everything the rest of the
// stack needs to know about it, declared in one place.
type Descriptor struct {
	// Name is the canonical scheme name.
	Name string
	// Aliases are additional accepted names resolving to this exact
	// descriptor (bl10 is milc, bl16 is lwc3: identical builds, kept for
	// the Figure 20 fixed-burst-length sweep's vocabulary).
	Aliases []string
	// Help is the one-line description the -list-schemes table prints.
	Help string

	// SharedClass names the front-end timing class this scheme shares
	// with others ("" = singleton: the scheme's own typed name). Schemes
	// sharing a class produce identical request streams at the
	// cache↔memctrl boundary, so one recorded trace replays for all of
	// them (see TimingClass).
	SharedClass string
	// UsesLookahead marks schemes whose front-end timing depends on the
	// look-ahead distance; their class strings carry the resolved x.
	UsesLookahead bool
	// NeverCluster forbids the trace cluster store from even *trialling*
	// this scheme's cells against other classes' recorded traces
	// (Config.ClusterKey returns ""). The divergence fence verifies
	// timing only, so it protects schemes whose *decisions* — not just
	// timing — depend on observed history: mil-bandit's arm choices feed
	// on per-epoch stats, and replaying it under an adopted trace could
	// reproduce the timing while silently changing which codecs played.
	NeverCluster bool

	// Platforms restricts where the scheme builds; nil means every
	// platform. Build rejects a platform not listed here.
	Platforms []Platform

	// Policy builds the controller policy for one run. Required.
	Policy func(p Platform, o Options) (memctrl.Policy, error)
	// Phy, when non-nil, overrides the platform's default interface
	// model (bi substitutes the wire-level bus-invert phy).
	Phy func(p Platform) memctrl.Phy
	// Codec, when non-nil, builds the scheme's standalone data-path
	// codec, letting milcodec exercise fixed-codec schemes (including
	// the stretched bl12/bl14, which live in milcore and are out of
	// code.ByName's reach). Nil for dynamic-policy schemes whose codec
	// varies per burst.
	Codec func() (code.Codec, error)
}

// availableOn reports whether the scheme builds on p.
func (d *Descriptor) availableOn(p Platform) bool {
	if len(d.Platforms) == 0 {
		return true
	}
	for _, have := range d.Platforms {
		if have == p {
			return true
		}
	}
	return false
}

// ErrUnknown is wrapped by Build for unregistered scheme names; callers
// test it with errors.Is to layer their own message on top.
var ErrUnknown = errors.New("unknown scheme")

// ordered and byName form the registry. Built once by init (see
// registerAll in registry.go), constant afterwards.
var (
	ordered []*Descriptor
	byName  = map[string]*Descriptor{}
)

// register adds one descriptor, panicking on registration bugs (dup
// names, missing factories) — these are programmer errors caught by any
// test that imports the package.
func register(d *Descriptor) {
	if d.Name == "" || d.Policy == nil {
		panic("scheme: descriptor needs a name and a policy factory")
	}
	if _, dup := byName[d.Name]; dup {
		panic("scheme: duplicate registration of " + d.Name)
	}
	ordered = append(ordered, d)
	byName[d.Name] = d
	for _, a := range d.Aliases {
		if _, dup := byName[a]; dup {
			panic("scheme: duplicate registration of alias " + a)
		}
		byName[a] = d
	}
}

// Lookup resolves a scheme name or alias to its descriptor.
func Lookup(name string) (*Descriptor, bool) {
	d, ok := byName[name]
	return d, ok
}

// All returns the canonical descriptors in registration order.
func All() []*Descriptor {
	out := make([]*Descriptor, len(ordered))
	copy(out, ordered)
	return out
}

// Names returns every accepted scheme name: each canonical name in
// registration order, immediately followed by its aliases.
func Names() []string {
	var out []string
	for _, d := range ordered {
		out = append(out, d.Name)
		out = append(out, d.Aliases...)
	}
	return out
}

// Build constructs the policy and phy factory for a scheme on a
// platform. Unknown names report ErrUnknown (wrapped); callers that need
// their own message test with errors.Is and reformat.
func Build(name string, p Platform, o Options) (memctrl.Policy, func() memctrl.Phy, error) {
	d, ok := byName[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w %q", ErrUnknown, name)
	}
	if !d.availableOn(p) {
		return nil, nil, fmt.Errorf("scheme: %s is not available on %s", d.Name, p)
	}
	pol, err := d.Policy(p, o)
	if err != nil {
		return nil, nil, err
	}
	newPhy := func() memctrl.Phy { return defaultPhy(p) }
	if d.Phy != nil {
		build := d.Phy
		newPhy = func() memctrl.Phy { return build(p) }
	}
	return pol, newPhy, nil
}

// defaultPhy is the platform's native interface model.
func defaultPhy(p Platform) memctrl.Phy {
	if p.POD {
		return &memctrl.PODPhy{}
	}
	return &memctrl.TransitionPhy{}
}

// TimingClass maps a scheme (plus its look-ahead override) onto its
// front-end timing-equivalence class. Two configurations that agree on
// everything else and share a class produce the *identical* request
// stream at the cache↔memctrl boundary — same clocks, addresses,
// priorities, and completion times — so one recorded trace replays for
// all of them. The codec only feeds back into front-end timing through
// the burst length the policy picks, hence the registered classes:
//
//   - baseline/bi/raw all drive fixed 8-beat bursts ("fixed8"): DBI,
//     wire-level bus-invert, and uncoded transfers differ on the pins,
//     not on the schedule.
//   - a fixed policy's schedule depends on its codec only through the
//     burst beat count and the codec's ExtraLatency: milc/bl10 run the
//     identical MiLC codec ("fixed10"), lwc3/bl16 the identical 3-LWC
//     ("fixed16"). cafo2/cafo4 are 10-beat too but add 2 and 4 cycles of
//     encode latency, so they are NOT in fixed10 (the replay driver's
//     divergence check catches exactly this kind of wishful merge).
//   - mil and mil-degrade are identical while no faults fire (the
//     ladder's level 0 delegates verbatim and can only demote on link
//     errors), and a look-ahead of 0 means the scheme default, so x=0 ≡
//     x=default. Distinct look-ahead distances do NOT merge: on
//     streaming workloads the bus slack hides any x (STRMATCH replays
//     byte-identically across x = 2..14), but on random-access GUPS the
//     slack runs out and a shorter look-ahead shifts read completions by
//     a few cycles — the replay fence rejects the cross-x replay there,
//     so each x stays its own class rather than relying on
//     workload-dependent luck.
//   - with fault injection enabled, error draws depend on the bits each
//     codec drives, which feeds back into retry timing — every scheme
//     becomes its own class.
//
// Everything else (cafo/bl12/bl14/mil3/mil-x4/mil-nowropt, mil-bandit,
// and unknown schemes) is conservatively a singleton class. The typed
// name — not the canonical one — keys singleton and fault classes, so
// alias spellings keep their historical class strings.
func TimingClass(name string, lookaheadX int, faultEnabled bool) string {
	d, registered := byName[name]
	la := 0
	if registered && d.UsesLookahead {
		la = lookaheadX
		if la == 0 {
			la = milcore.DefaultLookahead
		}
	}
	if faultEnabled {
		return fmt.Sprintf("fault:%s|x=%d", name, la)
	}
	if registered && d.SharedClass != "" {
		if d.UsesLookahead {
			return fmt.Sprintf("%s|x=%d", d.SharedClass, la)
		}
		return d.SharedClass
	}
	return fmt.Sprintf("%s|x=%d", name, la)
}

// Codec resolves a standalone data-path codec by name: a registered
// scheme's Codec factory when it has one, else the plain codec registry
// (code.ByName), so every name code.ByName accepts keeps working and the
// registry only adds names (bl12/bl14's stretched codecs, scheme
// aliases). Unknown names report ErrUnknown (wrapped), like Build, so the
// CLIs can distinguish a typo from a real resolution failure and print
// the annotated table instead of a bare error string.
func Codec(name string) (code.Codec, error) {
	if d, ok := byName[name]; ok && d.Codec != nil {
		return d.Codec()
	}
	c, err := code.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("%w %q: %v", ErrUnknown, name, err)
	}
	return c, nil
}

// CodecNames lists every name Codec resolves to a distinct standalone
// codec configuration: the plain codec registry plus the registry-only
// stretched burst lengths.
func CodecNames() []string {
	names := code.Names()
	out := make([]string, 0, len(names)+2)
	out = append(out, names...)
	return append(out, "bl12", "bl14")
}

// WriteTable prints the registry as the -list-schemes table: name,
// aliases, clean-link timing class, burst shape (beats plus extra CAS
// latency for fixed-codec schemes), platform availability, and the
// one-line help.
func WriteTable(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "SCHEME\tALIASES\tCLASS\tBURST\tPLATFORMS\tDESCRIPTION")
	for _, d := range ordered {
		aliases := "-"
		if len(d.Aliases) > 0 {
			aliases = strings.Join(d.Aliases, ",")
		}
		burst := "per-burst"
		if d.Codec != nil {
			if c, err := d.Codec(); err == nil {
				burst = fmt.Sprintf("bl%d", c.Beats())
				if x := c.ExtraLatency(); x > 0 {
					burst += fmt.Sprintf("+%dcas", x)
				}
			}
		}
		plats := "all"
		if len(d.Platforms) > 0 {
			names := make([]string, len(d.Platforms))
			for i, p := range d.Platforms {
				names[i] = p.String()
			}
			plats = strings.Join(names, ",")
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n",
			d.Name, aliases, TimingClass(d.Name, 0, false), burst, plats, d.Help)
	}
	tw.Flush()
}
