package scheme

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"mil/internal/code"
	"mil/internal/milcore"
)

// legacySchemeNames is the scheme list as of the pre-registry
// sim.SchemeNames, frozen here as the compatibility contract: every one
// of these names must keep resolving, and keep its timing class.
var legacySchemeNames = []string{
	"baseline", "bi", "milc", "cafo2", "cafo4", "mil", "mil3", "mil-nowropt",
	"mil-x4", "mil-degrade", "lwc3", "bl10", "bl12", "bl14", "bl16", "raw",
}

// legacyTimingClass is a verbatim copy of the scheme-string switch that
// lived in sim.timingClass before the registry. TimingClass must match
// it byte for byte on every legacy scheme: the class strings key the
// trace record/replay cache (FrontEndKey), so any drift silently
// invalidates — or worse, mis-shares — recorded streams.
func legacyTimingClass(scheme string, lookaheadX int, faultEnabled bool) string {
	la := 0
	switch scheme {
	case "mil", "mil-degrade", "mil-nowropt":
		la = lookaheadX
		if la == 0 {
			la = milcore.DefaultLookahead
		}
	}
	if faultEnabled {
		return fmt.Sprintf("fault:%s|x=%d", scheme, la)
	}
	switch scheme {
	case "baseline", "bi", "raw":
		return "fixed8"
	case "milc", "bl10":
		return "fixed10"
	case "lwc3", "bl16":
		return "fixed16"
	case "mil", "mil-degrade":
		return fmt.Sprintf("mil|x=%d", la)
	}
	return fmt.Sprintf("%s|x=%d", scheme, la)
}

func TestTimingClassMatchesLegacySwitch(t *testing.T) {
	names := append([]string{}, legacySchemeNames...)
	// Unregistered names fell through the legacy switch to the singleton
	// format; the registry must preserve that too (hybrid is a codec
	// name, not a scheme; "nope" is sim_test's canonical unknown).
	names = append(names, "hybrid", "nope", "")
	for _, name := range names {
		for _, x := range []int{0, 1, 2, 8, 14} {
			for _, faulty := range []bool{false, true} {
				want := legacyTimingClass(name, x, faulty)
				got := TimingClass(name, x, faulty)
				if got != want {
					t.Errorf("TimingClass(%q, %d, %v) = %q, legacy switch says %q",
						name, x, faulty, got, want)
				}
			}
		}
	}
}

func TestBanditTimingClassIsSingleton(t *testing.T) {
	if got := TimingClass("mil-bandit", 0, false); got != "mil-bandit|x=0" {
		t.Errorf("mil-bandit class = %q, want singleton \"mil-bandit|x=0\"", got)
	}
	// The look-ahead override must not split (or merge) bandit cells:
	// the bandit ignores the lookahead, so x stays 0 in its class.
	if got := TimingClass("mil-bandit", 8, false); got != "mil-bandit|x=0" {
		t.Errorf("mil-bandit class with x=8 = %q, want \"mil-bandit|x=0\"", got)
	}
	d, ok := Lookup("mil-bandit")
	if !ok {
		t.Fatal("mil-bandit not registered")
	}
	if !d.NeverCluster {
		t.Error("mil-bandit must declare NeverCluster: its arm choices depend on observed history")
	}
}

func TestNamesCoverLegacyPlusBandit(t *testing.T) {
	names := Names()
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("Names() lists %q twice", n)
		}
		seen[n] = true
		if _, ok := Lookup(n); !ok {
			t.Errorf("Names() lists %q but Lookup does not resolve it", n)
		}
	}
	for _, n := range append(append([]string{}, legacySchemeNames...), "mil-bandit") {
		if !seen[n] {
			t.Errorf("Names() is missing %q", n)
		}
	}
}

func TestAliasesResolveToIdenticalDescriptors(t *testing.T) {
	for alias, canonical := range map[string]string{"bl10": "milc", "bl16": "lwc3"} {
		da, ok := Lookup(alias)
		if !ok {
			t.Fatalf("alias %q not registered", alias)
		}
		dc, ok := Lookup(canonical)
		if !ok {
			t.Fatalf("scheme %q not registered", canonical)
		}
		if da != dc {
			t.Errorf("Lookup(%q) and Lookup(%q) return distinct descriptors", alias, canonical)
		}
	}
	for _, d := range All() {
		for _, a := range d.Aliases {
			if got, _ := Lookup(a); got != d {
				t.Errorf("alias %q of %q resolves elsewhere", a, d.Name)
			}
		}
	}
}

func TestEverySchemeBuildsOnDeclaredPlatforms(t *testing.T) {
	for _, d := range All() {
		platforms := d.Platforms
		if len(platforms) == 0 {
			platforms = []Platform{{POD: true}, {POD: false}}
		}
		for _, p := range platforms {
			for _, name := range append([]string{d.Name}, d.Aliases...) {
				pol, newPhy, err := Build(name, p, Options{Seed: 1})
				if err != nil {
					t.Errorf("Build(%q, %s) failed: %v", name, p, err)
					continue
				}
				if pol == nil || newPhy == nil || newPhy() == nil {
					t.Errorf("Build(%q, %s) returned nil policy or phy", name, p)
				}
			}
		}
	}
}

func TestBuildUnknownScheme(t *testing.T) {
	_, _, err := Build("nope", Platform{POD: true}, Options{})
	if !errors.Is(err, ErrUnknown) {
		t.Fatalf("Build of unknown scheme returned %v, want ErrUnknown", err)
	}
	if !strings.Contains(err.Error(), `"nope"`) {
		t.Errorf("unknown-scheme error %q does not name the scheme", err)
	}
}

// TestCodecParityWithByName is the registry ↔ code.ByName contract: for
// every name the plain codec registry accepts, scheme.Codec must resolve
// the same codec configuration.
func TestCodecParityWithByName(t *testing.T) {
	for _, name := range code.Names() {
		want, err := code.ByName(name)
		if err != nil {
			t.Fatalf("code.ByName(%q): %v", name, err)
		}
		got, err := Codec(name)
		if err != nil {
			t.Fatalf("scheme.Codec(%q): %v", name, err)
		}
		if got.Name() != want.Name() || got.Beats() != want.Beats() ||
			got.ExtraLatency() != want.ExtraLatency() {
			t.Errorf("scheme.Codec(%q) = %s/bl%d/+%d, code.ByName = %s/bl%d/+%d",
				name, got.Name(), got.Beats(), got.ExtraLatency(),
				want.Name(), want.Beats(), want.ExtraLatency())
		}
	}
	// Unknown names wrap ErrUnknown (so the CLIs can branch to the
	// -list-schemes table) and still name the offender.
	_, gotErr := Codec("nonesuch")
	if !errors.Is(gotErr, ErrUnknown) {
		t.Errorf("unknown codec error = %v, want ErrUnknown wrapped", gotErr)
	}
	if gotErr == nil || !strings.Contains(gotErr.Error(), "nonesuch") {
		t.Errorf("unknown codec error %v does not name the offending codec", gotErr)
	}
}

// TestCodecNamesAllResolve covers the registry-only additions: bl12/bl14
// (the stretched codecs code.ByName cannot build without importing
// milcore) must resolve and round out the Figure 20 burst lengths.
func TestCodecNamesAllResolve(t *testing.T) {
	beats := map[string]bool{}
	for _, name := range CodecNames() {
		c, err := Codec(name)
		if err != nil {
			t.Errorf("Codec(%q): %v", name, err)
			continue
		}
		beats[fmt.Sprintf("bl%d", c.Beats())] = true
	}
	for _, bl := range []string{"bl8", "bl10", "bl12", "bl14", "bl16"} {
		if !beats[bl] {
			t.Errorf("CodecNames resolves no %s codec", bl)
		}
	}
	if c, err := Codec("bl12"); err != nil || c.Beats() != 12 {
		t.Errorf("Codec(bl12) = %v beats, err %v; want 12-beat stretched MiLC", c, err)
	}
	if c, err := Codec("bl14"); err != nil || c.Beats() != 14 {
		t.Errorf("Codec(bl14) = %v beats, err %v; want 14-beat stretched MiLC", c, err)
	}
}

func TestWriteTableListsEverything(t *testing.T) {
	var sb strings.Builder
	WriteTable(&sb)
	out := sb.String()
	for _, d := range All() {
		if !strings.Contains(out, d.Name) {
			t.Errorf("WriteTable output missing scheme %q", d.Name)
		}
	}
	for _, alias := range []string{"bl10", "bl16"} {
		if !strings.Contains(out, alias) {
			t.Errorf("WriteTable output missing alias %q", alias)
		}
	}
}

// TestZooSchemeRegistration pins the codec-zoo descriptors: the fixed-BL8
// codecs share the fixed8 timing class (their schedules are bit-identical
// to baseline's, so the trace cluster may adopt them), vlwc stays a
// singleton despite matching bl12's schedule (bl12 predates it in the
// keys golden), and the zoo bandit never cluster-adopts.
func TestZooSchemeRegistration(t *testing.T) {
	for name, want := range map[string]string{
		"optmem": "fixed8",
		"zad":    "fixed8",
		"zadr":   "fixed8",
		"vlwc":   "vlwc|x=0",
	} {
		if got := TimingClass(name, 0, false); got != want {
			t.Errorf("TimingClass(%q) = %q, want %q", name, got, want)
		}
	}
	d, ok := Lookup("mil-bandit-zoo")
	if !ok {
		t.Fatal("mil-bandit-zoo not registered")
	}
	if !d.NeverCluster {
		t.Error("mil-bandit-zoo must declare NeverCluster like mil-bandit")
	}
	for _, name := range []string{"optmem", "vlwc", "zad", "zadr", "mil-bandit-zoo"} {
		for _, pod := range []bool{true, false} {
			if _, _, err := Build(name, Platform{POD: pod}, Options{}); err != nil {
				t.Errorf("Build(%q, POD=%v): %v", name, pod, err)
			}
		}
	}
	// The standalone codec names resolve through both registries and agree.
	for _, name := range []string{"optmem", "vlwc", "zad", "zadr"} {
		c, err := Codec(name)
		if err != nil {
			t.Fatalf("Codec(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("Codec(%q).Name() = %q", name, c.Name())
		}
	}
}
