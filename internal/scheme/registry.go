package scheme

import (
	"mil/internal/code"
	"mil/internal/memctrl"
	"mil/internal/milcore"
)

// This file registers every scheme. The registration order is the order
// SchemeNames/-list-schemes present, grouped the way the paper's figures
// do: the baselines, the MiL framework family, the naive and fixed-BL
// sensitivity points, and the adaptive extension.

// fixedCodec builds the FixedPolicy + standalone-codec pair for schemes
// whose policy always applies one codec.
func fixedCodec(build func() (code.Codec, error)) (func(Platform, Options) (memctrl.Policy, error), func() (code.Codec, error)) {
	policy := func(Platform, Options) (memctrl.Policy, error) {
		c, err := build()
		if err != nil {
			return nil, err
		}
		return memctrl.FixedPolicy{Codec: c}, nil
	}
	return policy, build
}

// milPolicy builds the opportunistic MiL framework policy, optionally
// without write-optimize or wrapped in the degradation ladder.
func milPolicy(nowropt, degrade bool) func(Platform, Options) (memctrl.Policy, error) {
	return func(_ Platform, o Options) (memctrl.Policy, error) {
		opts := []milcore.Option{}
		if o.LookaheadX > 0 {
			opts = append(opts, milcore.WithLookahead(o.LookaheadX))
		}
		if nowropt {
			opts = append(opts, milcore.WithoutWriteOptimize())
		}
		pol, err := milcore.New(opts...)
		if err != nil {
			return nil, err
		}
		if degrade {
			return milcore.NewDegrader(pol)
		}
		return pol, nil
	}
}

// stretched builds the MiLC codec padded to a fixed total burst length
// (the Figure 20 intermediate points).
func stretched(total int) func() (code.Codec, error) {
	return func() (code.Codec, error) {
		return milcore.NewStretched(code.MiLC{}, total)
	}
}

func init() {
	dbiPolicy, dbiCodec := fixedCodec(func() (code.Codec, error) { return code.DBI{}, nil })
	register(&Descriptor{
		Name: "baseline",
		Help: "DBI (on LPDDR3: via transition signaling; Section 7.4)",
		// DBI on both systems: DDR4 natively, LPDDR3 via flip-on-zero
		// transition signaling (Section 7.4 normalizes LPDDR3 results to
		// DBI too, which is why its savings mirror the DDR4 ones).
		SharedClass: "fixed8",
		Policy:      dbiPolicy,
		Codec:       dbiCodec,
	})
	register(&Descriptor{
		Name: "bi",
		Help: "level-signaled bus-invert on the wires (Section 2.1.2)",
		// The policy picks Raw (BL8 timing); the coding and toggle
		// accounting happen statefully in the wire-level phy.
		SharedClass: "fixed8",
		Policy: func(Platform, Options) (memctrl.Policy, error) {
			return memctrl.FixedPolicy{Codec: code.Raw{}}, nil
		},
		Phy: func(Platform) memctrl.Phy { return &memctrl.BIWirePhy{} },
	})
	milcPolicy, milcCodec := fixedCodec(func() (code.Codec, error) { return code.MiLC{}, nil })
	register(&Descriptor{
		Name:        "milc",
		Aliases:     []string{"bl10"},
		Help:        "MiLC-only (always the base code); bl10 in the Figure 20 sweep",
		SharedClass: "fixed10",
		Policy:      milcPolicy,
		Codec:       milcCodec,
	})
	cafo2Policy, cafo2Codec := fixedCodec(func() (code.Codec, error) { return code.NewCAFO(2), nil })
	register(&Descriptor{
		Name:   "cafo2",
		Help:   "CAFO under the MiL framework, 2 iterations (+2 CAS cycles)",
		Policy: cafo2Policy,
		Codec:  cafo2Codec,
	})
	cafo4Policy, cafo4Codec := fixedCodec(func() (code.Codec, error) { return code.NewCAFO(4), nil })
	register(&Descriptor{
		Name:   "cafo4",
		Help:   "CAFO under the MiL framework, 4 iterations (+4 CAS cycles)",
		Policy: cafo4Policy,
		Codec:  cafo4Codec,
	})
	register(&Descriptor{
		Name:          "mil",
		Help:          "the full opportunistic MiL framework",
		SharedClass:   "mil",
		UsesLookahead: true,
		Policy:        milPolicy(false, false),
	})
	register(&Descriptor{
		Name: "mil3",
		Help: "three-tier MiL with the BL14 hybrid between MiLC and 3-LWC (Section 7.5.3)",
		Policy: func(Platform, Options) (memctrl.Policy, error) {
			return milcore.NewTiered(code.LWC3{}, code.Hybrid{}, code.MiLC{})
		},
	})
	register(&Descriptor{
		Name:          "mil-nowropt",
		Help:          "MiL without the write-optimize pass (ablation)",
		UsesLookahead: true,
		Policy:        milPolicy(true, false),
	})
	register(&Descriptor{
		Name: "mil-x4",
		Help: "MiL for ranks of x4 chips: no DBI pins, pin-free codes only (Section 4.1)",
		Policy: func(Platform, Options) (memctrl.Policy, error) {
			return milcore.NewTiered(code.Hybrid{}, code.MiLC{})
		},
	})
	register(&Descriptor{
		Name:          "mil-degrade",
		Help:          "MiL wrapped in the graceful-degradation ladder (3-LWC/MiLC -> MiLC -> DBI)",
		SharedClass:   "mil",
		UsesLookahead: true,
		Policy:        milPolicy(false, true),
	})
	lwc3Policy, lwc3Codec := fixedCodec(func() (code.Codec, error) { return code.LWC3{}, nil })
	register(&Descriptor{
		Name:        "lwc3",
		Aliases:     []string{"bl16"},
		Help:        "always the (8,17) 3-LWC (Figure 2's naive scheme); bl16 in the Figure 20 sweep",
		SharedClass: "fixed16",
		Policy:      lwc3Policy,
		Codec:       lwc3Codec,
	})
	bl12Policy, bl12Codec := fixedCodec(stretched(12))
	register(&Descriptor{
		Name:   "bl12",
		Help:   "MiLC stretched to a fixed 12-beat burst (Figure 20 sweep)",
		Policy: bl12Policy,
		Codec:  bl12Codec,
	})
	bl14Policy, bl14Codec := fixedCodec(stretched(14))
	register(&Descriptor{
		Name:   "bl14",
		Help:   "MiLC stretched to a fixed 14-beat burst (Figure 20 sweep)",
		Policy: bl14Policy,
		Codec:  bl14Codec,
	})
	rawPolicy, rawCodec := fixedCodec(func() (code.Codec, error) { return code.Raw{}, nil })
	register(&Descriptor{
		Name:        "raw",
		Help:        "uncoded transfers (Figure 7 normalization)",
		SharedClass: "fixed8",
		Policy:      rawPolicy,
		Codec:       rawCodec,
	})
	register(&Descriptor{
		Name: "mil-bandit",
		Help: "epsilon-greedy bandit racing DBI/MiLC/Hybrid/CAFO2 per epoch on observed cost",
		// Singleton timing class, and never cluster-adopted: the arm the
		// bandit plays depends on observed per-epoch stats, so a trace
		// that merely reproduces the *timing* of another class could
		// silently change which codecs played (see Descriptor.NeverCluster).
		NeverCluster: true,
		Policy: func(_ Platform, o Options) (memctrl.Policy, error) {
			return milcore.NewBandit(o.Seed)
		},
	})
	optmemPolicy, optmemCodec := fixedCodec(func() (code.Codec, error) { return code.DefaultOptMem(), nil })
	register(&Descriptor{
		Name: "optmem",
		Help: "Chee/Colbourn optimal memoryless code on the widened 9-pin bus (BL8)",
		// Same BL8+0 schedule as the other fixed-8 schemes: the timing
		// stream is indistinguishable, so the trace cluster may adopt it.
		SharedClass: "fixed8",
		Policy:      optmemPolicy,
		Codec:       optmemCodec,
	})
	vlwcPolicy, vlwcCodec := fixedCodec(func() (code.Codec, error) { return code.DefaultVLWC(), nil })
	register(&Descriptor{
		Name: "vlwc",
		Help: "Valentini/Chiani practical LWC, weight bound 3 (BL12, +1 CAS cycle)",
		// BL12+1 matches the stretched bl12 scheme's schedule, but vlwc
		// stays a singleton class: bl12 predates it in the keys golden and
		// the cluster index already merges identical schedules dynamically.
		Policy: vlwcPolicy,
		Codec:  vlwcCodec,
	})
	zadPolicy, zadCodec := fixedCodec(func() (code.Codec, error) { return code.NewZAD(4, false) })
	register(&Descriptor{
		Name:        "zad",
		Help:        "zero-aware skip-transfer, 4-beat chunks elided via the DBI sideband (BL8)",
		SharedClass: "fixed8",
		Policy:      zadPolicy,
		Codec:       zadCodec,
	})
	zadrPolicy, zadrCodec := fixedCodec(func() (code.Codec, error) { return code.NewZAD(4, true) })
	register(&Descriptor{
		Name:        "zadr",
		Help:        "zad with the skip mask replicated per beat and majority-voted (fault mode)",
		SharedClass: "fixed8",
		Policy:      zadrPolicy,
		Codec:       zadrCodec,
	})
	register(&Descriptor{
		Name: "mil-bandit-zoo",
		Help: "the bandit with the literature codecs as extra arms (optmem/vlwc/zad)",
		// A separate scheme rather than new arms on mil-bandit: changing
		// the default arm set would shift every mil-bandit trajectory and
		// the Extension 7 golden with it.
		NeverCluster: true,
		Policy: func(_ Platform, o Options) (memctrl.Policy, error) {
			zad, err := code.NewZAD(4, false)
			if err != nil {
				return nil, err
			}
			return milcore.NewBandit(o.Seed, milcore.WithBanditArms(
				code.DBI{}, code.MiLC{}, code.DefaultOptMem(), code.DefaultVLWC(), zad))
		},
	})
}
