package memctrl

import (
	"mil/internal/bitblock"
	"mil/internal/code"
	"mil/internal/fault"
)

// Lookahead is the view the coding decision logic gets of the scheduler
// state at the moment a column command is picked (Section 5.1): the rdyX
// comparator outputs. It counts the queued column commands - reads and
// writes whose bank already holds the right row open - whose timing
// constraints all resolve within the next x cycles, including the command
// being scheduled (which is ready now, so the count is at least 1).
type Lookahead interface {
	ColumnReadyWithin(x int) int
}

// Policy chooses the coding scheme for the column command about to issue.
// data is the block to be transmitted for writes and nil for reads (the
// controller cannot inspect read data at schedule time, Section 4.6).
type Policy interface {
	Name() string
	Choose(write bool, data *bitblock.Block, la Lookahead) code.Codec
}

// ReliabilityFeedback is the optional channel from the controller back to
// the policy: after every data burst the controller reports whether the
// transfer survived the link (failed = CRC NACK, CA parity reject, or a
// read decode failure). Policies that implement it - the milcore degrader -
// use the failure stream to walk their degradation ladder.
type ReliabilityFeedback interface {
	RecordBurst(codec string, write, failed bool)
}

// EpochStats is the observed-cost digest the controller hands an
// EpochObserver at each epoch boundary: deltas over the just-finished
// epoch, straight off the controller's own counters. Bursts counts
// issued column commands (including ones that later NACKed);
// Zeros/CostUnits/Beats are the coded-burst totals those bursts put on
// the wire, retried bursts' sunk cost included; Retries counts failed
// transfers (scheduled replays plus abandons).
type EpochStats struct {
	Bursts    int64
	Zeros     int64
	CostUnits int64
	Beats     int64
	Retries   int64
}

// EpochObserver is the second optional feedback channel from the
// controller back to the policy: every EpochLength() issued bursts the
// controller delivers the epoch's observed stat deltas, letting adaptive
// policies (the milcore bandit) steer on measured cost instead of
// predictions alone. With a multi-channel System sharing one policy
// instance, each channel counts and delivers its own epochs; channels
// tick in a fixed order, so delivery is deterministic. Policies that do
// not implement the interface pay exactly one nil check per burst (the
// zero-cost obs discipline, pinned at 0 allocs/op by
// TestEpochFeedbackZeroCostWhenDisabled).
type EpochObserver interface {
	// EpochLength returns the epoch size in issued bursts; must be > 0
	// (NewController rejects the policy otherwise).
	EpochLength() int
	// ObserveEpoch delivers one epoch's deltas. now is the DRAM cycle of
	// the epoch's closing burst. The stats are a value copy; the observer
	// may retain it freely but must not allocate on this path if it wants
	// to preserve the controller's zero-alloc column path.
	ObserveEpoch(now int64, delta EpochStats)
}

// FixedPolicy always applies one codec: the DBI baseline, the MiLC-only
// configuration, the CAFO variants, and the fixed-burst-length sensitivity
// study of Figure 20 are all FixedPolicy instances.
type FixedPolicy struct {
	Codec code.Codec
}

// Name implements Policy.
func (p FixedPolicy) Name() string { return p.Codec.Name() }

// Choose implements Policy.
func (p FixedPolicy) Choose(bool, *bitblock.Block, Lookahead) code.Codec { return p.Codec }

// PhyResult reports what one transfer cost and how it fared on the link.
// Zeros is the coded burst's zero count (the quantity Figure 17 reports);
// CostUnits is what the IO energy is proportional to on this interface
// (zeros on a VDDQ-terminated POD bus, wire toggles on an unterminated
// bus); Beats is the burst length consumed, including any write-CRC beats.
//
// The reliability fields are zero/false on a clean link: BitErrors counts
// injected wire flips; CRCError means the device's write-CRC check NACKed
// the transfer (ALERT_n); CAError means command/address parity rejected
// the command; DecodeErr means the receiving decoder rejected the burst
// (the read path's only detection on DDR4, which has no read CRC); Silent
// means corruption was delivered undetected. Arrived is the block as
// received - what a write actually stores - valid only when no error flag
// is set.
type PhyResult struct {
	Zeros     int
	CostUnits int
	Beats     int

	BitErrors int
	CRCError  bool
	CAError   bool
	DecodeErr bool
	Silent    bool
	Arrived   bitblock.Block
}

// Failed reports whether the transfer must be replayed.
func (r *PhyResult) Failed() bool { return r.CRCError || r.CAError || r.DecodeErr }

// Phy models the IO interface: it encodes a block with the chosen codec,
// puts it on the (possibly faulty) wires, and reports what the transfer
// cost and whether it survived. Implementations are stateful (the
// unterminated interface's toggle count depends on previous wire levels;
// injectors hold PRNG streams) and not safe for concurrent use.
type Phy interface {
	Transmit(c code.Codec, blk *bitblock.Block, write bool) PhyResult
}

// LinkConfig is the reliability configuration shared by the phy
// implementations: an optional fault injector plus the DDR4 RAS features
// that detect what it breaks. The zero value is a perfectly reliable,
// feature-free link with exactly the seed behavior.
type LinkConfig struct {
	// Inject corrupts bursts on the wire; nil = reliable link.
	Inject *fault.Injector
	// WriteCRC appends CRCBeats of per-chip CRC-8 to every write burst
	// and NACKs mismatches (DDR4 write CRC).
	WriteCRC bool
	// CRCBeats is the write-CRC burst-length overhead (>= 2, even).
	CRCBeats int
	// CABits > 0 enables command/address parity: every column command
	// rolls a corruption across CABits CA-bus bits and is rejected when
	// one lands (DDR4 CA parity).
	CABits int
}

// transmitCommon runs the shared reliability pipeline over an encoded
// burst: CA parity roll, CRC append, wire corruption, device-side CRC
// check, and decode. It mutates bu (corruption happens in place) and
// fills every PhyResult field except CostUnits, which each interface
// derives from its own cost model.
func (l *LinkConfig) transmitCommon(c code.Codec, blk *bitblock.Block, bu *bitblock.Burst, write bool) PhyResult {
	res := PhyResult{Arrived: *blk}
	crc := write && l.WriteCRC
	if crc {
		bu = code.AppendWriteCRC(bu, l.CRCBeats)
	}
	if l.Inject.Enabled() {
		if l.CABits > 0 && l.Inject.CommandError(l.CABits) {
			// The device rejected the command; the data slot was already
			// reserved, so the burst still crosses (and pays for) the bus.
			res.CAError = true
		}
		res.BitErrors = l.Inject.Corrupt(bu)
	}
	res.Zeros = bu.CountZeros()
	res.Beats = bu.Beats
	if res.CAError {
		return res
	}
	if crc {
		ok := code.CheckWriteCRC(bu, l.CRCBeats)
		bu = code.StripWriteCRC(bu, l.CRCBeats)
		if !ok {
			res.CRCError = true
			return res
		}
	}
	if res.BitErrors > 0 {
		got, err := c.Decode(bu)
		if err != nil {
			res.DecodeErr = true
			return res
		}
		res.Arrived = got
		res.Silent = got != *blk
	}
	return res
}

// PODPhy is the DDR4 pseudo-open-drain interface of Section 2.1.1: only
// transmitted zeros cost energy, so CostUnits equals the coded burst's zero
// count (write-CRC beats included - reliability bits are not free).
type PODPhy struct {
	// Verify decodes every burst and panics on mismatch; used by
	// integration tests to prove the data path end to end.
	Verify bool
	Link   LinkConfig
	// scratch absorbs the per-transfer burst allocation: phys are
	// per-channel and not safe for concurrent use (see Phy), so one
	// reusable burst serves every Transmit. Nothing retains the burst past
	// the call - transmitCommon reads/corrupts it in place and the results
	// carried out of Transmit are plain values.
	scratch bitblock.Burst
}

// Transmit implements Phy.
func (p *PODPhy) Transmit(c code.Codec, blk *bitblock.Block, write bool) PhyResult {
	bu := code.EncodeInto(c, blk, &p.scratch)
	if p.Verify {
		got, err := c.Decode(bu)
		if err != nil || got != *blk {
			panic("memctrl: POD phy round-trip mismatch for codec " + c.Name())
		}
	}
	res := p.Link.transmitCommon(c, blk, bu, write)
	res.CostUnits = res.Zeros
	return res
}

// TransitionPhy is the unterminated LPDDR3 interface driven with the
// flip-on-zero transition signaling of Sections 4.5/5.3: the wire toggles
// exactly on coded zeros, so any zero-minimizing codec carries over and
// CostUnits (toggles) equals Zeros. With fault injection enabled the full
// signal/corrupt/recover wire path runs so a flipped wire level corrupts
// the following logical bit too, as it does on a real transition-signaled
// link; tx and rx wire state can diverge transiently after an error and
// re-synchronize on the next toggle.
type TransitionPhy struct {
	Verify  bool
	Link    LinkConfig
	txState bitblock.BusState
	rxState bitblock.BusState
	scratch bitblock.Burst // see PODPhy.scratch
}

// Transmit implements Phy.
func (p *TransitionPhy) Transmit(c code.Codec, blk *bitblock.Block, write bool) PhyResult {
	bu := code.EncodeInto(c, blk, &p.scratch)
	z := bu.CountZeros()
	if !p.Link.Inject.Enabled() {
		if p.Verify {
			wire := code.SignalTransitions(bu, &p.txState)
			back := code.RecoverTransitions(wire, &p.rxState)
			got, err := c.Decode(back)
			if err != nil || got != *blk {
				panic("memctrl: transition phy round-trip mismatch for codec " + c.Name())
			}
		}
		return PhyResult{Zeros: z, CostUnits: z, Beats: bu.Beats, Arrived: *blk}
	}

	// Faulty link: run the real wire path. Toggles (the cost) are counted
	// on the corrupted wire levels relative to the pre-burst tx state.
	res := PhyResult{Arrived: *blk, Beats: bu.Beats, Zeros: z}
	if p.Link.CABits > 0 && p.Link.Inject.CommandError(p.Link.CABits) {
		res.CAError = true
	}
	preBurst := p.txState
	wire := code.SignalTransitions(bu, &p.txState)
	res.BitErrors = p.Link.Inject.Corrupt(wire)
	res.CostUnits = wire.Transitions(&preBurst)
	if res.CAError {
		// The device ignored the burst but its receiver still saw the wire
		// levels; advance rx state without delivering data.
		code.RecoverTransitions(wire, &p.rxState)
		return res
	}
	back := code.RecoverTransitions(wire, &p.rxState)
	got, err := c.Decode(back)
	if err != nil {
		res.DecodeErr = true
		return res
	}
	res.Arrived = got
	res.Silent = got != *blk
	return res
}

// BIWirePhy is the LPDDR3 baseline of Section 2.1.2: plain bus-invert
// coding applied directly to the unterminated wires (LPDDR3 has no native
// coding; BI is the natural predecessor MiL is compared against). The
// chosen codec only sets the burst timing (the baseline policy picks Raw,
// BL8); the coding and toggle accounting happen here, statefully. BI has
// no error detection: corruption is always silent.
type BIWirePhy struct {
	Verify bool
	Link   LinkConfig
	bi     code.BusInvert
	state  bitblock.BusState
}

// Transmit implements Phy.
func (p *BIWirePhy) Transmit(c code.Codec, blk *bitblock.Block, write bool) PhyResult {
	wire, toggles := p.bi.EncodeWire(blk, &p.state)
	if p.Verify {
		if got := p.bi.DecodeWire(wire); got != *blk {
			panic("memctrl: BI phy round-trip mismatch")
		}
	}
	res := PhyResult{Zeros: toggles, CostUnits: toggles, Beats: c.Beats(), Arrived: *blk}
	if p.Link.Inject.Enabled() {
		if p.Link.CABits > 0 && p.Link.Inject.CommandError(p.Link.CABits) {
			res.CAError = true
		}
		res.BitErrors = p.Link.Inject.Corrupt(wire)
		if res.BitErrors > 0 && !res.CAError {
			got := p.bi.DecodeWire(wire)
			res.Arrived = got
			res.Silent = got != *blk
		}
	}
	return res
}
