package memctrl

import (
	"mil/internal/bitblock"
	"mil/internal/code"
)

// Lookahead is the view the coding decision logic gets of the scheduler
// state at the moment a column command is picked (Section 5.1): the rdyX
// comparator outputs. It counts the queued column commands - reads and
// writes whose bank already holds the right row open - whose timing
// constraints all resolve within the next x cycles, including the command
// being scheduled (which is ready now, so the count is at least 1).
type Lookahead interface {
	ColumnReadyWithin(x int) int
}

// Policy chooses the coding scheme for the column command about to issue.
// data is the block to be transmitted for writes and nil for reads (the
// controller cannot inspect read data at schedule time, Section 4.6).
type Policy interface {
	Name() string
	Choose(write bool, data *bitblock.Block, la Lookahead) code.Codec
}

// FixedPolicy always applies one codec: the DBI baseline, the MiLC-only
// configuration, the CAFO variants, and the fixed-burst-length sensitivity
// study of Figure 20 are all FixedPolicy instances.
type FixedPolicy struct {
	Codec code.Codec
}

// Name implements Policy.
func (p FixedPolicy) Name() string { return p.Codec.Name() }

// Choose implements Policy.
func (p FixedPolicy) Choose(bool, *bitblock.Block, Lookahead) code.Codec { return p.Codec }

// Phy models the IO interface: it encodes a block with the chosen codec,
// puts it on the wires, and reports what the transfer costs. Zeros is the
// coded burst's zero count (the quantity Figure 17 reports); CostUnits is
// what the IO energy is proportional to on this interface (zeros on a
// VDDQ-terminated POD bus, wire toggles on an unterminated bus); Beats is
// the burst length consumed.
type PhyResult struct {
	Zeros     int
	CostUnits int
	Beats     int
}

// Phy implementations are stateful (the unterminated interface's toggle
// count depends on previous wire levels) and not safe for concurrent use.
type Phy interface {
	Transmit(c code.Codec, blk *bitblock.Block) PhyResult
}

// PODPhy is the DDR4 pseudo-open-drain interface of Section 2.1.1: only
// transmitted zeros cost energy, so CostUnits equals the coded burst's zero
// count.
type PODPhy struct {
	// Verify decodes every burst and panics on mismatch; used by
	// integration tests to prove the data path end to end.
	Verify bool
}

// Transmit implements Phy.
func (p *PODPhy) Transmit(c code.Codec, blk *bitblock.Block) PhyResult {
	bu := c.Encode(blk)
	if p.Verify {
		if got := c.Decode(bu); got != *blk {
			panic("memctrl: POD phy round-trip mismatch for codec " + c.Name())
		}
	}
	z := bu.CountZeros()
	return PhyResult{Zeros: z, CostUnits: z, Beats: bu.Beats}
}

// TransitionPhy is the unterminated LPDDR3 interface driven with the
// flip-on-zero transition signaling of Sections 4.5/5.3: the wire toggles
// exactly on coded zeros, so any zero-minimizing codec carries over and
// CostUnits (toggles) equals Zeros. The wire state is tracked so the
// Verify path exercises the real signal/recover pair across bursts.
type TransitionPhy struct {
	Verify  bool
	txState bitblock.BusState
	rxState bitblock.BusState
}

// Transmit implements Phy.
func (p *TransitionPhy) Transmit(c code.Codec, blk *bitblock.Block) PhyResult {
	bu := c.Encode(blk)
	z := bu.CountZeros()
	if p.Verify {
		wire := code.SignalTransitions(bu, &p.txState)
		back := code.RecoverTransitions(wire, &p.rxState)
		if got := c.Decode(back); got != *blk {
			panic("memctrl: transition phy round-trip mismatch for codec " + c.Name())
		}
	}
	return PhyResult{Zeros: z, CostUnits: z, Beats: bu.Beats}
}

// BIWirePhy is the LPDDR3 baseline of Section 2.1.2: plain bus-invert
// coding applied directly to the unterminated wires (LPDDR3 has no native
// coding; BI is the natural predecessor MiL is compared against). The
// chosen codec only sets the burst timing (the baseline policy picks Raw,
// BL8); the coding and toggle accounting happen here, statefully.
type BIWirePhy struct {
	Verify bool
	bi     code.BusInvert
	state  bitblock.BusState
}

// Transmit implements Phy.
func (p *BIWirePhy) Transmit(c code.Codec, blk *bitblock.Block) PhyResult {
	wire, toggles := p.bi.EncodeWire(blk, &p.state)
	if p.Verify {
		if got := p.bi.DecodeWire(wire); got != *blk {
			panic("memctrl: BI phy round-trip mismatch")
		}
	}
	return PhyResult{Zeros: toggles, CostUnits: toggles, Beats: c.Beats()}
}
