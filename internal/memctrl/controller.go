package memctrl

import (
	"fmt"
	"io"

	"mil/internal/bitblock"
	"mil/internal/dram"
)

// PowerDownConfig enables the fast power-down extension the paper points
// at in Section 7.3 (Malladi et al. [60]): a rank with all banks precharged
// and no queued work enters power-down after IdleCycles, paying the lower
// IDD2P background current; waking costs XP cycles before its next command.
// The paper's evaluated systems run with this off (DDR4's lack of a fast
// power-down mode is why background energy dominates Figure 18(a)).
type PowerDownConfig struct {
	Enable     bool
	IdleCycles int // idle threshold before entering power-down
	XP         int // exit latency in DRAM cycles
}

// RetryConfig bounds the NACK-and-replay path. Zero fields select the
// defaults; the zero value is a fully usable configuration.
type RetryConfig struct {
	// MaxRetries is the replay budget per request; past it the request is
	// abandoned (counted in RetriesExhausted) rather than retried forever
	// (0 selects the default of 8).
	MaxRetries int
	// BackoffBase is the first replay delay in DRAM cycles, doubled per
	// retry of the same request (0 selects the default of 4).
	BackoffBase int
	// BackoffMax caps the per-request exponential backoff (0 selects the
	// default of 256).
	BackoffMax int
	// StormThreshold is the number of consecutive channel-wide failures
	// past which the controller assumes a persistent fault and quadruples
	// every backoff - the retry-storm guard (0 selects the default of 16).
	StormThreshold int
}

// maxRetries, backoffBase, backoffMax, stormThreshold apply the defaults.
func (r *RetryConfig) maxRetries() int {
	if r.MaxRetries <= 0 {
		return 8
	}
	return r.MaxRetries
}

func (r *RetryConfig) backoffBase() int {
	if r.BackoffBase <= 0 {
		return 4
	}
	return r.BackoffBase
}

func (r *RetryConfig) backoffMax() int {
	if r.BackoffMax <= 0 {
		return 256
	}
	return r.BackoffMax
}

func (r *RetryConfig) stormThreshold() int {
	if r.StormThreshold <= 0 {
		return 16
	}
	return r.StormThreshold
}

// Validate reports configuration errors.
func (r *RetryConfig) Validate() error {
	switch {
	case r.MaxRetries < 0:
		return fmt.Errorf("memctrl: max retries %d < 0", r.MaxRetries)
	case r.BackoffBase < 0 || r.BackoffMax < 0:
		return fmt.Errorf("memctrl: backoff %d/%d < 0", r.BackoffBase, r.BackoffMax)
	case r.BackoffMax > 0 && r.BackoffBase > r.BackoffMax:
		return fmt.Errorf("memctrl: backoff base %d > cap %d", r.BackoffBase, r.BackoffMax)
	case r.StormThreshold < 0:
		return fmt.Errorf("memctrl: storm threshold %d < 0", r.StormThreshold)
	}
	return nil
}

// Config parameterizes one channel's controller. The defaults mirror
// Table 2: 64-entry queues, write-drain watermarks 60/50, FR-FCFS with an
// open-page policy.
type Config struct {
	DRAM       dram.Config
	ReadQueue  int
	WriteQueue int
	DrainHigh  int
	DrainLow   int
	PowerDown  PowerDownConfig
	// Reliability configures the DDR4 RAS features (write CRC, CA parity)
	// whose NACKs drive the retry path. The zero value disables both.
	Reliability dram.Reliability
	// Retry bounds the replay of NACKed transfers.
	Retry RetryConfig
	// Trace receives one line per issued DRAM command when non-nil:
	// "<cycle> ch<N> <command> [annotation]".
	Trace io.Writer
}

// DefaultConfig returns the Table 2 controller parameters over the given
// device config.
func DefaultConfig(d dram.Config) Config {
	return Config{DRAM: d, ReadQueue: 64, WriteQueue: 64, DrainHigh: 60, DrainLow: 50}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	switch {
	case c.ReadQueue <= 0 || c.WriteQueue <= 0:
		return fmt.Errorf("memctrl: queue sizes %d/%d", c.ReadQueue, c.WriteQueue)
	case c.DrainHigh > c.WriteQueue || c.DrainLow < 0 || c.DrainLow >= c.DrainHigh:
		return fmt.Errorf("memctrl: drain watermarks %d/%d with queue %d", c.DrainHigh, c.DrainLow, c.WriteQueue)
	case c.PowerDown.Enable && (c.PowerDown.IdleCycles <= 0 || c.PowerDown.XP <= 0):
		return fmt.Errorf("memctrl: power-down idle %d / xp %d", c.PowerDown.IdleCycles, c.PowerDown.XP)
	}
	if err := c.Reliability.Validate(); err != nil {
		return err
	}
	return c.Retry.Validate()
}

// demandEscalationAge is the queueing age (DRAM cycles) past which the
// oldest demand read's bank work preempts ready prefetch hits.
const demandEscalationAge = 96

// rankPD tracks one rank's power-down state.
type rankPD struct {
	down      bool
	idleSince int64 // first cycle of the current idle stretch (-1 = active)
	wakeAt    int64 // rank unusable until this cycle after a wake-up
}

// inflightRead tracks a read whose data burst is still in flight.
type inflightRead struct {
	req  *Request
	done int64
}

// Controller schedules one DRAM channel.
type Controller struct {
	cfg    Config
	ch     *dram.Channel
	mem    Memory
	policy Policy
	phy    Phy

	rq []*Request
	wq []*Request

	writeMode  bool
	refDue     []int64
	refPending []bool
	pd         []rankPD

	inflight    []inflightRead
	deferred    []inflightRead     // forwarded/coalesced completions, fired on a later tick
	activeBurst []dram.BurstWindow // windows not yet past, for busy classification

	stats     *Stats
	now       int64
	started   bool
	acted     bool    // last Tick did observable work (event-core fast path)
	idleRun   int     // consecutive no-op Ticks since the last acting one
	wake      int64   // memoized NextWake scan result ...
	wakeValid bool    // ... valid until an enqueue or an acting Tick
	banksTmp  []int64 // scratch per-pass per-bank visited stamps
	bankStamp int64   // current stamp; bumped once per pass
	id        int     // channel index, for trace output

	// la and colBlk are per-issue scratch, hoisted so the Lookahead box
	// and the transferred cache line never escape to the heap (the column
	// path is alloc-free; see TestTickSteadyStateZeroAllocObsDisabled).
	la     lookahead
	colBlk bitblock.Block

	// obs, when non-nil, carries the observability handles and the
	// idle-window run tracker. Nil keeps every instrumented site on a
	// single-branch zero-allocation path (see SetObs in obs.go).
	obs *ctrlObs

	consecFail int  // consecutive link failures, channel-wide (storm guard)
	inStorm    bool // currently past the storm threshold

	// epoch drives the optional per-epoch policy feedback (EpochObserver).
	// A policy that does not observe epochs leaves epoch.obs nil and the
	// column path pays one nil check per burst.
	epoch epochTracker

	// doneHook, when non-nil, observes every request completion in place
	// of the per-request OnDone closure (which still fires if set). The
	// replay driver uses it, with Request.Tag as the event identity, to
	// verify completion cycles without allocating a closure per event.
	doneHook func(req *Request, now int64)
}

// SetDoneHook installs a channel-wide completion observer. It fires for
// every request the controller completes (reads, writes, forwarded hits,
// and retry-exhausted abandons), after the request's own OnDone callback.
func (c *Controller) SetDoneHook(hook func(req *Request, now int64)) { c.doneHook = hook }

// fireDone completes a request through its callback and the channel hook.
func (c *Controller) fireDone(req *Request, now int64) {
	req.complete(now)
	if c.doneHook != nil {
		c.doneHook(req, now)
	}
}

// SetID labels the controller's trace lines with its channel index.
func (c *Controller) SetID(id int) { c.id = id }

// traceCmd records one issued command with the enabled trace sinks: an
// instant on the obs command track, and a line on the text trace writer.
func (c *Controller) traceCmd(now int64, cmd dram.Command, extra string) {
	if c.obs != nil {
		c.obs.traceIssue(now, cmd)
	}
	if c.cfg.Trace == nil {
		return
	}
	if extra != "" {
		fmt.Fprintf(c.cfg.Trace, "%d ch%d %s %s\n", now, c.id, cmd, extra)
		return
	}
	fmt.Fprintf(c.cfg.Trace, "%d ch%d %s\n", now, c.id, cmd)
}

// NewController wires a controller over a fresh channel model.
func NewController(cfg Config, mem Memory, policy Policy, phy Phy) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mem == nil || policy == nil || phy == nil {
		return nil, fmt.Errorf("memctrl: nil memory, policy, or phy")
	}
	ch, err := dram.NewChannel(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg: cfg, ch: ch, mem: mem, policy: policy, phy: phy,
		refDue:     make([]int64, cfg.DRAM.Geometry.Ranks),
		refPending: make([]bool, cfg.DRAM.Geometry.Ranks),
		pd:         make([]rankPD, cfg.DRAM.Geometry.Ranks),
		stats:      NewStats(),
		banksTmp:   make([]int64, cfg.DRAM.Geometry.Ranks*cfg.DRAM.Geometry.BankGroups*cfg.DRAM.Geometry.BanksPerGroup),
		// Queues and in-flight tracking are preallocated to their
		// steady-state bounds so the tick path (and the replay driver
		// built on it) never grows them mid-run.
		rq:          make([]*Request, 0, cfg.ReadQueue),
		wq:          make([]*Request, 0, cfg.WriteQueue),
		inflight:    make([]inflightRead, 0, cfg.ReadQueue),
		deferred:    make([]inflightRead, 0, cfg.ReadQueue+cfg.WriteQueue),
		activeBurst: make([]dram.BurstWindow, 0, cfg.ReadQueue),
	}
	if eo, ok := policy.(EpochObserver); ok {
		n := eo.EpochLength()
		if n <= 0 {
			return nil, fmt.Errorf("memctrl: policy %s epoch length %d <= 0", policy.Name(), n)
		}
		c.epoch.obs, c.epoch.every = eo, int64(n)
	}
	for r := range c.pd {
		c.pd[r].idleSince = -1
	}
	// Stagger per-rank refresh so ranks do not refresh in lockstep.
	step := int64(cfg.DRAM.Timing.REFI) / int64(cfg.DRAM.Geometry.Ranks)
	for r := range c.refDue {
		c.refDue[r] = int64(cfg.DRAM.Timing.REFI) - int64(r)*step
	}
	return c, nil
}

// Stats exposes the controller's counters.
func (c *Controller) Stats() *Stats { return c.stats }

// Channel exposes the underlying device model (read-only use).
func (c *Controller) Channel() *dram.Channel { return c.ch }

// QueueDepths returns the current read/write queue occupancy.
func (c *Controller) QueueDepths() (int, int) { return len(c.rq), len(c.wq) }

// Pending reports whether any work remains queued or in flight.
func (c *Controller) Pending() bool {
	return len(c.rq) > 0 || len(c.wq) > 0 || len(c.inflight) > 0 || len(c.deferred) > 0
}

// Enqueue admits a request, returning false when the target queue is full.
// Reads that hit a queued write are served by forwarding and complete on
// the next cycle without a DRAM access; writes to an already-queued line
// coalesce in place.
func (c *Controller) Enqueue(req *Request, now int64) bool {
	c.wakeValid = false // any arrival can create nearer work
	if req.Write {
		for _, w := range c.wq {
			if w.Line == req.Line {
				w.Data = req.Data // coalesce
				c.deferred = append(c.deferred, inflightRead{req: req, done: now + 1})
				return true
			}
		}
		if len(c.wq) >= c.cfg.WriteQueue {
			return false
		}
		req.Arrive = now
		c.wq = append(c.wq, req)
		if c.obs != nil {
			c.obs.wqPeak.Max(int64(len(c.wq)))
		}
		return true
	}
	for _, w := range c.wq {
		if w.Line == req.Line {
			c.stats.Forwards++
			// Completion is deferred to the next tick: synchronous
			// completion inside Enqueue would fire the caller's callback
			// before the caller has even recorded the request as pending.
			c.deferred = append(c.deferred, inflightRead{req: req, done: now + 1})
			return true
		}
	}
	if len(c.rq) >= c.cfg.ReadQueue {
		return false
	}
	// Prefetches are admitted only up to a fixed share of the queue so
	// they cannot crowd out (or add queueing delay to) demand misses.
	if !req.Demand {
		pf := 0
		for _, r := range c.rq {
			if !r.Demand {
				pf++
			}
		}
		if pf >= c.cfg.ReadQueue/4 {
			return false
		}
	}
	req.Arrive = now
	c.rq = append(c.rq, req)
	if c.obs != nil {
		c.obs.rqPeak.Max(int64(len(c.rq)))
	}
	return true
}

// Tick advances the controller one DRAM cycle: completes arrived reads,
// manages refresh, issues at most one command, and classifies the cycle for
// the Figure 5 statistics. Cycles must be presented monotonically.
func (c *Controller) Tick(now int64) {
	if c.started && now <= c.now {
		panic(fmt.Sprintf("memctrl: tick %d after %d", now, c.now))
	}
	c.now = now
	c.started = true

	acted := c.completeReads(now)

	for r := range c.refDue {
		if now >= c.refDue[r] && !c.refPending[r] {
			c.refPending[r] = true
			acted = true
		}
	}
	issued := false
	if c.cfg.PowerDown.Enable {
		issued = c.powerDownTick(now)
	}
	if !issued {
		issued = c.tryRefresh(now)
	}
	if !issued {
		issued = c.schedule(now)
	}
	c.acted = acted || issued
	// A no-op tick (nothing completed, flipped, or issued) leaves every
	// wake term unchanged, so a memoized scan stays valid across it. The
	// power-down machine mutates state without reporting, so its runs
	// always invalidate.
	if c.acted {
		c.idleRun = 0
	} else {
		c.idleRun++
	}
	if c.acted || c.cfg.PowerDown.Enable {
		c.wakeValid = false
	}

	c.classify(now)
	c.stats.Ticks++
	c.stats.RQOccupancySum += int64(len(c.rq))
	c.stats.WQOccupancySum += int64(len(c.wq))
}

// completeReads retires reads whose data has fully arrived, plus deferred
// forwarding/coalescing completions.
func (c *Controller) completeReads(now int64) bool {
	completed := false
	kept := c.inflight[:0]
	for _, f := range c.inflight {
		if f.done <= now {
			c.stats.ReadLatencySum += now - f.req.Arrive
			c.stats.ReadsCompleted++
			if f.req.Demand {
				c.stats.DemandLatencySum += now - f.req.Arrive
				c.stats.DemandReadsCompleted++
			}
			c.fireDone(f.req, now)
			completed = true
		} else {
			kept = append(kept, f)
		}
	}
	c.inflight = kept

	keptD := c.deferred[:0]
	for _, f := range c.deferred {
		if f.done <= now {
			c.fireDone(f.req, now)
			completed = true
		} else {
			keptD = append(keptD, f)
		}
	}
	c.deferred = keptD
	return completed
}

// rankBlocked reports whether new activity should avoid a rank because a
// refresh is trying to drain it or it is powered down / waking up.
func (c *Controller) rankBlocked(rank int) bool {
	return c.refPending[rank] || c.pd[rank].down || c.pd[rank].wakeAt > c.now
}

// powerDownTick advances the power-down state machine: a rank with nothing
// queued for it starts an idle clock; past the threshold its open rows are
// precharged (consuming the cycle's command slot) and it enters power-down.
// Ranks with arriving work pay the tXP wake latency. Returns true if it
// issued a command this cycle.
func (c *Controller) powerDownTick(now int64) bool {
	g := c.cfg.DRAM.Geometry
	var needed uint32
	for _, req := range c.rq {
		needed |= 1 << req.loc.Rank
	}
	for _, req := range c.wq {
		needed |= 1 << req.loc.Rank
	}
	for r := range c.pd {
		pd := &c.pd[r]
		want := needed>>r&1 == 1 || c.refPending[r]
		if pd.down {
			c.stats.PowerDownCycles++
			if want {
				pd.down = false
				pd.wakeAt = now + int64(c.cfg.PowerDown.XP)
				pd.idleSince = -1
				c.stats.PowerDownExits++
				if c.obs != nil {
					c.obs.pdExits.Inc()
				}
			}
			continue
		}
		if pd.wakeAt > now {
			continue // waking up
		}
		if want {
			pd.idleSince = -1
			continue
		}
		if pd.idleSince < 0 {
			pd.idleSince = now
		}
		if now-pd.idleSince < int64(c.cfg.PowerDown.IdleCycles) {
			continue
		}
		// Idle past the threshold: close any open rows, then power down.
		for bg := 0; bg < g.BankGroups; bg++ {
			for b := 0; b < g.BanksPerGroup; b++ {
				if _, open := c.ch.OpenRow(r, bg, b); !open {
					continue
				}
				cmd := dram.Command{Kind: dram.PRE, Rank: r, Group: bg, Bank: b}
				if c.ch.EarliestIssue(cmd, now) == now {
					c.ch.Issue(cmd, now)
					c.traceCmd(now, cmd, "powerdown")
					c.stats.Precharges++
					return true
				}
				return false // constraint-bound; try again next cycle
			}
		}
		pd.down = true
		c.stats.PowerDownCycles++
		if c.obs != nil {
			c.obs.pdEntries.Inc()
		}
	}
	return false
}

// tryRefresh makes progress on pending refreshes: precharging open banks of
// the refreshing rank, then issuing REF. Returns true if it consumed the
// cycle's command slot.
func (c *Controller) tryRefresh(now int64) bool {
	g := c.cfg.DRAM.Geometry
	for r := range c.refPending {
		if !c.refPending[r] {
			continue
		}
		if c.pd[r].down || c.pd[r].wakeAt > now {
			continue // the power-down logic is waking the rank first
		}
		allClosed := true
		for bg := 0; bg < g.BankGroups; bg++ {
			for b := 0; b < g.BanksPerGroup; b++ {
				if _, open := c.ch.OpenRow(r, bg, b); !open {
					continue
				}
				allClosed = false
				cmd := dram.Command{Kind: dram.PRE, Rank: r, Group: bg, Bank: b}
				if c.ch.EarliestIssue(cmd, now) == now {
					c.ch.Issue(cmd, now)
					c.traceCmd(now, cmd, "refresh-drain")
					c.stats.Precharges++
					return true
				}
			}
		}
		if allClosed {
			cmd := dram.Command{Kind: dram.REF, Rank: r}
			if c.ch.EarliestIssue(cmd, now) == now {
				c.ch.Issue(cmd, now)
				c.traceCmd(now, cmd, "")
				c.stats.Refreshes++
				c.refPending[r] = false
				c.refDue[r] += int64(c.cfg.DRAM.Timing.REFI)
				return true
			}
		}
	}
	return false
}

// schedule runs FR-FCFS over the active queue and issues at most one
// command; it reports whether anything was issued.
func (c *Controller) schedule(now int64) bool {
	// Write-drain mode transitions (Section 4.6, Table 2 watermarks).
	if len(c.wq) >= c.cfg.DrainHigh {
		c.writeMode = true
	} else if c.writeMode && len(c.wq) <= c.cfg.DrainLow {
		c.writeMode = false
	}
	active, write := c.rq, false
	if c.writeMode || (len(c.rq) == 0 && len(c.wq) > 0) {
		active, write = c.wq, true
	}
	if len(active) == 0 {
		return false
	}

	if write {
		if c.readyHitPass(active, true, now, keepAll) {
			return true
		}
		return c.fcfsPass(active, now, keepAll)
	}
	// Demand reads outrank prefetches. Normally prefetch row hits may still
	// slip in ahead of demand ACT/PRE work (they keep the streams timely),
	// but once any demand has aged past the escalation threshold, demand
	// bank work preempts them - otherwise an endless supply of ready
	// prefetch hits can starve the misses cores are actually blocked on.
	demandFirst := false
	for _, r := range active {
		if r.Demand {
			demandFirst = now-r.Arrive > demandEscalationAge
			break
		}
	}
	if c.readyHitPass(active, false, now, keepDemand) {
		return true
	}
	if demandFirst {
		if c.fcfsPass(active, now, keepDemand) {
			return true
		}
		if c.readyHitPass(active, false, now, keepPrefetch) {
			return true
		}
	} else {
		if c.readyHitPass(active, false, now, keepPrefetch) {
			return true
		}
		if c.fcfsPass(active, now, keepDemand) {
			return true
		}
	}
	return c.fcfsPass(active, now, keepPrefetch)
}

// candidate filters for the scheduler passes; a small enum instead of a
// predicate closure keeps the per-request check branch-predictable and
// inlineable on the hottest loops in the simulator.
const (
	keepAll = iota
	keepDemand
	keepPrefetch
)

// skipReq reports whether a pass with the given filter ignores req.
func skipReq(keep int, req *Request) bool {
	return (keep == keepDemand && !req.Demand) || (keep == keepPrefetch && req.Demand)
}

// readyHitPass issues the oldest matching column command whose row is open
// and whose constraints are met right now. keep filters candidates.
func (c *Controller) readyHitPass(active []*Request, write bool, now int64, keep int) bool {
	for i, req := range active {
		if skipReq(keep, req) {
			continue
		}
		if req.retryAt > now || c.rankBlocked(req.loc.Rank) {
			continue
		}
		if row, open := c.ch.OpenRow(req.loc.Rank, req.loc.Group, req.loc.Bank); open && row == req.loc.Row {
			if c.ch.EarliestIssue(c.probeCAS(req, write), now) == now {
				c.issueColumn(req, i, write, now)
				return true
			}
		}
	}
	return false
}

// fcfsPass walks oldest-first issuing the ACT or PRE the request needs, at
// most one action per bank so a younger conflict cannot close a row an
// older request still needs.
func (c *Controller) fcfsPass(active []*Request, now int64, keep int) bool {
	c.bankStamp++
	for _, req := range active {
		if skipReq(keep, req) {
			continue
		}
		bankID := (req.loc.Rank*c.cfg.DRAM.Geometry.BankGroups+req.loc.Group)*c.cfg.DRAM.Geometry.BanksPerGroup + req.loc.Bank
		if c.banksTmp[bankID] == c.bankStamp {
			continue
		}
		c.banksTmp[bankID] = c.bankStamp
		if req.retryAt > now || c.rankBlocked(req.loc.Rank) {
			continue
		}
		row, open := c.ch.OpenRow(req.loc.Rank, req.loc.Group, req.loc.Bank)
		switch {
		case open && row == req.loc.Row:
			// A hit that was not ready in the first pass; nothing to do.
		case open:
			cmd := dram.Command{Kind: dram.PRE, Rank: req.loc.Rank, Group: req.loc.Group, Bank: req.loc.Bank}
			if c.ch.EarliestIssue(cmd, now) == now {
				c.ch.Issue(cmd, now)
				c.traceCmd(now, cmd, "")
				c.stats.Precharges++
				return true
			}
		default:
			cmd := dram.Command{Kind: dram.ACT, Rank: req.loc.Rank, Group: req.loc.Group, Bank: req.loc.Bank, Row: req.loc.Row}
			if c.ch.EarliestIssue(cmd, now) == now {
				c.ch.Issue(cmd, now)
				c.traceCmd(now, cmd, "")
				c.stats.Activates++
				return true
			}
		}
	}
	return false
}

// probeCAS builds the baseline-shaped column command used for readiness
// checks. Extra codec latency can only relax the issue time (the data slot
// moves later), so a probe that is ready implies the coded command is too.
func (c *Controller) probeCAS(req *Request, write bool) dram.Command {
	kind := dram.RD
	if write {
		kind = dram.WR
	}
	return dram.Command{
		Kind: kind, Rank: req.loc.Rank, Group: req.loc.Group,
		Bank: req.loc.Bank, Row: req.loc.Row, Beats: 8,
	}
}

// lookahead implements Lookahead over the controller's live queue state.
type lookahead struct {
	c   *Controller
	now int64
}

// ColumnReadyWithin implements Lookahead: it counts queued reads and writes
// whose row is already open and whose constraints resolve within x cycles,
// including the command being scheduled (Section 5.1's rdyX comparators).
func (l lookahead) ColumnReadyWithin(x int) int {
	n := 0
	scan := func(reqs []*Request, write bool) {
		for _, req := range reqs {
			if req.retryAt > l.now {
				continue // backing off; cannot become ready in the window
			}
			row, open := l.c.ch.OpenRow(req.loc.Rank, req.loc.Group, req.loc.Bank)
			if !open || row != req.loc.Row {
				continue
			}
			if l.c.ch.EarliestIssue(l.c.probeCAS(req, write), l.now) <= l.now+int64(x) {
				n++
			}
		}
	}
	scan(l.c.rq, false)
	scan(l.c.wq, true)
	return n
}

// epochTracker counts issued bursts toward the policy's next epoch
// boundary and remembers the cumulative stat totals at the last one, so
// each delivery is a cheap subtraction off counters the column path
// maintains anyway.
type epochTracker struct {
	obs    EpochObserver
	every  int64
	bursts int64      // bursts issued since the last boundary
	mark   EpochStats // cumulative totals at the last boundary
}

// epochTick advances the per-epoch feedback channel after one issued
// burst (success or failure alike) and delivers the epoch's stat deltas
// at each boundary. Policies without an EpochObserver cost one nil check
// here; TestEpochFeedbackZeroCostWhenDisabled pins the path at 0
// allocs/op in both cases.
func (c *Controller) epochTick(now int64) {
	if c.epoch.obs == nil {
		return
	}
	c.epoch.bursts++
	if c.epoch.bursts < c.epoch.every {
		return
	}
	c.epoch.bursts = 0
	s := c.stats
	cur := EpochStats{
		Bursts:    s.Reads + s.Writes,
		Zeros:     s.Zeros,
		CostUnits: s.CostUnits,
		Beats:     s.BurstBeats,
		Retries:   s.WriteRetries + s.ReadRetries + s.RetriesExhausted,
	}
	delta := EpochStats{
		Bursts:    cur.Bursts - c.epoch.mark.Bursts,
		Zeros:     cur.Zeros - c.epoch.mark.Zeros,
		CostUnits: cur.CostUnits - c.epoch.mark.CostUnits,
		Beats:     cur.Beats - c.epoch.mark.Beats,
		Retries:   cur.Retries - c.epoch.mark.Retries,
	}
	c.epoch.mark = cur
	if c.obs != nil {
		c.obs.policyEpochs.Inc()
	}
	c.epoch.obs.ObserveEpoch(now, delta)
}

// issueColumn runs the coding decision, issues the column command, moves
// the data, and records all statistics. idx is the request's position in
// the active queue.
//
// On a faulty link the transfer can come back NACKed (device write-CRC or
// CA parity via ALERT_n, or a controller-side read decode failure); the
// burst's bus time and energy are then sunk cost, the request stays queued
// in age order, and handleFailure schedules its replay.
func (c *Controller) issueColumn(req *Request, idx int, write bool, now int64) {
	var dataPtr *bitblock.Block
	if write {
		dataPtr = &req.Data
	}
	c.la = lookahead{c: c, now: now}
	codec := c.policy.Choose(write, dataPtr, &c.la)

	kind := dram.RD
	extraBeats := 0
	if write {
		kind = dram.WR
		extraBeats = c.cfg.Reliability.ExtraWriteBeats()
	}
	cmd := dram.Command{
		Kind: kind, Rank: req.loc.Rank, Group: req.loc.Group, Bank: req.loc.Bank,
		Row: req.loc.Row, Beats: codec.Beats() + extraBeats, ExtraCAS: codec.ExtraLatency(),
	}
	info := c.ch.Issue(cmd, now)

	blk := &c.colBlk
	if write {
		*blk = req.Data
	} else {
		*blk = c.mem.ReadLine(req.Line)
	}
	res := c.phy.Transmit(codec, blk, write)
	// The codec annotation is built lazily: the Sprintf must not run (or
	// allocate) on untraced runs.
	if c.cfg.Trace != nil {
		c.traceCmd(now, cmd, fmt.Sprintf("codec=%s zeros=%d", codec.Name(), res.Zeros))
	} else if c.obs != nil {
		c.obs.traceIssue(now, cmd)
	}
	if c.obs != nil {
		c.obs.traceBurst(info.Window, codec.Name(), res.Beats, res.Zeros)
	}

	c.stats.Zeros += int64(res.Zeros)
	c.stats.CostUnits += int64(res.CostUnits)
	c.stats.BurstBeats += int64(res.Beats)
	c.stats.BusyCycles += info.Window.Cycles()
	c.stats.CodecBursts[codec.Name()]++
	c.stats.CRCBeats += int64(extraBeats)
	c.stats.BitErrors += int64(res.BitErrors)
	if res.Silent {
		c.stats.SilentErrors++
	}
	if info.PrevEnd >= 0 {
		gap := info.Window.Start - info.PrevEnd
		c.stats.GapHist.Add(gap)
		c.stats.GapPairs++
		if gap == 0 {
			c.stats.BackToBack++
		}
		slack := info.Window.Start - (info.PrevEnd + info.Anchor)
		if slack < 0 {
			slack = 0
		}
		c.stats.SlackHist.Add(slack)
	}
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
		if req.Demand {
			c.stats.DemandReads++
		}
	}
	c.activeBurst = append(c.activeBurst, info.Window)

	if fb, ok := c.policy.(ReliabilityFeedback); ok {
		fb.RecordBurst(codec.Name(), write, res.Failed())
	}

	if res.Failed() {
		c.handleFailure(req, idx, write, &res, info.Window.End)
		c.epochTick(now)
		return
	}
	c.consecFail = 0
	c.inStorm = false

	if write {
		// The device accepted the transfer; commit what actually arrived
		// (silent corruption is stored, exactly as in hardware).
		c.mem.WriteLine(req.Line, res.Arrived)
		c.stats.WritesCompleted++
		c.wq = removeAt(c.wq, idx)
		c.fireDone(req, now)
	} else {
		c.rq = removeAt(c.rq, idx)
		c.inflight = append(c.inflight, inflightRead{req: req, done: info.Window.End})
	}
	c.epochTick(now)
}

// handleFailure processes a NACKed transfer: it classifies the failure,
// charges the wasted burst, and either schedules a replay (the request
// stays queued in age order with a capped exponential backoff, gated by
// retryAt) or abandons the request once its retry budget is spent. A run of
// consecutive channel-wide failures trips the retry-storm guard, which
// quadruples backoff until a transfer succeeds.
func (c *Controller) handleFailure(req *Request, idx int, write bool, res *PhyResult, burstEnd int64) {
	detectAt := burstEnd
	switch {
	case res.CAError:
		c.stats.CAParityAlerts++
		detectAt += int64(c.cfg.Reliability.CAAlertCycles)
	case res.CRCError:
		c.stats.WriteCRCAlerts++
		detectAt += int64(c.cfg.Reliability.CRCAlertCycles)
	default: // read decode failure: the controller itself rejects the burst
		c.stats.ReadDecodeFailures++
	}
	c.stats.RetryBeats += int64(res.Beats)
	c.stats.RetryCostUnits += int64(res.CostUnits)

	c.consecFail++
	if !c.inStorm && c.consecFail >= c.cfg.Retry.stormThreshold() {
		c.inStorm = true
		c.stats.RetryStorms++
	}

	if req.retries >= c.cfg.Retry.maxRetries() {
		// Budget spent: abandon rather than retry forever. The request
		// completes so the core is not wedged; the data is lost (stale
		// memory for writes), which RetriesExhausted makes visible.
		c.stats.RetriesExhausted++
		if c.obs != nil {
			c.obs.retryExhausted.Inc()
		}
		if write {
			c.stats.WritesCompleted++
			c.wq = removeAt(c.wq, idx)
		} else {
			c.stats.ReadsCompleted++
			c.stats.ReadLatencySum += c.now - req.Arrive
			if req.Demand {
				c.stats.DemandLatencySum += c.now - req.Arrive
				c.stats.DemandReadsCompleted++
			}
			c.rq = removeAt(c.rq, idx)
		}
		c.fireDone(req, c.now)
		return
	}

	backoff := int64(c.cfg.Retry.backoffBase()) << req.retries
	if limit := int64(c.cfg.Retry.backoffMax()); backoff > limit {
		backoff = limit
	}
	if c.inStorm {
		backoff *= 4
	}
	req.retries++
	req.retryAt = detectAt + backoff
	if c.obs != nil {
		c.obs.retryReplays.Inc()
	}
	if write {
		c.stats.WriteRetries++
	} else {
		c.stats.ReadRetries++
	}
}

// classify attributes the cycle to busy / idle-with-pending / idle-empty
// for the Figure 5 breakdown.
func (c *Controller) classify(now int64) {
	busy := false
	kept := c.activeBurst[:0]
	for _, w := range c.activeBurst {
		if w.End <= now {
			continue
		}
		kept = append(kept, w)
		if w.Start <= now {
			busy = true
		}
	}
	c.activeBurst = kept
	if c.obs != nil {
		if busy {
			c.obs.busyAt(now)
		} else {
			c.obs.idleAt(now)
		}
	}
	switch {
	case busy:
		// counted via BurstBeats/BusyCycles already; nothing extra here
	case len(c.rq)+len(c.wq) > 0:
		c.stats.IdlePendingCycles++
	default:
		c.stats.IdleEmptyCycles++
	}
}

// removeAt deletes element i preserving order (FCFS age order matters).
func removeAt(reqs []*Request, i int) []*Request {
	copy(reqs[i:], reqs[i+1:])
	return reqs[:len(reqs)-1]
}
