package memctrl

import (
	"fmt"

	"mil/internal/dram"
)

// Location is a fully decoded DRAM coordinate for one cache line.
type Location struct {
	Channel int
	Rank    int
	Group   int
	Bank    int
	Row     int
	Col     int
}

// AddressMapper implements the page-interleaved mapping of Table 2:
// consecutive lines fill a row buffer (page), consecutive pages rotate
// across channels, then bank groups, banks, and ranks, so independent pages
// land on independently timed resources.
type AddressMapper struct {
	channels     int
	geom         dram.Geometry
	linesPerPage int64
}

// NewAddressMapper builds a mapper for the given channel count and device
// geometry.
func NewAddressMapper(channels int, geom dram.Geometry) (*AddressMapper, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("memctrl: channels = %d", channels)
	}
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	return &AddressMapper{
		channels:     channels,
		geom:         geom,
		linesPerPage: int64(geom.LinesPerPage()),
	}, nil
}

// Channels returns the channel count.
func (m *AddressMapper) Channels() int { return m.channels }

// Map decodes a cache-line index.
func (m *AddressMapper) Map(line int64) Location {
	if line < 0 {
		line = -line
	}
	var loc Location
	loc.Col = int(line % m.linesPerPage)
	rest := line / m.linesPerPage
	loc.Channel = int(rest % int64(m.channels))
	rest /= int64(m.channels)
	loc.Group = int(rest % int64(m.geom.BankGroups))
	rest /= int64(m.geom.BankGroups)
	loc.Bank = int(rest % int64(m.geom.BanksPerGroup))
	rest /= int64(m.geom.BanksPerGroup)
	loc.Rank = int(rest % int64(m.geom.Ranks))
	rest /= int64(m.geom.Ranks)
	loc.Row = int(rest % int64(m.geom.Rows))
	return loc
}
