package memctrl

import "fmt"

// SystemConfig describes the whole main-memory subsystem: N identical
// channels, the coding policy, and a phy factory (phys are stateful per
// channel).
type SystemConfig struct {
	Channels   int
	Controller Config
	Policy     Policy
	NewPhy     func() Phy
	Mem        Memory
}

// System is the multi-channel memory subsystem the CPU side talks to.
type System struct {
	mapper *AddressMapper
	ctrls  []*Controller
}

// NewSystem builds the per-channel controllers and the address mapper.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Channels <= 0 {
		return nil, fmt.Errorf("memctrl: channels = %d", cfg.Channels)
	}
	if cfg.NewPhy == nil {
		return nil, fmt.Errorf("memctrl: nil phy factory")
	}
	mapper, err := NewAddressMapper(cfg.Channels, cfg.Controller.DRAM.Geometry)
	if err != nil {
		return nil, err
	}
	s := &System{mapper: mapper}
	for i := 0; i < cfg.Channels; i++ {
		c, err := NewController(cfg.Controller, cfg.Mem, cfg.Policy, cfg.NewPhy())
		if err != nil {
			return nil, err
		}
		c.SetID(i)
		s.ctrls = append(s.ctrls, c)
	}
	return s, nil
}

// Mapper exposes the address mapping (the CPU side uses it in tests).
func (s *System) Mapper() *AddressMapper { return s.mapper }

// Channels returns the channel count.
func (s *System) Channels() int { return len(s.ctrls) }

// Controller returns channel i's controller.
func (s *System) Controller(i int) *Controller { return s.ctrls[i] }

// SetDoneHook installs a completion observer on every channel (see
// Controller.SetDoneHook).
func (s *System) SetDoneHook(hook func(req *Request, now int64)) {
	for _, c := range s.ctrls {
		c.SetDoneHook(hook)
	}
}

// Enqueue routes a request to its channel. It returns false when that
// channel's queue is full; the caller retries later.
func (s *System) Enqueue(req *Request, now int64) bool {
	if !req.mapped {
		req.loc = s.mapper.Map(req.Line)
		req.mapped = true
	}
	return s.ctrls[req.loc.Channel].Enqueue(req, now)
}

// Tick advances every channel one DRAM cycle.
func (s *System) Tick(now int64) {
	for _, c := range s.ctrls {
		c.Tick(now)
	}
}

// NextWake returns the earliest next-wake bound over all channels (see
// Controller.NextWake for the contract).
func (s *System) NextWake() int64 {
	w := s.ctrls[0].NextWake()
	for _, c := range s.ctrls[1:] {
		w = min(w, c.NextWake())
	}
	return w
}

// SkipUntil bulk-accounts the no-op cycles up to and including `to` on
// every channel.
func (s *System) SkipUntil(to int64) {
	for _, c := range s.ctrls {
		c.SkipUntil(to)
	}
}

// Pending reports whether any channel still has queued or in-flight work.
func (s *System) Pending() bool {
	for _, c := range s.ctrls {
		if c.Pending() {
			return true
		}
	}
	return false
}

// Stats returns the aggregate over all channels.
func (s *System) Stats() *Stats {
	agg := NewStats()
	for _, c := range s.ctrls {
		agg.Merge(c.Stats())
	}
	return agg
}
