package memctrl

import (
	"mil/internal/dram"
	"mil/internal/obs"
)

// ctrlObs bundles the controller's pre-resolved observability handles
// plus the idle-run tracker behind the data-bus idle-window histogram.
// A controller with observability disabled keeps a nil *ctrlObs and pays
// exactly one predictable branch per instrumented site (verified by the
// AllocsPerRun test in obs_test.go).
//
// The idle-run tracker turns the per-cycle busy/idle classification
// (classify and SkipUntil's bulk equivalent) into window lengths: an
// idle run opens on the first idle cycle after a busy one and closes on
// the next busy cycle (or at flush), at which point its length lands in
// the histogram. Because every classified cycle is exactly one of
// busy/idle, the histogram's sample sum reconciles exactly with the
// Figure-5 idle counters: Sum == IdlePendingCycles + IdleEmptyCycles.
type ctrlObs struct {
	idleHist       *obs.Hist
	rqPeak         *obs.Gauge
	wqPeak         *obs.Gauge
	retryReplays   *obs.Counter
	retryExhausted *obs.Counter
	pdEntries      *obs.Counter
	pdExits        *obs.Counter
	wakeFastpath   *obs.Counter
	wakeMemoized   *obs.Counter
	wakeFullScan   *obs.Counter
	// policyEpochs counts epoch-feedback deliveries. Created only for
	// controllers whose policy observes epochs (see SetObs) so the
	// metrics CSV of every pre-existing scheme stays byte-identical;
	// Inc is nil-safe, so epochTick bumps it unconditionally.
	policyEpochs *obs.Counter

	cmdTrack *obs.Track // per-channel DRAM command instants
	busTrack *obs.Track // per-channel data-bus burst/idle slices

	inIdle    bool
	idleStart int64
}

func newCtrlObs(o *obs.Obs) *ctrlObs {
	return &ctrlObs{
		idleHist:       o.Hist("bus_idle_window_cycles", obs.IdleWindowEdges...),
		rqPeak:         o.Gauge("memctrl_rq_peak"),
		wqPeak:         o.Gauge("memctrl_wq_peak"),
		retryReplays:   o.Counter("retry_replays_total"),
		retryExhausted: o.Counter("retry_exhausted_total"),
		pdEntries:      o.Counter("powerdown_entries_total"),
		pdExits:        o.Counter("powerdown_exits_total"),
		wakeFastpath:   o.Counter("wake_scan_fastpath_total"),
		wakeMemoized:   o.Counter("wake_scan_memoized_total"),
		wakeFullScan:   o.Counter("wake_scan_full_total"),
	}
}

// bindTracks registers the controller's trace timelines, named by
// channel index. Tracks run in the DRAM clock domain (2 CPU cycles per
// tick under the standard 2:1 clock).
func (co *ctrlObs) bindTracks(o *obs.Obs, id int, cpuPerDRAM int64) {
	if o == nil || o.Trace == nil {
		return
	}
	name := [...]string{"ch0", "ch1", "ch2", "ch3"}
	prefix := "ch?"
	if id < len(name) {
		prefix = name[id]
	}
	co.cmdTrack = o.NewTrack(prefix+" cmd", cpuPerDRAM)
	co.busTrack = o.NewTrack(prefix+" bus", cpuPerDRAM)
}

// busyAt marks cycle t busy: it closes any open idle run ending at t-1,
// recording the run's length and its trace slice.
func (co *ctrlObs) busyAt(t int64) {
	if !co.inIdle {
		return
	}
	co.inIdle = false
	co.idleHist.Add(t - co.idleStart)
	co.busTrack.Slice("idle", co.idleStart, t, obs.Args{})
}

// idleAt marks cycle t idle, opening a run if none is open.
func (co *ctrlObs) idleAt(t int64) {
	if !co.inIdle {
		co.inIdle = true
		co.idleStart = t
	}
}

// flush closes a trailing idle run at the final simulated cycle `now`
// (the run covers [idleStart, now]).
func (co *ctrlObs) flush(now int64) {
	if !co.inIdle {
		return
	}
	co.inIdle = false
	co.idleHist.Add(now - co.idleStart + 1)
	co.busTrack.Slice("idle", co.idleStart, now+1, obs.Args{})
}

// traceIssue records one issued command as an instant on the command
// track, with bank-address args (and burst args for column commands).
func (co *ctrlObs) traceIssue(now int64, cmd dram.Command) {
	if co.cmdTrack == nil {
		return
	}
	args := obs.Args{
		HasLoc: true, Rank: int32(cmd.Rank), Group: int32(cmd.Group),
		Bank: int32(cmd.Bank), Row: int32(cmd.Row),
	}
	co.cmdTrack.Instant(cmd.Kind.String(), now, args)
}

// traceBurst records a column command's data-bus occupancy as a slice on
// the bus track, annotated with the chosen codec.
func (co *ctrlObs) traceBurst(w dram.BurstWindow, codecName string, beats, zeros int) {
	if co.busTrack == nil {
		return
	}
	co.busTrack.Slice("burst", w.Start, w.End, obs.Args{
		HasData: true, Beats: int32(beats), Zeros: int32(zeros), Codec: codecName,
	})
}

// SetObs attaches the observability layer: controller-level metrics, the
// underlying channel's command counters, and (once SetID runs) the
// per-channel trace tracks. Call before the first Tick. Nil-safe: a
// disabled Obs leaves the controller on its zero-cost path.
func (c *Controller) SetObs(o *obs.Obs) {
	if !o.Enabled() {
		return
	}
	c.obs = newCtrlObs(o)
	if c.epoch.obs != nil {
		c.obs.policyEpochs = o.Counter("policy_epochs_total")
	}
	c.ch.SetObs(o)
}

// FlushObs finalizes end-of-run observability state: the trailing idle
// run, and the peak-occupancy gauges' final check. Safe to call with
// observability disabled.
func (c *Controller) FlushObs() {
	if c.obs == nil {
		return
	}
	c.obs.flush(c.now)
}

// SetObs attaches the observability layer to every channel (see
// Controller.SetObs).
func (s *System) SetObs(o *obs.Obs) {
	if !o.Enabled() {
		return
	}
	for i, c := range s.ctrls {
		c.SetObs(o)
		c.obs.bindTracks(o, i, 2)
	}
}

// FlushObs finalizes end-of-run observability state on every channel.
func (s *System) FlushObs() {
	for _, c := range s.ctrls {
		c.FlushObs()
	}
}
