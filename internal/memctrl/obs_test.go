package memctrl

import (
	"testing"

	"mil/internal/bitblock"
	"mil/internal/code"
	"mil/internal/dram"
	"mil/internal/obs"
)

// TestObsCountersMatchStats drives a controller with the metrics layer
// attached and reconciles every counter family against the controller's
// own statistics: DRAM command counts, queue peaks, and — the Figure-5
// invariant — the idle-window histogram against the idle-cycle counters.
func TestObsCountersMatchStats(t *testing.T) {
	c := testController(t)
	reg := obs.NewRegistry()
	c.SetObs(&obs.Obs{Metrics: reg})
	for i := int64(0); i < 12; i++ {
		req := &Request{Line: i * 7}
		req.loc = mustMap(t, i*7)
		if !c.Enqueue(req, 0) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	end := runUntilDrained(t, c, 0, 50000)
	c.FlushObs()

	s := c.Stats()
	for _, tc := range []struct {
		name string
		want int64
	}{
		{"dram_act_total", s.Activates},
		{"dram_pre_total", s.Precharges},
		{"dram_rd_total", s.Reads},
		{"dram_wr_total", s.Writes},
	} {
		if got := reg.Counter(tc.name).Value(); got != tc.want {
			t.Errorf("%s = %d, want %d (stats)", tc.name, got, tc.want)
		}
	}
	if got := reg.Gauge("memctrl_rq_peak").Value(); got == 0 || got > 20 {
		t.Errorf("memctrl_rq_peak = %d, want in (0, 20]", got)
	}

	h := reg.Hist("bus_idle_window_cycles", obs.IdleWindowEdges...)
	if h.Count() == 0 {
		t.Fatal("no idle windows recorded")
	}
	// The trailing flush closes the final run at `end`, which may trim the
	// tail the per-cycle counters saw; require exact agreement since both
	// sides stop at the last classified cycle.
	wantIdle := s.IdlePendingCycles + s.IdleEmptyCycles
	if h.Sum() != wantIdle {
		t.Errorf("idle-window histogram sums to %d, stats count %d idle cycles (pending %d + empty %d, end %d)",
			h.Sum(), wantIdle, s.IdlePendingCycles, s.IdleEmptyCycles, end)
	}
}

// TestTickSteadyStateZeroAllocObsDisabled is the disabled-path cost gate:
// with no observability attached, running a full read through the
// controller — enqueue, activate, read, burst, completion, and the
// busy/idle classification — must not allocate. This also pins the fix
// for the old per-command fmt.Sprintf that ran even with tracing off.
func TestTickSteadyStateZeroAllocObsDisabled(t *testing.T) {
	mem := NewOverlayMemory(func(line int64) bitblock.Block {
		var blk bitblock.Block
		blk[0] = byte(line)
		return blk
	})
	c, err := NewController(DefaultConfig(dram.DDR4_3200()), mem, FixedPolicy{Codec: code.DBI{}}, &PODPhy{})
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{Line: 5}
	req.loc = mustMap(t, 5)
	now := int64(0)
	roundTrip := func() {
		req.Arrive = now
		if !c.Enqueue(req, now) {
			t.Fatal("enqueue failed")
		}
		for c.Pending() {
			c.Tick(now)
			now++
		}
	}
	roundTrip() // warm-up: size the queues and scratch buffers
	if n := testing.AllocsPerRun(50, roundTrip); n != 0 {
		t.Errorf("read round-trip with obs disabled allocates %v allocs/op, want 0", n)
	}
}
