package memctrl

import (
	"mil/internal/dram"
	"mil/internal/sched"
)

// This file implements the event-core side of the controller: NextWake
// reports a lower bound on the next DRAM cycle at which Tick would do
// anything but per-cycle bookkeeping, and SkipUntil performs that
// bookkeeping in bulk for a window of proven no-op cycles. Together they
// let the simulation loop jump over the idle stretches the paper is about
// (Figure 4/5) instead of ticking through them.
//
// The contract (see internal/sched): between the current cycle and the
// returned wake, Tick would not complete a read, flip a refresh due date,
// move the power-down state machine, or issue any command - provided the
// queues receive no new requests, which the event loop guarantees by
// recomputing wakes after every landed cycle. Early wakes are harmless
// (the Tick is a no-op and reports a new bound); late wakes are bugs,
// caught by the steplock differential tests.

// NextWake returns a lower bound on the earliest cycle > now at which the
// controller's state can change without new enqueues.
//
// Fast path: while the controller is actively working or merely pausing
// inside a short DRAM timing gap (tCCD, tRCD, turnarounds — all well under
// wakeScanAfter cycles), return now+1 without the scans below — an early
// wake is a cheap no-op Tick by contract, no worse than the steplock loop.
// Only after wakeScanAfter consecutive no-op Ticks is the controller
// plausibly entering a stretch long enough (refresh intervals, power-down
// idling, drained queues) for the O(queues×banks) wake computation to buy
// back more than it costs; the scan result is memoized across the no-op
// Ticks that follow it.
const wakeScanAfter = 16

func (c *Controller) NextWake() int64 {
	if c.acted || c.idleRun < wakeScanAfter {
		if c.obs != nil {
			c.obs.wakeFastpath.Inc()
		}
		return c.now + 1
	}
	if c.wakeValid && c.wake > c.now {
		if c.obs != nil {
			c.obs.wakeMemoized.Inc()
		}
		return c.wake
	}
	if c.obs != nil {
		c.obs.wakeFullScan.Inc()
	}
	w := sched.Never
	for i := range c.inflight {
		w = min(w, c.inflight[i].done)
	}
	for i := range c.deferred {
		w = min(w, c.deferred[i].done)
	}
	for r := range c.refDue {
		if !c.refPending[r] {
			w = min(w, c.refDue[r])
		}
	}
	if c.cfg.PowerDown.Enable {
		w = min(w, c.powerDownWake())
	}
	w = min(w, c.refreshWake())
	w = min(w, c.scheduleWake())
	if w <= c.now {
		w = c.now + 1
	}
	c.wake, c.wakeValid = w, true
	return w
}

// powerDownWake bounds the power-down state machine's next action. Ranks
// counting toward the idle threshold wake at their deadline; ranks mid
// wake-up at tXP expiry. A rank already past the threshold is precharging
// (or waiting on a constraint-bound precharge) and aborts the scan for
// later ranks inside powerDownTick, so the controller must tick every
// cycle until it finishes powering down - skipping there would starve the
// later ranks of their per-cycle accounting.
func (c *Controller) powerDownWake() int64 {
	var needed uint32
	for _, req := range c.rq {
		needed |= 1 << req.loc.Rank
	}
	for _, req := range c.wq {
		needed |= 1 << req.loc.Rank
	}
	w := sched.Never
	for r := range c.pd {
		pd := &c.pd[r]
		want := needed>>r&1 == 1 || c.refPending[r]
		if pd.down {
			// A down rank sleeps until want flips (an enqueue or the refresh
			// falling due, both of which land the loop); once wanted, the
			// next tick must run powerDownTick to start the exit.
			if want {
				return c.now + 1
			}
			continue
		}
		if pd.wakeAt > c.now {
			w = min(w, pd.wakeAt) // usable again (and idle clock restarts)
			continue
		}
		if want {
			continue // serviced by the scheduler/refresh terms
		}
		if pd.idleSince < 0 {
			return c.now + 1 // next tick starts the idle clock
		}
		deadline := pd.idleSince + int64(c.cfg.PowerDown.IdleCycles)
		if deadline > c.now {
			w = min(w, deadline)
			continue
		}
		return c.now + 1 // past threshold: precharge drain in progress
	}
	return w
}

// refreshWake bounds refresh progress: for each pending rank, the earliest
// cycle its next drain precharge (or, with all banks closed, the REF
// itself) meets the timing constraints.
func (c *Controller) refreshWake() int64 {
	g := c.cfg.DRAM.Geometry
	w := sched.Never
	for r := range c.refPending {
		if !c.refPending[r] || c.pd[r].down {
			continue
		}
		from := max(c.now+1, c.pd[r].wakeAt)
		allClosed := true
		for bg := 0; bg < g.BankGroups; bg++ {
			for b := 0; b < g.BanksPerGroup; b++ {
				if _, open := c.ch.OpenRow(r, bg, b); !open {
					continue
				}
				allClosed = false
				cmd := dram.Command{Kind: dram.PRE, Rank: r, Group: bg, Bank: b}
				w = min(w, c.ch.EarliestIssue(cmd, from))
			}
		}
		if allClosed {
			w = min(w, c.ch.EarliestIssue(dram.Command{Kind: dram.REF, Rank: r}, from))
		}
	}
	return w
}

// scheduleWake bounds the FR-FCFS scheduler: the earliest cycle any
// candidate command (ready column hit, or the per-bank PRE/ACT the oldest
// request needs) meets its constraints. Pass order (demand escalation)
// only selects among ready candidates, so the minimum over the candidate
// union is a valid bound for every ordering.
func (c *Controller) scheduleWake() int64 {
	// Replay the write-drain hysteresis to its fixed point: with frozen
	// queue depths the mode settles after one evaluation, so the stored
	// writeMode being stale during a skip window is unobservable.
	wm := c.writeMode
	if len(c.wq) >= c.cfg.DrainHigh {
		wm = true
	} else if wm && len(c.wq) <= c.cfg.DrainLow {
		wm = false
	}
	active, write := c.rq, false
	if wm || (len(c.rq) == 0 && len(c.wq) > 0) {
		active, write = c.wq, true
	}
	if len(active) == 0 {
		return sched.Never
	}

	w := sched.Never
	// Column candidates: every request whose row is open (readyHitPass has
	// no per-bank shadowing).
	for _, req := range active {
		row, open := c.ch.OpenRow(req.loc.Rank, req.loc.Group, req.loc.Bank)
		if !open || row != req.loc.Row {
			continue
		}
		if from, ok := c.reqEligible(req); ok {
			w = min(w, c.ch.EarliestIssue(c.probeCAS(req, write), from))
		}
	}
	// Bank-work candidates, mirroring fcfsPass's per-pass shadowing: the
	// demand and prefetch passes each shadow banks independently.
	if write {
		w = min(w, c.fcfsWake(active, keepAll))
	} else {
		w = min(w, c.fcfsWake(active, keepDemand))
		w = min(w, c.fcfsWake(active, keepPrefetch))
	}
	return w
}

// reqEligible returns the first cycle > now the request may be scheduled
// (retry backoff and rank wake-up), or ok=false when its rank is frozen
// for the whole window (refresh drain or power-down).
func (c *Controller) reqEligible(req *Request) (int64, bool) {
	pd := &c.pd[req.loc.Rank]
	if c.refPending[req.loc.Rank] || pd.down {
		return 0, false
	}
	return max(c.now+1, req.retryAt, pd.wakeAt), true
}

// fcfsWake walks the queue oldest-first with fcfsPass's bank shadowing
// (the first request per bank claims it before eligibility checks) and
// bounds the earliest PRE/ACT issue among the claimants.
func (c *Controller) fcfsWake(active []*Request, keep int) int64 {
	c.bankStamp++
	w := sched.Never
	for _, req := range active {
		if skipReq(keep, req) {
			continue
		}
		bankID := (req.loc.Rank*c.cfg.DRAM.Geometry.BankGroups+req.loc.Group)*c.cfg.DRAM.Geometry.BanksPerGroup + req.loc.Bank
		if c.banksTmp[bankID] == c.bankStamp {
			continue
		}
		c.banksTmp[bankID] = c.bankStamp
		from, ok := c.reqEligible(req)
		if !ok {
			continue
		}
		row, open := c.ch.OpenRow(req.loc.Rank, req.loc.Group, req.loc.Bank)
		switch {
		case open && row == req.loc.Row:
			// Ready hit: covered by the column-candidate scan.
		case open:
			cmd := dram.Command{Kind: dram.PRE, Rank: req.loc.Rank, Group: req.loc.Group, Bank: req.loc.Bank}
			w = min(w, c.ch.EarliestIssue(cmd, from))
		default:
			cmd := dram.Command{Kind: dram.ACT, Rank: req.loc.Rank, Group: req.loc.Group, Bank: req.loc.Bank, Row: req.loc.Row}
			w = min(w, c.ch.EarliestIssue(cmd, from))
		}
	}
	return w
}

// SkipUntil advances the controller to cycle `to`, performing the per-cycle
// bookkeeping the (provably no-op) Ticks of (c.now, to] would have done:
// cycle and occupancy counters, the Figure 5 busy/idle classification from
// the still-active burst windows, and power-down residency. The caller
// must only skip to cycles strictly before NextWake.
func (c *Controller) SkipUntil(to int64) {
	if to <= c.now {
		return
	}
	n := to - c.now
	c.stats.Ticks += n
	c.stats.RQOccupancySum += n * int64(len(c.rq))
	c.stats.WQOccupancySum += n * int64(len(c.wq))
	if c.cfg.PowerDown.Enable {
		var down int64
		for r := range c.pd {
			if c.pd[r].down {
				down++
			}
		}
		c.stats.PowerDownCycles += n * down
	}
	// Bulk classify: a cycle t is busy when a burst window covers it
	// (Start <= t < End); windows fully past by `to` are pruned exactly as
	// classify would have pruned them.
	var busy int64
	cur := c.now + 1 // idle-window cursor for the obs run tracker
	kept := c.activeBurst[:0]
	for _, wdw := range c.activeBurst {
		lo := max(wdw.Start, c.now+1)
		hi := min(wdw.End-1, to)
		if hi >= lo {
			busy += hi - lo + 1
			// Mirror the per-cycle classification for the idle-window
			// tracker: windows are non-overlapping and issue-ordered
			// (dram.Channel serializes the bus), so walking them in order
			// with a cursor visits each skipped cycle exactly once.
			if c.obs != nil {
				if lo > cur {
					c.obs.idleAt(cur)
				}
				c.obs.busyAt(lo)
			}
			cur = hi + 1
		}
		if wdw.End > to {
			kept = append(kept, wdw)
		}
	}
	if c.obs != nil && cur <= to {
		c.obs.idleAt(cur)
	}
	c.activeBurst = kept
	idle := n - busy
	if len(c.rq)+len(c.wq) > 0 {
		c.stats.IdlePendingCycles += idle
	} else {
		c.stats.IdleEmptyCycles += idle
	}
	c.now = to
	c.started = true
}
