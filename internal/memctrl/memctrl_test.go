package memctrl

import (
	"math/rand"
	"testing"

	"mil/internal/bitblock"
	"mil/internal/code"
	"mil/internal/dram"
)

// testController builds a DDR4 controller with the DBI baseline and a
// verifying POD phy.
func testController(t *testing.T) *Controller {
	t.Helper()
	mem := NewOverlayMemory(func(line int64) bitblock.Block {
		var blk bitblock.Block
		rng := rand.New(rand.NewSource(line))
		rng.Read(blk[:])
		return blk
	})
	c, err := NewController(DefaultConfig(dram.DDR4_3200()), mem, FixedPolicy{Codec: code.DBI{}}, &PODPhy{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runUntilDrained ticks until no work remains or the deadline passes.
func runUntilDrained(t *testing.T, c *Controller, start, deadline int64) int64 {
	t.Helper()
	now := start
	for ; c.Pending() && now < deadline; now++ {
		c.Tick(now)
	}
	if c.Pending() {
		t.Fatalf("controller did not drain by cycle %d", deadline)
	}
	return now
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(dram.DDR4_3200())
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.ReadQueue = 0
	if bad.Validate() == nil {
		t.Error("zero read queue accepted")
	}
	bad = cfg
	bad.DrainLow = bad.DrainHigh
	if bad.Validate() == nil {
		t.Error("low >= high watermark accepted")
	}
	bad = cfg
	bad.DrainHigh = bad.WriteQueue + 1
	if bad.Validate() == nil {
		t.Error("high watermark above queue size accepted")
	}
}

func TestAddressMapperPageInterleaving(t *testing.T) {
	g := dram.DDR4_3200().Geometry
	m, err := NewAddressMapper(2, g)
	if err != nil {
		t.Fatal(err)
	}
	lpp := int64(g.LinesPerPage())
	// Lines within one page share everything but the column.
	a, b := m.Map(0), m.Map(lpp-1)
	if a.Channel != b.Channel || a.Rank != b.Rank || a.Bank != b.Bank || a.Row != b.Row || a.Group != b.Group {
		t.Fatalf("same-page lines split: %+v vs %+v", a, b)
	}
	if a.Col != 0 || b.Col != int(lpp-1) {
		t.Fatalf("columns %d/%d", a.Col, b.Col)
	}
	// Adjacent pages alternate channels.
	cNext := m.Map(lpp)
	if cNext.Channel == a.Channel {
		t.Fatal("adjacent pages on same channel")
	}
	// Pages two apart (same channel) rotate bank groups.
	gNext := m.Map(2 * lpp)
	if gNext.Channel != a.Channel {
		t.Fatal("stride-2 pages should share the channel")
	}
	if gNext.Group == a.Group && g.BankGroups > 1 {
		t.Fatal("stride-2 pages should rotate bank groups")
	}
}

func TestAddressMapperCoversAllResources(t *testing.T) {
	g := dram.DDR4_3200().Geometry
	m, err := NewAddressMapper(2, g)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[4]int]bool{}
	lpp := int64(g.LinesPerPage())
	for p := int64(0); p < 64; p++ {
		loc := m.Map(p * lpp)
		seen[[4]int{loc.Channel, loc.Rank, loc.Group, loc.Bank}] = true
	}
	want := 2 * g.Ranks * g.BankGroups * g.BanksPerGroup
	if len(seen) != want {
		t.Fatalf("64 consecutive pages hit %d distinct banks, want %d", len(seen), want)
	}
}

func TestOverlayMemoryReadsBackWrites(t *testing.T) {
	mem := NewOverlayMemory(func(line int64) bitblock.Block {
		return bitblock.FromBytes([]byte{byte(line)})
	})
	if got := mem.ReadLine(7); got[0] != 7 {
		t.Fatalf("generator bypassed: %d", got[0])
	}
	blk := bitblock.FromBytes([]byte{0xaa, 0xbb})
	mem.WriteLine(7, blk)
	if got := mem.ReadLine(7); got != blk {
		t.Fatal("write not visible")
	}
	if mem.WrittenLines() != 1 {
		t.Fatalf("overlay size %d", mem.WrittenLines())
	}
	if got := mem.ReadLine(8); got[0] != 8 {
		t.Fatal("neighboring line disturbed")
	}
}

func TestOverlayMemoryNilGenerator(t *testing.T) {
	mem := NewOverlayMemory(nil)
	if got := mem.ReadLine(3); got != (bitblock.Block{}) {
		t.Fatal("nil generator should yield zero blocks")
	}
}

func TestSingleReadCompletes(t *testing.T) {
	c := testController(t)
	doneAt := int64(-1)
	req := &Request{Line: 5, OnDone: func(now int64) { doneAt = now }}
	req.loc = mustMap(t, 5)
	if !c.Enqueue(req, 0) {
		t.Fatal("enqueue failed")
	}
	runUntilDrained(t, c, 0, 10000)
	tm := dram.DDR4_3200().Timing
	// ACT at 0, RD at tRCD, data ends at tRCD+CL+4; completion on the tick
	// at or after that.
	wantMin := int64(tm.RCD + tm.CL + 4)
	if doneAt < wantMin || doneAt > wantMin+2 {
		t.Fatalf("read done at %d, want about %d", doneAt, wantMin)
	}
	s := c.Stats()
	if s.Reads != 1 || s.Activates != 1 {
		t.Fatalf("reads=%d acts=%d", s.Reads, s.Activates)
	}
	if s.Zeros == 0 {
		t.Fatal("no zeros accounted")
	}
}

func mustMap(t *testing.T, line int64) Location {
	t.Helper()
	m, err := NewAddressMapper(1, dram.DDR4_3200().Geometry)
	if err != nil {
		t.Fatal(err)
	}
	return m.Map(line)
}

func TestSameGroupStreamLeavesCCDBubbles(t *testing.T) {
	// Eight hits to one row: tCCD_L (8) exceeds the 4-cycle BL8 burst, so
	// the bus shows 4-cycle gaps - the bank-group under-utilization the
	// paper builds on (Section 3.1).
	c := testController(t)
	done := 0
	for i := int64(0); i < 8; i++ {
		req := &Request{Line: i, OnDone: func(int64) { done++ }}
		req.loc = mustMap(t, i)
		if !c.Enqueue(req, 0) {
			t.Fatal("enqueue failed")
		}
	}
	runUntilDrained(t, c, 0, 10000)
	s := c.Stats()
	if done != 8 || s.Reads != 8 {
		t.Fatalf("done=%d reads=%d", done, s.Reads)
	}
	if s.Activates != 1 {
		t.Fatalf("activates = %d, want 1 (all row hits)", s.Activates)
	}
	if s.BackToBack != 0 {
		t.Fatal("same-group CCD_L should forbid back-to-back bursts")
	}
	// All 7 gaps land in the 3-4 cycle bucket (CCD_L - burst = 4).
	if got := s.GapHist.Counts[2]; got != 7 {
		t.Fatalf("gap histogram = %v, want 7 samples of 4 cycles", s.GapHist.Counts)
	}
}

func TestGroupRotationStreamsBackToBack(t *testing.T) {
	// Hits spread across bank groups are only tCCD_S (4) apart, which
	// matches the BL8 occupancy: the bus can run seamlessly.
	c := testController(t)
	geom := dram.DDR4_3200().Geometry
	lpp := int64(geom.LinesPerPage())
	for i := int64(0); i < 4; i++ {
		for p := int64(0); p < 4; p++ { // pages 0..3 rotate the 4 groups
			line := p*lpp + i
			req := &Request{Line: line}
			req.loc = mustMap(t, line)
			if !c.Enqueue(req, 0) {
				t.Fatal("enqueue failed")
			}
		}
	}
	runUntilDrained(t, c, 0, 10000)
	s := c.Stats()
	if s.Reads != 16 || s.Activates != 4 {
		t.Fatalf("reads=%d acts=%d", s.Reads, s.Activates)
	}
	if s.BackToBack == 0 {
		t.Fatal("group-rotating stream produced no back-to-back bursts")
	}
}

func TestRowConflictForcesPrechargeActivate(t *testing.T) {
	c := testController(t)
	g := dram.DDR4_3200().Geometry
	// Two lines in the same bank, different rows: stride = one full sweep
	// of channels x groups x banks x ranks pages.
	stride := int64(g.LinesPerPage()) * int64(g.BankGroups*g.BanksPerGroup*g.Ranks)
	for _, line := range []int64{0, stride} {
		req := &Request{Line: line}
		req.loc = mustMap(t, line)
		a, b := mustMap(t, 0), mustMap(t, stride)
		if a.Bank != b.Bank || a.Group != b.Group || a.Rank != b.Rank || a.Row == b.Row {
			t.Fatalf("stride does not produce a row conflict: %+v vs %+v", a, b)
		}
		if !c.Enqueue(req, 0) {
			t.Fatal("enqueue failed")
		}
	}
	runUntilDrained(t, c, 0, 20000)
	s := c.Stats()
	if s.Activates != 2 || s.Precharges != 1 {
		t.Fatalf("acts=%d pres=%d, want 2/1", s.Activates, s.Precharges)
	}
}

func TestWriteDrainWatermarks(t *testing.T) {
	cfg := DefaultConfig(dram.DDR4_3200())
	cfg.DrainHigh = 8
	cfg.DrainLow = 4
	mem := NewOverlayMemory(nil)
	c, err := NewController(cfg, mem, FixedPolicy{Codec: code.DBI{}}, &PODPhy{})
	if err != nil {
		t.Fatal(err)
	}
	// One read plus enough writes to cross the high watermark: the drain
	// must kick in even while the read is pending, then hand back.
	read := &Request{Line: 999}
	read.loc = mustMap(t, 999)
	if !c.Enqueue(read, 0) {
		t.Fatal("read enqueue")
	}
	for i := int64(0); i < 9; i++ {
		w := &Request{Line: i * 128, Write: true}
		w.loc = mustMap(t, i*128)
		if !c.Enqueue(w, 0) {
			t.Fatal("write enqueue")
		}
	}
	runUntilDrained(t, c, 0, 100000)
	s := c.Stats()
	if s.Writes != 9 || s.Reads != 1 {
		t.Fatalf("writes=%d reads=%d", s.Writes, s.Reads)
	}
}

func TestWritesDrainWhenReadQueueEmpty(t *testing.T) {
	c := testController(t)
	w := &Request{Line: 3, Write: true, Data: bitblock.FromBytes([]byte{1})}
	w.loc = mustMap(t, 3)
	if !c.Enqueue(w, 0) {
		t.Fatal("enqueue failed")
	}
	runUntilDrained(t, c, 0, 10000)
	if c.Stats().Writes != 1 {
		t.Fatal("lone write never drained")
	}
}

func TestReadForwardsFromWriteQueue(t *testing.T) {
	c := testController(t)
	blk := bitblock.FromBytes([]byte{0xde, 0xad})
	w := &Request{Line: 42, Write: true, Data: blk}
	w.loc = mustMap(t, 42)
	if !c.Enqueue(w, 0) {
		t.Fatal("write enqueue")
	}
	got := false
	r := &Request{Line: 42, OnDone: func(int64) { got = true }}
	r.loc = mustMap(t, 42)
	if !c.Enqueue(r, 0) {
		t.Fatal("read enqueue")
	}
	if got {
		t.Fatal("forwarding completed synchronously; must defer to a tick")
	}
	c.Tick(1)
	if !got {
		t.Fatal("read not forwarded from write queue")
	}
	if c.Stats().Forwards != 1 {
		t.Fatalf("forwards = %d", c.Stats().Forwards)
	}
}

func TestWriteCoalescing(t *testing.T) {
	c := testController(t)
	w1 := &Request{Line: 42, Write: true, Data: bitblock.FromBytes([]byte{1})}
	w1.loc = mustMap(t, 42)
	w2 := &Request{Line: 42, Write: true, Data: bitblock.FromBytes([]byte{2})}
	w2.loc = mustMap(t, 42)
	if !c.Enqueue(w1, 0) || !c.Enqueue(w2, 0) {
		t.Fatal("enqueue failed")
	}
	if _, wq := c.QueueDepths(); wq != 1 {
		t.Fatalf("write queue depth %d, want 1 after coalescing", wq)
	}
	runUntilDrained(t, c, 0, 10000)
	// The coalesced (newer) data must have landed in memory.
	if got := c.mem.ReadLine(42); got[0] != 2 {
		t.Fatalf("memory holds %d, want coalesced 2", got[0])
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	cfg := DefaultConfig(dram.DDR4_3200())
	cfg.ReadQueue = 2
	mem := NewOverlayMemory(nil)
	c, err := NewController(cfg, mem, FixedPolicy{Codec: code.DBI{}}, &PODPhy{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 2; i++ {
		r := &Request{Line: i * 1000, Demand: true}
		r.loc = mustMap(t, i*1000)
		if !c.Enqueue(r, 0) {
			t.Fatal("enqueue failed early")
		}
	}
	r := &Request{Line: 5000}
	r.loc = mustMap(t, 5000)
	if c.Enqueue(r, 0) {
		t.Fatal("enqueue succeeded past capacity")
	}
}

func TestRefreshHappens(t *testing.T) {
	c := testController(t)
	tm := dram.DDR4_3200().Timing
	for now := int64(0); now < int64(tm.REFI)*3; now++ {
		c.Tick(now)
	}
	s := c.Stats()
	if s.Refreshes < 4 { // 2 ranks x at least 2 intervals
		t.Fatalf("refreshes = %d, want >= 4 over 3 tREFI", s.Refreshes)
	}
	if s.IdleEmptyCycles == 0 {
		t.Fatal("an idle controller should log idle-empty cycles")
	}
}

func TestRefreshClosesOpenBanks(t *testing.T) {
	c := testController(t)
	req := &Request{Line: 0}
	req.loc = mustMap(t, 0)
	if !c.Enqueue(req, 0) {
		t.Fatal("enqueue")
	}
	tm := dram.DDR4_3200().Timing
	for now := int64(0); now < int64(tm.REFI)*2; now++ {
		c.Tick(now)
	}
	s := c.Stats()
	if s.Refreshes == 0 {
		t.Fatal("no refresh despite an opened bank")
	}
	if s.Precharges == 0 {
		t.Fatal("refresh never precharged the open bank")
	}
}

func TestCycleClassificationPartitions(t *testing.T) {
	c := testController(t)
	for i := int64(0); i < 20; i++ {
		req := &Request{Line: i * 7}
		req.loc = mustMap(t, i*7)
		c.Enqueue(req, 0)
	}
	end := runUntilDrained(t, c, 0, 50000)
	s := c.Stats()
	if s.Ticks != end {
		t.Fatalf("ticks = %d, want %d", s.Ticks, end)
	}
	sum := s.BusyCycles + s.IdlePendingCycles + s.IdleEmptyCycles
	// Busy cycles for the final bursts may extend past the last tick.
	if sum < s.Ticks-10 || sum > s.Ticks+10 {
		t.Fatalf("classification sum %d vs ticks %d", sum, s.Ticks)
	}
	if s.IdlePendingCycles == 0 {
		t.Fatal("a bursty queue should produce idle-with-pending cycles")
	}
}

func TestLookaheadCountsReadyColumns(t *testing.T) {
	c := testController(t)
	// Open a row by running one request through, then queue two hits.
	warm := &Request{Line: 0}
	warm.loc = mustMap(t, 0)
	c.Enqueue(warm, 0)
	now := int64(0)
	for ; c.Pending(); now++ {
		c.Tick(now)
	}
	for i := int64(1); i <= 2; i++ {
		req := &Request{Line: i}
		req.loc = mustMap(t, i)
		c.Enqueue(req, now)
	}
	la := lookahead{c: c, now: now}
	if got := la.ColumnReadyWithin(8); got != 2 {
		t.Fatalf("ready within 8 = %d, want 2 row hits", got)
	}
	if got := la.ColumnReadyWithin(0); got != 2 {
		t.Fatalf("ready now = %d, want 2", got)
	}
}

func TestMonotonicTickPanics(t *testing.T) {
	c := testController(t)
	c.Tick(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-monotonic tick")
		}
	}()
	c.Tick(5)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 2, 4)
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 100} {
		h.Add(v)
	}
	want := []int64{1, 2, 2, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	fr := h.Fractions()
	if fr[0] < 0.14 || fr[0] > 0.15 {
		t.Fatalf("fraction[0] = %v", fr[0])
	}
	labels := h.Labels()
	if labels[0] != "0" || labels[1] != "1-2" || labels[3] != ">4" {
		t.Fatalf("labels = %v", labels)
	}
	h2 := NewHistogram(0, 2, 4)
	h2.Add(1)
	h.Merge(h2)
	if h.Total() != 8 {
		t.Fatal("merge failed")
	}
}

func TestStatsMergeAndDerived(t *testing.T) {
	a, b := NewStats(), NewStats()
	a.Reads, b.Reads = 3, 4
	a.BusyCycles, a.Ticks = 50, 100
	b.BusyCycles, b.Ticks = 25, 100
	a.CodecBursts["milc"] = 2
	b.CodecBursts["milc"] = 3
	b.CodecBursts["lwc3"] = 1
	a.ReadLatencySum, a.ReadsCompleted = 300, 3
	a.Merge(b)
	if a.Reads != 7 || a.CodecBursts["milc"] != 5 || a.CodecBursts["lwc3"] != 1 {
		t.Fatalf("merge wrong: %+v", a)
	}
	if u := a.BusUtilization(); u < 0.374 || u > 0.376 {
		t.Fatalf("utilization = %v", u)
	}
	if l := a.AvgReadLatency(); l != 100 {
		t.Fatalf("avg latency = %v", l)
	}
	if a.ColumnCommands() != 7 {
		t.Fatalf("column commands = %d", a.ColumnCommands())
	}
}

func TestSystemRoutesAcrossChannels(t *testing.T) {
	mem := NewOverlayMemory(nil)
	sys, err := NewSystem(SystemConfig{
		Channels:   2,
		Controller: DefaultConfig(dram.DDR4_3200()),
		Policy:     FixedPolicy{Codec: code.DBI{}},
		NewPhy:     func() Phy { return &PODPhy{} },
		Mem:        mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	geom := dram.DDR4_3200().Geometry
	lpp := int64(geom.LinesPerPage())
	done := 0
	for p := int64(0); p < 4; p++ {
		req := &Request{Line: p * lpp, OnDone: func(int64) { done++ }}
		if !sys.Enqueue(req, 0) {
			t.Fatal("enqueue failed")
		}
	}
	for now := int64(0); sys.Pending() && now < 10000; now++ {
		sys.Tick(now)
	}
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	s := sys.Stats()
	if s.Reads != 4 {
		t.Fatalf("aggregate reads = %d", s.Reads)
	}
	// Both channels must have seen work.
	if sys.Controller(0).Stats().Reads == 0 || sys.Controller(1).Stats().Reads == 0 {
		t.Fatal("page interleaving failed to spread work")
	}
}

func TestSystemConfigValidation(t *testing.T) {
	_, err := NewSystem(SystemConfig{Channels: 0})
	if err == nil {
		t.Error("zero channels accepted")
	}
	_, err = NewSystem(SystemConfig{
		Channels:   1,
		Controller: DefaultConfig(dram.DDR4_3200()),
		Policy:     FixedPolicy{Codec: code.DBI{}},
		Mem:        NewOverlayMemory(nil),
	})
	if err == nil {
		t.Error("nil phy factory accepted")
	}
}

func TestPhyAccounting(t *testing.T) {
	blk := bitblock.FromBytes([]byte{0x00, 0xff, 0x0f})
	pod := &PODPhy{Verify: true}
	res := pod.Transmit(code.DBI{}, &blk, true)
	if res.CostUnits != res.Zeros || res.Beats != 8 {
		t.Fatalf("POD result %+v", res)
	}
	tr := &TransitionPhy{Verify: true}
	res2 := tr.Transmit(code.MiLC{}, &blk, true)
	if res2.CostUnits != res2.Zeros || res2.Beats != 10 {
		t.Fatalf("transition result %+v", res2)
	}
	bi := &BIWirePhy{Verify: true}
	res3 := bi.Transmit(code.Raw{}, &blk, true)
	if res3.Beats != 8 {
		t.Fatalf("BI beats %d", res3.Beats)
	}
	// First burst from an all-low bus: toggles should be modest since BI
	// inverts heavy bytes.
	if res3.CostUnits <= 0 {
		t.Fatalf("BI cost %d", res3.CostUnits)
	}
}

func TestFixedPolicyChoice(t *testing.T) {
	p := FixedPolicy{Codec: code.MiLC{}}
	if p.Name() != "milc" {
		t.Fatalf("name %q", p.Name())
	}
	if got := p.Choose(false, nil, nil); got.Name() != "milc" {
		t.Fatalf("choice %q", got.Name())
	}
}

func TestVerifyingPhyCatchesDataPathEndToEnd(t *testing.T) {
	// Run a workload with random data through a verifying MiLC controller;
	// any encode/decode divergence panics inside the phy.
	mem := NewOverlayMemory(func(line int64) bitblock.Block {
		var blk bitblock.Block
		rng := rand.New(rand.NewSource(line * 31))
		rng.Read(blk[:])
		return blk
	})
	c, err := NewController(DefaultConfig(dram.DDR4_3200()), mem, FixedPolicy{Codec: code.MiLC{}}, &PODPhy{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		line := int64(rng.Intn(1 << 20))
		req := &Request{Line: line, Write: rng.Intn(2) == 0}
		if req.Write {
			rng.Read(req.Data[:])
		}
		req.loc = mustMap(t, line)
		if !c.Enqueue(req, 0) {
			break
		}
	}
	runUntilDrained(t, c, 0, 100000)
	if c.Stats().ColumnCommands() == 0 {
		t.Fatal("no commands issued")
	}
}
