package memctrl

import "fmt"

// Histogram is a fixed-bucket histogram over int64 samples, used for the
// idle-gap (Figure 4) and slack (Figure 6) distributions.
type Histogram struct {
	// Edges are upper bounds (inclusive) of each bucket; a final overflow
	// bucket catches everything beyond the last edge.
	Edges  []int64
	Counts []int64
}

// NewHistogram builds a histogram with the given inclusive upper edges.
func NewHistogram(edges ...int64) *Histogram {
	return &Histogram{Edges: edges, Counts: make([]int64, len(edges)+1)}
}

// Add records one sample.
func (h *Histogram) Add(v int64) {
	for i, e := range h.Edges {
		if v <= e {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Edges)]++
}

// Total returns the number of samples.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Fractions returns each bucket's share of the total (zeros if empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	t := h.Total()
	if t == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(t)
	}
	return out
}

// Labels renders bucket labels like "0", "1-4", ">32".
func (h *Histogram) Labels() []string {
	out := make([]string, len(h.Counts))
	lo := int64(0)
	for i, e := range h.Edges {
		if lo == e {
			out[i] = fmt.Sprintf("%d", e)
		} else {
			out[i] = fmt.Sprintf("%d-%d", lo, e)
		}
		lo = e + 1
	}
	out[len(h.Edges)] = fmt.Sprintf(">%d", h.Edges[len(h.Edges)-1])
	return out
}

// Merge adds other's counts into h; the edge sets must match.
func (h *Histogram) Merge(other *Histogram) {
	if len(h.Counts) != len(other.Counts) {
		panic("memctrl: merging histograms with different shapes")
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
}

// Stats aggregates everything one controller observes. All cycle counts are
// DRAM cycles.
type Stats struct {
	Reads      int64 // column reads issued
	Writes     int64 // column writes issued
	Activates  int64
	Precharges int64
	Refreshes  int64
	Forwards   int64 // reads served from the write queue

	RowHits   int64 // column commands that found their row open on arrival path
	RowMisses int64

	Zeros      int64 // transmitted zeros across all bursts (Figure 17)
	CostUnits  int64 // IO energy units (zeros on POD, toggles on LPDDR3)
	BurstBeats int64 // total data beats moved
	BusyCycles int64 // cycles the data bus carried data

	IdlePendingCycles int64 // bus idle, requests queued (Figure 5)
	IdleEmptyCycles   int64 // bus idle, no requests queued
	Ticks             int64

	ReadLatencySum int64 // enqueue-to-data DRAM cycles over completed reads
	ReadsCompleted int64

	DemandReads          int64 // column reads serving demand misses
	DemandLatencySum     int64
	DemandReadsCompleted int64

	RQOccupancySum int64
	WQOccupancySum int64

	PowerDownCycles int64 // rank-cycles spent in fast power-down
	PowerDownExits  int64 // wake-ups paying tXP

	// CodecBursts counts column commands per codec name (Figure 22).
	CodecBursts map[string]int64

	GapHist    *Histogram // idle cycles between successive bursts (Figure 4)
	SlackHist  *Histogram // slack between successive bursts (Figure 6)
	BackToBack int64      // gap == 0 pairs
	GapPairs   int64

	// Reliability counters, all zero on a clean link. Conservation
	// invariants (checked by the tests): every issued column command either
	// retires or is requeued, so Writes == WritesCompleted + WriteRetries
	// and Reads == ReadsCompleted + ReadRetries once the controller drains;
	// and every detected failure either requeues or exhausts its budget, so
	// WriteCRCAlerts + CAParityAlerts + ReadDecodeFailures ==
	// WriteRetries + ReadRetries + RetriesExhausted.
	WritesCompleted    int64 // writes retired (committed or abandoned)
	WriteCRCAlerts     int64 // write bursts NACKed by device write-CRC
	CAParityAlerts     int64 // column commands rejected by CA parity
	ReadDecodeFailures int64 // read bursts the controller-side decoder rejected
	WriteRetries       int64 // failed write bursts requeued for replay
	ReadRetries        int64 // failed read bursts requeued for replay
	RetriesExhausted   int64 // requests abandoned after the retry budget
	RetryStorms        int64 // entries into the retry-storm backoff regime
	SilentErrors       int64 // corrupted bursts delivered undetected
	BitErrors          int64 // wire bit flips injected on this channel
	RetryBeats         int64 // beats consumed by bursts that ended NACKed
	RetryCostUnits     int64 // IO energy units wasted on failed bursts
	CRCBeats           int64 // extra beats appended for write CRC
}

// busHistEdges are the bucket edges shared by the gap and slack histograms.
var busHistEdges = []int64{0, 2, 4, 8, 16, 32, 64}

// NewStats returns zeroed statistics.
func NewStats() *Stats {
	return &Stats{
		CodecBursts: make(map[string]int64),
		GapHist:     NewHistogram(busHistEdges...),
		SlackHist:   NewHistogram(busHistEdges...),
	}
}

// Merge accumulates other into s (for multi-channel aggregation).
func (s *Stats) Merge(other *Stats) {
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.Activates += other.Activates
	s.Precharges += other.Precharges
	s.Refreshes += other.Refreshes
	s.Forwards += other.Forwards
	s.RowHits += other.RowHits
	s.RowMisses += other.RowMisses
	s.Zeros += other.Zeros
	s.CostUnits += other.CostUnits
	s.BurstBeats += other.BurstBeats
	s.BusyCycles += other.BusyCycles
	s.IdlePendingCycles += other.IdlePendingCycles
	s.IdleEmptyCycles += other.IdleEmptyCycles
	s.Ticks += other.Ticks
	s.ReadLatencySum += other.ReadLatencySum
	s.ReadsCompleted += other.ReadsCompleted
	s.DemandReads += other.DemandReads
	s.DemandLatencySum += other.DemandLatencySum
	s.DemandReadsCompleted += other.DemandReadsCompleted
	s.RQOccupancySum += other.RQOccupancySum
	s.WQOccupancySum += other.WQOccupancySum
	s.PowerDownCycles += other.PowerDownCycles
	s.PowerDownExits += other.PowerDownExits
	for k, v := range other.CodecBursts {
		s.CodecBursts[k] += v
	}
	s.GapHist.Merge(other.GapHist)
	s.SlackHist.Merge(other.SlackHist)
	s.BackToBack += other.BackToBack
	s.GapPairs += other.GapPairs
	s.WritesCompleted += other.WritesCompleted
	s.WriteCRCAlerts += other.WriteCRCAlerts
	s.CAParityAlerts += other.CAParityAlerts
	s.ReadDecodeFailures += other.ReadDecodeFailures
	s.WriteRetries += other.WriteRetries
	s.ReadRetries += other.ReadRetries
	s.RetriesExhausted += other.RetriesExhausted
	s.RetryStorms += other.RetryStorms
	s.SilentErrors += other.SilentErrors
	s.BitErrors += other.BitErrors
	s.RetryBeats += other.RetryBeats
	s.RetryCostUnits += other.RetryCostUnits
	s.CRCBeats += other.CRCBeats
}

// Failures returns the total detected link failures.
func (s *Stats) Failures() int64 {
	return s.WriteCRCAlerts + s.CAParityAlerts + s.ReadDecodeFailures
}

// Retries returns the total replayed bursts.
func (s *Stats) Retries() int64 { return s.WriteRetries + s.ReadRetries }

// BusUtilization returns the fraction of cycles the data bus carried data.
func (s *Stats) BusUtilization() float64 {
	if s.Ticks == 0 {
		return 0
	}
	return float64(s.BusyCycles) / float64(s.Ticks)
}

// AvgDemandLatency returns the mean demand-read service latency in DRAM
// cycles (prefetch latencies excluded).
func (s *Stats) AvgDemandLatency() float64 {
	if s.DemandReadsCompleted == 0 {
		return 0
	}
	return float64(s.DemandLatencySum) / float64(s.DemandReadsCompleted)
}

// AvgReadLatency returns the mean read service latency in DRAM cycles.
func (s *Stats) AvgReadLatency() float64 {
	if s.ReadsCompleted == 0 {
		return 0
	}
	return float64(s.ReadLatencySum) / float64(s.ReadsCompleted)
}

// ColumnCommands returns reads+writes issued.
func (s *Stats) ColumnCommands() int64 { return s.Reads + s.Writes }
