// Package memctrl implements the memory controller of Table 2: per-channel
// FR-FCFS scheduling with an open-page policy, 64-entry read and write
// queues, write-drain mode with high/low watermarks, refresh management,
// and the bus-transaction bookkeeping behind Figures 4-6. Coding decisions
// are delegated to a Policy (the MiL decision logic lives in package
// milcore) and IO-cost accounting to a Phy, so the same controller runs the
// DBI baseline, MiLC-only, CAFO, fixed-burst-length, and MiL configurations
// on both DDR4 and LPDDR3.
package memctrl

import "mil/internal/bitblock"

// Memory is the data content behind the DRAM devices. The controller reads
// it to know the bits a read burst carries (IO energy depends on the data)
// and updates it on writes. Implementations are deterministic value models
// (package workload) with a write overlay.
type Memory interface {
	// ReadLine returns the 64-byte block at cache-line index line.
	ReadLine(line int64) bitblock.Block
	// WriteLine stores a block at cache-line index line.
	WriteLine(line int64, blk bitblock.Block)
}

// OverlayMemory is a Memory whose initial contents come from a deterministic
// generator, with written lines kept in a sparse overlay. It lets value
// models stay stateless while writes remain visible to later reads.
type OverlayMemory struct {
	gen     func(line int64) bitblock.Block
	written map[int64]bitblock.Block
}

// NewOverlayMemory wraps a content generator. A nil generator yields
// all-zero lines.
func NewOverlayMemory(gen func(line int64) bitblock.Block) *OverlayMemory {
	if gen == nil {
		gen = func(int64) bitblock.Block { return bitblock.Block{} }
	}
	return &OverlayMemory{gen: gen, written: make(map[int64]bitblock.Block)}
}

// ReadLine implements Memory.
func (m *OverlayMemory) ReadLine(line int64) bitblock.Block {
	if blk, ok := m.written[line]; ok {
		return blk
	}
	return m.gen(line)
}

// WriteLine implements Memory.
func (m *OverlayMemory) WriteLine(line int64, blk bitblock.Block) {
	m.written[line] = blk
}

// WrittenLines reports the overlay size, useful in tests.
func (m *OverlayMemory) WrittenLines() int { return len(m.written) }
