package memctrl

import "mil/internal/bitblock"

// Request is one cache-block transfer demanded of the memory system.
type Request struct {
	Line   int64 // cache-line index (byte address >> 6)
	Write  bool
	Data   bitblock.Block // payload for writes
	Arrive int64          // DRAM cycle the request entered the controller
	Stream int            // originating hardware thread, for statistics
	Demand bool           // false for prefetches
	OnDone func(now int64)
	// Tag is caller-owned scratch the controller never reads or writes.
	// The replay driver stores the trace event index here so the
	// controller-level completion hook (SetDoneHook) can verify completion
	// cycles without a per-request closure. Not serialized by SnapRequest:
	// the only Tag user (replay) cannot combine with checkpointing.
	Tag    int
	loc    Location
	mapped bool // loc computed (requests are re-enqueued on backpressure)

	retries int   // failed link transfers replayed so far
	retryAt int64 // ineligible for scheduling before this cycle (backoff)

	// needDone marks a snapshot-restored request whose OnDone callback has
	// not been re-linked yet (closures cannot be serialized).
	needDone bool
}

// Retries returns how many times this request's burst was replayed after a
// link failure.
func (r *Request) Retries() int { return r.retries }

// complete invokes the completion callback, if any.
func (r *Request) complete(now int64) {
	if r.OnDone != nil {
		r.OnDone(now)
	}
}
