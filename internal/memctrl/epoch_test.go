package memctrl

import (
	"testing"

	"mil/internal/bitblock"
	"mil/internal/code"
	"mil/internal/dram"
)

// recordingEpochPolicy is a fixed policy that also asks for epoch
// feedback and records every delivery. memctrl cannot import milcore
// (milcore imports memctrl), so the real consumer is stood in for here.
type recordingEpochPolicy struct {
	FixedPolicy
	every  int
	clocks []int64
	deltas []EpochStats
}

func (p *recordingEpochPolicy) EpochLength() int { return p.every }

func (p *recordingEpochPolicy) ObserveEpoch(now int64, delta EpochStats) {
	p.clocks = append(p.clocks, now)
	p.deltas = append(p.deltas, delta)
}

// summingEpochPolicy accumulates into fixed fields so ObserveEpoch is
// allocation-free; used by the zero-cost gate below.
type summingEpochPolicy struct {
	FixedPolicy
	every  int
	epochs int64
	total  EpochStats
}

func (p *summingEpochPolicy) EpochLength() int { return p.every }

func (p *summingEpochPolicy) ObserveEpoch(now int64, delta EpochStats) {
	p.epochs++
	p.total.Bursts += delta.Bursts
	p.total.Zeros += delta.Zeros
	p.total.CostUnits += delta.CostUnits
	p.total.Beats += delta.Beats
	p.total.Retries += delta.Retries
}

func epochTestController(t *testing.T, policy Policy) *Controller {
	t.Helper()
	mem := NewOverlayMemory(func(line int64) bitblock.Block {
		var blk bitblock.Block
		blk[0] = byte(line)
		return blk
	})
	c, err := NewController(DefaultConfig(dram.DDR4_3200()), mem, policy, &PODPhy{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEpochFeedbackDelivery drives exactly two epochs of reads and checks
// the deltas partition the controller's own counters: every epoch covers
// EpochLength issued bursts, boundary clocks increase, and the delta sums
// reconcile with the final Stats.
func TestEpochFeedbackDelivery(t *testing.T) {
	pol := &recordingEpochPolicy{FixedPolicy: FixedPolicy{Codec: code.DBI{}}, every: 4}
	c := epochTestController(t, pol)
	now := int64(0)
	for i := int64(0); i < 8; i++ {
		req := &Request{Line: i * 7}
		req.loc = mustMap(t, req.Line)
		req.Arrive = now
		if !c.Enqueue(req, now) {
			t.Fatal("enqueue failed")
		}
		now = runUntilDrained(t, c, now, now+100000)
	}
	s := c.Stats()
	if s.Reads != 8 || s.Writes != 0 {
		t.Fatalf("harness drift: %d reads / %d writes issued, want 8/0", s.Reads, s.Writes)
	}
	if len(pol.deltas) != 2 {
		t.Fatalf("8 bursts at epoch length 4 delivered %d epochs, want 2", len(pol.deltas))
	}
	var sum EpochStats
	for i, d := range pol.deltas {
		if d.Bursts != 4 {
			t.Errorf("epoch %d covers %d bursts, want 4", i, d.Bursts)
		}
		if d.Zeros < 0 || d.CostUnits < 0 || d.Beats < 0 || d.Retries < 0 {
			t.Errorf("epoch %d delta has negative fields: %+v", i, d)
		}
		if i > 0 && pol.clocks[i] <= pol.clocks[i-1] {
			t.Errorf("epoch %d delivered at clock %d, not after epoch %d at %d",
				i, pol.clocks[i], i-1, pol.clocks[i-1])
		}
		sum.Bursts += d.Bursts
		sum.Zeros += d.Zeros
		sum.CostUnits += d.CostUnits
		sum.Beats += d.Beats
		sum.Retries += d.Retries
	}
	// 8 bursts is a whole number of epochs, so the delta sums must equal
	// the cumulative counters exactly — nothing double-counted or dropped.
	if sum.Bursts != s.Reads+s.Writes {
		t.Errorf("delta bursts sum to %d, stats say %d", sum.Bursts, s.Reads+s.Writes)
	}
	if sum.Zeros != s.Zeros {
		t.Errorf("delta zeros sum to %d, stats say %d", sum.Zeros, s.Zeros)
	}
	if sum.CostUnits != s.CostUnits {
		t.Errorf("delta cost units sum to %d, stats say %d", sum.CostUnits, s.CostUnits)
	}
	if sum.Beats != s.BurstBeats {
		t.Errorf("delta beats sum to %d, stats say %d", sum.Beats, s.BurstBeats)
	}
	if want := s.WriteRetries + s.ReadRetries + s.RetriesExhausted; sum.Retries != want {
		t.Errorf("delta retries sum to %d, stats say %d", sum.Retries, want)
	}
}

// TestEpochFeedbackCountsWrites checks the burst counter advances on
// writes too: a mixed read/write stream still closes epochs on issued
// bursts of either kind.
func TestEpochFeedbackCountsWrites(t *testing.T) {
	pol := &recordingEpochPolicy{FixedPolicy: FixedPolicy{Codec: code.DBI{}}, every: 2}
	c := epochTestController(t, pol)
	now := int64(0)
	for i := int64(0); i < 4; i++ {
		req := &Request{Line: i * 11, Write: i%2 == 0}
		req.loc = mustMap(t, req.Line)
		req.Arrive = now
		if !c.Enqueue(req, now) {
			t.Fatal("enqueue failed")
		}
		now = runUntilDrained(t, c, now, now+100000)
	}
	s := c.Stats()
	if s.Reads+s.Writes != 4 || s.Writes == 0 {
		t.Fatalf("harness drift: %d reads / %d writes, want a 4-burst mix", s.Reads, s.Writes)
	}
	if len(pol.deltas) != 2 {
		t.Fatalf("4 mixed bursts at epoch length 2 delivered %d epochs, want 2", len(pol.deltas))
	}
}

func TestEpochLengthValidated(t *testing.T) {
	mem := NewOverlayMemory(nil)
	for _, n := range []int{0, -3} {
		pol := &recordingEpochPolicy{FixedPolicy: FixedPolicy{Codec: code.DBI{}}, every: n}
		if _, err := NewController(DefaultConfig(dram.DDR4_3200()), mem, pol, &PODPhy{}); err == nil {
			t.Errorf("epoch length %d accepted, want constructor error", n)
		}
	}
}

// TestEpochFeedbackZeroCostWhenDisabled is the cost gate the EpochObserver
// contract promises: policies that do not implement the interface pay one
// nil check per burst and nothing else, and even an attached observer adds
// no allocations to the steady-state read round-trip. Mirrors
// TestTickSteadyStateZeroAllocObsDisabled.
func TestEpochFeedbackZeroCostWhenDisabled(t *testing.T) {
	cases := []struct {
		name   string
		policy Policy
	}{
		{"no-observer", FixedPolicy{Codec: code.DBI{}}},
		{"observer-attached", &summingEpochPolicy{FixedPolicy: FixedPolicy{Codec: code.DBI{}}, every: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := epochTestController(t, tc.policy)
			req := &Request{Line: 5}
			req.loc = mustMap(t, 5)
			now := int64(0)
			roundTrip := func() {
				req.Arrive = now
				if !c.Enqueue(req, now) {
					t.Fatal("enqueue failed")
				}
				for c.Pending() {
					c.Tick(now)
					now++
				}
			}
			roundTrip() // warm-up: size the queues and scratch buffers
			if n := testing.AllocsPerRun(50, roundTrip); n != 0 {
				t.Errorf("read round-trip allocates %v allocs/op, want 0", n)
			}
		})
	}
	// The attached observer must actually have been fed during the alloc
	// run, or the gate would be vacuous.
	obs := cases[1].policy.(*summingEpochPolicy)
	if obs.epochs == 0 {
		t.Error("epoch observer never fired during the zero-alloc run")
	}
}
