package memctrl

import (
	"math/rand"
	"testing"

	"mil/internal/bitblock"
	"mil/internal/code"
	"mil/internal/dram"
	"mil/internal/fault"
)

// faultyController builds a DDR4 controller whose phy corrupts transfers
// per fc, with the full RAS stack (write CRC + CA parity) and the given
// retry policy.
func faultyController(t *testing.T, fc fault.Config, retry RetryConfig, pol Policy) *Controller {
	t.Helper()
	mem := NewOverlayMemory(func(line int64) bitblock.Block {
		var blk bitblock.Block
		rng := rand.New(rand.NewSource(line + 1))
		rng.Read(blk[:])
		return blk
	})
	cfg := DefaultConfig(dram.DDR4_3200())
	cfg.Reliability = dram.DDR4Reliability()
	cfg.Retry = retry
	phy := &PODPhy{Link: LinkConfig{
		Inject:   fault.MustNew(fc),
		WriteCRC: true,
		CRCBeats: cfg.Reliability.ExtraWriteBeats(),
		CABits:   cfg.Reliability.CommandBits(),
	}}
	c, err := NewController(cfg, mem, pol, phy)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// enqueueAll admits every request, ticking through backpressure, and
// returns the cycle reached.
func enqueueAll(t *testing.T, c *Controller, reqs []*Request) int64 {
	t.Helper()
	now := int64(0)
	for _, req := range reqs {
		for !c.Enqueue(req, now) {
			c.Tick(now)
			now++
		}
	}
	return now
}

// assertConservation checks the retry-accounting invariants documented on
// Stats: every issued column command is either completed or retried, and
// every detected failure is either replayed or abandoned.
func assertConservation(t *testing.T, s *Stats) {
	t.Helper()
	if s.Writes != s.WritesCompleted+s.WriteRetries {
		t.Errorf("write conservation: issued %d != completed %d + retried %d",
			s.Writes, s.WritesCompleted, s.WriteRetries)
	}
	if s.Reads != s.ReadsCompleted+s.ReadRetries {
		t.Errorf("read conservation: issued %d != completed %d + retried %d",
			s.Reads, s.ReadsCompleted, s.ReadRetries)
	}
	if s.Failures() != s.Retries()+s.RetriesExhausted {
		t.Errorf("failure conservation: %d failures != %d retries + %d abandoned",
			s.Failures(), s.Retries(), s.RetriesExhausted)
	}
}

func TestRetryConservationMixedTraffic(t *testing.T) {
	// A BER high enough that most bursts take a hit: DBI would swallow
	// read corruption silently, so use MiLC, whose decoder rejects invalid
	// bursts, exercising the read-retry path as well.
	c := faultyController(t, fault.Config{BER: 2e-3, Seed: 11}, RetryConfig{},
		FixedPolicy{Codec: code.MiLC{}})
	rng := rand.New(rand.NewSource(42))
	const nw, nr = 60, 60
	done := 0
	var reqs []*Request
	for i := 0; i < nw; i++ {
		var blk bitblock.Block
		rng.Read(blk[:])
		reqs = append(reqs, &Request{Line: int64(i), Write: true, Data: blk,
			OnDone: func(int64) { done++ }})
	}
	for i := 0; i < nr; i++ {
		reqs = append(reqs, &Request{Line: int64(1000 + i), Demand: true,
			OnDone: func(int64) { done++ }})
	}
	now := enqueueAll(t, c, reqs)
	runUntilDrained(t, c, now, now+2_000_000)

	if done != nw+nr {
		t.Fatalf("completions %d, want %d", done, nw+nr)
	}
	s := c.Stats()
	assertConservation(t, s)
	if s.WritesCompleted != nw || s.ReadsCompleted != nr {
		t.Fatalf("completed %d writes / %d reads, want %d/%d",
			s.WritesCompleted, s.ReadsCompleted, nw, nr)
	}
	if s.BitErrors == 0 || s.Failures() == 0 || s.WriteCRCAlerts == 0 {
		t.Fatalf("fault injection left no trace: %+v", s)
	}
	if s.WriteRetries == 0 || s.ReadRetries == 0 {
		t.Fatalf("retries: writes %d reads %d, want both > 0", s.WriteRetries, s.ReadRetries)
	}
	if s.CRCBeats != 2*s.Writes {
		t.Fatalf("CRC beats %d, want 2 per issued write (%d)", s.CRCBeats, 2*s.Writes)
	}
	if s.RetryBeats == 0 || s.RetryCostUnits == 0 {
		t.Fatal("failed bursts were not charged")
	}
}

func TestRetryExhaustionAndStormGuard(t *testing.T) {
	// A stuck-low lane breaks every write's CRC: each request burns its
	// whole retry budget, is abandoned, and the run of channel-wide
	// failures trips the storm guard exactly once.
	retry := RetryConfig{MaxRetries: 2, BackoffBase: 2, BackoffMax: 8, StormThreshold: 3}
	c := faultyController(t, fault.Config{StuckPins: []int{1}, StuckVal: false, Seed: 7},
		retry, FixedPolicy{Codec: code.DBI{}})
	var reqs []*Request
	done := 0
	for i := 0; i < 5; i++ {
		var blk bitblock.Block
		for j := range blk {
			blk[j] = 0xff
		}
		reqs = append(reqs, &Request{Line: int64(i), Write: true, Data: blk,
			OnDone: func(int64) { done++ }})
	}
	now := enqueueAll(t, c, reqs)
	runUntilDrained(t, c, now, now+1_000_000)

	s := c.Stats()
	assertConservation(t, s)
	if done != 5 {
		t.Fatalf("abandoned writes must still complete: done = %d", done)
	}
	if s.RetriesExhausted != 5 {
		t.Fatalf("exhausted %d, want 5", s.RetriesExhausted)
	}
	if s.WriteRetries != 10 { // MaxRetries per request
		t.Fatalf("write retries %d, want 10", s.WriteRetries)
	}
	if s.Writes != 15 { // 3 attempts per request
		t.Fatalf("issued writes %d, want 15", s.Writes)
	}
	if s.RetryStorms != 1 {
		t.Fatalf("storms %d, want exactly 1 (never cleared by a success)", s.RetryStorms)
	}
	for _, req := range reqs {
		if req.Retries() != 2 {
			t.Fatalf("request retried %d times, want 2", req.Retries())
		}
	}
}

func TestRetryConfigValidate(t *testing.T) {
	good := RetryConfig{MaxRetries: 4, BackoffBase: 2, BackoffMax: 64, StormThreshold: 8}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []RetryConfig{
		{MaxRetries: -1},
		{BackoffBase: -2},
		{BackoffMax: -1},
		{BackoffBase: 100, BackoffMax: 10},
		{StormThreshold: -3},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
	}
}

func TestCleanLinkWriteCRCPhy(t *testing.T) {
	// Write CRC without an injector: the burst stretches by two beats, the
	// check passes, and the payload arrives intact.
	blk := bitblock.FromBytes([]byte{0x12, 0x34, 0x56})
	phy := &PODPhy{Link: LinkConfig{WriteCRC: true, CRCBeats: 2}}
	res := phy.Transmit(code.DBI{}, &blk, true)
	if res.Failed() || res.Silent || res.BitErrors != 0 {
		t.Fatalf("clean link flagged an error: %+v", res)
	}
	if res.Beats != (code.DBI{}).Beats()+2 {
		t.Fatalf("beats %d, want data+CRC", res.Beats)
	}
	if res.Arrived != blk {
		t.Fatal("payload mangled on a clean link")
	}
	// Reads pay no CRC beats.
	if r := phy.Transmit(code.DBI{}, &blk, false); r.Beats != (code.DBI{}).Beats() {
		t.Fatalf("read beats %d", r.Beats)
	}
}

func TestStatsMergeReliabilityCounters(t *testing.T) {
	a, b := NewStats(), NewStats()
	a.WriteCRCAlerts, b.WriteCRCAlerts = 2, 3
	a.CAParityAlerts, b.CAParityAlerts = 1, 1
	a.ReadDecodeFailures, b.ReadDecodeFailures = 4, 0
	a.WriteRetries, b.WriteRetries = 5, 2
	a.ReadRetries, b.ReadRetries = 1, 2
	a.RetriesExhausted, b.RetriesExhausted = 1, 0
	a.RetryStorms, b.RetryStorms = 1, 1
	a.SilentErrors, b.SilentErrors = 0, 2
	a.BitErrors, b.BitErrors = 10, 20
	a.RetryBeats, b.RetryBeats = 100, 50
	a.RetryCostUnits, b.RetryCostUnits = 70, 30
	a.CRCBeats, b.CRCBeats = 8, 4
	a.WritesCompleted, b.WritesCompleted = 6, 7
	a.Merge(b)
	if a.WriteCRCAlerts != 5 || a.CAParityAlerts != 2 || a.ReadDecodeFailures != 4 ||
		a.WriteRetries != 7 || a.ReadRetries != 3 || a.RetriesExhausted != 1 ||
		a.RetryStorms != 2 || a.SilentErrors != 2 || a.BitErrors != 30 ||
		a.RetryBeats != 150 || a.RetryCostUnits != 100 || a.CRCBeats != 12 ||
		a.WritesCompleted != 13 {
		t.Fatalf("merge dropped a reliability counter: %+v", a)
	}
	if a.Failures() != 11 || a.Retries() != 10 {
		t.Fatalf("derived failures %d / retries %d", a.Failures(), a.Retries())
	}
}
