package memctrl

import (
	"testing"

	"mil/internal/bitblock"
	"mil/internal/code"
	"mil/internal/dram"
)

// pdController builds a controller with the power-down extension on.
func pdController(t *testing.T, idle, xp int) *Controller {
	t.Helper()
	cfg := DefaultConfig(dram.DDR4_3200())
	cfg.PowerDown = PowerDownConfig{Enable: true, IdleCycles: idle, XP: xp}
	mem := NewOverlayMemory(nil)
	c, err := NewController(cfg, mem, FixedPolicy{Codec: code.DBI{}}, &PODPhy{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPowerDownConfigValidation(t *testing.T) {
	cfg := DefaultConfig(dram.DDR4_3200())
	cfg.PowerDown = PowerDownConfig{Enable: true}
	if cfg.Validate() == nil {
		t.Fatal("zero idle/xp accepted")
	}
	cfg.PowerDown = PowerDownConfig{Enable: true, IdleCycles: 10, XP: 0}
	if cfg.Validate() == nil {
		t.Fatal("zero xp accepted")
	}
}

func TestIdleRanksPowerDown(t *testing.T) {
	c := pdController(t, 16, 10)
	for now := int64(0); now < 2000; now++ {
		c.Tick(now)
	}
	s := c.Stats()
	// 2 ranks idle nearly the whole time (minus thresholds and refreshes).
	if s.PowerDownCycles < 2*1500 {
		t.Fatalf("power-down cycles = %d, want most of 2x2000", s.PowerDownCycles)
	}
}

func TestPowerDownWakeCostsXP(t *testing.T) {
	c := pdController(t, 16, 10)
	for now := int64(0); now < 500; now++ {
		c.Tick(now)
	}
	doneAt := int64(-1)
	req := &Request{Line: 0, Demand: true, OnDone: func(now int64) { doneAt = now }}
	req.loc = mustMap(t, 0)
	if !c.Enqueue(req, 500) {
		t.Fatal("enqueue")
	}
	for now := int64(500); c.Pending() && now < 5000; now++ {
		c.Tick(now)
	}
	if doneAt < 0 {
		t.Fatal("read never completed from a powered-down rank")
	}
	tm := dram.DDR4_3200().Timing
	// Wake (>= XP) + ACT + tRCD + CL + burst.
	wantMin := int64(10 + tm.RCD + tm.CL + 4)
	if doneAt-500 < wantMin {
		t.Fatalf("read completed after %d cycles, want >= %d (tXP charged)", doneAt-500, wantMin)
	}
	if c.Stats().PowerDownExits == 0 {
		t.Fatal("no wake-up recorded")
	}
}

func TestPowerDownPrechargesOpenRows(t *testing.T) {
	c := pdController(t, 16, 10)
	// Touch a line to open a row, then go idle.
	req := &Request{Line: 7, Demand: true}
	req.loc = mustMap(t, 7)
	if !c.Enqueue(req, 0) {
		t.Fatal("enqueue")
	}
	for now := int64(0); now < 1500; now++ {
		c.Tick(now)
	}
	s := c.Stats()
	if s.Precharges == 0 {
		t.Fatal("open row never precharged for power-down")
	}
	if s.PowerDownCycles == 0 {
		t.Fatal("rank never powered down after precharge")
	}
}

func TestPowerDownDoesNotBreakRefresh(t *testing.T) {
	c := pdController(t, 16, 10)
	tm := dram.DDR4_3200().Timing
	for now := int64(0); now < int64(tm.REFI)*4; now++ {
		c.Tick(now)
	}
	s := c.Stats()
	if s.Refreshes < 6 {
		t.Fatalf("refreshes = %d over 4 tREFI with power-down", s.Refreshes)
	}
}

func TestPowerDownCorrectnessUnderTraffic(t *testing.T) {
	// Random traffic with long gaps: all requests complete, data survives.
	c := pdController(t, 16, 10)
	done := 0
	now := int64(0)
	for i := 0; i < 40; i++ {
		line := int64(i * 777)
		w := &Request{Line: line, Write: true, Demand: true, Data: bitblock.FromBytes([]byte{byte(i)})}
		w.loc = mustMap(t, line)
		if !c.Enqueue(w, now) {
			t.Fatal("write enqueue")
		}
		r := &Request{Line: line, Demand: true, OnDone: func(int64) { done++ }}
		r.loc = mustMap(t, line)
		if !c.Enqueue(r, now) {
			t.Fatal("read enqueue")
		}
		// Long idle gap so ranks power down between bursts of work.
		for end := now + 400; now < end; now++ {
			c.Tick(now)
		}
	}
	for ; c.Pending(); now++ {
		c.Tick(now)
	}
	if done != 40 {
		t.Fatalf("completed %d reads, want 40", done)
	}
	if c.Stats().PowerDownCycles == 0 {
		t.Fatal("gappy traffic never powered down")
	}
}
