package memctrl

import (
	"fmt"
	"sort"

	"mil/internal/bitblock"
	"mil/internal/dram"
	"mil/internal/snap"
)

// This file serializes the controller-side state for checkpoint/resume.
// Request completion callbacks (OnDone) are closures and cannot cross a
// snapshot; each request records whether one was attached, and the sim
// layer re-links the callbacks after Restore via EachRequest +
// Request.NeedsOnDone.

// Snapshot serializes the bucket counts (edges are configuration).
func (h *Histogram) Snapshot(w *snap.Writer) { w.I64s(h.Counts) }

// Restore implements snap.Snapshotter.
func (h *Histogram) Restore(r *snap.Reader) error {
	counts := r.I64s()
	if err := r.Err(); err != nil {
		return err
	}
	if len(counts) != len(h.Counts) {
		return fmt.Errorf("memctrl: snapshot histogram has %d buckets, config has %d", len(counts), len(h.Counts))
	}
	copy(h.Counts, counts)
	return nil
}

// Snapshot serializes every counter, the codec map in sorted-name order,
// and both histograms.
func (s *Stats) Snapshot(w *snap.Writer) {
	for _, v := range s.fields() {
		w.I64(*v)
	}
	names := make([]string, 0, len(s.CodecBursts))
	for k := range s.CodecBursts {
		names = append(names, k)
	}
	sort.Strings(names)
	w.Len(len(names))
	for _, k := range names {
		w.String(k)
		w.I64(s.CodecBursts[k])
	}
	s.GapHist.Snapshot(w)
	s.SlackHist.Snapshot(w)
}

// Restore implements snap.Snapshotter.
func (s *Stats) Restore(r *snap.Reader) error {
	for _, v := range s.fields() {
		*v = r.I64()
	}
	n := r.Len()
	s.CodecBursts = make(map[string]int64, n)
	for i := 0; i < n; i++ {
		k := r.String()
		s.CodecBursts[k] = r.I64()
	}
	if err := s.GapHist.Restore(r); err != nil {
		return err
	}
	if err := s.SlackHist.Restore(r); err != nil {
		return err
	}
	return r.Err()
}

// fields lists every plain counter in declaration order, so Snapshot,
// Restore, and the struct definition cannot drift apart silently.
func (s *Stats) fields() []*int64 {
	return []*int64{
		&s.Reads, &s.Writes, &s.Activates, &s.Precharges, &s.Refreshes, &s.Forwards,
		&s.RowHits, &s.RowMisses,
		&s.Zeros, &s.CostUnits, &s.BurstBeats, &s.BusyCycles,
		&s.IdlePendingCycles, &s.IdleEmptyCycles, &s.Ticks,
		&s.ReadLatencySum, &s.ReadsCompleted,
		&s.DemandReads, &s.DemandLatencySum, &s.DemandReadsCompleted,
		&s.RQOccupancySum, &s.WQOccupancySum,
		&s.PowerDownCycles, &s.PowerDownExits,
		&s.BackToBack, &s.GapPairs,
		&s.WritesCompleted, &s.WriteCRCAlerts, &s.CAParityAlerts, &s.ReadDecodeFailures,
		&s.WriteRetries, &s.ReadRetries, &s.RetriesExhausted, &s.RetryStorms,
		&s.SilentErrors, &s.BitErrors, &s.RetryBeats, &s.RetryCostUnits, &s.CRCBeats,
	}
}

// Snapshot serializes the write overlay in sorted-line order (the
// generator is configuration).
func (m *OverlayMemory) Snapshot(w *snap.Writer) {
	lines := make([]int64, 0, len(m.written))
	for l := range m.written {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	w.Len(len(lines))
	for _, l := range lines {
		blk := m.written[l]
		w.I64(l)
		w.Bytes64((*[64]byte)(&blk))
	}
}

// Restore implements snap.Snapshotter.
func (m *OverlayMemory) Restore(r *snap.Reader) error {
	n := r.Len()
	m.written = make(map[int64]bitblock.Block, n)
	for i := 0; i < n; i++ {
		l := r.I64()
		var blk bitblock.Block
		r.Bytes64((*[64]byte)(&blk))
		m.written[l] = blk
	}
	return r.Err()
}

// NeedsOnDone reports whether this restored request had a completion
// callback at snapshot time that has not been re-linked yet. Setting
// OnDone clears the obligation implicitly; the sim layer checks the flag
// right after Restore.
func (r *Request) NeedsOnDone() bool { return r.needDone && r.OnDone == nil }

// SnapRequest serializes one request (minus its callback). It is exported
// for the sim layer, which holds not-yet-enqueued requests of its own.
func SnapRequest(w *snap.Writer, req *Request) {
	w.I64(req.Line)
	w.Bool(req.Write)
	w.Bytes64((*[64]byte)(&req.Data))
	w.I64(req.Arrive)
	w.Int(req.Stream)
	w.Bool(req.Demand)
	w.Bool(req.OnDone != nil)
	w.Int(req.loc.Channel)
	w.Int(req.loc.Rank)
	w.Int(req.loc.Group)
	w.Int(req.loc.Bank)
	w.Int(req.loc.Row)
	w.Int(req.loc.Col)
	w.Bool(req.mapped)
	w.Int(req.retries)
	w.I64(req.retryAt)
}

// RestoreRequest decodes one request, marking it for callback re-linking
// when one was attached at snapshot time.
func RestoreRequest(r *snap.Reader) *Request {
	req := &Request{}
	req.Line = r.I64()
	req.Write = r.Bool()
	r.Bytes64((*[64]byte)(&req.Data))
	req.Arrive = r.I64()
	req.Stream = r.Int()
	req.Demand = r.Bool()
	req.needDone = r.Bool()
	req.loc.Channel = r.Int()
	req.loc.Rank = r.Int()
	req.loc.Group = r.Int()
	req.loc.Bank = r.Int()
	req.loc.Row = r.Int()
	req.loc.Col = r.Int()
	req.mapped = r.Bool()
	req.retries = r.Int()
	req.retryAt = r.I64()
	return req
}

// snapBusState packs the 128 wire levels into two words.
func snapBusState(w *snap.Writer, s *bitblock.BusState) {
	for half := 0; half < 2; half++ {
		var word uint64
		for b := 0; b < 64; b++ {
			if s.Pin(half*64 + b) {
				word |= 1 << b
			}
		}
		w.U64(word)
	}
}

// restoreBusState unpacks the wire levels.
func restoreBusState(r *snap.Reader, s *bitblock.BusState) {
	for half := 0; half < 2; half++ {
		word := r.U64()
		for b := 0; b < 64; b++ {
			s.SetPin(half*64+b, word>>b&1 == 1)
		}
	}
}

// snapLink serializes a link's mutable state: the injector PRNG position
// and counters (the RAS feature flags are configuration).
func snapLink(w *snap.Writer, l *LinkConfig) {
	w.Bool(l.Inject != nil)
	if l.Inject != nil {
		l.Inject.Snapshot(w)
	}
}

func restoreLink(r *snap.Reader, l *LinkConfig) error {
	had := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if had != (l.Inject != nil) {
		return fmt.Errorf("memctrl: snapshot injector presence %v, config says %v", had, l.Inject != nil)
	}
	if l.Inject != nil {
		return l.Inject.Restore(r)
	}
	return nil
}

// Snapshot implements snap.Snapshotter (only the injector stream is
// mutable on a POD link; scratch is per-call).
func (p *PODPhy) Snapshot(w *snap.Writer) { snapLink(w, &p.Link) }

// Restore implements snap.Snapshotter.
func (p *PODPhy) Restore(r *snap.Reader) error { return restoreLink(r, &p.Link) }

// Snapshot implements snap.Snapshotter: injector stream plus both wire
// states (tx and rx can diverge transiently after an error).
func (p *TransitionPhy) Snapshot(w *snap.Writer) {
	snapLink(w, &p.Link)
	snapBusState(w, &p.txState)
	snapBusState(w, &p.rxState)
}

// Restore implements snap.Snapshotter.
func (p *TransitionPhy) Restore(r *snap.Reader) error {
	if err := restoreLink(r, &p.Link); err != nil {
		return err
	}
	restoreBusState(r, &p.txState)
	restoreBusState(r, &p.rxState)
	return r.Err()
}

// Snapshot implements snap.Snapshotter.
func (p *BIWirePhy) Snapshot(w *snap.Writer) {
	snapLink(w, &p.Link)
	snapBusState(w, &p.state)
}

// Restore implements snap.Snapshotter.
func (p *BIWirePhy) Restore(r *snap.Reader) error {
	if err := restoreLink(r, &p.Link); err != nil {
		return err
	}
	restoreBusState(r, &p.state)
	return r.Err()
}

// Snapshot serializes one controller: queues and in-flight transfers (each
// request appears exactly once across rq/wq/inflight/deferred), the
// refresh and power-down machines, scheduler mode, statistics, the wake
// memo (a fresh post-restore scan could land on different cycles and
// change the loop statistics), the device timing state, and the phy. The
// scheduler scratch (banksTmp/bankStamp) is excluded: every FCFS pass
// starts by bumping the stamp, so zeroed scratch is equivalent.
func (c *Controller) Snapshot(w *snap.Writer) {
	snapQueue := func(reqs []*Request) {
		w.Len(len(reqs))
		for _, req := range reqs {
			SnapRequest(w, req)
		}
	}
	snapQueue(c.rq)
	snapQueue(c.wq)
	w.Bool(c.writeMode)
	w.I64s(c.refDue)
	w.Len(len(c.refPending))
	for _, p := range c.refPending {
		w.Bool(p)
	}
	w.Len(len(c.pd))
	for i := range c.pd {
		w.Bool(c.pd[i].down)
		w.I64(c.pd[i].idleSince)
		w.I64(c.pd[i].wakeAt)
	}
	snapFlights := func(fs []inflightRead) {
		w.Len(len(fs))
		for _, f := range fs {
			SnapRequest(w, f.req)
			w.I64(f.done)
		}
	}
	snapFlights(c.inflight)
	snapFlights(c.deferred)
	w.Len(len(c.activeBurst))
	for _, b := range c.activeBurst {
		w.I64(b.Start)
		w.I64(b.End)
	}
	c.stats.Snapshot(w)
	w.I64(c.now)
	w.Bool(c.started)
	w.Bool(c.acted)
	w.Int(c.idleRun)
	w.I64(c.wake)
	w.Bool(c.wakeValid)
	w.Int(c.consecFail)
	w.Bool(c.inStorm)
	// Per-epoch feedback progress, present exactly when the policy
	// observes epochs. Presence is config-deterministic (it follows from
	// the scheme), so checkpoints of every non-observing scheme keep
	// their pre-epoch byte layout unchanged.
	if c.epoch.obs != nil {
		w.I64(c.epoch.bursts)
		w.I64(c.epoch.mark.Bursts)
		w.I64(c.epoch.mark.Zeros)
		w.I64(c.epoch.mark.CostUnits)
		w.I64(c.epoch.mark.Beats)
		w.I64(c.epoch.mark.Retries)
	}
	// The idle-window tracker is observability state, but it is mutable
	// per-cycle state all the same: an idle run open across the checkpoint
	// must not be split in two, or the resumed run's histogram diverges.
	// The fields are written unconditionally (zero when obs is detached) so
	// the format does not depend on the observability configuration.
	if c.obs != nil {
		w.Bool(c.obs.inIdle)
		w.I64(c.obs.idleStart)
	} else {
		w.Bool(false)
		w.I64(0)
	}
	c.ch.Snapshot(w)
	if s, ok := c.phy.(snap.Snapshotter); ok {
		w.Bool(true)
		s.Snapshot(w)
	} else {
		w.Bool(false)
	}
}

// Restore implements snap.Snapshotter. Requests come back without their
// completion callbacks; see EachRequest.
func (c *Controller) Restore(r *snap.Reader) error {
	restoreQueue := func() []*Request {
		n := r.Len()
		if n == 0 {
			return nil
		}
		reqs := make([]*Request, 0, n)
		for i := 0; i < n; i++ {
			reqs = append(reqs, RestoreRequest(r))
		}
		return reqs
	}
	c.rq = restoreQueue()
	c.wq = restoreQueue()
	c.writeMode = r.Bool()
	refDue := r.I64s()
	nrp := r.Len()
	if err := r.Err(); err != nil {
		return err
	}
	if len(refDue) != len(c.refDue) || nrp != len(c.refPending) {
		return fmt.Errorf("memctrl: snapshot rank count mismatch")
	}
	copy(c.refDue, refDue)
	for i := range c.refPending {
		c.refPending[i] = r.Bool()
	}
	npd := r.Len()
	if err := r.Err(); err != nil {
		return err
	}
	if npd != len(c.pd) {
		return fmt.Errorf("memctrl: snapshot power-down rank count mismatch")
	}
	for i := range c.pd {
		c.pd[i].down = r.Bool()
		c.pd[i].idleSince = r.I64()
		c.pd[i].wakeAt = r.I64()
	}
	restoreFlights := func() []inflightRead {
		n := r.Len()
		if n == 0 {
			return nil
		}
		fs := make([]inflightRead, 0, n)
		for i := 0; i < n; i++ {
			req := RestoreRequest(r)
			fs = append(fs, inflightRead{req: req, done: r.I64()})
		}
		return fs
	}
	c.inflight = restoreFlights()
	c.deferred = restoreFlights()
	nb := r.Len()
	c.activeBurst = c.activeBurst[:0]
	for i := 0; i < nb; i++ {
		c.activeBurst = append(c.activeBurst, dram.BurstWindow{Start: r.I64(), End: r.I64()})
	}
	if err := c.stats.Restore(r); err != nil {
		return err
	}
	c.now = r.I64()
	c.started = r.Bool()
	c.acted = r.Bool()
	c.idleRun = r.Int()
	c.wake = r.I64()
	c.wakeValid = r.Bool()
	c.consecFail = r.Int()
	c.inStorm = r.Bool()
	if c.epoch.obs != nil {
		c.epoch.bursts = r.I64()
		c.epoch.mark.Bursts = r.I64()
		c.epoch.mark.Zeros = r.I64()
		c.epoch.mark.CostUnits = r.I64()
		c.epoch.mark.Beats = r.I64()
		c.epoch.mark.Retries = r.I64()
	}
	inIdle, idleStart := r.Bool(), r.I64()
	if c.obs != nil {
		c.obs.inIdle, c.obs.idleStart = inIdle, idleStart
	}
	for i := range c.banksTmp {
		c.banksTmp[i] = 0
	}
	c.bankStamp = 0
	if err := c.ch.Restore(r); err != nil {
		return err
	}
	hadPhy := r.Bool()
	s, ok := c.phy.(snap.Snapshotter)
	if err := r.Err(); err != nil {
		return err
	}
	if hadPhy != ok {
		return fmt.Errorf("memctrl: snapshot phy presence %v, config says %v", hadPhy, ok)
	}
	if ok {
		if err := s.Restore(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// EachRequest visits every live request in this controller, in a fixed
// order (read queue, write queue, in-flight reads, deferred completions).
// The sim layer uses it after Restore to re-link completion callbacks.
func (c *Controller) EachRequest(f func(*Request)) {
	for _, req := range c.rq {
		f(req)
	}
	for _, req := range c.wq {
		f(req)
	}
	for _, fl := range c.inflight {
		f(fl.req)
	}
	for _, fl := range c.deferred {
		f(fl.req)
	}
}

// Snapshot serializes every channel (the mapper is configuration).
func (s *System) Snapshot(w *snap.Writer) {
	for _, c := range s.ctrls {
		c.Snapshot(w)
	}
}

// Restore implements snap.Snapshotter.
func (s *System) Restore(r *snap.Reader) error {
	for _, c := range s.ctrls {
		if err := c.Restore(r); err != nil {
			return err
		}
	}
	return nil
}

// EachRequest visits every live request across all channels.
func (s *System) EachRequest(f func(*Request)) {
	for _, c := range s.ctrls {
		c.EachRequest(f)
	}
}
