package memctrl

import (
	"math/rand"
	"testing"

	"mil/internal/bitblock"
	"mil/internal/code"
	"mil/internal/dram"
)

// TestRequestConservation pushes a randomized mix of reads and writes
// through a controller and checks that every accepted request completes
// exactly once, that command counts are consistent, and that the final
// memory contents equal the last accepted write per line.
func TestRequestConservation(t *testing.T) {
	mem := NewOverlayMemory(func(line int64) bitblock.Block {
		return bitblock.FromBytes([]byte{byte(line), byte(line >> 8)})
	})
	c, err := NewController(DefaultConfig(dram.DDR4_3200()), mem, FixedPolicy{Codec: code.DBI{}}, &PODPhy{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := NewAddressMapper(1, dram.DDR4_3200().Geometry)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(77))
	completions := map[*Request]int{}
	lastWrite := map[int64]byte{}
	var accepted, acceptedReads, acceptedWrites, coalesced int

	now := int64(0)
	for i := 0; i < 3000; i++ {
		line := int64(rng.Intn(400)) // small space: plenty of same-line traffic
		req := &Request{Line: line, Write: rng.Intn(3) == 0, Demand: true}
		req.loc = mapper.Map(line)
		req.OnDone = func(r *Request) func(int64) {
			return func(int64) { completions[r]++ }
		}(req)
		if req.Write {
			tag := byte(rng.Intn(256))
			req.Data = bitblock.FromBytes([]byte{tag})
			wasQueued := false
			for _, w := range c.wq {
				if w.Line == line {
					wasQueued = true
					break
				}
			}
			if c.Enqueue(req, now) {
				accepted++
				acceptedWrites++
				lastWrite[line] = tag
				if wasQueued {
					coalesced++
				}
			}
		} else if c.Enqueue(req, now) {
			accepted++
			acceptedReads++
		}
		// Advance a few cycles between arrivals.
		steps := int64(rng.Intn(4))
		for s := int64(0); s <= steps; s++ {
			c.Tick(now)
			now++
		}
	}
	for c.Pending() {
		c.Tick(now)
		now++
	}

	total := 0
	for req, n := range completions {
		if n != 1 {
			t.Fatalf("request %+v completed %d times", req, n)
		}
		total++
	}
	if total != accepted {
		t.Fatalf("%d completions for %d accepted requests", total, accepted)
	}

	s := c.Stats()
	if s.Reads+s.Forwards != int64(acceptedReads) {
		t.Fatalf("reads issued %d + forwarded %d != accepted %d", s.Reads, s.Forwards, acceptedReads)
	}
	if s.Writes+int64(coalesced) != int64(acceptedWrites) {
		t.Fatalf("writes issued %d + coalesced %d != accepted %d", s.Writes, coalesced, acceptedWrites)
	}

	for line, tag := range lastWrite {
		if got := mem.ReadLine(line); got[0] != tag {
			t.Fatalf("line %d holds %d, want last write %d", line, got[0], tag)
		}
	}
}

// TestRefreshKeepsUpUnderLoad verifies refreshes keep being issued at
// roughly the nominal rate even while the controller is saturated.
func TestRefreshKeepsUpUnderLoad(t *testing.T) {
	mem := NewOverlayMemory(nil)
	c, err := NewController(DefaultConfig(dram.DDR4_3200()), mem, FixedPolicy{Codec: code.DBI{}}, &PODPhy{})
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := NewAddressMapper(1, dram.DDR4_3200().Geometry)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	tm := dram.DDR4_3200().Timing
	horizon := int64(tm.REFI) * 10
	for now := int64(0); now < horizon; now++ {
		if rq, _ := c.QueueDepths(); rq < 60 {
			line := int64(rng.Intn(1 << 20))
			req := &Request{Line: line, Demand: true}
			req.loc = mapper.Map(line)
			c.Enqueue(req, now)
		}
		c.Tick(now)
	}
	want := 10 * int64(dram.DDR4_3200().Geometry.Ranks)
	got := c.Stats().Refreshes
	if got < want-4 || got > want+4 {
		t.Fatalf("refreshes = %d over 10 tREFI, want about %d", got, want)
	}
}
