package memctrl

import (
	"reflect"
	"testing"

	"mil/internal/code"
	"mil/internal/fault"
)

// scriptedReq is one externally-scheduled request arrival.
type scriptedReq struct {
	at     int64
	line   int64
	write  bool
	demand bool
}

func (s scriptedReq) build(t *testing.T) *Request {
	t.Helper()
	req := &Request{Line: s.line, Write: s.write, Demand: s.demand}
	req.loc = mustMap(t, s.line)
	req.mapped = true
	return req
}

// runScriptRef drives the controller through [0, horizon] ticking every
// cycle, feeding script arrivals (with next-cycle retry on backpressure)
// after each tick, exactly as the simulation's steplock loop would.
func runScriptRef(t *testing.T, c *Controller, script []scriptedReq, horizon int64) {
	t.Helper()
	i := 0
	var pending *Request
	for now := int64(0); now <= horizon; now++ {
		c.Tick(now)
		if pending != nil && c.Enqueue(pending, now) {
			pending = nil
		}
		for pending == nil && i < len(script) && script[i].at <= now {
			req := script[i].build(t)
			i++
			if !c.Enqueue(req, now) {
				pending = req
			}
		}
	}
}

// runScriptEvent covers the same timeline with the event-core contract:
// advance to min(NextWake, next arrival), SkipUntil the gap, fire. It
// returns the number of cycles actually ticked so tests can assert the
// skipping is real.
func runScriptEvent(t *testing.T, c *Controller, script []scriptedReq, horizon int64) int64 {
	t.Helper()
	i := 0
	var pending *Request
	var ticked int64
	for now := int64(0); now <= horizon; {
		if now-1 > c.now {
			c.SkipUntil(now - 1)
		}
		c.Tick(now)
		ticked++
		if pending != nil && c.Enqueue(pending, now) {
			pending = nil
		}
		for pending == nil && i < len(script) && script[i].at <= now {
			req := script[i].build(t)
			i++
			if !c.Enqueue(req, now) {
				pending = req
			}
		}
		wake := c.NextWake()
		if pending != nil {
			wake = now + 1
		}
		if i < len(script) {
			wake = min(wake, script[i].at)
		}
		if wake <= now {
			wake = now + 1
		}
		now = wake
	}
	if c.now < horizon {
		c.SkipUntil(horizon)
	}
	return ticked
}

// requireSameStats compares the two controllers field for field.
func requireSameStats(t *testing.T, ref, ev *Controller) {
	t.Helper()
	if ref.now != ev.now {
		t.Fatalf("final cycle: ref %d, event %d", ref.now, ev.now)
	}
	a, b := ref.Stats(), ev.Stats()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("stats diverge:\n  ref:   %+v\n  event: %+v", a, b)
	}
}

// TestEventSkipRefresh proves refreshes fire on schedule when the event
// loop skips the long idle stretches between them: a handful of reads
// leave rows open (so the refresh drain's PRE path runs too), then the
// controller idles across many tREFI windows.
func TestEventSkipRefresh(t *testing.T) {
	script := []scriptedReq{
		{at: 0, line: 0, demand: true},
		{at: 1, line: 1 << 18, demand: true},
		{at: 2, line: 1 << 20, demand: true},
	}
	const horizon = 40000
	ref := testController(t)
	ev := testController(t)
	runScriptRef(t, ref, script, horizon)
	ticked := runScriptEvent(t, ev, script, horizon)
	if ev.Stats().Refreshes == 0 {
		t.Fatal("no refreshes in the window; test exercises nothing")
	}
	if ticked > horizon/4 {
		t.Errorf("event loop ticked %d of %d cycles; skipping is broken", ticked, horizon)
	}
	requireSameStats(t, ref, ev)
}

// TestEventSkipPowerDown proves the power-down state machine's idle
// deadlines, exits, and residency accounting survive skipping: bursts of
// traffic separated by idle gaps long enough to power ranks down.
func TestEventSkipPowerDown(t *testing.T) {
	var script []scriptedReq
	for burst := int64(0); burst < 4; burst++ {
		base := burst * 2000
		for k := int64(0); k < 6; k++ {
			script = append(script, scriptedReq{at: base + k, line: k << 18, demand: true})
		}
	}
	const horizon = 9000
	ref := pdController(t, 64, 10)
	ev := pdController(t, 64, 10)
	runScriptRef(t, ref, script, horizon)
	ticked := runScriptEvent(t, ev, script, horizon)
	s := ev.Stats()
	if s.PowerDownCycles == 0 || s.PowerDownExits == 0 {
		t.Fatalf("power-down never cycled (down %d, exits %d); test exercises nothing",
			s.PowerDownCycles, s.PowerDownExits)
	}
	if ticked > horizon/2 {
		t.Errorf("event loop ticked %d of %d cycles; skipping is broken", ticked, horizon)
	}
	requireSameStats(t, ref, ev)
}

// TestEventSkipRetryBackoff proves the NACK-replay path's backoff gating
// (request.retryAt) contributes correct wake bounds: with an aggressive
// injector every batch sees replays, and the backoff windows are long
// enough that a missed wake would reorder or delay them.
func TestEventSkipRetryBackoff(t *testing.T) {
	fc := fault.Config{BER: 2e-4, Seed: 9}
	retry := RetryConfig{}
	var script []scriptedReq
	for k := int64(0); k < 24; k++ {
		script = append(script, scriptedReq{at: k * 3, line: k << 16, write: k%2 == 0, demand: true})
	}
	const horizon = 20000
	ref := faultyController(t, fc, retry, FixedPolicy{Codec: code.DBI{}})
	ev := faultyController(t, fc, retry, FixedPolicy{Codec: code.DBI{}})
	runScriptRef(t, ref, script, horizon)
	runScriptEvent(t, ev, script, horizon)
	s := ev.Stats()
	if s.Retries() == 0 {
		t.Fatal("no replays at BER 2e-4; test exercises nothing")
	}
	assertConservation(t, s)
	requireSameStats(t, ref, ev)
}
