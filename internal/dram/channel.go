package dram

import (
	"fmt"

	"mil/internal/obs"
	"mil/internal/snap"
)

// infinitePast initializes "last event" registers so constraints are
// trivially met at time zero.
const infinitePast = int64(-1) << 40

// bankState tracks one bank's row buffer and earliest-allowed times.
type bankState struct {
	open    bool
	row     int
	nextACT int64 // honors tRC, tRP, and refresh
	nextPRE int64 // honors tRAS, tRTP, tWR
	nextCAS int64 // honors tRCD
}

// groupState tracks bank-group-scoped constraints (the DDR4 additions).
type groupState struct {
	nextACT int64 // tRRD_L
	nextRD  int64 // tCCD_L, tWTR_L
	nextWR  int64 // tCCD_L
}

// rankState tracks rank-scoped constraints.
type rankState struct {
	nextACT      int64 // tRRD_S
	nextRD       int64 // tCCD_S, tWTR_S
	nextWR       int64 // tCCD_S
	faw          [4]int64
	fawIdx       int
	refBusyUntil int64 // tRFC window
}

// lastBurst remembers the previous data-bus transaction for turnaround and
// slack accounting.
type lastBurst struct {
	valid bool
	end   int64
	rank  int
	group int
	write bool
}

// Channel is the cycle-level timing model of one DRAM channel. It is not
// safe for concurrent use; the whole simulator is single threaded and
// deterministic.
type Channel struct {
	cfg    Config
	banks  [][][]bankState // [rank][group][bank]
	groups [][]groupState  // [rank][group]
	ranks  []rankState

	busBusyUntil int64
	last         lastBurst
	lastIssue    int64 // latest command issue time, for monotonicity checks

	// cmds, when attached via SetObs, counts issued commands per kind.
	// Nil (the default) keeps Issue free of observability cost.
	cmds *[REF + 1]*obs.Counter
}

// SetObs attaches per-command-kind issue counters from the observability
// registry. Nil-safe: a disabled Obs leaves the channel untouched.
func (ch *Channel) SetObs(o *obs.Obs) {
	if !o.Enabled() {
		return
	}
	ch.cmds = &[REF + 1]*obs.Counter{
		ACT: o.Counter("dram_act_total"),
		PRE: o.Counter("dram_pre_total"),
		RD:  o.Counter("dram_rd_total"),
		WR:  o.Counter("dram_wr_total"),
		REF: o.Counter("dram_ref_total"),
	}
}

// NewChannel validates cfg and returns a fresh channel model.
func NewChannel(cfg Config) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ch := &Channel{cfg: cfg, busBusyUntil: 0, lastIssue: infinitePast}
	g := cfg.Geometry
	ch.banks = make([][][]bankState, g.Ranks)
	ch.groups = make([][]groupState, g.Ranks)
	ch.ranks = make([]rankState, g.Ranks)
	for r := range ch.banks {
		ch.banks[r] = make([][]bankState, g.BankGroups)
		ch.groups[r] = make([]groupState, g.BankGroups)
		for bg := range ch.banks[r] {
			ch.banks[r][bg] = make([]bankState, g.BanksPerGroup)
			for b := range ch.banks[r][bg] {
				ch.banks[r][bg][b] = bankState{nextACT: 0, nextPRE: 0, nextCAS: 0}
			}
		}
		for i := range ch.ranks[r].faw {
			ch.ranks[r].faw[i] = infinitePast
		}
	}
	return ch, nil
}

// Config returns the channel's device configuration.
func (ch *Channel) Config() Config { return ch.cfg }

// Snapshot implements snap.Snapshotter: every bank/group/rank timing
// register plus the bus state, walked in fixed geometry order so the
// encoding is deterministic. The geometry itself is configuration and is
// not serialized — Restore decodes into the structure NewChannel built.
func (ch *Channel) Snapshot(w *snap.Writer) {
	for r := range ch.banks {
		for bg := range ch.banks[r] {
			for b := range ch.banks[r][bg] {
				bs := &ch.banks[r][bg][b]
				w.Bool(bs.open)
				w.Int(bs.row)
				w.I64(bs.nextACT)
				w.I64(bs.nextPRE)
				w.I64(bs.nextCAS)
			}
			gs := &ch.groups[r][bg]
			w.I64(gs.nextACT)
			w.I64(gs.nextRD)
			w.I64(gs.nextWR)
		}
		rs := &ch.ranks[r]
		w.I64(rs.nextACT)
		w.I64(rs.nextRD)
		w.I64(rs.nextWR)
		for _, f := range rs.faw {
			w.I64(f)
		}
		w.Int(rs.fawIdx)
		w.I64(rs.refBusyUntil)
	}
	w.I64(ch.busBusyUntil)
	w.Bool(ch.last.valid)
	w.I64(ch.last.end)
	w.Int(ch.last.rank)
	w.Int(ch.last.group)
	w.Bool(ch.last.write)
	w.I64(ch.lastIssue)
}

// Restore implements snap.Snapshotter.
func (ch *Channel) Restore(r *snap.Reader) error {
	for rk := range ch.banks {
		for bg := range ch.banks[rk] {
			for b := range ch.banks[rk][bg] {
				bs := &ch.banks[rk][bg][b]
				bs.open = r.Bool()
				bs.row = r.Int()
				bs.nextACT = r.I64()
				bs.nextPRE = r.I64()
				bs.nextCAS = r.I64()
			}
			gs := &ch.groups[rk][bg]
			gs.nextACT = r.I64()
			gs.nextRD = r.I64()
			gs.nextWR = r.I64()
		}
		rs := &ch.ranks[rk]
		rs.nextACT = r.I64()
		rs.nextRD = r.I64()
		rs.nextWR = r.I64()
		for i := range rs.faw {
			rs.faw[i] = r.I64()
		}
		rs.fawIdx = r.Int()
		rs.refBusyUntil = r.I64()
	}
	ch.busBusyUntil = r.I64()
	ch.last.valid = r.Bool()
	ch.last.end = r.I64()
	ch.last.rank = r.Int()
	ch.last.group = r.Int()
	ch.last.write = r.Bool()
	ch.lastIssue = r.I64()
	return r.Err()
}

// OpenRow reports the open row of a bank, if any.
func (ch *Channel) OpenRow(rank, group, bank int) (int, bool) {
	b := &ch.banks[rank][group][bank]
	return b.row, b.open
}

// BusBusyUntil returns the cycle the data bus frees up.
func (ch *Channel) BusBusyUntil() int64 { return ch.busBusyUntil }

// columnLatency returns command-to-first-beat latency for a column command.
func (ch *Channel) columnLatency(c Command) int64 {
	t := &ch.cfg.Timing
	if c.Kind == RD {
		return int64(t.CL + c.ExtraCAS)
	}
	return int64(t.WL + c.ExtraCAS)
}

// turnaroundGap returns the minimum idle bus cycles required between the
// previous burst and a new burst of the given rank/direction (Section 3.1's
// bus-turnaround constraints: tRTRS on rank switches and direction changes).
func (ch *Channel) turnaroundGap(rank int, write bool) int64 {
	if !ch.last.valid {
		return 0
	}
	if ch.last.rank == rank && ch.last.write == write {
		return 0
	}
	return int64(ch.cfg.Timing.RTRS)
}

// anchorOffset returns the full start-to-start offset A such that the new
// burst's data may not begin before prevEnd+A, counting only constraints
// anchored to the end of the previous burst (the ones that move if the
// previous burst is extended). This is the quantity the slack of Figure 6
// is measured against.
func (ch *Channel) anchorOffset(c Command) int64 {
	a := ch.turnaroundGap(c.Rank, c.Kind == WR)
	if ch.last.valid && ch.last.write && c.Kind == RD && ch.last.rank == c.Rank {
		// tWTR runs from the end of write data to the read command; the
		// read's data trails by CL, so the data-to-data offset is WTR+CL.
		wtr := ch.cfg.Timing.WTRS
		if ch.last.group == c.Group {
			wtr = ch.cfg.Timing.WTRL
		}
		if w := int64(wtr) + ch.columnLatency(c); w > a {
			a = w
		}
	}
	return a
}

// EarliestIssue returns the earliest cycle >= now at which cmd meets every
// timing constraint. For RD/WR the bank must hold the command's row open;
// for ACT it must be closed; violations panic since the controller owns
// bank-state sequencing.
func (ch *Channel) EarliestIssue(cmd Command, now int64) int64 {
	bank := &ch.banks[cmd.Rank][cmd.Group][cmd.Bank]
	group := &ch.groups[cmd.Rank][cmd.Group]
	rank := &ch.ranks[cmd.Rank]
	t := max(now, rank.refBusyUntil)

	switch cmd.Kind {
	case ACT:
		if bank.open {
			panic(fmt.Sprintf("dram: ACT to open bank %v", cmd))
		}
		t = max(t, bank.nextACT, group.nextACT, rank.nextACT)
		t = max(t, rank.faw[rank.fawIdx]+int64(ch.cfg.Timing.FAW))
	case PRE:
		t = max(t, bank.nextPRE)
	case RD, WR:
		if !bank.open || bank.row != cmd.Row {
			panic(fmt.Sprintf("dram: %v to bank with row %d open=%v", cmd, bank.row, bank.open))
		}
		t = max(t, bank.nextCAS)
		if cmd.Kind == RD {
			t = max(t, group.nextRD, rank.nextRD)
		} else {
			t = max(t, group.nextWR, rank.nextWR)
		}
		// Data-bus availability plus turnaround bubble.
		lat := ch.columnLatency(cmd)
		gap := ch.turnaroundGap(cmd.Rank, cmd.Kind == WR)
		if earliestData := ch.busBusyUntil + gap; t+lat < earliestData {
			t = earliestData - lat
		}
	case REF:
		for bg := range ch.banks[cmd.Rank] {
			for b := range ch.banks[cmd.Rank][bg] {
				bs := &ch.banks[cmd.Rank][bg][b]
				if bs.open {
					panic(fmt.Sprintf("dram: REF r%d with bank g%d b%d open", cmd.Rank, bg, b))
				}
				t = max(t, bs.nextACT) // tRP from the closing precharge
			}
		}
	default:
		panic(fmt.Sprintf("dram: unknown command kind %v", cmd.Kind))
	}
	return t
}

// BurstInfo describes the data transfer a column command produced, plus the
// bookkeeping the controller needs for the Figure 4-6 statistics.
type BurstInfo struct {
	Window  BurstWindow
	PrevEnd int64 // end of the previous burst on this bus, -1 if none
	Anchor  int64 // minimum start-to-start offset from PrevEnd (slack base)
}

// Issue applies cmd at cycle t, which must be >= EarliestIssue(cmd, t); the
// model re-checks and panics on violations so scheduler bugs surface
// immediately. For column commands it returns the data-burst window.
func (ch *Channel) Issue(cmd Command, t int64) BurstInfo {
	if e := ch.EarliestIssue(cmd, t); t < e {
		panic(fmt.Sprintf("dram: %v issued at %d before earliest %d", cmd, t, e))
	}
	if t < ch.lastIssue {
		panic(fmt.Sprintf("dram: %v issued at %d before previous command at %d", cmd, t, ch.lastIssue))
	}
	ch.lastIssue = t
	if ch.cmds != nil {
		ch.cmds[cmd.Kind].Inc()
	}

	tm := &ch.cfg.Timing
	bank := &ch.banks[cmd.Rank][cmd.Group][cmd.Bank]
	group := &ch.groups[cmd.Rank][cmd.Group]
	rank := &ch.ranks[cmd.Rank]
	info := BurstInfo{PrevEnd: -1}

	switch cmd.Kind {
	case ACT:
		bank.open = true
		bank.row = cmd.Row
		bank.nextCAS = max(bank.nextCAS, t+int64(tm.RCD))
		bank.nextPRE = max(bank.nextPRE, t+int64(tm.RAS))
		bank.nextACT = max(bank.nextACT, t+int64(tm.RC))
		group.nextACT = max(group.nextACT, t+int64(tm.RRDL))
		rank.nextACT = max(rank.nextACT, t+int64(tm.RRDS))
		rank.faw[rank.fawIdx] = t
		rank.fawIdx = (rank.fawIdx + 1) % len(rank.faw)

	case PRE:
		bank.open = false
		bank.nextACT = max(bank.nextACT, t+int64(tm.RP))

	case RD, WR:
		if cmd.Beats < 2 || cmd.Beats%2 != 0 {
			panic(fmt.Sprintf("dram: burst of %d beats", cmd.Beats))
		}
		start := t + ch.columnLatency(cmd)
		end := start + int64(cmd.Beats/2)
		if ch.last.valid {
			info.PrevEnd = ch.last.end
			info.Anchor = ch.anchorOffset(cmd)
		}
		info.Window = BurstWindow{Start: start, End: end}

		if cmd.Kind == RD {
			bank.nextPRE = max(bank.nextPRE, t+int64(tm.RTP))
		} else {
			bank.nextPRE = max(bank.nextPRE, end+int64(tm.WR))
			// tWTR: end of write data to any read command in the rank.
			group.nextRD = max(group.nextRD, end+int64(tm.WTRL))
			rank.nextRD = max(rank.nextRD, end+int64(tm.WTRS))
		}
		group.nextRD = max(group.nextRD, t+int64(tm.CCDL))
		group.nextWR = max(group.nextWR, t+int64(tm.CCDL))
		rank.nextRD = max(rank.nextRD, t+int64(tm.CCDS))
		rank.nextWR = max(rank.nextWR, t+int64(tm.CCDS))

		ch.busBusyUntil = end
		ch.last = lastBurst{valid: true, end: end, rank: cmd.Rank, group: cmd.Group, write: cmd.Kind == WR}

	case REF:
		rank.refBusyUntil = t + int64(tm.RFC)

	default:
		panic(fmt.Sprintf("dram: unknown command kind %v", cmd.Kind))
	}
	return info
}
