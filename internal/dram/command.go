package dram

import "fmt"

// Kind enumerates DRAM commands.
type Kind int

// Command kinds.
const (
	ACT Kind = iota // activate a row
	PRE             // precharge a bank
	RD              // column read
	WR              // column write
	REF             // refresh one rank (all banks)
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case ACT:
		return "ACT"
	case PRE:
		return "PRE"
	case RD:
		return "RD"
	case WR:
		return "WR"
	case REF:
		return "REF"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsColumn reports whether the command transfers data.
func (k Kind) IsColumn() bool { return k == RD || k == WR }

// Command is one DRAM command. Row is only meaningful for ACT; Beats and
// ExtraCAS only for column commands. Beats is the burst length in data
// beats (8 for the BL8 baseline, 10 for MiLC/CAFO, 16 for 3-LWC); ExtraCAS
// is the codec latency added to CL/WL (Section 4.4).
type Command struct {
	Kind     Kind
	Rank     int
	Group    int
	Bank     int
	Row      int
	Beats    int
	ExtraCAS int
}

// String implements fmt.Stringer.
func (c Command) String() string {
	switch c.Kind {
	case ACT:
		return fmt.Sprintf("ACT r%d g%d b%d row%d", c.Rank, c.Group, c.Bank, c.Row)
	case RD, WR:
		return fmt.Sprintf("%s r%d g%d b%d bl%d", c.Kind, c.Rank, c.Group, c.Bank, c.Beats)
	case REF:
		return fmt.Sprintf("REF r%d", c.Rank)
	}
	return fmt.Sprintf("%s r%d g%d b%d", c.Kind, c.Rank, c.Group, c.Bank)
}

// BurstWindow describes the data-bus occupancy a column command produced:
// [Start, End) in DRAM cycles.
type BurstWindow struct {
	Start int64
	End   int64
}

// Cycles returns the bus occupancy length.
func (w BurstWindow) Cycles() int64 { return w.End - w.Start }
