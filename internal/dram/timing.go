// Package dram models the DRAM devices behind one channel at cycle
// granularity: banks, bank groups, and ranks with the full DDR4/LPDDR3
// timing-constraint set of Table 2, variable burst lengths (the dynamic
// burst-length feature of Section 4.4), data-bus occupancy and turnaround
// tracking, and refresh. The memory controller (package memctrl) drives it
// through two queries: the earliest cycle a command could issue, and the
// state update when it does issue.
package dram

import "fmt"

// Timing holds the DDRx timing constraints in DRAM clock cycles, named as
// in Table 2. The _S/_L suffixes are the DDR4 bank-group-dependent pairs
// (same value for LPDDR3, which has no bank groups).
type Timing struct {
	CL   int // CAS latency: read command to first data beat
	WL   int // write latency: write command to first data beat
	CCDS int // CAS-to-CAS, different bank group
	CCDL int // CAS-to-CAS, same bank group
	RC   int // ACT-to-ACT, same bank
	RTP  int // read to precharge
	RP   int // precharge to ACT
	RCD  int // ACT to column command
	RAS  int // ACT to precharge
	WR   int // write recovery: end of write data to precharge
	RTRS int // rank-to-rank (and read/write turnaround) bus bubble
	WTRS int // end of write data to read command, different bank group
	WTRL int // end of write data to read command, same bank group
	RRDS int // ACT-to-ACT, different bank group
	RRDL int // ACT-to-ACT, same bank group
	FAW  int // four-activate window
	REFI int // average refresh interval
	RFC  int // refresh cycle time
}

// Validate reports the first nonsensical field, used by config loaders.
func (t *Timing) Validate() error {
	type field struct {
		name string
		v    int
	}
	for _, f := range []field{
		{"CL", t.CL}, {"WL", t.WL}, {"CCD_S", t.CCDS}, {"CCD_L", t.CCDL},
		{"RC", t.RC}, {"RTP", t.RTP}, {"RP", t.RP}, {"RCD", t.RCD},
		{"RAS", t.RAS}, {"WR", t.WR}, {"RTRS", t.RTRS}, {"WTR_S", t.WTRS},
		{"WTR_L", t.WTRL}, {"RRD_S", t.RRDS}, {"RRD_L", t.RRDL},
		{"FAW", t.FAW}, {"REFI", t.REFI}, {"RFC", t.RFC},
	} {
		if f.v <= 0 {
			return fmt.Errorf("dram: timing %s = %d must be positive", f.name, f.v)
		}
	}
	if t.CCDL < t.CCDS || t.RRDL < t.RRDS || t.WTRL < t.WTRS {
		return fmt.Errorf("dram: same-bank-group constraints must dominate (_L >= _S)")
	}
	return nil
}

// Geometry describes the channel organization.
type Geometry struct {
	Ranks         int
	BankGroups    int // 1 when the standard has no bank groups (LPDDR3)
	BanksPerGroup int
	PageBytes     int // row-buffer size per rank
	LineBytes     int // cache-block size moved per column command
	Rows          int
}

// Banks returns the total banks per rank.
func (g *Geometry) Banks() int { return g.BankGroups * g.BanksPerGroup }

// LinesPerPage returns the column commands a row buffer can serve.
func (g *Geometry) LinesPerPage() int { return g.PageBytes / g.LineBytes }

// Validate reports configuration errors.
func (g *Geometry) Validate() error {
	switch {
	case g.Ranks <= 0:
		return fmt.Errorf("dram: ranks = %d", g.Ranks)
	case g.BankGroups <= 0 || g.BanksPerGroup <= 0:
		return fmt.Errorf("dram: bank groups %dx%d", g.BankGroups, g.BanksPerGroup)
	case g.LineBytes <= 0 || g.PageBytes < g.LineBytes || g.PageBytes%g.LineBytes != 0:
		return fmt.Errorf("dram: page %dB / line %dB", g.PageBytes, g.LineBytes)
	case g.Rows <= 0:
		return fmt.Errorf("dram: rows = %d", g.Rows)
	}
	return nil
}

// Config is one channel's device configuration.
type Config struct {
	Name     string
	Timing   Timing
	Geometry Geometry
	// ClockNS is the DRAM clock period in nanoseconds (data moves at 2x).
	ClockNS float64
}

// Validate checks both sub-configs.
func (c *Config) Validate() error {
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.ClockNS <= 0 {
		return fmt.Errorf("dram: clock period %v", c.ClockNS)
	}
	return nil
}

// DDR4_3200 returns the server-system device config of Table 2: DDR4-3200,
// 2 ranks, 8 banks in 4 groups, 8KB pages.
func DDR4_3200() Config {
	return Config{
		Name: "DDR4-3200",
		Timing: Timing{
			CL: 20, WL: 16, CCDS: 4, CCDL: 8, RC: 72, RTP: 12, RP: 20,
			RCD: 20, RAS: 52, WR: 4, RTRS: 2, WTRS: 4, WTRL: 12,
			RRDS: 9, RRDL: 11, FAW: 48, REFI: 12480, RFC: 416,
		},
		Geometry: Geometry{
			Ranks: 2, BankGroups: 4, BanksPerGroup: 2,
			PageBytes: 8192, LineBytes: 64, Rows: 1 << 15,
		},
		ClockNS: 0.625, // 1600 MHz clock, 3200 MT/s
	}
}

// LPDDR3_1600 returns the mobile-system device config of Table 2:
// LPDDR3-1600, 2 ranks, 8 banks (no bank groups), 4KB pages.
func LPDDR3_1600() Config {
	return Config{
		Name: "LPDDR3-1600",
		Timing: Timing{
			CL: 12, WL: 6, CCDS: 4, CCDL: 4, RC: 51, RTP: 6, RP: 16,
			RCD: 15, RAS: 34, WR: 6, RTRS: 1, WTRS: 6, WTRL: 6,
			RRDS: 8, RRDL: 8, FAW: 40, REFI: 3120, RFC: 104,
		},
		Geometry: Geometry{
			Ranks: 2, BankGroups: 1, BanksPerGroup: 8,
			PageBytes: 4096, LineBytes: 64, Rows: 1 << 15,
		},
		ClockNS: 1.25, // 800 MHz clock, 1600 MT/s
	}
}
