package dram

import (
	"math/rand"
	"testing"
)

// TestRandomCommandStress drives the channel with tens of thousands of
// randomly chosen legal commands and checks global invariants the
// per-constraint unit tests cannot see: data-burst windows never overlap,
// burst ordering follows issue ordering, rank/direction switches always
// leave the turnaround bubble, and bank state stays consistent.
func TestRandomCommandStress(t *testing.T) {
	for _, cfg := range []Config{DDR4_3200(), LPDDR3_1600()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			ch, err := NewChannel(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(12345))
			g := cfg.Geometry

			type bankKey struct{ r, bg, b int }
			open := map[bankKey]int{} // open row per bank

			var lastEnd int64
			var lastRank int
			var lastWrite bool
			var haveBurst bool
			now := int64(0)

			for step := 0; step < 30000; step++ {
				// Pick a random bank and a legal command for its state.
				key := bankKey{rng.Intn(g.Ranks), rng.Intn(g.BankGroups), rng.Intn(g.BanksPerGroup)}
				row, isOpen := open[key]
				var cmd Command
				switch {
				case !isOpen:
					cmd = Command{Kind: ACT, Rank: key.r, Group: key.bg, Bank: key.b, Row: rng.Intn(64)}
				case rng.Intn(5) == 0:
					cmd = Command{Kind: PRE, Rank: key.r, Group: key.bg, Bank: key.b}
				default:
					kind := RD
					if rng.Intn(3) == 0 {
						kind = WR
					}
					beats := []int{8, 10, 14, 16}[rng.Intn(4)]
					cmd = Command{Kind: kind, Rank: key.r, Group: key.bg, Bank: key.b, Row: row, Beats: beats}
				}

				at := ch.EarliestIssue(cmd, now)
				if at < now {
					t.Fatalf("step %d: earliest %d before now %d", step, at, now)
				}
				info := ch.Issue(cmd, at)
				now = at // commands issue in nondecreasing time

				switch cmd.Kind {
				case ACT:
					open[key] = cmd.Row
				case PRE:
					delete(open, key)
				case RD, WR:
					w := info.Window
					if w.End-w.Start != int64(cmd.Beats/2) {
						t.Fatalf("step %d: window %v for %d beats", step, w, cmd.Beats)
					}
					if haveBurst {
						if w.Start < lastEnd {
							t.Fatalf("step %d: burst [%d,%d) overlaps previous end %d",
								step, w.Start, w.End, lastEnd)
						}
						switchGap := int64(0)
						if lastRank != cmd.Rank || lastWrite != (cmd.Kind == WR) {
							switchGap = int64(cfg.Timing.RTRS)
						}
						if w.Start < lastEnd+switchGap {
							t.Fatalf("step %d: turnaround violated: start %d, prev end %d, need gap %d",
								step, w.Start, lastEnd, switchGap)
						}
						if info.PrevEnd != lastEnd {
							t.Fatalf("step %d: PrevEnd %d, want %d", step, info.PrevEnd, lastEnd)
						}
					}
					lastEnd, lastRank, lastWrite, haveBurst = w.End, cmd.Rank, cmd.Kind == WR, true
				}

				// Occasionally advance time and run refreshes.
				if rng.Intn(100) == 0 {
					now += int64(rng.Intn(200))
				}
				if rng.Intn(1000) == 0 {
					// Close everything and refresh a rank.
					r := rng.Intn(g.Ranks)
					for bg := 0; bg < g.BankGroups; bg++ {
						for b := 0; b < g.BanksPerGroup; b++ {
							k := bankKey{r, bg, b}
							if _, ok := open[k]; ok {
								pre := Command{Kind: PRE, Rank: r, Group: bg, Bank: b}
								at := ch.EarliestIssue(pre, now)
								ch.Issue(pre, at)
								now = at
								delete(open, k)
							}
						}
					}
					ref := Command{Kind: REF, Rank: r}
					at := ch.EarliestIssue(ref, now)
					ch.Issue(ref, at)
					now = at
				}
			}
		})
	}
}

// TestStressDeterminism re-runs a shorter stress sequence and checks the
// final timing state is identical (the model has no hidden nondeterminism).
func TestStressDeterminism(t *testing.T) {
	run := func() int64 {
		ch, err := NewChannel(DDR4_3200())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		now := int64(0)
		openRow := -1
		for i := 0; i < 5000; i++ {
			var cmd Command
			if openRow < 0 {
				openRow = rng.Intn(32)
				cmd = Command{Kind: ACT, Rank: 0, Group: rng.Intn(4), Bank: 0, Row: openRow}
				// keep a single bank-group-0 row model simple: use group 0 only
				cmd.Group = 0
			} else if rng.Intn(6) == 0 {
				cmd = Command{Kind: PRE, Rank: 0, Group: 0, Bank: 0}
				openRow = -1
			} else {
				cmd = Command{Kind: RD, Rank: 0, Group: 0, Bank: 0, Row: openRow, Beats: 8}
			}
			at := ch.EarliestIssue(cmd, now)
			ch.Issue(cmd, at)
			now = at
		}
		return now
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("final times differ: %d vs %d", a, b)
	}
}
