package dram

import (
	"strings"
	"testing"
)

func newDDR4(t *testing.T) *Channel {
	t.Helper()
	ch, err := NewChannel(DDR4_3200())
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func newLPDDR3(t *testing.T) *Channel {
	t.Helper()
	ch, err := NewChannel(LPDDR3_1600())
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func act(r, g, b, row int) Command { return Command{Kind: ACT, Rank: r, Group: g, Bank: b, Row: row} }
func rd(r, g, b, row, beats int) Command {
	return Command{Kind: RD, Rank: r, Group: g, Bank: b, Row: row, Beats: beats}
}
func wr(r, g, b, row, beats int) Command {
	return Command{Kind: WR, Rank: r, Group: g, Bank: b, Row: row, Beats: beats}
}
func pre(r, g, b int) Command { return Command{Kind: PRE, Rank: r, Group: g, Bank: b} }

func TestConfigPresetsValid(t *testing.T) {
	for _, cfg := range []Config{DDR4_3200(), LPDDR3_1600()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestConfigValidationCatchesBadFields(t *testing.T) {
	cfg := DDR4_3200()
	cfg.Timing.CL = 0
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "CL") {
		t.Errorf("zero CL accepted: %v", err)
	}
	cfg = DDR4_3200()
	cfg.Timing.CCDL = cfg.Timing.CCDS - 1
	if err := cfg.Validate(); err == nil {
		t.Error("CCD_L < CCD_S accepted")
	}
	cfg = DDR4_3200()
	cfg.Geometry.PageBytes = 100 // not a multiple of the line size
	if err := cfg.Validate(); err == nil {
		t.Error("ragged page size accepted")
	}
	cfg = DDR4_3200()
	cfg.ClockNS = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero clock accepted")
	}
}

func TestGeometryDerived(t *testing.T) {
	g := DDR4_3200().Geometry
	if g.Banks() != 8 {
		t.Errorf("banks = %d, want 8", g.Banks())
	}
	if g.LinesPerPage() != 128 {
		t.Errorf("lines/page = %d, want 128", g.LinesPerPage())
	}
}

func TestActToReadHonorsRCD(t *testing.T) {
	ch := newDDR4(t)
	ch.Issue(act(0, 0, 0, 5), 0)
	cmd := rd(0, 0, 0, 5, 8)
	if got := ch.EarliestIssue(cmd, 0); got != int64(ch.cfg.Timing.RCD) {
		t.Fatalf("earliest RD = %d, want tRCD=%d", got, ch.cfg.Timing.RCD)
	}
}

func TestReadDataWindow(t *testing.T) {
	ch := newDDR4(t)
	ch.Issue(act(0, 0, 0, 5), 0)
	info := ch.Issue(rd(0, 0, 0, 5, 8), 20)
	wantStart := int64(20 + ch.cfg.Timing.CL)
	if info.Window.Start != wantStart || info.Window.End != wantStart+4 {
		t.Fatalf("window = %+v, want [%d,%d)", info.Window, wantStart, wantStart+4)
	}
	if info.PrevEnd != -1 {
		t.Fatalf("first burst PrevEnd = %d, want -1", info.PrevEnd)
	}
}

func TestExtraCASDelaysData(t *testing.T) {
	ch := newDDR4(t)
	ch.Issue(act(0, 0, 0, 5), 0)
	cmd := rd(0, 0, 0, 5, 10)
	cmd.ExtraCAS = 1
	info := ch.Issue(cmd, 20)
	wantStart := int64(20 + ch.cfg.Timing.CL + 1)
	if info.Window.Start != wantStart || info.Window.End != wantStart+5 {
		t.Fatalf("window = %+v, want [%d,%d)", info.Window, wantStart, wantStart+5)
	}
}

func TestCCDWithinAndAcrossGroups(t *testing.T) {
	ch := newDDR4(t)
	tm := ch.cfg.Timing
	ch.Issue(act(0, 0, 0, 1), 0)
	ch.Issue(act(0, 0, 1, 1), int64(tm.RRDL))
	ch.Issue(act(0, 1, 0, 1), int64(tm.RRDL+tm.RRDS))
	t0 := int64(100)
	ch.Issue(rd(0, 0, 0, 1, 8), t0)
	// Same group: tCCD_L; the bus is also busy but CCD_L=8 > 4 bus cycles.
	if got := ch.EarliestIssue(rd(0, 0, 1, 1, 8), t0); got != t0+int64(tm.CCDL) {
		t.Fatalf("same-group CAS = %d, want %d", got, t0+int64(tm.CCDL))
	}
	// Different group: tCCD_S=4 equals the BL8 bus occupancy.
	if got := ch.EarliestIssue(rd(0, 1, 0, 1, 8), t0); got != t0+int64(tm.CCDS) {
		t.Fatalf("cross-group CAS = %d, want %d", got, t0+int64(tm.CCDS))
	}
}

func TestLongerBurstOccupiesBusLonger(t *testing.T) {
	ch := newDDR4(t)
	tm := ch.cfg.Timing
	ch.Issue(act(0, 0, 0, 1), 0)
	ch.Issue(act(0, 1, 0, 1), int64(tm.RRDS))
	t0 := int64(100)
	ch.Issue(rd(0, 0, 0, 1, 16), t0) // BL16: 8 bus cycles
	// Cross-group CCD_S would allow t0+4, but the bus holds data until
	// t0+CL+8, so the next read can issue only at t0+8 (back-to-back data).
	got := ch.EarliestIssue(rd(0, 1, 0, 1, 8), t0)
	if got != t0+8 {
		t.Fatalf("earliest after BL16 = %d, want %d", got, t0+8)
	}
	info := ch.Issue(rd(0, 1, 0, 1, 8), got)
	if info.Window.Start != t0+int64(tm.CL)+8 {
		t.Fatalf("second burst start %d, want seamless %d", info.Window.Start, t0+int64(tm.CL)+8)
	}
	if info.Anchor != 0 {
		t.Fatalf("same-rank same-type anchor = %d, want 0", info.Anchor)
	}
}

func TestRankSwitchInsertsRTRS(t *testing.T) {
	ch := newDDR4(t)
	tm := ch.cfg.Timing
	ch.Issue(act(0, 0, 0, 1), 0)
	ch.Issue(act(1, 0, 0, 1), int64(tm.RRDS))
	t0 := int64(100)
	first := ch.Issue(rd(0, 0, 0, 1, 8), t0)
	got := ch.EarliestIssue(rd(1, 0, 0, 1, 8), t0)
	info := ch.Issue(rd(1, 0, 0, 1, 8), got)
	if want := first.Window.End + int64(tm.RTRS); info.Window.Start != want {
		t.Fatalf("cross-rank data starts %d, want %d", info.Window.Start, want)
	}
	if info.Anchor != int64(tm.RTRS) {
		t.Fatalf("anchor = %d, want tRTRS=%d", info.Anchor, tm.RTRS)
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	ch := newDDR4(t)
	tm := ch.cfg.Timing
	ch.Issue(act(0, 0, 0, 1), 0)
	ch.Issue(act(0, 1, 0, 1), int64(tm.RRDS))
	t0 := int64(100)
	winfo := ch.Issue(wr(0, 0, 0, 1, 8), t0)
	wEnd := winfo.Window.End
	// Same group: tWTR_L from end of write data to the read command.
	if got := ch.EarliestIssue(rd(0, 0, 0, 1, 8), t0); got != wEnd+int64(tm.WTRL) {
		t.Fatalf("same-group WTR read = %d, want %d", got, wEnd+int64(tm.WTRL))
	}
	// Different group: tWTR_S.
	if got := ch.EarliestIssue(rd(0, 1, 0, 1, 8), t0); got != wEnd+int64(tm.WTRS) {
		t.Fatalf("cross-group WTR read = %d, want %d", got, wEnd+int64(tm.WTRS))
	}
	info := ch.Issue(rd(0, 1, 0, 1, 8), wEnd+int64(tm.WTRS))
	if want := int64(tm.WTRS) + int64(tm.CL); info.Anchor != want {
		t.Fatalf("write-to-read anchor = %d, want WTR_S+CL=%d", info.Anchor, want)
	}
}

func TestWriteRecoveryDelaysPrecharge(t *testing.T) {
	ch := newDDR4(t)
	tm := ch.cfg.Timing
	ch.Issue(act(0, 0, 0, 1), 0)
	info := ch.Issue(wr(0, 0, 0, 1, 8), 100)
	want := max(info.Window.End+int64(tm.WR), int64(tm.RAS))
	if got := ch.EarliestIssue(pre(0, 0, 0), 0); got != want {
		t.Fatalf("earliest PRE = %d, want %d", got, want)
	}
}

func TestReadToPrechargeHonorsRTP(t *testing.T) {
	ch := newDDR4(t)
	tm := ch.cfg.Timing
	ch.Issue(act(0, 0, 0, 1), 0)
	t0 := int64(60) // past tRAS so RTP is the binding constraint
	ch.Issue(rd(0, 0, 0, 1, 8), t0)
	if got := ch.EarliestIssue(pre(0, 0, 0), t0); got != t0+int64(tm.RTP) {
		t.Fatalf("earliest PRE = %d, want %d", got, t0+int64(tm.RTP))
	}
}

func TestPrechargeToActHonorsRP(t *testing.T) {
	ch := newDDR4(t)
	tm := ch.cfg.Timing
	ch.Issue(act(0, 0, 0, 1), 0)
	preAt := int64(tm.RAS)
	ch.Issue(pre(0, 0, 0), preAt)
	want := max(preAt+int64(tm.RP), int64(tm.RC))
	if got := ch.EarliestIssue(act(0, 0, 0, 2), 0); got != want {
		t.Fatalf("earliest re-ACT = %d, want %d", got, want)
	}
}

func TestRRDWithinAndAcrossGroups(t *testing.T) {
	ch := newDDR4(t)
	tm := ch.cfg.Timing
	ch.Issue(act(0, 0, 0, 1), 0)
	if got := ch.EarliestIssue(act(0, 0, 1, 1), 0); got != int64(tm.RRDL) {
		t.Fatalf("same-group ACT = %d, want tRRD_L=%d", got, tm.RRDL)
	}
	if got := ch.EarliestIssue(act(0, 1, 0, 1), 0); got != int64(tm.RRDS) {
		t.Fatalf("cross-group ACT = %d, want tRRD_S=%d", got, tm.RRDS)
	}
	// Other rank: unconstrained by RRD.
	if got := ch.EarliestIssue(act(1, 0, 0, 1), 0); got != 0 {
		t.Fatalf("other-rank ACT = %d, want 0", got)
	}
}

func TestFourActivateWindow(t *testing.T) {
	ch := newDDR4(t)
	tm := ch.cfg.Timing
	// Four ACTs as fast as RRD allows, spread over both groups' banks.
	times := []int64{0, 0, 0, 0}
	cmds := []Command{act(0, 0, 0, 1), act(0, 1, 0, 1), act(0, 2, 0, 1), act(0, 3, 0, 1)}
	now := int64(0)
	for i, c := range cmds {
		now = ch.EarliestIssue(c, now)
		ch.Issue(c, now)
		times[i] = now
	}
	fifth := act(0, 0, 1, 1)
	got := ch.EarliestIssue(fifth, now)
	if want := times[0] + int64(tm.FAW); got != want {
		t.Fatalf("fifth ACT = %d, want FAW-bound %d", got, want)
	}
}

func TestRefreshBlocksRank(t *testing.T) {
	ch := newDDR4(t)
	tm := ch.cfg.Timing
	ch.Issue(Command{Kind: REF, Rank: 0}, 10)
	if got := ch.EarliestIssue(act(0, 0, 0, 1), 0); got != 10+int64(tm.RFC) {
		t.Fatalf("ACT during refresh = %d, want %d", got, 10+int64(tm.RFC))
	}
	// The other rank is unaffected.
	if got := ch.EarliestIssue(act(1, 0, 0, 1), 0); got != 0 {
		t.Fatalf("other-rank ACT = %d, want 0", got)
	}
}

func TestRefreshRequiresClosedBanks(t *testing.T) {
	ch := newDDR4(t)
	ch.Issue(act(0, 0, 0, 1), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("REF with open bank did not panic")
		}
	}()
	ch.EarliestIssue(Command{Kind: REF, Rank: 0}, 1000)
}

func TestRefreshWaitsForRP(t *testing.T) {
	ch := newDDR4(t)
	tm := ch.cfg.Timing
	ch.Issue(act(0, 0, 0, 1), 0)
	preAt := int64(tm.RAS)
	ch.Issue(pre(0, 0, 0), preAt)
	if got := ch.EarliestIssue(Command{Kind: REF, Rank: 0}, 0); got != preAt+int64(tm.RP) {
		t.Fatalf("REF = %d, want %d", got, preAt+int64(tm.RP))
	}
}

func TestIssueBeforeEarliestPanics(t *testing.T) {
	ch := newDDR4(t)
	ch.Issue(act(0, 0, 0, 1), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ch.Issue(rd(0, 0, 0, 1, 8), 1) // before tRCD
}

func TestColumnToClosedBankPanics(t *testing.T) {
	ch := newDDR4(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ch.EarliestIssue(rd(0, 0, 0, 1, 8), 0)
}

func TestActToOpenBankPanics(t *testing.T) {
	ch := newDDR4(t)
	ch.Issue(act(0, 0, 0, 1), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ch.EarliestIssue(act(0, 0, 0, 2), 1000)
}

func TestOddBurstPanics(t *testing.T) {
	ch := newDDR4(t)
	ch.Issue(act(0, 0, 0, 1), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ch.Issue(rd(0, 0, 0, 1, 9), 100)
}

func TestOpenRowTracking(t *testing.T) {
	ch := newDDR4(t)
	if _, open := ch.OpenRow(0, 0, 0); open {
		t.Fatal("bank open at reset")
	}
	ch.Issue(act(0, 0, 0, 7), 0)
	row, open := ch.OpenRow(0, 0, 0)
	if !open || row != 7 {
		t.Fatalf("open row = %d/%v, want 7/true", row, open)
	}
	ch.Issue(pre(0, 0, 0), int64(ch.cfg.Timing.RAS))
	if _, open := ch.OpenRow(0, 0, 0); open {
		t.Fatal("bank still open after PRE")
	}
}

func TestLPDDR3SingleGroupSymmetric(t *testing.T) {
	ch := newLPDDR3(t)
	tm := ch.cfg.Timing
	ch.Issue(act(0, 0, 0, 1), 0)
	if got := ch.EarliestIssue(act(0, 0, 1, 1), 0); got != int64(tm.RRDL) {
		t.Fatalf("LPDDR3 ACT-to-ACT = %d, want %d", got, tm.RRDL)
	}
	ch.Issue(act(0, 0, 1, 1), int64(tm.RRDL))
	t0 := int64(50)
	ch.Issue(rd(0, 0, 0, 1, 8), t0)
	if got := ch.EarliestIssue(rd(0, 0, 1, 1, 8), t0); got != t0+int64(tm.CCDL) {
		t.Fatalf("LPDDR3 CAS-to-CAS = %d, want %d", got, t0+int64(tm.CCDL))
	}
}

func TestCommandStrings(t *testing.T) {
	cases := map[string]Command{
		"ACT r0 g1 b2 row3": act(0, 1, 2, 3),
		"RD r1 g0 b0 bl10":  rd(1, 0, 0, 9, 10),
		"WR r0 g2 b1 bl16":  wr(0, 2, 1, 4, 16),
		"REF r1":            {Kind: REF, Rank: 1},
		"PRE r0 g0 b3":      pre(0, 0, 3),
	}
	for want, cmd := range cases {
		if got := cmd.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if !RD.IsColumn() || !WR.IsColumn() || ACT.IsColumn() || PRE.IsColumn() || REF.IsColumn() {
		t.Error("IsColumn misclassifies")
	}
}

func TestBurstWindowCycles(t *testing.T) {
	w := BurstWindow{Start: 10, End: 15}
	if w.Cycles() != 5 {
		t.Fatalf("cycles = %d", w.Cycles())
	}
}
