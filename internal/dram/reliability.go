package dram

import "fmt"

// Reliability models the DDR4 RAS features the link-level fault story
// rests on: write CRC (JEDEC DDR4 optional feature: the controller appends
// a per-device CRC to every write burst, the device checks it and pulls
// ALERT_n low on mismatch) and command/address parity (the device checks
// even parity over the CA bus and rejects the command, again via ALERT_n).
// Both are NACK-and-replay mechanisms - the device never applies a transfer
// it flagged - so the controller's retry path (package memctrl) drives
// recovery. All latencies are in DRAM clock cycles, following the Table 2
// idiom of expressing the spec's nanosecond windows in cycles of the
// modeled device.
type Reliability struct {
	// WriteCRC enables per-write CRC: every write burst is extended by
	// CRCExtraBeats beats carrying each chip's CRC-8.
	WriteCRC bool
	// CRCExtraBeats is the burst-length overhead of write CRC. JEDEC
	// extends BL8 to BL10 - two extra beats - and the same two beats cover
	// the longer MiL bursts here (0 selects the default of 2).
	CRCExtraBeats int
	// CRCAlertCycles is the delay from the end of a bad write burst to the
	// controller observing ALERT_n (tCRC_ALERT, roughly 3-13ns; ~16 cycles
	// at DDR4-3200).
	CRCAlertCycles int

	// CAParity enables command/address parity checking.
	CAParity bool
	// CABits is the number of command/address bits covered per command
	// (DDR4 parity covers ACT_n, RAS/CAS/WE and the address pins; ~26
	// signals; 0 selects the default of 26).
	CABits int
	// CAAlertCycles is the delay from a rejected command to the controller
	// observing ALERT_n (tPAR_ALERT_ON plus recovery; ~24 cycles at
	// DDR4-3200).
	CAAlertCycles int
}

// Enabled reports whether any reliability feature is on.
func (r *Reliability) Enabled() bool { return r.WriteCRC || r.CAParity }

// ExtraWriteBeats returns the burst-length overhead writes pay, with the
// default applied; zero when write CRC is off.
func (r *Reliability) ExtraWriteBeats() int {
	if !r.WriteCRC {
		return 0
	}
	if r.CRCExtraBeats <= 0 {
		return 2
	}
	return r.CRCExtraBeats
}

// CommandBits returns the CA bits covered per command, with the default
// applied; zero when CA parity is off.
func (r *Reliability) CommandBits() int {
	if !r.CAParity {
		return 0
	}
	if r.CABits <= 0 {
		return 26
	}
	return r.CABits
}

// Validate reports configuration errors.
func (r *Reliability) Validate() error {
	switch {
	case r.CRCExtraBeats < 0 || r.CRCExtraBeats%2 != 0:
		return fmt.Errorf("dram: CRC extra beats %d must be even and >= 0", r.CRCExtraBeats)
	case r.CRCAlertCycles < 0:
		return fmt.Errorf("dram: CRC alert latency %d < 0", r.CRCAlertCycles)
	case r.CABits < 0:
		return fmt.Errorf("dram: CA bits %d < 0", r.CABits)
	case r.CAAlertCycles < 0:
		return fmt.Errorf("dram: CA alert latency %d < 0", r.CAAlertCycles)
	}
	return nil
}

// DDR4Reliability returns the evaluated DDR4-3200 RAS configuration: write
// CRC with the JEDEC two-beat overhead and CA parity, with alert windows
// expressed in DDR4-3200 cycles.
func DDR4Reliability() Reliability {
	return Reliability{
		WriteCRC: true, CRCExtraBeats: 2, CRCAlertCycles: 16,
		CAParity: true, CABits: 26, CAAlertCycles: 24,
	}
}
