// Package snap is the versioned snapshot layer: a deterministic binary
// encoding (little-endian, fixed field order, maps always serialized in
// sorted key order) inside a self-describing container with a format
// version, a configuration hash, and a CRC-32 trailer. Every stateful
// component of the simulator implements Snapshotter over a Writer/Reader
// pair; internal/sim composes them into one checkpoint file that can
// suspend an in-flight run and resume it bit-identically (DESIGN.md §5.10).
//
// Design rules the format depends on:
//
//   - Encoding is purely positional: no field tags, no lengths except for
//     slices/strings/maps. Version compatibility is therefore all-or-
//     nothing — any layout change bumps Version and old snapshots are
//     rejected rather than misread.
//   - The config hash binds a snapshot to the exact semantic configuration
//     that produced it. Resuming under a different configuration would not
//     crash, it would silently diverge; the hash turns that into a loud
//     error before any state is touched.
//   - The CRC-32 (IEEE) trailer covers header and payload, so truncated or
//     bit-rotted files are rejected with a checksum error instead of being
//     decoded into garbage state.
package snap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// Version is the snapshot format version. Bump it on ANY change to what any
// component serializes or the order it serializes it in; resume rejects
// mismatches.
const Version uint32 = 1

// magic identifies a snapshot file (8 bytes).
var magic = [8]byte{'M', 'I', 'L', 'S', 'N', 'A', 'P', 0}

// Snapshotter is implemented by every stateful component: Snapshot appends
// the component's full mutable state to w; Restore reads it back in the
// same order into an already-constructed component (constructors rebuild
// everything derivable from configuration; Restore only overwrites the
// mutable remainder).
type Snapshotter interface {
	Snapshot(w *Writer)
	Restore(r *Reader) error
}

// Writer accumulates the deterministic binary payload. The zero value is
// ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends an int64 (two's complement, little-endian).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as an int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 appends a float64 by its IEEE-754 bit pattern (exact round trip).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Len appends a slice/map length. Negative lengths are a programming error.
func (w *Writer) Len(n int) {
	if n < 0 {
		panic("snap: negative length")
	}
	w.U64(uint64(n))
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Len(len(s))
	w.buf = append(w.buf, s...)
}

// Bytes64 appends a fixed 64-byte block (no length prefix).
func (w *Writer) Bytes64(b *[64]byte) { w.buf = append(w.buf, b[:]...) }

// I64s appends a length-prefixed []int64.
func (w *Writer) I64s(vs []int64) {
	w.Len(len(vs))
	for _, v := range vs {
		w.I64(v)
	}
}

// Reader decodes a payload written by Writer, in the same order. Errors are
// sticky: after the first failure every read returns zero values and Err
// reports the failure, so decode sequences need a single check at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a payload.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// fail records the first error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: "+format, args...)
	}
}

// take returns the next n bytes, or nil after a failure.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail("payload truncated at offset %d (need %d of %d bytes)", r.off, n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Done reports whether the payload was fully consumed; components do not
// call it — the container's decoder uses it to reject trailing garbage.
func (r *Reader) Done() bool { return r.err == nil && r.off == len(r.buf) }

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64 into an int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Len reads a length and bounds it against the remaining payload (each
// element needs at least one byte), so a corrupted length cannot trigger a
// huge allocation.
func (r *Reader) Len() int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("length %d exceeds remaining payload %d", n, len(r.buf)-r.off)
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len()
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes64 reads a fixed 64-byte block.
func (r *Reader) Bytes64(out *[64]byte) {
	b := r.take(64)
	if b != nil {
		copy(out[:], b)
	}
}

// I64s reads a length-prefixed []int64.
func (r *Reader) I64s() []int64 {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.I64()
	}
	return out
}

// headerLen is magic + version + config hash + payload length.
const headerLen = 8 + 4 + 8 + 8

// Container frames payloads for one file format: an 8-byte magic, a format
// version, a 64-bit configuration hash, the payload length, and a CRC-32
// (IEEE) trailer over everything before it. The snapshot layer is one
// instance; other deterministic artifacts (the memory-trace format in
// internal/trace) reuse the identical framing under their own magic and
// version so every format shares the same corruption, truncation,
// version-skew, and config-mismatch rejection behavior.
type Container struct {
	Magic   [8]byte
	Version uint32
	// Name appears in error messages ("not a snapshot file").
	Name string
}

// snapContainer frames checkpoint snapshots (the original format).
var snapContainer = Container{Magic: magic, Version: Version, Name: "snapshot"}

// Encode frames a payload: header (magic, format version, config hash,
// payload length), payload, CRC-32 trailer.
func (c Container) Encode(cfgHash uint64, payload []byte) []byte {
	out := make([]byte, 0, headerLen+len(payload)+4)
	out = append(out, c.Magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, c.Version)
	out = binary.LittleEndian.AppendUint64(out, cfgHash)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// Decode validates a framed file — magic, format version, configuration
// hash, length, CRC — and returns a Reader over its payload. Any mismatch
// is an error before a single byte of content is decoded.
func (c Container) Decode(data []byte, wantHash uint64) (*Reader, error) {
	if len(data) < headerLen+4 {
		return nil, fmt.Errorf("snap: file too short (%d bytes) to be a %s", len(data), c.Name)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("snap: CRC mismatch (file %08x, computed %08x): %s is corrupt or truncated", want, got, c.Name)
	}
	if [8]byte(body[:8]) != c.Magic {
		return nil, fmt.Errorf("snap: bad magic %q: not a %s file", body[:8], c.Name)
	}
	if v := binary.LittleEndian.Uint32(body[8:12]); v != c.Version {
		return nil, fmt.Errorf("snap: %s format version %d, this build reads %d", c.Name, v, c.Version)
	}
	if h := binary.LittleEndian.Uint64(body[12:20]); h != wantHash {
		return nil, fmt.Errorf("snap: config hash %016x does not match this run's %016x: the %s must be used under the exact configuration that wrote it", h, wantHash, c.Name)
	}
	n := binary.LittleEndian.Uint64(body[20:28])
	payload := body[headerLen:]
	if n != uint64(len(payload)) {
		return nil, fmt.Errorf("snap: payload length %d, header says %d", len(payload), n)
	}
	return NewReader(payload), nil
}

// WriteFile atomically writes a framed file: the bytes go to a temporary
// file in the destination directory which is then renamed over path, so a
// crash mid-write can never leave a half-written artifact where a reader
// would find it.
func (c Container) WriteFile(path string, cfgHash uint64, payload []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(c.Encode(cfgHash, payload)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ReadFile reads and validates a framed file.
func (c Container) ReadFile(path string, wantHash uint64) (*Reader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := c.Decode(data, wantHash)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Encode frames a snapshot payload (see Container.Encode).
func Encode(cfgHash uint64, payload []byte) []byte {
	return snapContainer.Encode(cfgHash, payload)
}

// Decode validates a framed snapshot (see Container.Decode).
func Decode(data []byte, wantHash uint64) (*Reader, error) {
	return snapContainer.Decode(data, wantHash)
}

// WriteFile atomically writes a framed snapshot (see Container.WriteFile).
func WriteFile(path string, cfgHash uint64, payload []byte) error {
	return snapContainer.WriteFile(path, cfgHash, payload)
}

// ReadFile reads and validates a snapshot file.
func ReadFile(path string, wantHash uint64) (*Reader, error) {
	return snapContainer.ReadFile(path, wantHash)
}
