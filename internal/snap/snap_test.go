package snap

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriterReaderRoundTrip drives every primitive through an encode/decode
// cycle.
func TestWriterReaderRoundTrip(t *testing.T) {
	var w Writer
	w.U8(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xDEADBEEF)
	w.U64(1<<63 + 12345)
	w.I64(-42)
	w.Int(99)
	w.F64(3.14159)
	w.String("hello")
	w.String("")
	blk := [64]byte{1, 2, 3, 63: 64}
	w.Bytes64(&blk)
	w.I64s([]int64{-1, 0, 7})
	w.I64s(nil)

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xAB {
		t.Errorf("U8 = %x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %x", got)
	}
	if got := r.U64(); got != 1<<63+12345 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 99 {
		t.Errorf("Int = %d", got)
	}
	if got := r.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	var blk2 [64]byte
	r.Bytes64(&blk2)
	if blk2 != blk {
		t.Error("Bytes64 round trip failed")
	}
	vs := r.I64s()
	if len(vs) != 3 || vs[0] != -1 || vs[1] != 0 || vs[2] != 7 {
		t.Errorf("I64s = %v", vs)
	}
	if got := r.I64s(); got != nil {
		t.Errorf("nil I64s = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("reader error: %v", err)
	}
	if !r.Done() {
		t.Error("payload not fully consumed")
	}
}

// TestReaderTruncation checks errors are sticky and reads stay safe.
func TestReaderTruncation(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if got := r.U64(); got != 0 {
		t.Errorf("truncated U64 = %d", got)
	}
	if r.Err() == nil {
		t.Fatal("no error on truncated read")
	}
	// Every later read is a zero-valued no-op.
	if r.I64() != 0 || r.String() != "" || r.Bool() {
		t.Error("reads after error not zero")
	}
}

// TestReaderBogusLength ensures a corrupt length cannot force a giant
// allocation.
func TestReaderBogusLength(t *testing.T) {
	var w Writer
	w.U64(1 << 60) // insane length
	r := NewReader(w.Bytes())
	if n := r.Len(); n != 0 {
		t.Errorf("bogus length decoded to %d", n)
	}
	if r.Err() == nil {
		t.Error("no error on bogus length")
	}
}

// TestContainerRoundTrip exercises the full framed file path.
func TestContainerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.snap")
	var w Writer
	w.String("payload")
	w.I64(777)
	if err := WriteFile(path, 0x1234, w.Bytes()); err != nil {
		t.Fatal(err)
	}
	r, err := ReadFile(path, 0x1234)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.String(); got != "payload" {
		t.Errorf("payload string = %q", got)
	}
	if got := r.I64(); got != 777 {
		t.Errorf("payload i64 = %d", got)
	}
	if !r.Done() {
		t.Error("trailing bytes left")
	}
}

// TestContainerRejections covers hash mismatch, corruption, and truncation.
func TestContainerRejections(t *testing.T) {
	var w Writer
	w.I64(1)
	enc := Encode(0xAAAA, w.Bytes())

	if _, err := Decode(enc, 0xBBBB); err == nil || !strings.Contains(err.Error(), "config hash") {
		t.Errorf("hash mismatch not rejected: %v", err)
	}
	bad := append([]byte(nil), enc...)
	bad[headerLen] ^= 0xFF
	if _, err := Decode(bad, 0xAAAA); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Errorf("corruption not rejected: %v", err)
	}
	if _, err := Decode(enc[:len(enc)-3], 0xAAAA); err == nil {
		t.Error("truncation not rejected")
	}
	if _, err := Decode(nil, 0); err == nil {
		t.Error("empty file not rejected")
	}
	// Version mismatch: bump the version byte and recompute the trailer so
	// only the version check can fail.
	verBad := append([]byte(nil), enc[:len(enc)-4]...)
	verBad[8]++
	verBad = binary.LittleEndian.AppendUint32(verBad, crc32.ChecksumIEEE(verBad))
	if _, err := Decode(verBad, 0xAAAA); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch not rejected: %v", err)
	}
}

// TestCountingSourceMatchesStock proves the wrapper changes no stream: the
// same seed through rand.New produces identical values with and without
// counting.
func TestCountingSourceMatchesStock(t *testing.T) {
	const seed = 987654321
	stock := rand.New(rand.NewSource(seed))
	cs := NewCountingSource(seed)
	counted := rand.New(cs)
	for i := 0; i < 1000; i++ {
		switch i % 4 {
		case 0:
			if a, b := stock.Int63(), counted.Int63(); a != b {
				t.Fatalf("Int63 diverged at %d: %d vs %d", i, a, b)
			}
		case 1:
			if a, b := stock.Float64(), counted.Float64(); a != b {
				t.Fatalf("Float64 diverged at %d: %v vs %v", i, a, b)
			}
		case 2:
			if a, b := stock.Intn(97), counted.Intn(97); a != b {
				t.Fatalf("Intn diverged at %d: %d vs %d", i, a, b)
			}
		case 3:
			if a, b := stock.Int63n(1<<40), counted.Int63n(1<<40); a != b {
				t.Fatalf("Int63n diverged at %d: %d vs %d", i, a, b)
			}
		}
	}
	if cs.Draws() == 0 {
		t.Error("draw count not advancing")
	}
}

// TestCountingSourceSkipReplay proves snapshot-by-replay: a fresh source
// skipped to an old source's draw count continues the identical stream.
func TestCountingSourceSkipReplay(t *testing.T) {
	const seed = 42
	orig := NewCountingSource(seed)
	rng := rand.New(orig)
	for i := 0; i < 500; i++ {
		rng.Float64()
		rng.Intn(1000)
	}
	n := orig.Draws()

	replayed := NewCountingSource(seed)
	replayed.Skip(n)
	rng2 := rand.New(replayed)
	if replayed.Draws() != n {
		t.Fatalf("Skip(%d) left draw count %d", n, replayed.Draws())
	}
	for i := 0; i < 500; i++ {
		if a, b := rng.Float64(), rng2.Float64(); a != b {
			t.Fatalf("Float64 diverged after replay at %d: %v vs %v", i, a, b)
		}
		if a, b := rng.Intn(1000), rng2.Intn(1000); a != b {
			t.Fatalf("Intn diverged after replay at %d", i)
		}
	}
}
