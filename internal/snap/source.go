package snap

import "math/rand"

// CountingSource is a rand.Source64 that counts how many values it has
// produced. math/rand exposes no way to export its generator state, but
// every consumer in the simulator draws through a Source64 whose state
// advances exactly one step per Int63/Uint64 call — so "number of draws
// since seeding" IS the state. A stream is snapshotted as its draw count
// and restored by reseeding and discarding that many draws (replay).
//
// rand.New takes its Source64 fast path for this type, so wrapping the
// stock source changes no stream behavior: seeded runs stay bit-identical
// to runs made before this type existed (the golden tables prove it).
type CountingSource struct {
	src rand.Source64
	n   uint64
}

// NewCountingSource seeds a counting source exactly as rand.NewSource
// would.
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (s *CountingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *CountingSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

// Seed implements rand.Source, restarting the draw count with the state.
func (s *CountingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// Draws returns the number of values produced since seeding.
func (s *CountingSource) Draws() uint64 { return s.n }

// Skip advances the generator by n draws without handing the values out
// (each Uint64 advances the underlying generator exactly one step, the
// same step Int63 takes). After Skip(m) on a freshly seeded source, the
// stream continues exactly where a source that had produced m values
// would.
func (s *CountingSource) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.Uint64()
	}
	s.n += n
}
