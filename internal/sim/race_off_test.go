//go:build !race

package sim

// raceEnabled reports whether the race detector is compiled in. The
// steplock differential sweeps shrink to one cell under it: they compare
// two single-threaded loop modes (no concurrency to race), and the
// detector's ~10-20x slowdown would blow the package past the test
// timeout for no additional coverage.
const raceEnabled = false
