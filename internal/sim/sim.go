package sim

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"mil/internal/cache"
	"mil/internal/cpu"
	"mil/internal/dram"
	"mil/internal/energy"
	"mil/internal/fault"
	"mil/internal/memctrl"
	"mil/internal/obs"
	"mil/internal/sched"
	"mil/internal/snap"
	"mil/internal/trace"
	"mil/internal/workload"
)

// Config is one simulation run.
type Config struct {
	System    SystemKind
	Scheme    string
	Benchmark *workload.Benchmark
	// MemOpsPerThread is each hardware thread's memory-operation budget
	// (the run length dial). Zero selects the default.
	MemOpsPerThread int64
	// LookaheadX overrides MiL's look-ahead distance when > 0 (Figure 21).
	LookaheadX int
	// MaxCPUCycles aborts runaway runs; zero selects a generous default.
	MaxCPUCycles int64
	// Verify makes every phy decode and check each burst (slower).
	Verify bool
	// PowerDown enables the Section 7.3 fast power-down extension
	// (Extension 3 in EXPERIMENTS.md).
	PowerDown bool
	// Trace, when non-nil, receives one line per issued DRAM command.
	Trace io.Writer
	// Obs, when non-nil, attaches the observability layer (metrics
	// registry and/or Perfetto trace; see internal/obs). The registry may
	// be shared across runs — all its updates commute — but a trace
	// recorder must belong to a single run. Nil costs nothing.
	Obs *obs.Obs

	// Fault injects link errors into every channel's data bus; the zero
	// value is a reliable link and the whole fault path is a no-op.
	Fault fault.Config
	// WriteCRC enables DDR4 write CRC (per-write CRC-8, ALERT_n NACK and
	// replay). Server system only.
	WriteCRC bool
	// CAParity enables DDR4 command/address parity (command reject and
	// replay). Server system only.
	CAParity bool
	// Retry bounds the NACK-replay path; zero fields select the defaults.
	Retry memctrl.RetryConfig
	// Seed perturbs every stochastic path of the run - the workload's
	// access-pattern streams and the per-channel fault injectors - so runs
	// are bit-reproducible per seed. Seed 0 selects the legacy
	// (benchmark-derived) streams.
	Seed uint64
	// Steplock selects the per-cycle reference loop instead of the
	// event-driven core. Both produce byte-identical Results (modulo the
	// Loop counters); the reference mode exists so the differential tests
	// can prove it, and as a debugging fallback.
	Steplock bool

	// The fields below control checkpoint/resume (DESIGN.md §5.10). None
	// of them participates in Config.Hash: a resumed run must hash equal
	// to the original.

	// Checkpoint is the snapshot file path. Required by CheckpointEvery,
	// CheckpointAt, and Interrupt; empty disables checkpointing.
	Checkpoint string
	// CheckpointEvery writes Checkpoint every N landed (fired) CPU cycles
	// and keeps running. Zero disables periodic checkpoints.
	CheckpointEvery int64
	// CheckpointAt stops the run just before firing the first landed cycle
	// >= this value, writes Checkpoint, and returns ErrCheckpointed. Zero
	// disables. Used by the differential tests and -checkpoint-at style
	// tooling.
	CheckpointAt int64
	// Interrupt, when non-nil, is polled before every landed cycle: once
	// it reads true the run writes Checkpoint (if set) and returns
	// ErrCheckpointed. CLI signal handlers set it from their goroutine.
	Interrupt *atomic.Bool
	// Resume loads the simulation state from this snapshot file before
	// the first cycle. The file must carry this Config's hash; a snapshot
	// taken under a different configuration (or format version) is
	// rejected rather than silently diverging.
	Resume string
	// Deadline, when non-zero, aborts the run with ErrDeadline once the
	// wall clock passes it (polled every few thousand landed cycles). The
	// experiment runner uses it for per-cell timeouts.
	Deadline time.Time

	// The fields below control trace record/replay (DESIGN.md §5.11).
	// Neither participates in Config.Hash: recording never changes a
	// result, and a replayed run must report results under the replaying
	// cell's own configuration.

	// RecordTrace, when non-nil, receives the run's memory trace — the
	// ordered request stream at the cache↔memctrl boundary plus the
	// front-end totals — after the run completes. Recording is
	// result-neutral. Incompatible with checkpoint/resume: the recorder
	// wraps request completion callbacks that a snapshot cannot re-link.
	RecordTrace func(*trace.Trace)
	// ReplayTrace, when non-nil, drives the memory system directly from
	// the trace instead of simulating cores, caches, and workload streams.
	// The caller is responsible for the front-end match (trace files bind
	// to FrontEndHash; the sweep engine keys its store by FrontEndKey) —
	// and the replay driver independently verifies every acceptance and
	// completion cycle against the trace, failing loudly on divergence.
	ReplayTrace *trace.Trace
}

// Validate reports configuration errors before any machinery is built.
func (c *Config) Validate() error {
	if c.Benchmark == nil {
		return fmt.Errorf("sim: nil benchmark (pick one from workload.Suite)")
	}
	if c.MemOpsPerThread < 0 {
		return fmt.Errorf("sim: memory-op budget %d < 0 (0 selects the default %d)",
			c.MemOpsPerThread, DefaultMemOps)
	}
	if c.LookaheadX < 0 {
		return fmt.Errorf("sim: look-ahead override %d < 0 (0 keeps the scheme default)", c.LookaheadX)
	}
	if c.MaxCPUCycles < 0 {
		return fmt.Errorf("sim: CPU cycle limit %d < 0 (0 selects the default)", c.MaxCPUCycles)
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	if err := c.Retry.Validate(); err != nil {
		return err
	}
	if (c.WriteCRC || c.CAParity) && c.System != Server {
		return fmt.Errorf("sim: write CRC / CA parity are DDR4 features; %s models LPDDR3", c.System)
	}
	if c.CheckpointEvery < 0 || c.CheckpointAt < 0 {
		return fmt.Errorf("sim: checkpoint-every %d / checkpoint-at %d < 0", c.CheckpointEvery, c.CheckpointAt)
	}
	if (c.CheckpointEvery > 0 || c.CheckpointAt > 0) && c.Checkpoint == "" {
		return fmt.Errorf("sim: periodic or targeted checkpointing needs a checkpoint file path")
	}
	if c.ReplayTrace != nil {
		if c.RecordTrace != nil {
			return fmt.Errorf("sim: cannot record a trace while replaying one")
		}
		if c.Checkpoint != "" || c.Resume != "" || c.Interrupt != nil {
			return fmt.Errorf("sim: replay cannot combine with checkpoint/resume (a replayed run has no core or cache state to snapshot)")
		}
	}
	if c.RecordTrace != nil && (c.Checkpoint != "" || c.Resume != "") {
		return fmt.Errorf("sim: trace recording cannot combine with checkpoint/resume (the recorder's completion hooks cannot be snapshotted)")
	}
	return nil
}

// DefaultMemOps is the per-thread memory-op budget used by the experiments.
const DefaultMemOps = 6000

// LoopStats describes how the main loop covered the simulated timeline.
// It lives outside Mem/Cache because it measures the simulator, not the
// simulated machine: the two loop modes must agree on every model
// statistic while reporting loop counters of their own.
//
// Both loop modes report the same semantics, counted by the same
// sched.EventClock: EventsFired is the number of CPU cycles the loop
// landed on and actually simulated, CyclesSkipped the number of cycles
// proven no-ops and jumped over, and EventsFired + CyclesSkipped ==
// Result.CPUCycles always holds. The steplock reference loop lands on
// every cycle, so it reports EventsFired == CPUCycles and CyclesSkipped
// == 0. TestLoopStatsSemantics holds both modes to this contract.
type LoopStats struct {
	EventsFired   int64
	CyclesSkipped int64
	// Steplock records that the per-cycle reference loop produced the run.
	Steplock bool
}

// Result captures everything one run produces; the experiment drivers
// combine Results into the paper's figures.
type Result struct {
	System    SystemKind
	Scheme    string
	Benchmark string

	CPUCycles    int64
	DRAMCycles   int64
	Seconds      float64
	Instructions int64

	Mem   *memctrl.Stats
	Cache cache.Stats
	Loop  LoopStats

	DRAM energy.Breakdown
	CPUJ float64
	// RetryJ is the IO energy wasted on NACKed bursts (subset of DRAM.IO).
	RetryJ float64
}

// SystemJ returns the full-system energy (Figure 19's quantity).
func (r *Result) SystemJ() float64 { return r.DRAM.Total() + r.CPUJ }

// BusUtilization returns the data-bus busy fraction.
func (r *Result) BusUtilization() float64 { return r.Mem.BusUtilization() }

// memPort adapts the memory system (plus the benchmark's value model) to
// the cache hierarchy's port interface. Requests that hit controller
// backpressure are cached per line so retries (which the hierarchy issues
// every cycle) reuse the same object instead of rebuilding it.
type memPort struct {
	sys       *memctrl.System
	bench     *workload.Benchmark
	dramNow   int64
	writeSeq  uint64
	pendingRd map[int64]*memctrl.Request
	pendingWr map[int64]*memctrl.Request
	inflight  map[int64]*memctrl.Request // accepted reads, for Promote
	rec       *recorder                  // non-nil while recording a trace
}

// recorder captures boundary events for the trace layer (DESIGN.md §5.11).
// Only controller acceptances are recorded: a rejected request is retried
// by the hierarchy until accepted, and replay re-creates only the accept.
type recorder struct {
	events []trace.Event
}

// accept records an accepted request — priority as merged at acceptance,
// write data as carried by the request — and wraps its completion callback
// so the completion cycle lands in the same event. The wrap is
// behavior-neutral: the original callback (nil for writes) still runs.
func (r *recorder) accept(req *memctrl.Request, kind trace.Kind, now int64) {
	idx := len(r.events)
	r.events = append(r.events, trace.Event{
		Kind: kind, Clock: now, Line: req.Line, Stream: req.Stream,
		Demand: req.Demand, Data: req.Data,
	})
	orig := req.OnDone
	req.OnDone = func(done int64) {
		r.events[idx].DoneAt = done
		if orig != nil {
			orig(done)
		}
	}
}

// promote records a demand promotion of an in-flight read.
func (r *recorder) promote(line, now int64) {
	r.events = append(r.events, trace.Event{Kind: trace.Promote, Clock: now, Line: line})
}

func newMemPort(sys *memctrl.System, bench *workload.Benchmark) *memPort {
	return &memPort{
		sys: sys, bench: bench,
		pendingRd: make(map[int64]*memctrl.Request),
		pendingWr: make(map[int64]*memctrl.Request),
		inflight:  make(map[int64]*memctrl.Request),
	}
}

// ReadLine implements cache.MemPort.
func (p *memPort) ReadLine(line int64, demand bool, stream int, done func(int64)) bool {
	req := p.pendingRd[line]
	if req == nil {
		req = &memctrl.Request{Line: line, Demand: demand, Stream: stream}
		req.OnDone = func(int64) {
			delete(p.inflight, line)
			if done != nil {
				done(line)
			}
		}
	}
	req.Demand = req.Demand || demand
	if !p.sys.Enqueue(req, p.dramNow) {
		p.pendingRd[line] = req
		return false
	}
	delete(p.pendingRd, line)
	p.inflight[line] = req
	if p.rec != nil {
		p.rec.accept(req, trace.ReadAccept, p.dramNow)
	}
	return true
}

// Promote implements cache.MemPort: flip an in-flight (or still-pending)
// prefetch read to demand priority.
func (p *memPort) Promote(line int64) {
	if req := p.inflight[line]; req != nil {
		// Only a promotion that flips an accepted read is an event; a
		// pending (not yet accepted) read records its merged priority at
		// acceptance instead.
		if !req.Demand && p.rec != nil {
			p.rec.promote(line, p.dramNow)
		}
		req.Demand = true
	}
	if req := p.pendingRd[line]; req != nil {
		req.Demand = true
	}
}

// WriteLine implements cache.MemPort.
func (p *memPort) WriteLine(line int64, stream int) bool {
	req := p.pendingWr[line]
	if req == nil {
		p.writeSeq++
		req = &memctrl.Request{
			Line: line, Write: true, Stream: stream,
			Data: p.bench.StoreData(line, p.writeSeq),
		}
	}
	if !p.sys.Enqueue(req, p.dramNow) {
		p.pendingWr[line] = req
		return false
	}
	delete(p.pendingWr, line)
	if p.rec != nil {
		p.rec.accept(req, trace.WriteAccept, p.dramNow)
	}
	return true
}

// buildMemSystem constructs the controller-side half of the machine —
// scheme policy, reliability windows, phy decoration, controller
// configuration, value overlay — exactly as a full run uses it. Run and
// the replay driver share it so a replayed cell's backend is identical by
// construction to the backend a full simulation of that cell would build.
func buildMemSystem(cfg *Config, plat platform) (memctrl.Policy, *memctrl.System, *memctrl.OverlayMemory, error) {
	policy, newPhy, err := schemeFor(cfg.Scheme, plat, cfg.LookaheadX, cfg.Seed)
	if err != nil {
		return nil, nil, nil, err
	}

	// DDR4 RAS features: start from the evaluated DDR4-3200 windows and keep
	// only what the run enables.
	var rel dram.Reliability
	if cfg.WriteCRC || cfg.CAParity {
		d4 := dram.DDR4Reliability()
		if cfg.WriteCRC {
			rel.WriteCRC, rel.CRCExtraBeats, rel.CRCAlertCycles = true, d4.CRCExtraBeats, d4.CRCAlertCycles
		}
		if cfg.CAParity {
			rel.CAParity, rel.CABits, rel.CAAlertCycles = true, d4.CABits, d4.CAAlertCycles
		}
	}

	// Decorate the phy factory with the link reliability state. NewSystem
	// calls the factory once per channel in order, so each channel gets its
	// own injector with a deterministic per-channel sub-stream derived from
	// the fault seed and the run seed.
	if cfg.Fault.Enabled() || rel.Enabled() {
		base := newPhy
		channel := 0
		newPhy = func() memctrl.Phy {
			link := memctrl.LinkConfig{
				WriteCRC: rel.WriteCRC,
				CRCBeats: rel.ExtraWriteBeats(),
				CABits:   rel.CommandBits(),
			}
			if cfg.Fault.Enabled() {
				seed := cfg.Fault.Seed ^ (cfg.Seed * 0x9e3779b97f4a7c15) ^ (uint64(channel+1) * 0xd1342543de82ef95)
				link.Inject = fault.MustNew(cfg.Fault.WithSeed(seed))
			}
			channel++
			phy := base()
			switch p := phy.(type) {
			case *memctrl.PODPhy:
				p.Link = link
			case *memctrl.TransitionPhy:
				p.Link = link
			case *memctrl.BIWirePhy:
				p.Link = link
			}
			return phy
		}
	}
	if cfg.Verify {
		base := newPhy
		newPhy = func() memctrl.Phy {
			switch phy := base().(type) {
			case *memctrl.PODPhy:
				phy.Verify = true
				return phy
			case *memctrl.TransitionPhy:
				phy.Verify = true
				return phy
			case *memctrl.BIWirePhy:
				phy.Verify = true
				return phy
			default:
				return phy
			}
		}
	}

	ctrlCfg := memctrl.DefaultConfig(plat.dram)
	ctrlCfg.Trace = cfg.Trace
	ctrlCfg.Reliability = rel
	ctrlCfg.Retry = cfg.Retry
	if cfg.PowerDown {
		// tXP ~ 6ns and a ~40ns idle threshold, in DRAM cycles.
		xp := int(6.0/plat.dram.ClockNS) + 1
		ctrlCfg.PowerDown = memctrl.PowerDownConfig{Enable: true, IdleCycles: 64, XP: xp}
	}
	mem := memctrl.NewOverlayMemory(cfg.Benchmark.LineData)
	memSys, err := memctrl.NewSystem(memctrl.SystemConfig{
		Channels:   plat.channels,
		Controller: ctrlCfg,
		Policy:     policy,
		NewPhy:     newPhy,
		Mem:        mem,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return policy, memSys, mem, nil
}

// Run executes one configuration to completion.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ReplayTrace != nil {
		return replayRun(cfg)
	}
	plat := platformFor(cfg.System)
	policy, memSys, mem, err := buildMemSystem(&cfg, plat)
	if err != nil {
		return nil, err
	}

	memOps := cfg.MemOpsPerThread
	if memOps <= 0 {
		memOps = DefaultMemOps
	}
	maxCycles := cfg.MaxCPUCycles
	if maxCycles <= 0 {
		maxCycles = 400_000_000
	}

	port := newMemPort(memSys, cfg.Benchmark)
	if cfg.RecordTrace != nil {
		port.rec = &recorder{}
	}
	hier, err := cache.NewHierarchy(plat.cache, port)
	if err != nil {
		return nil, err
	}

	bench := cfg.Benchmark
	if plat.computeScale > 1 {
		bench = bench.WithComputeScale(plat.computeScale)
	}
	streams, err := bench.NewStreamsSeeded(plat.cpu.Threads(), memOps, cfg.Seed)
	if err != nil {
		return nil, err
	}
	proc, err := cpu.NewProcessor(plat.cpu, hier, streams)
	if err != nil {
		return nil, err
	}

	// Observability: attach the (possibly nil) obs layer to every domain.
	// Track registration order fixes the Perfetto display order: the event
	// core first, then each channel's command and bus timelines.
	var evTrack *obs.Track
	if cfg.Obs.Enabled() {
		if cfg.Obs.Trace != nil {
			// CPU cycle length in wall time: the CPU clock runs at 2x the
			// DRAM clock on both platforms.
			cfg.Obs.Trace.SetTimebase(plat.dram.ClockNS / 2)
		}
		evTrack = cfg.Obs.NewTrack("event core", 1)
		memSys.SetObs(cfg.Obs)
		hier.SetObs(cfg.Obs)
		proc.SetObs(cfg.Obs)
		if p, ok := policy.(interface{ SetObs(*obs.Obs) }); ok {
			p.SetObs(cfg.Obs)
		}
	}

	// Main loop. The CPU clock runs at 2x the DRAM clock on both platforms
	// (3.2GHz/1.6GHz and 1.6GHz/0.8GHz); the DRAM domain ticks on even CPU
	// cycles. Two interchangeable loops cover the timeline:
	//
	//   - the steplock reference loop ticks every CPU cycle;
	//   - the event loop advances to the minimum of the domains' NextWake
	//     bounds, bulk-accounts the skipped (provably no-op) cycles, and
	//     fires the landed cycle exactly as the reference loop would.
	//
	// Both run the same per-cycle code on every cycle that does anything,
	// so they produce byte-identical Results (the differential tests in
	// steplock_test.go hold them to that).
	var cpuNow int64
	var loop LoopStats
	// Both loops report LoopStats through the same sched.EventClock so the
	// counters carry identical semantics (see LoopStats): the steplock
	// loop lands every cycle, the event loop only the woken ones.
	ev := sched.NewEventClock()

	// Checkpoint/resume plumbing (DESIGN.md §5.10). The machine bundles
	// every stateful component; gate runs at the top of the loop body in
	// both modes, just before the landed cycle fires, so a snapshot means
	// "about to fire cycle cpuNow" under either loop.
	var polSnap snap.Snapshotter
	if s, ok := policy.(snap.Snapshotter); ok {
		polSnap = s
	}
	m := &machine{
		cfg: &cfg, ev: ev, streams: streams, proc: proc, hier: hier,
		memSys: memSys, mem: mem, polSnap: polSnap, port: port,
	}
	if cfg.Resume != "" {
		resumed, err := m.loadCheckpoint(cfg.Resume)
		if err != nil {
			return nil, fmt.Errorf("sim: resume from %s: %w", cfg.Resume, err)
		}
		cpuNow = resumed
	}
	var sinceCkpt, gateTick int64
	gate := func(cpuNow int64) error {
		if !cfg.Deadline.IsZero() {
			gateTick++
			if gateTick&4095 == 0 && time.Now().After(cfg.Deadline) {
				return ErrDeadline
			}
		}
		if cfg.Interrupt != nil && cfg.Interrupt.Load() {
			if cfg.Checkpoint != "" {
				if err := m.writeCheckpoint(cfg.Checkpoint, cpuNow); err != nil {
					return err
				}
			}
			return ErrCheckpointed
		}
		if cfg.CheckpointAt > 0 && cpuNow >= cfg.CheckpointAt {
			if err := m.writeCheckpoint(cfg.Checkpoint, cpuNow); err != nil {
				return err
			}
			return ErrCheckpointed
		}
		if cfg.CheckpointEvery > 0 {
			sinceCkpt++
			if sinceCkpt >= cfg.CheckpointEvery {
				sinceCkpt = 0
				if err := m.writeCheckpoint(cfg.Checkpoint, cpuNow); err != nil {
					return err
				}
			}
		}
		return nil
	}

	if cfg.Steplock {
		for {
			if err := gate(cpuNow); err != nil {
				return nil, err
			}
			ev.Advance(cpuNow)
			if cpuNow%2 == 0 {
				port.dramNow = cpuNow / 2
				memSys.Tick(port.dramNow)
			}
			hier.Tick()
			proc.Tick(cpuNow)
			if proc.Done() && !hier.Pending() && !memSys.Pending() {
				break
			}
			cpuNow++
			if cpuNow > maxCycles {
				return nil, fmt.Errorf("sim: %s/%s/%s exceeded %d CPU cycles",
					cfg.System, cfg.Scheme, cfg.Benchmark.Name, maxCycles)
			}
		}
		loop = LoopStats{EventsFired: ev.Events, CyclesSkipped: ev.Skipped, Steplock: true}
	} else {
		clock := sched.Clock{CPUPerDRAM: 2}
		for {
			if err := gate(cpuNow); err != nil {
				return nil, err
			}
			ev.Advance(cpuNow)
			evTrack.Instant("fire", cpuNow, obs.Args{})
			// Stall accounting for the skipped window first: the fills the
			// DRAM tick delivers below unblock threads, and the reference
			// loop had them blocked for the whole window.
			proc.SkipTo(cpuNow)
			d := clock.DRAMCycle(cpuNow)
			if clock.IsDRAMEdge(cpuNow) {
				memSys.SkipUntil(d - 1)
				port.dramNow = d
				memSys.Tick(d)
			} else {
				// A landed odd cycle: the reference loop's last DRAM tick
				// (at cpuNow-1) was a no-op or already fired; account any
				// still-unaccounted DRAM cycles without ticking.
				memSys.SkipUntil(d)
				port.dramNow = d
			}
			hier.Tick()
			proc.Tick(cpuNow)
			if proc.Done() && !hier.Pending() && !memSys.Pending() {
				break
			}
			next := sched.MinWake(
				proc.NextWake(cpuNow),
				hier.NextWake(cpuNow),
				clock.CPUCycle(memSys.NextWake()),
			)
			if next <= cpuNow {
				next = cpuNow + 1
			}
			if next > cpuNow+1 {
				evTrack.Slice("skip", cpuNow+1, next, obs.Args{})
			}
			cpuNow = next
			if cpuNow > maxCycles {
				return nil, fmt.Errorf("sim: %s/%s/%s exceeded %d CPU cycles",
					cfg.System, cfg.Scheme, cfg.Benchmark.Name, maxCycles)
			}
		}
		loop = LoopStats{EventsFired: ev.Events, CyclesSkipped: ev.Skipped}
	}

	dramCycles := cpuNow/2 + 1
	seconds := float64(dramCycles) * plat.dram.ClockNS * 1e-9
	memSys.FlushObs() // close the trailing idle-window run
	stats := memSys.Stats()

	breakdown, err := energy.DRAMEnergy(plat.power, plat.dram, plat.channels, stats, dramCycles)
	if err != nil {
		return nil, err
	}
	cpuJ := energy.CPUEnergy(plat.cpuPower, seconds, proc.Retired)
	retryJ := energy.RetryEnergyJ(plat.power, stats)
	if cfg.Obs.Enabled() {
		o := cfg.Obs
		o.Counter("sim_runs_total").Inc()
		o.Counter("sim_cpu_cycles_total").Add(cpuNow + 1)
		o.Counter("sim_dram_cycles_total").Add(dramCycles)
		o.Counter("loop_events_fired_total").Add(ev.Events)
		o.Counter("loop_cycles_skipped_total").Add(ev.Skipped)
		energy.RecordMetrics(o, breakdown, cpuJ, retryJ)
	}
	cacheStats := hier.Stats()
	if cfg.RecordTrace != nil {
		wbBackpressure, fillRetries, wbQueuePeak := hier.BoundaryStats()
		cfg.RecordTrace(&trace.Trace{
			CPUCycles:      cpuNow + 1,
			DRAMCycles:     dramCycles,
			Instructions:   proc.Retired,
			Cache:          cacheStats,
			EventsFired:    loop.EventsFired,
			CyclesSkipped:  loop.CyclesSkipped,
			Steplock:       loop.Steplock,
			ThreadBlocks:   proc.ThreadBlocks(),
			WBBackpressure: wbBackpressure,
			FillRetries:    fillRetries,
			WBQueuePeak:    wbQueuePeak,
			Events:         port.rec.events,
		})
	}
	return &Result{
		System:       cfg.System,
		Scheme:       cfg.Scheme,
		Benchmark:    cfg.Benchmark.Name,
		CPUCycles:    cpuNow + 1,
		DRAMCycles:   dramCycles,
		Seconds:      seconds,
		Instructions: proc.Retired,
		Mem:          stats,
		Cache:        cacheStats,
		Loop:         loop,
		DRAM:         breakdown,
		CPUJ:         cpuJ,
		RetryJ:       retryJ,
	}, nil
}
