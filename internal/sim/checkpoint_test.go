package sim

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"mil/internal/fault"
	"mil/internal/obs"
	"mil/internal/workload"
)

// runCheckpointed runs cfg uninterrupted, then re-runs it with a
// checkpoint forced at roughly the midpoint, resumes from the snapshot
// file, and returns both Results for comparison. Both runs attach a
// fresh metrics registry; the CSVs come back too so callers can assert
// observability parity across the suspend.
func runCheckpointed(t *testing.T, cfg Config) (full, resumed *Result, fullCSV, resumedCSV string) {
	t.Helper()
	ckpt := filepath.Join(t.TempDir(), "mid.milsnap")

	regA := obs.NewRegistry()
	ca := cfg
	ca.Obs = &obs.Obs{Metrics: regA}
	full, err := Run(ca)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	if full.CPUCycles < 4 {
		t.Fatalf("run too short to split: %d cycles", full.CPUCycles)
	}

	regB := obs.NewRegistry()
	cb := cfg
	cb.Obs = &obs.Obs{Metrics: regB}
	cb.Checkpoint = ckpt
	cb.CheckpointAt = full.CPUCycles / 2
	if _, err := Run(cb); !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("checkpointing run: want ErrCheckpointed, got %v", err)
	}

	cr := cfg
	cr.Obs = &obs.Obs{Metrics: regB}
	cr.Resume = ckpt
	resumed, err = Run(cr)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}

	var sbA, sbB strings.Builder
	if err := regA.WriteCSV(&sbA); err != nil {
		t.Fatalf("full-run metrics CSV: %v", err)
	}
	if err := regB.WriteCSV(&sbB); err != nil {
		t.Fatalf("resumed-run metrics CSV: %v", err)
	}
	return full, resumed, sbA.String(), sbB.String()
}

// requireResumeIdentical asserts the resumed Result (including the Loop
// counters, which carry across the suspend) and the metrics CSV are
// byte-identical to the uninterrupted run's.
func requireResumeIdentical(t *testing.T, full, resumed *Result, fullCSV, resumedCSV string) {
	t.Helper()
	if !reflect.DeepEqual(full, resumed) {
		if !reflect.DeepEqual(full.Mem, resumed.Mem) {
			t.Errorf("Mem stats diverge:\n  full:    %+v\n  resumed: %+v", full.Mem, resumed.Mem)
		}
		f, r := *full, *resumed
		f.Mem, r.Mem = nil, nil
		if !reflect.DeepEqual(&f, &r) {
			t.Errorf("results diverge:\n  full:    %+v\n  resumed: %+v", f, r)
		}
		t.FailNow()
	}
	if fullCSV != resumedCSV {
		t.Fatalf("metrics CSV diverges across resume:\n--- full ---\n%s--- resumed ---\n%s", fullCSV, resumedCSV)
	}
}

// TestCheckpointResumeMatrix is the tentpole differential: suspending at
// the midpoint and resuming must reproduce the uninterrupted run byte
// for byte across systems, schemes (including the degrade ladder), seeds,
// and both loop modes.
func TestCheckpointResumeMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	type cell struct {
		scheme string
		fault  fault.Config
	}
	cells := []cell{
		{scheme: "raw"},
		{scheme: "mil"},
		{scheme: "mil-degrade", fault: fault.Config{BER: 1e-5, Seed: 7}},
	}
	systems := []SystemKind{Server, Mobile}
	seeds := []uint64{0, 42}
	loops := []bool{false, true}
	if raceEnabled {
		// The matrix is equivalence coverage, not concurrency coverage;
		// one mobile cell keeps the harness itself raced.
		systems, cells, seeds, loops = systems[1:], cells[:1], seeds[:1], loops[:1]
	}
	for _, system := range systems {
		for _, c := range cells {
			for _, seed := range seeds {
				for _, steplock := range loops {
					loop := "event"
					if steplock {
						loop = "steplock"
					}
					name := fmt.Sprintf("%s/%s/seed%d/%s", system, c.scheme, seed, loop)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						b, err := workload.ByName("STRMATCH")
						if err != nil {
							t.Fatal(err)
						}
						full, resumed, csvA, csvB := runCheckpointed(t, Config{
							System: system, Scheme: c.scheme, Benchmark: b,
							MemOpsPerThread: 300, Seed: seed, Fault: c.fault,
							Steplock: steplock,
						})
						requireResumeIdentical(t, full, resumed, csvA, csvB)
					})
				}
			}
		}
	}
}

// TestCheckpointResumeRetry covers the DDR4 write-CRC/CA-parity
// NACK-replay path: in-flight retry counters, backoff deadlines, and the
// storm detector all have to cross the suspend intact.
func TestCheckpointResumeRetry(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	b, err := workload.ByName("GUPS")
	if err != nil {
		t.Fatal(err)
	}
	full, resumed, csvA, csvB := runCheckpointed(t, Config{
		System: Server, Scheme: "baseline", Benchmark: b,
		MemOpsPerThread: 400, WriteCRC: true, CAParity: true,
		Fault: fault.Config{BER: 5e-4, Seed: 3},
	})
	if full.Mem.Retries() == 0 {
		t.Fatal("no retries fired; test exercises nothing")
	}
	requireResumeIdentical(t, full, resumed, csvA, csvB)
}

// TestCheckpointResumePowerDown covers the power-down state machine: the
// suspend can land while a rank is powered down or mid-exit, and the
// residency accounting must still come out identical.
func TestCheckpointResumePowerDown(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	b, err := workload.ByName("MM")
	if err != nil {
		t.Fatal(err)
	}
	full, resumed, csvA, csvB := runCheckpointed(t, Config{
		System: Server, Scheme: "mil", Benchmark: b,
		MemOpsPerThread: 400, PowerDown: true,
	})
	if full.Mem.PowerDownCycles == 0 {
		t.Fatal("power-down never engaged; test exercises nothing")
	}
	requireResumeIdentical(t, full, resumed, csvA, csvB)
}

// TestCheckpointPeriodic exercises CheckpointEvery: the run completes
// normally (no ErrCheckpointed), leaves a valid snapshot behind, and a
// resume from that final snapshot still reproduces the tail.
func TestCheckpointPeriodic(t *testing.T) {
	b, err := workload.ByName("STRMATCH")
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "periodic.milsnap")
	cfg := Config{System: Mobile, Scheme: "mil", Benchmark: b, MemOpsPerThread: 300}

	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp := cfg
	cp.Checkpoint = ckpt
	cp.CheckpointEvery = full.CPUCycles / 7
	if cp.CheckpointEvery < 1 {
		cp.CheckpointEvery = 1
	}
	periodic, err := Run(cp)
	if err != nil {
		t.Fatalf("periodic run: %v", err)
	}
	periodic.Loop = LoopStats{}
	f := *full
	f.Loop = LoopStats{}
	if !reflect.DeepEqual(&f, periodic) {
		t.Fatalf("periodic checkpointing perturbed the run:\n  plain:    %+v\n  periodic: %+v", &f, periodic)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("periodic run left no snapshot: %v", err)
	}
	cr := cfg
	cr.Resume = ckpt
	resumed, err := Run(cr)
	if err != nil {
		t.Fatalf("resume from final periodic snapshot: %v", err)
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Fatalf("resume from periodic snapshot diverges:\n  full:    %+v\n  resumed: %+v", full, resumed)
	}
}

// TestCheckpointInterrupt exercises the Interrupt flag (the SIGINT path):
// the run suspends at the next landed cycle and resumes identically.
func TestCheckpointInterrupt(t *testing.T) {
	b, err := workload.ByName("STRMATCH")
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "intr.milsnap")
	cfg := Config{System: Mobile, Scheme: "raw", Benchmark: b, MemOpsPerThread: 300}

	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var intr atomic.Bool
	intr.Store(true) // raised before the run: suspend at the first gate
	ci := cfg
	ci.Checkpoint = ckpt
	ci.Interrupt = &intr
	if _, err := Run(ci); !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("interrupted run: want ErrCheckpointed, got %v", err)
	}
	cr := cfg
	cr.Resume = ckpt
	resumed, err := Run(cr)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Fatalf("resume after interrupt diverges:\n  full:    %+v\n  resumed: %+v", full, resumed)
	}
}

// TestResumeRejectsMismatchedConfig pins the safety property: a snapshot
// only resumes under the exact configuration that produced it.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	b, err := workload.ByName("STRMATCH")
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "strict.milsnap")
	cfg := Config{System: Mobile, Scheme: "mil", Benchmark: b, MemOpsPerThread: 300}
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cc := cfg
	cc.Checkpoint = ckpt
	cc.CheckpointAt = full.CPUCycles / 2
	if _, err := Run(cc); !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("checkpointing run: want ErrCheckpointed, got %v", err)
	}

	mutations := map[string]func(*Config){
		"scheme":   func(c *Config) { c.Scheme = "raw" },
		"seed":     func(c *Config) { c.Seed = 1 },
		"ops":      func(c *Config) { c.MemOpsPerThread = 301 },
		"steplock": func(c *Config) { c.Steplock = true },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			bad := cfg
			mutate(&bad)
			bad.Resume = ckpt
			if _, err := Run(bad); err == nil || !strings.Contains(err.Error(), "config hash") {
				t.Fatalf("mismatched %s resume: want config-hash rejection, got %v", name, err)
			}
		})
	}

	t.Run("truncated", func(t *testing.T) {
		raw, err := os.ReadFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		short := filepath.Join(t.TempDir(), "short.milsnap")
		if err := os.WriteFile(short, raw[:len(raw)-3], 0o644); err != nil {
			t.Fatal(err)
		}
		cr := cfg
		cr.Resume = short
		if _, err := Run(cr); err == nil {
			t.Fatal("truncated snapshot resumed without error")
		}
	})
}
