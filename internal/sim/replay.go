package sim

import (
	"fmt"

	"mil/internal/energy"
	"mil/internal/memctrl"
	"mil/internal/milcore"
	"mil/internal/trace"
)

// replayRun executes a configuration by driving the memory system straight
// from a recorded trace (DESIGN.md §5.11). The cores, caches, and workload
// streams never run: their contribution to the Result — cycle counts,
// instruction totals, cache statistics, loop counters — is carried by the
// trace, and is identical for every configuration sharing the trace's
// front end (FrontEndKey). Only the backend is simulated: the controller,
// the DRAM devices, the codec/policy under test, and the phy with its
// fault injectors, all built by the same buildMemSystem a full run uses.
//
// The replay contract: for any configuration whose FrontEndKey equals the
// recording configuration's, the returned Result is byte-identical to what
// a full simulation of this configuration would produce. The driver does
// not take that on faith — every recorded acceptance and completion cycle
// is verified against the live controller, and any mismatch fails the run
// with a divergence error instead of returning silently wrong numbers.
func replayRun(cfg Config) (*Result, error) {
	tr := cfg.ReplayTrace
	plat := platformFor(cfg.System)
	policy, memSys, _, err := buildMemSystem(&cfg, plat)
	if err != nil {
		return nil, err
	}

	if cfg.Obs.Enabled() {
		if cfg.Obs.Trace != nil {
			cfg.Obs.Trace.SetTimebase(plat.dram.ClockNS / 2)
		}
		memSys.SetObs(cfg.Obs)
		if d, ok := policy.(*milcore.Degrader); ok {
			d.SetObs(cfg.Obs)
		}
	}

	if err := driveReplay(memSys, tr); err != nil {
		return nil, fmt.Errorf("sim: replay of %s/%s/%s diverged: %w",
			cfg.System, cfg.Scheme, cfg.Benchmark.Name, err)
	}

	dramCycles := tr.DRAMCycles
	seconds := float64(dramCycles) * plat.dram.ClockNS * 1e-9
	memSys.FlushObs() // close the trailing idle-window run
	stats := memSys.Stats()

	breakdown, err := energy.DRAMEnergy(plat.power, plat.dram, plat.channels, stats, dramCycles)
	if err != nil {
		return nil, err
	}
	cpuJ := energy.CPUEnergy(plat.cpuPower, seconds, tr.Instructions)
	retryJ := energy.RetryEnergyJ(plat.power, stats)
	if cfg.Obs.Enabled() {
		o := cfg.Obs
		o.Counter("sim_runs_total").Inc()
		o.Counter("sim_cpu_cycles_total").Add(tr.CPUCycles)
		o.Counter("sim_dram_cycles_total").Add(dramCycles)
		o.Counter("loop_events_fired_total").Add(tr.EventsFired)
		o.Counter("loop_cycles_skipped_total").Add(tr.CyclesSkipped)
		energy.RecordMetrics(o, breakdown, cpuJ, retryJ)
		// Counters owned by the components replay skips, restored from the
		// trace so a replayed run's metrics CSV matches a full run's.
		o.Counter("cpu_thread_blocks_total").Add(tr.ThreadBlocks)
		o.Counter("cache_wb_backpressure_total").Add(tr.WBBackpressure)
		o.Counter("cache_fill_retry_total").Add(tr.FillRetries)
		o.Counter("cache_prefetch_dropped_total").Add(tr.Cache.PrefetchesDropped)
		o.Gauge("cache_wb_queue_peak").Max(tr.WBQueuePeak)
	}
	return &Result{
		System:       cfg.System,
		Scheme:       cfg.Scheme,
		Benchmark:    cfg.Benchmark.Name,
		CPUCycles:    tr.CPUCycles,
		DRAMCycles:   tr.DRAMCycles,
		Seconds:      seconds,
		Instructions: tr.Instructions,
		Mem:          stats,
		Cache:        tr.Cache,
		Loop:         LoopStats{EventsFired: tr.EventsFired, CyclesSkipped: tr.CyclesSkipped, Steplock: tr.Steplock},
		DRAM:         breakdown,
		CPUJ:         cpuJ,
		RetryJ:       retryJ,
	}, nil
}

// driveReplay walks the memory system across the recorded timeline. The
// cadence rules mirror the main loops:
//
//   - Cycle 0 always fires (both loop modes land CPU cycle 0, which ticks
//     DRAM cycle 0), and SkipUntil can only account cycles *after* the
//     current one — so the driver starts with a real Tick(0).
//   - In a recorded run, every request accepted at DRAM cycle d was
//     enqueued after the controller covered d and before it covered d+1,
//     so events apply immediately after the driver lands on their clock.
//   - Between event clocks the driver follows memSys.NextWake: refreshes,
//     power-down transitions, and scheduled issues come due between
//     requests and must tick exactly as in the recorded run. NextWake's
//     lower-bound contract guarantees no acting cycle is jumped over, and
//     extra no-op ticks are harmless — the PR-4 loop-equivalence property
//     (steplock ≡ event skipping, byte-identical) is precisely that the
//     statistics do not depend on which no-op cycles are ticked vs
//     bulk-accounted.
//
// The total accounted cycles equal the trace's DRAMCycles, so the
// controller's Ticks/occupancy/Figure-5 statistics reconcile exactly with
// a full run's.
func driveReplay(memSys *memctrl.System, tr *trace.Trace) error {
	finalD := tr.DRAMCycles - 1
	events := tr.Events
	liveRd := make(map[int64]*memctrl.Request)
	var divergence error
	diverge := func(format string, args ...any) {
		if divergence == nil {
			divergence = fmt.Errorf(format, args...)
		}
	}
	last := int64(-1)
	tick := func(d int64) {
		if d > last+1 {
			memSys.SkipUntil(d - 1)
		}
		memSys.Tick(d)
		last = d
	}
	apply := func(e *trace.Event) {
		switch e.Kind {
		case trace.ReadAccept:
			req := &memctrl.Request{Line: e.Line, Demand: e.Demand, Stream: e.Stream}
			line, want := e.Line, e.DoneAt
			req.OnDone = func(done int64) {
				delete(liveRd, line)
				if done != want {
					diverge("read of line %d completed at cycle %d, recorded %d", line, done, want)
				}
			}
			if !memSys.Enqueue(req, e.Clock) {
				diverge("read of line %d rejected at cycle %d (accepted when recorded)", e.Line, e.Clock)
				return
			}
			liveRd[line] = req
		case trace.WriteAccept:
			req := &memctrl.Request{Line: e.Line, Write: true, Stream: e.Stream, Data: e.Data}
			line, want := e.Line, e.DoneAt
			req.OnDone = func(done int64) {
				if done != want {
					diverge("write of line %d completed at cycle %d, recorded %d", line, done, want)
				}
			}
			if !memSys.Enqueue(req, e.Clock) {
				diverge("write of line %d rejected at cycle %d (accepted when recorded)", e.Line, e.Clock)
			}
		case trace.Promote:
			if req := liveRd[e.Line]; req != nil {
				req.Demand = true
			} else {
				diverge("promote of line %d at cycle %d with no read in flight", e.Line, e.Clock)
			}
		}
	}

	i := 0
	tick(0)
	for ; i < len(events) && events[i].Clock == 0; i++ {
		apply(&events[i])
	}
	for last < finalD && divergence == nil {
		next := memSys.NextWake()
		if i < len(events) && events[i].Clock < next {
			next = events[i].Clock
		}
		if next <= last {
			next = last + 1
		}
		if next > finalD {
			// Nothing acts between here and the horizon; bulk-account the
			// tail so total accounted cycles equal the recorded DRAMCycles.
			memSys.SkipUntil(finalD)
			last = finalD
			break
		}
		tick(next)
		for ; i < len(events) && events[i].Clock == next; i++ {
			apply(&events[i])
		}
	}
	if divergence != nil {
		return divergence
	}
	if i < len(events) {
		return fmt.Errorf("%d events unapplied at the recorded %d-cycle horizon", len(events)-i, tr.DRAMCycles)
	}
	if memSys.Pending() {
		return fmt.Errorf("requests still pending at the recorded %d-cycle horizon (the recorded run drained)", tr.DRAMCycles)
	}
	return nil
}
