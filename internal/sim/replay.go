package sim

import (
	"fmt"

	"mil/internal/energy"
	"mil/internal/memctrl"
	"mil/internal/obs"
	"mil/internal/trace"
)

// replayRun executes a configuration by driving the memory system straight
// from a recorded trace (DESIGN.md §5.11). The cores, caches, and workload
// streams never run: their contribution to the Result — cycle counts,
// instruction totals, cache statistics, loop counters — is carried by the
// trace, and is identical for every configuration sharing the trace's
// front end (FrontEndKey). Only the backend is simulated: the controller,
// the DRAM devices, the codec/policy under test, and the phy with its
// fault injectors, all built by the same buildMemSystem a full run uses.
//
// The replay contract: for any configuration whose FrontEndKey equals the
// recording configuration's, the returned Result is byte-identical to what
// a full simulation of this configuration would produce. The driver does
// not take that on faith — every recorded acceptance and completion cycle
// is verified against the live controller, and any mismatch fails the run
// with a divergence error instead of returning silently wrong numbers.
func replayRun(cfg Config) (*Result, error) {
	tr := cfg.ReplayTrace
	plat := platformFor(cfg.System)
	policy, memSys, _, err := buildMemSystem(&cfg, plat)
	if err != nil {
		return nil, err
	}

	if cfg.Obs.Enabled() {
		if cfg.Obs.Trace != nil {
			cfg.Obs.Trace.SetTimebase(plat.dram.ClockNS / 2)
		}
		memSys.SetObs(cfg.Obs)
		if p, ok := policy.(interface{ SetObs(*obs.Obs) }); ok {
			p.SetObs(cfg.Obs)
		}
	}

	if err := driveReplay(memSys, tr); err != nil {
		return nil, fmt.Errorf("sim: replay of %s/%s/%s diverged: %w",
			cfg.System, cfg.Scheme, cfg.Benchmark.Name, err)
	}

	dramCycles := tr.DRAMCycles
	seconds := float64(dramCycles) * plat.dram.ClockNS * 1e-9
	memSys.FlushObs() // close the trailing idle-window run
	stats := memSys.Stats()

	breakdown, err := energy.DRAMEnergy(plat.power, plat.dram, plat.channels, stats, dramCycles)
	if err != nil {
		return nil, err
	}
	cpuJ := energy.CPUEnergy(plat.cpuPower, seconds, tr.Instructions)
	retryJ := energy.RetryEnergyJ(plat.power, stats)
	if cfg.Obs.Enabled() {
		o := cfg.Obs
		o.Counter("sim_runs_total").Inc()
		o.Counter("sim_cpu_cycles_total").Add(tr.CPUCycles)
		o.Counter("sim_dram_cycles_total").Add(dramCycles)
		o.Counter("loop_events_fired_total").Add(tr.EventsFired)
		o.Counter("loop_cycles_skipped_total").Add(tr.CyclesSkipped)
		energy.RecordMetrics(o, breakdown, cpuJ, retryJ)
		// Counters owned by the components replay skips, restored from the
		// trace so a replayed run's metrics CSV matches a full run's.
		o.Counter("cpu_thread_blocks_total").Add(tr.ThreadBlocks)
		o.Counter("cache_wb_backpressure_total").Add(tr.WBBackpressure)
		o.Counter("cache_fill_retry_total").Add(tr.FillRetries)
		o.Counter("cache_prefetch_dropped_total").Add(tr.Cache.PrefetchesDropped)
		o.Gauge("cache_wb_queue_peak").Max(tr.WBQueuePeak)
	}
	return &Result{
		System:       cfg.System,
		Scheme:       cfg.Scheme,
		Benchmark:    cfg.Benchmark.Name,
		CPUCycles:    tr.CPUCycles,
		DRAMCycles:   tr.DRAMCycles,
		Seconds:      seconds,
		Instructions: tr.Instructions,
		Mem:          stats,
		Cache:        tr.Cache,
		Loop:         LoopStats{EventsFired: tr.EventsFired, CyclesSkipped: tr.CyclesSkipped, Steplock: tr.Steplock},
		DRAM:         breakdown,
		CPUJ:         cpuJ,
		RetryJ:       retryJ,
	}, nil
}

// Divergence kinds, recorded cheaply during the drive; the error string is
// only formatted after the loop stops (diagnostics off the hot path).
const (
	divNone       = iota
	divCompletion // request completed at a cycle other than the recorded one
	divRejected   // enqueue rejected where the recording accepted
	divNoRead     // promote with no matching read in flight
)

// replayDriver holds the per-drive scratch the hot loop runs out of. All
// event-proportional state is allocated up front in a constant number of
// slices/maps, so the drive itself is allocation-free: the steady-state
// replay cost is the backend simulation (scheduling, codec, phy), not
// driver bookkeeping. TestReplayDriverZeroAllocPerEvent pins this.
type replayDriver struct {
	memSys *memctrl.System
	events []trace.Event
	reqs   []memctrl.Request // one preallocated request per event, indexed by event
	prom   []int32           // Promote events: target ReadAccept event index, or -1

	// First divergence, recorded as raw facts; see err().
	divKind  int
	divEvent int   // index of the offending event
	divAt    int64 // observed completion cycle (divCompletion only)
}

// newReplayDriver builds the scratch for one drive. Promote targets are
// resolved here, in one forward pass, instead of with a live line→request
// map updated on every completion: a Promote at clock c targets the latest
// recorded read of its line still in flight at c (accepted at or before c,
// completing strictly after it) — exactly what the recorded run's promote
// saw.
func newReplayDriver(memSys *memctrl.System, tr *trace.Trace) *replayDriver {
	d := &replayDriver{
		memSys:   memSys,
		events:   tr.Events,
		reqs:     make([]memctrl.Request, len(tr.Events)),
		divEvent: -1,
	}
	nProm, nRead := 0, 0
	for i := range d.events {
		switch d.events[i].Kind {
		case trace.Promote:
			nProm++
		case trace.ReadAccept:
			nRead++
		}
	}
	if nProm > 0 {
		d.prom = make([]int32, len(d.events))
		lastRead := make(map[int64]int32, nRead)
		for i := range d.events {
			e := &d.events[i]
			switch e.Kind {
			case trace.ReadAccept:
				lastRead[e.Line] = int32(i)
			case trace.Promote:
				d.prom[i] = -1
				if j, ok := lastRead[e.Line]; ok && d.events[j].DoneAt > e.Clock {
					d.prom[i] = j
				}
			}
		}
	}
	memSys.SetDoneHook(d.onDone)
	return d
}

// onDone is the channel-wide completion hook: one integer compare per
// completion against the recorded cycle, with the event identity carried in
// Request.Tag (no per-request closure, no allocation).
func (d *replayDriver) onDone(req *memctrl.Request, now int64) {
	if now != d.events[req.Tag].DoneAt {
		d.setDiv(divCompletion, req.Tag, now)
	}
}

func (d *replayDriver) setDiv(kind, event int, at int64) {
	if d.divKind == divNone {
		d.divKind, d.divEvent, d.divAt = kind, event, at
	}
}

// apply enqueues event i. The request is rebuilt in place in the
// preallocated slot (a full struct assignment, so no controller-side state
// from a previous use leaks through).
func (d *replayDriver) apply(i int) {
	e := &d.events[i]
	switch e.Kind {
	case trace.ReadAccept:
		req := &d.reqs[i]
		*req = memctrl.Request{Line: e.Line, Demand: e.Demand, Stream: e.Stream, Tag: i}
		if !d.memSys.Enqueue(req, e.Clock) {
			d.setDiv(divRejected, i, e.Clock)
		}
	case trace.WriteAccept:
		req := &d.reqs[i]
		*req = memctrl.Request{Line: e.Line, Write: true, Stream: e.Stream, Data: e.Data, Tag: i}
		if !d.memSys.Enqueue(req, e.Clock) {
			d.setDiv(divRejected, i, e.Clock)
		}
	case trace.Promote:
		if t := d.prom[i]; t >= 0 {
			d.reqs[t].Demand = true
		} else {
			d.setDiv(divNoRead, i, e.Clock)
		}
	}
}

// err formats the first divergence after the drive stops. Building the
// message here keeps the hot path to bare compares.
func (d *replayDriver) err() error {
	if d.divKind == divNone {
		return nil
	}
	e := &d.events[d.divEvent]
	kind := "read"
	if e.Kind == trace.WriteAccept {
		kind = "write"
	}
	switch d.divKind {
	case divCompletion:
		return fmt.Errorf("%s of line %d completed at cycle %d, recorded %d", kind, e.Line, d.divAt, e.DoneAt)
	case divRejected:
		return fmt.Errorf("%s of line %d rejected at cycle %d (accepted when recorded)", kind, e.Line, e.Clock)
	default:
		return fmt.Errorf("promote of line %d at cycle %d with no read in flight", e.Line, e.Clock)
	}
}

// driveReplay walks the memory system across the recorded timeline. The
// cadence rules mirror the main loops:
//
//   - Cycle 0 always fires (both loop modes land CPU cycle 0, which ticks
//     DRAM cycle 0), and SkipUntil can only account cycles *after* the
//     current one — so the driver starts with a real Tick(0).
//   - In a recorded run, every request accepted at DRAM cycle d was
//     enqueued after the controller covered d and before it covered d+1,
//     so events apply immediately after the driver lands on their clock.
//   - Between event clocks the driver follows memSys.NextWake: refreshes,
//     power-down transitions, and scheduled issues come due between
//     requests and must tick exactly as in the recorded run. NextWake's
//     lower-bound contract guarantees no acting cycle is jumped over, and
//     extra no-op ticks are harmless — the PR-4 loop-equivalence property
//     (steplock ≡ event skipping, byte-identical) is precisely that the
//     statistics do not depend on which no-op cycles are ticked vs
//     bulk-accounted.
//
// Unlike the front-end loops, the driver never consults the scheduler's
// event clock or the cache/CPU wake bounds — the trace already proves the
// front end idle — and it skips the NextWake scan entirely whenever the
// cursor over the recorded acceptance clocks shows the next event due on
// the very next cycle (the common case inside a burst: the scan could
// never name an earlier cycle, since NextWake > now always).
//
// The total accounted cycles equal the trace's DRAMCycles, so the
// controller's Ticks/occupancy/Figure-5 statistics reconcile exactly with
// a full run's.
func driveReplay(memSys *memctrl.System, tr *trace.Trace) error {
	d := newReplayDriver(memSys, tr)
	events := d.events
	n := len(events)
	finalD := tr.DRAMCycles - 1

	i := 0
	memSys.Tick(0)
	last := int64(0)
	for ; i < n && events[i].Clock == 0; i++ {
		d.apply(i)
	}
	for last < finalD && d.divKind == divNone {
		var next int64
		if i < n && events[i].Clock == last+1 {
			// Cursor fast path: the next recorded acceptance is due on the
			// next cycle, so the wake scan is pointless.
			next = last + 1
		} else {
			next = memSys.NextWake()
			if i < n && events[i].Clock < next {
				next = events[i].Clock
			}
			if next <= last {
				next = last + 1
			}
			if next > finalD {
				// Nothing acts between here and the horizon; bulk-account the
				// tail so total accounted cycles equal the recorded DRAMCycles.
				memSys.SkipUntil(finalD)
				last = finalD
				break
			}
			if next > last+1 {
				memSys.SkipUntil(next - 1)
			}
		}
		memSys.Tick(next)
		last = next
		for ; i < n && events[i].Clock == next; i++ {
			d.apply(i)
		}
	}
	if err := d.err(); err != nil {
		return err
	}
	if i < n {
		return fmt.Errorf("%d events unapplied at the recorded %d-cycle horizon", n-i, tr.DRAMCycles)
	}
	if memSys.Pending() {
		return fmt.Errorf("requests still pending at the recorded %d-cycle horizon (the recorded run drained)", tr.DRAMCycles)
	}
	return nil
}
