package sim

import (
	"runtime"
	"runtime/debug"
	"testing"

	"mil/internal/memctrl"
	"mil/internal/trace"
	"mil/internal/workload"
)

// allocProbeCfg is the backend configuration the allocation probe drives.
// Read-only traffic keeps the overlay memory from growing (writes insert
// into its map, a data-proportional cost shared with fresh simulation), so
// the only allocations left to observe are the replay driver's own.
func allocProbeCfg(t *testing.T) Config {
	t.Helper()
	b, err := workload.ByName("STRMATCH")
	if err != nil {
		t.Fatal(err)
	}
	return Config{System: Server, Scheme: "mil", Benchmark: b, MemOpsPerThread: 100, Seed: 1}
}

// recordReadTrace hand-records a read-only trace with nReads spaced demand
// reads. The recording walk lands on exactly the cycles driveReplay will
// land on (NextWake bounds clamped to the next planned enqueue clock), so
// the replayed controller sees an identical cadence and accepts/completes
// at the recorded cycles.
func recordReadTrace(t *testing.T, nReads int) *trace.Trace {
	t.Helper()
	cfg := allocProbeCfg(t)
	plat := platformFor(cfg.System)
	_, memSys, _, err := buildMemSystem(&cfg, plat)
	if err != nil {
		t.Fatal(err)
	}

	last := int64(-1)
	memSys.Tick(0)
	last = 0
	// land advances to cycle d with the same cadence driveReplay uses:
	// tick every NextWake bound at or before d, bulk-skip the gaps.
	land := func(d int64) {
		for last < d {
			next := memSys.NextWake()
			if next > d {
				next = d
			}
			if next <= last {
				next = last + 1
			}
			if next > last+1 {
				memSys.SkipUntil(next - 1)
			}
			memSys.Tick(next)
			last = next
		}
	}

	events := make([]trace.Event, 0, nReads)
	for k := 0; k < nReads; k++ {
		clock := last + 3
		land(clock)
		done := int64(-1)
		req := &memctrl.Request{Line: int64(k), Demand: true, OnDone: func(now int64) { done = now }}
		if !memSys.Enqueue(req, clock) {
			t.Fatalf("read %d rejected at cycle %d", k, clock)
		}
		for done < 0 {
			land(last + 1)
		}
		events = append(events, trace.Event{
			Kind: trace.ReadAccept, Clock: clock, Line: int64(k), Demand: true, DoneAt: done,
		})
	}
	return &trace.Trace{DRAMCycles: last + 2, Events: events}
}

// driveMallocs replays tr on a fresh backend and returns the number of
// heap allocations driveReplay performed.
func driveMallocs(t *testing.T, tr *trace.Trace) uint64 {
	t.Helper()
	cfg := allocProbeCfg(t)
	plat := platformFor(cfg.System)
	_, memSys, _, err := buildMemSystem(&cfg, plat)
	if err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	rerr := driveReplay(memSys, tr)
	runtime.ReadMemStats(&after)
	if rerr != nil {
		t.Fatal(rerr)
	}
	return after.Mallocs - before.Mallocs
}

// TestReplayDriverZeroAllocPerEvent pins the replay fast path's steady
// state at 0 allocs per event: doubling the event count must not change
// the number of heap allocations one drive performs. The per-drive setup
// (the request slot slice, the completion hook, first-use phy scratch
// growth) is a constant number of allocations however long the trace is;
// everything per-event runs out of preallocated scratch.
func TestReplayDriverZeroAllocPerEvent(t *testing.T) {
	trSmall := recordReadTrace(t, 64)
	trBig := recordReadTrace(t, 128)

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	small := driveMallocs(t, trSmall)
	big := driveMallocs(t, trBig)
	if big != small {
		perEvent := float64(big-small) / float64(len(trBig.Events)-len(trSmall.Events))
		t.Fatalf("drive allocations scale with events: %d allocs for %d events vs %d for %d (%.2f allocs/event, want 0)",
			big, len(trBig.Events), small, len(trSmall.Events), perEvent)
	}
}
