package sim

import (
	"reflect"
	"sync"
	"testing"

	"mil/internal/workload"
)

// The re-entrancy contract (see the package comment): concurrent Runs share
// nothing, and identical Configs produce bit-identical Results no matter how
// they are scheduled. These tests are the sweep engine's foundation and are
// meant to run under -race.

// parallelOps keeps the concurrent runs short; the contract is about
// sharing, not about run length.
const parallelOps = 80

// TestRunConcurrentIdentical runs one configuration serially and four times
// concurrently (each with its own Benchmark value, as the experiments
// runner does) and requires identical results.
func TestRunConcurrentIdentical(t *testing.T) {
	cfg := func(t *testing.T) Config {
		b, err := workload.ByName("GUPS")
		if err != nil {
			t.Fatal(err)
		}
		return Config{System: Server, Scheme: "mil", Benchmark: b, MemOpsPerThread: parallelOps}
	}
	want, err := Run(cfg(t))
	if err != nil {
		t.Fatal(err)
	}

	const n = 4
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		c := cfg(t)
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = Run(c)
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(want, results[i]) {
			t.Fatalf("concurrent run %d diverged from the serial run:\nserial:     %+v\nconcurrent: %+v",
				i, want, results[i])
		}
	}
}

// TestRunSharedBenchmark shares ONE *workload.Benchmark value between
// concurrent runs of different schemes: the benchmark's lazy layout
// memoization is the only mutation in the whole stack, and it must be safe
// to race into.
func TestRunSharedBenchmark(t *testing.T) {
	b, err := workload.ByName("MM")
	if err != nil {
		t.Fatal(err)
	}
	schemes := []string{"baseline", "milc", "mil", "lwc3"}
	results := make([]*Result, len(schemes))
	errs := make([]error, len(schemes))
	var wg sync.WaitGroup
	for i, s := range schemes {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = Run(Config{
				System: Server, Scheme: s, Benchmark: b, MemOpsPerThread: parallelOps,
			})
		}()
	}
	wg.Wait()
	for i, s := range schemes {
		if errs[i] != nil {
			t.Fatalf("%s: %v", s, errs[i])
		}
		if results[i].Mem.ColumnCommands() == 0 {
			t.Fatalf("%s: no traffic", s)
		}
	}

	// The shared value must now behave exactly like a fresh one.
	fresh, err := workload.ByName("MM")
	if err != nil {
		t.Fatal(err)
	}
	if b.Lines() != fresh.Lines() {
		t.Fatalf("shared benchmark layout corrupted: %d lines vs %d", b.Lines(), fresh.Lines())
	}
	again, err := Run(Config{System: Server, Scheme: "baseline", Benchmark: b, MemOpsPerThread: parallelOps})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, results[0]) {
		t.Fatal("re-run on the shared benchmark diverged from the concurrent run")
	}
}

// TestConfigCopyable pins the Config contract the sweep engine relies on: a
// copied Config must run identically to the original.
func TestConfigCopyable(t *testing.T) {
	b, err := workload.ByName("GUPS")
	if err != nil {
		t.Fatal(err)
	}
	orig := Config{System: Server, Scheme: "milc", Benchmark: b, MemOpsPerThread: parallelOps, Seed: 7}
	cp := orig
	r1, err := Run(orig)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("copied Config ran differently from the original")
	}
}
