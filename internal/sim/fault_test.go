package sim

import (
	"testing"

	"mil/internal/fault"
	"mil/internal/memctrl"
	"mil/internal/workload"
)

func faultRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func faultConfig(t *testing.T, scheme string, ops int64) Config {
	t.Helper()
	b, err := workload.ByName("GUPS")
	if err != nil {
		t.Fatal(err)
	}
	return Config{System: Server, Scheme: scheme, Benchmark: b, MemOpsPerThread: ops}
}

// sameResult compares the observable fingerprint of two runs.
func sameResult(a, b *Result) bool {
	return a.CPUCycles == b.CPUCycles && a.DRAMCycles == b.DRAMCycles &&
		a.Mem.Zeros == b.Mem.Zeros && a.Mem.CostUnits == b.Mem.CostUnits &&
		a.Mem.Reads == b.Mem.Reads && a.Mem.Writes == b.Mem.Writes &&
		a.DRAM.Total() == b.DRAM.Total()
}

func TestZeroBERFaultPathIsNoOp(t *testing.T) {
	// The acceptance bar for the whole fault layer: a disabled fault
	// config (BER 0, no RAS features) must be bit-identical to a config
	// that never mentions faults.
	plain := faultRun(t, faultConfig(t, "mil", 300))
	wired := faultConfig(t, "mil", 300)
	wired.Fault = fault.Config{BER: 0, Seed: 5} // seed alone must not matter
	wired.Retry = memctrl.RetryConfig{MaxRetries: 3}
	faulted := faultRun(t, wired)
	if !sameResult(plain, faulted) {
		t.Fatalf("disabled fault path changed the run:\nplain  %+v\nfault  %+v", plain, faulted)
	}
	if faulted.Mem.BitErrors != 0 || faulted.Mem.Failures() != 0 || faulted.RetryJ != 0 {
		t.Fatalf("phantom errors on a clean link: %+v", faulted.Mem)
	}
}

func TestSeedReproducibility(t *testing.T) {
	cfg := faultConfig(t, "mil", 300)
	cfg.Fault = fault.Config{BER: 2e-4}
	cfg.WriteCRC, cfg.CAParity = true, true
	cfg.Seed = 42
	a, b := faultRun(t, cfg), faultRun(t, cfg)
	if !sameResult(a, b) || a.Mem.BitErrors != b.Mem.BitErrors {
		t.Fatalf("same seed diverged: %+v vs %+v", a.Mem, b.Mem)
	}
	cfg.Seed = 43
	c := faultRun(t, cfg)
	if sameResult(a, c) && a.Mem.BitErrors == c.Mem.BitErrors {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestFaultInjectionDrivesRetries(t *testing.T) {
	// Enough traffic that stores overflow the caches into writebacks -
	// write CRC only shows up once actual write bursts hit the bus.
	cfg := faultConfig(t, "mil", 3000)
	cfg.Fault = fault.Config{BER: 5e-4}
	cfg.WriteCRC, cfg.CAParity = true, true
	cfg.Seed = 7
	r := faultRun(t, cfg)
	m := r.Mem
	if m.BitErrors == 0 || m.Failures() == 0 || m.Retries() == 0 {
		t.Fatalf("BER 5e-4 left no trace: %+v", m)
	}
	if m.CRCBeats == 0 {
		t.Fatal("write CRC beats not charged")
	}
	if r.RetryJ <= 0 || r.RetryJ >= r.DRAM.IO {
		t.Fatalf("retry energy %v vs IO %v", r.RetryJ, r.DRAM.IO)
	}
	// System-level conservation across all channels.
	if m.Writes != m.WritesCompleted+m.WriteRetries {
		t.Fatalf("write conservation: %+v", m)
	}
	if m.Reads != m.ReadsCompleted+m.ReadRetries {
		t.Fatalf("read conservation: %+v", m)
	}
	if m.Failures() != m.Retries()+m.RetriesExhausted {
		t.Fatalf("failure conservation: %+v", m)
	}
}

func TestDegradeLadderEngagesUnderHighBER(t *testing.T) {
	// Clean link: the degrader must be invisible - identical to plain mil.
	mil := faultRun(t, faultConfig(t, "mil", 300))
	deg := faultRun(t, faultConfig(t, "mil-degrade", 300))
	if !sameResult(mil, deg) {
		t.Fatalf("idle degrader changed the run: %+v vs %+v", mil, deg)
	}
	// Heavy BER: the ladder must push traffic down to DBI.
	cfg := faultConfig(t, "mil-degrade", 300)
	cfg.Fault = fault.Config{BER: 2e-3}
	cfg.WriteCRC, cfg.CAParity = true, true
	cfg.Seed = 7
	r := faultRun(t, cfg)
	if r.Mem.CodecBursts["dbi"] == 0 {
		t.Fatalf("ladder never reached DBI: %v", r.Mem.CodecBursts)
	}
	if r.Mem.CodecBursts["dbi"] <= r.Mem.CodecBursts["lwc3"] {
		t.Fatalf("ladder barely engaged at BER 2e-3: %v", r.Mem.CodecBursts)
	}
}

func TestConfigValidateRejectsBadFaultSetups(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative BER", func(c *Config) { c.Fault.BER = -1 }},
		{"BER of 1", func(c *Config) { c.Fault.BER = 1 }},
		{"bad stuck pin", func(c *Config) { c.Fault.StuckPins = []int{999} }},
		{"negative retries", func(c *Config) { c.Retry.MaxRetries = -2 }},
		{"inverted backoff", func(c *Config) { c.Retry = memctrl.RetryConfig{BackoffBase: 64, BackoffMax: 8} }},
		{"CRC on LPDDR3", func(c *Config) { c.System = Mobile; c.WriteCRC = true }},
		{"CA parity on LPDDR3", func(c *Config) { c.System = Mobile; c.CAParity = true }},
	}
	for _, tc := range cases {
		cfg := faultConfig(t, "mil", 100)
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
		}
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted", tc.name)
		}
	}
}
