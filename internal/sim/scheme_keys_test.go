package sim

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mil/internal/fault"
	"mil/internal/workload"
)

// TestFrontEndKeyGolden snapshots FrontEndKey and ClusterKey for every
// registered scheme across the axes the registry controls (look-ahead,
// fault injection). The keys name recorded trace streams on disk
// (DESIGN.md §5.11-§5.12), so any drift — a renamed timing class, a
// scheme switching clusters — silently orphans or mis-shares caches;
// this golden turns that into a reviewed diff. Re-bless with -update.
func TestFrontEndKeyGolden(t *testing.T) {
	var sb strings.Builder
	for _, name := range SchemeNames() {
		for _, x := range []int{0, 8} {
			for _, faulty := range []bool{false, true} {
				cfg := Config{System: Server, Scheme: name, LookaheadX: x, MemOpsPerThread: 1000}
				if faulty {
					cfg.Fault = fault.Config{BER: 1e-4}
				}
				cluster := cfg.ClusterKey()
				if cluster == "" {
					cluster = "(unclusterable)"
				}
				fmt.Fprintf(&sb, "scheme=%s x=%d fault=%v\n  fe:      %s\n  cluster: %s\n",
					name, x, faulty, cfg.FrontEndKey(), cluster)
			}
		}
	}
	got := []byte(sb.String())

	path := filepath.Join("testdata", "keys", "frontend_keys.golden")
	if *updateObs {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to bless): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("front-end keys drifted from golden (re-bless with -update if intentional):\n%s",
			diffLines(string(want), string(got)))
	}
}

// diffLines renders the first few differing lines of two texts.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var sb strings.Builder
	shown := 0
	for i := 0; shown < 6 && (i < len(w) || i < len(g)); i++ {
		wl, gl := "", ""
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			fmt.Fprintf(&sb, "line %d:\n  -%s\n  +%s\n", i+1, wl, gl)
			shown++
		}
	}
	return sb.String()
}

// TestBanditLoopModesAgree is mil-bandit's loop-equivalence differential:
// the adaptive policy observes epochs at controller-issued burst
// boundaries, so the event loop's cycle skipping must deliver the exact
// same feedback sequence as the steplock reference — per seed, byte for
// byte. GUPS keeps the write mix high enough that the probes see real
// data every epoch.
func TestBanditLoopModesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	if raceEnabled {
		t.Skip("single-threaded loop-mode differential; nothing to race")
	}
	b, err := workload.ByName("GUPS")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{0, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			step, event := runBoth(t, Config{
				System: Server, Scheme: "mil-bandit", Benchmark: b,
				MemOpsPerThread: 1500, Seed: seed,
			})
			if len(event.Mem.CodecBursts) == 0 {
				t.Fatal("no codec bursts recorded; bandit never played")
			}
			requireIdentical(t, step, event)
		})
	}
}
