package sim

import (
	"testing"

	"mil/internal/trace"
	"mil/internal/workload"
)

// benchReplayCfg is the configuration the replay benchmarks drive: a
// mid-size MiL cell, the same shape the sweep engine replays by the
// hundreds. The op budget matches the replay-equivalence tests.
func benchReplayCfg(tb testing.TB, bench string) Config {
	tb.Helper()
	b, err := workload.ByName(bench)
	if err != nil {
		tb.Fatal(err)
	}
	return Config{System: Server, Scheme: "mil", Benchmark: b, MemOpsPerThread: 1200, Seed: 42}
}

// recordOnce records the benchmark configuration's trace outside the timed
// region.
func recordOnce(tb testing.TB, cfg Config) *trace.Trace {
	tb.Helper()
	var tr *trace.Trace
	rcfg := cfg
	rcfg.RecordTrace = func(t *trace.Trace) { tr = t }
	if _, err := Run(rcfg); err != nil {
		tb.Fatal(err)
	}
	return tr
}

// BenchmarkReplay measures the replay fast path: driving the memory backend
// from a recorded trace. This is the unit of work the sweep engine's trace
// cache performs per hit, so its cost against BenchmarkFreshSim is exactly
// the replay_speedup milbench reports. The steady-state target is 0
// allocs/op (divergence diagnostics allocate only on mismatch).
func BenchmarkReplay(b *testing.B) {
	for _, bench := range []string{"STRMATCH", "GUPS"} {
		b.Run(bench, func(b *testing.B) {
			cfg := benchReplayCfg(b, bench)
			tr := recordOnce(b, cfg)
			rcfg := cfg
			rcfg.ReplayTrace = tr
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(rcfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFreshSim is the fresh-simulation baseline BenchmarkReplay is
// raced against.
func BenchmarkFreshSim(b *testing.B) {
	for _, bench := range []string{"STRMATCH", "GUPS"} {
		b.Run(bench, func(b *testing.B) {
			cfg := benchReplayCfg(b, bench)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
