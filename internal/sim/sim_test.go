package sim

import (
	"errors"
	"strings"
	"testing"

	schemereg "mil/internal/scheme"
	"mil/internal/workload"
)

// quickRun executes a short verified run.
func quickRun(t *testing.T, system SystemKind, scheme, bench string, ops int64) *Result {
	t.Helper()
	b, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Config{
		System: system, Scheme: scheme, Benchmark: b,
		MemOpsPerThread: ops, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSchemeNamesAllRun(t *testing.T) {
	for _, scheme := range SchemeNames() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			r := quickRun(t, Server, scheme, "GUPS", 200)
			if r.Mem.ColumnCommands() == 0 {
				t.Fatal("no memory traffic")
			}
			if r.CPUCycles <= 0 || r.SystemJ() <= 0 {
				t.Fatalf("degenerate result: %+v", r)
			}
		})
	}
}

func TestUnknownSchemeRejected(t *testing.T) {
	b, _ := workload.ByName("GUPS")
	_, err := Run(Config{System: Server, Scheme: "nope", Benchmark: b})
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
	// The wrap must keep scheme.ErrUnknown reachable: the CLIs branch on
	// it to print the annotated scheme table instead of a bare string.
	if !errors.Is(err, schemereg.ErrUnknown) {
		t.Fatalf("unknown-scheme error %v does not wrap scheme.ErrUnknown", err)
	}
	if _, err := Run(Config{System: Server, Scheme: "mil"}); err == nil {
		t.Fatal("nil benchmark accepted")
	}
}

func TestMobileSystemRuns(t *testing.T) {
	for _, scheme := range []string{"baseline", "mil", "milc"} {
		r := quickRun(t, Mobile, scheme, "SWIM", 200)
		if r.Mem.ColumnCommands() == 0 {
			t.Fatalf("%s: no traffic", scheme)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := quickRun(t, Server, "mil", "CG", 300)
	b := quickRun(t, Server, "mil", "CG", 300)
	if a.CPUCycles != b.CPUCycles || a.Mem.Zeros != b.Mem.Zeros || a.Mem.Reads != b.Mem.Reads {
		t.Fatalf("nondeterministic: %d/%d zeros %d/%d", a.CPUCycles, b.CPUCycles, a.Mem.Zeros, b.Mem.Zeros)
	}
}

func TestMiLReducesZerosVersusBaseline(t *testing.T) {
	base := quickRun(t, Server, "baseline", "GUPS", 500)
	mil := quickRun(t, Server, "mil", "GUPS", 500)
	if mil.Mem.Zeros >= base.Mem.Zeros {
		t.Fatalf("MiL zeros %d not below DBI %d", mil.Mem.Zeros, base.Mem.Zeros)
	}
	// The headline claim's direction: IO energy drops.
	if mil.DRAM.IO >= base.DRAM.IO {
		t.Fatalf("MiL IO %v not below baseline %v", mil.DRAM.IO, base.DRAM.IO)
	}
}

func TestAlwaysLWC3SlowerThanBaselineOnGUPS(t *testing.T) {
	// Figure 2: naive always-on 3-LWC inflates execution time on
	// bandwidth-bound GUPS.
	base := quickRun(t, Server, "baseline", "GUPS", 500)
	lwc := quickRun(t, Server, "lwc3", "GUPS", 500)
	if lwc.CPUCycles <= base.CPUCycles {
		t.Fatalf("always-3-LWC (%d cycles) not slower than DBI (%d)", lwc.CPUCycles, base.CPUCycles)
	}
}

func TestMiLPerformanceCloseToBaseline(t *testing.T) {
	base := quickRun(t, Server, "baseline", "CG", 400)
	mil := quickRun(t, Server, "mil", "CG", 400)
	ratio := float64(mil.CPUCycles) / float64(base.CPUCycles)
	if ratio > 1.15 {
		t.Fatalf("MiL slowdown %.3f on CG, want modest", ratio)
	}
}

func TestMiLUsesBothCodes(t *testing.T) {
	r := quickRun(t, Server, "mil", "CG", 500)
	if r.Mem.CodecBursts["milc"] == 0 {
		t.Fatalf("MiLC never used: %v", r.Mem.CodecBursts)
	}
	if r.Mem.CodecBursts["lwc3"] == 0 {
		t.Fatalf("3-LWC never used: %v", r.Mem.CodecBursts)
	}
}

func TestEnergyBreakdownSane(t *testing.T) {
	r := quickRun(t, Server, "baseline", "OCEAN", 400)
	if r.DRAM.Background <= 0 || r.DRAM.IO <= 0 || r.DRAM.RdWr <= 0 {
		t.Fatalf("missing energy components: %+v", r.DRAM)
	}
	if r.CPUJ <= 0 {
		t.Fatal("no CPU energy")
	}
	if r.DRAM.Codec != 0 {
		t.Fatalf("baseline charged codec energy %v", r.DRAM.Codec)
	}
	r2 := quickRun(t, Server, "mil", "OCEAN", 400)
	if r2.DRAM.Codec <= 0 {
		t.Fatal("MiL codec energy missing")
	}
}

func TestBusStatisticsPopulated(t *testing.T) {
	r := quickRun(t, Server, "baseline", "SWIM", 500)
	if r.Mem.GapPairs == 0 {
		t.Fatal("no gap samples")
	}
	if r.Mem.GapHist.Total() != r.Mem.GapPairs {
		t.Fatal("gap histogram inconsistent")
	}
	if r.Mem.SlackHist.Total() == 0 {
		t.Fatal("no slack samples")
	}
	if r.BusUtilization() <= 0 || r.BusUtilization() >= 1 {
		t.Fatalf("utilization %v", r.BusUtilization())
	}
	if r.Mem.IdlePendingCycles == 0 {
		t.Fatal("no idle-with-pending cycles observed")
	}
}

func TestSystemKindString(t *testing.T) {
	if Server.String() != "server-ddr4" || Mobile.String() != "mobile-lpddr3" {
		t.Fatal("kind strings")
	}
}

func TestTraceOutput(t *testing.T) {
	b, err := workload.ByName("MM")
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if _, err := Run(Config{
		System: Server, Scheme: "mil", Benchmark: b,
		MemOpsPerThread: 150, Trace: &buf,
	}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ACT", "RD", "codec=", "zeros=", "ch0", "ch1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q; head:\n%.400s", want, out)
		}
	}
}

func TestPowerDownExtensionSavesBackgroundEnergy(t *testing.T) {
	b, err := workload.ByName("MM") // mostly idle DRAM: maximal PD benefit
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(Config{System: Server, Scheme: "baseline", Benchmark: b, MemOpsPerThread: 300})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(Config{System: Server, Scheme: "baseline", Benchmark: b, MemOpsPerThread: 300, PowerDown: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.Mem.PowerDownCycles == 0 {
		t.Fatal("no power-down engaged")
	}
	// Joules per DRAM cycle of background must drop (runtimes may differ).
	offBG := off.DRAM.Background / float64(off.DRAMCycles)
	onBG := on.DRAM.Background / float64(on.DRAMCycles)
	if onBG >= offBG {
		t.Fatalf("background per cycle did not drop: %v -> %v", offBG, onBG)
	}
}
