// Package sim wires the full evaluation stack together: workload streams
// feed the core models, which run against the cache hierarchy, whose misses
// become controller requests scheduled onto the cycle-accurate DRAM model,
// with every burst's bits accounted by the IO model. One Run reproduces one
// bar of the paper's figures.
//
// Re-entrancy contract: Run is safe to call from any number of goroutines
// at once. No package in the stack (sim, memctrl, dram, cache, cpu, code,
// milcore, fault, energy, workload, bitblock) holds package-level mutable
// state - the only package-level variables anywhere are init-time constant
// tables - and Run builds a private instance of every model it ticks.
// Config is a plain value, safely copyable; the pointers it carries
// (Benchmark, Trace, Obs) are the caller's to share or not. A
// *workload.Benchmark may feed concurrent runs (its lazy layout memoization
// is synchronized), and an Obs metrics registry may too (every update is an
// atomic, commutative integer operation), but a Trace writer shared between
// runs will interleave lines and an Obs trace recorder is single-run
// only. Identical
// Configs produce bit-identical Results regardless of how many runs execute
// concurrently: every stochastic path is seeded from Config alone.
package sim

import (
	"fmt"

	"mil/internal/cache"
	"mil/internal/code"
	"mil/internal/cpu"
	"mil/internal/dram"
	"mil/internal/energy"
	"mil/internal/memctrl"
	"mil/internal/milcore"
)

// SystemKind selects one of the two evaluated platforms (Table 2).
type SystemKind int

// The evaluated systems.
const (
	// Server is the Niagara-like microserver with DDR4-3200.
	Server SystemKind = iota
	// Mobile is the Snapdragon-like system with LPDDR3-1600.
	Mobile
)

// String implements fmt.Stringer.
func (k SystemKind) String() string {
	if k == Mobile {
		return "mobile-lpddr3"
	}
	return "server-ddr4"
}

// platform bundles one system's sub-configurations.
type platform struct {
	dram     dram.Config
	channels int
	cpu      cpu.Config
	cache    cache.Config
	power    energy.DRAMPower
	cpuPower energy.CPUPower
	// pod is true for the zero-cost (VDDQ-terminated) interface.
	pod bool
	// computeScale multiplies each benchmark's compute padding: the mobile
	// cores spend more cycles per memory operation relative to their
	// (slower, seamless-burst) bus than the server cores do.
	computeScale int64
}

// platformFor returns the Table 2 configuration of a system.
func platformFor(kind SystemKind) platform {
	if kind == Mobile {
		return platform{
			dram: dram.LPDDR3_1600(), channels: 2,
			cpu: cpu.MobileConfig(), cache: cache.MobileConfig(),
			power: energy.LPDDR3Power(), cpuPower: energy.MobileCPUPower(),
			pod: false, computeScale: 44,
		}
	}
	return platform{
		dram: dram.DDR4_3200(), channels: 2,
		cpu: cpu.ServerConfig(), cache: cache.ServerConfig(),
		power: energy.DDR4Power(), cpuPower: energy.ServerCPUPower(),
		pod: true, computeScale: 1,
	}
}

// SchemeNames lists every coding configuration Run accepts:
//
//	baseline        - DBI (on LPDDR3: via transition signaling; Section 7.4)
//	bi              - level-signaled bus-invert on the wires (Section 2.1.2)
//	milc            - MiLC-only (always the base code)
//	cafo2, cafo4    - CAFO under the MiL framework, 2 or 4 iterations
//	mil             - the full opportunistic MiL framework
//	mil3            - extension (Section 7.5.3): three-tier MiL with the
//	                  intermediate BL14 hybrid code between MiLC and 3-LWC
//	lwc3            - always the (8,17) 3-LWC (Figure 2's naive scheme)
//	bl10..bl16      - fixed burst lengths for the Figure 20 sweep
//	raw             - uncoded transfers (Figure 7 normalization)
//	mil-degrade     - MiL wrapped in the graceful-degradation ladder
//	                  (3-LWC/MiLC -> MiLC -> DBI on persistent link errors)
func SchemeNames() []string {
	return []string{
		"baseline", "bi", "milc", "cafo2", "cafo4", "mil", "mil3", "mil-nowropt",
		"mil-x4", "mil-degrade", "lwc3", "bl10", "bl12", "bl14", "bl16", "raw",
	}
}

// timingClass maps a scheme (plus its look-ahead override) onto its
// front-end timing-equivalence class. Two configurations that agree on
// everything else and share a class produce the *identical* request stream
// at the cache↔memctrl boundary — same clocks, addresses, priorities, and
// completion times — so one recorded trace replays for all of them. The
// codec only feeds back into front-end timing through the burst length the
// policy picks, hence:
//
//   - baseline/bi/raw all drive fixed 8-beat bursts ("fixed8"): DBI,
//     wire-level bus-invert, and uncoded transfers differ on the pins, not
//     on the schedule.
//   - a fixed policy's schedule depends on its codec only through the
//     burst beat count and the codec's ExtraLatency: milc/bl10 run the
//     identical MiLC codec ("fixed10"), lwc3/bl16 the identical 3-LWC
//     ("fixed16"). cafo2/cafo4 are 10-beat too but add 2 and 4 cycles of
//     encode latency, so they are NOT in fixed10 (the replay driver's
//     divergence check catches exactly this kind of wishful merge).
//   - mil and mil-degrade are identical while no faults fire (the ladder's
//     level 0 delegates verbatim and can only demote on link errors), and
//     a look-ahead of 0 means the scheme default, so x=0 ≡ x=default.
//     Distinct look-ahead distances do NOT merge: on streaming workloads
//     the bus slack hides any x (STRMATCH replays byte-identically across
//     x = 2..14), but on random-access GUPS the slack runs out and a
//     shorter look-ahead shifts read completions by a few cycles — the
//     replay fence rejects the cross-x replay there, so each x stays its
//     own class rather than relying on workload-dependent luck.
//   - with fault injection enabled, error draws depend on the bits each
//     codec drives, which feeds back into retry timing — every scheme
//     becomes its own class.
//
// Everything else (cafo/bl12/bl14/mil3/mil-x4/mil-nowropt and unknown
// schemes) is conservatively a singleton class.
func timingClass(scheme string, lookaheadX int, faultEnabled bool) string {
	la := 0
	switch scheme {
	case "mil", "mil-degrade", "mil-nowropt":
		la = lookaheadX
		if la == 0 {
			la = milcore.DefaultLookahead
		}
	}
	if faultEnabled {
		return fmt.Sprintf("fault:%s|x=%d", scheme, la)
	}
	switch scheme {
	case "baseline", "bi", "raw":
		return "fixed8"
	case "milc", "bl10":
		return "fixed10"
	case "lwc3", "bl16":
		return "fixed16"
	case "mil", "mil-degrade":
		return fmt.Sprintf("mil|x=%d", la)
	}
	return fmt.Sprintf("%s|x=%d", scheme, la)
}

// FrontEndKey renders every configuration field that shapes the request
// stream at the cache↔memctrl boundary. Scheme and LookaheadX enter only
// through their timing class — that collapse is exactly what makes trace
// reuse across codec/policy cells sound. Steplock is included because a
// replayed Result reports the recorded run's loop counters; fault and
// retry knobs are included in full because retries feed controller timing
// back into the front-end.
func (c *Config) FrontEndKey() string {
	benchName := ""
	if c.Benchmark != nil {
		benchName = c.Benchmark.Name
	}
	return fmt.Sprintf("mil-fe-v1|sys=%d|class=%s|bench=%s|ops=%d|max=%d|verify=%v|pd=%v"+
		"|ber=%g|brate=%g|blen=%d|stuck=%v|stuckv=%v|fseed=%d"+
		"|crc=%v|ca=%v|retry=%d/%d/%d/%d|seed=%d|steplock=%v",
		c.System, timingClass(c.Scheme, c.LookaheadX, c.Fault.Enabled()), benchName,
		c.MemOpsPerThread, c.MaxCPUCycles, c.Verify, c.PowerDown,
		c.Fault.BER, c.Fault.BurstRate, c.Fault.BurstLen, c.Fault.StuckPins, c.Fault.StuckVal, c.Fault.Seed,
		c.WriteCRC, c.CAParity, c.Retry.MaxRetries, c.Retry.BackoffBase, c.Retry.BackoffMax, c.Retry.StormThreshold,
		c.Seed, c.Steplock)
}

// ClusterKey renders the front-end *inputs* only: FrontEndKey minus the
// timing class. Configurations sharing a ClusterKey ran the same workload
// on the same machine with the same knobs — they differ only in
// codec/policy (and look-ahead), the one axis timingClass predicts
// *statically*. The trace cluster store uses this coarser key to discover
// shared timings *empirically*: candidate traces recorded under any class
// of the cluster are trialled under the replay divergence fence, which
// rejects every mismatch — so a too-coarse key costs a failed trial, never
// a wrong number. That makes it safe for the key to ignore the class
// entirely, letting e.g. the x-sweep cells (distinct classes, often
// identical timing on streaming workloads) converge onto one stream.
//
// Fault injection is the exception (ROADMAP item 2's caveat): silent
// corruption makes the *data* — not just the timing — depend on which
// codec drove the pins, and the divergence fence verifies timing only. A
// fault-cell trace that replays clean under another knob setting could
// still carry the wrong payloads, so fault cells must never cluster:
// ClusterKey returns "" (no cluster) whenever injection is enabled, and
// callers must treat "" as unclusterable.
func (c *Config) ClusterKey() string {
	if c.Fault.Enabled() {
		return ""
	}
	benchName := ""
	if c.Benchmark != nil {
		benchName = c.Benchmark.Name
	}
	return fmt.Sprintf("mil-cluster-v1|sys=%d|bench=%s|ops=%d|max=%d|verify=%v|pd=%v"+
		"|crc=%v|ca=%v|retry=%d/%d/%d/%d|seed=%d|steplock=%v",
		c.System, benchName,
		c.MemOpsPerThread, c.MaxCPUCycles, c.Verify, c.PowerDown,
		c.WriteCRC, c.CAParity, c.Retry.MaxRetries, c.Retry.BackoffBase, c.Retry.BackoffMax, c.Retry.StormThreshold,
		c.Seed, c.Steplock)
}

// FrontEndHash is the FNV-1a hash of FrontEndKey; trace files bind to it
// the way snapshots bind to Config.Hash.
func (c *Config) FrontEndHash() uint64 {
	s := c.FrontEndKey()
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// schemeFor builds the policy and phy factory for a scheme on a platform.
// lookaheadX overrides MiL's look-ahead distance when > 0.
func schemeFor(name string, p platform, lookaheadX int) (memctrl.Policy, func() memctrl.Phy, error) {
	newPhy := func() memctrl.Phy {
		if p.pod {
			return &memctrl.PODPhy{}
		}
		return &memctrl.TransitionPhy{}
	}
	fixed := func(c code.Codec) (memctrl.Policy, func() memctrl.Phy, error) {
		return memctrl.FixedPolicy{Codec: c}, newPhy, nil
	}

	switch name {
	case "baseline":
		// DBI on both systems: DDR4 natively, LPDDR3 via flip-on-zero
		// transition signaling (Section 7.4 normalizes LPDDR3 results to
		// DBI too, which is why its savings mirror the DDR4 ones).
		return fixed(code.DBI{})
	case "bi":
		// Level-signaled bus-invert directly on the unterminated wires
		// (the Section 2.1.2 alternative), kept for comparison studies.
		return memctrl.FixedPolicy{Codec: code.Raw{}}, func() memctrl.Phy { return &memctrl.BIWirePhy{} }, nil
	case "raw":
		return fixed(code.Raw{})
	case "milc", "bl10":
		return fixed(code.MiLC{})
	case "lwc3", "bl16":
		return fixed(code.LWC3{})
	case "cafo2":
		return fixed(code.NewCAFO(2))
	case "cafo4":
		return fixed(code.NewCAFO(4))
	case "bl12", "bl14":
		total := 12
		if name == "bl14" {
			total = 14
		}
		st, err := milcore.NewStretched(code.MiLC{}, total)
		if err != nil {
			return nil, nil, err
		}
		return fixed(st)
	case "mil", "mil-nowropt", "mil-degrade":
		opts := []milcore.Option{}
		if lookaheadX > 0 {
			opts = append(opts, milcore.WithLookahead(lookaheadX))
		}
		if name == "mil-nowropt" {
			opts = append(opts, milcore.WithoutWriteOptimize())
		}
		pol, err := milcore.New(opts...)
		if err != nil {
			return nil, nil, err
		}
		if name == "mil-degrade" {
			deg, err := milcore.NewDegrader(pol)
			if err != nil {
				return nil, nil, err
			}
			return deg, newPhy, nil
		}
		return pol, newPhy, nil
	case "mil3":
		pol, err := milcore.NewTiered(code.LWC3{}, code.Hybrid{}, code.MiLC{})
		if err != nil {
			return nil, nil, err
		}
		return pol, newPhy, nil
	case "mil-x4":
		// MiL for ranks of x4 chips (Section 4.1): x4 devices have no DBI
		// pins, so the baseline is uncoded and the framework runs with the
		// pin-free codes only (hybrid BL14 wide, MiLC base).
		pol, err := milcore.NewTiered(code.Hybrid{}, code.MiLC{})
		if err != nil {
			return nil, nil, err
		}
		return pol, newPhy, nil
	}
	return nil, nil, fmt.Errorf("sim: unknown scheme %q", name)
}
