// Package sim wires the full evaluation stack together: workload streams
// feed the core models, which run against the cache hierarchy, whose misses
// become controller requests scheduled onto the cycle-accurate DRAM model,
// with every burst's bits accounted by the IO model. One Run reproduces one
// bar of the paper's figures.
//
// Re-entrancy contract: Run is safe to call from any number of goroutines
// at once. No package in the stack (sim, scheme, memctrl, dram, cache,
// cpu, code, milcore, fault, energy, workload, bitblock) holds
// package-level mutable state - the only package-level variables anywhere
// are init-time constant tables (the scheme registry among them) - and
// Run builds a private instance of every model it ticks.
// Config is a plain value, safely copyable; the pointers it carries
// (Benchmark, Trace, Obs) are the caller's to share or not. A
// *workload.Benchmark may feed concurrent runs (its lazy layout memoization
// is synchronized), and an Obs metrics registry may too (every update is an
// atomic, commutative integer operation), but a Trace writer shared between
// runs will interleave lines and an Obs trace recorder is single-run
// only. Identical
// Configs produce bit-identical Results regardless of how many runs execute
// concurrently: every stochastic path is seeded from Config alone.
package sim

import (
	"errors"
	"fmt"

	"mil/internal/cache"
	"mil/internal/cpu"
	"mil/internal/dram"
	"mil/internal/energy"
	"mil/internal/memctrl"
	"mil/internal/scheme"
)

// SystemKind selects one of the two evaluated platforms (Table 2).
type SystemKind int

// The evaluated systems.
const (
	// Server is the Niagara-like microserver with DDR4-3200.
	Server SystemKind = iota
	// Mobile is the Snapdragon-like system with LPDDR3-1600.
	Mobile
)

// String implements fmt.Stringer.
func (k SystemKind) String() string {
	if k == Mobile {
		return "mobile-lpddr3"
	}
	return "server-ddr4"
}

// platform bundles one system's sub-configurations.
type platform struct {
	dram     dram.Config
	channels int
	cpu      cpu.Config
	cache    cache.Config
	power    energy.DRAMPower
	cpuPower energy.CPUPower
	// pod is true for the zero-cost (VDDQ-terminated) interface.
	pod bool
	// computeScale multiplies each benchmark's compute padding: the mobile
	// cores spend more cycles per memory operation relative to their
	// (slower, seamless-burst) bus than the server cores do.
	computeScale int64
}

// platformFor returns the Table 2 configuration of a system.
func platformFor(kind SystemKind) platform {
	if kind == Mobile {
		return platform{
			dram: dram.LPDDR3_1600(), channels: 2,
			cpu: cpu.MobileConfig(), cache: cache.MobileConfig(),
			power: energy.LPDDR3Power(), cpuPower: energy.MobileCPUPower(),
			pod: false, computeScale: 44,
		}
	}
	return platform{
		dram: dram.DDR4_3200(), channels: 2,
		cpu: cpu.ServerConfig(), cache: cache.ServerConfig(),
		power: energy.DDR4Power(), cpuPower: energy.ServerCPUPower(),
		pod: true, computeScale: 1,
	}
}

// SchemeNames lists every coding configuration Run accepts, straight
// from the scheme registry (see internal/scheme, and `milsim
// -list-schemes` for the annotated table): the baselines
// (baseline/bi/raw), the MiL framework family
// (mil/mil3/mil-nowropt/mil-x4/mil-degrade), the fixed codecs
// (milc/cafo2/cafo4/lwc3), the Figure 20 fixed burst lengths
// (bl10..bl16), and the adaptive mil-bandit extension.
func SchemeNames() []string { return scheme.Names() }

// FrontEndKey renders every configuration field that shapes the request
// stream at the cache↔memctrl boundary. Scheme and LookaheadX enter only
// through their timing class (scheme.TimingClass) — that collapse is
// exactly what makes trace reuse across codec/policy cells sound.
// Steplock is included because a replayed Result reports the recorded
// run's loop counters; fault and retry knobs are included in full
// because retries feed controller timing back into the front-end.
func (c *Config) FrontEndKey() string {
	benchName := ""
	if c.Benchmark != nil {
		benchName = c.Benchmark.Name
	}
	return fmt.Sprintf("mil-fe-v1|sys=%d|class=%s|bench=%s|ops=%d|max=%d|verify=%v|pd=%v"+
		"|ber=%g|brate=%g|blen=%d|stuck=%v|stuckv=%v|fseed=%d"+
		"|crc=%v|ca=%v|retry=%d/%d/%d/%d|seed=%d|steplock=%v",
		c.System, scheme.TimingClass(c.Scheme, c.LookaheadX, c.Fault.Enabled()), benchName,
		c.MemOpsPerThread, c.MaxCPUCycles, c.Verify, c.PowerDown,
		c.Fault.BER, c.Fault.BurstRate, c.Fault.BurstLen, c.Fault.StuckPins, c.Fault.StuckVal, c.Fault.Seed,
		c.WriteCRC, c.CAParity, c.Retry.MaxRetries, c.Retry.BackoffBase, c.Retry.BackoffMax, c.Retry.StormThreshold,
		c.Seed, c.Steplock)
}

// ClusterKey renders the front-end *inputs* only: FrontEndKey minus the
// timing class. Configurations sharing a ClusterKey ran the same workload
// on the same machine with the same knobs — they differ only in
// codec/policy (and look-ahead), the one axis timingClass predicts
// *statically*. The trace cluster store uses this coarser key to discover
// shared timings *empirically*: candidate traces recorded under any class
// of the cluster are trialled under the replay divergence fence, which
// rejects every mismatch — so a too-coarse key costs a failed trial, never
// a wrong number. That makes it safe for the key to ignore the class
// entirely, letting e.g. the x-sweep cells (distinct classes, often
// identical timing on streaming workloads) converge onto one stream.
//
// Fault injection is the exception (ROADMAP item 2's caveat): silent
// corruption makes the *data* — not just the timing — depend on which
// codec drove the pins, and the divergence fence verifies timing only. A
// fault-cell trace that replays clean under another knob setting could
// still carry the wrong payloads, so fault cells must never cluster:
// ClusterKey returns "" (no cluster) whenever injection is enabled, and
// callers must treat "" as unclusterable. Schemes whose registry
// descriptor declares NeverCluster (mil-bandit: its arm choices feed on
// observed history, not just timing) are unclusterable the same way.
func (c *Config) ClusterKey() string {
	if c.Fault.Enabled() {
		return ""
	}
	if d, ok := scheme.Lookup(c.Scheme); ok && d.NeverCluster {
		return ""
	}
	benchName := ""
	if c.Benchmark != nil {
		benchName = c.Benchmark.Name
	}
	return fmt.Sprintf("mil-cluster-v1|sys=%d|bench=%s|ops=%d|max=%d|verify=%v|pd=%v"+
		"|crc=%v|ca=%v|retry=%d/%d/%d/%d|seed=%d|steplock=%v",
		c.System, benchName,
		c.MemOpsPerThread, c.MaxCPUCycles, c.Verify, c.PowerDown,
		c.WriteCRC, c.CAParity, c.Retry.MaxRetries, c.Retry.BackoffBase, c.Retry.BackoffMax, c.Retry.StormThreshold,
		c.Seed, c.Steplock)
}

// FrontEndHash is the FNV-1a hash of FrontEndKey; trace files bind to it
// the way snapshots bind to Config.Hash.
func (c *Config) FrontEndHash() uint64 {
	s := c.FrontEndKey()
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// schemeFor builds the policy and phy factory for a scheme on a platform
// by resolving the scheme registry (internal/scheme, the single source
// of truth for scheme names, factories, and timing classes). lookaheadX
// overrides MiL's look-ahead distance when > 0; seed feeds stateful
// adaptive policies (mil-bandit) their private PRNG streams.
func schemeFor(name string, p platform, lookaheadX int, seed uint64) (memctrl.Policy, func() memctrl.Phy, error) {
	pol, newPhy, err := scheme.Build(name, scheme.Platform{POD: p.pod},
		scheme.Options{LookaheadX: lookaheadX, Seed: seed})
	if errors.Is(err, scheme.ErrUnknown) {
		// Same message as before, but keep ErrUnknown reachable through
		// the chain: the CLIs branch on it to print the scheme table.
		return nil, nil, fmt.Errorf("sim: %w", err)
	}
	return pol, newPhy, err
}
