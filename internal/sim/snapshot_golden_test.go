package sim

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestSnapshotGolden pins the on-disk checkpoint format: a fixed
// server/mil cell suspended at a fixed cycle must serialize to the exact
// blessed bytes, and the blessed bytes must still resume to the same
// Result as an uninterrupted run. Any byte of drift means the snapshot
// layout changed — bump snap.Version and re-bless with -update (make
// golden does both families) only when the change is intentional.
func TestSnapshotGolden(t *testing.T) {
	cfg := obsConfig(t, 60)
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "golden.milsnap")
	cc := cfg
	cc.Checkpoint = ckpt
	cc.CheckpointAt = full.CPUCycles / 2
	if _, err := Run(cc); !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("checkpointing run: want ErrCheckpointed, got %v", err)
	}
	got, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "snap", "checkpoint.milsnap")
	if *updateObs {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("blessed %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to bless): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("snapshot format drifted from golden: got %d bytes, want %d "+
			"(re-bless with -update and bump snap.Version if intentional)", len(got), len(want))
	}

	// The blessed snapshot must remain loadable: resume it and require the
	// tail to land on the uninterrupted Result.
	cr := cfg
	cr.Resume = path
	resumed, err := Run(cr)
	if err != nil {
		t.Fatalf("resume from golden snapshot: %v", err)
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Errorf("resume from golden snapshot diverges:\n  full:    %+v\n  resumed: %+v", full, resumed)
	}
}
