package sim

import (
	"errors"
	"fmt"
	"sort"

	"mil/internal/cache"
	"mil/internal/cpu"
	"mil/internal/memctrl"
	"mil/internal/sched"
	"mil/internal/snap"
)

// ErrCheckpointed is returned by Run when the simulation was suspended to
// the checkpoint file (CheckpointAt reached or Interrupt raised) rather
// than run to completion. The caller restarts later with Config.Resume.
var ErrCheckpointed = errors.New("sim: run suspended to checkpoint")

// ErrDeadline is returned by Run when Config.Deadline passed before the
// simulation finished.
var ErrDeadline = errors.New("sim: wall-clock deadline exceeded")

// Hash fingerprints the semantic configuration of a run: everything that
// influences the simulated machine's trajectory, and nothing that does
// not (checkpoint/resume wiring, tracing, observability sinks, wall-clock
// deadlines). A snapshot binds to this hash so a resume under any other
// configuration — which would silently diverge — is rejected up front.
// Steplock is included: the two loop modes agree on the Result but not on
// the landed-cycle schedule, and a checkpoint is taken at a landed cycle.
func (c *Config) Hash() uint64 {
	benchName := ""
	if c.Benchmark != nil {
		benchName = c.Benchmark.Name
	}
	s := fmt.Sprintf("mil-cfg-v1|sys=%d|scheme=%s|bench=%s|ops=%d|la=%d|max=%d|verify=%v|pd=%v"+
		"|ber=%g|brate=%g|blen=%d|stuck=%v|stuckv=%v|fseed=%d"+
		"|crc=%v|ca=%v|retry=%d/%d/%d/%d|seed=%d|steplock=%v",
		c.System, c.Scheme, benchName, c.MemOpsPerThread, c.LookaheadX, c.MaxCPUCycles, c.Verify, c.PowerDown,
		c.Fault.BER, c.Fault.BurstRate, c.Fault.BurstLen, c.Fault.StuckPins, c.Fault.StuckVal, c.Fault.Seed,
		c.WriteCRC, c.CAParity, c.Retry.MaxRetries, c.Retry.BackoffBase, c.Retry.BackoffMax, c.Retry.StormThreshold,
		c.Seed, c.Steplock)
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// machine bundles every stateful component of one run for snapshotting.
// The serialization order is fixed and positional (see package snap):
// next-cycle, event clock, workload streams, processor, hierarchy, memory
// system (with device and phy state), write overlay, policy state,
// memory port, metrics registry.
type machine struct {
	cfg     *Config
	ev      *sched.EventClock
	streams []cpu.Stream
	proc    *cpu.Processor
	hier    *cache.Hierarchy
	memSys  *memctrl.System
	mem     *memctrl.OverlayMemory
	// polSnap carries the policy's mutable state (the degrade ladder,
	// the bandit's estimates); nil for stateless policies. Presence is
	// scheme-determined, so the snapshot layout stays config-stable.
	polSnap snap.Snapshotter
	port    *memPort
}

// snapshot serializes the whole machine with cpuNow as the next cycle to
// fire (the checkpoint is taken at the top of the loop body, before the
// cycle's work, in either loop mode).
func (m *machine) snapshot(cpuNow int64) []byte {
	var w snap.Writer
	w.I64(cpuNow)
	m.ev.Snapshot(&w)
	w.Len(len(m.streams))
	for _, st := range m.streams {
		st.(snap.Snapshotter).Snapshot(&w)
	}
	m.proc.Snapshot(&w)
	m.hier.Snapshot(&w)
	m.memSys.Snapshot(&w)
	m.mem.Snapshot(&w)
	w.Bool(m.polSnap != nil)
	if m.polSnap != nil {
		m.polSnap.Snapshot(&w)
	}
	m.snapshotPort(&w)
	// The metrics registry accumulates per-event counters incrementally,
	// so a resumed run's metrics CSV can only match an uninterrupted run's
	// if the counters cross the checkpoint too. Trace recorders do not
	// resume (a trace of half a run is still a valid trace).
	hasObs := m.cfg.Obs.Enabled() && m.cfg.Obs.Metrics != nil
	w.Bool(hasObs)
	if hasObs {
		m.cfg.Obs.Metrics.Snapshot(&w)
	}
	return w.Bytes()
}

// restore rebuilds the machine from a snapshot payload and returns the
// next cycle to fire. All components were freshly constructed from the
// same Config (enforced by the container's config-hash check), so every
// geometry already matches; restore fills in the mutable state and
// re-links the completion callbacks that could not be serialized.
func (m *machine) restore(r *snap.Reader) (int64, error) {
	cpuNow := r.I64()
	if err := m.ev.Restore(r); err != nil {
		return 0, err
	}
	ns := r.Len()
	if err := r.Err(); err != nil {
		return 0, err
	}
	if ns != len(m.streams) {
		return 0, fmt.Errorf("sim: snapshot has %d streams, config has %d", ns, len(m.streams))
	}
	for _, st := range m.streams {
		if err := st.(snap.Snapshotter).Restore(r); err != nil {
			return 0, err
		}
	}
	if err := m.proc.Restore(r); err != nil {
		return 0, err
	}
	// MSHR waiters re-link to the processor's per-thread completion
	// callbacks via the thread-index tags the CPU issues accesses with.
	if err := m.hier.Restore(r, m.proc.LoadDoneFor); err != nil {
		return 0, err
	}
	if err := m.memSys.Restore(r); err != nil {
		return 0, err
	}
	if err := m.mem.Restore(r); err != nil {
		return 0, err
	}
	hadPol := r.Bool()
	if err := r.Err(); err != nil {
		return 0, err
	}
	if hadPol != (m.polSnap != nil) {
		return 0, fmt.Errorf("sim: snapshot policy-state presence %v, config says %v", hadPol, m.polSnap != nil)
	}
	if m.polSnap != nil {
		if err := m.polSnap.Restore(r); err != nil {
			return 0, err
		}
	}
	if err := m.restorePort(r); err != nil {
		return 0, err
	}
	hadObs := r.Bool()
	if err := r.Err(); err != nil {
		return 0, err
	}
	hasObs := m.cfg.Obs.Enabled() && m.cfg.Obs.Metrics != nil
	if hadObs && !hasObs {
		return 0, fmt.Errorf("sim: snapshot carries metrics but this run has no registry attached")
	}
	if hadObs {
		if err := m.cfg.Obs.Metrics.Restore(r); err != nil {
			return 0, err
		}
	}
	if err := r.Err(); err != nil {
		return 0, err
	}
	if !r.Done() {
		return 0, fmt.Errorf("sim: snapshot has trailing bytes (format drift)")
	}
	return cpuNow, nil
}

// snapshotPort serializes the port adapter: clock-domain cursor, store
// sequence, and the per-line requests parked on controller backpressure.
// The inflight map is not serialized — it is exactly the set of read
// requests living inside the controllers, and restorePort rebuilds it
// from them.
func (m *machine) snapshotPort(w *snap.Writer) {
	p := m.port
	w.I64(p.dramNow)
	w.U64(p.writeSeq)
	snapReqMap := func(reqs map[int64]*memctrl.Request) {
		lines := make([]int64, 0, len(reqs))
		for l := range reqs {
			lines = append(lines, l)
		}
		sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
		w.Len(len(lines))
		for _, l := range lines {
			memctrl.SnapRequest(w, reqs[l])
		}
	}
	snapReqMap(p.pendingRd)
	snapReqMap(p.pendingWr)
}

// restorePort rebuilds the port maps and re-links every read completion
// callback (parked and enqueued alike) to the restored hierarchy's fill
// handler.
func (m *machine) restorePort(r *snap.Reader) error {
	p := m.port
	p.dramNow = r.I64()
	p.writeSeq = r.U64()
	restoreReqMap := func() map[int64]*memctrl.Request {
		n := r.Len()
		out := make(map[int64]*memctrl.Request, n)
		for i := 0; i < n; i++ {
			req := memctrl.RestoreRequest(r)
			out[req.Line] = req
		}
		return out
	}
	p.pendingRd = restoreReqMap()
	p.pendingWr = restoreReqMap()
	if err := r.Err(); err != nil {
		return err
	}

	// Re-link completions. Every read request — parked or enqueued — had
	// the port's per-line OnDone closure at snapshot time; rebuild it over
	// the restored hierarchy's fill handler, and rebuild the inflight map
	// (accepted reads) from the controllers while at it.
	fill := m.hier.FillHandler()
	relink := func(req *memctrl.Request) error {
		if !req.NeedsOnDone() {
			if !req.Write && req.OnDone == nil {
				return fmt.Errorf("sim: restored read for line %d has no completion callback", req.Line)
			}
			return nil
		}
		line := req.Line
		req.OnDone = func(int64) {
			delete(p.inflight, line)
			fill(line)
		}
		return nil
	}
	p.inflight = make(map[int64]*memctrl.Request)
	var relinkErr error
	m.memSys.EachRequest(func(req *memctrl.Request) {
		if req.Write {
			return
		}
		if err := relink(req); err != nil && relinkErr == nil {
			relinkErr = err
		}
		p.inflight[req.Line] = req
	})
	if relinkErr != nil {
		return relinkErr
	}
	for _, req := range p.pendingRd {
		if err := relink(req); err != nil {
			return err
		}
	}
	return nil
}

// writeCheckpoint frames and atomically writes the machine snapshot.
func (m *machine) writeCheckpoint(path string, cpuNow int64) error {
	return snap.WriteFile(path, m.cfg.Hash(), m.snapshot(cpuNow))
}

// loadCheckpoint reads, validates, and applies a snapshot file, returning
// the next cycle to fire.
func (m *machine) loadCheckpoint(path string) (int64, error) {
	r, err := snap.ReadFile(path, m.cfg.Hash())
	if err != nil {
		return 0, err
	}
	return m.restore(r)
}

// The event clock must stay a full Snapshotter; workload streams are
// asserted dynamically in snapshot/restore (their concrete type is
// unexported).
var _ snap.Snapshotter = (*sched.EventClock)(nil)
