package sim

import (
	"fmt"
	"reflect"
	"testing"

	"mil/internal/fault"
	"mil/internal/workload"
)

// runBoth executes the same configuration under the steplock reference
// loop and the event loop and returns both results with the loop
// counters (the one intended difference) zeroed.
func runBoth(t *testing.T, cfg Config) (step, event *Result) {
	t.Helper()
	ec := cfg
	ec.Steplock = false
	sc := cfg
	sc.Steplock = true
	event, err := Run(ec)
	if err != nil {
		t.Fatalf("event run: %v", err)
	}
	step, err = Run(sc)
	if err != nil {
		t.Fatalf("steplock run: %v", err)
	}
	if event.Loop.Steplock || !step.Loop.Steplock {
		t.Fatalf("Loop.Steplock mislabeled: event=%v step=%v", event.Loop.Steplock, step.Loop.Steplock)
	}
	if got, want := event.Loop.EventsFired+event.Loop.CyclesSkipped, event.CPUCycles; got != want {
		t.Fatalf("event loop covered %d cycles, run took %d", got, want)
	}
	step.Loop, event.Loop = LoopStats{}, LoopStats{}
	return step, event
}

// requireIdentical fails unless the two results match field for field.
func requireIdentical(t *testing.T, step, event *Result) {
	t.Helper()
	if reflect.DeepEqual(step, event) {
		return
	}
	if !reflect.DeepEqual(step.Mem, event.Mem) {
		t.Errorf("Mem stats diverge:\n  steplock: %+v\n  event:    %+v", step.Mem, event.Mem)
	}
	if step.Cache != event.Cache {
		t.Errorf("Cache stats diverge:\n  steplock: %+v\n  event:    %+v", step.Cache, event.Cache)
	}
	sm, em := *step, *event
	sm.Mem, em.Mem = nil, nil
	if !reflect.DeepEqual(&sm, &em) {
		t.Errorf("results diverge:\n  steplock: %+v\n  event:    %+v", sm, em)
	}
	t.FailNow()
}

// TestEventLoopMatchesSteplock is the tentpole differential: the event
// loop must reproduce the reference loop byte for byte across systems,
// schemes (including the fault/degrade paths), and seeds.
func TestEventLoopMatchesSteplock(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	type cell struct {
		scheme string
		fault  fault.Config
	}
	cells := []cell{
		{scheme: "raw"},
		{scheme: "baseline"},
		{scheme: "mil"},
		{scheme: "mil-degrade", fault: fault.Config{BER: 1e-5, Seed: 7}},
	}
	systems := []SystemKind{Server, Mobile}
	seeds := []uint64{0, 42}
	if raceEnabled {
		// One mobile cell keeps the differential harness itself raced;
		// the full matrix is equivalence coverage, not concurrency
		// coverage, and server steplock runs cost seconds each even
		// without the detector's overhead.
		systems, cells, seeds = systems[1:], cells[:1], seeds[:1]
	}
	for _, system := range systems {
		for _, c := range cells {
			for _, seed := range seeds {
				name := fmt.Sprintf("%s/%s/seed%d", system, c.scheme, seed)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					b, err := workload.ByName("STRMATCH")
					if err != nil {
						t.Fatal(err)
					}
					step, event := runBoth(t, Config{
						System: system, Scheme: c.scheme, Benchmark: b,
						MemOpsPerThread: 1500, Seed: seed, Fault: c.fault,
					})
					requireIdentical(t, step, event)
				})
			}
		}
	}
}

// TestEventLoopMatchesSteplockPowerDown covers the power-down state
// machine: entry after the idle threshold, exit latency, and the
// residency accounting all have skip paths of their own.
func TestEventLoopMatchesSteplockPowerDown(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	if raceEnabled {
		t.Skip("single-threaded loop-mode differential; nothing to race")
	}
	b, err := workload.ByName("MM")
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"baseline", "mil"} {
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			step, event := runBoth(t, Config{
				System: Server, Scheme: scheme, Benchmark: b,
				MemOpsPerThread: 1500, PowerDown: true,
			})
			if event.Mem.PowerDownCycles == 0 {
				t.Fatal("power-down never engaged; test exercises nothing")
			}
			requireIdentical(t, step, event)
		})
	}
}

// TestEventLoopMatchesSteplockRetry covers the DDR4 write-CRC/CA-parity
// NACK-replay path, whose retry backoff contributes its own wake term.
func TestEventLoopMatchesSteplockRetry(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	if raceEnabled {
		t.Skip("single-threaded loop-mode differential; nothing to race")
	}
	b, err := workload.ByName("GUPS")
	if err != nil {
		t.Fatal(err)
	}
	step, event := runBoth(t, Config{
		System: Server, Scheme: "baseline", Benchmark: b,
		MemOpsPerThread: 1200, WriteCRC: true, CAParity: true,
		Fault: fault.Config{BER: 5e-4, Seed: 3},
	})
	if event.Mem.Retries() == 0 {
		t.Fatal("no retries fired; test exercises nothing")
	}
	requireIdentical(t, step, event)
}

// TestEventLoopMatchesSteplockStuckLane covers the fault injector's
// stuck-lane mode: unlike the stochastic BER/burst modes it corrupts
// every driven transfer, so the degrade ladder and retry paths see a
// steady failure signal whose timing must survive the event loop's
// cycle skipping.
func TestEventLoopMatchesSteplockStuckLane(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	if raceEnabled {
		t.Skip("single-threaded loop-mode differential; nothing to race")
	}
	b, err := workload.ByName("STRMATCH")
	if err != nil {
		t.Fatal(err)
	}
	stuck := fault.Config{StuckPins: []int{5, 33}, StuckVal: true, Seed: 11}
	for _, scheme := range []string{"baseline", "mil-degrade"} {
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				System: Server, Scheme: scheme, Benchmark: b,
				MemOpsPerThread: 1200, Fault: stuck,
			}
			step, event := runBoth(t, cfg)
			clean := cfg
			clean.Fault = fault.Config{}
			ref, err := Run(clean)
			if err != nil {
				t.Fatal(err)
			}
			ref.Loop = LoopStats{}
			if reflect.DeepEqual(ref, event) {
				t.Fatal("stuck lanes changed nothing; test exercises nothing")
			}
			requireIdentical(t, step, event)
		})
	}
}

// TestEventLoopSkipsCycles pins the point of the refactor: on an
// idle-heavy run the event loop must actually skip a large fraction of
// the timeline, not just match the reference loop.
func TestEventLoopSkipsCycles(t *testing.T) {
	b, err := workload.ByName("MM")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		System: Server, Scheme: "baseline", Benchmark: b,
		MemOpsPerThread: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loop.CyclesSkipped == 0 {
		t.Fatalf("event loop skipped nothing over %d cycles", res.CPUCycles)
	}
	frac := float64(res.Loop.CyclesSkipped) / float64(res.CPUCycles)
	if frac < 0.05 {
		t.Errorf("event loop skipped only %.1f%% of %d cycles", 100*frac, res.CPUCycles)
	}
}
