package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mil/internal/obs"
	"mil/internal/workload"
)

var updateObs = flag.Bool("update", false, "rewrite the observability golden files from the current output")

// obsConfig is the server/mil cell the observability tests share.
func obsConfig(t *testing.T, ops int64) Config {
	t.Helper()
	b, err := workload.ByName("STRMATCH")
	if err != nil {
		t.Fatal(err)
	}
	return Config{System: Server, Scheme: "mil", Benchmark: b, MemOpsPerThread: ops}
}

// TestLoopStatsSemantics pins the LoopStats contract both loop modes
// share (see the LoopStats doc): EventsFired counts landed cycles,
// CyclesSkipped counts proven-no-op cycles, and the two always partition
// the timeline. The steplock loop lands every cycle, so its counters are
// the degenerate case of the same accounting, not a different quantity.
func TestLoopStatsSemantics(t *testing.T) {
	cfg := obsConfig(t, 1200)

	cfg.Steplock = false
	event, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Steplock = true
	step, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, r := range []*Result{event, step} {
		if got, want := r.Loop.EventsFired+r.Loop.CyclesSkipped, r.CPUCycles; got != want {
			t.Errorf("steplock=%v: EventsFired+CyclesSkipped = %d, want CPUCycles = %d",
				r.Loop.Steplock, got, want)
		}
	}
	if step.Loop.CyclesSkipped != 0 {
		t.Errorf("steplock loop reports %d skipped cycles, want 0", step.Loop.CyclesSkipped)
	}
	if step.Loop.EventsFired != step.CPUCycles {
		t.Errorf("steplock loop fired %d events over %d cycles; every cycle must land",
			step.Loop.EventsFired, step.CPUCycles)
	}
	if event.Loop.CyclesSkipped == 0 {
		t.Error("event loop skipped nothing; the differential exercises one mode twice")
	}
	// Same simulation, same timeline: the loops must agree on its length,
	// so fired+skipped is comparable across modes by construction.
	if event.CPUCycles != step.CPUCycles {
		t.Errorf("loop modes disagree on the timeline: event %d vs steplock %d cycles",
			event.CPUCycles, step.CPUCycles)
	}
}

// metricsCSV runs cfg with a fresh registry attached and returns the
// snapshot.
func metricsCSV(t *testing.T, cfg Config) (string, *Result) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Obs = &obs.Obs{Metrics: reg}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String(), res
}

// TestIdleWindowReconciliation is the Figure-5 cross-check: the idle
// windows recorded sample by sample in the histogram must sum exactly to
// the idle cycles the controllers count in aggregate (pending + empty).
// Any drift means a window was dropped, double-counted, or misclosed.
func TestIdleWindowReconciliation(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := obsConfig(t, 1200)
	cfg.Obs = &obs.Obs{Metrics: reg}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := reg.Hist("bus_idle_window_cycles", obs.IdleWindowEdges...)
	if h.Count() == 0 {
		t.Fatal("no idle windows recorded; the run exercises nothing")
	}
	wantIdle := res.Mem.IdlePendingCycles + res.Mem.IdleEmptyCycles
	if h.Sum() != wantIdle {
		t.Errorf("idle-window histogram sums to %d cycles, controllers counted %d idle (pending %d + empty %d)",
			h.Sum(), wantIdle, res.Mem.IdlePendingCycles, res.Mem.IdleEmptyCycles)
	}
}

// TestObsMetricsLoopModeAgnostic runs the same cell under both loop modes
// and requires identical metric snapshots, minus the counters that are
// definitionally mode-specific: the steplock loop never consults NextWake
// and lands every cycle, so wake_scan_* and loop_* differ by design.
func TestObsMetricsLoopModeAgnostic(t *testing.T) {
	if testing.Short() {
		t.Skip("double run is slow")
	}
	cfg := obsConfig(t, 1200)
	cfg.Steplock = false
	eventCSV, _ := metricsCSV(t, cfg)
	cfg.Steplock = true
	stepCSV, _ := metricsCSV(t, cfg)

	filter := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, ",wake_scan_") || strings.Contains(line, ",loop_") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if e, s := filter(eventCSV), filter(stepCSV); e != s {
		t.Errorf("loop mode leaked into the metrics snapshot:\nevent:\n%s\nsteplock:\n%s", e, s)
	}
}

// TestObsDisabledLeavesResultsAlone is the acceptance gate for the whole
// layer: attaching the full observability stack must not perturb a single
// simulation output.
func TestObsDisabledLeavesResultsAlone(t *testing.T) {
	cfg := obsConfig(t, 1200)
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = &obs.Obs{Metrics: obs.NewRegistry(), Trace: obs.NewTrace(0)}
	observed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.CPUCycles != observed.CPUCycles || !reflect.DeepEqual(plain.Mem, observed.Mem) ||
		plain.Cache != observed.Cache || plain.DRAM != observed.DRAM {
		t.Errorf("observability changed the simulation:\nplain:    %+v\nobserved: %+v", plain, observed)
	}
}

// TestObsGolden pins the exported artifacts of one server/mil cell: the
// metrics CSV and a capped Perfetto trace. Re-bless with -update after an
// intentional model or exporter change (make golden does both families).
func TestObsGolden(t *testing.T) {
	reg := obs.NewRegistry()
	// A small cap keeps the golden reviewable; the tail is counted in
	// milsimDroppedEvents rather than recorded.
	rec := obs.NewTrace(400)
	cfg := obsConfig(t, 60)
	cfg.Obs = &obs.Obs{Metrics: reg, Trace: rec}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	var csv, trace bytes.Buffer
	if err := reg.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJSON(&trace); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("trace golden is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("trace golden has no traceEvents array")
	}

	for _, g := range []struct {
		file string
		got  []byte
	}{
		{"metrics.csv", csv.Bytes()},
		{"trace.json", trace.Bytes()},
	} {
		path := filepath.Join("testdata", "obs", g.file)
		if *updateObs {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, g.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (run with -update to bless): %v", err)
		}
		if !bytes.Equal(g.got, want) {
			t.Errorf("%s drifted from golden (re-bless with -update if intentional); got %d bytes, want %d",
				g.file, len(g.got), len(want))
		}
	}
}
