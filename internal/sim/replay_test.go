package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"mil/internal/fault"
	"mil/internal/trace"
	"mil/internal/workload"
)

// record runs cfg with the trace recorder attached and returns the result
// and the recorded trace.
func record(t *testing.T, cfg Config) (*Result, *trace.Trace) {
	t.Helper()
	var tr *trace.Trace
	rcfg := cfg
	rcfg.RecordTrace = func(x *trace.Trace) { tr = x }
	res, err := Run(rcfg)
	if err != nil {
		t.Fatalf("record run: %v", err)
	}
	if tr == nil {
		t.Fatal("RecordTrace sink never called")
	}
	return res, tr
}

// replay runs cfg driven by tr.
func replay(t *testing.T, cfg Config, tr *trace.Trace) *Result {
	t.Helper()
	pcfg := cfg
	pcfg.ReplayTrace = tr
	res, err := Run(pcfg)
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
	return res
}

// requireSameResult fails unless the two results match field for field.
func requireSameResult(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if reflect.DeepEqual(want, got) {
		return
	}
	if !reflect.DeepEqual(want.Mem, got.Mem) {
		t.Errorf("%s: Mem stats diverge:\n  full:   %+v\n  replay: %+v", label, want.Mem, got.Mem)
	}
	wm, gm := *want, *got
	wm.Mem, gm.Mem = nil, nil
	if !reflect.DeepEqual(&wm, &gm) {
		t.Errorf("%s: results diverge:\n  full:   %+v\n  replay: %+v", label, wm, gm)
	}
	t.FailNow()
}

// TestReplayEquivalenceMatrix is the headline differential: across
// systems, schemes (including the fault/degrade path), seeds, and both
// loop modes, (a) attaching the recorder must not change the Result, and
// (b) replaying the recorded trace must reproduce the full simulation
// byte for byte.
func TestReplayEquivalenceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	type cell struct {
		scheme string
		fault  fault.Config
	}
	cells := []cell{
		{scheme: "raw"},
		{scheme: "baseline"},
		{scheme: "mil"},
		{scheme: "mil-degrade", fault: fault.Config{BER: 1e-5, Seed: 7}},
	}
	systems := []SystemKind{Server, Mobile}
	seeds := []uint64{0, 42}
	steplocks := []bool{false, true}
	if raceEnabled {
		// One mobile event-loop cell keeps the record/replay harness itself
		// raced; the full matrix is equivalence coverage, not concurrency
		// coverage.
		systems, cells, seeds, steplocks = systems[1:], cells[:1], seeds[:1], steplocks[:1]
	}
	for _, system := range systems {
		for _, c := range cells {
			for _, seed := range seeds {
				for _, steplock := range steplocks {
					name := fmt.Sprintf("%s/%s/seed%d/steplock=%v", system, c.scheme, seed, steplock)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						b, err := workload.ByName("STRMATCH")
						if err != nil {
							t.Fatal(err)
						}
						cfg := Config{
							System: system, Scheme: c.scheme, Benchmark: b,
							MemOpsPerThread: 1200, Seed: seed, Fault: c.fault,
							Steplock: steplock,
						}
						full, err := Run(cfg)
						if err != nil {
							t.Fatal(err)
						}
						recorded, tr := record(t, cfg)
						requireSameResult(t, full, recorded, "recording perturbed the run")
						replayed := replay(t, cfg, tr)
						requireSameResult(t, full, replayed, "replay")
					})
				}
			}
		}
	}
}

// TestReplayMetricsCSV holds the observability side of the replay contract:
// a replayed cell with a metrics registry attached must produce the same
// snapshot as a fully simulated one, except the wake_scan_* counters — the
// replay driver consults NextWake on its own cadence, exactly like the two
// loop modes differ from each other (TestObsMetricsLoopModeAgnostic). The
// loop_* counters must match exactly: a replayed Result reports the
// recorded loop.
func TestReplayMetricsCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("double run is slow")
	}
	cfg := obsConfig(t, 1200)
	fullCSV, _ := metricsCSV(t, cfg)
	_, tr := record(t, cfg)
	pcfg := cfg
	pcfg.ReplayTrace = tr
	replayCSV, _ := metricsCSV(t, pcfg)

	filter := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, ",wake_scan_") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if f, r := filter(fullCSV), filter(replayCSV); f != r {
		t.Errorf("replay leaked into the metrics snapshot:\nfull:\n%s\nreplay:\n%s", f, r)
	}
}

// TestReplayAcrossSchemes is what the trace layer exists for: a trace
// recorded under one scheme replays for every scheme in the same
// front-end timing class, and the replayed Result is byte-identical to a
// full simulation of the *target* scheme.
func TestReplayAcrossSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	pairs := []struct {
		recordScheme string
		recordX      int
		replayScheme string
		replayX      int
	}{
		{recordScheme: "baseline", replayScheme: "raw"},
		{recordScheme: "raw", replayScheme: "bi"},
		{recordScheme: "milc", replayScheme: "bl10"},
		{recordScheme: "lwc3", replayScheme: "bl16"},
		{recordScheme: "mil", replayScheme: "mil-degrade"},
		{recordScheme: "mil", recordX: 14, replayScheme: "mil", replayX: 0},
	}
	for _, p := range pairs {
		name := fmt.Sprintf("%s,x%d->%s,x%d", p.recordScheme, p.recordX, p.replayScheme, p.replayX)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, err := workload.ByName("STRMATCH")
			if err != nil {
				t.Fatal(err)
			}
			recCfg := Config{
				System: Server, Scheme: p.recordScheme, Benchmark: b,
				MemOpsPerThread: 1200, LookaheadX: p.recordX, Seed: 42,
			}
			repCfg := recCfg
			repCfg.Scheme, repCfg.LookaheadX = p.replayScheme, p.replayX
			if recCfg.FrontEndKey() != repCfg.FrontEndKey() {
				t.Fatalf("front-end keys differ; pair is not a timing class:\n  %s\n  %s",
					recCfg.FrontEndKey(), repCfg.FrontEndKey())
			}
			_, tr := record(t, recCfg)
			full, err := Run(repCfg)
			if err != nil {
				t.Fatal(err)
			}
			replayed := replay(t, repCfg, tr)
			requireSameResult(t, full, replayed, "cross-scheme replay")
		})
	}
}

// TestReplayDivergenceDetected proves the driver's verification teeth: a
// trace replayed under a scheme from a *different* timing class (MiLC
// drives 10-beat bursts, the static class 8) must fail loudly with a
// divergence error, never return silently wrong numbers.
func TestReplayDivergenceDetected(t *testing.T) {
	b, err := workload.ByName("GUPS")
	if err != nil {
		t.Fatal(err)
	}
	recCfg := Config{System: Server, Scheme: "baseline", Benchmark: b, MemOpsPerThread: 600}
	_, tr := record(t, recCfg)
	badCfg := recCfg
	badCfg.Scheme = "milc"
	badCfg.ReplayTrace = tr
	if _, err := Run(badCfg); err == nil {
		t.Fatal("replay under a different timing class returned a result; want a divergence error")
	} else if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("want a divergence error, got: %v", err)
	}
}

// TestFrontEndKeyClasses pins the timing-class algebra FrontEndKey
// collapses schemes with.
func TestFrontEndKeyClasses(t *testing.T) {
	b, err := workload.ByName("STRMATCH")
	if err != nil {
		t.Fatal(err)
	}
	base := Config{System: Server, Benchmark: b, MemOpsPerThread: 1000, Seed: 42}
	key := func(mut func(*Config)) string {
		c := base
		mut(&c)
		return c.FrontEndKey()
	}
	same := [][2]func(*Config){
		{func(c *Config) { c.Scheme = "baseline" }, func(c *Config) { c.Scheme = "raw" }},
		{func(c *Config) { c.Scheme = "baseline" }, func(c *Config) { c.Scheme = "bi" }},
		{func(c *Config) { c.Scheme = "milc" }, func(c *Config) { c.Scheme = "bl10" }},
		{func(c *Config) { c.Scheme = "lwc3" }, func(c *Config) { c.Scheme = "bl16" }},
		{func(c *Config) { c.Scheme = "mil" }, func(c *Config) { c.Scheme = "mil-degrade" }},
		{func(c *Config) { c.Scheme = "mil" }, func(c *Config) { c.Scheme = "mil"; c.LookaheadX = 14 }},
	}
	for i, pair := range same {
		if a, b := key(pair[0]), key(pair[1]); a != b {
			t.Errorf("same-class pair %d got distinct keys:\n  %s\n  %s", i, a, b)
		}
	}
	differ := [][2]func(*Config){
		{func(c *Config) { c.Scheme = "baseline" }, func(c *Config) { c.Scheme = "milc" }},
		// Same beat count, different codec ExtraLatency: not a class.
		{func(c *Config) { c.Scheme = "milc" }, func(c *Config) { c.Scheme = "cafo2" }},
		{func(c *Config) { c.Scheme = "cafo2" }, func(c *Config) { c.Scheme = "cafo4" }},
		{func(c *Config) { c.Scheme = "mil" }, func(c *Config) { c.Scheme = "mil-nowropt" }},
		{func(c *Config) { c.Scheme = "mil" }, func(c *Config) { c.Scheme = "mil"; c.LookaheadX = 4 }},
		{func(c *Config) { c.Scheme = "mil" }, func(c *Config) { c.Scheme = "mil"; c.Seed = 7 }},
		{func(c *Config) { c.Scheme = "mil" }, func(c *Config) { c.Scheme = "mil"; c.Steplock = true }},
		{func(c *Config) { c.Scheme = "mil" }, func(c *Config) { c.Scheme = "mil"; c.System = Mobile }},
		{func(c *Config) { c.Scheme = "mil" }, func(c *Config) { c.Scheme = "mil"; c.PowerDown = true }},
		// With faults enabled, error draws depend on the driven bits:
		// every scheme becomes its own class.
		{
			func(c *Config) { c.Scheme = "baseline"; c.Fault = fault.Config{BER: 1e-5} },
			func(c *Config) { c.Scheme = "raw"; c.Fault = fault.Config{BER: 1e-5} },
		},
		{
			func(c *Config) { c.Scheme = "mil"; c.Fault = fault.Config{BER: 1e-5} },
			func(c *Config) { c.Scheme = "mil-degrade"; c.Fault = fault.Config{BER: 1e-5} },
		},
	}
	for i, pair := range differ {
		if a, b := key(pair[0]), key(pair[1]); a == b {
			t.Errorf("distinct-class pair %d collided on key %s", i, a)
		}
	}
}

// TestClusterKeyDropsTimingClass pins the cluster key's shape: it merges
// across codec/policy/look-ahead (the axis the divergence fence arbitrates
// empirically), splits on every true front-end input, and refuses fault
// cells entirely (ROADMAP item 2's caveat — corrupted payloads are
// knob-dependent in ways a timing fence cannot see).
func TestClusterKeyDropsTimingClass(t *testing.T) {
	b, err := workload.ByName("STRMATCH")
	if err != nil {
		t.Fatal(err)
	}
	base := Config{System: Server, Benchmark: b, MemOpsPerThread: 1000, Seed: 42}
	key := func(mut func(*Config)) string {
		c := base
		mut(&c)
		return c.ClusterKey()
	}
	// Any two non-fault schemes/look-aheads over the same inputs cluster —
	// including pairs FrontEndKey keeps apart.
	same := [][2]func(*Config){
		{func(c *Config) { c.Scheme = "baseline" }, func(c *Config) { c.Scheme = "milc" }},
		{func(c *Config) { c.Scheme = "milc" }, func(c *Config) { c.Scheme = "cafo2" }},
		{func(c *Config) { c.Scheme = "mil" }, func(c *Config) { c.Scheme = "mil"; c.LookaheadX = 4 }},
		{func(c *Config) { c.Scheme = "mil" }, func(c *Config) { c.Scheme = "mil-nowropt" }},
	}
	for i, pair := range same {
		if a, b := key(pair[0]), key(pair[1]); a != b {
			t.Errorf("same-cluster pair %d got distinct keys:\n  %s\n  %s", i, a, b)
		}
	}
	differ := [][2]func(*Config){
		{func(c *Config) { c.Scheme = "mil" }, func(c *Config) { c.Scheme = "mil"; c.Seed = 7 }},
		{func(c *Config) { c.Scheme = "mil" }, func(c *Config) { c.Scheme = "mil"; c.System = Mobile }},
		{func(c *Config) { c.Scheme = "mil" }, func(c *Config) { c.Scheme = "mil"; c.MemOpsPerThread = 500 }},
		{func(c *Config) { c.Scheme = "mil" }, func(c *Config) { c.Scheme = "mil"; c.PowerDown = true }},
		{func(c *Config) { c.Scheme = "mil" }, func(c *Config) { c.Scheme = "mil"; c.Steplock = true }},
		{func(c *Config) { c.Scheme = "mil" }, func(c *Config) { c.Scheme = "mil"; c.WriteCRC = true }},
	}
	for i, pair := range differ {
		if a, b := key(pair[0]), key(pair[1]); a == b {
			t.Errorf("distinct-cluster pair %d collided on key %s", i, a)
		}
	}
	c := base
	c.Scheme = "mil"
	c.Fault = fault.Config{BER: 1e-5}
	if got := c.ClusterKey(); got != "" {
		t.Errorf("fault-injection config clusters under %q, want \"\"", got)
	}
}

// TestReplayConfigValidation pins the mutual-exclusion rules: replay and
// record cannot combine with each other or with checkpoint/resume.
func TestReplayConfigValidation(t *testing.T) {
	b, err := workload.ByName("STRMATCH")
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{CPUCycles: 2, DRAMCycles: 2, EventsFired: 2}
	sink := func(*trace.Trace) {}
	bad := []Config{
		{Benchmark: b, Scheme: "raw", ReplayTrace: tr, RecordTrace: sink},
		{Benchmark: b, Scheme: "raw", ReplayTrace: tr, Checkpoint: "x.milsnap"},
		{Benchmark: b, Scheme: "raw", ReplayTrace: tr, Resume: "x.milsnap"},
		{Benchmark: b, Scheme: "raw", RecordTrace: sink, Checkpoint: "x.milsnap"},
		{Benchmark: b, Scheme: "raw", RecordTrace: sink, Resume: "x.milsnap"},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated; want an error", i)
		}
	}
}
