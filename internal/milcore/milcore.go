// Package milcore implements the paper's contribution: the MiL (More is
// Less) opportunistic coding framework of Section 4. The decision logic
// (Sections 4.2/5.1) inspects the memory controller's rdyX comparators at
// the moment a column command is scheduled and selects between the wide
// sparse code (3-LWC, burst length 16) when the data bus has room, and the
// low-overhead base code (MiLC, burst length 10) when other column commands
// would be delayed. The write optimization of Section 4.6 pre-encodes
// writes with both schemes and transmits whichever carries fewer zeros.
package milcore

import (
	"fmt"

	"mil/internal/bitblock"
	"mil/internal/code"
	"mil/internal/memctrl"
)

// DefaultLookahead is the look-ahead distance X the framework is evaluated
// at. The natural setting is 8 (the bus cycles a 3-LWC burst occupies, so
// no already-ready column command is postponed), but the paper's
// sensitivity study (Section 7.5.2, Figure 21) finds X=14 performs best
// because the comparators cannot see commands that become ready just after
// the window; this reproduction observes the same effect, so the evaluated
// default follows the sweep's winner. Figure 21 regenerates the whole
// trade-off curve.
const DefaultLookahead = 14

// Policy is the MiL decision logic. The zero value is not usable; call New.
type Policy struct {
	lookaheadX    int
	wide          code.Codec
	base          code.Codec
	writeOptimize bool
}

// Option configures a Policy.
type Option func(*Policy)

// WithLookahead overrides the look-ahead distance X (Figure 21's sweep).
func WithLookahead(x int) Option {
	return func(p *Policy) { p.lookaheadX = x }
}

// WithCodes overrides the wide/base codec pair (the framework accepts any
// deterministic-latency sparse codes, Section 4.3).
func WithCodes(wide, base code.Codec) Option {
	return func(p *Policy) { p.wide, p.base = wide, base }
}

// WithoutWriteOptimize disables the Section 4.6 write optimization, for
// ablation studies.
func WithoutWriteOptimize() Option {
	return func(p *Policy) { p.writeOptimize = false }
}

// New returns the paper's evaluated configuration: 3-LWC as the wide
// opportunistic code, MiLC as the base code, the DefaultLookahead window,
// and the write optimization on.
func New(opts ...Option) (*Policy, error) {
	p := &Policy{
		lookaheadX:    DefaultLookahead,
		wide:          code.LWC3{},
		base:          code.MiLC{},
		writeOptimize: true,
	}
	for _, o := range opts {
		o(p)
	}
	if p.lookaheadX < 0 {
		return nil, fmt.Errorf("milcore: look-ahead distance %d < 0", p.lookaheadX)
	}
	if p.wide == nil || p.base == nil {
		return nil, fmt.Errorf("milcore: nil codec")
	}
	if p.wide.Beats() < p.base.Beats() {
		return nil, fmt.Errorf("milcore: wide code %s (BL%d) shorter than base %s (BL%d)",
			p.wide.Name(), p.wide.Beats(), p.base.Name(), p.base.Beats())
	}
	return p, nil
}

// MustNew is New for static configurations that cannot fail.
func MustNew(opts ...Option) *Policy {
	p, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements memctrl.Policy.
func (p *Policy) Name() string { return "mil" }

// LookaheadX returns the configured look-ahead distance.
func (p *Policy) LookaheadX() int { return p.lookaheadX }

// Choose implements memctrl.Policy: the decision heuristic of Section 4.2.
// If any other column command becomes ready within the next X cycles
// (count > 1: the command being scheduled is itself ready now), the wide
// code would delay it, so the base code is used; otherwise the wide code's
// longer burst rides the idle cycles for free.
func (p *Policy) Choose(write bool, data *bitblock.Block, la memctrl.Lookahead) code.Codec {
	if la.ColumnReadyWithin(p.lookaheadX) > 1 {
		return p.base
	}
	if write && p.writeOptimize && data != nil {
		// Section 4.6: the controller holds the write data, so it compares
		// the schemes' zero counts ahead of time and picks the sparser
		// result. The shorter base burst wins ties. The comparison runs on
		// the codecs' arithmetic cost probes (code.ZeroCoster) - no burst is
		// materialized for the loser.
		if code.CostZeros(p.base, data) <= code.CostZeros(p.wide, data) {
			return p.base
		}
	}
	return p.wide
}

// Tiered generalizes the MiL decision logic to more than two codes,
// implementing Section 7.5.3's suggestion that an intermediate-length
// sparse code can recover efficiency the two-point design leaves on the
// table. Codes are ordered widest first; the widest code whose bus
// occupancy fits the current idle window (no other column command ready
// within its burst cycles) wins, and the narrowest code is the
// unconditional base.
type Tiered struct {
	codes []code.Codec // widest first; the last is the base
}

// NewTiered builds a tiered policy. codes must be in strictly decreasing
// burst-length order with at least two entries.
func NewTiered(codes ...code.Codec) (*Tiered, error) {
	if len(codes) < 2 {
		return nil, fmt.Errorf("milcore: tiered policy needs >= 2 codes, got %d", len(codes))
	}
	for i := 1; i < len(codes); i++ {
		if codes[i] == nil || codes[i-1] == nil {
			return nil, fmt.Errorf("milcore: nil codec")
		}
		if codes[i].Beats() >= codes[i-1].Beats() {
			return nil, fmt.Errorf("milcore: tiered codes must shrink: %s (BL%d) after %s (BL%d)",
				codes[i].Name(), codes[i].Beats(), codes[i-1].Name(), codes[i-1].Beats())
		}
	}
	return &Tiered{codes: codes}, nil
}

// Name implements memctrl.Policy.
func (p *Tiered) Name() string { return "mil-tiered" }

// Choose implements memctrl.Policy.
func (p *Tiered) Choose(write bool, data *bitblock.Block, la memctrl.Lookahead) code.Codec {
	chosen := p.codes[len(p.codes)-1]
	for _, c := range p.codes[:len(p.codes)-1] {
		if la.ColumnReadyWithin(c.Beats()/2) <= 1 {
			chosen = c
			break
		}
	}
	if write && data != nil {
		// The write optimization generalizes: among the codes no longer
		// than the chosen one, transmit the sparsest encoding. Candidates
		// are compared by cost probe, so only the winner ever encodes.
		best, bestZ := chosen, code.CostZeros(chosen, data)
		for _, c := range p.codes {
			if c.Beats() > chosen.Beats() || c == chosen {
				continue
			}
			if z := code.CostZeros(c, data); z < bestZ {
				best, bestZ = c, z
			}
		}
		chosen = best
	}
	return chosen
}

// Stretched pads a codec's burst with extra all-ones beats. It models the
// intermediate-length sparse codes of the fixed-burst-length sensitivity
// study (Section 7.5.1, Figure 20): timing-accurate for any burst length
// between the inner code's and 16, with the pad beats free on the wire.
type Stretched struct {
	Inner code.Codec
	Total int // burst beats on the bus
}

// NewStretched wraps inner to occupy total beats (even, >= inner's).
func NewStretched(inner code.Codec, total int) (Stretched, error) {
	if total < inner.Beats() || total%2 != 0 {
		return Stretched{}, fmt.Errorf("milcore: cannot stretch BL%d code to BL%d", inner.Beats(), total)
	}
	return Stretched{Inner: inner, Total: total}, nil
}

// Name implements code.Codec.
func (s Stretched) Name() string { return fmt.Sprintf("%s+bl%d", s.Inner.Name(), s.Total) }

// Beats implements code.Codec.
func (s Stretched) Beats() int { return s.Total }

// ExtraLatency implements code.Codec.
func (s Stretched) ExtraLatency() int { return s.Inner.ExtraLatency() }

// Encode implements code.Codec.
func (s Stretched) Encode(blk *bitblock.Block) *bitblock.Burst {
	bu := s.Inner.Encode(blk)
	bu.ExtendBeats(s.Total)
	return bu
}

// EncodeInto implements code.BurstEncoder: the inner encode lands in bu and
// the pad beats (driven pins idle high, free on a POD interface) are
// appended in place.
func (s Stretched) EncodeInto(blk *bitblock.Block, bu *bitblock.Burst) {
	if got := code.EncodeInto(s.Inner, blk, bu); got != bu {
		// Inner codec without a scratch path: copy its burst into bu.
		bu.Reset(got.Width, got.Beats)
		for p := 0; p < got.Width; p++ {
			bu.SetDriven(p, got.Driven(p))
		}
		for b := 0; b < got.Beats; b++ {
			lo, hi := got.BeatWords(b)
			bu.SetBeatWords(b, lo, hi)
		}
	}
	bu.ExtendBeats(s.Total)
}

// CostZeros implements code.ZeroCoster: pad beats drive every driven pin
// high, so the stretch adds no zeros over the inner code.
func (s Stretched) CostZeros(blk *bitblock.Block) int {
	return code.CostZeros(s.Inner, blk)
}

// Decode implements code.Codec.
func (s Stretched) Decode(bu *bitblock.Burst) (bitblock.Block, error) {
	if bu == nil {
		return bitblock.Block{}, fmt.Errorf("milcore: %s decode of nil burst", s.Name())
	}
	if bu.Beats == s.Inner.Beats() {
		return s.Inner.Decode(bu)
	}
	if bu.Beats != s.Total {
		return bitblock.Block{}, fmt.Errorf("milcore: %s decode of %d-beat burst, want %d",
			s.Name(), bu.Beats, s.Total)
	}
	trunc := bitblock.NewBurst(bu.Width, s.Inner.Beats())
	for p := 0; p < bu.Width; p++ {
		trunc.SetDriven(p, bu.Driven(p))
	}
	for b := 0; b < s.Inner.Beats(); b++ {
		for p := 0; p < bu.Width; p++ {
			if bu.Driven(p) {
				trunc.SetBit(b, p, bu.Bit(b, p))
			}
		}
	}
	return s.Inner.Decode(trunc)
}
