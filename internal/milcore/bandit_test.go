package milcore

import (
	"fmt"
	"testing"

	"mil/internal/bitblock"
	"mil/internal/code"
	"mil/internal/memctrl"
	"mil/internal/snap"
)

// stubCodec is a fixed-cost arm for convergence tests: CostZeros returns
// a constant, so the probe path never touches Encode (which panics to
// prove the probes really take the arithmetic shortcut).
type stubCodec struct {
	name string
	cost int
}

func (s stubCodec) Name() string                           { return s.name }
func (s stubCodec) Beats() int                             { return 8 }
func (s stubCodec) ExtraLatency() int                      { return 0 }
func (s stubCodec) CostZeros(*bitblock.Block) int          { return s.cost }
func (s stubCodec) Encode(*bitblock.Block) *bitblock.Burst { panic("probe must use CostZeros") }
func (s stubCodec) Decode(*bitblock.Burst) (bitblock.Block, error) {
	panic("probe must use CostZeros")
}

var _ code.Codec = stubCodec{}
var _ code.ZeroCoster = stubCodec{}

// driveEpoch plays `bursts` write probes through Choose and closes the
// epoch with the given delta.
func driveEpoch(b *Bandit, bursts int64, delta memctrl.EpochStats) {
	var blk bitblock.Block
	for i := int64(0); i < bursts; i++ {
		b.Choose(true, &blk, nil)
	}
	delta.Bursts = bursts
	b.ObserveEpoch(int64(b.Epochs()+1)*1000, delta)
}

// decisionTrace runs a fixed feedback schedule and records the arm
// played after each epoch.
func decisionTrace(t *testing.T, seed uint64, epochs int) []int {
	t.Helper()
	b, err := NewBandit(seed)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, 0, epochs)
	var blk bitblock.Block
	for i := range blk {
		blk[i] = byte(i * 7) // mixed density, so arms cost differently
	}
	for e := 0; e < epochs; e++ {
		for i := 0; i < b.EpochLength(); i++ {
			b.Choose(true, &blk, nil)
		}
		b.ObserveEpoch(int64(e+1)*1000, memctrl.EpochStats{Bursts: int64(b.EpochLength())})
		out = append(out, b.Current())
	}
	return out
}

func TestBanditDeterministicPerSeed(t *testing.T) {
	a := decisionTrace(t, 42, 200)
	bTrace := decisionTrace(t, 42, 200)
	for i := range a {
		if a[i] != bTrace[i] {
			t.Fatalf("same seed diverged at epoch %d: arm %d vs %d", i, a[i], bTrace[i])
		}
	}
	// Different seeds explore on different schedules; over 200 epochs the
	// traces must not be identical (the greedy arm is, but exploration
	// isn't).
	other := decisionTrace(t, 43, 200)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 200-epoch decision traces")
	}
}

func TestBanditPicksLowestCostArm(t *testing.T) {
	b := MustNewBandit(7, WithBanditArms(
		stubCodec{"a", 300},
		stubCodec{"b", 120}, // lowest probe cost: the greedy pick
		stubCodec{"c", 250},
	), WithBanditEpoch(4))
	picks := map[int]int{}
	for e := 0; e < 400; e++ {
		driveEpoch(b, 4, memctrl.EpochStats{})
		picks[b.Current()]++
	}
	if b.Epochs() != 400 {
		t.Fatalf("bandit counted %d epochs, want 400", b.Epochs())
	}
	// Greedy epochs (7 in 8 on average) all pick arm 1; exploration may
	// visit the others. A clear majority on the cheapest arm is the
	// convergence property.
	if picks[1] < 300 {
		t.Errorf("cheapest arm played %d/400 epochs, want >= 300 (picks: %v)", picks[1], picks)
	}
}

func TestBanditRetryPenaltyEvictsArm(t *testing.T) {
	b := MustNewBandit(7, WithBanditArms(
		stubCodec{"faulty-cheap", 100},
		stubCodec{"clean-dear", 180},
	), WithBanditEpoch(4), WithBanditExplore(1000000))
	// Let it settle on the cheap arm first.
	for e := 0; e < 10; e++ {
		driveEpoch(b, 4, memctrl.EpochStats{})
	}
	if b.Current() != 0 {
		t.Fatalf("bandit settled on arm %d, want the cheap arm 0", b.Current())
	}
	// Now every epoch the cheap arm plays, it eats retries. One retry per
	// burst costs 512000 milli-zeros — far above the 80-milli-zero gap —
	// so the EWMA crosses over within a few epochs.
	for e := 0; e < 20 && b.Current() == 0; e++ {
		driveEpoch(b, 4, memctrl.EpochStats{Retries: 4})
	}
	if b.Current() != 1 {
		t.Fatal("retry storms on the cheap arm never evicted it")
	}
	if b.Switches() == 0 {
		t.Error("switch counter still zero after an observed arm change")
	}
}

func TestBanditSnapshotRoundTrip(t *testing.T) {
	mk := func() *Bandit {
		return MustNewBandit(99, WithBanditArms(
			stubCodec{"a", 300}, stubCodec{"b", 120}, stubCodec{"c", 250},
		), WithBanditEpoch(4))
	}
	a := mk()
	for e := 0; e < 37; e++ {
		driveEpoch(a, 4, memctrl.EpochStats{Retries: int64(e % 3)})
	}
	var w snap.Writer
	a.Snapshot(&w)
	b := mk()
	if err := b.Restore(snap.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	// The restored bandit must continue bit-identically.
	for e := 0; e < 50; e++ {
		driveEpoch(a, 4, memctrl.EpochStats{})
		driveEpoch(b, 4, memctrl.EpochStats{})
		if a.Current() != b.Current() {
			t.Fatalf("restored bandit diverged %d epochs after resume: arm %d vs %d",
				e, a.Current(), b.Current())
		}
	}
	if a.Switches() != b.Switches() || a.Epochs() != b.Epochs() {
		t.Errorf("restored counters diverged: %d/%d switches, %d/%d epochs",
			a.Switches(), b.Switches(), a.Epochs(), b.Epochs())
	}
}

func TestBanditSnapshotRejectsArmMismatch(t *testing.T) {
	a := MustNewBandit(1, WithBanditArms(stubCodec{"a", 1}, stubCodec{"b", 2}, stubCodec{"c", 3}))
	var w snap.Writer
	a.Snapshot(&w)
	b := MustNewBandit(1, WithBanditArms(stubCodec{"a", 1}, stubCodec{"b", 2}))
	if err := b.Restore(snap.NewReader(w.Bytes())); err == nil {
		t.Error("3-arm snapshot restored into a 2-arm bandit")
	}
}

func TestBanditValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []BanditOption
	}{
		{"one arm", []BanditOption{WithBanditArms(stubCodec{"a", 1})}},
		{"nil arm", []BanditOption{WithBanditArms(stubCodec{"a", 1}, nil)}},
		{"zero epoch", []BanditOption{WithBanditEpoch(0)}},
		{"zero explore", []BanditOption{WithBanditExplore(0)}},
	}
	for _, tc := range cases {
		if _, err := NewBandit(0, tc.opts...); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	if b, err := NewBandit(0); err != nil || b.Name() != "mil-bandit" {
		t.Errorf("default construction: bandit %v, err %v", b, err)
	}
}

// TestBanditObserveEpochZeroAlloc extends the column path's zero-alloc
// discipline to the feedback path: probing every arm on a write and
// folding an epoch must not allocate.
func TestBanditObserveEpochZeroAlloc(t *testing.T) {
	b := MustNewBandit(5, WithBanditEpoch(4))
	var blk bitblock.Block
	for i := range blk {
		blk[i] = byte(i)
	}
	epoch := func() {
		for i := 0; i < 4; i++ {
			b.Choose(true, &blk, nil)
		}
		b.ObserveEpoch(0, memctrl.EpochStats{Bursts: 4, Retries: 1})
	}
	epoch()
	if n := testing.AllocsPerRun(100, epoch); n != 0 {
		t.Errorf("probe+fold epoch allocates %v allocs/op, want 0", n)
	}
}

// TestBanditDefaultArmsProbeArithmetically pins that every default arm
// implements ZeroCoster: if one fell back to a trial Encode, each write
// would materialize a burst per arm and the probe would stop being
// near-free.
func TestBanditDefaultArmsProbeArithmetically(t *testing.T) {
	b := MustNewBandit(0)
	var blk bitblock.Block
	probe := func() { b.Choose(true, &blk, nil) }
	probe()
	if n := testing.AllocsPerRun(100, probe); n != 0 {
		t.Errorf("default-arm write probe allocates %v allocs/op, want 0", n)
	}
}

func TestBanditStubsSanity(t *testing.T) {
	// driveEpoch feeds every arm the same block, so probe averages equal
	// the stub costs exactly (in milli-zeros).
	b := MustNewBandit(3, WithBanditArms(stubCodec{"a", 10}, stubCodec{"b", 20}), WithBanditEpoch(2))
	driveEpoch(b, 2, memctrl.EpochStats{})
	for i, want := range []int64{10000, 20000} {
		if b.est[i] != want {
			t.Errorf("arm %d estimate %d milli-zeros, want %d", i, b.est[i], want)
		}
	}
	if got := fmt.Sprintf("%s/%s", b.arms[0].Name(), b.arms[1].Name()); got != "a/b" {
		t.Errorf("arms misordered: %s", got)
	}
}
