package milcore

import (
	"fmt"

	"mil/internal/bitblock"
	"mil/internal/code"
	"mil/internal/memctrl"
	"mil/internal/obs"
	"mil/internal/snap"
)

// Degrader wraps the MiL policy with a graceful-degradation ladder for
// faulty links. The observation: the energy win of the wide sparse code is
// worthless if its long burst keeps getting NACKed and replayed - each
// replay costs a full burst of energy and bus time - and on a link with
// persistent errors the longest burst is also the most exposed (most
// bit-times on the wire). So on persistent failures the policy demotes:
//
//	level 0: full MiL (3-LWC / MiLC opportunistic mix)
//	level 1: MiLC only (BL10 - shorter exposure, still coded)
//	level 2: uncoded DBI (BL8 - minimum exposure, no coding gain)
//
// Demotion triggers when the failure count within a sliding window of
// bursts crosses a threshold; promotion back up requires a long run of
// consecutive clean bursts, so a marginal link settles at the deepest
// level it keeps failing at instead of oscillating. The controller feeds
// the burst outcome stream in via RecordBurst (memctrl.ReliabilityFeedback).
type Degrader struct {
	inner  memctrl.Policy
	ladder []code.Codec

	window  int // bursts per observation window
	demote  int // failures within a window that trigger demotion
	promote int // consecutive clean bursts that lift one level

	level    int
	bursts   int // bursts seen in the current window
	failures int // failures seen in the current window
	clean    int // consecutive clean bursts

	demotions  int64
	promotions int64

	// transitions, when attached via SetObs, counts ladder moves in either
	// direction. Nil is a no-op.
	transitions *obs.Counter
}

// SetObs attaches the observability layer. Nil-safe: a disabled Obs
// leaves the degrader on its zero-cost path.
func (d *Degrader) SetObs(o *obs.Obs) {
	if !o.Enabled() {
		return
	}
	d.transitions = o.Counter("degrade_transitions_total")
}

// DegraderOption configures a Degrader.
type DegraderOption func(*Degrader)

// WithDegradeWindow sets the observation window (bursts) and the failure
// count within it that triggers demotion.
func WithDegradeWindow(window, failures int) DegraderOption {
	return func(d *Degrader) { d.window, d.demote = window, failures }
}

// WithPromoteAfter sets the consecutive clean bursts required to climb one
// level back up.
func WithPromoteAfter(n int) DegraderOption {
	return func(d *Degrader) { d.promote = n }
}

// WithLadder overrides the demotion codecs, ordered most- to least-capable.
func WithLadder(codecs ...code.Codec) DegraderOption {
	return func(d *Degrader) { d.ladder = codecs }
}

// NewDegrader wraps inner (normally the MiL Policy) with the default
// ladder MiLC -> DBI and windows sized so a handful of failures demote
// quickly but promotion needs a sustained clean run.
func NewDegrader(inner memctrl.Policy, opts ...DegraderOption) (*Degrader, error) {
	d := &Degrader{
		inner:   inner,
		ladder:  []code.Codec{code.MiLC{}, code.DBI{}},
		window:  64,
		demote:  8,
		promote: 512,
	}
	for _, o := range opts {
		o(d)
	}
	switch {
	case inner == nil:
		return nil, fmt.Errorf("milcore: degrader wrapping nil policy")
	case len(d.ladder) == 0:
		return nil, fmt.Errorf("milcore: degrader with empty ladder")
	case d.window <= 0 || d.demote <= 0 || d.demote > d.window:
		return nil, fmt.Errorf("milcore: degrade window %d / threshold %d", d.window, d.demote)
	case d.promote <= 0:
		return nil, fmt.Errorf("milcore: promote-after %d <= 0", d.promote)
	}
	for _, c := range d.ladder {
		if c == nil {
			return nil, fmt.Errorf("milcore: nil codec in ladder")
		}
	}
	return d, nil
}

// MustNewDegrader is NewDegrader for static configurations.
func MustNewDegrader(inner memctrl.Policy, opts ...DegraderOption) *Degrader {
	d, err := NewDegrader(inner, opts...)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements memctrl.Policy.
func (d *Degrader) Name() string { return "mil-degrade" }

// Snapshot serializes the ladder state machine (the inner policy and the
// ladder codecs are stateless and rebuilt from config).
func (d *Degrader) Snapshot(w *snap.Writer) {
	w.Int(d.level)
	w.Int(d.bursts)
	w.Int(d.failures)
	w.Int(d.clean)
	w.I64(d.demotions)
	w.I64(d.promotions)
}

// Restore implements snap.Snapshotter.
func (d *Degrader) Restore(r *snap.Reader) error {
	d.level = r.Int()
	d.bursts = r.Int()
	d.failures = r.Int()
	d.clean = r.Int()
	d.demotions = r.I64()
	d.promotions = r.I64()
	if d.level < 0 || d.level > len(d.ladder) {
		return fmt.Errorf("milcore: snapshot degrade level %d outside ladder", d.level)
	}
	return r.Err()
}

// Level returns the current ladder position (0 = full MiL).
func (d *Degrader) Level() int { return d.level }

// Demotions and Promotions return the lifetime ladder movements.
func (d *Degrader) Demotions() int64  { return d.demotions }
func (d *Degrader) Promotions() int64 { return d.promotions }

// Choose implements memctrl.Policy: at level 0 the inner MiL decision runs
// untouched; below it the level's ladder codec is forced.
func (d *Degrader) Choose(write bool, data *bitblock.Block, la memctrl.Lookahead) code.Codec {
	if d.level == 0 {
		return d.inner.Choose(write, data, la)
	}
	return d.ladder[d.level-1]
}

// RecordBurst implements memctrl.ReliabilityFeedback: the controller
// reports every data burst's outcome and the ladder state machine advances.
func (d *Degrader) RecordBurst(codec string, write, failed bool) {
	d.bursts++
	if failed {
		d.failures++
		d.clean = 0
		// Demote the moment the window's failure budget is blown - no
		// reason to finish observing a window that already failed it.
		if d.failures >= d.demote && d.level < len(d.ladder) {
			d.level++
			d.demotions++
			d.transitions.Inc()
			d.bursts, d.failures = 0, 0
		}
	} else {
		d.clean++
		if d.clean >= d.promote && d.level > 0 {
			d.level--
			d.promotions++
			d.transitions.Inc()
			d.clean = 0
			d.bursts, d.failures = 0, 0
		}
	}
	if d.bursts >= d.window {
		d.bursts, d.failures = 0, 0
	}
}
