package milcore

import (
	"testing"

	"mil/internal/bitblock"
	"mil/internal/code"
)

// windowLookahead reports ready counts as a function of the asked window:
// commands become ready at the listed distances.
type windowLookahead struct {
	readyAt []int // distances at which other column commands become ready
}

func (w windowLookahead) ColumnReadyWithin(x int) int {
	n := 1 // the scheduled command itself
	for _, d := range w.readyAt {
		if d <= x {
			n++
		}
	}
	return n
}

func mustTiered(t *testing.T) *Tiered {
	t.Helper()
	p, err := NewTiered(code.LWC3{}, code.Hybrid{}, code.MiLC{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewTieredValidation(t *testing.T) {
	if _, err := NewTiered(code.LWC3{}); err == nil {
		t.Error("single code accepted")
	}
	if _, err := NewTiered(code.MiLC{}, code.LWC3{}); err == nil {
		t.Error("non-decreasing order accepted")
	}
	if _, err := NewTiered(code.LWC3{}, nil); err == nil {
		t.Error("nil codec accepted")
	}
}

func TestTieredPicksWidestThatFits(t *testing.T) {
	p := mustTiered(t)
	cases := []struct {
		readyAt []int
		want    string
	}{
		{nil, "lwc3"},            // empty window: widest code
		{[]int{20}, "lwc3"},      // next command far beyond BL16's 8 cycles
		{[]int{8}, "hybrid"},     // within 8 but beyond hybrid's 7
		{[]int{7}, "milc"},       // within hybrid's window too
		{[]int{1}, "milc"},       // immediately ready: base code
		{[]int{8, 20}, "hybrid"}, /* only the 8 matters */
	}
	for i, c := range cases {
		got := p.Choose(false, nil, windowLookahead{readyAt: c.readyAt})
		if got.Name() != c.want {
			t.Errorf("case %d (%v): got %s, want %s", i, c.readyAt, got.Name(), c.want)
		}
	}
}

func TestTieredWriteOptimizationRespectsBeatBudget(t *testing.T) {
	p := mustTiered(t)
	// Correlated data favors MiLC; with the full window open the policy
	// may pick any code no longer than the widest allowed, and must land
	// on the sparsest.
	var corr bitblock.Block
	for i := range corr {
		corr[i] = 0xb7
	}
	got := p.Choose(true, &corr, windowLookahead{})
	milcZ := code.MiLC{}.Encode(&corr).CountZeros()
	gotZ := got.Encode(&corr).CountZeros()
	if gotZ > milcZ {
		t.Fatalf("write optimization picked %s (%d zeros), milc has %d", got.Name(), gotZ, milcZ)
	}
	// When only the base fits, the base is used regardless of data.
	got = p.Choose(true, &corr, windowLookahead{readyAt: []int{1}})
	if got.Name() != "milc" {
		t.Fatalf("constrained write chose %s", got.Name())
	}
}

func TestTieredName(t *testing.T) {
	if mustTiered(t).Name() != "mil-tiered" {
		t.Fatal("name")
	}
}
