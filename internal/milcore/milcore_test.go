package milcore

import (
	"math/rand"
	"testing"

	"mil/internal/bitblock"
	"mil/internal/code"
	"mil/internal/dram"
	"mil/internal/memctrl"
)

// fakeLookahead returns a fixed ready-count regardless of x, recording the
// distance it was asked about.
type fakeLookahead struct {
	ready  int
	askedX int
}

func (f *fakeLookahead) ColumnReadyWithin(x int) int {
	f.askedX = x
	return f.ready
}

func TestNewDefaults(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "mil" {
		t.Fatalf("name %q", p.Name())
	}
	if p.LookaheadX() != DefaultLookahead {
		t.Fatalf("X = %d", p.LookaheadX())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(WithLookahead(-1)); err == nil {
		t.Error("negative X accepted")
	}
	if _, err := New(WithCodes(code.MiLC{}, code.LWC3{})); err == nil {
		t.Error("wide shorter than base accepted")
	}
	if _, err := New(WithCodes(nil, nil)); err == nil {
		t.Error("nil codecs accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(WithLookahead(-5))
}

func TestChooseWideWhenBusIdle(t *testing.T) {
	p := MustNew()
	la := &fakeLookahead{ready: 1} // only the scheduled command itself
	if got := p.Choose(false, nil, la); got.Name() != "lwc3" {
		t.Fatalf("idle bus chose %s, want lwc3", got.Name())
	}
	if la.askedX != DefaultLookahead {
		t.Fatalf("asked X=%d, want %d", la.askedX, DefaultLookahead)
	}
}

func TestChooseBaseWhenCommandsPending(t *testing.T) {
	p := MustNew()
	la := &fakeLookahead{ready: 2}
	if got := p.Choose(false, nil, la); got.Name() != "milc" {
		t.Fatalf("busy bus chose %s, want milc", got.Name())
	}
}

func TestLookaheadOverride(t *testing.T) {
	p := MustNew(WithLookahead(14))
	la := &fakeLookahead{ready: 1}
	p.Choose(false, nil, la)
	if la.askedX != 14 {
		t.Fatalf("asked X=%d, want 14", la.askedX)
	}
}

func TestWriteOptimizationPicksSparserCode(t *testing.T) {
	p := MustNew()
	la := &fakeLookahead{ready: 1} // wide allowed

	// Highly row-correlated data: MiLC compresses to near-zero zeros while
	// 3-LWC still pays its fixed floor; the optimizer must pick MiLC.
	var corr bitblock.Block
	for i := range corr {
		corr[i] = 0xb7
	}
	milcZ := code.MiLC{}.Encode(&corr).CountZeros()
	lwcZ := code.LWC3{}.Encode(&corr).CountZeros()
	if milcZ > lwcZ {
		t.Skipf("fixture assumption broken: milc %d > lwc %d", milcZ, lwcZ)
	}
	if got := p.Choose(true, &corr, la); got.Name() != "milc" {
		t.Fatalf("correlated write chose %s (milc %d vs lwc3 %d zeros)", got.Name(), milcZ, lwcZ)
	}

	// Uncorrelated dense-zero data favors 3-LWC's hard 3-zeros bound.
	var rnd bitblock.Block
	rng := rand.New(rand.NewSource(5))
	rng.Read(rnd[:])
	milcZ = code.MiLC{}.Encode(&rnd).CountZeros()
	lwcZ = code.LWC3{}.Encode(&rnd).CountZeros()
	if lwcZ >= milcZ {
		t.Skipf("fixture assumption broken: lwc %d >= milc %d", lwcZ, milcZ)
	}
	if got := p.Choose(true, &rnd, la); got.Name() != "lwc3" {
		t.Fatalf("random write chose %s (milc %d vs lwc3 %d zeros)", got.Name(), milcZ, lwcZ)
	}
}

func TestWriteOptimizationNotAppliedToReads(t *testing.T) {
	p := MustNew()
	la := &fakeLookahead{ready: 1}
	// Reads cannot be inspected (Section 4.6): the wide code is used even
	// though the data would favor MiLC.
	var corr bitblock.Block
	for i := range corr {
		corr[i] = 0xb7
	}
	if got := p.Choose(false, &corr, la); got.Name() != "lwc3" {
		t.Fatalf("read chose %s, want lwc3", got.Name())
	}
}

func TestWithoutWriteOptimize(t *testing.T) {
	p := MustNew(WithoutWriteOptimize())
	la := &fakeLookahead{ready: 1}
	var corr bitblock.Block
	for i := range corr {
		corr[i] = 0xb7
	}
	if got := p.Choose(true, &corr, la); got.Name() != "lwc3" {
		t.Fatalf("unoptimized write chose %s, want lwc3", got.Name())
	}
}

func TestStretchedRoundTripAndDims(t *testing.T) {
	for _, total := range []int{10, 12, 14, 16} {
		s, err := NewStretched(code.MiLC{}, total)
		if err != nil {
			t.Fatal(err)
		}
		if s.Beats() != total {
			t.Fatalf("beats = %d", s.Beats())
		}
		if s.ExtraLatency() != 1 {
			t.Fatalf("latency = %d", s.ExtraLatency())
		}
		rng := rand.New(rand.NewSource(int64(total)))
		for n := 0; n < 50; n++ {
			var raw [64]byte
			rng.Read(raw[:])
			blk := bitblock.Block(raw)
			bu := s.Encode(&blk)
			if bu.Beats != total {
				t.Fatalf("encoded beats %d", bu.Beats)
			}
			if got, err := s.Decode(bu); err != nil || got != blk {
				t.Fatalf("BL%d round-trip failed (%v)", total, err)
			}
		}
	}
}

func TestStretchedPadIsFree(t *testing.T) {
	s, err := NewStretched(code.MiLC{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	var blk bitblock.Block
	inner := code.MiLC{}.Encode(&blk)
	outer := s.Encode(&blk)
	if outer.CountZeros() != inner.CountZeros() {
		t.Fatalf("padding added zeros: %d vs %d", outer.CountZeros(), inner.CountZeros())
	}
}

func TestStretchedValidation(t *testing.T) {
	if _, err := NewStretched(code.MiLC{}, 8); err == nil {
		t.Error("shrinking accepted")
	}
	if _, err := NewStretched(code.MiLC{}, 13); err == nil {
		t.Error("odd burst accepted")
	}
}

func TestStretchedName(t *testing.T) {
	s, _ := NewStretched(code.MiLC{}, 12)
	if s.Name() != "milc+bl12" {
		t.Fatalf("name %q", s.Name())
	}
}

// TestMiLEndToEndUsesBothCodes runs a real controller: sparse traffic must
// engage 3-LWC, dense row-hit bursts must engage MiLC.
func TestMiLEndToEndUsesBothCodes(t *testing.T) {
	mem := memctrl.NewOverlayMemory(func(line int64) bitblock.Block {
		var blk bitblock.Block
		rng := rand.New(rand.NewSource(line))
		rng.Read(blk[:])
		return blk
	})
	c, err := memctrl.NewController(
		memctrl.DefaultConfig(dram.DDR4_3200()), mem, MustNew(), &memctrl.PODPhy{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := memctrl.NewAddressMapper(1, dram.DDR4_3200().Geometry)
	if err != nil {
		t.Fatal(err)
	}
	_ = mapper

	now := int64(0)
	// Phase 1: isolated reads far apart in time: the queue is empty when
	// each is scheduled, so the wide code applies.
	for i := 0; i < 10; i++ {
		req := &memctrl.Request{Line: int64(i) * 1024, Demand: true}
		if !c.Enqueue(req, now) {
			t.Fatal("enqueue")
		}
		for c.Pending() {
			c.Tick(now)
			now++
		}
		now += 100
	}
	// Phase 2: a dense burst of row hits: rdyX sees multiple ready column
	// commands, so the base code applies.
	for i := int64(0); i < 32; i++ {
		req := &memctrl.Request{Line: i, Demand: true}
		if !c.Enqueue(req, now) {
			t.Fatal("enqueue")
		}
	}
	for c.Pending() {
		c.Tick(now)
		now++
	}

	s := c.Stats()
	if s.CodecBursts["lwc3"] == 0 {
		t.Fatalf("wide code never chosen: %v", s.CodecBursts)
	}
	if s.CodecBursts["milc"] == 0 {
		t.Fatalf("base code never chosen: %v", s.CodecBursts)
	}
}

// TestStretchedKernelEquivalence extends the codec kernel contracts to the
// Stretched wrapper: the cost probe must equal encode-then-count and the
// scratch path must be bit-identical to the allocating one, for both a
// scratch-capable inner codec (MiLC) and the pad beats it appends.
func TestStretchedKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, total := range []int{12, 14, 16} {
		s, err := NewStretched(code.MiLC{}, total)
		if err != nil {
			t.Fatal(err)
		}
		var scratch bitblock.Burst
		for n := 0; n < 500; n++ {
			var raw [64]byte
			rng.Read(raw[:])
			blk := bitblock.Block(raw)
			want := s.Encode(&blk)
			if probe := code.CostZeros(s, &blk); probe != want.CountZeros() {
				t.Fatalf("%s: CostZeros=%d, Encode.CountZeros=%d", s.Name(), probe, want.CountZeros())
			}
			got := code.EncodeInto(s, &blk, &scratch)
			if got.Width != want.Width || got.Beats != want.Beats {
				t.Fatalf("%s: dims %dx%d, want %dx%d", s.Name(), got.Width, got.Beats, want.Width, want.Beats)
			}
			for b := 0; b < got.Beats; b++ {
				gl, gh := got.BeatWords(b)
				wl, wh := want.BeatWords(b)
				if gl != wl || gh != wh {
					t.Fatalf("%s beat %d differs", s.Name(), b)
				}
			}
		}
	}
}
