package milcore

import (
	"testing"

	"mil/internal/code"
	"mil/internal/memctrl"
)

func testDegrader(t *testing.T, opts ...DegraderOption) *Degrader {
	t.Helper()
	d, err := NewDegrader(memctrl.FixedPolicy{Codec: code.LWC3{}}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDegraderDelegatesAtLevelZero(t *testing.T) {
	d := testDegrader(t)
	if d.Name() != "mil-degrade" {
		t.Fatalf("name %q", d.Name())
	}
	if got := d.Choose(true, nil, nil); got.Name() != "lwc3" {
		t.Fatalf("level 0 chose %q, want the inner policy's codec", got.Name())
	}
	if d.Level() != 0 || d.Demotions() != 0 || d.Promotions() != 0 {
		t.Fatalf("fresh degrader not at rest: %+v", d)
	}
}

func TestDegraderDemotesOnFailures(t *testing.T) {
	d := testDegrader(t, WithDegradeWindow(16, 4))
	// Three failures inside a window: under threshold, no movement.
	for i := 0; i < 3; i++ {
		d.RecordBurst("lwc3", true, true)
	}
	if d.Level() != 0 {
		t.Fatalf("demoted at %d failures, threshold 4", 3)
	}
	// Fourth failure blows the budget: demote immediately, mid-window.
	d.RecordBurst("lwc3", true, true)
	if d.Level() != 1 || d.Demotions() != 1 {
		t.Fatalf("level %d demotions %d after blown window", d.Level(), d.Demotions())
	}
	if got := d.Choose(true, nil, nil); got.Name() != "milc" {
		t.Fatalf("level 1 chose %q, want milc", got.Name())
	}
	// Keep failing: demote to the ladder floor and stay there.
	for i := 0; i < 20; i++ {
		d.RecordBurst("milc", true, true)
	}
	if d.Level() != 2 || d.Demotions() != 2 {
		t.Fatalf("level %d demotions %d, want floor 2", d.Level(), d.Demotions())
	}
	if got := d.Choose(true, nil, nil); got.Name() != "dbi" {
		t.Fatalf("floor chose %q, want dbi", got.Name())
	}
}

func TestDegraderWindowResetForgetsOldFailures(t *testing.T) {
	d := testDegrader(t, WithDegradeWindow(8, 4))
	// Spread failures across window boundaries: 3 fail + 5 clean fills one
	// window; 3 more failures in the next window must not demote.
	for i := 0; i < 3; i++ {
		d.RecordBurst("lwc3", true, true)
	}
	for i := 0; i < 5; i++ {
		d.RecordBurst("lwc3", true, false)
	}
	for i := 0; i < 3; i++ {
		d.RecordBurst("lwc3", true, true)
	}
	if d.Level() != 0 {
		t.Fatalf("failures accumulated across windows: level %d", d.Level())
	}
}

func TestDegraderPromotesAfterCleanRun(t *testing.T) {
	d := testDegrader(t, WithDegradeWindow(8, 2), WithPromoteAfter(10))
	for i := 0; i < 4; i++ { // down to the floor
		d.RecordBurst("lwc3", true, true)
	}
	if d.Level() != 2 {
		t.Fatalf("level %d, want 2", d.Level())
	}
	// A failure inside the clean run resets it.
	for i := 0; i < 9; i++ {
		d.RecordBurst("dbi", true, false)
	}
	d.RecordBurst("dbi", true, true)
	for i := 0; i < 9; i++ {
		d.RecordBurst("dbi", true, false)
	}
	if d.Level() != 2 {
		t.Fatalf("promoted without %d consecutive clean bursts", 10)
	}
	d.RecordBurst("dbi", true, false) // 10th consecutive clean
	if d.Level() != 1 || d.Promotions() != 1 {
		t.Fatalf("level %d promotions %d after clean run", d.Level(), d.Promotions())
	}
	for i := 0; i < 10; i++ {
		d.RecordBurst("milc", true, false)
	}
	if d.Level() != 0 || d.Promotions() != 2 {
		t.Fatalf("level %d promotions %d, want back to full MiL", d.Level(), d.Promotions())
	}
}

func TestDegraderCustomLadder(t *testing.T) {
	d := testDegrader(t, WithLadder(code.DBI{}), WithDegradeWindow(4, 1))
	d.RecordBurst("lwc3", true, true)
	if got := d.Choose(true, nil, nil); got.Name() != "dbi" {
		t.Fatalf("custom ladder chose %q", got.Name())
	}
	// One-rung ladder: further failures cannot demote past the floor.
	d.RecordBurst("dbi", true, true)
	if d.Level() != 1 {
		t.Fatalf("level %d beyond one-rung ladder", d.Level())
	}
}

func TestDegraderOptionValidation(t *testing.T) {
	inner := memctrl.FixedPolicy{Codec: code.DBI{}}
	cases := []struct {
		name string
		err  func() error
	}{
		{"nil inner", func() error { _, err := NewDegrader(nil); return err }},
		{"empty ladder", func() error { _, err := NewDegrader(inner, WithLadder()); return err }},
		{"nil codec", func() error { _, err := NewDegrader(inner, WithLadder(nil)); return err }},
		{"zero window", func() error { _, err := NewDegrader(inner, WithDegradeWindow(0, 1)); return err }},
		{"threshold above window", func() error { _, err := NewDegrader(inner, WithDegradeWindow(4, 5)); return err }},
		{"zero promote", func() error { _, err := NewDegrader(inner, WithPromoteAfter(0)); return err }},
	}
	for _, tc := range cases {
		if tc.err() == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewDegrader(nil) did not panic")
		}
	}()
	MustNewDegrader(nil)
}
