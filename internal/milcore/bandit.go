package milcore

import (
	"fmt"

	"mil/internal/bitblock"
	"mil/internal/code"
	"mil/internal/memctrl"
	"mil/internal/obs"
	"mil/internal/snap"
)

// Bandit is an epsilon-greedy multi-armed bandit over fixed codecs,
// the first consumer of the controller's per-epoch feedback channel
// (memctrl.EpochObserver). Where MiL *predicts* which code the schedule
// can afford, the bandit *measures* which code the data can afford: each
// epoch it plays one arm for every burst, while costing every arm
// counterfactually on each write via the near-free code.ZeroCoster
// probes, then re-picks the arm with the lowest estimated wire cost —
// discounted by the observed retry rate, so a code that keeps getting
// NACKed on a faulty link loses its seat even if its clean-link cost is
// lowest (the same observation that motivates the Degrader's ladder).
//
// Determinism: all state is per-run, the exploration PRNG is seeded from
// the run seed alone, and with a multi-channel System the one shared
// Bandit instance sees epochs in the channels' fixed tick order — so
// runs are bit-reproducible per seed regardless of sweep parallelism,
// and identical across both loop modes (the event core fires the same
// bursts on the same cycles as the steplock reference).
type Bandit struct {
	arms     []code.Codec
	epochLen int
	explore  int // explore on one epoch in `explore`, on average

	rng uint64 // splitmix64 state
	cur int    // arm currently played

	// Counterfactual write probes accumulated over the current epoch:
	// probeSum[i] is arm i's total CostZeros over probeN probed writes.
	probeN   int64
	probeSum []int64

	// est is each arm's cost estimate in milli-zeros per probed write,
	// an integer EWMA folded at epoch boundaries (integer arithmetic
	// keeps the policy bit-deterministic across platforms). estValid is
	// false until the first fold.
	est      []int64
	estValid bool
	// retry is each arm's observed retry penalty (same milli-units,
	// retryPenalty zeros-equivalents per failed transfer per burst),
	// folded only for the arm that actually played the epoch.
	retry []int64

	epochs   int64
	switches int64

	// switchObs, when attached via SetObs, counts arm switches. Nil is a
	// no-op.
	switchObs *obs.Counter
}

// retryPenalty converts one observed retry per burst into an equivalent
// wire cost (zeros per write): a replayed burst re-pays its full bus
// time and energy, which dwarfs any coding gain, so the penalty is set
// well above the densest arm's per-write cost (~a full 512-bit line).
const retryPenalty = 512

// BanditOption configures a Bandit.
type BanditOption func(*Bandit)

// WithBanditArms overrides the raced codecs (at least two).
func WithBanditArms(arms ...code.Codec) BanditOption {
	return func(b *Bandit) { b.arms = arms }
}

// WithBanditEpoch sets the epoch length in issued bursts.
func WithBanditEpoch(n int) BanditOption {
	return func(b *Bandit) { b.epochLen = n }
}

// WithBanditExplore sets the exploration rate: one epoch in n plays a
// uniformly random arm instead of the greedy choice.
func WithBanditExplore(n int) BanditOption {
	return func(b *Bandit) { b.explore = n }
}

// NewBandit builds the default arena — DBI (the baseline), MiLC, the
// BL14 hybrid, and CAFO-2 — seeded from the run seed. Arm 0 (DBI) plays
// until the first epoch's probes arrive.
func NewBandit(seed uint64, opts ...BanditOption) (*Bandit, error) {
	b := &Bandit{
		arms:     []code.Codec{code.DBI{}, code.MiLC{}, code.Hybrid{}, code.NewCAFO(2)},
		epochLen: 64,
		explore:  8,
		// Offset the stream from the workload's seed-derived streams so
		// seed 0 still explores on its own schedule.
		rng: seed ^ 0x6d696c2d62616e64,
	}
	for _, o := range opts {
		o(b)
	}
	switch {
	case len(b.arms) < 2:
		return nil, fmt.Errorf("milcore: bandit needs >= 2 arms, got %d", len(b.arms))
	case b.epochLen <= 0:
		return nil, fmt.Errorf("milcore: bandit epoch %d <= 0", b.epochLen)
	case b.explore <= 0:
		return nil, fmt.Errorf("milcore: bandit explore rate %d <= 0", b.explore)
	}
	for _, a := range b.arms {
		if a == nil {
			return nil, fmt.Errorf("milcore: nil codec in bandit arms")
		}
	}
	b.probeSum = make([]int64, len(b.arms))
	b.est = make([]int64, len(b.arms))
	b.retry = make([]int64, len(b.arms))
	return b, nil
}

// MustNewBandit is NewBandit for static configurations.
func MustNewBandit(seed uint64, opts ...BanditOption) *Bandit {
	b, err := NewBandit(seed, opts...)
	if err != nil {
		panic(err)
	}
	return b
}

// SetObs attaches the observability layer. Nil-safe: a disabled Obs
// leaves the bandit on its zero-cost path.
func (b *Bandit) SetObs(o *obs.Obs) {
	if !o.Enabled() {
		return
	}
	b.switchObs = o.Counter("bandit_switches_total")
}

// Name implements memctrl.Policy.
func (b *Bandit) Name() string { return "mil-bandit" }

// Current returns the index of the arm currently played.
func (b *Bandit) Current() int { return b.cur }

// Epochs and Switches return the lifetime feedback deliveries and arm
// changes.
func (b *Bandit) Epochs() int64   { return b.epochs }
func (b *Bandit) Switches() int64 { return b.switches }

// Choose implements memctrl.Policy: the epoch's arm plays every burst.
// Writes additionally cost every arm on the actual data (arithmetic
// probes — no burst is materialized), feeding the epoch's estimates.
func (b *Bandit) Choose(write bool, data *bitblock.Block, _ memctrl.Lookahead) code.Codec {
	if write && data != nil {
		for i, a := range b.arms {
			b.probeSum[i] += int64(code.CostZeros(a, data))
		}
		b.probeN++
	}
	return b.arms[b.cur]
}

// EpochLength implements memctrl.EpochObserver.
func (b *Bandit) EpochLength() int { return b.epochLen }

// ObserveEpoch implements memctrl.EpochObserver: fold the epoch's write
// probes into the per-arm cost EWMAs, charge the played arm for the
// epoch's observed retries, and pick the next arm (exploring one epoch
// in `explore`). Allocation-free, preserving the column path's
// zero-alloc discipline.
func (b *Bandit) ObserveEpoch(now int64, delta memctrl.EpochStats) {
	b.epochs++
	if b.probeN > 0 {
		for i := range b.arms {
			avg := b.probeSum[i] * 1000 / b.probeN
			if b.estValid {
				b.est[i] = (7*b.est[i] + avg) / 8
			} else {
				b.est[i] = avg
			}
			b.probeSum[i] = 0
		}
		b.probeN = 0
		b.estValid = true
	}
	if delta.Bursts > 0 {
		pen := delta.Retries * 1000 * retryPenalty / delta.Bursts
		b.retry[b.cur] = (7*b.retry[b.cur] + pen) / 8
	}
	next := b.cur
	if b.nextRand()%uint64(b.explore) == 0 {
		next = int(b.nextRand() % uint64(len(b.arms)))
	} else if b.estValid {
		next = 0
		for i := 1; i < len(b.arms); i++ {
			if b.est[i]+b.retry[i] < b.est[next]+b.retry[next] {
				next = i
			}
		}
	}
	if next != b.cur {
		b.cur = next
		b.switches++
		b.switchObs.Inc()
	}
}

// nextRand advances the exploration stream (splitmix64).
func (b *Bandit) nextRand() uint64 {
	b.rng += 0x9e3779b97f4a7c15
	x := b.rng
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Snapshot serializes the bandit's mutable state (arms and tuning are
// configuration); checkpoint/resume composes with mil-bandit the same
// way it does with mil-degrade.
func (b *Bandit) Snapshot(w *snap.Writer) {
	w.U64(b.rng)
	w.Int(b.cur)
	w.Bool(b.estValid)
	w.I64(b.probeN)
	w.I64s(b.probeSum)
	w.I64s(b.est)
	w.I64s(b.retry)
	w.I64(b.epochs)
	w.I64(b.switches)
}

// Restore implements snap.Snapshotter.
func (b *Bandit) Restore(r *snap.Reader) error {
	b.rng = r.U64()
	b.cur = r.Int()
	b.estValid = r.Bool()
	b.probeN = r.I64()
	probeSum := r.I64s()
	est := r.I64s()
	retry := r.I64s()
	b.epochs = r.I64()
	b.switches = r.I64()
	if err := r.Err(); err != nil {
		return err
	}
	if b.cur < 0 || b.cur >= len(b.arms) {
		return fmt.Errorf("milcore: snapshot bandit arm %d outside %d arms", b.cur, len(b.arms))
	}
	if len(probeSum) != len(b.arms) || len(est) != len(b.arms) || len(retry) != len(b.arms) {
		return fmt.Errorf("milcore: snapshot bandit has %d/%d/%d arm slots, config has %d",
			len(probeSum), len(est), len(retry), len(b.arms))
	}
	copy(b.probeSum, probeSum)
	copy(b.est, est)
	copy(b.retry, retry)
	return r.Err()
}
