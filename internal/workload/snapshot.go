package workload

import (
	"fmt"

	"mil/internal/cpu"
	"mil/internal/snap"
)

// Snapshot serializes the generator state. The RNG is captured as its draw
// count (snapshot-by-replay, see snap.CountingSource); everything else is
// plain position state. The benchmark spec itself is not serialized — a
// restored run rebuilds the same spec from its Config.
func (s *threadStream) Snapshot(w *snap.Writer) {
	w.U64(s.src.Draws())
	w.I64(s.opsLeft)
	w.I64s(s.cursor)
	if s.burst != nil {
		w.Int(s.burstIdx)
	} else {
		w.Int(-1)
	}
	w.Int(s.burstLeft)
	w.Len(len(s.queue))
	for _, op := range s.queue {
		w.Int(int(op.Kind))
		w.I64(op.N)
		w.I64(op.Addr)
	}
}

// Restore implements snap.Snapshotter, replaying the RNG to its
// snapshotted draw count.
func (s *threadStream) Restore(r *snap.Reader) error {
	draws := r.U64()
	s.opsLeft = r.I64()
	cursor := r.I64s()
	bi := r.Int()
	s.burstLeft = r.Int()
	nq := r.Len()
	if err := r.Err(); err != nil {
		return err
	}
	if len(cursor) != len(s.cursor) {
		return fmt.Errorf("workload: snapshot has %d burst cursors, spec has %d", len(cursor), len(s.cursor))
	}
	copy(s.cursor, cursor)
	s.burst = nil
	s.burstIdx = 0
	if bi >= 0 {
		if bi >= len(s.b.Bursts) {
			return fmt.Errorf("workload: snapshot burst index %d out of range", bi)
		}
		s.burst = &s.b.Bursts[bi]
		s.burstIdx = bi
	}
	s.queue = s.queue[:0]
	for i := 0; i < nq; i++ {
		s.queue = append(s.queue, cpu.Op{Kind: cpu.OpKind(r.Int()), N: r.I64(), Addr: r.I64()})
	}
	s.src.Seed(s.seed)
	s.src.Skip(draws)
	return r.Err()
}
