package workload

import (
	"reflect"
	"sync"
	"testing"
)

// The sweep engine shares one *Benchmark value between concurrent sim.Runs,
// so the lazy layout memoization in finalize must tolerate being raced into
// and every accessor must then return the same answers a fresh value would.
// Run with -race.

func TestBenchmarkConcurrentFinalize(t *testing.T) {
	for _, name := range []string{"MM", "GUPS"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		wantLines := fresh.Lines() // finalize the reference serially

		const goroutines = 8
		lines := make([]int64, goroutines)
		data := make([][]byte, goroutines)
		errs := make([]error, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Race straight into the lazy finalize from every accessor
				// the simulator uses mid-run.
				lines[g] = b.Lines()
				blk := b.LineData(int64(g) % b.Lines())
				data[g] = blk[:]
				streams, err := b.NewStreamsSeeded(2, 30, uint64(g))
				if err != nil {
					errs[g] = err
					return
				}
				if len(streams) != 2 {
					t.Errorf("goroutine %d: %d streams", g, len(streams))
				}
				_ = b.StoreData(0, uint64(g))
			}()
		}
		wg.Wait()
		for g := 0; g < goroutines; g++ {
			if errs[g] != nil {
				t.Fatalf("%s goroutine %d: %v", name, g, errs[g])
			}
			if lines[g] != wantLines {
				t.Fatalf("%s goroutine %d: Lines() = %d, fresh value says %d",
					name, g, lines[g], wantLines)
			}
			want := fresh.LineData(int64(g) % wantLines)
			if !reflect.DeepEqual(data[g], want[:]) {
				t.Fatalf("%s goroutine %d: LineData diverged from a fresh benchmark", name, g)
			}
		}
	}
}

// TestWithComputeScaleConcurrent derives scaled copies concurrently from one
// shared base (what per-system configFor does when both system flavors of a
// figure are in flight) and checks the copies are independent values.
func TestWithComputeScaleConcurrent(t *testing.T) {
	base, err := ByName("MM")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	scaled := make([]*Benchmark, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			scaled[g] = base.WithComputeScale(3)
			_ = scaled[g].Lines() // finalize the copy concurrently too
		}()
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if scaled[g] == base {
			t.Fatal("WithComputeScale returned the shared base")
		}
		if scaled[g].Lines() != scaled[0].Lines() {
			t.Fatalf("scaled copy %d has %d lines, copy 0 has %d",
				g, scaled[g].Lines(), scaled[0].Lines())
		}
		if scaled[g].ComputePerMem == base.ComputePerMem {
			t.Fatalf("scaled copy %d kept the base compute ratio", g)
		}
	}
}
