package workload

import "fmt"

// The eleven applications of Table 3. Region footprints are scaled to keep
// simulation turnaround reasonable while preserving each benchmark's
// cache/DRAM behavior class (well beyond the 2-4MB L2 wherever the original
// is DRAM-resident). The Suite/Input fields record the original provenance.

// GUPS: random 8-byte read-modify-writes across a giant table; the most
// bandwidth-hungry, least cache-friendly pattern with maximum-entropy data.
func GUPS() *Benchmark {
	return &Benchmark{
		Name: "GUPS", Suite: "HPCC", Input: "2^25 table, 1048576 updates",
		Regions: []Region{{Name: "table", Lines: 1 << 19, Data: IndexData{UpdatedOneIn: 32}}},
		Bursts: []Burst{
			{Weight: 1, Region: 0, Kind: RMW, Length: 64},
		},
		ComputePerMem: 1,
	}
}

// CG: sparse matrix-vector products; streaming row values and column
// indices with indirect gathers into the source vector.
func CG() *Benchmark {
	return &Benchmark{
		Name: "CG", Suite: "NAS OpenMP", Input: "Class A",
		Regions: []Region{
			{Name: "rowvals", Lines: 1 << 18, Data: Float64Data{Scale: 1, MantissaBits: 24}},
			{Name: "colidx", Lines: 1 << 16, Data: Int32Data{Max: 1 << 15}},
			{Name: "x", Lines: 1 << 17, Data: Float64Data{Scale: 1, MantissaBits: 24}, Shared: true},
			{Name: "y", Lines: 1 << 13, Data: Float64Data{Scale: 1, MantissaBits: 24}},
		},
		Bursts: []Burst{
			{Weight: 8, Region: 0, Kind: Stream, Length: 48, StrideLines: 1},
			{Weight: 1, Region: 1, Kind: Stream, Length: 16, StrideLines: 1},
			{Weight: 3, Region: 2, Kind: Gather, Length: 24},
			{Weight: 1, Region: 3, Kind: Stream, Length: 8, StrideLines: 1, WriteFrac: 0.5},
		},
		ComputePerMem: 1,
	}
}

// MG: multigrid relaxation; sweeps at multiple strides over a large grid.
func MG() *Benchmark {
	return &Benchmark{
		Name: "MG", Suite: "NAS OpenMP", Input: "Class A",
		Regions: []Region{{Name: "grid", Lines: 1 << 18, Data: Float64Data{Scale: 0.125, MantissaBits: 24}}},
		Bursts: []Burst{
			{Weight: 4, Region: 0, Kind: Stream, Length: 4, StrideLines: 1, WriteFrac: 0.25},
			{Weight: 2, Region: 0, Kind: Stream, Length: 4, StrideLines: 2},
			{Weight: 1, Region: 0, Kind: Stream, Length: 4, StrideLines: 8},
		},
		ComputePerMem: 12,
	}
}

// SCALPARC: decision-tree mining; streaming attribute lists with random
// record lookups and count updates.
func SCALPARC() *Benchmark {
	return &Benchmark{
		Name: "SCALPARC", Suite: "NuMineBench", Input: "F26-A32-D125K.tab",
		Regions: []Region{
			{Name: "attrs", Lines: 1 << 18, Data: Float32Data{Scale: 100, MantissaBits: 12}},
			{Name: "records", Lines: 1 << 17, Data: Int32Data{Max: 125000}, Shared: true},
			{Name: "counts", Lines: 1 << 12, Data: CountData{Max: 4096}},
		},
		Bursts: []Burst{
			{Weight: 4, Region: 0, Kind: Stream, Length: 32, StrideLines: 1},
			{Weight: 2, Region: 1, Kind: Gather, Length: 16},
			{Weight: 1, Region: 2, Kind: Gather, Length: 8, WriteFrac: 0.6},
		},
		ComputePerMem: 1,
	}
}

// HISTOGRAM: byte-granular image scan with counter updates that mostly hit
// in the cache.
func HISTOGRAM() *Benchmark {
	return &Benchmark{
		Name: "HISTOGRAM", Suite: "Phoenix", Input: "small",
		Regions: []Region{
			{Name: "pixels", Lines: 1 << 18, Data: PixelData{}},
			{Name: "bins", Lines: 64, Data: CountData{Max: 1 << 20}},
		},
		Bursts: []Burst{
			{Weight: 3, Region: 0, Kind: WordScan, Length: 64},
			{Weight: 1, Region: 1, Kind: WordScan, Length: 32, WriteFrac: 0.5},
		},
		ComputePerMem: 4,
	}
}

// MM: blocked dense matrix multiply; the tiles live in the caches, so DRAM
// sees only the slow trickle of tile refills.
func MM() *Benchmark {
	return &Benchmark{
		Name: "MM", Suite: "Phoenix", Input: "3000x3000 matrix",
		Regions: []Region{
			{Name: "tiles", Lines: 1 << 10, Data: Float64Data{Scale: 4, MantissaBits: 20}},
			{Name: "a", Lines: 1 << 17, Data: Float64Data{Scale: 4, MantissaBits: 20}, Shared: true},
		},
		Bursts: []Burst{
			{Weight: 96, Region: 0, Kind: WordScan, Length: 64},
			{Weight: 1, Region: 1, Kind: Stream, Length: 8, StrideLines: 1},
		},
		ComputePerMem: 96,
	}
}

// STRMATCH: string match streams a large text corpus word by word with
// comparison work per word; ASCII data is highly compressible.
func STRMATCH() *Benchmark {
	return &Benchmark{
		Name: "STRMATCH", Suite: "Phoenix", Input: "50MB file",
		Regions: []Region{
			{Name: "text", Lines: 1 << 18, Data: TextData{}},
			{Name: "keys", Lines: 256, Data: TextData{}, Shared: true},
		},
		Bursts: []Burst{
			{Weight: 8, Region: 0, Kind: WordScan, Length: 64},
			{Weight: 1, Region: 1, Kind: WordScan, Length: 16},
		},
		ComputePerMem: 5,
	}
}

// ART: adaptive resonance theory neural network; streaming weight matrices
// in single precision with moderate reuse.
func ART() *Benchmark {
	return &Benchmark{
		Name: "ART", Suite: "SPEC OpenMP", Input: "MinneSpec-Large",
		Regions: []Region{
			{Name: "weights", Lines: 1 << 17, Data: Float32Data{Scale: 1, MantissaBits: 14}},
			{Name: "f1", Lines: 1 << 12, Data: Float32Data{Scale: 1, MantissaBits: 14}},
		},
		Bursts: []Burst{
			{Weight: 4, Region: 0, Kind: Stream, Length: 6, StrideLines: 1, WriteFrac: 0.2},
			{Weight: 2, Region: 1, Kind: WordScan, Length: 32, WriteFrac: 0.3},
		},
		ComputePerMem: 9,
	}
}

// SWIM: shallow-water stencils; several large single-precision grids
// streamed with stores.
func SWIM() *Benchmark {
	return &Benchmark{
		Name: "SWIM", Suite: "SPEC OpenMP", Input: "MinneSpec-Large",
		Regions: []Region{
			{Name: "u", Lines: 1 << 17, Data: Float32Data{Scale: 8, MantissaBits: 14}},
			{Name: "v", Lines: 1 << 17, Data: Float32Data{Scale: 8, MantissaBits: 14}},
			{Name: "p", Lines: 1 << 17, Data: Float32Data{Scale: 1000, MantissaBits: 14}},
		},
		Bursts: []Burst{
			{Weight: 2, Region: 0, Kind: Stream, Length: 2, StrideLines: 1, WriteFrac: 0.3},
			{Weight: 2, Region: 1, Kind: Stream, Length: 2, StrideLines: 1, WriteFrac: 0.3},
			{Weight: 2, Region: 2, Kind: Stream, Length: 2, StrideLines: 1, WriteFrac: 0.3},
		},
		ComputePerMem: 4,
	}
}

// FFT: 2^20 complex points; unit-stride passes alternating with large
// power-of-two strides that stress the bank timing.
func FFT() *Benchmark {
	return &Benchmark{
		Name: "FFT", Suite: "SPLASH-2", Input: "2^20 complex data points",
		Regions: []Region{{Name: "data", Lines: 1 << 18, Data: Float64Data{Scale: 1, MantissaBits: 28}}},
		Bursts: []Burst{
			{Weight: 4, Region: 0, Kind: Stream, Length: 6, StrideLines: 1, WriteFrac: 0.3},
			{Weight: 1, Region: 0, Kind: Stream, Length: 4, StrideLines: 64, WriteFrac: 0.3},
		},
		ComputePerMem: 14,
	}
}

// OCEAN: ocean current stencils; unit-stride plus next-row neighbors with
// stores.
func OCEAN() *Benchmark {
	return &Benchmark{
		Name: "OCEAN", Suite: "SPLASH-2", Input: "514x514 ocean",
		Regions: []Region{
			{Name: "grid1", Lines: 1 << 18, Data: Float64Data{Scale: 16, MantissaBits: 24}},
			{Name: "grid2", Lines: 1 << 17, Data: Float64Data{Scale: 0.01, MantissaBits: 24}},
		},
		Bursts: []Burst{
			{Weight: 3, Region: 0, Kind: Stream, Length: 3, StrideLines: 1, WriteFrac: 0.3},
			{Weight: 1, Region: 0, Kind: Stream, Length: 2, StrideLines: 9},
			{Weight: 2, Region: 1, Kind: Stream, Length: 3, StrideLines: 1, WriteFrac: 0.3},
		},
		ComputePerMem: 5,
	}
}

// All returns the suite in the paper's presentation order (Figure 5: sorted
// by data-bus utilization from low to high).
func All() []*Benchmark {
	return []*Benchmark{
		MM(), STRMATCH(), HISTOGRAM(), ART(), MG(), FFT(),
		SCALPARC(), SWIM(), OCEAN(), CG(), GUPS(),
	}
}

// ByName looks a benchmark up by its Table 3 name (case sensitive).
func ByName(name string) (*Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names lists the suite in presentation order.
func Names() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Name)
	}
	return out
}
