package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"mil/internal/bitblock"
	"mil/internal/cpu"
	"mil/internal/snap"
)

// Region is one address-space segment of a benchmark with homogeneous data.
type Region struct {
	Name  string
	Lines int64 // size in cache lines
	Data  DataClass
	// Shared regions are accessed by all threads (read-mostly inputs);
	// private regions are partitioned per thread.
	Shared bool

	base int64 // assigned by finalize
}

// BurstKind classifies an access burst.
type BurstKind int

// Burst kinds.
const (
	// Stream walks lines sequentially (with a stride) through the thread's
	// partition of the region.
	Stream BurstKind = iota
	// Gather touches uniformly random lines of the region.
	Gather
	// RMW loads then stores a random line (GUPS-style update).
	RMW
	// WordScan walks 8-byte words within lines sequentially, producing L1
	// locality (eight accesses per line).
	WordScan
)

// Burst describes one weighted access pattern in a benchmark's mix.
type Burst struct {
	Weight      int
	Region      int
	Kind        BurstKind
	Length      int     // memory operations per burst
	StrideLines int64   // Stream: line stride (>=1)
	WriteFrac   float64 // fraction of operations that are stores
}

// Benchmark is one synthesized application.
type Benchmark struct {
	Name string
	// Suite and Input record the provenance from Table 3 for documentation.
	Suite string
	Input string

	Regions []Region
	Bursts  []Burst
	// ComputePerMem is the compute-instruction count inserted between
	// memory operations: the memory-intensity dial.
	ComputePerMem int64

	totalLines  int64
	totalWeight int

	// The lazy layout memoization below is what makes a *Benchmark safe to
	// share between concurrent runs: finalize is the only mutation, it is
	// idempotent, and after it fires every field above is read-only. The
	// atomic flag keeps the per-access fast path (LineData, StoreData)
	// lock-free; the mutex serializes the one-time slow path. Streams
	// returned by NewStreamsSeeded are NOT shared - each run gets its own.
	finalizeMu sync.Mutex
	finalized  atomic.Bool
	finalErr   error
}

// WithComputeScale returns a copy of the benchmark whose compute padding is
// multiplied by scale (>= 1). The simulator uses it to calibrate per-platform
// compute/memory balance: the mobile cores spend more cycles per memory
// operation relative to their bus than the server cores do.
func (b *Benchmark) WithComputeScale(scale int64) *Benchmark {
	if scale < 1 {
		scale = 1
	}
	// Build the copy field by field (never `*b`: that would copy the
	// finalize lock and the memoized layout, and re-finalizing stale sums
	// would double them). The fresh value re-finalizes from scratch.
	out := &Benchmark{
		Name: b.Name, Suite: b.Suite, Input: b.Input,
		Regions:       append([]Region(nil), b.Regions...),
		Bursts:        append([]Burst(nil), b.Bursts...),
		ComputePerMem: b.ComputePerMem * scale,
	}
	for i := range out.Regions {
		out.Regions[i].base = 0
	}
	if out.ComputePerMem == 0 {
		out.ComputePerMem = scale - 1
	}
	return out
}

// finalize lays regions out in line space and validates the spec. It is
// safe (and cheap) to call from concurrent runs sharing one Benchmark.
func (b *Benchmark) finalize() error {
	if b.finalized.Load() {
		return b.finalErr
	}
	b.finalizeMu.Lock()
	defer b.finalizeMu.Unlock()
	if b.finalized.Load() {
		return b.finalErr
	}
	b.finalErr = b.doFinalize()
	b.finalized.Store(true)
	return b.finalErr
}

func (b *Benchmark) doFinalize() error {
	if len(b.Regions) == 0 || len(b.Bursts) == 0 {
		return fmt.Errorf("workload %s: empty spec", b.Name)
	}
	base := int64(0)
	for i := range b.Regions {
		r := &b.Regions[i]
		if r.Lines <= 0 || r.Data == nil {
			return fmt.Errorf("workload %s: bad region %q", b.Name, r.Name)
		}
		r.base = base
		base += r.Lines
	}
	b.totalLines = base
	for _, bu := range b.Bursts {
		if bu.Region < 0 || bu.Region >= len(b.Regions) {
			return fmt.Errorf("workload %s: burst region %d out of range", b.Name, bu.Region)
		}
		if bu.Weight <= 0 || bu.Length <= 0 {
			return fmt.Errorf("workload %s: burst weight/length %d/%d", b.Name, bu.Weight, bu.Length)
		}
		if bu.Kind == Stream && bu.StrideLines <= 0 {
			return fmt.Errorf("workload %s: stream stride %d", b.Name, bu.StrideLines)
		}
		b.totalWeight += bu.Weight
	}
	return nil
}

// Lines returns the benchmark's total footprint in cache lines.
func (b *Benchmark) Lines() int64 {
	if err := b.finalize(); err != nil {
		panic(err)
	}
	return b.totalLines
}

// seed derives the benchmark's deterministic content seed.
func (b *Benchmark) seed() uint64 {
	h := uint64(1469598103934665603)
	for _, c := range []byte(b.Name) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// LineData returns the initial contents of a line (region-dependent).
func (b *Benchmark) LineData(line int64) bitblock.Block {
	if err := b.finalize(); err != nil {
		panic(err)
	}
	if line < 0 || line >= b.totalLines {
		return RandomData{}.Line(b.seed(), line)
	}
	for i := range b.Regions {
		r := &b.Regions[i]
		if line < r.base+r.Lines {
			return r.Data.Line(b.seed()+uint64(i)*0x9e37, line-r.base)
		}
	}
	panic("workload: unreachable region lookup")
}

// StoreData returns the contents a store (or a writeback of a stored line)
// carries: the same data class as the region, re-keyed by a write sequence
// number so successive writes move fresh values of the right shape.
func (b *Benchmark) StoreData(line int64, seq uint64) bitblock.Block {
	if err := b.finalize(); err != nil {
		panic(err)
	}
	if line < 0 || line >= b.totalLines {
		return RandomData{}.Line(b.seed()^seq, line)
	}
	for i := range b.Regions {
		r := &b.Regions[i]
		if line < r.base+r.Lines {
			if sd, ok := r.Data.(StoreDataClass); ok {
				return sd.StoreLine(b.seed()+uint64(i)*0x9e37, line-r.base, seq)
			}
			return r.Data.Line(b.seed()+uint64(i)*0x9e37+mix64(seq), line-r.base)
		}
	}
	panic("workload: unreachable region lookup")
}

// NewStreams builds the per-thread instruction streams: threads hardware
// contexts, each issuing memOps memory operations.
func (b *Benchmark) NewStreams(threads int, memOps int64) ([]cpu.Stream, error) {
	return b.NewStreamsSeeded(threads, memOps, 0)
}

// NewStreamsSeeded is NewStreams with an explicit run seed perturbing the
// per-thread access-pattern streams. Seed 0 selects exactly the default
// (benchmark-name-derived) streams, so seeded and legacy call sites agree
// bit for bit unless a seed is actually requested.
func (b *Benchmark) NewStreamsSeeded(threads int, memOps int64, seed uint64) ([]cpu.Stream, error) {
	if err := b.finalize(); err != nil {
		return nil, err
	}
	if threads <= 0 || memOps <= 0 {
		return nil, fmt.Errorf("workload %s: %d threads x %d ops", b.Name, threads, memOps)
	}
	base := int64(b.seed())
	if seed != 0 {
		base = int64(b.seed() ^ mix64(seed))
	}
	out := make([]cpu.Stream, threads)
	for t := 0; t < threads; t++ {
		// The counting source makes the generator snapshottable (draw count
		// = state) without changing the stream: rand.New takes its Source64
		// fast path, so values match the plain rand.NewSource construction
		// bit for bit.
		seedT := base + int64(t)*7919
		src := snap.NewCountingSource(seedT)
		out[t] = &threadStream{
			b: b, tid: t, threads: threads,
			seed:    seedT,
			src:     src,
			rng:     rand.New(src),
			opsLeft: memOps,
			cursor:  make([]int64, len(b.Bursts)),
		}
	}
	return out, nil
}

// threadStream is one hardware thread's generator.
type threadStream struct {
	b       *Benchmark
	tid     int
	threads int
	seed    int64
	src     *snap.CountingSource
	rng     *rand.Rand
	opsLeft int64
	cursor  []int64 // per-burst stream position (within the region partition),
	// so each burst spec is its own clean stream for the prefetcher,
	// like the distinct arrays of the original kernels

	burst     *Burst
	burstIdx  int
	burstLeft int
	// queued ops to emit before picking the next memory access
	queue []cpu.Op
}

// partition returns the [lo, hi) line sub-range of region ri this thread
// owns (the whole region when shared).
func (s *threadStream) partition(ri int) (int64, int64) {
	r := &s.b.Regions[ri]
	if r.Shared || int64(s.threads) > r.Lines {
		return r.base, r.base + r.Lines
	}
	per := r.Lines / int64(s.threads)
	lo := r.base + int64(s.tid)*per
	return lo, lo + per
}

// pickBurst selects the next burst by weight.
func (s *threadStream) pickBurst() {
	w := s.rng.Intn(s.b.totalWeight)
	for i := range s.b.Bursts {
		w -= s.b.Bursts[i].Weight
		if w < 0 {
			s.burst = &s.b.Bursts[i]
			s.burstIdx = i
			s.burstLeft = s.burst.Length
			return
		}
	}
	panic("workload: burst weights inconsistent")
}

// Next implements cpu.Stream.
func (s *threadStream) Next() (cpu.Op, bool) {
	if len(s.queue) > 0 {
		op := s.queue[0]
		s.queue = s.queue[1:]
		return op, true
	}
	if s.opsLeft <= 0 {
		return cpu.Op{}, false
	}
	if s.burst == nil || s.burstLeft <= 0 {
		s.pickBurst()
	}
	s.emit()
	op := s.queue[0]
	s.queue = s.queue[1:]
	return op, true
}

// emit enqueues the next memory operation (plus its compute padding).
func (s *threadStream) emit() {
	bu := s.burst
	lo, hi := s.partition(bu.Region)
	span := hi - lo

	var addr int64
	write := false
	switch bu.Kind {
	case Stream:
		line := lo + s.cursor[s.burstIdx]
		s.cursor[s.burstIdx] = (s.cursor[s.burstIdx] + bu.StrideLines) % span
		addr = line * 64
		write = bu.WriteFrac > 0 && s.rng.Float64() < bu.WriteFrac
	case Gather:
		addr = (lo + s.rng.Int63n(span)) * 64
		write = bu.WriteFrac > 0 && s.rng.Float64() < bu.WriteFrac
	case RMW:
		line := lo + s.rng.Int63n(span)
		addr = line * 64
		// load then store the same line
		s.push(cpu.Op{Kind: cpu.OpLoad, Addr: addr})
		s.push(cpu.Op{Kind: cpu.OpStore, Addr: addr})
		s.burstLeft--
		return
	case WordScan:
		word := s.cursor[s.burstIdx]
		s.cursor[s.burstIdx] = (s.cursor[s.burstIdx] + 1) % (span * 8)
		addr = lo*64 + word*8
		write = bu.WriteFrac > 0 && s.rng.Float64() < bu.WriteFrac
	default:
		panic(fmt.Sprintf("workload: unknown burst kind %d", bu.Kind))
	}

	kind := cpu.OpLoad
	if write {
		kind = cpu.OpStore
	}
	s.push(cpu.Op{Kind: kind, Addr: addr})
	s.burstLeft--
}

// push enqueues a memory op preceded by the benchmark's compute padding and
// charges the memory-op budget.
func (s *threadStream) push(op cpu.Op) {
	if s.b.ComputePerMem > 0 {
		s.queue = append(s.queue, cpu.Op{Kind: cpu.OpCompute, N: s.b.ComputePerMem})
	}
	s.queue = append(s.queue, op)
	s.opsLeft--
}
