// Package workload synthesizes the eleven applications of Table 3 as
// deterministic generators of (a) per-thread instruction streams with each
// benchmark's memory intensity and locality, and (b) the data values those
// accesses move, since the efficacy of every coding scheme depends on the
// bits on the bus. The paper ran the original binaries under a full-system
// simulator; these generators are the substitution documented in DESIGN.md,
// calibrated to the per-benchmark bus utilizations and data characteristics
// the paper reports.
package workload

import (
	"math"

	"mil/internal/bitblock"
)

// mix64 is SplitMix64, the deterministic hash behind all content.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// fieldRand yields the i-th deterministic word for (seed, line).
func fieldRand(seed uint64, line int64, i int) uint64 {
	return mix64(seed ^ mix64(uint64(line)*0x632be59bd9b4e019+uint64(i)))
}

// DataClass generates deterministic 64-byte line contents.
type DataClass interface {
	Name() string
	Line(seed uint64, line int64) bitblock.Block
}

// Float64Data models arrays of doubles drawn from a narrow magnitude range:
// adjacent elements share sign/exponent structure, the spatial correlation
// MiLC's XOR mode exploits. Scale sets the magnitude around which values
// cluster; MantissaBits (default 52) truncates the mantissa, reflecting the
// limited significance typical of iterative numerical kernels.
type Float64Data struct {
	Scale        float64
	MantissaBits int
}

// Name implements DataClass.
func (Float64Data) Name() string { return "float64" }

// Line implements DataClass.
func (d Float64Data) Line(seed uint64, line int64) bitblock.Block {
	var blk bitblock.Block
	scale := d.Scale
	if scale == 0 {
		scale = 1
	}
	for i := 0; i < 8; i++ {
		r := fieldRand(seed, line, i)
		// Uniform in (scale/2, scale): a narrow exponent band.
		frac := 0.5 + 0.5*float64(r>>11)/float64(1<<53)
		v := scale * frac
		if r&1 == 1 {
			v = -v
		}
		bits := math.Float64bits(v)
		if d.MantissaBits > 0 && d.MantissaBits < 52 {
			bits &^= 1<<(52-d.MantissaBits) - 1
		}
		for b := 0; b < 8; b++ {
			blk[i*8+b] = byte(bits >> (8 * b))
		}
	}
	return blk
}

// Float32Data is the single-precision analogue (two floats per 8-byte row).
type Float32Data struct {
	Scale        float32
	MantissaBits int
}

// Name implements DataClass.
func (Float32Data) Name() string { return "float32" }

// Line implements DataClass.
func (d Float32Data) Line(seed uint64, line int64) bitblock.Block {
	var blk bitblock.Block
	scale := d.Scale
	if scale == 0 {
		scale = 1
	}
	for i := 0; i < 16; i++ {
		r := fieldRand(seed, line, i)
		frac := 0.5 + 0.5*float32(r>>40)/float32(1<<24)
		v := scale * frac
		if r&1 == 1 {
			v = -v
		}
		bits := math.Float32bits(v)
		if d.MantissaBits > 0 && d.MantissaBits < 23 {
			bits &^= 1<<(23-d.MantissaBits) - 1
		}
		for b := 0; b < 4; b++ {
			blk[i*4+b] = byte(bits >> (8 * b))
		}
	}
	return blk
}

// Int32Data models index/attribute arrays of small non-negative integers
// below Max: the upper bytes are mostly zero, the classic sparse-friendly
// pattern.
type Int32Data struct{ Max uint32 }

// Name implements DataClass.
func (Int32Data) Name() string { return "int32" }

// Line implements DataClass.
func (d Int32Data) Line(seed uint64, line int64) bitblock.Block {
	var blk bitblock.Block
	max := d.Max
	if max == 0 {
		max = 1 << 20
	}
	for i := 0; i < 16; i++ {
		v := uint32(fieldRand(seed, line, i)) % max
		for b := 0; b < 4; b++ {
			blk[i*4+b] = byte(v >> (8 * b))
		}
	}
	return blk
}

// TextData models ASCII text: every byte's top bit is clear and the letter
// distribution is skewed, which makes sparse codes shine (the paper's
// STRMATCH observation).
type TextData struct{}

// textChars approximates English letter frequency with spaces.
const textChars = "  eeeettaaooiinnsshhrrdlcumwfgypbvk.,"

// Name implements DataClass.
func (TextData) Name() string { return "text" }

// Line implements DataClass.
func (TextData) Line(seed uint64, line int64) bitblock.Block {
	var blk bitblock.Block
	for i := 0; i < 8; i++ {
		r := fieldRand(seed, line, i)
		for b := 0; b < 8; b++ {
			blk[i*8+b] = textChars[int(r>>(8*b))&0xff%len(textChars)]
		}
	}
	return blk
}

// RandomData is maximum-entropy content (GUPS's XOR-updated table).
type RandomData struct{}

// Name implements DataClass.
func (RandomData) Name() string { return "random" }

// Line implements DataClass.
func (RandomData) Line(seed uint64, line int64) bitblock.Block {
	var blk bitblock.Block
	for i := 0; i < 8; i++ {
		r := fieldRand(seed, line, i)
		for b := 0; b < 8; b++ {
			blk[i*8+b] = byte(r >> (8 * b))
		}
	}
	return blk
}

// StoreDataClass is an optional DataClass extension for classes whose
// written values differ in shape from a full regeneration (e.g. GUPS
// updates randomize a single word of the line).
type StoreDataClass interface {
	StoreLine(seed uint64, line int64, seq uint64) bitblock.Block
}

// IndexData models GUPS's update table: 64-bit words initialized to their
// own index (a[i] = i), so the upper bytes are zero-heavy, with a fraction
// of words already scrambled by earlier random XOR updates. Stores
// randomize exactly one word, like a GUPS update.
type IndexData struct {
	// UpdatedOneIn randomizes one word in N as already-updated; 0 disables.
	UpdatedOneIn uint64
}

// Name implements DataClass.
func (IndexData) Name() string { return "index" }

// Line implements DataClass.
func (d IndexData) Line(seed uint64, line int64) bitblock.Block {
	var blk bitblock.Block
	for i := 0; i < 8; i++ {
		v := uint64(line)*8 + uint64(i)
		if d.UpdatedOneIn > 0 && fieldRand(seed, line, i)%d.UpdatedOneIn == 0 {
			v = fieldRand(seed^0xa5a5, line, i)
		}
		for b := 0; b < 8; b++ {
			blk[i*8+b] = byte(v >> (8 * b))
		}
	}
	return blk
}

// StoreLine implements StoreDataClass: the line with one word replaced by a
// random update value.
func (d IndexData) StoreLine(seed uint64, line int64, seq uint64) bitblock.Block {
	blk := d.Line(seed, line)
	slot := int(mix64(seq) % 8)
	v := mix64(seq ^ uint64(line))
	for b := 0; b < 8; b++ {
		blk[slot*8+b] = byte(v >> (8 * b))
	}
	return blk
}

// PixelData models image rows: neighboring bytes drift slowly (gradients),
// so adjacent bus rows correlate.
type PixelData struct{}

// Name implements DataClass.
func (PixelData) Name() string { return "pixel" }

// Line implements DataClass.
func (PixelData) Line(seed uint64, line int64) bitblock.Block {
	var blk bitblock.Block
	base := int(fieldRand(seed, line, 0) % 200)
	for i := range blk {
		delta := int(fieldRand(seed, line, 1+i/8)>>(8*(i%8))&0x07) - 3
		base += delta
		if base < 0 {
			base = 0
		}
		if base > 255 {
			base = 255
		}
		blk[i] = byte(base)
	}
	return blk
}

// CountData models histogram/count tables: small integers in 64-bit slots,
// overwhelmingly zero bytes.
type CountData struct{ Max uint64 }

// Name implements DataClass.
func (CountData) Name() string { return "count" }

// Line implements DataClass.
func (d CountData) Line(seed uint64, line int64) bitblock.Block {
	var blk bitblock.Block
	max := d.Max
	if max == 0 {
		max = 4096
	}
	for i := 0; i < 8; i++ {
		v := fieldRand(seed, line, i) % max
		for b := 0; b < 8; b++ {
			blk[i*8+b] = byte(v >> (8 * b))
		}
	}
	return blk
}
