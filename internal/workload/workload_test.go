package workload

import (
	"math/bits"
	"testing"

	"mil/internal/cpu"
)

func TestSuiteComplete(t *testing.T) {
	names := Names()
	if len(names) != 11 {
		t.Fatalf("suite has %d benchmarks, want 11", len(names))
	}
	want := map[string]bool{
		"GUPS": true, "CG": true, "MG": true, "SCALPARC": true,
		"HISTOGRAM": true, "MM": true, "STRMATCH": true, "ART": true,
		"SWIM": true, "FFT": true, "OCEAN": true,
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected benchmark %q", n)
		}
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing benchmarks: %v", want)
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("GUPS")
	if err != nil || b.Name != "GUPS" {
		t.Fatalf("ByName(GUPS) = %v, %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestStreamsRespectBudget(t *testing.T) {
	for _, b := range All() {
		streams, err := b.NewStreams(2, 100)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		for ti, s := range streams {
			memOps := 0
			for {
				op, ok := s.Next()
				if !ok {
					break
				}
				if op.Kind == cpu.OpLoad || op.Kind == cpu.OpStore {
					memOps++
				}
			}
			if memOps != 100 {
				t.Errorf("%s thread %d: %d mem ops, want 100", b.Name, ti, memOps)
			}
		}
	}
}

func TestStreamAddressesInFootprint(t *testing.T) {
	for _, b := range All() {
		limit := b.Lines() * 64
		streams, err := b.NewStreams(4, 200)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range streams {
			for {
				op, ok := s.Next()
				if !ok {
					break
				}
				if op.Kind == cpu.OpCompute {
					continue
				}
				if op.Addr < 0 || op.Addr >= limit {
					t.Fatalf("%s: address %#x outside footprint %#x", b.Name, op.Addr, limit)
				}
			}
		}
	}
}

func TestStreamsDeterministic(t *testing.T) {
	collect := func() []cpu.Op {
		b := CG()
		streams, err := b.NewStreams(2, 50)
		if err != nil {
			t.Fatal(err)
		}
		var ops []cpu.Op
		for _, s := range streams {
			for {
				op, ok := s.Next()
				if !ok {
					break
				}
				ops = append(ops, op)
			}
		}
		return ops
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestThreadsPartitionPrivateRegions(t *testing.T) {
	b := GUPS() // single private region
	streams, err := b.NewStreams(2, 200)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]map[int64]bool, 2)
	for ti, s := range streams {
		seen[ti] = map[int64]bool{}
		for {
			op, ok := s.Next()
			if !ok {
				break
			}
			if op.Kind != cpu.OpCompute {
				seen[ti][op.Addr/64] = true
			}
		}
	}
	for l := range seen[0] {
		if seen[1][l] {
			t.Fatalf("line %d accessed by both threads of a private region", l)
		}
	}
}

func TestRMWEmitsLoadStorePairs(t *testing.T) {
	b := GUPS()
	streams, err := b.NewStreams(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	s := streams[0]
	var mem []cpu.Op
	for {
		op, ok := s.Next()
		if !ok {
			break
		}
		if op.Kind != cpu.OpCompute {
			mem = append(mem, op)
		}
	}
	if len(mem)%2 != 0 {
		t.Fatalf("odd op count %d", len(mem))
	}
	for i := 0; i < len(mem); i += 2 {
		if mem[i].Kind != cpu.OpLoad || mem[i+1].Kind != cpu.OpStore || mem[i].Addr != mem[i+1].Addr {
			t.Fatalf("pair %d: %+v / %+v", i/2, mem[i], mem[i+1])
		}
	}
}

func TestWordScanStaysWithinLineBeforeAdvancing(t *testing.T) {
	b := STRMATCH()
	streams, err := b.NewStreams(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []int64
	s := streams[0]
	for {
		op, ok := s.Next()
		if !ok {
			break
		}
		if op.Kind == cpu.OpLoad {
			addrs = append(addrs, op.Addr)
		}
	}
	// Consecutive loads from the text region advance by 8 bytes.
	adjacent := 0
	for i := 1; i < len(addrs); i++ {
		if addrs[i]-addrs[i-1] == 8 {
			adjacent++
		}
	}
	if adjacent < len(addrs)/2 {
		t.Fatalf("only %d/%d word-adjacent accesses", adjacent, len(addrs))
	}
}

func TestLineDataDeterministic(t *testing.T) {
	for _, b := range All() {
		if b.LineData(100) != b.LineData(100) {
			t.Fatalf("%s: line data not deterministic", b.Name)
		}
		if b.LineData(100) == b.LineData(101) {
			t.Errorf("%s: adjacent lines identical", b.Name)
		}
	}
}

func TestStoreDataVariesWithSeq(t *testing.T) {
	b := GUPS()
	if b.StoreData(5, 1) == b.StoreData(5, 2) {
		t.Fatal("store data ignores the sequence number")
	}
	if b.StoreData(5, 1) != b.StoreData(5, 1) {
		t.Fatal("store data not deterministic")
	}
}

func TestLineDataOutOfRangeStillWorks(t *testing.T) {
	b := MM()
	_ = b.LineData(-5)
	_ = b.LineData(b.Lines() + 100)
	_ = b.StoreData(-5, 3)
}

// zeroFraction measures the zero-bit share of a class's output.
func zeroFraction(d DataClass, n int) float64 {
	zeros, total := 0, 0
	for l := int64(0); l < int64(n); l++ {
		blk := d.Line(12345, l)
		for _, b := range blk {
			zeros += 8 - bits.OnesCount8(b)
			total += 8
		}
	}
	return float64(zeros) / float64(total)
}

func TestDataClassStatistics(t *testing.T) {
	// Random data is balanced.
	if f := zeroFraction(RandomData{}, 100); f < 0.48 || f > 0.52 {
		t.Errorf("random zero fraction %v", f)
	}
	// Text bytes always clear the top bit (guaranteed zero per byte) and
	// stay near balance overall.
	if f := zeroFraction(TextData{}, 100); f < 0.40 || f > 0.60 {
		t.Errorf("text zero fraction %v", f)
	}
	for l := int64(0); l < 50; l++ {
		blk := TextData{}.Line(7, l)
		for i, b := range blk {
			if b&0x80 != 0 {
				t.Fatalf("text byte %d has the top bit set: %x", i, b)
			}
		}
	}
	// Count tables are almost all zeros.
	if f := zeroFraction(CountData{Max: 4096}, 100); f < 0.80 {
		t.Errorf("count zero fraction %v, want > 0.8", f)
	}
	// Small int32 indices have zero-heavy upper bytes.
	if f := zeroFraction(Int32Data{Max: 1 << 15}, 100); f < 0.6 {
		t.Errorf("int32 zero fraction %v, want > 0.6", f)
	}
}

func TestFloatDataLooksLikeFloats(t *testing.T) {
	blk := Float64Data{Scale: 1}.Line(1, 0)
	// The top byte (sign + upper exponent bits) must repeat across
	// elements modulo sign: values live in a narrow magnitude band, the
	// spatial correlation MiLC exploits.
	for i := 8; i < 64; i += 8 {
		if blk[i+7]&0x7f != blk[7]&0x7f {
			t.Fatalf("exponent byte varies: %x vs %x", blk[i+7], blk[7])
		}
	}
}

func TestFinalizeRejectsBadSpecs(t *testing.T) {
	b := &Benchmark{Name: "bad"}
	if err := b.finalize(); err == nil {
		t.Error("empty spec accepted")
	}
	b = &Benchmark{
		Name:    "bad2",
		Regions: []Region{{Name: "r", Lines: 10, Data: RandomData{}}},
		Bursts:  []Burst{{Weight: 1, Region: 5, Kind: Gather, Length: 1}},
	}
	if err := b.finalize(); err == nil {
		t.Error("out-of-range region accepted")
	}
	b = &Benchmark{
		Name:    "bad3",
		Regions: []Region{{Name: "r", Lines: 10, Data: RandomData{}}},
		Bursts:  []Burst{{Weight: 1, Region: 0, Kind: Stream, Length: 4}},
	}
	if err := b.finalize(); err == nil {
		t.Error("zero stream stride accepted")
	}
	if _, err := GUPS().NewStreams(0, 10); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestSuiteProvenanceRecorded(t *testing.T) {
	for _, b := range All() {
		if b.Suite == "" || b.Input == "" {
			t.Errorf("%s: missing Table 3 provenance", b.Name)
		}
	}
}

func TestWithComputeScale(t *testing.T) {
	b := GUPS()
	scaled := b.WithComputeScale(16)
	if scaled.ComputePerMem != b.ComputePerMem*16 {
		t.Fatalf("scaled compute = %d", scaled.ComputePerMem)
	}
	if b.ComputePerMem != 1 {
		t.Fatal("original mutated")
	}
	// Scale 1 (or below) leaves the benchmark unchanged.
	same := b.WithComputeScale(0)
	if same.ComputePerMem != b.ComputePerMem {
		t.Fatalf("identity scale changed compute to %d", same.ComputePerMem)
	}
	// A scaled copy still produces valid streams.
	streams, err := scaled.NewStreams(2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := streams[0].Next(); !ok {
		t.Fatal("scaled stream empty")
	}
}

func TestIndexDataShape(t *testing.T) {
	d := IndexData{UpdatedOneIn: 32}
	blk := d.Line(1, 1000)
	// Most words hold their own index: word 0 of line 1000 is 8000.
	matches := 0
	for i := 0; i < 8; i++ {
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(blk[i*8+b]) << (8 * b)
		}
		if v == uint64(1000*8+i) {
			matches++
		}
	}
	if matches < 6 {
		t.Fatalf("only %d/8 words are identity values", matches)
	}
	// Stores randomize exactly one word.
	st := d.StoreLine(1, 1000, 7)
	diff := 0
	for i := 0; i < 8; i++ {
		same := true
		for b := 0; b < 8; b++ {
			if st[i*8+b] != blk[i*8+b] {
				same = false
				break
			}
		}
		if !same {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("store changed %d words, want exactly 1", diff)
	}
}

func TestMantissaTruncation(t *testing.T) {
	blk := Float64Data{Scale: 1, MantissaBits: 20}.Line(3, 5)
	// The low 32 mantissa bits of every double must be zero.
	for i := 0; i < 8; i++ {
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(blk[i*8+b]) << (8 * b)
		}
		if v&0xffffffff != 0 {
			t.Fatalf("double %d has nonzero truncated mantissa bits: %x", i, v)
		}
	}
	blk32 := Float32Data{Scale: 1, MantissaBits: 11}.Line(3, 5)
	for i := 0; i < 16; i++ {
		var v uint32
		for b := 0; b < 4; b++ {
			v |= uint32(blk32[i*4+b]) << (8 * b)
		}
		if v&0xfff != 0 {
			t.Fatalf("float %d has nonzero truncated mantissa bits: %x", i, v)
		}
	}
}

func TestWithComputeScaleOfFinalizedBenchmark(t *testing.T) {
	// Scaling a benchmark that has already been finalized (e.g. reused
	// across runs) must not double the memoized weight/line sums.
	b := CG()
	_ = b.LineData(0) // forces finalize on the original
	scaled := b.WithComputeScale(4)
	streams, err := scaled.NewStreams(2, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range streams {
		for {
			if _, ok := s.Next(); !ok { // panics if weights are inconsistent
				break
			}
		}
	}
	if scaled.Lines() != b.Lines() {
		t.Fatalf("footprints differ: %d vs %d", scaled.Lines(), b.Lines())
	}
}
