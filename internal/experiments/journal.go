package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"mil/internal/sim"
)

// The journal makes a sweep crash-safe: every fresh cell's result is
// appended to a JSONL file as it settles, and a restarted sweep replays
// the file into the singleflight cache so completed cells are skipped
// instead of re-simulated. One record per line:
//
//	{"key":"<canonical run key>","crc":<crc32>,"result":{...}}
//
// The CRC covers the result's JSON bytes, so a record that was torn by a
// crash (or bit-rotted) is detected rather than trusted. Replay stops at
// the first bad record and truncates the file there: everything after a
// torn line is unreachable anyway, and truncating restores the append
// invariant for the resumed sweep. Keys embed the full semantic
// configuration (ops, seed, fault, ... — see runKeyOf), so a journal
// written under different flags simply never matches and is harmless.
type journalRecord struct {
	Key    string          `json:"key"`
	CRC    uint32          `json:"crc"`
	Result json.RawMessage `json:"result"`
}

// OpenJournal attaches a result journal to the runner: existing intact
// records seed the cell cache (they will not be re-simulated), and every
// fresh cell completed from now on is appended. It returns the number of
// replayed cells. Call before the first cell runs; pair with
// CloseJournal.
func (r *Runner) OpenJournal(path string) (replayed int, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return 0, err
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var good int64 // byte offset just past the last intact record
	for sc.Scan() {
		line := sc.Bytes()
		var rec journalRecord
		if json.Unmarshal(line, &rec) != nil || crc32.ChecksumIEEE(rec.Result) != rec.CRC {
			break
		}
		res := new(sim.Result)
		if json.Unmarshal(rec.Result, res) != nil {
			break
		}
		good += int64(len(line)) + 1
		done := make(chan struct{})
		close(done)
		r.mu.Lock()
		if r.cache == nil {
			r.cache = make(map[string]*inflight)
		}
		if _, dup := r.cache[rec.Key]; !dup {
			r.cache[rec.Key] = &inflight{done: done, res: res}
			replayed++
		}
		r.mu.Unlock()
	}
	if err := sc.Err(); err != nil && err != bufio.ErrTooLong {
		f.Close()
		return replayed, fmt.Errorf("experiments: reading journal %s: %w", path, err)
	}
	// Drop any torn tail so appends start on a record boundary again.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return replayed, err
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return replayed, err
	}
	r.journalMu.Lock()
	r.journal = f
	r.journalMu.Unlock()
	return replayed, nil
}

// CloseJournal detaches and closes the journal, if one is open.
func (r *Runner) CloseJournal() error {
	r.journalMu.Lock()
	defer r.journalMu.Unlock()
	if r.journal == nil {
		return nil
	}
	err := r.journal.Close()
	r.journal = nil
	return err
}

// appendJournal records one settled cell. Each record goes out in a
// single Write call so a crash tears at most the final line — exactly
// what replay tolerates. Journal failures are returned to the cell's
// caller: a sweep that cannot persist its progress should say so rather
// than silently lose it.
func (r *Runner) appendJournal(key string, res *sim.Result) error {
	r.journalMu.Lock()
	defer r.journalMu.Unlock()
	if r.journal == nil {
		return nil
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return err
	}
	line, err := json.Marshal(journalRecord{Key: key, CRC: crc32.ChecksumIEEE(payload), Result: payload})
	if err != nil {
		return err
	}
	_, err = r.journal.Write(append(line, '\n'))
	return err
}
