package experiments

import (
	"strings"
	"testing"

	"mil/internal/obs"
	"mil/internal/trace"
)

// renderRunner runs the full generator set on r and renders every table
// into one byte stream.
func renderRunner(t *testing.T, r *Runner) string {
	t.Helper()
	tables, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tab := range tables {
		sb.WriteString(tab.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// renderAllTraced is renderAll with a trace store attached, returning the
// Runner so tests can inspect its counters.
func renderAllTraced(t *testing.T, workers int, seed uint64) (string, *Runner) {
	t.Helper()
	r := NewRunner(determinismOps())
	r.Suite = []string{"MM", "GUPS"}
	r.Workers = workers
	r.BaseSeed = seed
	r.Traces = trace.NewStore()
	return renderRunner(t, r), r
}

// TestTraceCacheEquivalence is the sweep-level replay contract: attaching a
// trace store must not change a single byte of any table, must satisfy a
// healthy share of cells by replay, and must stay deterministic across
// worker counts.
func TestTraceCacheEquivalence(t *testing.T) {
	plainRunner := NewRunner(determinismOps())
	plainRunner.Suite = []string{"MM", "GUPS"}
	plainRunner.Workers = 8
	plainRunner.BaseSeed = 42
	plain := renderRunner(t, plainRunner)
	plainFresh, _ := plainRunner.Stats()

	traced, r := renderAllTraced(t, 8, 42)
	if plain != traced {
		t.Fatalf("trace store changed the sweep output:\n%s", firstDiff(plain, traced))
	}
	hits, replayTime := r.TraceStats()
	if hits == 0 {
		t.Fatal("trace store attached but no cell was satisfied by replay")
	}
	if replayTime <= 0 {
		t.Fatalf("%d replays accounted no wall-clock time", hits)
	}
	fresh, _ := r.Stats()
	// Every cell is either fresh or replayed; a shortfall means a replay
	// diverged and fell back (the tables would still be right, but the
	// trace layer would be silently useless for that class).
	if fresh+hits != plainFresh {
		t.Fatalf("cell accounting drifted: %d fresh + %d replayed != %d cells without a store",
			fresh, hits, plainFresh)
	}
	t.Logf("sweep: %d cells, %d fresh front-end simulations, %d replays", plainFresh, fresh, hits)

	serial, rs := renderAllTraced(t, 1, 42)
	if serial != traced {
		t.Fatalf("traced sweep differs between -j 1 and -j 8:\n%s", firstDiff(serial, traced))
	}
	if h, _ := rs.TraceStats(); h != hits {
		t.Fatalf("-j 1 replayed %d cells, -j 8 replayed %d; the split must not depend on scheduling", h, hits)
	}
}

// TestTraceCacheIgnoredWithMetrics pins the Traces/Metrics exclusion: with
// a registry attached the store must stay cold (which cell of a class
// records is scheduling-dependent, and would break metrics byte-identity
// across worker counts).
func TestTraceCacheIgnoredWithMetrics(t *testing.T) {
	r := NewRunner(determinismOps())
	r.Suite = []string{"MM", "GUPS"}
	r.Workers = 4
	r.Metrics = obs.NewRegistry()
	r.Traces = trace.NewStore()
	if _, err := r.All(); err != nil {
		t.Fatal(err)
	}
	if hits, _ := r.TraceStats(); hits != 0 {
		t.Fatalf("trace store served %d replays under a metrics registry", hits)
	}
	if r.Traces.Len() != 0 {
		t.Fatalf("trace store holds %d entries under a metrics registry", r.Traces.Len())
	}
}
