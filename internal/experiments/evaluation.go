package experiments

import (
	"fmt"

	"mil/internal/sim"
)

// evalSchemes are the four coding configurations of Figures 16-19.
var evalSchemes = []string{"cafo2", "cafo4", "milc", "mil"}

// Figure16 reproduces the execution-time comparison: CAFO2, CAFO4,
// MiLC-only and MiL normalized to the baseline, per system.
func (r *Runner) Figure16(system sim.SystemKind) (*Table, error) {
	r.prefetchSuite(system, evalSchemes...)
	names, err := r.suiteSorted(system)
	if err != nil {
		return nil, err
	}
	sub := "(a) DDR4"
	note := "Paper: degradation grows with bus utilization; MiL stays within " +
		"~2% on average and beats the CAFO variants and MiLC-only."
	if system == sim.Mobile {
		sub = "(b) LPDDR3"
		note = "Paper: the mobile system is more sensitive (within ~4% for MiL); " +
			"CAFO's extra encode cycles hurt latency-bound benchmarks most."
	}
	t := &Table{
		ID:     "Figure 16" + sub[:3],
		Title:  fmt.Sprintf("Execution time normalized to the baseline %s", sub),
		Note:   note,
		Header: append([]string{"benchmark (by bus util)"}, evalSchemes...),
	}
	gm := map[string][]float64{}
	for _, n := range names {
		base, err := r.get(system, "baseline", n, 0)
		if err != nil {
			return nil, err
		}
		row := []string{n}
		for _, s := range evalSchemes {
			res, err := r.get(system, s, n, 0)
			if err != nil {
				return nil, err
			}
			v := float64(res.CPUCycles) / float64(base.CPUCycles)
			row = append(row, f3(v))
			gm[s] = append(gm[s], v)
		}
		t.Rows = append(t.Rows, row)
	}
	row := []string{"GEOMEAN"}
	for _, s := range evalSchemes {
		row = append(row, f3(geomean(gm[s])))
	}
	t.Rows = append(t.Rows, row)
	return t, nil
}

// Figure17 reproduces the transmitted IO cost comparison: zeros (DDR4) or
// wire transitions (LPDDR3) normalized to the baseline.
func (r *Runner) Figure17(system sim.SystemKind) (*Table, error) {
	r.prefetchSuite(system, evalSchemes...)
	names, err := r.suiteSorted(system)
	if err != nil {
		return nil, err
	}
	quantity := "zeros"
	note := "Paper (DDR4): MiL beats DBI by 49% on average, and CAFO2/CAFO4/" +
		"MiLC-only by 12%/11%/9%; MM, STRMATCH and GUPS compress most."
	if system == sim.Mobile {
		quantity = "wire transitions"
		note = "Paper (LPDDR3, Section 7.4): MiL beats BI by 46% and the other " +
			"schemes by 13%/10%/9% in transitions."
	}
	t := &Table{
		ID:     "Figure 17 (" + system.String() + ")",
		Title:  fmt.Sprintf("Transmitted %s normalized to the baseline", quantity),
		Note:   note,
		Header: append([]string{"benchmark (by bus util)"}, evalSchemes...),
	}
	gm := map[string][]float64{}
	for _, n := range names {
		base, err := r.get(system, "baseline", n, 0)
		if err != nil {
			return nil, err
		}
		row := []string{n}
		for _, s := range evalSchemes {
			res, err := r.get(system, s, n, 0)
			if err != nil {
				return nil, err
			}
			v := float64(res.Mem.CostUnits) / float64(base.Mem.CostUnits)
			row = append(row, f3(v))
			gm[s] = append(gm[s], v)
		}
		t.Rows = append(t.Rows, row)
	}
	row := []string{"GEOMEAN"}
	for _, s := range evalSchemes {
		row = append(row, f3(geomean(gm[s])))
	}
	t.Rows = append(t.Rows, row)
	return t, nil
}

// Figure18 reproduces the DRAM energy breakdown, baseline vs MiL, with all
// components normalized to the baseline total.
func (r *Runner) Figure18(system sim.SystemKind) (*Table, error) {
	r.prefetchSuite(system, "mil")
	names, err := r.suiteSorted(system)
	if err != nil {
		return nil, err
	}
	note := "Paper: DDR4 background energy dominates (no fast power-down), " +
		"capping DRAM savings at ~8% despite halved IO energy."
	if system == sim.Mobile {
		note = "Paper: LPDDR3's lean background makes IO a major share, so the " +
			"same IO reduction yields ~17% DRAM energy savings."
	}
	t := &Table{
		ID:    "Figure 18 (" + system.String() + ")",
		Title: "DRAM energy breakdown: baseline vs MiL (normalized to baseline total)",
		Note:  note,
		Header: []string{"benchmark", "scheme", "background", "act/pre", "rd/wr",
			"refresh", "IO", "codec", "total"},
	}
	var savings []float64
	for _, n := range names {
		base, err := r.get(system, "baseline", n, 0)
		if err != nil {
			return nil, err
		}
		mil, err := r.get(system, "mil", n, 0)
		if err != nil {
			return nil, err
		}
		tot := base.DRAM.Total()
		for _, p := range []struct {
			scheme string
			res    *sim.Result
		}{{"baseline", base}, {"mil", mil}} {
			d := p.res.DRAM
			t.Rows = append(t.Rows, []string{
				n, p.scheme,
				f3(d.Background / tot), f3(d.ActPre / tot), f3(d.RdWr / tot),
				f3(d.Refresh / tot), f3(d.IO / tot), f3(d.Codec / tot),
				f3(d.Total() / tot),
			})
		}
		savings = append(savings, mil.DRAM.Total()/tot)
	}
	t.Rows = append(t.Rows, []string{"GEOMEAN", "mil", "", "", "", "", "", "",
		f3(geomean(savings))})
	return t, nil
}

// Figure19 reproduces the system-energy comparison normalized to the
// baseline.
func (r *Runner) Figure19(system sim.SystemKind) (*Table, error) {
	r.prefetchSuite(system, evalSchemes...)
	names, err := r.suiteSorted(system)
	if err != nil {
		return nil, err
	}
	note := "Paper (DDR4): average system savings of 2.2/1.6/3.1/3.7% for " +
		"CAFO2/CAFO4/MiLC-only/MiL."
	if system == sim.Mobile {
		note = "Paper (LPDDR3): average system savings of 5/5/6/7%; the " +
			"energy-lean mobile cores make DRAM savings count for more."
	}
	t := &Table{
		ID:     "Figure 19 (" + system.String() + ")",
		Title:  "System energy normalized to the baseline",
		Note:   note,
		Header: append([]string{"benchmark (by bus util)"}, evalSchemes...),
	}
	gm := map[string][]float64{}
	for _, n := range names {
		base, err := r.get(system, "baseline", n, 0)
		if err != nil {
			return nil, err
		}
		row := []string{n}
		for _, s := range evalSchemes {
			res, err := r.get(system, s, n, 0)
			if err != nil {
				return nil, err
			}
			v := res.SystemJ() / base.SystemJ()
			row = append(row, f3(v))
			gm[s] = append(gm[s], v)
		}
		t.Rows = append(t.Rows, row)
	}
	row := []string{"GEOMEAN"}
	for _, s := range evalSchemes {
		row = append(row, f3(geomean(gm[s])))
	}
	t.Rows = append(t.Rows, row)
	return t, nil
}

// Figure22 reproduces the codec-usage split inside MiL.
func (r *Runner) Figure22() (*Table, error) {
	r.prefetchSuite(sim.Server, "mil")
	names, err := r.suiteSorted(sim.Server)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Figure 22",
		Title: "Fraction of column commands coded MiLC vs 3-LWC under MiL (DDR4)",
		Note: "Paper: the opportunity for the long code shrinks as bus " +
			"utilization rises; data-intensive benchmarks mostly use MiLC.",
		Header: []string{"benchmark (by bus util)", "MiLC", "3-LWC"},
	}
	for _, n := range names {
		res, err := r.get(sim.Server, "mil", n, 0)
		if err != nil {
			return nil, err
		}
		total := float64(res.Mem.ColumnCommands())
		if total == 0 {
			total = 1
		}
		t.Rows = append(t.Rows, []string{
			n,
			pct(float64(res.Mem.CodecBursts["milc"]) / total),
			pct(float64(res.Mem.CodecBursts["lwc3"]) / total),
		})
	}
	return t, nil
}
