package experiments

import (
	"reflect"
	"strings"
	"testing"

	"mil/internal/sim"
)

// The determinism contract of the sweep engine: tables are a pure function
// of the Runner's configuration. Worker count, scheduling, and cache warmth
// must never leak into the output, and seeded runs must replay bit for bit.

// determinismOps keeps the double sweep affordable, especially under the
// race detector (where this test doubles as the engine's race coverage).
func determinismOps() int64 {
	if raceEnabled {
		return 40
	}
	return 60
}

// renderAll runs the full generator set on a reduced suite and renders every
// table into one byte stream.
func renderAll(t *testing.T, workers int, seed uint64) string {
	t.Helper()
	r := NewRunner(determinismOps())
	r.Suite = []string{"MM", "GUPS"}
	r.Workers = workers
	r.BaseSeed = seed
	tables, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tab := range tables {
		sb.WriteString(tab.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestSweepDeterminismAcrossWorkers runs the full sweep serially (-j 1) and
// with eight runs in flight (-j 8) and requires byte-identical output, with
// both the legacy and a derived seed family.
func TestSweepDeterminismAcrossWorkers(t *testing.T) {
	for _, seed := range []uint64{0, 42} {
		serial := renderAll(t, 1, seed)
		parallel := renderAll(t, 8, seed)
		if serial != parallel {
			t.Fatalf("seed %d: -j 1 and -j 8 sweeps differ:\n%s",
				seed, firstDiff(serial, parallel))
		}
		if !strings.Contains(serial, "### Extension 5") {
			t.Fatalf("seed %d: sweep output missing tables", seed)
		}
	}
}

// TestSeededSweepChangesStreams guards the seed plumbing itself: a non-zero
// BaseSeed must actually select different access streams than the legacy
// family (otherwise the flag is silently dead).
func TestSeededSweepChangesStreams(t *testing.T) {
	legacy := renderAll(t, 8, 0)
	seeded := renderAll(t, 8, 42)
	if legacy == seeded {
		t.Fatal("BaseSeed=42 produced the legacy-stream output; seed derivation is dead")
	}
}

// TestFaultSweepDeterminism runs the seeded fault sweep twice from cold
// caches and requires identical reliability counters, both in the rendered
// table (failures/retries/exhausted/silent columns) and in the raw memory
// stats of the highest-BER cell.
func TestFaultSweepDeterminism(t *testing.T) {
	run := func() (*Table, *Runner) {
		r := NewRunner(determinismOps())
		r.Workers = 8
		tab, err := r.FaultSweep()
		if err != nil {
			t.Fatal(err)
		}
		return tab, r
	}
	tabA, ra := run()
	tabB, rb := run()
	if a, b := tabA.String(), tabB.String(); a != b {
		t.Fatalf("fault sweep not reproducible:\n%s", firstDiff(a, b))
	}
	// Compare the raw counters of the worst cell, not just their rendering.
	resA, err := ra.getFault(sim.Server, "mil", "GUPS", 2e-3)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := rb.getFault(sim.Server, "mil", "GUPS", 2e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resA.Mem, resB.Mem) {
		t.Fatalf("reliability counters differ between identical seeded runs:\nA: %+v\nB: %+v",
			resA.Mem, resB.Mem)
	}
}
