package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The golden-file regression harness pins the rendered output of every
// experiment across refactors: each table, regenerated on the reduced
// workload suite below, must match its committed snapshot byte for byte.
// After an intentional model change, re-bless the snapshots with
//
//	go test ./internal/experiments/ -run TestGolden -update
//
// and review the diff like any other code change - it IS the paper
// reproduction's output.
var update = flag.Bool("update", false, "rewrite the golden files from the current output")

// Golden runs use a reduced suite (the three cheapest benchmarks spanning
// the cache-friendly / bandwidth-bound / compressible-data classes) and a
// reduced run length so the whole generator set regenerates in seconds.
const goldenOps = 120

func goldenSuite() []string { return []string{"MM", "STRMATCH", "GUPS"} }

func goldenRunner() *Runner {
	r := NewRunner(goldenOps)
	r.Suite = goldenSuite()
	r.Workers = 8
	return r
}

// goldenFile maps a table ID to its snapshot path.
func goldenFile(id string) string {
	slug := strings.ToLower(id)
	slug = strings.NewReplacer(" ", "-", "(", "", ")", "").Replace(slug)
	return filepath.Join("testdata", "golden", slug+".md")
}

func TestGolden(t *testing.T) {
	if raceEnabled {
		// The snapshots are scheduling-independent (TestSweepDeterminism
		// proves that under race); re-rendering them here would only slow
		// the race pass down.
		t.Skip("golden content is race-agnostic; the engine is raced by TestSweepDeterminism")
	}
	tables, err := goldenRunner().All()
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if len(tables) != len(Generators()) {
		t.Fatalf("%d tables from %d generators", len(tables), len(Generators()))
	}
	blessed := map[string]bool{}
	for _, tab := range tables {
		tab := tab
		blessed[filepath.Base(goldenFile(tab.ID))] = true
		t.Run(tab.ID, func(t *testing.T) {
			path := goldenFile(tab.ID)
			got := tab.String()
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to bless): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from %s (re-bless with -update if intentional):\n%s",
					tab.ID, path, firstDiff(string(want), got))
			}
		})
	}

	// Keep the snapshot set in lockstep with the generator list: every
	// table must have a snapshot (checked above) and every snapshot a
	// table - a removed experiment must take its golden file with it.
	if !*update {
		entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !blessed[e.Name()] {
				t.Errorf("stale golden file %s has no generator", e.Name())
			}
		}
	}
}

// firstDiff renders the first differing line pair for a readable failure.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, w, g)
		}
	}
	return "(no line diff; trailing bytes differ)"
}
