// Package experiments regenerates every table and figure of the paper's
// evaluation (and the motivating Figures 1-7) from the simulator. Each
// FigureN/TableN method returns a rendered table; cmd/milexp assembles them
// into EXPERIMENTS.md. Results are cached per (system, scheme, benchmark,
// look-ahead) so figures that share runs - 16 through 19 and 22 all come
// from the same sweep - pay for them once.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"mil/internal/sim"
	"mil/internal/workload"
)

// Table is one experiment's output.
type Table struct {
	ID     string // "Figure 16(a)", "Table 4", ...
	Title  string
	Note   string // what the paper reports and what shape to expect
	Header []string
	Rows   [][]string
}

// String renders the table as GitHub markdown.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&sb, "%s\n\n", t.Note)
	}
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}

// runKey identifies one cached simulation.
type runKey struct {
	system    sim.SystemKind
	scheme    string
	bench     string
	x         int
	powerDown bool
}

// Runner executes and caches simulations.
type Runner struct {
	// MemOps is the per-thread memory-operation budget for every run.
	MemOps int64
	// Progress, when non-nil, receives one line per fresh simulation.
	Progress io.Writer

	cache      map[runKey]*sim.Result
	faultCache map[faultKey]*sim.Result
}

// NewRunner returns a runner with the given run length (0 = default).
func NewRunner(memOps int64) *Runner {
	if memOps <= 0 {
		memOps = sim.DefaultMemOps
	}
	return &Runner{MemOps: memOps, cache: make(map[runKey]*sim.Result)}
}

// get returns the cached or freshly computed result for a configuration.
func (r *Runner) get(system sim.SystemKind, scheme, bench string, x int) (*sim.Result, error) {
	return r.getPD(system, scheme, bench, x, false)
}

// getPD is get with the power-down extension toggled (Extension 3).
func (r *Runner) getPD(system sim.SystemKind, scheme, bench string, x int, pd bool) (*sim.Result, error) {
	key := runKey{system, scheme, bench, x, pd}
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	b, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, "run %s/%s/%s x=%d pd=%v ops=%d\n", system, scheme, bench, x, pd, r.MemOps)
	}
	res, err := sim.Run(sim.Config{
		System: system, Scheme: scheme, Benchmark: b,
		MemOpsPerThread: r.MemOps, LookaheadX: x, PowerDown: pd,
	})
	if err != nil {
		return nil, err
	}
	r.cache[key] = res
	return res, nil
}

// suiteSorted returns the benchmark names sorted by the baseline run's bus
// utilization on the given system, low to high - the paper's presentation
// order for Figures 5 and 16-19.
func (r *Runner) suiteSorted(system sim.SystemKind) ([]string, error) {
	names := append([]string(nil), workload.Names()...)
	util := make(map[string]float64, len(names))
	for _, n := range names {
		res, err := r.get(system, "baseline", n, 0)
		if err != nil {
			return nil, err
		}
		util[n] = res.BusUtilization()
	}
	sort.SliceStable(names, func(i, j int) bool { return util[names[i]] < util[names[j]] })
	return names, nil
}

// geomean returns the geometric mean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// f2, f3, pct format numbers for table cells.
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
