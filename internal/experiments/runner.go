// Package experiments regenerates every table and figure of the paper's
// evaluation (and the motivating Figures 1-7) from the simulator. Each
// FigureN/TableN method returns a rendered table; cmd/milexp assembles them
// into EXPERIMENTS.md.
//
// The whole evaluation is one cross product of {system x scheme x benchmark
// x look-ahead x extension knobs}, and figures share most of its cells (16
// through 19 and 22 all come from the same sweep). The Runner is therefore a
// sweep engine: every cell is cached per full configuration, concurrent
// requests for the same cell share one execution (singleflight), and fresh
// cells run on a bounded worker pool. Generators prefetch their cross
// product up front, so the serial row-assembly loops that follow find every
// cell warm or in flight. Results are deterministic regardless of scheduling:
// each cell's configuration (including its stream seed) is a pure function
// of the cell's key, so -j 1 and -j N produce byte-identical tables.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mil/internal/fault"
	"mil/internal/obs"
	"mil/internal/sim"
	"mil/internal/trace"
	"mil/internal/workload"
)

// Table is one experiment's output.
type Table struct {
	ID     string // "Figure 16(a)", "Table 4", ...
	Title  string
	Note   string // what the paper reports and what shape to expect
	Header []string
	Rows   [][]string
}

// String renders the table as GitHub markdown.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&sb, "%s\n\n", t.Note)
	}
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}

// Spec identifies one cell of the sweep cross product. The zero extension
// fields select the clean evaluation configuration of Figures 16-22.
type Spec struct {
	System    sim.SystemKind
	Scheme    string
	Bench     string
	X         int  // MiL look-ahead override (0 = scheme default)
	PowerDown bool // Extension 3 fast power-down

	// Reliability cells (Extension 5): link BER with the DDR4 RAS features
	// (write CRC + CA parity) enabled. RAS implies a seeded run even at
	// BER = 0, so the clean anchors come from the same stream family.
	BER float64
	RAS bool
}

// reliability reports whether the cell runs the fault/RAS path.
func (s Spec) reliability() bool { return s.RAS || s.BER > 0 }

// label renders the cell for progress lines.
func (s Spec) label() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s/%s/%s", s.System, s.Scheme, s.Bench)
	if s.X > 0 {
		fmt.Fprintf(&sb, " x=%d", s.X)
	}
	if s.PowerDown {
		sb.WriteString(" pd")
	}
	if s.reliability() {
		fmt.Fprintf(&sb, " ber=%g", s.BER)
	}
	return sb.String()
}

// Runner executes and caches simulations.
//
// A Runner is safe for concurrent use; configure the exported fields before
// the first run and leave them alone afterwards. The zero MemOps/Workers
// select the defaults.
type Runner struct {
	// MemOps is the per-thread memory-operation budget for every run.
	MemOps int64
	// Workers bounds the number of simulations in flight (the -j dial);
	// 0 selects GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives one line per fresh simulation with
	// its wall-clock cost. Line order follows completion order and is the
	// only output that depends on scheduling; tables never do.
	Progress io.Writer
	// Suite, when non-empty, restricts every suite-driven figure to these
	// benchmarks (must be Table 3 names). The golden-file regression
	// harness uses it to pin the full generator set on a reduced suite that
	// regenerates in seconds. Figures that hard-code their benchmarks per
	// the paper (Figure 2's CG/GUPS, Extension 5's GUPS) are unaffected.
	// nil selects the full Table 3 suite.
	Suite []string
	// BaseSeed, when non-zero, replaces the legacy stream seeds with seeds
	// derived from BaseSeed and the cell's benchmark. The scheme and system
	// are deliberately excluded from the derivation: every scheme must
	// replay the identical access trace (the paper's controlled-variable
	// methodology), so the seed may depend only on what the workload is,
	// never on how it is coded. BaseSeed == 0 keeps the legacy seeds
	// (0 for evaluation cells, 1 for reliability cells), under which the
	// archived EXPERIMENTS.md numbers remain reproducible.
	BaseSeed uint64
	// Metrics, when non-nil, aggregates every fresh simulation's
	// observability counters (internal/obs) into one registry. Its
	// snapshot is byte-identical at any Workers count: the singleflight
	// cache runs each distinct cell exactly once and all registry updates
	// commute. Nil (the default) keeps every run on the zero-cost path.
	// Caveat: an attempt aborted by CellTimeout or a panic has already
	// bumped shared counters, so a sweep that needed retries is no longer
	// byte-comparable to a clean one.
	Metrics *obs.Registry
	// CellTimeout bounds each simulation's wall-clock time; zero disables
	// the bound. A cell that exceeds it is retried with a doubled budget
	// (capped at 8x CellTimeout) up to cellAttempts tries, then fails with
	// sim.ErrDeadline. The backoff absorbs transient slowness (a loaded
	// machine) without letting one pathological cell wedge the sweep.
	CellTimeout time.Duration
	// Traces, when non-nil, turns on the record/replay second-level cache
	// (DESIGN.md §5.11). The first cell of each front-end timing class
	// records its memory trace while simulating in full; every later cell
	// of the class replays the trace, simulating only the memory backend.
	// The store may be shared between Runners (cmd/milbench shares one
	// across its serial and parallel legs) — traces are keyed by the full
	// FrontEndKey, so two Runners can only exchange traces when their
	// MemOps, seeds, and suite agree. Ignored when Metrics is set: which
	// cell of a class records is scheduling-dependent under Workers > 1,
	// and replayed cells skip the front end, so the metrics snapshot would
	// lose its byte-identity across worker counts. Journal-restored cells
	// never reach the trace store: the journal pre-seeds the first-level
	// cache, which is consulted first.
	//
	// Throughput caveat: a cell waiting for its class's recording leader
	// blocks while holding a worker slot, so a sweep dominated by one class
	// briefly serializes behind the recorder. The recording run costs the
	// same as the plain run (recording is allocation-light), and replays
	// are strictly cheaper, so the sweep never loses time overall.
	Traces *trace.Store

	mu    sync.Mutex
	cache map[string]*inflight
	sem   chan struct{}
	wg    sync.WaitGroup

	journalMu sync.Mutex
	journal   *os.File

	launched    atomic.Int64
	finished    atomic.Int64
	simNanos    atomic.Int64
	traceHits   atomic.Int64
	replayNanos atomic.Int64

	clusterHits   atomic.Int64
	clusterTrials atomic.Int64
	clusterMisses atomic.Int64

	eventsFired   atomic.Int64
	cyclesSkipped atomic.Int64
}

// inflight is one cache entry: done closes when res/err are final, so
// concurrent requests for the same key share a single execution.
type inflight struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// NewRunner returns a runner with the given run length (0 = default).
func NewRunner(memOps int64) *Runner {
	if memOps <= 0 {
		memOps = sim.DefaultMemOps
	}
	return &Runner{MemOps: memOps}
}

// Stats reports the number of completed fresh simulations and their summed
// single-threaded wall-clock cost (the serial-equivalent time).
func (r *Runner) Stats() (runs int64, simTime time.Duration) {
	return r.finished.Load(), time.Duration(r.simNanos.Load())
}

// TraceStats reports how many cells were satisfied by replaying a recorded
// memory trace instead of a full simulation, and their summed wall-clock
// cost. Replayed cells are excluded from Stats and LoopTotals: they run no
// front end, so counting them as simulations would overstate the sweep.
func (r *Runner) TraceStats() (hits int64, replayTime time.Duration) {
	return r.traceHits.Load(), time.Duration(r.replayNanos.Load())
}

// ClusterStats reports the cluster index's work (DESIGN.md §5.12): hits
// are exact-miss cells that adopted a sibling class's recorded stream,
// trials are candidate replays attempted while deciding (every hit costs
// at least one trial; failed trials are divergence-fenced rejections), and
// misses are leaders that recorded a fresh stream after finding no
// adoptable candidate. Exact-key replays (TraceStats hits minus cluster
// hits) never consult the cluster. The conservation identity — cluster
// hits + misses equals the number of recording leaders, and the store's
// stream count equals the misses — is pinned by TestClusterAccounting.
func (r *Runner) ClusterStats() (hits, trials, misses int64) {
	return r.clusterHits.Load(), r.clusterTrials.Load(), r.clusterMisses.Load()
}

// LoopTotals reports the event-core counters summed over every fresh
// simulation: cycles actually fired versus cycles proven no-ops and
// skipped. The ratio is the work the event-driven core avoids.
func (r *Runner) LoopTotals() (eventsFired, cyclesSkipped int64) {
	return r.eventsFired.Load(), r.cyclesSkipped.Load()
}

// workers returns the effective pool width.
func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// seedFor derives the cell's stream seed; see BaseSeed for the contract.
func (r *Runner) seedFor(s Spec) uint64 {
	var legacy uint64
	if s.reliability() {
		legacy = 1
	}
	if r.BaseSeed == 0 {
		return legacy
	}
	seed := splitmix64(r.BaseSeed ^ fnv64(s.Bench) ^ (legacy * 0x9e3779b97f4a7c15))
	if seed == 0 {
		seed = 1 // zero would silently select the legacy streams
	}
	return seed
}

// configFor expands a cell into its full simulator configuration. It is a
// pure function of (Runner settings, Spec): determinism of the sweep reduces
// to determinism of sim.Run, which owns no shared state.
func (r *Runner) configFor(s Spec) (sim.Config, error) {
	b, err := workload.ByName(s.Bench)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.Config{
		System: s.System, Scheme: s.Scheme, Benchmark: b,
		MemOpsPerThread: r.MemOps, LookaheadX: s.X, PowerDown: s.PowerDown,
		Seed: r.seedFor(s),
	}
	if r.Metrics != nil {
		// Deliberately not part of runKeyOf: observability never changes a
		// result, and the registry is shared across every cell.
		cfg.Obs = &obs.Obs{Metrics: r.Metrics}
	}
	if s.reliability() {
		cfg.Fault = fault.Config{BER: s.BER}
		cfg.WriteCRC, cfg.CAParity = true, true
	}
	return cfg, nil
}

// runKeyOf renders the full semantic configuration of a run as a canonical
// string. Every field that can change a result is included - the former
// struct key dropped the reliability and seed dimensions, so two distinct
// configurations could alias to one cached result on extension paths.
func runKeyOf(cfg *sim.Config) string {
	return fmt.Sprintf("sys=%v scheme=%s bench=%s ops=%d x=%d pd=%t verify=%t fault=%+v crc=%t cap=%t retry=%+v seed=%d",
		cfg.System, cfg.Scheme, cfg.Benchmark.Name, cfg.MemOpsPerThread,
		cfg.LookaheadX, cfg.PowerDown, cfg.Verify, cfg.Fault,
		cfg.WriteCRC, cfg.CAParity, cfg.Retry, cfg.Seed)
}

// cell returns the cached, in-flight, or freshly computed result for a cell.
func (r *Runner) cell(s Spec) (*sim.Result, error) {
	cfg, err := r.configFor(s)
	if err != nil {
		return nil, err
	}
	return r.result(cfg, s.label())
}

// result is the singleflight core: the first caller for a key computes it on
// a worker slot while later callers block on the entry; distinct keys run in
// parallel up to the pool width.
func (r *Runner) result(cfg sim.Config, label string) (*sim.Result, error) {
	key := runKeyOf(&cfg)
	r.mu.Lock()
	if r.cache == nil {
		r.cache = make(map[string]*inflight)
	}
	if e, ok := r.cache[key]; ok {
		r.mu.Unlock()
		<-e.done
		return e.res, e.err
	}
	e := &inflight{done: make(chan struct{})}
	r.cache[key] = e
	if r.sem == nil {
		r.sem = make(chan struct{}, r.workers())
	}
	sem := r.sem
	r.mu.Unlock()

	sem <- struct{}{}
	seq := r.launched.Add(1)
	start := time.Now()
	var replayed bool
	e.res, e.err, replayed = r.runCellTraced(cfg)
	elapsed := time.Since(start)
	<-sem

	if replayed {
		r.traceHits.Add(1)
		r.replayNanos.Add(int64(elapsed))
	} else {
		r.finished.Add(1)
		r.simNanos.Add(int64(elapsed))
		if e.res != nil {
			r.eventsFired.Add(e.res.Loop.EventsFired)
			r.cyclesSkipped.Add(e.res.Loop.CyclesSkipped)
		}
	}
	if e.err == nil {
		if jerr := r.appendJournal(key, e.res); jerr != nil {
			e.res, e.err = nil, jerr
		}
	}
	if r.Progress != nil {
		how := ""
		if replayed {
			how = ", replay"
		}
		r.mu.Lock()
		fmt.Fprintf(r.Progress, "run %d: %s ops=%d seed=%d (%.0fms%s)\n",
			seq, label, cfg.MemOpsPerThread, cfg.Seed, float64(elapsed.Milliseconds()), how)
		r.mu.Unlock()
	}
	close(e.done)
	return e.res, e.err
}

// runCellTraced is runCell behind the trace cache. When a Store is attached
// (and Metrics is not — see the Traces field), the first cell of each
// front-end timing class records its memory trace while simulating in full
// and publishes it; every later cell of the class replays the trace,
// simulating only the backend. An exact-miss leader additionally trials
// the cluster index's candidate streams (same front-end inputs, sibling
// timing class) before recording, adopting the first that replays clean —
// so statically distinct classes with empirically identical timing share
// one stream. replayed reports which path produced the result, so the
// caller can keep fresh-simulation accounting honest. Any replay failure —
// which the replay driver's cycle-by-cycle verification turns into a
// divergence error rather than silently wrong numbers — falls back to the
// next candidate and ultimately a full simulation.
func (r *Runner) runCellTraced(cfg sim.Config) (res *sim.Result, err error, replayed bool) {
	if r.Traces == nil || r.Metrics != nil {
		res, err = r.runCell(cfg)
		return res, err, false
	}
	tr, leader, publish, abort := r.Traces.Acquire(cfg.FrontEndKey())
	switch {
	case tr != nil:
		rcfg := cfg
		rcfg.ReplayTrace = tr
		if res, err = r.runCell(rcfg); err == nil {
			return res, nil, true
		}
		res, err = r.runCell(cfg)
		return res, err, false
	case leader:
		// Exact miss. Before paying for a fresh recording, trial the
		// cluster's candidate streams — traces recorded under sibling
		// timing classes that ran the same front-end inputs (ClusterKey).
		// The replay divergence fence is the arbiter: a candidate whose
		// boundary timing differs fails its trial, so a clean trial means
		// this cell's stream already exists. The adopted candidate is
		// published under this cell's exact key, sharing the stream.
		// Fault-injection cells have ClusterKey "" and never reach here
		// with candidates: corrupted payloads are knob-dependent in ways
		// the (timing-only) fence cannot see, so they must not cluster.
		// Same-cluster leaders serialize (LockCluster) so the adoption
		// split is deterministic at any worker count: a later leader
		// always trials against every earlier same-cluster recording.
		ck := cfg.ClusterKey()
		unlock := r.Traces.LockCluster(ck)
		defer unlock()
		for _, cand := range r.Traces.Candidates(ck) {
			r.clusterTrials.Add(1)
			rcfg := cfg
			rcfg.ReplayTrace = cand
			if res, err = r.runCell(rcfg); err == nil {
				publish(cand)
				r.Traces.Touch(cand)
				r.clusterHits.Add(1)
				return res, nil, true
			}
		}
		var rec *trace.Trace
		rcfg := cfg
		rcfg.RecordTrace = func(t *trace.Trace) { rec = t }
		res, err = r.runCell(rcfg)
		if err == nil && rec != nil {
			publish(rec)
			if ck != "" {
				r.clusterMisses.Add(1)
				r.Traces.AddCandidate(ck, rec)
			}
		} else {
			abort()
		}
		return res, err, false
	default:
		// The leader aborted (its simulation failed); run plainly.
		res, err = r.runCell(cfg)
		return res, err, false
	}
}

// cellAttempts bounds the deadline-retry loop in runCell.
const cellAttempts = 3

// runCell executes one simulation with the sweep's robustness wrappers:
// a panic inside the simulator fails the cell instead of the whole
// sweep, and CellTimeout (when set) turns a wedged cell into a retried,
// then failed, one. Retries are safe because sim.Run owns no shared
// state — an aborted attempt leaves nothing behind (except shared
// Metrics counters; see that field's caveat).
func (r *Runner) runCell(cfg sim.Config) (*sim.Result, error) {
	attempt := func(c sim.Config) (res *sim.Result, err error) {
		defer func() {
			if p := recover(); p != nil {
				res, err = nil, fmt.Errorf("experiments: %s/%s/%s panicked: %v",
					c.System, c.Scheme, c.Benchmark.Name, p)
			}
		}()
		return sim.Run(c)
	}
	timeout := r.CellTimeout
	for tries := 1; ; tries++ {
		c := cfg
		if timeout > 0 {
			c.Deadline = time.Now().Add(timeout)
		}
		res, err := attempt(c)
		if timeout == 0 || tries >= cellAttempts || !errors.Is(err, sim.ErrDeadline) {
			return res, err
		}
		timeout *= 2
		if cap := 8 * r.CellTimeout; timeout > cap {
			timeout = cap
		}
	}
}

// Prefetch schedules cells on the worker pool without waiting for them.
// Table generators call it with their full cross product up front; errors
// (if any) surface when the generator fetches the failed cell.
func (r *Runner) Prefetch(specs ...Spec) {
	for _, s := range specs {
		s := s
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			_, _ = r.cell(s)
		}()
	}
}

// Wait blocks until every prefetched cell has settled.
func (r *Runner) Wait() { r.wg.Wait() }

// get returns the cached or freshly computed result for a configuration.
func (r *Runner) get(system sim.SystemKind, scheme, bench string, x int) (*sim.Result, error) {
	return r.cell(Spec{System: system, Scheme: scheme, Bench: bench, X: x})
}

// getPD is get with the power-down extension toggled (Extension 3).
func (r *Runner) getPD(system sim.SystemKind, scheme, bench string, x int, pd bool) (*sim.Result, error) {
	return r.cell(Spec{System: system, Scheme: scheme, Bench: bench, X: x, PowerDown: pd})
}

// getFault returns the result for a reliability cell: the scheme under link
// BER with DDR4 write CRC and CA parity enabled, seeded for reproducibility.
func (r *Runner) getFault(system sim.SystemKind, scheme, bench string, ber float64) (*sim.Result, error) {
	return r.cell(Spec{System: system, Scheme: scheme, Bench: bench, BER: ber, RAS: true})
}

// names returns the effective benchmark suite in Table 3 order.
func (r *Runner) names() []string {
	if len(r.Suite) > 0 {
		return r.Suite
	}
	return workload.Names()
}

// prefetchSuite schedules scheme x suite cross products (the common shape of
// the evaluation figures) plus the baselines suiteSorted needs.
func (r *Runner) prefetchSuite(system sim.SystemKind, schemes ...string) {
	var specs []Spec
	for _, n := range r.names() {
		specs = append(specs, Spec{System: system, Scheme: "baseline", Bench: n})
		for _, s := range schemes {
			specs = append(specs, Spec{System: system, Scheme: s, Bench: n})
		}
	}
	r.Prefetch(specs...)
}

// suiteSorted returns the benchmark names sorted by the baseline run's bus
// utilization on the given system, low to high - the paper's presentation
// order for Figures 5 and 16-19.
func (r *Runner) suiteSorted(system sim.SystemKind) ([]string, error) {
	names := append([]string(nil), r.names()...)
	r.prefetchSuite(system)
	util := make(map[string]float64, len(names))
	for _, n := range names {
		res, err := r.get(system, "baseline", n, 0)
		if err != nil {
			return nil, err
		}
		util[n] = res.BusUtilization()
	}
	sort.SliceStable(names, func(i, j int) bool { return util[names[i]] < util[names[j]] })
	return names, nil
}

// fnv64 hashes a string (FNV-1a).
func fnv64(s string) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range []byte(s) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// splitmix64 is the SplitMix64 finalizer, used to whiten derived seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// geomean returns the geometric mean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// f2, f3, pct format numbers for table cells.
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
