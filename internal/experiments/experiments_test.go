package experiments

import (
	"fmt"
	"strings"
	"testing"

	"mil/internal/sim"
)

// tinyRunner keeps experiment tests fast; shapes are still checked.
func tinyRunner() *Runner { return NewRunner(250) }

func TestGeneratorsCoverEveryTableAndFigure(t *testing.T) {
	want := []string{
		"Figure 1", "Figure 2", "Figure 4", "Figure 5", "Figure 6",
		"Figure 7", "Table 4", "Figure 16(a)", "Figure 16(b)",
		"Figure 17(a)", "Figure 17(b)", "Figure 18(a)", "Figure 18(b)",
		"Figure 19(a)", "Figure 19(b)", "Figure 20", "Figure 21", "Figure 22",
		"Extension 1", "Extension 2", "Extension 3", "Extension 4",
		"Extension 5", "Extension 6", "Extension 7", "Extension 8",
	}
	gens := Generators()
	if len(gens) != len(want) {
		t.Fatalf("%d generators, want %d", len(gens), len(want))
	}
	for i, g := range gens {
		if g.ID != want[i] {
			t.Errorf("generator %d = %q, want %q", i, g.ID, want[i])
		}
	}
}

func TestRunnerCachesRuns(t *testing.T) {
	r := tinyRunner()
	a, err := r.get(sim.Server, "baseline", "MM", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.get(sim.Server, "baseline", "MM", 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second get did not hit the cache")
	}
}

func TestFigure2Shape(t *testing.T) {
	r := tinyRunner()
	tab, err := r.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		// exec time ratio > 1 (always-on wide code slows things down)...
		if !strings.HasPrefix(row[1], "1.") {
			t.Errorf("%s exec ratio %s not > 1", row[0], row[1])
		}
		// ...while IO energy drops below the baseline.
		if !strings.HasPrefix(row[2], "0.") {
			t.Errorf("%s IO ratio %s not < 1", row[0], row[2])
		}
	}
}

func TestFigure5RowsSortedByUtilization(t *testing.T) {
	r := tinyRunner()
	tab, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 11 {
		t.Fatalf("rows = %d, want 11 benchmarks", len(tab.Rows))
	}
	prev := -1.0
	for _, row := range tab.Rows {
		var v float64
		if _, err := fmtSscanPct(row[3], &v); err != nil {
			t.Fatalf("bad cell %q: %v", row[3], err)
		}
		if v < prev {
			t.Fatalf("utilization not sorted: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestFigure7Monotone(t *testing.T) {
	r := tinyRunner()
	tab, err := r.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	mean := tab.Rows[len(tab.Rows)-1]
	if mean[0] != "MEAN" {
		t.Fatal("missing MEAN row")
	}
	prev := 10.0
	for _, cell := range mean[2:] { // the (8,k) columns
		var v float64
		if _, err := fmtSscan(cell, &v); err != nil {
			t.Fatal(err)
		}
		if v > prev {
			t.Fatalf("static LWC zeros not monotone: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	r := tinyRunner()
	tab, err := r.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "1429" || tab.Rows[3][2] != "0.70" {
		t.Fatalf("Table 4 constants drifted: %v", tab.Rows)
	}
}

func TestFigure22SharesSumBelowOne(t *testing.T) {
	r := tinyRunner()
	tab, err := r.Figure22()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		var milc, lwc float64
		if _, err := fmtSscanPct(row[1], &milc); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscanPct(row[2], &lwc); err != nil {
			t.Fatal(err)
		}
		if milc+lwc < 0.99 || milc+lwc > 1.01 {
			t.Fatalf("%s: MiLC+3LWC = %v, want 1", row[0], milc+lwc)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "Figure X", Title: "demo", Note: "note",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
	}
	s := tab.String()
	for _, want := range []string{"### Figure X", "| a | b |", "| 1 | 2 |", "note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Fatalf("geomean = %v", g)
	}
	if geomean(nil) != 0 {
		t.Fatal("empty geomean")
	}
	if geomean([]float64{1, -1}) != 0 {
		t.Fatal("non-positive geomean")
	}
}

// fmtSscan parses a plain float cell.
func fmtSscan(s string, v *float64) (int, error) {
	return sscan(s, v)
}

// fmtSscanPct parses a "12.3%" cell into a fraction.
func fmtSscanPct(s string, v *float64) (int, error) {
	n, err := sscan(strings.TrimSuffix(s, "%"), v)
	*v /= 100
	return n, err
}

// sscan wraps fmt.Sscanf for the cell parsers above.
func sscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%f", v)
}

func TestFaultSweepShape(t *testing.T) {
	tab, err := tinyRunner().FaultSweep()
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "Extension 5" {
		t.Fatalf("id %q", tab.ID)
	}
	if len(tab.Rows) != 16 { // 4 schemes x 4 BERs
		t.Fatalf("%d rows, want 16", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("ragged row %v", row)
		}
		// The BER=0 rows are the clean anchors: no failures, unit ratios.
		if row[1] == "0e+00" {
			if row[5] != "0" || row[6] != "0" {
				t.Fatalf("clean row reports failures: %v", row)
			}
			if row[10] != "1.000" || row[11] != "1.000" {
				t.Fatalf("clean row not its own anchor: %v", row)
			}
		}
	}
}
