package experiments

import (
	"fmt"

	"mil/internal/sim"
)

// Figure20 reproduces the fixed-burst-length sensitivity study: always
// coding with BL10 (MiLC), BL12/BL14 (stretched intermediate codes) and
// BL16 (3-LWC) on the DDR4 system.
func (r *Runner) Figure20() (*Table, error) {
	schemes := []string{"bl10", "bl12", "bl14", "bl16"}
	r.prefetchSuite(sim.Server, schemes...)
	names, err := r.suiteSorted(sim.Server)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Figure 20",
		Title: "Execution time vs fixed burst length, normalized to BL8 baseline (DDR4)",
		Note: "Paper: average slowdowns of 3/6/6.5/9.3% for BL10/12/14/16; the " +
			"data-intensive benchmarks suffer most, motivating the hybrid scheme.",
		Header: append([]string{"benchmark (by bus util)"}, schemes...),
	}
	gm := map[string][]float64{}
	for _, n := range names {
		base, err := r.get(sim.Server, "baseline", n, 0)
		if err != nil {
			return nil, err
		}
		row := []string{n}
		for _, s := range schemes {
			res, err := r.get(sim.Server, s, n, 0)
			if err != nil {
				return nil, err
			}
			v := float64(res.CPUCycles) / float64(base.CPUCycles)
			row = append(row, f3(v))
			gm[s] = append(gm[s], v)
		}
		t.Rows = append(t.Rows, row)
	}
	row := []string{"GEOMEAN"}
	for _, s := range schemes {
		row = append(row, f3(geomean(gm[s])))
	}
	t.Rows = append(t.Rows, row)
	return t, nil
}

// Figure21 reproduces the look-ahead-distance sweep: MiL's execution time
// (geometric mean over the suite, normalized to baseline) as X varies.
func (r *Runner) Figure21() (*Table, error) {
	var specs []Spec
	for _, x := range []int{2, 4, 6, 8, 10, 12, 14} {
		for _, n := range r.names() {
			specs = append(specs, Spec{System: sim.Server, Scheme: "mil", Bench: n, X: x})
		}
	}
	r.Prefetch(specs...)
	names, err := r.suiteSorted(sim.Server)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Figure 21",
		Title: "Impact of the look-ahead distance X on MiL's execution time (DDR4)",
		Note: "Paper: within 4% of each other for X >= 6; the imperfect " +
			"prediction means the best X can exceed the natural 8.",
		Header: []string{"X (cycles)", "geomean exec time vs baseline", "worst benchmark", "worst ratio"},
	}
	for _, x := range []int{2, 4, 6, 8, 10, 12, 14} {
		var ratios []float64
		worst, worstV := "", 0.0
		for _, n := range names {
			base, err := r.get(sim.Server, "baseline", n, 0)
			if err != nil {
				return nil, err
			}
			res, err := r.get(sim.Server, "mil", n, x)
			if err != nil {
				return nil, err
			}
			v := float64(res.CPUCycles) / float64(base.CPUCycles)
			ratios = append(ratios, v)
			if v > worstV {
				worst, worstV = n, v
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", x), f3(geomean(ratios)), worst, f3(worstV),
		})
	}
	return t, nil
}
