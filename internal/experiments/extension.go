package experiments

import (
	"fmt"

	"mil/internal/sim"
)

// Extension1 evaluates the Section 7.5.3 extension built in this
// repository: the three-tier MiL (mil3) adds an intermediate BL14 hybrid
// code (half MiLC, half 3-LWC per chip lane) between MiLC and 3-LWC, so
// medium-sized idle windows that cannot fit BL16 still carry a code
// stronger than MiLC.
func (r *Runner) Extension1() (*Table, error) {
	r.prefetchSuite(sim.Server, "mil", "mil3")
	names, err := r.suiteSorted(sim.Server)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Extension 1",
		Title: "Three-tier MiL (MiLC / hybrid BL14 / 3-LWC) vs two-tier MiL (DDR4)",
		Note: "The paper's Section 7.5.3 observes that data-intensive benchmarks " +
			"cannot use 3-LWC and suggests an intermediate-length code; this " +
			"implements one. Ratios are vs the DBI baseline.",
		Header: []string{"benchmark (by bus util)",
			"mil time", "mil3 time", "mil zeros", "mil3 zeros", "hybrid share"},
	}
	var gmT2, gmT3, gmZ2, gmZ3 []float64
	for _, n := range names {
		base, err := r.get(sim.Server, "baseline", n, 0)
		if err != nil {
			return nil, err
		}
		m2, err := r.get(sim.Server, "mil", n, 0)
		if err != nil {
			return nil, err
		}
		m3, err := r.get(sim.Server, "mil3", n, 0)
		if err != nil {
			return nil, err
		}
		t2 := float64(m2.CPUCycles) / float64(base.CPUCycles)
		t3 := float64(m3.CPUCycles) / float64(base.CPUCycles)
		z2 := float64(m2.Mem.CostUnits) / float64(base.Mem.CostUnits)
		z3 := float64(m3.Mem.CostUnits) / float64(base.Mem.CostUnits)
		hyb := float64(m3.Mem.CodecBursts["hybrid"]) / float64(m3.Mem.ColumnCommands())
		t.Rows = append(t.Rows, []string{n, f3(t2), f3(t3), f3(z2), f3(z3), pct(hyb)})
		gmT2 = append(gmT2, t2)
		gmT3 = append(gmT3, t3)
		gmZ2 = append(gmZ2, z2)
		gmZ3 = append(gmZ3, z3)
	}
	t.Rows = append(t.Rows, []string{"GEOMEAN",
		f3(geomean(gmT2)), f3(geomean(gmT3)), f3(geomean(gmZ2)), f3(geomean(gmZ3)), ""})
	return t, nil
}

// Extension3 evaluates the fast power-down modes the paper cites as the
// lever that would raise MiL's system-level savings (Section 7.3, Malladi
// et al. [60]): with background energy reduced, the IO savings are a larger
// share of what remains.
func (r *Runner) Extension3() (*Table, error) {
	var specs []Spec
	for _, n := range r.names() {
		for _, scheme := range []string{"baseline", "mil"} {
			specs = append(specs,
				Spec{System: sim.Server, Scheme: scheme, Bench: n},
				Spec{System: sim.Server, Scheme: scheme, Bench: n, PowerDown: true})
		}
	}
	r.Prefetch(specs...)
	names, err := r.suiteSorted(sim.Server)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Extension 3",
		Title: "Fast power-down modes amplify MiL's DRAM savings (DDR4)",
		Note: "Columns are DRAM energy ratios mil/baseline, without and with " +
			"rank power-down (IDD2P background when idle, tXP wake latency). " +
			"The paper predicts the with-power-down savings are larger.",
		Header: []string{"benchmark (by bus util)", "savings (no PD)", "savings (PD)",
			"PD rank-cycles", "wake-ups"},
	}
	var gmOff, gmOn []float64
	for _, n := range names {
		baseOff, err := r.getPD(sim.Server, "baseline", n, 0, false)
		if err != nil {
			return nil, err
		}
		milOff, err := r.getPD(sim.Server, "mil", n, 0, false)
		if err != nil {
			return nil, err
		}
		baseOn, err := r.getPD(sim.Server, "baseline", n, 0, true)
		if err != nil {
			return nil, err
		}
		milOn, err := r.getPD(sim.Server, "mil", n, 0, true)
		if err != nil {
			return nil, err
		}
		off := milOff.DRAM.Total() / baseOff.DRAM.Total()
		on := milOn.DRAM.Total() / baseOn.DRAM.Total()
		pdShare := float64(milOn.Mem.PowerDownCycles) /
			float64(milOn.Mem.Ticks*2) // 2 ranks per channel
		t.Rows = append(t.Rows, []string{
			n, f3(off), f3(on), pct(pdShare),
			fmt.Sprintf("%d", milOn.Mem.PowerDownExits),
		})
		gmOff = append(gmOff, off)
		gmOn = append(gmOn, on)
	}
	t.Rows = append(t.Rows, []string{"GEOMEAN", f3(geomean(gmOff)), f3(geomean(gmOn)), "", ""})
	return t, nil
}

// Extension4 evaluates MiL on ranks of x4 chips (Section 4.1): x4 devices
// cannot implement DBI (no DBI pins), so the baseline transmits raw data,
// while MiL's pin-free codes (hybrid BL14 + MiLC BL10) still apply - "unlike
// the case of DBI, x4 chips can benefit from MiL".
func (r *Runner) Extension4() (*Table, error) {
	r.prefetchSuite(sim.Server, "raw", "mil-x4")
	names, err := r.suiteSorted(sim.Server)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Extension 4",
		Title: "MiL on x4 ranks: uncoded baseline vs pin-free MiL (DDR4)",
		Note: "Ratios vs the uncoded x4 baseline. Without DBI the baseline " +
			"transmits many more zeros, so MiL's relative IO savings exceed " +
			"the x8 results of Figure 17.",
		Header: []string{"benchmark (by bus util)", "exec time", "zeros", "IO energy"},
	}
	var gmT, gmZ []float64
	for _, n := range names {
		base, err := r.get(sim.Server, "raw", n, 0)
		if err != nil {
			return nil, err
		}
		milx4, err := r.get(sim.Server, "mil-x4", n, 0)
		if err != nil {
			return nil, err
		}
		tm := float64(milx4.CPUCycles) / float64(base.CPUCycles)
		z := float64(milx4.Mem.CostUnits) / float64(base.Mem.CostUnits)
		t.Rows = append(t.Rows, []string{n, f3(tm), f3(z), f3(milx4.DRAM.IO / base.DRAM.IO)})
		gmT = append(gmT, tm)
		gmZ = append(gmZ, z)
	}
	t.Rows = append(t.Rows, []string{"GEOMEAN", f3(geomean(gmT)), f3(geomean(gmZ)), ""})
	return t, nil
}

// Extension2 is the write-optimization ablation: MiL with and without the
// Section 4.6 pre-encode-both-and-pick-sparser write path.
func (r *Runner) Extension2() (*Table, error) {
	r.prefetchSuite(sim.Server, "mil", "mil-nowropt")
	names, err := r.suiteSorted(sim.Server)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Extension 2",
		Title: "Ablation: MiL write optimization (Section 4.6) on vs off (DDR4)",
		Note: "The optimization only applies to writes (read data cannot be " +
			"inspected at schedule time), so write-heavy benchmarks benefit most.",
		Header: []string{"benchmark (by bus util)", "zeros with", "zeros without", "delta"},
	}
	for _, n := range names {
		base, err := r.get(sim.Server, "baseline", n, 0)
		if err != nil {
			return nil, err
		}
		on, err := r.get(sim.Server, "mil", n, 0)
		if err != nil {
			return nil, err
		}
		off, err := r.get(sim.Server, "mil-nowropt", n, 0)
		if err != nil {
			return nil, err
		}
		von := float64(on.Mem.CostUnits) / float64(base.Mem.CostUnits)
		voff := float64(off.Mem.CostUnits) / float64(base.Mem.CostUnits)
		t.Rows = append(t.Rows, []string{n, f3(von), f3(voff), pct(voff - von)})
	}
	return t, nil
}

// Extension7 evaluates the mil-bandit adaptive policy (internal/milcore
// Bandit): an epsilon-greedy racer over DBI / MiLC / hybrid / CAFO-2 fed
// by the controller's per-epoch feedback (memctrl.EpochObserver), choosing
// arms from measured wire cost instead of MiL's schedule prediction. The
// arm-share columns show what it converged to per benchmark; the zeros
// columns place it against its own best fixed arms and against mil.
func (r *Runner) Extension7() (*Table, error) {
	r.prefetchSuite(sim.Server, "milc", "cafo2", "mil", "mil-bandit")
	names, err := r.suiteSorted(sim.Server)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Extension 7",
		Title: "Adaptive codec selection: mil-bandit vs fixed arms and MiL (DDR4)",
		Note: "Zeros are IO cost ratios vs the DBI baseline; time is mil-bandit's " +
			"execution-time ratio. The arm shares are the fraction of column " +
			"bursts each codec carried under mil-bandit - the measured per-" +
			"benchmark preference the epoch feedback converged to.",
		Header: []string{"benchmark (by bus util)", "milc zeros", "cafo2 zeros",
			"mil zeros", "bandit zeros", "bandit time",
			"dbi", "milc", "hybrid", "cafo2"},
	}
	var gmM, gmC, gmL, gmB, gmT []float64
	for _, n := range names {
		base, err := r.get(sim.Server, "baseline", n, 0)
		if err != nil {
			return nil, err
		}
		milc, err := r.get(sim.Server, "milc", n, 0)
		if err != nil {
			return nil, err
		}
		cafo, err := r.get(sim.Server, "cafo2", n, 0)
		if err != nil {
			return nil, err
		}
		mil, err := r.get(sim.Server, "mil", n, 0)
		if err != nil {
			return nil, err
		}
		band, err := r.get(sim.Server, "mil-bandit", n, 0)
		if err != nil {
			return nil, err
		}
		zm := float64(milc.Mem.CostUnits) / float64(base.Mem.CostUnits)
		zc := float64(cafo.Mem.CostUnits) / float64(base.Mem.CostUnits)
		zl := float64(mil.Mem.CostUnits) / float64(base.Mem.CostUnits)
		zb := float64(band.Mem.CostUnits) / float64(base.Mem.CostUnits)
		tb := float64(band.CPUCycles) / float64(base.CPUCycles)
		total := float64(band.Mem.ColumnCommands())
		if total == 0 {
			total = 1
		}
		row := []string{n, f3(zm), f3(zc), f3(zl), f3(zb), f3(tb)}
		for _, arm := range []string{"dbi", "milc", "hybrid", "cafo2"} {
			row = append(row, pct(float64(band.Mem.CodecBursts[arm])/total))
		}
		t.Rows = append(t.Rows, row)
		gmM = append(gmM, zm)
		gmC = append(gmC, zc)
		gmL = append(gmL, zl)
		gmB = append(gmB, zb)
		gmT = append(gmT, tb)
	}
	t.Rows = append(t.Rows, []string{"GEOMEAN",
		f3(geomean(gmM)), f3(geomean(gmC)), f3(geomean(gmL)),
		f3(geomean(gmB)), f3(geomean(gmT)), "", "", "", ""})
	return t, nil
}

// Extension8 races the codec zoo from the related literature - optmem
// (Chee/Colbourn optimal memoryless on the widened 9-pin bus), vlwc
// (Valentini/Chiani practical LWC at weight bound 3) and zad (zero-aware
// skip-transfer) - against the paper's own contenders (MiLC, CAFO-2, the
// full MiL framework) plus the zoo bandit that may play any of them. One
// arena, both axes: transmitted-zero cost vs DBI, and the execution-time
// price of each zoo codec's burst length and extra CAS latency.
func (r *Runner) Extension8() (*Table, error) {
	zoo := []string{"optmem", "vlwc", "zad"}
	all := append(append([]string{}, zoo...), "mil-bandit-zoo", "milc", "cafo2", "mil")
	r.prefetchSuite(sim.Server, all...)
	names, err := r.suiteSorted(sim.Server)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Extension 8",
		Title: "Codec zoo: optmem / vlwc / zad vs MiLC, CAFO-2 and MiL (DDR4)",
		Note: "Zeros are IO cost ratios vs the DBI baseline, time the zoo codecs' " +
			"execution-time ratios. optmem and zad ride the BL8 schedule (free " +
			"occupancy, data-dependent wins); vlwc pays BL12+1 CAS for its hard " +
			"weight bound. Codec hardware is lwc3-class for optmem/vlwc and " +
			"round-to-zero for zad's NOR logic (see energy.codecCostsFor).",
		Header: []string{"benchmark (by bus util)", "optmem zeros", "vlwc zeros",
			"zad zeros", "zoo-bandit zeros", "milc zeros", "cafo2 zeros", "mil zeros",
			"optmem time", "vlwc time", "zad time"},
	}
	gm := make(map[string][]float64)
	for _, n := range names {
		base, err := r.get(sim.Server, "baseline", n, 0)
		if err != nil {
			return nil, err
		}
		row := []string{n}
		var times []string
		for _, s := range all {
			res, err := r.get(sim.Server, s, n, 0)
			if err != nil {
				return nil, err
			}
			z := float64(res.Mem.CostUnits) / float64(base.Mem.CostUnits)
			row = append(row, f3(z))
			gm["z:"+s] = append(gm["z:"+s], z)
			for _, zs := range zoo {
				if s == zs {
					tr := float64(res.CPUCycles) / float64(base.CPUCycles)
					times = append(times, f3(tr))
					gm["t:"+s] = append(gm["t:"+s], tr)
				}
			}
		}
		t.Rows = append(t.Rows, append(row, times...))
	}
	last := []string{"GEOMEAN"}
	for _, s := range all {
		last = append(last, f3(geomean(gm["z:"+s])))
	}
	for _, s := range zoo {
		last = append(last, f3(geomean(gm["t:"+s])))
	}
	t.Rows = append(t.Rows, last)
	return t, nil
}

// Extension6 pins the idle-heavy regime the event-driven core is built
// for: the suite's least bus-bound benchmark under rank power-down, where
// most of the timeline is empty-queue idling between refreshes and
// power-down residency dominates. Its cells are a subset of Extension 3's
// cross product, so the runner cache makes the table nearly free; the
// value is the golden snapshot, which would catch any skip-window
// accounting drift (ticks, idle classification, power-down residency,
// refresh count) the end-to-end ratios of Extension 3 could average away.
func (r *Runner) Extension6() (*Table, error) {
	var specs []Spec
	for _, n := range r.names() {
		specs = append(specs, Spec{System: sim.Server, Scheme: "baseline", Bench: n})
	}
	r.Prefetch(specs...)
	names, err := r.suiteSorted(sim.Server)
	if err != nil {
		return nil, err
	}
	idlest := names[0] // lowest bus utilization = most skippable timeline
	t := &Table{
		ID:    "Extension 6",
		Title: fmt.Sprintf("Idle-heavy power-down cell (%s, DDR4): skip-window accounting", idlest),
		Note: "Per-cycle bookkeeping the event core must reproduce in bulk: " +
			"total DRAM ticks, the Figure 5 idle split, power-down rank-cycle " +
			"residency, wake-ups, and refreshes. Byte-drift here means a " +
			"skip-window accounting bug even when energy ratios still agree.",
		Header: []string{"scheme", "ticks", "bus util", "idle-empty",
			"PD rank-cycles", "wake-ups", "refreshes"},
	}
	for _, scheme := range []string{"baseline", "mil"} {
		res, err := r.getPD(sim.Server, scheme, idlest, 0, true)
		if err != nil {
			return nil, err
		}
		m := res.Mem
		t.Rows = append(t.Rows, []string{
			scheme,
			fmt.Sprintf("%d", m.Ticks),
			pct(res.BusUtilization()),
			pct(float64(m.IdleEmptyCycles) / float64(m.Ticks)),
			fmt.Sprintf("%d", m.PowerDownCycles),
			fmt.Sprintf("%d", m.PowerDownExits),
			fmt.Sprintf("%d", m.Refreshes),
		})
	}
	return t, nil
}
