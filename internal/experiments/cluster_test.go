package experiments

import (
	"testing"

	"mil/internal/sim"
	"mil/internal/trace"
)

// clusterSweep drives one hand-built sweep — the MiL look-ahead sweep on a
// streaming benchmark, whose cells live in distinct timing classes but
// (empirically, per the timingClass commentary) produce identical boundary
// streams — through a fresh Runner with a cluster-capable store attached.
func clusterSweep(t *testing.T, workers int, bench string, xs []int) *Runner {
	t.Helper()
	r := NewRunner(determinismOps())
	r.Workers = workers
	r.BaseSeed = 7
	r.Traces = trace.NewStore()
	specs := make([]Spec, 0, len(xs))
	for _, x := range xs {
		specs = append(specs, Spec{System: sim.Server, Scheme: "mil", Bench: bench, X: x})
	}
	r.Prefetch(specs...)
	r.Wait()
	for _, s := range specs {
		if _, err := r.cell(s); err != nil {
			t.Fatalf("%s: %v", s.label(), err)
		}
	}
	return r
}

// TestClusterAccounting pins the cluster index's bookkeeping exactly. The
// STRMATCH look-ahead sweep x ∈ {2, 6, 10} is three distinct FrontEndKeys
// (three timing classes) sharing one ClusterKey; on a streaming benchmark
// the bus slack hides the look-ahead distance, so the first cell records
// and both siblings must adopt its stream:
//
//	cluster hits = 2, misses = 1, trials = 2 (each hit's first trial
//	succeeds), one resident stream, and cell accounting 1 fresh + 2
//	replayed.
//
// The same counts must hold at -j 1 and -j 8 (adoption is serialized per
// cluster precisely so the split cannot depend on scheduling).
func TestClusterAccounting(t *testing.T) {
	for _, workers := range []int{1, 8} {
		r := clusterSweep(t, workers, "STRMATCH", []int{2, 6, 10})
		hits, trials, misses := r.ClusterStats()
		if hits != 2 || trials != 2 || misses != 1 {
			t.Fatalf("-j %d: cluster hits/trials/misses = %d/%d/%d, want 2/2/1",
				workers, hits, trials, misses)
		}
		if n := r.Traces.Streams(); n != 1 {
			t.Fatalf("-j %d: %d resident streams, want 1 (both siblings adopt the first recording)",
				workers, n)
		}
		fresh, _ := r.Stats()
		replayed, _ := r.TraceStats()
		if fresh != 1 || replayed != 2 {
			t.Fatalf("-j %d: %d fresh + %d replayed, want 1 + 2", workers, fresh, replayed)
		}
	}
}

// TestClusterDivergentCellsRecord is the other side of the fence: on GUPS
// the look-ahead distance shifts read completions (the PR-7 finding), so
// the same sweep must refuse to merge — every trial is rejected by the
// divergence fence and every cell records its own stream. This is the test
// that a too-coarse cluster key costs trials, never wrong numbers.
func TestClusterDivergentCellsRecord(t *testing.T) {
	r := clusterSweep(t, 1, "GUPS", []int{2, 6, 10})
	hits, trials, misses := r.ClusterStats()
	if hits != 0 || misses != 3 {
		t.Fatalf("cluster hits/misses = %d/%d, want 0/3 (GUPS look-aheads diverge)", hits, misses)
	}
	// Arrival order is deterministic at -j 1: the second cell trials one
	// candidate, the third trials two.
	if trials != 3 {
		t.Fatalf("cluster trials = %d, want 3", trials)
	}
	if n := r.Traces.Streams(); n != 3 {
		t.Fatalf("%d resident streams, want 3", n)
	}
}

// TestFaultCellsNeverCluster is the ROADMAP item-2 caveat as a regression
// test: with link-error injection enabled, silent corruption makes the
// *data* — not just the timing — depend on the scheme, and the divergence
// fence verifies timing only. A fault cell whose sibling's trace replays
// clean would silently carry the wrong payloads, so fault cells must never
// consult or feed the cluster index: ClusterKey is empty, no trials run,
// and every knob setting records its own stream.
func TestFaultCellsNeverCluster(t *testing.T) {
	cfg, err := NewRunner(determinismOps()).configFor(Spec{
		System: sim.Server, Scheme: "mil", Bench: "GUPS", BER: 1e-4, RAS: true})
	if err != nil {
		t.Fatal(err)
	}
	if key := cfg.ClusterKey(); key != "" {
		t.Fatalf("fault-injection config has ClusterKey %q, want \"\"", key)
	}

	r := NewRunner(determinismOps())
	r.Workers = 1
	r.BaseSeed = 7
	r.Traces = trace.NewStore()
	// Two schemes differing only in the coding knob, both under the same
	// BER: were they clustered, the second could adopt the first's trace
	// with corrupted payloads drawn for the wrong codec.
	for _, scheme := range []string{"mil", "milc"} {
		if _, err := r.cell(Spec{System: sim.Server, Scheme: scheme, Bench: "GUPS", BER: 1e-4, RAS: true}); err != nil {
			t.Fatal(err)
		}
	}
	hits, trials, misses := r.ClusterStats()
	if hits != 0 || trials != 0 || misses != 0 {
		t.Fatalf("fault cells touched the cluster index: hits/trials/misses = %d/%d/%d, want 0/0/0",
			hits, trials, misses)
	}
	if n := r.Traces.Streams(); n != 2 {
		t.Fatalf("%d resident streams for 2 fault cells, want 2 (one each, never shared)", n)
	}
}
