package experiments

import (
	"fmt"

	"mil/internal/sim"
)

// FaultSweep is the robustness extension: a BER x scheme grid on the
// server system showing how each configuration degrades on a faulty link.
// The paper's schemes assume a reliable channel; this sweep adds the DDR4
// RAS story (write CRC + CA parity, NACK-and-replay) and the graceful
// degradation ladder (mil-degrade), and reports where each scheme's energy
// win survives and where retries eat it.
func (r *Runner) FaultSweep() (*Table, error) {
	const bench = "GUPS"
	schemes := []string{"baseline", "milc", "mil", "mil-degrade"}
	bers := []float64{0, 1e-5, 2e-4, 2e-3}

	var specs []Spec
	for _, scheme := range schemes {
		for _, ber := range bers {
			specs = append(specs, Spec{System: sim.Server, Scheme: scheme, Bench: bench, BER: ber, RAS: true})
		}
	}
	r.Prefetch(specs...)

	t := &Table{
		ID:    "Extension 5",
		Title: "link-error sweep: BER x scheme on " + bench + " (server, write CRC + CA parity)",
		Note: "The degradation ladder shows up in the codec mix: at high BER " +
			"mil-degrade abandons the wide 3-LWC bursts (and eventually MiLC) for DBI, " +
			"trading coding energy for fewer NACK replays, while plain mil keeps paying " +
			"retries. Energy is relative to the same scheme at BER=0; wasted-IO is the " +
			"share of IO energy spent on bursts that ended NACKed.",
		Header: []string{"scheme", "BER", "lwc3", "milc", "dbi", "failures",
			"retries", "exhausted", "silent", "wasted-IO", "energy vs clean", "cycles vs clean"},
	}

	for _, scheme := range schemes {
		clean, err := r.getFault(sim.Server, scheme, bench, 0)
		if err != nil {
			return nil, err
		}
		for _, ber := range bers {
			res, err := r.getFault(sim.Server, scheme, bench, ber)
			if err != nil {
				return nil, err
			}
			m := res.Mem
			total := float64(m.ColumnCommands())
			mix := func(codec string) string {
				return pct(float64(m.CodecBursts[codec]) / total)
			}
			wasted := 0.0
			if res.DRAM.IO > 0 {
				wasted = res.RetryJ / res.DRAM.IO
			}
			t.Rows = append(t.Rows, []string{
				scheme, fmt.Sprintf("%.0e", ber),
				mix("lwc3"), mix("milc"), mix("dbi"),
				fmt.Sprintf("%d", m.Failures()),
				fmt.Sprintf("%d", m.Retries()),
				fmt.Sprintf("%d", m.RetriesExhausted),
				fmt.Sprintf("%d", m.SilentErrors),
				pct(wasted),
				f3(res.DRAM.Total() / clean.DRAM.Total()),
				f3(float64(res.DRAMCycles) / float64(clean.DRAMCycles)),
			})
		}
	}
	return t, nil
}
