package experiments

import (
	"fmt"

	"mil/internal/code"
	"mil/internal/energy"
	"mil/internal/sim"
	"mil/internal/workload"
)

// Figure1 reproduces the DRAM power-breakdown motivation: the share of each
// energy component for the most bus-intensive point of the suite on both
// technologies. The paper's Figure 1 (from a vendor brochure) reports the
// IO interface at 42% of DDR4 power at peak streaming; at realistic
// utilizations the share is lower but still first-order.
func (r *Runner) Figure1() (*Table, error) {
	t := &Table{
		ID:    "Figure 1",
		Title: "DRAM energy breakdown by component (baseline coding)",
		Note: "Paper: IO is 42% of DDR4 module power at peak. Here: the model's " +
			"breakdown at the suite's most bus-intensive benchmark per system.",
		Header: []string{"system", "benchmark", "background", "act/pre", "rd/wr", "refresh", "IO"},
	}
	for _, system := range []sim.SystemKind{sim.Server, sim.Mobile} {
		names, err := r.suiteSorted(system)
		if err != nil {
			return nil, err
		}
		busiest := names[len(names)-1]
		res, err := r.get(system, "baseline", busiest, 0)
		if err != nil {
			return nil, err
		}
		d := res.DRAM
		tot := d.Total()
		t.Rows = append(t.Rows, []string{
			system.String(), busiest,
			pct(d.Background / tot), pct(d.ActPre / tot), pct(d.RdWr / tot),
			pct(d.Refresh / tot), pct(d.IO / tot),
		})
	}
	return t, nil
}

// Figure2 reproduces the motivating experiment: always-on (8,17) 3-LWC
// versus the DBI baseline for CG and GUPS on the DDR4 system.
func (r *Runner) Figure2() (*Table, error) {
	t := &Table{
		ID:    "Figure 2",
		Title: "Always-on 3-LWC vs DBI on CG and GUPS (DDR4)",
		Note: "Paper: 3-LWC cuts IO energy 1.7x (CG) and 3.1x (GUPS) but inflates " +
			"execution time 14% and 42%, leaving marginal system-energy savings.",
		Header: []string{"benchmark", "exec time (vs DBI)", "IO energy (vs DBI)", "system energy (vs DBI)"},
	}
	r.Prefetch(
		Spec{System: sim.Server, Scheme: "baseline", Bench: "CG"},
		Spec{System: sim.Server, Scheme: "lwc3", Bench: "CG"},
		Spec{System: sim.Server, Scheme: "baseline", Bench: "GUPS"},
		Spec{System: sim.Server, Scheme: "lwc3", Bench: "GUPS"})
	for _, bench := range []string{"CG", "GUPS"} {
		base, err := r.get(sim.Server, "baseline", bench, 0)
		if err != nil {
			return nil, err
		}
		lwc, err := r.get(sim.Server, "lwc3", bench, 0)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			bench,
			f3(float64(lwc.CPUCycles) / float64(base.CPUCycles)),
			f3(lwc.DRAM.IO / base.DRAM.IO),
			f3(lwc.SystemJ() / base.SystemJ()),
		})
	}
	return t, nil
}

// Figure4 reproduces the idle-cycle distribution between successive data
// bus transactions (DDR4 baseline).
func (r *Runner) Figure4() (*Table, error) {
	names, err := r.suiteSorted(sim.Server)
	if err != nil {
		return nil, err
	}
	first, err := r.get(sim.Server, "baseline", names[0], 0)
	if err != nil {
		return nil, err
	}
	labels := first.Mem.GapHist.Labels()
	t := &Table{
		ID:    "Figure 4",
		Title: "Distribution of idle cycles between successive bus transactions (DDR4, DBI)",
		Note: "Paper: bursts are back-to-back in only 13% of cases overall; " +
			"long idle windows are common. Buckets are DRAM cycles.",
		Header: append([]string{"benchmark"}, labels...),
	}
	agg := make([]float64, len(labels))
	var aggTotal float64
	for _, n := range names {
		res, err := r.get(sim.Server, "baseline", n, 0)
		if err != nil {
			return nil, err
		}
		fr := res.Mem.GapHist.Fractions()
		row := []string{n}
		for i, f := range fr {
			row = append(row, pct(f))
			agg[i] += f * float64(res.Mem.GapPairs)
		}
		aggTotal += float64(res.Mem.GapPairs)
		t.Rows = append(t.Rows, row)
	}
	row := []string{"ALL"}
	for _, a := range agg {
		row = append(row, pct(a/aggTotal))
	}
	t.Rows = append(t.Rows, row)
	return t, nil
}

// Figure5 reproduces the cycle classification: no-pending vs idle-with-
// pending vs bus-busy, sorted by utilization.
func (r *Runner) Figure5() (*Table, error) {
	names, err := r.suiteSorted(sim.Server)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Figure 5",
		Title: "Cycle breakdown: idle-empty / idle-with-pending / bus busy (DDR4, DBI)",
		Note: "Paper: the memory-intensive half of the suite has pending requests " +
			"most of the time, yet the bus stays idle in over half of those cycles.",
		Header: []string{"benchmark", "idle, no pending", "idle, pending", "bus utilized"},
	}
	for _, n := range names {
		res, err := r.get(sim.Server, "baseline", n, 0)
		if err != nil {
			return nil, err
		}
		m := res.Mem
		ticks := float64(m.Ticks)
		t.Rows = append(t.Rows, []string{
			n,
			pct(float64(m.IdleEmptyCycles) / ticks),
			pct(float64(m.IdlePendingCycles) / ticks),
			pct(m.BusUtilization()),
		})
	}
	return t, nil
}

// Figure6 reproduces the slack distribution between successive bus
// transactions.
func (r *Runner) Figure6() (*Table, error) {
	names, err := r.suiteSorted(sim.Server)
	if err != nil {
		return nil, err
	}
	first, err := r.get(sim.Server, "baseline", names[0], 0)
	if err != nil {
		return nil, err
	}
	labels := first.Mem.SlackHist.Labels()
	t := &Table{
		ID:    "Figure 6",
		Title: "Distribution of slack between successive bus transactions (DDR4, DBI)",
		Note: "Slack = cycles the first transaction could be extended without " +
			"delaying the second (bus-turnaround constraints move with it). " +
			"Paper: in many but not all cases turnaround does not limit longer codes.",
		Header: append([]string{"benchmark"}, labels...),
	}
	agg := make([]float64, len(labels))
	var aggTotal float64
	for _, n := range names {
		res, err := r.get(sim.Server, "baseline", n, 0)
		if err != nil {
			return nil, err
		}
		fr := res.Mem.SlackHist.Fractions()
		row := []string{n}
		for i, f := range fr {
			row = append(row, pct(f))
			agg[i] += f * float64(res.Mem.SlackHist.Total())
		}
		aggTotal += float64(res.Mem.SlackHist.Total())
		t.Rows = append(t.Rows, row)
	}
	row := []string{"ALL"}
	for _, a := range agg {
		row = append(row, pct(a/aggTotal))
	}
	t.Rows = append(t.Rows, row)
	return t, nil
}

// Figure7 reproduces the sparse-coding potential study: optimal static
// (8,k) limited-weight codes built per benchmark from the byte-value
// distribution of its memory contents, normalized to the zeros of the
// original (uncoded) data.
func (r *Runner) Figure7() (*Table, error) {
	ks := []int{9, 11, 13, 15, 17}
	header := []string{"benchmark", "DBI"}
	for _, k := range ks {
		header = append(header, fmt.Sprintf("(8,%d)", k))
	}
	t := &Table{
		ID:    "Figure 7",
		Title: "Zeros under optimal static LWC codes, normalized to uncoded data",
		Note: "Paper: considerable headroom beyond DBI; zeros fall monotonically " +
			"as the codeword widens, at the price of bandwidth. Each code is " +
			"built from the benchmark's own byte-pattern frequencies.",
		Header: header,
	}
	var suite []*workload.Benchmark
	for _, n := range r.names() {
		b, err := workload.ByName(n)
		if err != nil {
			return nil, err
		}
		suite = append(suite, b)
	}
	sums := make([]float64, len(ks)+1)
	for _, b := range suite {
		var freq [256]uint64
		span := b.Lines()
		step := span / 4096
		if step == 0 {
			step = 1
		}
		for line := int64(0); line < span; line += step {
			blk := b.LineData(line)
			for _, by := range blk {
				freq[by]++
			}
		}
		raw := float64(code.RawZeros(&freq))
		if raw == 0 {
			raw = 1
		}
		row := []string{b.Name, f3(float64(code.DBIZeros(&freq)) / raw)}
		sums[0] += float64(code.DBIZeros(&freq)) / raw
		for i, k := range ks {
			c, err := code.NewStaticLWC(k, &freq)
			if err != nil {
				return nil, err
			}
			v := float64(c.WeightedZeros(&freq)) / raw
			row = append(row, f3(v))
			sums[i+1] += v
		}
		t.Rows = append(t.Rows, row)
	}
	avg := []string{"MEAN"}
	for _, s := range sums {
		avg = append(avg, f3(s/float64(len(suite))))
	}
	t.Rows = append(t.Rows, avg)
	return t, nil
}

// Table4 reproduces the codec synthesis results the energy model embeds.
func (r *Runner) Table4() (*Table, error) {
	t := &Table{
		ID:     "Table 4",
		Title:  "Area, power and latency of the MiL codecs (22nm DRAM process)",
		Note:   "These constants feed the codec-energy term and the +1 tCL cycle.",
		Header: []string{"block", "area (um2)", "power (mW)", "latency (ns)"},
	}
	rows := []struct {
		name string
		c    energy.CodecCost
	}{
		{"MiLC Enc", energy.Table4["milc"].Enc},
		{"MiLC Dec", energy.Table4["milc"].Dec},
		{"3-LWC Enc", energy.Table4["lwc3"].Enc},
		{"3-LWC Dec", energy.Table4["lwc3"].Dec},
	}
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{
			row.name,
			fmt.Sprintf("%.0f", row.c.AreaUM2),
			f2(row.c.PowerMW),
			f2(row.c.LatencyNS),
		})
	}
	return t, nil
}
