package experiments

import (
	"strings"
	"testing"

	"mil/internal/obs"
)

// TestMetricsSnapshotWorkerInvariant extends the sweep's determinism
// contract to the observability layer: the aggregated metrics snapshot
// must be byte-identical whether the simulations ran serially or eight
// in flight. Counters add, histogram buckets add, and gauges take
// maxima — all commutative — and the singleflight cache guarantees the
// same set of fresh runs feeds the registry either way.
func TestMetricsSnapshotWorkerInvariant(t *testing.T) {
	snapshot := func(workers int) string {
		r := NewRunner(determinismOps())
		r.Suite = []string{"MM", "GUPS"}
		r.Workers = workers
		r.Metrics = obs.NewRegistry()
		if _, err := r.All(); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := r.Metrics.WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	serial := snapshot(1)
	parallel := snapshot(8)
	if serial != parallel {
		t.Fatalf("-j 1 and -j 8 metrics snapshots differ:\n%s", firstDiff(serial, parallel))
	}
	for _, want := range []string{
		"counter,sim_runs_total,,",
		"counter,dram_rd_total,,",
		"hist,bus_idle_window_cycles,sum,",
	} {
		if !strings.Contains(serial, want) {
			t.Errorf("snapshot missing %q:\n%s", want, serial)
		}
	}
}
