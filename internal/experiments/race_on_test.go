//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in; the heavy
// sweep tests shrink their run budget under it (the detector costs ~10x).
const raceEnabled = true
