package experiments

import (
	"strings"
	"sync"

	"mil/internal/sim"
)

// Generator names one reproducible experiment.
type Generator struct {
	ID  string
	Run func(r *Runner) (*Table, error)
}

// Generators lists every experiment in the paper's presentation order.
func Generators() []Generator {
	return []Generator{
		{"Figure 1", func(r *Runner) (*Table, error) { return r.Figure1() }},
		{"Figure 2", func(r *Runner) (*Table, error) { return r.Figure2() }},
		{"Figure 4", func(r *Runner) (*Table, error) { return r.Figure4() }},
		{"Figure 5", func(r *Runner) (*Table, error) { return r.Figure5() }},
		{"Figure 6", func(r *Runner) (*Table, error) { return r.Figure6() }},
		{"Figure 7", func(r *Runner) (*Table, error) { return r.Figure7() }},
		{"Table 4", func(r *Runner) (*Table, error) { return r.Table4() }},
		{"Figure 16(a)", func(r *Runner) (*Table, error) { return r.Figure16(sim.Server) }},
		{"Figure 16(b)", func(r *Runner) (*Table, error) { return r.Figure16(sim.Mobile) }},
		{"Figure 17(a)", func(r *Runner) (*Table, error) { return r.Figure17(sim.Server) }},
		{"Figure 17(b)", func(r *Runner) (*Table, error) { return r.Figure17(sim.Mobile) }},
		{"Figure 18(a)", func(r *Runner) (*Table, error) { return r.Figure18(sim.Server) }},
		{"Figure 18(b)", func(r *Runner) (*Table, error) { return r.Figure18(sim.Mobile) }},
		{"Figure 19(a)", func(r *Runner) (*Table, error) { return r.Figure19(sim.Server) }},
		{"Figure 19(b)", func(r *Runner) (*Table, error) { return r.Figure19(sim.Mobile) }},
		{"Figure 20", func(r *Runner) (*Table, error) { return r.Figure20() }},
		{"Figure 21", func(r *Runner) (*Table, error) { return r.Figure21() }},
		{"Figure 22", func(r *Runner) (*Table, error) { return r.Figure22() }},
		{"Extension 1", func(r *Runner) (*Table, error) { return r.Extension1() }},
		{"Extension 2", func(r *Runner) (*Table, error) { return r.Extension2() }},
		{"Extension 3", func(r *Runner) (*Table, error) { return r.Extension3() }},
		{"Extension 4", func(r *Runner) (*Table, error) { return r.Extension4() }},
		{"Extension 5", func(r *Runner) (*Table, error) { return r.FaultSweep() }},
		{"Extension 6", func(r *Runner) (*Table, error) { return r.Extension6() }},
		{"Extension 7", func(r *Runner) (*Table, error) { return r.Extension7() }},
		{"Extension 8", func(r *Runner) (*Table, error) { return r.Extension8() }},
	}
}

// Tables runs every experiment whose ID contains the filter substring (""
// selects all) and returns them in presentation order. Generators execute
// concurrently - each one prefetches its cross product onto the shared
// worker pool, so the pool stays full across generator boundaries - but the
// returned slice and every table in it are byte-identical to a serial run:
// all scheduling-dependent state is confined to the cache and the progress
// stream.
func (r *Runner) Tables(filter string) ([]*Table, error) {
	var selected []Generator
	for _, g := range Generators() {
		if filter == "" || strings.Contains(g.ID, filter) {
			selected = append(selected, g)
		}
	}

	tables := make([]*Table, len(selected))
	errs := make([]error, len(selected))
	var wg sync.WaitGroup
	for i, g := range selected {
		i, g := i, g
		wg.Add(1)
		go func() {
			defer wg.Done()
			tables[i], errs[i] = g.Run(r)
		}()
	}
	wg.Wait()
	r.Wait() // drain prefetches a failed generator abandoned
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return tables, nil
}

// All regenerates every table and figure.
func (r *Runner) All() ([]*Table, error) { return r.Tables("") }
