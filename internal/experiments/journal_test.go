package experiments

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mil/internal/sim"
)

// TestJournalResume is the crash-safety differential: a sweep killed
// mid-flight (journal cut to a prefix plus a torn record) and rerun with
// the same journal must replay the intact cells, re-simulate only the
// remainder, and render every table byte-identical to the uninterrupted
// sweep — which TestGolden separately pins to the committed snapshots.
func TestJournalResume(t *testing.T) {
	if raceEnabled {
		t.Skip("journal replay is scheduling-independent; the engine is raced by TestSweepDeterminism")
	}
	journal := filepath.Join(t.TempDir(), "sweep.journal")

	r1 := goldenRunner()
	if _, err := r1.OpenJournal(journal); err != nil {
		t.Fatal(err)
	}
	tables1, err := r1.All()
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	fresh1, _ := r1.Stats()
	if fresh1 == 0 {
		t.Fatal("uninterrupted sweep simulated nothing")
	}

	// "Kill" the sweep: keep half the journal and tear the next record in
	// two, as a crash mid-append would.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("journal has only %d records; cannot split", len(lines))
	}
	keep := len(lines) / 2
	cut := append([]byte(nil), bytes.Join(lines[:keep], nil)...)
	cut = append(cut, lines[keep][:len(lines[keep])/2]...) // torn record
	if err := os.WriteFile(journal, cut, 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := goldenRunner()
	replayed, err := r2.OpenJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != keep {
		t.Fatalf("replayed %d cells from %d intact records (the torn record must not count)", replayed, keep)
	}
	tables2, err := r2.All()
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	fresh2, _ := r2.Stats()
	if want := fresh1 - int64(keep); fresh2 != want {
		t.Errorf("resumed sweep ran %d fresh cells, want %d (journaled cells must be skipped)", fresh2, want)
	}
	requireSameTables(t, tables1, tables2, "resumed")

	// The resumed sweep re-journaled what it re-ran, so a third pass finds
	// every cell on disk and simulates nothing.
	r3 := goldenRunner()
	if _, err := r3.OpenJournal(journal); err != nil {
		t.Fatal(err)
	}
	tables3, err := r3.All()
	if err != nil {
		t.Fatal(err)
	}
	if err := r3.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	if fresh3, _ := r3.Stats(); fresh3 != 0 {
		t.Errorf("fully-journaled sweep still ran %d simulations", fresh3)
	}
	requireSameTables(t, tables1, tables3, "fully replayed")
}

// requireSameTables asserts two renderings of the sweep are identical.
func requireSameTables(t *testing.T, want, got []*Table, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s sweep rendered %d tables, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i].String(), got[i].String()
		if w != g {
			t.Errorf("%s sweep drifted on %s:\n%s", label, want[i].ID, firstDiff(w, g))
		}
	}
}

// TestJournalIgnoresForeignRecords pins the key contract: records from a
// journal written under a different configuration load into the cache
// under their own keys, which no cell of this sweep ever asks for — so
// every cell still simulates fresh rather than reusing a wrong result.
func TestJournalIgnoresForeignRecords(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.journal")
	r1 := NewRunner(90)
	r1.Suite = []string{"MM"}
	r1.Workers = 4
	if _, err := r1.OpenJournal(journal); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.get(sim.Server, "baseline", "MM", 0); err != nil {
		t.Fatal(err)
	}
	if err := r1.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	r2 := NewRunner(91) // different ops budget => different keys
	r2.Suite = []string{"MM"}
	r2.Workers = 4
	if _, err := r2.OpenJournal(journal); err != nil {
		t.Fatal(err)
	}
	defer r2.CloseJournal()
	if _, err := r2.get(sim.Server, "baseline", "MM", 0); err != nil {
		t.Fatal(err)
	}
	if fresh, _ := r2.Stats(); fresh != 1 {
		t.Errorf("foreign journal suppressed a fresh run: %d fresh cells, want 1", fresh)
	}
}

// TestCellTimeout pins the wedged-cell behavior: an absurdly small
// budget exhausts the capped-backoff retries and surfaces
// sim.ErrDeadline instead of hanging the sweep. The run must be long
// enough to reach the deadline gate's 4096-landed-cycle polling stride.
func TestCellTimeout(t *testing.T) {
	r := NewRunner(1500)
	r.CellTimeout = time.Nanosecond
	_, err := r.get(sim.Server, "baseline", "GUPS", 0)
	if !errors.Is(err, sim.ErrDeadline) {
		t.Fatalf("1ns cell budget: want sim.ErrDeadline, got %v", err)
	}
}
