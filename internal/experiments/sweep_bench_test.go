package experiments

import "testing"

// BenchmarkSweep measures the figure sweep end to end on the reduced golden
// suite, serial vs parallel, from a cold cache each iteration. The ratio of
// the two is the engine's speedup; cmd/milbench records it (with codec
// micro-benchmarks) into BENCH_sweep.json for trajectory tracking. On a
// multi-core host the parallel variant should approach min(workers, cores)x.
func benchmarkSweep(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewRunner(goldenOps)
		r.Suite = goldenSuite()
		r.Workers = workers
		tables, err := r.All()
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) != len(Generators()) {
			b.Fatalf("%d tables", len(tables))
		}
	}
}

func BenchmarkSweepSerial(b *testing.B)   { benchmarkSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchmarkSweep(b, 0) } // GOMAXPROCS
