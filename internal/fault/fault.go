// Package fault injects transmission errors into bus bursts so the rest of
// the stack - DDR4 write-CRC retry in the controller, decode-failure
// detection in the codecs, and the MiL degradation ladder in the policy -
// can be exercised and measured. The injector is deterministic: the same
// Config (including Seed) applied to the same sequence of bursts produces
// the same corruption, bit for bit, so fault experiments are reproducible.
//
// Three error processes are modeled, composable in one Config:
//
//   - random: every driven bit-time flips independently with probability
//     BER (the additive-noise floor of a DDR4 link);
//   - burst: with probability BurstRate per transfer, one pin takes a run
//     of BurstLen consecutive flipped beats (supply droop, crosstalk);
//   - stuck: the pins in StuckPins are driven to StuckVal for the whole
//     transfer (a failed driver or a solder defect), every transfer.
//
// A disabled (zero-value) Config is a guaranteed no-op: Corrupt touches
// nothing and the simulator's results are bit-identical to a build without
// the fault layer.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"mil/internal/bitblock"
	"mil/internal/snap"
)

// Config parameterizes one injector. The zero value disables injection.
type Config struct {
	// BER is the independent flip probability per driven bit-time, in
	// [0, 1). Typical DDR4 links run below 1e-12; interesting simulator
	// territory is 1e-6..1e-3.
	BER float64
	// BurstRate is the per-transfer probability of one correlated error
	// event, in [0, 1).
	BurstRate float64
	// BurstLen is the length in beats of a correlated error run (>= 1
	// when BurstRate > 0; 0 selects the default of 4).
	BurstLen int
	// StuckPins lists bus pins stuck at StuckVal (empty = none).
	StuckPins []int
	// StuckVal is the level stuck pins are read at.
	StuckVal bool
	// Seed selects the deterministic corruption stream. Two injectors
	// with equal configs corrupt identically.
	Seed uint64
}

// Enabled reports whether the config injects any errors at all.
func (c *Config) Enabled() bool {
	return c.BER > 0 || c.BurstRate > 0 || len(c.StuckPins) > 0
}

// Validate reports configuration errors with enough context to fix them.
func (c *Config) Validate() error {
	switch {
	case c.BER < 0 || c.BER >= 1 || math.IsNaN(c.BER):
		return fmt.Errorf("fault: BER %v outside [0, 1)", c.BER)
	case c.BurstRate < 0 || c.BurstRate >= 1 || math.IsNaN(c.BurstRate):
		return fmt.Errorf("fault: burst rate %v outside [0, 1)", c.BurstRate)
	case c.BurstRate > 0 && c.BurstLen < 0:
		return fmt.Errorf("fault: burst length %d < 0", c.BurstLen)
	}
	for _, p := range c.StuckPins {
		if p < 0 || p >= 128 {
			return fmt.Errorf("fault: stuck pin %d outside [0, 128)", p)
		}
	}
	return nil
}

// burstLen returns the correlated-run length with the default applied.
func (c *Config) burstLen() int {
	if c.BurstLen <= 0 {
		return 4
	}
	return c.BurstLen
}

// WithSeed returns a copy of the config re-seeded for a sub-stream (one
// injector per channel, each with its own deterministic stream).
func (c Config) WithSeed(seed uint64) Config {
	c.Seed = seed
	return c
}

// Injector corrupts bursts according to one Config. It is stateful (one
// PRNG stream) and, like the rest of the simulator, not safe for
// concurrent use. A nil *Injector is valid and injects nothing.
type Injector struct {
	cfg Config
	src *snap.CountingSource
	rng *rand.Rand

	flips       int64
	burstEvents int64
	transfers   int64
}

// New validates cfg and returns an injector, or nil when cfg is disabled
// (so callers can gate on inj.Enabled() without a config lookup).
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	// The counting source makes the corruption stream snapshottable (draw
	// count = state) without changing a single drawn value.
	src := snap.NewCountingSource(mixSeed(cfg.Seed))
	return &Injector{cfg: cfg, src: src, rng: rand.New(src)}, nil
}

// Snapshot serializes the injector's PRNG position and counters. Safe on
// nil only at the call-site level: callers gate on presence, matching the
// Bool they wrote.
func (inj *Injector) Snapshot(w *snap.Writer) {
	w.U64(inj.src.Draws())
	w.I64(inj.flips)
	w.I64(inj.burstEvents)
	w.I64(inj.transfers)
}

// Restore implements snap.Snapshotter, replaying the PRNG to its
// snapshotted draw count.
func (inj *Injector) Restore(r *snap.Reader) error {
	draws := r.U64()
	inj.flips = r.I64()
	inj.burstEvents = r.I64()
	inj.transfers = r.I64()
	inj.src.Seed(mixSeed(inj.cfg.Seed))
	inj.src.Skip(draws)
	return r.Err()
}

// MustNew is New for configs already validated.
func MustNew(cfg Config) *Injector {
	inj, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return inj
}

// mixSeed spreads a user seed over the PRNG state space (seed 0 must not
// collapse onto rand's default stream in a recognizable way).
func mixSeed(s uint64) int64 {
	z := s + 0x9e3779b97f4a7c15
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return int64(z ^ z>>31)
}

// Enabled reports whether this injector injects anything. Safe on nil.
func (inj *Injector) Enabled() bool { return inj != nil && inj.cfg.Enabled() }

// Flips returns the total bit flips injected so far. Safe on nil.
func (inj *Injector) Flips() int64 {
	if inj == nil {
		return 0
	}
	return inj.flips
}

// Corrupt applies all configured error processes to one burst in place and
// returns the number of bit-times whose value changed. Only driven pins
// are affected: a parked pin carries no data to corrupt. Safe on nil (a
// no-op returning 0).
func (inj *Injector) Corrupt(bu *bitblock.Burst) int {
	if !inj.Enabled() {
		return 0
	}
	inj.transfers++
	changed := 0

	// Random bit errors: geometric skip-sampling over the beat-major bit
	// grid, so the cost scales with the number of errors, not bus size.
	if p := inj.cfg.BER; p > 0 {
		total := bu.Beats * bu.Width
		for i := inj.geometric(p); i < total; i += 1 + inj.geometric(p) {
			beat, pin := i/bu.Width, i%bu.Width
			if !bu.Driven(pin) {
				continue
			}
			bu.SetBit(beat, pin, !bu.Bit(beat, pin))
			changed++
		}
	}

	// Correlated burst: a run of flipped beats on one driven pin.
	if inj.cfg.BurstRate > 0 && inj.rng.Float64() < inj.cfg.BurstRate {
		if pin, ok := inj.pickDriven(bu); ok {
			inj.burstEvents++
			n := inj.cfg.burstLen()
			start := 0
			if bu.Beats > n {
				start = inj.rng.Intn(bu.Beats - n + 1)
			}
			for b := start; b < start+n && b < bu.Beats; b++ {
				bu.SetBit(b, pin, !bu.Bit(b, pin))
				changed++
			}
		}
	}

	// Stuck lanes: force the level on every beat of each stuck driven pin.
	for _, pin := range inj.cfg.StuckPins {
		if pin >= bu.Width || !bu.Driven(pin) {
			continue
		}
		for b := 0; b < bu.Beats; b++ {
			if bu.Bit(b, pin) != inj.cfg.StuckVal {
				bu.SetBit(b, pin, inj.cfg.StuckVal)
				changed++
			}
		}
	}

	inj.flips += int64(changed)
	return changed
}

// geometric samples the number of Bernoulli(p) failures before the next
// success (the gap to the next flipped bit).
func (inj *Injector) geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	u := inj.rng.Float64()
	for u == 0 {
		u = inj.rng.Float64()
	}
	g := math.Log(u) / math.Log1p(-p)
	if g > 1<<30 {
		return 1 << 30
	}
	return int(g)
}

// pickDriven selects a uniformly random driven pin.
func (inj *Injector) pickDriven(bu *bitblock.Burst) (int, bool) {
	n := bu.DrivenPins()
	if n == 0 {
		return 0, false
	}
	k := inj.rng.Intn(n)
	for p := 0; p < bu.Width; p++ {
		if bu.Driven(p) {
			if k == 0 {
				return p, true
			}
			k--
		}
	}
	return 0, false
}

// CommandError rolls whether a command transfer of nbits command/address
// bits arrives corrupted (used for DDR4 CA parity): probability
// 1-(1-BER)^nbits. Correlated and stuck processes model the data bus, not
// the CA bus, so only BER contributes. Safe on nil.
func (inj *Injector) CommandError(nbits int) bool {
	if !inj.Enabled() || inj.cfg.BER <= 0 || nbits <= 0 {
		return false
	}
	p := -math.Expm1(float64(nbits) * math.Log1p(-inj.cfg.BER))
	return inj.rng.Float64() < p
}
