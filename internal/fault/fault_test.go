package fault

import (
	"math/rand"
	"testing"

	"mil/internal/bitblock"
)

// randomBurst builds a fully driven 72x10 burst with random contents.
func randomBurst(rng *rand.Rand) *bitblock.Burst {
	bu := bitblock.NewBurst(72, 10)
	for p := 0; p < bu.Width; p++ {
		bu.SetDriven(p, true)
	}
	for b := 0; b < bu.Beats; b++ {
		for p := 0; p < bu.Width; p++ {
			bu.SetBit(b, p, rng.Intn(2) == 1)
		}
	}
	return bu
}

func cloneBurst(bu *bitblock.Burst) *bitblock.Burst {
	out := bitblock.NewBurst(bu.Width, bu.Beats)
	for p := 0; p < bu.Width; p++ {
		out.SetDriven(p, bu.Driven(p))
	}
	for b := 0; b < bu.Beats; b++ {
		for p := 0; p < bu.Width; p++ {
			out.SetBit(b, p, bu.Bit(b, p))
		}
	}
	return out
}

func diffBits(a, b *bitblock.Burst) int {
	n := 0
	for beat := 0; beat < a.Beats; beat++ {
		for p := 0; p < a.Width; p++ {
			if a.Bit(beat, p) != b.Bit(beat, p) {
				n++
			}
		}
	}
	return n
}

func TestDisabledInjectorIsNoOp(t *testing.T) {
	inj, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if inj != nil {
		t.Fatalf("disabled config built an injector: %+v", inj)
	}
	// The nil injector must be safe and inert.
	if inj.Enabled() || inj.Flips() != 0 || inj.CommandError(26) {
		t.Fatal("nil injector not inert")
	}
	rng := rand.New(rand.NewSource(1))
	bu := randomBurst(rng)
	ref := cloneBurst(bu)
	if n := inj.Corrupt(bu); n != 0 {
		t.Fatalf("nil injector flipped %d bits", n)
	}
	if diffBits(bu, ref) != 0 {
		t.Fatal("nil injector mutated the burst")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{BER: 1e-2, BurstRate: 0.1, BurstLen: 3, Seed: 99}
	run := func() []int {
		inj := MustNew(cfg)
		rng := rand.New(rand.NewSource(7))
		var flips []int
		for i := 0; i < 200; i++ {
			flips = append(flips, inj.Corrupt(randomBurst(rng)))
		}
		return flips
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transfer %d: %d flips vs %d", i, a[i], b[i])
		}
	}
	// A different seed must give a different corruption stream.
	inj := MustNew(cfg.WithSeed(100))
	rng := rand.New(rand.NewSource(7))
	same := true
	for i := 0; i < 200; i++ {
		if inj.Corrupt(randomBurst(rng)) != a[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 99 and 100 produced identical corruption")
	}
}

func TestBERFlipCount(t *testing.T) {
	const p = 1e-2
	inj := MustNew(Config{BER: p, Seed: 5})
	rng := rand.New(rand.NewSource(3))
	transfers, bits := 5000, 72*10
	for i := 0; i < transfers; i++ {
		inj.Corrupt(randomBurst(rng))
	}
	want := p * float64(transfers*bits)
	got := float64(inj.Flips())
	if got < want*0.9 || got > want*1.1 {
		t.Fatalf("BER %g over %d bits: %v flips, want ~%v", p, transfers*bits, got, want)
	}
}

func TestUndrivenPinsUntouched(t *testing.T) {
	inj := MustNew(Config{BER: 0.5, StuckPins: []int{3}, StuckVal: true, Seed: 1})
	bu := bitblock.NewBurst(72, 8)
	for p := 0; p < 72; p++ {
		bu.SetDriven(p, p == 3) // only pin 3 carries data
	}
	inj.Corrupt(bu)
	for beat := 0; beat < bu.Beats; beat++ {
		if !bu.Bit(beat, 3) {
			t.Fatalf("stuck-high pin 3 reads low at beat %d", beat)
		}
	}
	// All-parked burst: nothing to corrupt.
	parked := bitblock.NewBurst(72, 8)
	for p := 0; p < 72; p++ {
		parked.SetDriven(p, false)
	}
	if n := inj.Corrupt(parked); n != 0 {
		t.Fatalf("corrupted %d bits of a fully parked burst", n)
	}
}

func TestStuckLane(t *testing.T) {
	inj := MustNew(Config{StuckPins: []int{10}, StuckVal: false, Seed: 2})
	rng := rand.New(rand.NewSource(9))
	bu := randomBurst(rng)
	inj.Corrupt(bu)
	for beat := 0; beat < bu.Beats; beat++ {
		if bu.Bit(beat, 10) {
			t.Fatalf("stuck-low pin 10 reads high at beat %d", beat)
		}
	}
}

func TestBurstErrors(t *testing.T) {
	inj := MustNew(Config{BurstRate: 0.999, BurstLen: 4, Seed: 3})
	rng := rand.New(rand.NewSource(11))
	var bu, ref *bitblock.Burst
	n := 0
	for i := 0; i < 100 && n == 0; i++ { // rate < 1, so loop to the first event
		bu = randomBurst(rng)
		ref = cloneBurst(bu)
		n = inj.Corrupt(bu)
	}
	if n != 4 {
		t.Fatalf("burst event flipped %d bits, want 4", n)
	}
	// All flips must land on one pin, in consecutive beats.
	pin, first, last := -1, -1, -1
	for beat := 0; beat < bu.Beats; beat++ {
		for p := 0; p < bu.Width; p++ {
			if bu.Bit(beat, p) != ref.Bit(beat, p) {
				if pin < 0 {
					pin, first = p, beat
				} else if p != pin {
					t.Fatalf("burst error spread over pins %d and %d", pin, p)
				}
				last = beat
			}
		}
	}
	if last-first != 3 {
		t.Fatalf("burst error run spans beats %d..%d, want 4 consecutive", first, last)
	}
}

func TestCommandErrorRate(t *testing.T) {
	inj := MustNew(Config{BER: 1e-3, Seed: 4})
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if inj.CommandError(26) {
			hits++
		}
	}
	// p = 1-(1-1e-3)^26 ~ 0.0257
	want := 0.0257 * float64(n)
	if float64(hits) < want*0.8 || float64(hits) > want*1.2 {
		t.Fatalf("CA error rate: %d hits of %d, want ~%v", hits, n, want)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{BER: -0.1},
		{BER: 1},
		{BurstRate: 1.5},
		{StuckPins: []int{-1}},
		{StuckPins: []int{128}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New accepted config %d (%+v)", i, cfg)
		}
	}
	good := Config{BER: 1e-6, BurstRate: 0.01, StuckPins: []int{0, 71}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
