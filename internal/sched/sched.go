// Package sched holds the scheduling contract of the event-driven
// simulation core: the Never sentinel, the per-domain NextWake convention,
// the CPU<->DRAM clock-domain crossing math, and the monotone event clock
// that advances the simulation from one wake to the next.
//
// The contract every domain implements:
//
//   - NextWake returns a LOWER BOUND on the earliest future cycle (in the
//     domain's own clock) at which the domain's state can change without
//     external input, or Never when no self-driven change is scheduled.
//     Waking a domain early is harmless (its Tick is a no-op and it simply
//     reports a new bound); waking it late is a correctness bug, because
//     the skipped cycles would no longer be no-ops.
//   - SkipUntil/SkipTo performs the bulk accounting N consecutive no-op
//     Ticks would have performed (cycle counters, occupancy integrals,
//     stall cycles), without re-walking the skipped window.
//
// Under this contract the event loop "advance to min(next wakes), fire,
// repeat" is decision-identical to ticking every cycle: every cycle the
// per-cycle loop would have acted on is a wake, and every skipped cycle is
// provably a no-op.
package sched

import "mil/internal/snap"

// Never is the NextWake value of a domain with no self-scheduled future
// event. It is far beyond any reachable cycle count but small enough that
// clock-domain conversion (a multiply by the crossing ratio) cannot
// overflow int64.
const Never int64 = 1 << 60

// Clock converts cycles between the CPU domain and the DRAM domain. The
// evaluated systems run the CPU at an integer multiple of the DRAM clock
// (2x on both platforms: 3.2/1.6 GHz and 1.6/0.8 GHz), so the crossing
// math is exact integer arithmetic, not rounding.
type Clock struct {
	// CPUPerDRAM is the frequency ratio; CPU cycle t maps to DRAM cycle
	// t/CPUPerDRAM, and the DRAM domain ticks on CPU cycles where
	// t%CPUPerDRAM == 0.
	CPUPerDRAM int64
}

// DRAMCycle returns the DRAM cycle CPU cycle t falls in (floor division;
// t need not be a DRAM edge).
func (c Clock) DRAMCycle(t int64) int64 { return t / c.CPUPerDRAM }

// IsDRAMEdge reports whether CPU cycle t is a DRAM clock edge.
func (c Clock) IsDRAMEdge(t int64) bool { return t%c.CPUPerDRAM == 0 }

// CPUCycle returns the CPU cycle of DRAM edge d, saturating at Never so a
// Never-valued DRAM wake stays Never in the CPU domain.
func (c Clock) CPUCycle(d int64) int64 {
	if d >= Never/c.CPUPerDRAM {
		return Never
	}
	return d * c.CPUPerDRAM
}

// EventClock is the monotone clock of the event loop. Advance moves it to
// the earliest pending wake and records how much of the timeline was
// skipped rather than ticked.
type EventClock struct {
	now int64 // last fired cycle (-1 before the first event)

	// Events counts fired wakes (landed cycles actually simulated);
	// Skipped counts the cycles jumped over between them. Events+Skipped
	// equals the span of simulated time.
	Events  int64
	Skipped int64
}

// NewEventClock returns a clock positioned before cycle 0, so the first
// Advance(0) fires cycle 0 with nothing skipped.
func NewEventClock() *EventClock { return &EventClock{now: -1} }

// Now returns the last fired cycle (-1 before the first event).
func (e *EventClock) Now() int64 { return e.now }

// Advance fires the next event at cycle wake, which must be beyond the
// current cycle: the event timeline is monotone, a wake in the past means
// a domain under-reported its bound and the skipped window was not the
// no-op the contract promises.
func (e *EventClock) Advance(wake int64) {
	if wake <= e.now {
		panic("sched: event clock moved backwards")
	}
	e.Skipped += wake - e.now - 1
	e.Events++
	e.now = wake
}

// Snapshot implements snap.Snapshotter: the clock position and both
// counters (the counters carry across a resume so a resumed run's
// LoopStats equal an uninterrupted run's).
func (e *EventClock) Snapshot(w *snap.Writer) {
	w.I64(e.now)
	w.I64(e.Events)
	w.I64(e.Skipped)
}

// Restore implements snap.Snapshotter.
func (e *EventClock) Restore(r *snap.Reader) error {
	e.now = r.I64()
	e.Events = r.I64()
	e.Skipped = r.I64()
	return r.Err()
}

// MinWake folds wake bounds, treating Never as the identity.
func MinWake(wakes ...int64) int64 {
	m := Never
	for _, w := range wakes {
		m = min(m, w)
	}
	return m
}
