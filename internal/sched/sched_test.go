package sched

import "testing"

func TestClockCrossing(t *testing.T) {
	c := Clock{CPUPerDRAM: 2}
	if c.DRAMCycle(0) != 0 || c.DRAMCycle(1) != 0 || c.DRAMCycle(7) != 3 {
		t.Fatal("floor division broken")
	}
	if !c.IsDRAMEdge(0) || c.IsDRAMEdge(1) || !c.IsDRAMEdge(4) {
		t.Fatal("edge detection broken")
	}
	if c.CPUCycle(3) != 6 {
		t.Fatal("DRAM->CPU conversion broken")
	}
	if c.CPUCycle(Never) != Never || c.CPUCycle(Never/2) != Never {
		t.Fatal("Never must saturate across the crossing")
	}
	// Round trip: a DRAM wake converted to CPU cycles lands on an edge
	// mapping back to the same DRAM cycle.
	for d := int64(0); d < 100; d++ {
		if got := c.DRAMCycle(c.CPUCycle(d)); got != d {
			t.Fatalf("round trip %d -> %d", d, got)
		}
	}
}

func TestEventClockAccounting(t *testing.T) {
	e := NewEventClock()
	if e.Now() != -1 {
		t.Fatal("fresh clock not before cycle 0")
	}
	e.Advance(0) // fire cycle 0: nothing skipped
	e.Advance(1) // adjacent cycle: nothing skipped
	e.Advance(10)
	if e.Events != 3 || e.Skipped != 8 {
		t.Fatalf("events=%d skipped=%d, want 3/8", e.Events, e.Skipped)
	}
	if e.Now() != 10 {
		t.Fatalf("now=%d", e.Now())
	}
	// Events + Skipped must tile the simulated span exactly.
	if e.Events+e.Skipped != e.Now()+1 {
		t.Fatal("events+skipped does not tile the timeline")
	}
}

func TestEventClockMonotone(t *testing.T) {
	e := NewEventClock()
	e.Advance(5)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards advance did not panic")
		}
	}()
	e.Advance(5)
}

func TestMinWake(t *testing.T) {
	if MinWake() != Never {
		t.Fatal("empty fold must be Never")
	}
	if MinWake(Never, 7, 3, Never) != 3 {
		t.Fatal("min fold broken")
	}
}
