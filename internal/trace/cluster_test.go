package trace

import (
	"fmt"
	"sync"
	"testing"
)

// mkStream builds a distinct published-trace stand-in with nEvents events
// (its cost scales with nEvents, which the LRU tests lean on).
func mkStream(nEvents int) *Trace {
	return &Trace{DRAMCycles: int64(nEvents) + 2, Events: make([]Event, nEvents)}
}

// publishUnder makes the store hold tr under an exact key.
func publishUnder(t *testing.T, s *Store, key string, tr *Trace) {
	t.Helper()
	got, leader, publish, _ := s.Acquire(key)
	if got != nil || !leader {
		t.Fatalf("Acquire(%q) = (%v, leader=%v), want fresh leadership", key, got, leader)
	}
	publish(tr)
}

func TestClusterCandidatesOrderAndIsolation(t *testing.T) {
	s := NewStore()
	a, b := mkStream(4), mkStream(8)
	publishUnder(t, s, "k-a", a)
	publishUnder(t, s, "k-b", b)
	s.AddCandidate("cluster-1", a)
	s.AddCandidate("cluster-1", b)
	s.AddCandidate("cluster-1", a) // idempotent: already filed
	s.AddCandidate("", a)          // unclusterable: no-op

	cands := s.Candidates("cluster-1")
	if len(cands) != 2 || cands[0] != a || cands[1] != b {
		t.Fatalf("Candidates = %v, want [a b] in publication order", cands)
	}
	if got := s.Candidates("cluster-2"); got != nil {
		t.Fatalf("unknown cluster returned %v, want nil", got)
	}
	if got := s.Candidates(""); got != nil {
		t.Fatalf("empty cluster key returned %v, want nil", got)
	}
	// The snapshot is a copy: mutating it must not corrupt the index.
	cands[0] = nil
	if again := s.Candidates("cluster-1"); again[0] != a {
		t.Fatal("Candidates returned the live slice, not a copy")
	}
}

// TestStreamsCountsSharedAdoptions pins the number the cluster store exists
// to shrink: publishing one trace under many exact keys (adoption) is one
// stream, not one per key.
func TestStreamsCountsSharedAdoptions(t *testing.T) {
	s := NewStore()
	tr := mkStream(4)
	for i := 0; i < 5; i++ {
		publishUnder(t, s, fmt.Sprintf("class-%d", i), tr)
	}
	if n := s.Streams(); n != 1 {
		t.Fatalf("Streams() = %d after adopting one trace under 5 keys, want 1", n)
	}
	if n := s.Len(); n != 5 {
		t.Fatalf("Len() = %d, want 5 exact entries", n)
	}
}

func TestStoreEvictionLRU(t *testing.T) {
	s := NewStore()
	cost := traceCost(mkStream(10))
	s.SetLimit(3 * cost) // room for three 10-event streams

	traces := make([]*Trace, 4)
	for i := range traces {
		traces[i] = mkStream(10)
		publishUnder(t, s, fmt.Sprintf("k%d", i), traces[i])
		s.AddCandidate("c", traces[i])
	}
	// Publishing the 4th exceeded the limit: the least-recently-used
	// stream (the 1st) must be gone from both indexes.
	if n := s.Streams(); n != 3 {
		t.Fatalf("Streams() = %d after eviction, want 3", n)
	}
	if n := s.Evictions(); n != 1 {
		t.Fatalf("Evictions() = %d, want 1", n)
	}
	if got, leader, _, abort := s.Acquire("k0"); got != nil || !leader {
		t.Fatalf("evicted key k0 still resident (tr=%v leader=%v)", got, leader)
	} else {
		abort()
	}
	cands := s.Candidates("c")
	if len(cands) != 3 || cands[0] != traces[1] {
		t.Fatalf("cluster candidates after eviction = %d entries starting %p, want 3 starting with the 2nd stream", len(cands), cands[0])
	}

	// Touch the now-oldest stream, then push one more: eviction must skip
	// the touched stream and drop the next-oldest instead.
	s.Touch(traces[1])
	extra := mkStream(10)
	publishUnder(t, s, "k4", extra)
	if got, _, _, abort := s.Acquire("k2"); got != nil {
		t.Fatal("k2 survived eviction but was the least recently used")
	} else {
		abort()
		_ = got
	}
	if got, _, _, _ := s.Acquire("k1"); got != traces[1] {
		t.Fatal("touched stream was evicted ahead of older ones")
	}
}

// TestStoreEvictionSparesNewest: one stream bigger than the whole limit
// must still be admitted (and be the only resident), not thrash the cache
// empty.
func TestStoreEvictionSparesNewest(t *testing.T) {
	s := NewStore()
	s.SetLimit(1) // smaller than any stream
	a, b := mkStream(100), mkStream(100)
	publishUnder(t, s, "a", a)
	publishUnder(t, s, "b", b)
	if n := s.Streams(); n != 1 {
		t.Fatalf("Streams() = %d under a tiny limit, want exactly the newest", n)
	}
	if got, _, _, _ := s.Acquire("b"); got != b {
		t.Fatal("newest stream was evicted")
	}
}

// TestLockClusterSerializes checks the determinism gate: two goroutines
// contending for one cluster never overlap, and the empty key does not
// serialize at all.
func TestLockClusterSerializes(t *testing.T) {
	s := NewStore()
	var mu sync.Mutex
	inside := 0
	maxInside := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			unlock := s.LockCluster("c")
			defer unlock()
			mu.Lock()
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			mu.Unlock()
			mu.Lock()
			inside--
			mu.Unlock()
		}()
	}
	wg.Wait()
	if maxInside != 1 {
		t.Fatalf("%d leaders inside one cluster's critical section, want 1", maxInside)
	}
	unlockA := s.LockCluster("")
	unlockB := s.LockCluster("") // would deadlock if "" shared a real lock
	unlockA()
	unlockB()
}
