package trace

import "sync"

// Store is an in-memory singleflight trace cache, keyed by the front-end
// key (sim.Config.FrontEndKey). The sweep engine uses it as a second-level
// cache under the per-configuration result cache: the first cell of a
// trace-group records the front-end once, sibling cells replay it.
//
// Acquire's contract mirrors singleflight: exactly one caller per key
// becomes the leader and MUST settle the entry by calling publish (with
// the recorded trace) or abort (recording failed or was skipped) exactly
// once; everyone else blocks until the leader settles. An aborted entry is
// removed, so a later Acquire for the key elects a fresh leader — callers
// blocked across an abort get a nil trace and fall back to plain
// simulation.
//
// A Store is safe for concurrent use and never blocks a leader: waiters
// hold no Store lock while they wait.
type Store struct {
	mu      sync.Mutex
	entries map[string]*storeEntry
}

type storeEntry struct {
	done chan struct{}
	tr   *Trace // nil until published; stays nil on abort
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{entries: make(map[string]*storeEntry)}
}

// Acquire looks up the trace for key.
//
//	tr != nil                 → a recorded trace is ready; replay it.
//	tr == nil, leader == true → the caller leads: record the front-end,
//	                            then call publish(trace) or abort().
//	tr == nil, leader == false→ the previous leader aborted while the
//	                            caller waited; run a plain simulation.
func (s *Store) Acquire(key string) (tr *Trace, leader bool, publish func(*Trace), abort func()) {
	s.mu.Lock()
	e := s.entries[key]
	if e == nil {
		e = &storeEntry{done: make(chan struct{})}
		s.entries[key] = e
		s.mu.Unlock()
		publish = func(t *Trace) {
			e.tr = t
			close(e.done)
		}
		abort = func() {
			s.mu.Lock()
			// Only clear our own entry: a later leader may have replaced it
			// already if publish/abort discipline was violated upstream.
			if s.entries[key] == e {
				delete(s.entries, key)
			}
			s.mu.Unlock()
			close(e.done)
		}
		return nil, true, publish, abort
	}
	s.mu.Unlock()
	<-e.done
	return e.tr, false, nil, nil
}

// Len reports the number of settled or in-flight entries (tests only).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
