package trace

import (
	"container/list"
	"sync"
	"unsafe"
)

// Store is an in-memory singleflight trace cache, keyed by the front-end
// key (sim.Config.FrontEndKey). The sweep engine uses it as a second-level
// cache under the per-configuration result cache: the first cell of a
// trace-group records the front-end once, sibling cells replay it.
//
// Acquire's contract mirrors singleflight: exactly one caller per key
// becomes the leader and MUST settle the entry by calling publish (with
// the recorded trace) or abort (recording failed or was skipped) exactly
// once; everyone else blocks until the leader settles. An aborted entry is
// removed, so a later Acquire for the key elects a fresh leader — callers
// blocked across an abort get a nil trace and fall back to plain
// simulation.
//
// On top of the exact index the store keeps two optional structures
// (DESIGN.md §5.12):
//
//   - A cluster index keyed by sim.Config.ClusterKey — front-end *inputs*
//     only, no timing class. AddCandidate files a published stream under
//     its cluster; Candidates lists a cluster's streams in publication
//     order so an exact-miss leader can trial them under the replay
//     divergence fence before paying for a fresh recording. The store
//     itself never judges whether a candidate fits — that is the fence's
//     job — it only remembers what exists.
//
//   - A size-capped LRU over *streams* (distinct recorded traces, however
//     many exact keys have adopted each). SetLimit bounds the resident
//     bytes; publishing or touching past the limit evicts the
//     least-recently-used streams, removing them from both indexes. The
//     entry being settled is never evicted, and neither are unsettled
//     (in-flight) entries — they hold no stream yet.
//
// A Store is safe for concurrent use and never blocks a leader: waiters
// hold no Store lock while they wait.
type Store struct {
	mu       sync.Mutex
	entries  map[string]*storeEntry
	clusters map[string][]*Trace
	locks    map[string]*sync.Mutex
	streams  map[*Trace]*stream
	lru      *list.List // front = most recently used; values are *stream
	limit    int64
	size     int64
	evicted  int64
}

type storeEntry struct {
	done chan struct{}
	tr   *Trace // nil until published; stays nil on abort
}

// stream is the store's bookkeeping for one distinct recorded trace.
type stream struct {
	tr      *Trace
	cost    int64
	cluster string   // cluster key it is filed under; "" = not filed
	keys    []string // exact keys whose settled entries point at this trace
	elem    *list.Element
}

// traceCost estimates a stream's resident size: the fixed totals plus the
// event slice. Close enough for an eviction budget; exactness is not the
// point.
func traceCost(tr *Trace) int64 {
	return int64(unsafe.Sizeof(Trace{})) + int64(len(tr.Events))*int64(unsafe.Sizeof(Event{}))
}

// NewStore returns an empty store with no size limit.
func NewStore() *Store {
	return &Store{
		entries:  make(map[string]*storeEntry),
		clusters: make(map[string][]*Trace),
		locks:    make(map[string]*sync.Mutex),
		streams:  make(map[*Trace]*stream),
		lru:      list.New(),
	}
}

// LockCluster serializes exact-miss leaders of one cluster: a leader takes
// the lock before trialling candidates and releases it (via the returned
// func) after publishing or aborting. Serialization is what makes the
// adoption split deterministic at any worker count — a later leader always
// sees every earlier same-cluster recording settled, so whether it adopts
// or records depends only on timing equivalence, never on scheduling. The
// empty key (unclusterable) locks nothing.
func (s *Store) LockCluster(clusterKey string) (unlock func()) {
	if clusterKey == "" {
		return func() {}
	}
	s.mu.Lock()
	m := s.locks[clusterKey]
	if m == nil {
		m = &sync.Mutex{}
		s.locks[clusterKey] = m
	}
	s.mu.Unlock()
	m.Lock()
	return m.Unlock
}

// SetLimit caps the resident bytes of published streams; 0 (the default)
// means unlimited. A shrunken limit takes effect on the next publish or
// touch.
func (s *Store) SetLimit(bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.limit = bytes
}

// Acquire looks up the trace for key.
//
//	tr != nil                 → a recorded trace is ready; replay it.
//	tr == nil, leader == true → the caller leads: record the front-end,
//	                            then call publish(trace) or abort().
//	tr == nil, leader == false→ the previous leader aborted while the
//	                            caller waited; run a plain simulation.
//
// A leader that adopts a cluster candidate publishes the *candidate* under
// its key — publishing a trace under any number of exact keys files one
// stream, not a copy per key.
func (s *Store) Acquire(key string) (tr *Trace, leader bool, publish func(*Trace), abort func()) {
	s.mu.Lock()
	e := s.entries[key]
	if e == nil {
		e = &storeEntry{done: make(chan struct{})}
		s.entries[key] = e
		s.mu.Unlock()
		publish = func(t *Trace) {
			s.mu.Lock()
			e.tr = t
			if t != nil {
				s.registerLocked(key, t)
			}
			s.mu.Unlock()
			close(e.done)
		}
		abort = func() {
			s.mu.Lock()
			// Only clear our own entry: a later leader may have replaced it
			// already if publish/abort discipline was violated upstream.
			if s.entries[key] == e {
				delete(s.entries, key)
			}
			s.mu.Unlock()
			close(e.done)
		}
		return nil, true, publish, abort
	}
	s.mu.Unlock()
	<-e.done
	if e.tr != nil {
		s.Touch(e.tr)
	}
	return e.tr, false, nil, nil
}

// registerLocked files a published trace under an exact key, creating its
// stream on first publication, and enforces the size limit.
func (s *Store) registerLocked(key string, tr *Trace) {
	st := s.streams[tr]
	if st == nil {
		st = &stream{tr: tr, cost: traceCost(tr)}
		st.elem = s.lru.PushFront(st)
		s.streams[tr] = st
		s.size += st.cost
	} else {
		s.lru.MoveToFront(st.elem)
	}
	st.keys = append(st.keys, key)
	s.evictLocked()
}

// AddCandidate files a published stream under a cluster key so later
// exact-miss leaders can trial it. Filing is idempotent; clusterKey ""
// (unclusterable, e.g. fault-injection cells) is a no-op.
func (s *Store) AddCandidate(clusterKey string, tr *Trace) {
	if clusterKey == "" || tr == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.streams[tr]
	if st == nil {
		// Filed before any exact publication (callers that record outside
		// Acquire); the stream still joins the LRU budget.
		st = &stream{tr: tr, cost: traceCost(tr)}
		st.elem = s.lru.PushFront(st)
		s.streams[tr] = st
		s.size += st.cost
	}
	if st.cluster != "" {
		return
	}
	st.cluster = clusterKey
	s.clusters[clusterKey] = append(s.clusters[clusterKey], tr)
	s.evictLocked()
}

// Candidates returns the cluster's streams in publication order (a copy;
// callers may trial them without holding the store lock).
func (s *Store) Candidates(clusterKey string) []*Trace {
	if clusterKey == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cands := s.clusters[clusterKey]
	if len(cands) == 0 {
		return nil
	}
	out := make([]*Trace, len(cands))
	copy(out, cands)
	return out
}

// Touch marks a stream recently used (a successful replay or adoption).
func (s *Store) Touch(tr *Trace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.streams[tr]; st != nil {
		s.lru.MoveToFront(st.elem)
	}
}

// evictLocked drops least-recently-used streams until the resident size
// fits the limit. The most recently used stream always survives, so a
// single oversized stream cannot thrash the cache empty.
func (s *Store) evictLocked() {
	if s.limit <= 0 {
		return
	}
	for s.size > s.limit && s.lru.Len() > 1 {
		st := s.lru.Back().Value.(*stream)
		s.removeStreamLocked(st)
		s.evicted++
	}
}

// removeStreamLocked unfiles a stream from every index.
func (s *Store) removeStreamLocked(st *stream) {
	for _, key := range st.keys {
		if e := s.entries[key]; e != nil && e.tr == st.tr {
			delete(s.entries, key)
		}
	}
	if st.cluster != "" {
		cands := s.clusters[st.cluster]
		for i, tr := range cands {
			if tr == st.tr {
				s.clusters[st.cluster] = append(cands[:i], cands[i+1:]...)
				break
			}
		}
		if len(s.clusters[st.cluster]) == 0 {
			delete(s.clusters, st.cluster)
		}
	}
	s.lru.Remove(st.elem)
	delete(s.streams, st.tr)
	s.size -= st.cost
}

// Len reports the number of settled or in-flight exact entries (tests
// only).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Streams reports the number of distinct recorded traces resident —
// the number the cluster store exists to shrink: exact keys that adopted
// a sibling's stream share it rather than adding one.
func (s *Store) Streams() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.streams)
}

// SizeBytes reports the estimated resident bytes of published streams.
func (s *Store) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Evictions reports how many streams the size cap has dropped.
func (s *Store) Evictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}
