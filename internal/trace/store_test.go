package trace

import (
	"sync"
	"testing"
)

func TestStoreLeaderPublish(t *testing.T) {
	s := NewStore()
	tr, leader, publish, _ := s.Acquire("k")
	if tr != nil || !leader {
		t.Fatalf("first Acquire: got (%v, leader=%v), want (nil, true)", tr, leader)
	}

	// Waiters must block until the leader publishes, then all see the trace.
	const waiters = 8
	var wg sync.WaitGroup
	got := make([]*Trace, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, lead, _, _ := s.Acquire("k")
			if lead {
				t.Error("waiter elected leader while the entry was claimed")
			}
			got[i] = w
		}(i)
	}
	want := mkTrace()
	publish(want)
	wg.Wait()
	for i, w := range got {
		if w != want {
			t.Fatalf("waiter %d got %p, want the published trace %p", i, w, want)
		}
	}

	// Later Acquires hit the published trace without waiting.
	if w, lead, _, _ := s.Acquire("k"); w != want || lead {
		t.Fatalf("post-publish Acquire: got (%p, leader=%v), want (%p, false)", w, lead, want)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("store holds %d entries, want 1", n)
	}
}

func TestStoreLeaderAbort(t *testing.T) {
	s := NewStore()
	_, leader, _, abort := s.Acquire("k")
	if !leader {
		t.Fatal("first Acquire must lead")
	}
	done := make(chan *Trace, 1)
	ready := make(chan struct{})
	go func() {
		close(ready)
		w, lead, _, _ := s.Acquire("k")
		if lead {
			t.Error("concurrent waiter led a claimed entry")
		}
		done <- w
	}()
	<-ready
	abort()
	if w := <-done; w != nil {
		t.Fatalf("waiter of an aborted entry got %p, want nil (fall back to a full run)", w)
	}
	// The aborted entry is gone: the next Acquire leads again and can publish.
	tr, leader, publish, _ := s.Acquire("k")
	if tr != nil || !leader {
		t.Fatalf("post-abort Acquire: got (%v, leader=%v), want (nil, true)", tr, leader)
	}
	want := mkTrace()
	publish(want)
	if w, lead, _, _ := s.Acquire("k"); w != want || lead {
		t.Fatal("publish after an abort did not take")
	}
}

func TestStoreKeysIndependent(t *testing.T) {
	s := NewStore()
	_, leadA, publishA, _ := s.Acquire("a")
	_, leadB, _, abortB := s.Acquire("b")
	if !leadA || !leadB {
		t.Fatal("distinct keys must elect independent leaders")
	}
	trA := mkTrace()
	publishA(trA)
	abortB()
	if w, _, _, _ := s.Acquire("a"); w != trA {
		t.Fatal("key a lost its trace")
	}
	if w, lead, _, _ := s.Acquire("b"); w != nil || !lead {
		t.Fatal("aborting b must not disturb a, and b must lead again")
	}
	if n := s.Len(); n != 2 {
		t.Fatalf("store holds %d entries, want 2", n)
	}
}
