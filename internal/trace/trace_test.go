package trace

import (
	"encoding/binary"
	"hash/crc32"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mil/internal/bitblock"
	"mil/internal/cache"
)

// mkTrace builds a small trace exercising every event kind and field.
func mkTrace() *Trace {
	var data bitblock.Block
	for i := range data {
		data[i] = byte(i * 7)
	}
	return &Trace{
		CPUCycles:    101,
		DRAMCycles:   51,
		Instructions: 4242,
		Cache: cache.Stats{
			L1Hits: 1, L1Misses: 2, L2Hits: 3, L2Misses: 4, MSHRMerges: 5,
			PrefetchHits: 6, Writebacks: 7, Upgrades: 8, Interventions: 9,
			PrefetchesIssued: 10, PrefetchesDropped: 11, BackInvalidations: 12,
		},
		EventsFired:    61,
		CyclesSkipped:  40,
		Steplock:       false,
		ThreadBlocks:   13,
		WBBackpressure: 14,
		FillRetries:    15,
		WBQueuePeak:    3,
		Events: []Event{
			{Kind: ReadAccept, Clock: 0, Line: 100, Stream: 2, Demand: true, DoneAt: 17},
			{Kind: WriteAccept, Clock: 4, Line: 200, Stream: 0, Data: data, DoneAt: 30},
			{Kind: Promote, Clock: 9, Line: 100},
			{Kind: ReadAccept, Clock: 9, Line: 300, Stream: 1, Demand: false, DoneAt: 44},
		},
	}
}

const testHash = uint64(0xfeedface12345678)

func TestTraceRoundTrip(t *testing.T) {
	tr := mkTrace()
	enc := tr.Encode(testHash)
	got, err := Decode(enc, testHash)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip drifted:\n  in:  %+v\n  out: %+v", tr, got)
	}
	// Encoding is canonical: same value, same bytes.
	if !reflect.DeepEqual(enc, got.Encode(testHash)) {
		t.Fatal("re-encoding a decoded trace produced different bytes")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	tr := mkTrace()
	path := filepath.Join(t.TempDir(), "run.miltrace")
	if err := WriteFile(path, testHash, tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadFile(path, testHash)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("file round trip drifted")
	}
	if _, err := ReadFile(path, testHash+1); err == nil || !strings.Contains(err.Error(), "config hash") {
		t.Fatalf("mismatched front-end hash: got %v, want a config hash error", err)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent"), testHash); err == nil {
		t.Fatal("reading a missing file succeeded")
	}
}

// TestTraceContainerRejections mirrors the snap container tests: corrupt,
// version-skewed, wrong-magic, and wrong-hash files are rejected with the
// matching error before any event is decoded.
func TestTraceContainerRejections(t *testing.T) {
	enc := mkTrace().Encode(testHash)
	reseal := func(b []byte) []byte {
		body := b[:len(b)-4]
		return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
	}

	flipped := append([]byte(nil), enc...)
	flipped[28] ^= 0x40 // first payload byte; CRC now fails
	if _, err := Decode(flipped, testHash); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Errorf("bit flip: got %v, want a CRC error", err)
	}

	skew := append([]byte(nil), enc...)
	skew[8]++ // format version
	if _, err := Decode(reseal(skew), testHash); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version skew: got %v, want a version error", err)
	}

	magic := append([]byte(nil), enc...)
	magic[0] = 'X'
	if _, err := Decode(reseal(magic), testHash); err == nil || !strings.Contains(err.Error(), "not a trace file") {
		t.Errorf("bad magic: got %v, want a magic error", err)
	}

	if _, err := Decode(enc, testHash^1); err == nil || !strings.Contains(err.Error(), "config hash") {
		t.Errorf("hash mismatch: got %v, want a config hash error", err)
	}
}

// TestTraceTruncation feeds every torn prefix of a valid trace to Decode:
// each must error (almost always a CRC failure), never panic or return a
// silently shortened trace.
func TestTraceTruncation(t *testing.T) {
	enc := mkTrace().Encode(testHash)
	for n := 0; n < len(enc); n++ {
		if _, err := Decode(enc[:n], testHash); err == nil {
			t.Fatalf("decode of a %d/%d-byte prefix succeeded", n, len(enc))
		}
	}
}

// TestTraceStructuralValidation pins the invariants replay depends on:
// Decode rejects traces whose events could drive the controller wrong.
func TestTraceStructuralValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Trace)
		want string
	}{
		{"unknown kind", func(tr *Trace) { tr.Events[2].Kind = 9 }, "unknown kind"},
		{"clock regression", func(tr *Trace) { tr.Events[3].Clock = 3 }, "acceptance order"},
		{"negative clock", func(tr *Trace) { tr.Events[0].Clock = -1 }, "acceptance order"},
		{"clock beyond horizon", func(tr *Trace) { tr.Events[3].Clock = 51; tr.Events[3].DoneAt = 52 }, "outside"},
		{"done before accept", func(tr *Trace) { tr.Events[1].DoneAt = 4 }, "done at"},
		{"done beyond horizon", func(tr *Trace) { tr.Events[1].DoneAt = 51 }, "done at"},
		{"loop counters", func(tr *Trace) { tr.EventsFired = 60 }, "loop counters"},
		{"empty run", func(tr *Trace) { tr.DRAMCycles = 0; tr.Events = nil }, "at least one"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := mkTrace()
			c.mut(tr)
			_, err := Decode(tr.Encode(testHash), testHash)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("got %v, want an error containing %q", err, c.want)
			}
		})
	}
}

// TestCacheStatsDriftGuard fails when cache.Stats changes shape: the trace
// format serializes it positionally, so any added, removed, or retyped
// field must update writeCacheStats/readCacheStats and bump Version.
func TestCacheStatsDriftGuard(t *testing.T) {
	typ := reflect.TypeOf(cache.Stats{})
	const want = 12
	if typ.NumField() != want {
		t.Fatalf("cache.Stats has %d fields, the trace format serializes %d: "+
			"update writeCacheStats/readCacheStats and bump trace.Version", typ.NumField(), want)
	}
	for i := 0; i < typ.NumField(); i++ {
		if f := typ.Field(i); f.Type.Kind() != reflect.Int64 {
			t.Fatalf("cache.Stats.%s is %s; the trace format assumes int64 fields", f.Name, f.Type)
		}
	}
}

// FuzzTraceRoundTrip: whatever bytes arrive — torn tails, header
// mutations, CRC flips, version skew — Decode either returns an error or a
// trace that re-encodes canonically; it never panics and never silently
// truncates.
func FuzzTraceRoundTrip(f *testing.F) {
	valid := mkTrace().Encode(testHash)
	f.Add(append([]byte(nil), valid...), testHash)
	f.Add(append([]byte(nil), valid...), testHash^1) // hash mismatch
	torn := append([]byte(nil), valid[:len(valid)-9]...)
	f.Add(torn, testHash)
	crcFlip := append([]byte(nil), valid...)
	crcFlip[len(crcFlip)-1] ^= 0xff
	f.Add(crcFlip, testHash)
	skew := append([]byte(nil), valid...)
	skew[8] ^= 0x02 // version field
	f.Add(skew, testHash)
	hdr := append([]byte(nil), valid...)
	hdr[20] ^= 0x80 // payload length field
	f.Add(hdr, testHash)
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, hash uint64) {
		tr, err := Decode(data, hash)
		if err != nil {
			return
		}
		re := tr.Encode(hash)
		tr2, err := Decode(re, hash)
		if err != nil {
			t.Fatalf("re-encode of a decoded trace does not decode: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("round trip drifted:\n  first:  %+v\n  second: %+v", tr, tr2)
		}
	})
}
