// Package trace is the memory-trace record/replay layer (DESIGN.md §5.11).
//
// A Trace captures everything that crosses the cache↔memctrl boundary
// during one simulation: the ordered stream of accepted requests (clock,
// thread stream, op, address, data line, completion cycle) plus the
// front-end totals a replayed run must report (cycle counts, cache
// statistics, loop counters, boundary backpressure counters). Replaying a
// trace drives memctrl.System directly — no cores, caches, or workload
// streams are simulated — and reproduces the bus, energy, and Figure-5
// results byte-identically for ANY codec/policy/fault cell whose
// configuration shares the trace's front-end (see sim.Config.FrontEndKey).
//
// The file format reuses internal/snap's positional Writer/Reader and its
// CRC-checked container under a distinct magic and version, so traces get
// the same corruption/truncation/version-skew/config-mismatch rejection
// behavior as checkpoints. Like snapshots, the encoding is purely
// positional: any layout change bumps Version and old traces are rejected
// rather than misread.
package trace

import (
	"fmt"
	"os"

	"mil/internal/bitblock"
	"mil/internal/cache"
	"mil/internal/snap"
)

// Version is the trace format version. Bump it on ANY change to the
// payload layout; decode rejects mismatches.
const Version uint32 = 1

// container frames trace files: MILTRACE magic, trace format version, the
// recording configuration's front-end hash, CRC-32 trailer.
var container = snap.Container{
	Magic:   [8]byte{'M', 'I', 'L', 'T', 'R', 'A', 'C', 'E'},
	Version: Version,
	Name:    "trace",
}

// Kind is the event type at the cache↔memctrl boundary.
type Kind uint8

// The event kinds. Only controller *acceptances* are recorded: a request
// the controller rejected is retried by the hierarchy until accepted, and
// that whole dance collapses into the single acceptance event — replay
// never re-enqueues a rejected request.
const (
	// ReadAccept is a read request the controller accepted.
	ReadAccept Kind = iota
	// WriteAccept is a write request the controller accepted.
	WriteAccept
	// Promote flips an in-flight (already accepted) prefetch read to
	// demand priority.
	Promote
)

// Event is one boundary crossing.
type Event struct {
	Kind Kind
	// Clock is the DRAM cycle at which the controller accepted (or, for
	// Promote, observed) the event.
	Clock int64
	// Line is the cache-line address.
	Line int64
	// Stream is the issuing hardware thread (reads and writes).
	Stream int
	// Demand is the read's priority at acceptance, after any merge with a
	// pending retry (reads only).
	Demand bool
	// Data is the written line (writes only).
	Data bitblock.Block
	// DoneAt is the DRAM cycle at which the controller completed the
	// request (reads and writes; Promote carries none).
	DoneAt int64
}

// Trace is one recorded run.
type Trace struct {
	// CPUCycles, DRAMCycles, and Instructions are the recorded run's
	// Result totals; DRAMCycles also bounds the replay timeline.
	CPUCycles    int64
	DRAMCycles   int64
	Instructions int64
	// Cache is the recorded run's full cache statistics (the replayed
	// Result reports them verbatim — the hierarchy never runs).
	Cache cache.Stats
	// EventsFired/CyclesSkipped/Steplock are the recorded run's loop
	// counters; a replayed Result reports the recorded loop, not the
	// replay driver's own cadence.
	EventsFired   int64
	CyclesSkipped int64
	Steplock      bool
	// ThreadBlocks, WBBackpressure, FillRetries, and WBQueuePeak mirror
	// the front-end observability counters that the skipped components
	// would have produced, so a replayed run's metrics CSV matches a full
	// run's byte for byte.
	ThreadBlocks   int64
	WBBackpressure int64
	FillRetries    int64
	WBQueuePeak    int64

	Events []Event
}

// Encode frames the trace. frontEndHash binds it to the recording
// configuration's front-end (sim.Config.FrontEndHash): decoding under any
// other front-end is rejected before a single event is read.
func (t *Trace) Encode(frontEndHash uint64) []byte {
	return container.Encode(frontEndHash, t.payload())
}

// payload serializes the trace body (everything inside the container).
func (t *Trace) payload() []byte {
	var w snap.Writer
	w.I64(t.CPUCycles)
	w.I64(t.DRAMCycles)
	w.I64(t.Instructions)
	writeCacheStats(&w, &t.Cache)
	w.I64(t.EventsFired)
	w.I64(t.CyclesSkipped)
	w.Bool(t.Steplock)
	w.I64(t.ThreadBlocks)
	w.I64(t.WBBackpressure)
	w.I64(t.FillRetries)
	w.I64(t.WBQueuePeak)
	w.Len(len(t.Events))
	for i := range t.Events {
		e := &t.Events[i]
		w.U8(uint8(e.Kind))
		w.I64(e.Clock)
		w.I64(e.Line)
		w.Int(e.Stream)
		switch e.Kind {
		case ReadAccept:
			w.Bool(e.Demand)
			w.I64(e.DoneAt)
		case WriteAccept:
			w.Bytes64((*[bitblock.BlockBytes]byte)(&e.Data))
			w.I64(e.DoneAt)
		}
	}
	return w.Bytes()
}

// Decode validates a framed trace and decodes it. Every structural
// invariant replay depends on is checked here — event kinds, nondecreasing
// clocks, completions after acceptance, everything inside the DRAM-cycle
// horizon — so a decoded Trace is safe to drive the controller with.
func Decode(data []byte, frontEndHash uint64) (*Trace, error) {
	r, err := container.Decode(data, frontEndHash)
	if err != nil {
		return nil, err
	}
	t := &Trace{}
	t.CPUCycles = r.I64()
	t.DRAMCycles = r.I64()
	t.Instructions = r.I64()
	readCacheStats(r, &t.Cache)
	t.EventsFired = r.I64()
	t.CyclesSkipped = r.I64()
	t.Steplock = r.Bool()
	t.ThreadBlocks = r.I64()
	t.WBBackpressure = r.I64()
	t.FillRetries = r.I64()
	t.WBQueuePeak = r.I64()
	n := r.Len()
	if r.Err() == nil && n > 0 {
		t.Events = make([]Event, 0, n)
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		var e Event
		k := r.U8()
		if k > uint8(Promote) {
			return nil, fmt.Errorf("trace: event %d: unknown kind %d", i, k)
		}
		e.Kind = Kind(k)
		e.Clock = r.I64()
		e.Line = r.I64()
		e.Stream = r.Int()
		switch e.Kind {
		case ReadAccept:
			e.Demand = r.Bool()
			e.DoneAt = r.I64()
		case WriteAccept:
			r.Bytes64((*[bitblock.BlockBytes]byte)(&e.Data))
			e.DoneAt = r.I64()
		}
		t.Events = append(t.Events, e)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if !r.Done() {
		return nil, fmt.Errorf("trace: trailing bytes after the last event")
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// validate checks the structural invariants replay depends on.
func (t *Trace) validate() error {
	if t.CPUCycles < 1 || t.DRAMCycles < 1 {
		return fmt.Errorf("trace: %d CPU / %d DRAM cycles; a run covers at least one of each",
			t.CPUCycles, t.DRAMCycles)
	}
	if t.EventsFired+t.CyclesSkipped != t.CPUCycles {
		return fmt.Errorf("trace: loop counters %d fired + %d skipped != %d CPU cycles",
			t.EventsFired, t.CyclesSkipped, t.CPUCycles)
	}
	prev := int64(0)
	for i := range t.Events {
		e := &t.Events[i]
		if e.Clock < prev {
			return fmt.Errorf("trace: event %d: clock %d after %d (events must be in acceptance order)",
				i, e.Clock, prev)
		}
		prev = e.Clock
		if e.Clock >= t.DRAMCycles {
			return fmt.Errorf("trace: event %d: clock %d outside the %d-cycle run", i, e.Clock, t.DRAMCycles)
		}
		if e.Kind != Promote {
			if e.DoneAt <= e.Clock || e.DoneAt >= t.DRAMCycles {
				return fmt.Errorf("trace: event %d: done at %d, accepted at %d in a %d-cycle run",
					i, e.DoneAt, e.Clock, t.DRAMCycles)
			}
		}
	}
	return nil
}

// writeCacheStats serializes cache.Stats in fixed field order. The
// cache-stats drift guard in trace_test.go fails if the struct gains or
// loses a field without this list (and Version) being updated.
func writeCacheStats(w *snap.Writer, s *cache.Stats) {
	w.I64(s.L1Hits)
	w.I64(s.L1Misses)
	w.I64(s.L2Hits)
	w.I64(s.L2Misses)
	w.I64(s.MSHRMerges)
	w.I64(s.PrefetchHits)
	w.I64(s.Writebacks)
	w.I64(s.Upgrades)
	w.I64(s.Interventions)
	w.I64(s.PrefetchesIssued)
	w.I64(s.PrefetchesDropped)
	w.I64(s.BackInvalidations)
}

func readCacheStats(r *snap.Reader, s *cache.Stats) {
	s.L1Hits = r.I64()
	s.L1Misses = r.I64()
	s.L2Hits = r.I64()
	s.L2Misses = r.I64()
	s.MSHRMerges = r.I64()
	s.PrefetchHits = r.I64()
	s.Writebacks = r.I64()
	s.Upgrades = r.I64()
	s.Interventions = r.I64()
	s.PrefetchesIssued = r.I64()
	s.PrefetchesDropped = r.I64()
	s.BackInvalidations = r.I64()
}

// WriteFile atomically writes a framed trace file (temp file + rename).
func WriteFile(path string, frontEndHash uint64, t *Trace) error {
	return container.WriteFile(path, frontEndHash, t.payload())
}

// ReadFile reads and validates a trace file.
func ReadFile(path string, frontEndHash uint64) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := Decode(data, frontEndHash)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
