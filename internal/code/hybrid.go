package code

import (
	"fmt"

	"mil/internal/bitblock"
)

// Hybrid is the intermediate-length sparse code Section 7.5.3 calls for:
// the data-intensive benchmarks cannot afford 3-LWC's BL16 but waste the
// gap between BL10 and BL16 when only MiLC is available. Hybrid splits each
// chip's 8x8 square in half: the first four rows are MiLC-coded as a 4-row
// group (10 bits per row) and the last four bytes are 3-LWC-coded (17 bits
// each), giving 4x10 + 4x17 = 108 bits per lane, padded high to 112 = burst
// length 14 over the chip's data pins. It compresses zero-heavy bytes with
// the hard 3-LWC bound while keeping correlated rows on the cheap MiLC
// path, at 2 beats less than full 3-LWC.
type Hybrid struct{}

// Name implements Codec.
func (Hybrid) Name() string { return "hybrid" }

// Beats implements Codec.
func (Hybrid) Beats() int { return 14 }

// ExtraLatency implements Codec.
func (Hybrid) ExtraLatency() int { return 1 }

// hybridLaneBits is the padded per-lane payload: 14 beats x 8 pins.
const hybridLaneBits = 112

// hybridEncodeLane maps one 64-bit lane to its 112-bit codeword.
func hybridEncodeLane(lane uint64) *bitblock.Bits {
	out := bitblock.NewBits(hybridLaneBits)

	// Rows 0-3: a 4-row MiLC group. Row 0 carries the xorbi bit for the
	// three XOR-mode bits of rows 1-3.
	var rows [4]milcRow
	r0 := byte(lane)
	if zeros8(r0) > 4 {
		rows[0] = milcRow{wire: ^r0, inv: false}
	} else {
		rows[0] = milcRow{wire: r0, inv: true}
	}
	prev := r0
	for r := 1; r < 4; r++ {
		cur := byte(lane >> (8 * r))
		rows[r] = encodeMilcRow(cur, prev)
		prev = cur
	}
	xorZeros := 0
	for r := 1; r < 4; r++ {
		xorZeros += boolBitZero(rows[r].xor)
	}
	// Invert the 3-bit column when it carries 2+ zeros (cost 3-z+1 < z).
	invertColumn := xorZeros >= 2
	xorbi := !invertColumn
	for r := 0; r < 4; r++ {
		out.Append(uint64(rows[r].wire), 8)
		if r == 0 {
			out.AppendBit(xorbi)
		} else {
			x := rows[r].xor
			if invertColumn {
				x = !x
			}
			out.AppendBit(x)
		}
		out.AppendBit(rows[r].inv)
	}

	// Bytes 4-7: 3-LWC words, transmitted inverted (<= 3 zeros each).
	for r := 4; r < 8; r++ {
		w := lwcEncodeByte(byte(lane >> (8 * r)))
		out.Append(uint64(^w)&0x1ffff, lwcWordBits)
	}
	out.Append(0xf, 4) // pad high
	return out
}

// hybridDecodeLane inverts hybridEncodeLane. Corruption in the 3-LWC half
// of the lane is detectable (sparse codeword space); the MiLC half is not.
func hybridDecodeLane(cw *bitblock.Bits) (uint64, error) {
	var lane uint64
	xorbi := cw.Get(8)
	invertColumn := !xorbi
	var prev byte
	for r := 0; r < 4; r++ {
		wire := byte(cw.Uint64(r*10, 8))
		if !cw.Get(r*10 + 9) {
			wire = ^wire
		}
		if r > 0 {
			x := cw.Get(r*10 + 8)
			if invertColumn {
				x = !x
			}
			if x {
				wire ^= prev
			}
		}
		lane |= uint64(wire) << (8 * r)
		prev = wire
	}
	for r := 4; r < 8; r++ {
		w := uint32(^cw.Uint64(40+(r-4)*lwcWordBits, lwcWordBits)) & 0x1ffff
		d, err := lwcDecodeWord(w)
		if err != nil {
			return 0, err
		}
		lane |= uint64(d) << (8 * r)
	}
	return lane, nil
}

// Encode implements Codec.
func (Hybrid) Encode(blk *bitblock.Block) *bitblock.Burst {
	bu := bitblock.NewBurst(BusWidth, 14)
	parkDBIPins(bu)
	for c := 0; c < bitblock.Chips; c++ {
		cw := hybridEncodeLane(blk.Lane(c))
		for beat := 0; beat < 14; beat++ {
			bu.SetBeat(beat, chipDataPin(c, 0), cw.Uint64(beat*8, 8), 8)
		}
	}
	return bu
}

// Decode implements Codec.
func (Hybrid) Decode(bu *bitblock.Burst) (bitblock.Block, error) {
	var blk bitblock.Block
	if err := checkDims("hybrid", bu, 14); err != nil {
		return blk, err
	}
	for c := 0; c < bitblock.Chips; c++ {
		cw := bitblock.NewBits(hybridLaneBits)
		for beat := 0; beat < 14; beat++ {
			cw.Append(bu.BeatBits(beat, chipDataPin(c, 0), 8), 8)
		}
		lane, err := hybridDecodeLane(cw)
		if err != nil {
			return blk, fmt.Errorf("code: hybrid chip %d: %w", c, err)
		}
		blk.SetLane(c, lane)
	}
	return blk, nil
}
