package code

import (
	"fmt"

	"mil/internal/bitblock"
)

// Hybrid is the intermediate-length sparse code Section 7.5.3 calls for:
// the data-intensive benchmarks cannot afford 3-LWC's BL16 but waste the
// gap between BL10 and BL16 when only MiLC is available. Hybrid splits each
// chip's 8x8 square in half: the first four rows are MiLC-coded as a 4-row
// group (10 bits per row) and the last four bytes are 3-LWC-coded (17 bits
// each), giving 4x10 + 4x17 = 108 bits per lane, padded high to 112 = burst
// length 14 over the chip's data pins. It compresses zero-heavy bytes with
// the hard 3-LWC bound while keeping correlated rows on the cheap MiLC
// path, at 2 beats less than full 3-LWC.
type Hybrid struct{}

// Name implements Codec.
func (Hybrid) Name() string { return "hybrid" }

// Beats implements Codec.
func (Hybrid) Beats() int { return 14 }

// ExtraLatency implements Codec.
func (Hybrid) ExtraLatency() int { return 1 }

// hybridLaneBits is the padded per-lane payload: 14 beats x 8 pins.
const hybridLaneBits = 112

// hybridEncodeLane maps one 64-bit lane to its 112-bit codeword: rows 0-3
// are a 4-row MiLC group (row 0 carries the xorbi bit; the 3-bit xor column
// inverts when it carries 2+ zeros, cost 3-z+1 < z), bytes 4-7 are 3-LWC
// words transmitted inverted (<= 3 zeros each), and the last 4 bits pad
// high.
func hybridEncodeLane(lane uint64) laneCW {
	var cw laneCW
	var rows [8]milcRow
	invertColumn, _ := milcRows(lane, &rows, 4, 2)
	milcSerializeRows(&cw, &rows, 4, invertColumn)
	for r := 4; r < 8; r++ {
		w := lwcEncodeByte(byte(lane >> (8 * r)))
		cw.append(uint64(^w)&0x1ffff, lwcWordBits)
	}
	cw.append(0xf, 4) // pad high
	return cw
}

// hybridLaneZeros is the cost probe: the zero count of
// hybridEncodeLane(lane) without building the codeword.
func hybridLaneZeros(lane uint64) int {
	var rows [8]milcRow
	invertColumn, xorZeros := milcRows(lane, &rows, 4, 2)
	z := milcRowGroupZeros(&rows, 4, invertColumn, xorZeros)
	for r := 4; r < 8; r++ {
		z += int(lwcByteZeros[byte(lane>>(8*r))])
	}
	return z // the 4 pad bits are high: zero cost
}

// hybridDecodeLane inverts hybridEncodeLane. Corruption in the 3-LWC half
// of the lane is detectable (sparse codeword space); the MiLC half is not.
func hybridDecodeLane(cw *laneCW) (uint64, error) {
	var lane uint64
	xorbi := cw.bit(8)
	invertColumn := !xorbi
	var prev byte
	for r := 0; r < 4; r++ {
		wire := byte(cw.uint64(r*10, 8))
		if !cw.bit(r*10 + 9) {
			wire = ^wire
		}
		if r > 0 {
			x := cw.bit(r*10 + 8)
			if invertColumn {
				x = !x
			}
			if x {
				wire ^= prev
			}
		}
		lane |= uint64(wire) << (8 * r)
		prev = wire
	}
	for r := 4; r < 8; r++ {
		w := uint32(^cw.uint64(40+(r-4)*lwcWordBits, lwcWordBits)) & 0x1ffff
		d, err := lwcDecodeWord(w)
		if err != nil {
			return 0, err
		}
		lane |= uint64(d) << (8 * r)
	}
	return lane, nil
}

// Encode implements Codec.
func (c Hybrid) Encode(blk *bitblock.Block) *bitblock.Burst {
	bu := bitblock.NewBurst(BusWidth, 14)
	c.EncodeInto(blk, bu)
	return bu
}

// EncodeInto implements BurstEncoder.
func (Hybrid) EncodeInto(blk *bitblock.Block, bu *bitblock.Burst) {
	bu.Reset(BusWidth, 14)
	parkDBIPins(bu)
	var cws [bitblock.Chips]laneCW
	for c := range cws {
		cws[c] = hybridEncodeLane(blk.Lane(c))
	}
	storeLaneCodewords(bu, &cws, 14, 8)
}

// CostZeros implements ZeroCoster.
func (Hybrid) CostZeros(blk *bitblock.Block) int {
	z := 0
	for c := 0; c < bitblock.Chips; c++ {
		z += hybridLaneZeros(blk.Lane(c))
	}
	return z
}

// Decode implements Codec.
func (Hybrid) Decode(bu *bitblock.Burst) (bitblock.Block, error) {
	var blk bitblock.Block
	if err := checkDims("hybrid", bu, 14); err != nil {
		return blk, err
	}
	if err := checkDriven("hybrid", bu, false); err != nil {
		return blk, err
	}
	var cws [bitblock.Chips]laneCW
	loadLaneCodewords(bu, &cws, 14, 8)
	for c := range cws {
		lane, err := hybridDecodeLane(&cws[c])
		if err != nil {
			return blk, fmt.Errorf("code: hybrid chip %d: %w", c, err)
		}
		blk.SetLane(c, lane)
	}
	return blk, nil
}
