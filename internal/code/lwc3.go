package code

import (
	"fmt"
	"math/bits"

	"mil/internal/bitblock"
)

// LWC3 is the improved 3-limited-weight code of Section 5.2.2 (Figure 13,
// Table 1). Each data byte is split into two nibbles; each nibble is
// one-hot encoded into a 15-bit form (value 0 maps to all zeros, value v>0
// to a single 1 at position v-1); the two forms are ORed into the 15-bit
// code; and a 2-bit mode disambiguates which nibble(s) produced each set
// bit. The resulting 17-bit word has Hamming weight at most 3, so after the
// final inversion (footnote 4: minimizing zeros requires inverting an LWC)
// the transmitted word carries at most three zeros per original byte.
//
// A 512-bit block becomes 8 chips x 8 bytes x 17 bits = 1088 bits. Each
// chip serializes its 8 codewords plus 8 pad bits (driven high, which is
// free) over 16 beats of its 9 pins (8 data + the reused DBI pin), matching
// the BL16 format of Figure 12(b).
type LWC3 struct{}

// lwcWordBits is the codeword length per byte: 15 code + 2 mode bits.
const lwcWordBits = 17

// Name implements Codec.
func (LWC3) Name() string { return "lwc3" }

// Beats implements Codec.
func (LWC3) Beats() int { return 16 }

// ExtraLatency implements Codec.
func (LWC3) ExtraLatency() int { return 1 }

// lwcOneHot maps a nibble to its 15-bit one-hot intermediate form.
func lwcOneHot(v byte) uint16 {
	if v == 0 {
		return 0
	}
	return 1 << (v - 1)
}

// lwcEncodeByte produces the 17-bit codeword (pre-inversion): bits 0..14
// are the code, bits 15..16 the mode, per Table 1.
func lwcEncodeByte(d byte) uint32 {
	l := d >> 4
	r := d & 0x0f
	left := lwcOneHot(l)
	right := lwcOneHot(r)
	codeBits := left | right

	var mode uint32
	switch {
	case l == 0 && r == 0:
		mode = 0 // all-zeros code
	case l == r:
		mode = 1 // single 1, both nibbles equal
	case r == 0:
		mode = 0 // single 1, came from the left nibble
	case l == 0:
		mode = 2 // single 1, came from the right nibble
	case l > r:
		mode = 2 // two 1s, left nibble holds the greater position
	default:
		mode = 0 // two 1s, left nibble holds the smaller position
	}
	return uint32(codeBits) | mode<<15
}

// lwcByteZeros[b] is the number of zeros the transmitted (inverted) 17-bit
// codeword of byte b carries: the popcount of the pre-inversion word. An
// init-time constant table, so the cost probe is a single lookup per byte.
var lwcByteZeros = func() [256]uint8 {
	var t [256]uint8
	for b := 0; b < 256; b++ {
		t[b] = uint8(bits.OnesCount32(lwcEncodeByte(byte(b))))
	}
	return t
}()

// lwcDecodeWord inverts lwcEncodeByte. It reports an error for words that
// no byte encodes to (weight > 3, mode 0b11, or inconsistent mode/code
// combinations), which decode uses to surface corrupted bursts in tests.
func lwcDecodeWord(w uint32) (byte, error) {
	codeBits := uint16(w & 0x7fff)
	mode := w >> 15 & 0x3
	switch bits.OnesCount16(codeBits) {
	case 0:
		if mode != 0 {
			return 0, fmt.Errorf("code: lwc3 empty code with mode %d", mode)
		}
		return 0, nil
	case 1:
		p := byte(bits.TrailingZeros16(codeBits)) + 1
		switch mode {
		case 1:
			return p<<4 | p, nil
		case 0:
			return p << 4, nil
		case 2:
			return p, nil
		}
		return 0, fmt.Errorf("code: lwc3 single-one code with mode %d", mode)
	case 2:
		q := byte(bits.TrailingZeros16(codeBits)) + 1   // smaller position
		p := byte(15-bits.LeadingZeros16(codeBits)) + 1 // greater position
		switch mode {
		case 2:
			return p<<4 | q, nil
		case 0:
			return q<<4 | p, nil
		}
		return 0, fmt.Errorf("code: lwc3 two-one code with mode %d", mode)
	}
	return 0, fmt.Errorf("code: lwc3 word weight %d > 2", bits.OnesCount16(codeBits))
}

// laneWordBits is the serialized per-chip payload: 8 codewords + 8 pad
// bits = 144 bits = 16 beats x 9 pins.
const laneWordBits = 8*lwcWordBits + 8

// Encode implements Codec.
func (c LWC3) Encode(blk *bitblock.Block) *bitblock.Burst {
	bu := bitblock.NewBurst(BusWidth, 16)
	c.EncodeInto(blk, bu)
	return bu
}

// EncodeInto implements BurstEncoder.
func (LWC3) EncodeInto(blk *bitblock.Block, bu *bitblock.Burst) {
	bu.Reset(BusWidth, 16)
	var cws [bitblock.Chips]laneCW
	for c := range cws {
		for b := 0; b < 8; b++ {
			w := lwcEncodeByte(blk[b*bitblock.Chips+c])
			// Transmit the inverted word so at most 3 of 17 bits are 0.
			cws[c].append(uint64(^w)&0x1ffff, lwcWordBits)
		}
		cws[c].append(0xff, 8) // pad beats high: free on a POD interface
	}
	storeLaneCodewords(bu, &cws, 16, PinsPerChip)
}

// CostZeros implements ZeroCoster: each byte's inverted codeword carries
// lwcByteZeros[b] zeros and the pad bits are high, so the probe is 64 table
// lookups.
func (LWC3) CostZeros(blk *bitblock.Block) int {
	z := 0
	for _, b := range blk {
		z += int(lwcByteZeros[b])
	}
	return z
}

// Decode implements Codec. The 3-LWC codeword space is sparse (at most 3
// of 17 transmitted zeros), so most wire corruption lands outside the code
// and is reported as an error - the detection capability the MiL
// degradation ladder relies on for reads.
func (LWC3) Decode(bu *bitblock.Burst) (bitblock.Block, error) {
	var blk bitblock.Block
	if err := checkDims("lwc3", bu, 16); err != nil {
		return blk, err
	}
	if err := checkDriven("lwc3", bu, true); err != nil {
		return blk, err
	}
	var cws [bitblock.Chips]laneCW
	loadLaneCodewords(bu, &cws, 16, PinsPerChip)
	for c := range cws {
		for b := 0; b < 8; b++ {
			w := uint32(^cws[c].uint64(b*lwcWordBits, lwcWordBits)) & 0x1ffff
			d, err := lwcDecodeWord(w)
			if err != nil {
				// Encode never produces such words: data corruption.
				return blk, fmt.Errorf("chip %d byte %d: %w", c, b, err)
			}
			blk[b*bitblock.Chips+c] = d
		}
	}
	return blk, nil
}
