package code

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mil/internal/bitblock"
)

// allCodecs returns every registered codec for table-driven tests.
func allCodecs(t *testing.T) []Codec {
	t.Helper()
	var cs []Codec
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		cs = append(cs, c)
	}
	return cs
}

func TestByNameRejectsUnknown(t *testing.T) {
	for _, bad := range []string{"", "dbi2", "cafo0", "cafo-1", "milc2"} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q) succeeded, want error", bad)
		}
	}
}

func TestByNameCAFOIterations(t *testing.T) {
	c, err := ByName("cafo7")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.(CAFO).Iterations(); got != 7 {
		t.Fatalf("iterations = %d, want 7", got)
	}
	if c.ExtraLatency() != 7 {
		t.Fatalf("extra latency = %d, want 7", c.ExtraLatency())
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, c := range allCodecs(t) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			f := func(raw [64]byte) bool {
				blk := bitblock.Block(raw)
				out, err := c.Decode(c.Encode(&blk))
				return err == nil && out == blk
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCodecRoundTripStructuredData(t *testing.T) {
	// Correlated / extreme patterns stress the XOR and inversion paths.
	patterns := [][64]byte{
		{}, // all zeros
		func() (b [64]byte) { // all ones
			for i := range b {
				b[i] = 0xff
			}
			return
		}(),
		func() (b [64]byte) { // repeated stride pattern (spatially correlated)
			for i := range b {
				b[i] = byte(0x80 >> (i % 8))
			}
			return
		}(),
		func() (b [64]byte) { // ASCII-ish text
			s := "the quick brown fox jumps over the lazy dog 0123456789 abcdef!"
			copy(b[:], s)
			return
		}(),
		func() (b [64]byte) { // small positive float64 bit patterns
			for i := range b {
				if i%8 == 6 || i%8 == 7 {
					b[i] = 0x3f
				}
			}
			return
		}(),
	}
	for _, c := range allCodecs(t) {
		for i, p := range patterns {
			blk := bitblock.Block(p)
			if out, err := c.Decode(c.Encode(&blk)); err != nil || out != blk {
				t.Errorf("%s: pattern %d did not round-trip", c.Name(), i)
			}
		}
	}
}

func TestCodecBurstDimensions(t *testing.T) {
	want := map[string]struct{ beats, pins, latency int }{
		"raw":    {8, 64, 0},
		"dbi":    {8, 72, 0},
		"milc":   {10, 64, 1},
		"lwc3":   {16, 72, 1},
		"hybrid": {14, 64, 1},
		"cafo2":  {10, 64, 2},
		"cafo4":  {10, 64, 4},
		"optmem": {8, 72, 0},
		"vlwc":   {12, 64, 1},
		"zad":    {8, 72, 0},
		"zadr":   {8, 72, 0},
	}
	var blk bitblock.Block
	for _, c := range allCodecs(t) {
		w := want[c.Name()]
		if c.Beats() != w.beats {
			t.Errorf("%s: beats = %d, want %d", c.Name(), c.Beats(), w.beats)
		}
		bu := c.Encode(&blk)
		if bu.Beats != w.beats {
			t.Errorf("%s: encoded beats = %d, want %d", c.Name(), bu.Beats, w.beats)
		}
		if bu.DrivenPins() != w.pins {
			t.Errorf("%s: driven pins = %d, want %d", c.Name(), bu.DrivenPins(), w.pins)
		}
		if c.ExtraLatency() != w.latency {
			t.Errorf("%s: latency = %d, want %d", c.Name(), c.ExtraLatency(), w.latency)
		}
	}
}

func TestDBIZeroBound(t *testing.T) {
	// Section 2.1.1: every 9-bit group carries fewer than five zeros.
	f := func(raw [64]byte) bool {
		blk := bitblock.Block(raw)
		bu := DBI{}.Encode(&blk)
		for beat := 0; beat < 8; beat++ {
			for c := 0; c < bitblock.Chips; c++ {
				z := 0
				for i := 0; i < 9; i++ {
					if !bu.Bit(beat, c*PinsPerChip+i) {
						z++
					}
				}
				if z > 4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDBIWorstCaseByte(t *testing.T) {
	wire, bit := dbiEncodeByte(0x00)
	if wire != 0xff || bit {
		t.Fatalf("0x00 -> wire %02x dbi %v, want ff/false", wire, bit)
	}
	wire, bit = dbiEncodeByte(0xff)
	if wire != 0xff || !bit {
		t.Fatalf("0xff -> wire %02x dbi %v, want ff/true", wire, bit)
	}
	// Exactly four zeros stays uninverted.
	wire, bit = dbiEncodeByte(0x0f)
	if wire != 0x0f || !bit {
		t.Fatalf("0x0f -> wire %02x dbi %v, want 0f/true", wire, bit)
	}
}

func TestLWC3ZeroBound(t *testing.T) {
	// Section 5.2.2: at most three zeros per 17-bit codeword. Exhaustive
	// over all 256 bytes.
	for d := 0; d < 256; d++ {
		w := lwcEncodeByte(byte(d))
		inv := ^w & 0x1ffff
		zeros := 0
		for i := 0; i < lwcWordBits; i++ {
			if inv>>i&1 == 0 {
				zeros++
			}
		}
		if zeros > 3 {
			t.Fatalf("byte %02x: %d zeros in transmitted word", d, zeros)
		}
	}
}

func TestLWC3ExhaustiveRoundTrip(t *testing.T) {
	for d := 0; d < 256; d++ {
		got, err := lwcDecodeWord(lwcEncodeByte(byte(d)))
		if err != nil {
			t.Fatalf("byte %02x: %v", d, err)
		}
		if got != byte(d) {
			t.Fatalf("byte %02x decoded to %02x", d, got)
		}
	}
}

func TestLWC3CodewordsUnique(t *testing.T) {
	seen := map[uint32]byte{}
	for d := 0; d < 256; d++ {
		w := lwcEncodeByte(byte(d))
		if prev, dup := seen[w]; dup {
			t.Fatalf("bytes %02x and %02x share codeword %05x", prev, d, w)
		}
		seen[w] = byte(d)
	}
}

func TestLWC3ModeNever11(t *testing.T) {
	// The mode reassignment of Table 1 only uses 00, 01, 10, which is what
	// keeps the total weight at 3.
	for d := 0; d < 256; d++ {
		if mode := lwcEncodeByte(byte(d)) >> 15; mode == 3 {
			t.Fatalf("byte %02x uses mode 11", d)
		}
	}
}

func TestLWC3DecodeRejectsGarbage(t *testing.T) {
	cases := []uint32{
		0x7fff,       // weight 15 code
		1<<15 | 0,    // empty code, mode 01
		3<<15 | 1,    // mode 11
		1<<15 | 0b11, // two ones with mode 01
	}
	for _, w := range cases {
		if _, err := lwcDecodeWord(w); err == nil {
			t.Errorf("lwcDecodeWord(%05x) accepted invalid word", w)
		}
	}
}

func TestLWC3PadBitsHigh(t *testing.T) {
	// The 8 pad bit-times per chip are driven high so they cost nothing.
	var blk bitblock.Block
	bu := LWC3{}.Encode(&blk)
	for c := 0; c < bitblock.Chips; c++ {
		for i := 0; i < 8; i++ {
			bit := 8*lwcWordBits + i
			beat, pin := bit/PinsPerChip, bit%PinsPerChip
			if !bu.Bit(beat, c*PinsPerChip+pin) {
				t.Fatalf("chip %d pad bit %d is low", c, i)
			}
		}
	}
}

func TestMiLCZeroBlockIsCheap(t *testing.T) {
	// An all-zero block should be nearly free after inversion: every row
	// inverts to 0xff, leaving exactly one indicator zero per row - the
	// same floor DBI reaches (one per byte), never worse.
	var blk bitblock.Block
	bu := MiLC{}.Encode(&blk)
	z := bu.CountZeros()
	if z > 8*8 {
		t.Fatalf("all-zero block costs %d zeros under MiLC, want <= 64", z)
	}
	dbiZ := DBI{}.Encode(&blk).CountZeros()
	if z > dbiZ {
		t.Fatalf("MiLC (%d zeros) worse than DBI (%d) on zero block", z, dbiZ)
	}
}

func TestMiLCExploitsRowCorrelation(t *testing.T) {
	// Identical adjacent rows XOR to zero and invert to all-ones; MiLC must
	// beat DBI clearly on such data even when each row alone is balanced.
	var blk bitblock.Block
	for i := range blk {
		blk[i] = 0xa5 // balanced byte: DBI cannot help at all
	}
	milcZ := MiLC{}.Encode(&blk).CountZeros()
	dbiZ := DBI{}.Encode(&blk).CountZeros()
	if milcZ*2 > dbiZ {
		t.Fatalf("correlated data: MiLC %d zeros vs DBI %d, expected <= half", milcZ, dbiZ)
	}
}

func TestMiLCRowEncoderPicksMinimum(t *testing.T) {
	// For each candidate, verify no other candidate is strictly cheaper.
	rng := rand.New(rand.NewSource(11))
	for n := 0; n < 2000; n++ {
		cur, prev := byte(rng.Intn(256)), byte(rng.Intn(256))
		got := encodeMilcRow(cur, prev)
		gotCost := zeros8(got.wire) + boolBitZero(got.xor) + boolBitZero(got.inv)
		for _, xor := range []bool{false, true} {
			for _, invert := range []bool{false, true} {
				w := cur
				if xor {
					w ^= prev
				}
				if invert {
					w = ^w
				}
				cost := zeros8(w) + boolBitZero(xor) + boolBitZero(!invert)
				if cost < gotCost {
					t.Fatalf("cur=%02x prev=%02x: picked cost %d, candidate (xor=%v inv=%v) costs %d",
						cur, prev, gotCost, xor, invert, cost)
				}
			}
		}
	}
}

func TestMiLCLaneRoundTripExhaustiveRows(t *testing.T) {
	// Exercise each (row, previous-row) byte pair through a full lane.
	rng := rand.New(rand.NewSource(13))
	for n := 0; n < 5000; n++ {
		lane := rng.Uint64()
		cw := milcEncodeLane(lane)
		if got := milcDecodeLane(&cw); got != lane {
			t.Fatalf("lane %016x decoded to %016x", lane, got)
		}
	}
}

func TestMiLCXorbiReducesZeros(t *testing.T) {
	// Construct a lane where all rows prefer the non-XOR candidates so the
	// raw xor column is all zeros; xorbi must flip it.
	var lane uint64
	for r := 0; r < 8; r++ {
		lane |= uint64(0xff) << (8 * r) // all-ones rows: original is free, XOR is terrible
	}
	cw := milcEncodeLane(lane)
	if cw.bit(8) { // xorbi: false means the column was inverted
		t.Fatal("expected xorbi to invert an all-zero xor column")
	}
	// With the column inverted the xor slots of rows 1..7 must read 1.
	for r := 1; r < 8; r++ {
		if !cw.bit(r*10 + 8) {
			t.Fatalf("row %d xor slot not inverted high", r)
		}
	}
}

func TestCAFOBeatsDBIOnColumnStructure(t *testing.T) {
	// A block whose zeros concentrate in one bit column: row inversion (and
	// hence DBI) cannot help, column inversion fixes it outright.
	var blk bitblock.Block
	for i := range blk {
		blk[i] = 0xa5 &^ 0x01 // clear bit 0 everywhere, keep rows balanced-ish
	}
	cafoZ := NewCAFO(2).Encode(&blk).CountZeros()
	dbiZ := DBI{}.Encode(&blk).CountZeros()
	if cafoZ >= dbiZ {
		t.Fatalf("CAFO2 %d zeros vs DBI %d on column-structured data", cafoZ, dbiZ)
	}
}

func TestCAFOMoreIterationsNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for n := 0; n < 300; n++ {
		var raw [64]byte
		rng.Read(raw[:])
		blk := bitblock.Block(raw)
		z2 := NewCAFO(2).Encode(&blk).CountZeros()
		z4 := NewCAFO(4).Encode(&blk).CountZeros()
		if z4 > z2 {
			t.Fatalf("CAFO4 (%d zeros) worse than CAFO2 (%d)", z4, z2)
		}
	}
}

func TestTransitionSignalingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	var txState, rxState bitblock.BusState
	for p := 0; p < 7; p += 2 { // arbitrary non-zero initial bus level
		txState.SetPin(p, true)
		rxState.SetPin(p, true)
	}
	for n := 0; n < 50; n++ {
		bu := bitblock.NewBurst(9, 8)
		for b := 0; b < 8; b++ {
			for p := 0; p < 9; p++ {
				bu.SetBit(b, p, rng.Intn(2) == 1)
			}
		}
		bu.SetDriven(4, n%3 == 0)
		wire := SignalTransitions(bu, &txState)
		back := RecoverTransitions(wire, &rxState)
		for b := 0; b < 8; b++ {
			for p := 0; p < 9; p++ {
				if !bu.Driven(p) {
					continue
				}
				if back.Bit(b, p) != bu.Bit(b, p) {
					t.Fatalf("burst %d: bit (%d,%d) corrupted", n, b, p)
				}
			}
		}
	}
}

func TestTransitionSignalingTogglesEqualZeros(t *testing.T) {
	// Flip-on-zero: the wire burst's toggle count must equal the logical
	// burst's zero count, which is what lets zero-minimizing codes carry
	// over to LPDDR3 (Section 4.5).
	rng := rand.New(rand.NewSource(23))
	for n := 0; n < 100; n++ {
		bu := bitblock.NewBurst(8, 10)
		for b := 0; b < 10; b++ {
			for p := 0; p < 8; p++ {
				bu.SetBit(b, p, rng.Intn(2) == 1)
			}
		}
		var sigState, cntState bitblock.BusState
		for p := 0; p < 8; p++ {
			lvl := rng.Intn(2) == 1
			sigState.SetPin(p, lvl)
			cntState.SetPin(p, lvl)
		}
		wire := SignalTransitions(bu, &sigState)
		toggles := wire.Transitions(&cntState)
		if toggles != bu.CountZeros() {
			t.Fatalf("toggles %d != logical zeros %d", toggles, bu.CountZeros())
		}
	}
}

func TestBusInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	var bi BusInvert
	var txState bitblock.BusState
	for n := 0; n < 100; n++ {
		var raw [64]byte
		rng.Read(raw[:])
		blk := bitblock.Block(raw)
		wire, _ := bi.EncodeWire(&blk, &txState)
		if got := bi.DecodeWire(wire); got != blk {
			t.Fatalf("burst %d failed to round-trip", n)
		}
	}
}

func TestBusInvertReducesToggles(t *testing.T) {
	// Alternating complement bytes toggle every wire without BI; BI must
	// cut that roughly in half or better.
	var bi BusInvert
	var state bitblock.BusState
	total := 0
	for n := 0; n < 64; n++ {
		var raw [64]byte
		fill := byte(0x00)
		if n%2 == 1 {
			fill = 0xff
		}
		for i := range raw {
			raw[i] = fill
		}
		blk := bitblock.Block(raw)
		_, toggles := bi.EncodeWire(&blk, &state)
		total += toggles
	}
	// Without BI: after warmup each burst toggles 64 wires x 8 beats... the
	// worst case is 512 toggles per block boundary. With BI the data wires
	// never toggle (inversion absorbs the flip), only BI wires do.
	if total > 64*16 {
		t.Fatalf("BI let %d toggles through on complement-alternating data", total)
	}
}

func TestStaticLWCUniqueAndDecodable(t *testing.T) {
	var freq [256]uint64
	for i := range freq {
		freq[i] = uint64(256 - i)
	}
	for _, k := range []int{9, 12, 17} {
		c, err := NewStaticLWC(k, &freq)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint32]bool{}
		for b := 0; b < 256; b++ {
			w := c.EncodeByte(byte(b))
			if w >= 1<<k {
				t.Fatalf("k=%d: codeword %x exceeds width", k, w)
			}
			if seen[w] {
				t.Fatalf("k=%d: duplicate codeword %x", k, w)
			}
			seen[w] = true
			got, ok := c.DecodeWord(w)
			if !ok || got != byte(b) {
				t.Fatalf("k=%d: byte %02x decode mismatch", k, b)
			}
		}
	}
}

func TestStaticLWCWidthValidation(t *testing.T) {
	var freq [256]uint64
	if _, err := NewStaticLWC(7, &freq); err == nil {
		t.Error("k=7 accepted")
	}
	if _, err := NewStaticLWC(25, &freq); err == nil {
		t.Error("k=25 accepted")
	}
}

func TestStaticLWCMonotoneInWidth(t *testing.T) {
	// Figure 7's shape: more codeword bits means fewer weighted zeros.
	var freq [256]uint64
	rng := rand.New(rand.NewSource(31))
	for i := range freq {
		freq[i] = uint64(rng.Intn(1000))
	}
	prev := ^uint64(0)
	for k := 9; k <= 17; k++ {
		c, err := NewStaticLWC(k, &freq)
		if err != nil {
			t.Fatal(err)
		}
		z := c.WeightedZeros(&freq)
		if z > prev {
			t.Fatalf("k=%d: zeros %d exceed k=%d's %d", k, z, k-1, prev)
		}
		prev = z
	}
}

func TestStaticLWC17MatchesWeightBound(t *testing.T) {
	// (8,17) has enough high-weight words that no codeword needs more than
	// 3 zeros - the same bound as the algorithmic 3-LWC.
	var freq [256]uint64
	c, err := NewStaticLWC(17, &freq)
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxZeros() > 3 {
		t.Fatalf("(8,17) max zeros = %d, want <= 3", c.MaxZeros())
	}
}

func TestStaticLWCAssignsCheapWordsToFrequentBytes(t *testing.T) {
	var freq [256]uint64
	freq[0x42] = 1_000_000 // overwhelmingly common
	c, err := NewStaticLWC(9, &freq)
	if err != nil {
		t.Fatal(err)
	}
	if w := c.EncodeByte(0x42); w != 0x1ff {
		t.Fatalf("most frequent byte got word %03x, want all-ones 1ff", w)
	}
}

func TestDBIZerosBeatsRawOnSparseData(t *testing.T) {
	var freq [256]uint64
	freq[0x00] = 100 // all-zero bytes dominate
	freq[0xff] = 10
	if DBIZeros(&freq) >= RawZeros(&freq) {
		t.Fatalf("DBI zeros %d not below raw %d", DBIZeros(&freq), RawZeros(&freq))
	}
}

func TestEncodeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for _, c := range allCodecs(t) {
		for n := 0; n < 50; n++ {
			var raw [64]byte
			rng.Read(raw[:])
			blk := bitblock.Block(raw)
			a := c.Encode(&blk)
			b := c.Encode(&blk)
			if a.CountZeros() != b.CountZeros() || a.Beats != b.Beats {
				t.Fatalf("%s: nondeterministic encode", c.Name())
			}
			for beat := 0; beat < a.Beats; beat++ {
				for p := 0; p < a.Width; p++ {
					if a.Driven(p) != b.Driven(p) {
						t.Fatalf("%s: driven mask differs", c.Name())
					}
					if a.Driven(p) && a.Bit(beat, p) != b.Bit(beat, p) {
						t.Fatalf("%s: bit (%d,%d) differs", c.Name(), beat, p)
					}
				}
			}
		}
	}
}

func TestSparseCodesBeatDBIOnSparseData(t *testing.T) {
	// The motivating data class: zero-heavy blocks. Every sparse code must
	// transmit fewer zeros than DBI there.
	var blk bitblock.Block
	for i := 0; i < 16; i++ {
		blk[i*4] = byte(i + 1) // a few small nonzero bytes
	}
	dbiZ := DBI{}.Encode(&blk).CountZeros()
	for _, name := range []string{"milc", "lwc3", "hybrid", "cafo2", "cafo4"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if z := c.Encode(&blk).CountZeros(); z >= dbiZ {
			t.Errorf("%s: %d zeros >= DBI's %d on sparse data", name, z, dbiZ)
		}
	}
}
