package code

import (
	"fmt"
	"math/bits"

	"mil/internal/bitblock"
)

// VLWC is a practical low-weight code in the style of Valentini and Chiani
// (arXiv 2303.06409): each data byte is mapped to the cheapest available
// k-bit codeword whose transmitted zero count never exceeds a configured
// weight bound w, and - unlike the table-driven StaticLWC of the Figure 7
// potential study - the mapping is computed arithmetically by enumerative
// (combinadic) coding, the trick that makes wide low-weight codes
// implementable: rank <-> codeword conversion is a handful of binomial-
// coefficient additions instead of a 2^k lookup.
//
// The width k is the smallest that fits all 256 byte values under the
// bound, sum_{i<=w} C(k,i) >= 256:
//
//	w=2 -> k=23   w=3 -> k=12 (the registry default)   w=4 -> k=9   w=8 -> k=8
//
// Each chip serializes its 8 codewords over its 8 data pins (DBI pins
// parked), padded high to an even beat count, so the default w=3 code is a
// BL12 burst - the Figure 20 intermediate length - with a hard 3-zeros-
// per-byte guarantee that MiLC's opportunistic coding cannot give.
// Codewords are assigned most-frequent-byte-first exactly like OptMem
// (sparse prior by default), so the w=4 instance reproduces the optimal
// memoryless (8,9) assignment arithmetically - pinned by the referee
// tests against the brute-force optimal-scheme reference.
//
// Timing: k beats rounded up to even, plus one CAS cycle for the
// enumerative encoder pipeline (MiLC-class, Table 4).
type VLWC struct {
	w     int // weight bound: max zeros any codeword transmits
	k     int // codeword width in bits
	beats int // burst length: k rounded up to even
	pad   int // per-lane pad bits driven high

	enc    [256]uint32 // byte -> k-bit codeword
	cost   [256]uint8  // byte -> zeros its codeword transmits
	byteOf [256]uint8  // codeword rank -> byte (decode side)
	cum    [10]int     // cum[z] = number of codewords with fewer than z zeros
}

// vlwcMaxWidth bounds k so a lane (8 codewords + pad) fits the 192-bit
// laneCW and the binomial table.
const vlwcMaxWidth = 24

// vlwcBinom[n][r] = C(n,r) for n <= 24, r <= 9: an init-time constant
// Pascal triangle sized for the widest code (w=2, k=23).
var vlwcBinom = func() [vlwcMaxWidth + 1][10]uint32 {
	var t [vlwcMaxWidth + 1][10]uint32
	for n := 0; n <= vlwcMaxWidth; n++ {
		t[n][0] = 1
		for r := 1; r <= 9 && r <= n; r++ {
			t[n][r] = t[n-1][r-1] + t[n-1][r]
		}
	}
	return t
}()

// vlwcWidthFor returns the smallest codeword width fitting 256 values
// under weight bound w.
func vlwcWidthFor(w int) int {
	for k := 8; k <= vlwcMaxWidth; k++ {
		total := 0
		for i := 0; i <= w && i <= k; i++ {
			total += int(vlwcBinom[k][i])
		}
		if total >= 256 {
			return k
		}
	}
	return -1
}

// NewVLWC builds the weight-bounded code for w in [2,8] and the byte
// histogram freq (nil or all-zero selects the sparse-data prior). The
// instance is immutable after construction and safe to share.
func NewVLWC(w int, freq *[256]uint64) (*VLWC, error) {
	if w < 2 || w > 8 {
		return nil, fmt.Errorf("code: vlwc weight bound %d outside [2,8]", w)
	}
	k := vlwcWidthFor(w)
	if k < 0 {
		return nil, fmt.Errorf("code: no width fits vlwc weight bound %d", w)
	}
	c := &VLWC{w: w, k: k, beats: k + k%2}
	c.pad = (c.beats - k) * DataPinsPerChip
	for z := 1; z < len(c.cum); z++ {
		c.cum[z] = c.cum[z-1]
		if z-1 <= w {
			c.cum[z] += int(vlwcBinom[k][z-1])
		}
	}
	order := byteOrderByFrequency(freq)
	for rank, b := range order {
		word := c.wordOfRank(rank)
		c.enc[b] = word
		c.cost[b] = uint8(k - bits.OnesCount32(word))
		c.byteOf[rank] = byte(b)
	}
	return c, nil
}

// defaultVLWC is the shared sparse-prior w=3 instance ByName hands out.
var defaultVLWC = func() *VLWC {
	c, err := NewVLWC(3, nil)
	if err != nil {
		panic(err)
	}
	return c
}()

// DefaultVLWC returns the shared w=3 instance (the registry default).
func DefaultVLWC() *VLWC { return defaultVLWC }

// wordOfRank is the enumerative encoder: rank r selects zero count z (the
// tier the rank falls in) and combination index j within the tier, and the
// j-th z-subset of pin positions (colexicographic combinadic) carries the
// zeros. Rank 0 is the all-ones word.
func (c *VLWC) wordOfRank(r int) uint32 {
	z := 0
	for z+1 < len(c.cum) && c.cum[z+1] <= r {
		z++
	}
	j := uint32(r - c.cum[z])
	word := uint32(1<<c.k) - 1
	for i := z; i >= 1; i-- {
		p := i - 1
		for p+1 <= vlwcMaxWidth && vlwcBinom[p+1][i] <= j {
			p++
		}
		word &^= 1 << p
		j -= vlwcBinom[p][i]
	}
	return word
}

// rankOfWord inverts wordOfRank: the zero positions p_1 < ... < p_z rank
// as cum[z] + sum_i C(p_i, i). Words over the weight bound report an
// error; in-width words under the bound always rank, but ranks past 255
// are outside the code (the caller rejects them).
func (c *VLWC) rankOfWord(word uint32) (int, error) {
	zeros := ^word & (1<<c.k - 1)
	z := bits.OnesCount32(zeros)
	if z > c.w {
		return 0, fmt.Errorf("code: vlwc%d word weight %d over the bound", c.w, z)
	}
	r := c.cum[z]
	for i := 1; zeros != 0; i++ {
		p := bits.TrailingZeros32(zeros)
		zeros &= zeros - 1
		r += int(vlwcBinom[p][i])
	}
	return r, nil
}

// Name implements Codec: the registry default w=3 is plain "vlwc", other
// bounds carry theirs ("vlwc2", "vlwc4", ...).
func (c *VLWC) Name() string {
	if c.w == 3 {
		return "vlwc"
	}
	return fmt.Sprintf("vlwc%d", c.w)
}

// Beats implements Codec.
func (c *VLWC) Beats() int { return c.beats }

// ExtraLatency implements Codec: one CAS cycle for the enumerative
// pipeline, like MiLC.
func (*VLWC) ExtraLatency() int { return 1 }

// WeightBound returns w, the most zeros any codeword transmits.
func (c *VLWC) WeightBound() int { return c.w }

// K returns the codeword width in bits.
func (c *VLWC) K() int { return c.k }

// EncodeByte returns the k-bit codeword for b.
func (c *VLWC) EncodeByte(b byte) uint32 { return c.enc[b] }

// Encode implements Codec.
func (c *VLWC) Encode(blk *bitblock.Block) *bitblock.Burst {
	bu := bitblock.NewBurst(BusWidth, c.beats)
	c.EncodeInto(blk, bu)
	return bu
}

// EncodeInto implements BurstEncoder: each chip's 8 codewords stream over
// its 8 data pins with the pad bits high (free on a POD interface) and the
// DBI pins parked.
func (c *VLWC) EncodeInto(blk *bitblock.Block, bu *bitblock.Burst) {
	bu.Reset(BusWidth, c.beats)
	parkDBIPins(bu)
	var cws [bitblock.Chips]laneCW
	for ch := range cws {
		for b := 0; b < 8; b++ {
			cws[ch].append(uint64(c.enc[blk[b*bitblock.Chips+ch]]), c.k)
		}
		if c.pad > 0 {
			cws[ch].append(1<<c.pad-1, c.pad)
		}
	}
	storeLaneCodewords(bu, &cws, c.beats, DataPinsPerChip)
}

// CostZeros implements ZeroCoster: 64 table lookups; the pad bits are high
// and cost nothing.
func (c *VLWC) CostZeros(blk *bitblock.Block) int {
	z := 0
	for _, b := range blk {
		z += int(c.cost[b])
	}
	return z
}

// Decode implements Codec, running the arithmetic decoder: each word's
// zero positions rank back to a codeword index. Words over the weight
// bound or ranking past the 256 assigned codewords are outside the code
// and report corruption.
func (c *VLWC) Decode(bu *bitblock.Burst) (bitblock.Block, error) {
	var blk bitblock.Block
	if err := checkDims(c.Name(), bu, c.beats); err != nil {
		return blk, err
	}
	if err := checkDriven(c.Name(), bu, false); err != nil {
		return blk, err
	}
	var cws [bitblock.Chips]laneCW
	loadLaneCodewords(bu, &cws, c.beats, DataPinsPerChip)
	for ch := range cws {
		for b := 0; b < 8; b++ {
			word := uint32(cws[ch].uint64(b*c.k, c.k))
			rank, err := c.rankOfWord(word)
			if err != nil {
				return blk, fmt.Errorf("code: chip %d byte %d: %w", ch, b, err)
			}
			if rank >= 256 {
				return blk, fmt.Errorf("code: vlwc%d chip %d byte %d: rank %d outside the code", c.w, ch, b, rank)
			}
			blk[b*bitblock.Chips+ch] = c.byteOf[rank]
		}
	}
	return blk, nil
}
