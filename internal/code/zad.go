package code

import (
	"fmt"

	"mil/internal/bitblock"
)

// ZAD is zero-aware skip-transfer: a chunk of consecutive beats whose data
// is entirely zero is elided from the transfer, and a one-bit-per-chunk
// skip mask on the chip's DBI pin tells the receiver which chunks to
// reconstruct as zeros. Present chunks go on the wire raw. The burst stays
// BL8 - DDR4's burst length is fixed, so skipping buys energy, not bus
// occupancy: a skipped chunk's data beats are driven high (the free level
// on a POD interface) and the receiver never reads them, which models the
// chunk not being transmitted at all. That is also the reliability story
// the fault experiments probe: wire noise cannot corrupt data that is not
// on the wire, so flips landing in a skipped chunk's beats are ignored by
// construction - only the skip-mask sideband itself is exposed.
//
// The chunk granularity g (beats per chunk, a divisor of 8) trades skip
// opportunity against mask exposure. In the plain mode each chunk's mask
// bit appears once, on the DBI pin during the chunk's first beat (the
// other DBI beats idle high, free), so an all-zero chunk costs exactly one
// transmitted zero - but a single flip on that bit silently converts the
// chunk. The resilient mode repeats the mask bit across all g beats of
// its chunk and decodes by majority vote: up to ceil(g/2)-1 flips are
// outvoted and an exact tie is reported as corruption, at the price of g
// zeros per skipped chunk instead of one.
//
// Timing: BL8 with no extra CAS latency - the per-chunk zero detect is an
// 8g-input NOR, simpler than the popcount majority DBI already performs
// at no cost.
type ZAD struct {
	chunk     int // beats per chunk: 1, 2, 4, or 8
	resilient bool
}

// NewZAD returns the skip-transfer codec with the given chunk granularity
// (beats per chunk; must divide the 8-beat burst) and mask mode.
func NewZAD(chunkBeats int, resilient bool) (ZAD, error) {
	switch chunkBeats {
	case 1, 2, 4, 8:
		return ZAD{chunk: chunkBeats, resilient: resilient}, nil
	}
	return ZAD{}, fmt.Errorf("code: zad chunk of %d beats does not divide BL8", chunkBeats)
}

// Name implements Codec: the default 4-beat granularity is plain "zad"
// ("zadr" resilient); other granularities carry theirs ("zad2", "zad8r").
func (z ZAD) Name() string {
	name := "zad"
	if z.chunk != 4 {
		name = fmt.Sprintf("zad%d", z.chunk)
	}
	if z.resilient {
		name += "r"
	}
	return name
}

// Beats implements Codec.
func (ZAD) Beats() int { return 8 }

// ExtraLatency implements Codec.
func (ZAD) ExtraLatency() int { return 0 }

// ChunkBeats returns the chunk granularity in beats.
func (z ZAD) ChunkBeats() int { return z.chunk }

// Resilient reports whether the skip mask is replicated and majority-voted.
func (z ZAD) Resilient() bool { return z.resilient }

// skipMask returns, for chip ch, a bitmask of its skipped chunks (bit i =
// chunk i, beats [i*g, (i+1)*g), is entirely zero).
func (z ZAD) skipMask(blk *bitblock.Block, ch int) uint8 {
	var mask uint8
	for i := 0; i < 8/z.chunk; i++ {
		allZero := true
		for beat := i * z.chunk; beat < (i+1)*z.chunk; beat++ {
			if blk[beat*bitblock.Chips+ch] != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			mask |= 1 << i
		}
	}
	return mask
}

// Encode implements Codec.
func (z ZAD) Encode(blk *bitblock.Block) *bitblock.Burst {
	bu := bitblock.NewBurst(BusWidth, 8)
	z.EncodeInto(blk, bu)
	return bu
}

// EncodeInto implements BurstEncoder.
func (z ZAD) EncodeInto(blk *bitblock.Block, bu *bitblock.Burst) {
	bu.Reset(BusWidth, 8)
	var skip [bitblock.Chips]uint8
	for ch := range skip {
		skip[ch] = z.skipMask(blk, ch)
	}
	for beat := 0; beat < 8; beat++ {
		i := beat / z.chunk
		var lo, hi uint64
		for ch := 0; ch < bitblock.Chips; ch++ {
			skipped := skip[ch]>>i&1 == 1
			group := uint64(blk[beat*bitblock.Chips+ch])
			if skipped {
				group = 0xff // elided beats park at the free level
			}
			// The DBI pin carries the chunk's mask bit (1 = present) on the
			// chunk's first beat - on every beat of the chunk in resilient
			// mode - and idles high otherwise.
			maskBeat := z.resilient || beat == i*z.chunk
			if !maskBeat || !skipped {
				group |= 1 << DataPinsPerChip
			}
			orBeatBits(&lo, &hi, chipDataPin(ch, 0), group, PinsPerChip)
		}
		bu.SetBeatWords(beat, lo, hi)
	}
}

// CostZeros implements ZeroCoster: a present chunk costs its data's own
// zeros (mask bit and idle DBI beats are high, free); a skipped chunk
// costs only its transmitted mask-bit zeros - one, or g replicated copies
// in resilient mode.
func (z ZAD) CostZeros(blk *bitblock.Block) int {
	maskCost := 1
	if z.resilient {
		maskCost = z.chunk
	}
	cost := 0
	for ch := 0; ch < bitblock.Chips; ch++ {
		skip := z.skipMask(blk, ch)
		for i := 0; i < 8/z.chunk; i++ {
			if skip>>i&1 == 1 {
				cost += maskCost
				continue
			}
			for beat := i * z.chunk; beat < (i+1)*z.chunk; beat++ {
				cost += zeros8(blk[beat*bitblock.Chips+ch])
			}
		}
	}
	return cost
}

// Decode implements Codec. A skipped chunk's data beats are never read -
// the reconstruction is all zeros regardless of what the wire carried, the
// skip-transfer immunity the fault differential pins down. The mask
// sideband is the exposed surface: plain mode trusts its single bit;
// resilient mode majority-votes the g copies and reports an exact tie as
// corruption.
func (z ZAD) Decode(bu *bitblock.Burst) (bitblock.Block, error) {
	var blk bitblock.Block
	if err := checkDims(z.Name(), bu, 8); err != nil {
		return blk, err
	}
	if err := checkDriven(z.Name(), bu, true); err != nil {
		return blk, err
	}
	for ch := 0; ch < bitblock.Chips; ch++ {
		for i := 0; i < 8/z.chunk; i++ {
			present := true
			if z.resilient {
				ones := 0
				for beat := i * z.chunk; beat < (i+1)*z.chunk; beat++ {
					if bu.Bit(beat, chipDBIPin(ch)) {
						ones++
					}
				}
				if 2*ones == z.chunk {
					return blk, fmt.Errorf("code: %s chip %d chunk %d: mask vote split %d-%d",
						z.Name(), ch, i, ones, z.chunk-ones)
				}
				present = 2*ones > z.chunk
			} else {
				present = bu.Bit(i*z.chunk, chipDBIPin(ch))
			}
			if !present {
				continue // reconstruct as zeros; the wire beats are not read
			}
			for beat := i * z.chunk; beat < (i+1)*z.chunk; beat++ {
				blk[beat*bitblock.Chips+ch] = byte(bu.BeatBits(beat, chipDataPin(ch, 0), DataPinsPerChip))
			}
		}
	}
	return blk, nil
}
