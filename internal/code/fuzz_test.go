package code

import (
	"testing"

	"mil/internal/bitblock"
)

// fuzzCodecs are the schemes whose round-trip the fuzzers pin down: every
// codec the registry exposes, so a family added to Names() is fuzzed
// without touching this file.
func fuzzCodecs() []Codec {
	var cs []Codec
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			panic(err)
		}
		cs = append(cs, c)
	}
	return cs
}

func fuzzBlock(raw []byte) bitblock.Block {
	var blk bitblock.Block
	copy(blk[:], raw)
	return blk
}

// FuzzRoundTrip asserts decode(encode(x)) == x for every codec on
// arbitrary blocks - the correctness contract everything else (verifying
// phys, write commit, silent-error detection) rests on.
func FuzzRoundTrip(f *testing.F) {
	f.Add(make([]byte, 64))
	f.Add([]byte("the quick brown fox jumps over the lazy dog, twice over again!!!"))
	all := make([]byte, 64)
	for i := range all {
		all[i] = 0xff
	}
	f.Add(all)
	sparse := make([]byte, 64)
	sparse[0], sparse[31], sparse[63] = 0x01, 0x80, 0x42
	f.Add(sparse)
	f.Fuzz(func(t *testing.T, raw []byte) {
		blk := fuzzBlock(raw)
		for _, c := range fuzzCodecs() {
			bu := c.Encode(&blk)
			got, err := c.Decode(bu)
			if err != nil {
				t.Fatalf("%s: decode of own encoding failed: %v", c.Name(), err)
			}
			if got != blk {
				t.Fatalf("%s: round-trip mismatch", c.Name())
			}
		}
	})
}

// FuzzDecodeDims feeds the decoders bursts of arbitrary shape, driven
// mask, and contents: any accepted burst must have the codec's own
// dimensions and canonical driven mask (pinned by re-encoding the decoded
// block), and nothing may panic. This is the audit net for the silent-
// acceptance class of bug: a decoder reading pins its encoder never drove.
func FuzzDecodeDims(f *testing.F) {
	f.Add(uint8(72), uint8(8), uint64(0), uint64(0), []byte("seed"))
	f.Add(uint8(72), uint8(16), ^uint64(0), uint64(0xff), make([]byte, 144))
	f.Add(uint8(64), uint8(8), ^uint64(0), uint64(0), make([]byte, 64))
	f.Fuzz(func(t *testing.T, width, beats uint8, drLo, drHi uint64, raw []byte) {
		w := int(width)%128 + 1
		n := int(beats)%32 + 1
		bu := bitblock.NewBurst(w, n)
		for p := 0; p < w; p++ {
			var bit uint64
			if p < 64 {
				bit = drLo >> p & 1
			} else {
				bit = drHi >> (p - 64) & 1
			}
			bu.SetDriven(p, bit == 1)
		}
		for i, b := range raw {
			beat := i % n
			pin := (i / n * 8) % w
			for j := 0; j < 8 && pin+j < w; j++ {
				bu.SetBit(beat, pin+j, b>>j&1 == 1)
			}
		}
		for _, c := range fuzzCodecs() {
			blk, err := c.Decode(bu)
			if err != nil {
				continue
			}
			if bu.Width != BusWidth || bu.Beats != c.Beats() {
				t.Fatalf("%s: accepted a %dx%d burst, want %dx%d",
					c.Name(), bu.Width, bu.Beats, BusWidth, c.Beats())
			}
			ref := c.Encode(&blk)
			gotLo, gotHi := bu.DrivenWords()
			wantLo, wantHi := ref.DrivenWords()
			if gotLo != wantLo || gotHi != wantHi {
				t.Fatalf("%s: accepted driven mask %#x,%#x, canonical is %#x,%#x",
					c.Name(), gotLo, gotHi, wantLo, wantHi)
			}
		}
	})
}

// FuzzDecodeCorrupted asserts the decoders are total over corrupted bursts:
// any pattern of wire flips yields either an error or a (possibly wrong)
// block - never a panic. The controller's retry path relies on decode
// errors being reported, not thrown.
func FuzzDecodeCorrupted(f *testing.F) {
	f.Add(make([]byte, 64), uint64(0), uint8(3))
	f.Add(make([]byte, 64), uint64(0xdeadbeef), uint8(17))
	f.Fuzz(func(t *testing.T, raw []byte, seed uint64, nflips uint8) {
		blk := fuzzBlock(raw)
		for _, c := range fuzzCodecs() {
			bu := c.Encode(&blk)
			// Deterministic splitmix-style flip positions from the seed.
			s := seed
			for i := 0; i < int(nflips); i++ {
				s += 0x9e3779b97f4a7c15
				z := s
				z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
				z = (z ^ z>>27) * 0x94d049bb133111eb
				z ^= z >> 31
				beat := int(z % uint64(bu.Beats))
				pin := int(z >> 32 % uint64(bu.Width))
				if !bu.Driven(pin) {
					continue
				}
				bu.SetBit(beat, pin, !bu.Bit(beat, pin))
			}
			got, err := c.Decode(bu)
			if err != nil {
				continue // detected: the retry path handles it
			}
			_ = got // silent or clean: both legal outcomes of corruption
		}
	})
}
