package code

import (
	"testing"

	"mil/internal/bitblock"
)

// fuzzCodecs are the schemes whose round-trip the fuzzers pin down: the
// three MiL building blocks plus the raw and hybrid paths.
func fuzzCodecs() []Codec {
	return []Codec{LWC3{}, MiLC{}, DBI{}, Raw{}, Hybrid{}}
}

func fuzzBlock(raw []byte) bitblock.Block {
	var blk bitblock.Block
	copy(blk[:], raw)
	return blk
}

// FuzzRoundTrip asserts decode(encode(x)) == x for every codec on
// arbitrary blocks - the correctness contract everything else (verifying
// phys, write commit, silent-error detection) rests on.
func FuzzRoundTrip(f *testing.F) {
	f.Add(make([]byte, 64))
	f.Add([]byte("the quick brown fox jumps over the lazy dog, twice over again!!!"))
	all := make([]byte, 64)
	for i := range all {
		all[i] = 0xff
	}
	f.Add(all)
	sparse := make([]byte, 64)
	sparse[0], sparse[31], sparse[63] = 0x01, 0x80, 0x42
	f.Add(sparse)
	f.Fuzz(func(t *testing.T, raw []byte) {
		blk := fuzzBlock(raw)
		for _, c := range fuzzCodecs() {
			bu := c.Encode(&blk)
			got, err := c.Decode(bu)
			if err != nil {
				t.Fatalf("%s: decode of own encoding failed: %v", c.Name(), err)
			}
			if got != blk {
				t.Fatalf("%s: round-trip mismatch", c.Name())
			}
		}
	})
}

// FuzzDecodeCorrupted asserts the decoders are total over corrupted bursts:
// any pattern of wire flips yields either an error or a (possibly wrong)
// block - never a panic. The controller's retry path relies on decode
// errors being reported, not thrown.
func FuzzDecodeCorrupted(f *testing.F) {
	f.Add(make([]byte, 64), uint64(0), uint8(3))
	f.Add(make([]byte, 64), uint64(0xdeadbeef), uint8(17))
	f.Fuzz(func(t *testing.T, raw []byte, seed uint64, nflips uint8) {
		blk := fuzzBlock(raw)
		for _, c := range fuzzCodecs() {
			bu := c.Encode(&blk)
			// Deterministic splitmix-style flip positions from the seed.
			s := seed
			for i := 0; i < int(nflips); i++ {
				s += 0x9e3779b97f4a7c15
				z := s
				z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
				z = (z ^ z>>27) * 0x94d049bb133111eb
				z ^= z >> 31
				beat := int(z % uint64(bu.Beats))
				pin := int(z >> 32 % uint64(bu.Width))
				if !bu.Driven(pin) {
					continue
				}
				bu.SetBit(beat, pin, !bu.Bit(beat, pin))
			}
			got, err := c.Decode(bu)
			if err != nil {
				continue // detected: the retry path handles it
			}
			_ = got // silent or clean: both legal outcomes of corruption
		}
	})
}
