package code

import (
	"math/bits"

	"mil/internal/bitblock"
)

// MiLC is the "More is Less Code" of Section 4.3.2 (Figures 10 and 14).
// Each chip's 64-bit slice is laid out as an 8x8 square (row r = the byte
// the chip transmits during beat r). Every row is encoded with the best of
// four candidates - original, inverted, XORed with the previous original
// row, or inverted-and-XORed - selected to minimize the number of zeros,
// including the zeros the two mode bits themselves contribute (the
// "additional constant" of Figure 14). The XOR candidates exploit spatial
// correlation between adjacent rows. The first row has no predecessor; its
// XOR-mode slot instead carries the xorbi bit, which bus-inverts the other
// seven XOR mode bits in the column when that reduces zeros.
//
// The code maps 64 bits to 80 (8 rows x [8 data + xor + invert]), i.e.
// burst length 10 over the chip's 8 data pins; the DBI pins are parked.
type MiLC struct{}

// Name implements Codec.
func (MiLC) Name() string { return "milc" }

// Beats implements Codec.
func (MiLC) Beats() int { return 10 }

// ExtraLatency implements Codec.
func (MiLC) ExtraLatency() int { return 1 }

// milcRow is one encoded row: the 8 wire bits plus its two mode bits.
type milcRow struct {
	wire byte
	xor  bool // raw XOR choice: true = row was XORed with the previous row
	inv  bool // DBI-convention invert bit: false = row transmitted inverted
}

// zeros8 counts zero bits in a byte.
func zeros8(b byte) int { return 8 - bits.OnesCount8(b) }

// boolBitZero returns the zero-count contribution of transmitting b as one
// bit (1 if b is false).
func boolBitZero(b bool) int {
	if b {
		return 0
	}
	return 1
}

// encodeMilcRow picks the cheapest of the four candidates for row cur given
// the previous original row. The xor mode bit is transmitted as 1 when the
// XOR was applied and the invert bit follows the DBI convention (0 =
// inverted), so the per-candidate cost adds the zeros of the mode bits.
// Two popcounts cover all four candidates - inverting a wire with z zeros
// leaves 8-z - and ties resolve in the original candidate order (xor-less
// first, uninverted first) via strict less-than.
func encodeMilcRow(cur, prev byte) milcRow {
	z1 := zeros8(cur)        // candidate (xor=0): mode bits cost 1+0
	z2 := zeros8(cur ^ prev) // candidate (xor=1): mode bits cost 0+0
	best := milcRow{wire: cur, inv: true}
	bestCost := z1 + 1
	if c := 10 - z1; c < bestCost { // inverted: (8-z1) + 1 + 1
		best, bestCost = milcRow{wire: ^cur, inv: false}, c
	}
	if c := z2; c < bestCost {
		best, bestCost = milcRow{wire: cur ^ prev, xor: true, inv: true}, c
	}
	if c := 9 - z2; c < bestCost { // xor+inverted: (8-z2) + 0 + 1
		best = milcRow{wire: ^(cur ^ prev), xor: true, inv: false}
	}
	return best
}

// milcRows fills rows[0:n] with the greedy per-row encoding of the first n
// bytes of lane and decides the xor-column bus inversion: row 0 gets the
// plain invert choice, rows 1..n-1 the four-candidate search, and the
// column of n-1 XOR mode bits is inverted when it carries at least
// invThreshold zeros. It returns the inversion decision and the
// pre-inversion zero count of the xor column; both the full 8-row MiLC code
// and Hybrid's 4-row group are instances.
func milcRows(lane uint64, rows *[8]milcRow, n, invThreshold int) (invertColumn bool, xorZeros int) {
	r0 := byte(lane)
	if zeros8(r0) > 4 {
		rows[0] = milcRow{wire: ^r0, inv: false}
	} else {
		rows[0] = milcRow{wire: r0, inv: true}
	}
	prev := r0
	for r := 1; r < n; r++ {
		cur := byte(lane >> (8 * r))
		rows[r] = encodeMilcRow(cur, prev)
		prev = cur
	}
	for r := 1; r < n; r++ {
		xorZeros += boolBitZero(rows[r].xor)
	}
	return xorZeros >= invThreshold, xorZeros
}

// milcSerializeRows lays rows[0:n] out row-major into cw: row r occupies
// bits [10r, 10r+10) as [8 data][xor slot][invert bit], with row 0's xor
// slot carrying the xorbi bit (DBI convention: 0 = column inverted).
func milcSerializeRows(cw *laneCW, rows *[8]milcRow, n int, invertColumn bool) {
	for r := 0; r < n; r++ {
		cw.append(uint64(rows[r].wire), 8)
		if r == 0 {
			cw.appendBit(!invertColumn)
		} else {
			x := rows[r].xor
			if invertColumn {
				x = !x
			}
			cw.appendBit(x)
		}
		cw.appendBit(rows[r].inv)
	}
}

// milcRowGroupZeros returns the transmitted zero count of rows[0:n] plus
// their mode bits under the column-inversion decision - the arithmetic
// equivalent of serializing the group and counting zeros.
func milcRowGroupZeros(rows *[8]milcRow, n int, invertColumn bool, xorZeros int) int {
	z := 0
	for r := 0; r < n; r++ {
		z += zeros8(rows[r].wire) + boolBitZero(rows[r].inv)
	}
	if invertColumn {
		z += 1 + (n - 1 - xorZeros) // xorbi transmitted 0, column flipped
	} else {
		z += xorZeros
	}
	return z
}

// milcEncodeLane maps a 64-bit lane to its 80-bit codeword. Row 0's xor
// slot is the xorbi bit, which bus-inverts the other seven XOR mode bits
// when the column carries 5+ zeros (invert costs (7-xorZeros)+1).
func milcEncodeLane(lane uint64) laneCW {
	var rows [8]milcRow
	invertColumn, _ := milcRows(lane, &rows, 8, 5)
	var cw laneCW
	milcSerializeRows(&cw, &rows, 8, invertColumn)
	return cw
}

// milcLaneZeros is the cost probe: the zero count of milcEncodeLane(lane)
// without building the codeword.
func milcLaneZeros(lane uint64) int {
	var rows [8]milcRow
	invertColumn, xorZeros := milcRows(lane, &rows, 8, 5)
	return milcRowGroupZeros(&rows, 8, invertColumn, xorZeros)
}

// milcDecodeLane inverts milcEncodeLane.
func milcDecodeLane(cw *laneCW) uint64 {
	xorbi := cw.bit(8)
	invertColumn := !xorbi
	var lane uint64
	var prev byte
	for r := 0; r < 8; r++ {
		wire := byte(cw.uint64(r*10, 8))
		invBit := cw.bit(r*10 + 9)
		if !invBit {
			wire = ^wire
		}
		if r > 0 {
			x := cw.bit(r*10 + 8)
			if invertColumn {
				x = !x
			}
			if x {
				wire ^= prev
			}
		}
		lane |= uint64(wire) << (8 * r)
		prev = wire
	}
	return lane
}

// Encode implements Codec.
func (c MiLC) Encode(blk *bitblock.Block) *bitblock.Burst {
	bu := bitblock.NewBurst(BusWidth, 10)
	c.EncodeInto(blk, bu)
	return bu
}

// EncodeInto implements BurstEncoder.
func (MiLC) EncodeInto(blk *bitblock.Block, bu *bitblock.Burst) {
	bu.Reset(BusWidth, 10)
	parkDBIPins(bu)
	var cws [bitblock.Chips]laneCW
	for c := range cws {
		cws[c] = milcEncodeLane(blk.Lane(c))
	}
	storeLaneCodewords(bu, &cws, 10, 8)
}

// CostZeros implements ZeroCoster.
func (MiLC) CostZeros(blk *bitblock.Block) int {
	z := 0
	for c := 0; c < bitblock.Chips; c++ {
		z += milcLaneZeros(blk.Lane(c))
	}
	return z
}

// Decode implements Codec. MiLC's 80-bit codeword space is dense (every
// mode-bit combination is meaningful), so corruption decodes to a wrong
// block silently; only dimension mismatches are detectable.
func (MiLC) Decode(bu *bitblock.Burst) (bitblock.Block, error) {
	var blk bitblock.Block
	if err := checkDims("milc", bu, 10); err != nil {
		return blk, err
	}
	if err := checkDriven("milc", bu, false); err != nil {
		return blk, err
	}
	var cws [bitblock.Chips]laneCW
	loadLaneCodewords(bu, &cws, 10, 8)
	for c := range cws {
		blk.SetLane(c, milcDecodeLane(&cws[c]))
	}
	return blk, nil
}
