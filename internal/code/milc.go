package code

import (
	"math/bits"

	"mil/internal/bitblock"
)

// MiLC is the "More is Less Code" of Section 4.3.2 (Figures 10 and 14).
// Each chip's 64-bit slice is laid out as an 8x8 square (row r = the byte
// the chip transmits during beat r). Every row is encoded with the best of
// four candidates - original, inverted, XORed with the previous original
// row, or inverted-and-XORed - selected to minimize the number of zeros,
// including the zeros the two mode bits themselves contribute (the
// "additional constant" of Figure 14). The XOR candidates exploit spatial
// correlation between adjacent rows. The first row has no predecessor; its
// XOR-mode slot instead carries the xorbi bit, which bus-inverts the other
// seven XOR mode bits in the column when that reduces zeros.
//
// The code maps 64 bits to 80 (8 rows x [8 data + xor + invert]), i.e.
// burst length 10 over the chip's 8 data pins; the DBI pins are parked.
type MiLC struct{}

// Name implements Codec.
func (MiLC) Name() string { return "milc" }

// Beats implements Codec.
func (MiLC) Beats() int { return 10 }

// ExtraLatency implements Codec.
func (MiLC) ExtraLatency() int { return 1 }

// milcRow is one encoded row: the 8 wire bits plus its two mode bits.
type milcRow struct {
	wire byte
	xor  bool // raw XOR choice: true = row was XORed with the previous row
	inv  bool // DBI-convention invert bit: false = row transmitted inverted
}

// zeros8 counts zero bits in a byte.
func zeros8(b byte) int { return 8 - bits.OnesCount8(b) }

// boolBitZero returns the zero-count contribution of transmitting b as one
// bit (1 if b is false).
func boolBitZero(b bool) int {
	if b {
		return 0
	}
	return 1
}

// encodeMilcRow picks the cheapest of the four candidates for row cur given
// the previous original row. The xor mode bit is transmitted as 1 when the
// XOR was applied and the invert bit follows the DBI convention (0 =
// inverted), so the per-candidate cost adds the zeros of the mode bits.
func encodeMilcRow(cur, prev byte) milcRow {
	best := milcRow{}
	bestCost := 1 << 30
	for _, xor := range []bool{false, true} {
		for _, invert := range []bool{false, true} {
			wire := cur
			if xor {
				wire ^= prev
			}
			if invert {
				wire = ^wire
			}
			invBit := !invert
			cost := zeros8(wire) + boolBitZero(xor) + boolBitZero(invBit)
			if cost < bestCost {
				bestCost = cost
				best = milcRow{wire: wire, xor: xor, inv: invBit}
			}
		}
	}
	return best
}

// milcEncodeLane maps a 64-bit lane to its 80-bit codeword, returned as a
// bit vector laid out row-major: row r occupies bits [10r, 10r+10) as
// [8 data][xor slot][invert bit]. Row 0's xor slot is the xorbi bit.
func milcEncodeLane(lane uint64) *bitblock.Bits {
	var rows [8]milcRow

	// Row 0: no predecessor, only the invert choice.
	r0 := byte(lane)
	if zeros8(r0) > 4 {
		rows[0] = milcRow{wire: ^r0, inv: false}
	} else {
		rows[0] = milcRow{wire: r0, inv: true}
	}
	prev := byte(lane)
	for r := 1; r < 8; r++ {
		cur := byte(lane >> (8 * r))
		rows[r] = encodeMilcRow(cur, prev)
		prev = cur
	}

	// xorbi: bus-invert the seven XOR mode bits when they carry too many
	// zeros. DBI convention: xorbi = 0 means the column was inverted.
	xorZeros := 0
	for r := 1; r < 8; r++ {
		xorZeros += boolBitZero(rows[r].xor)
	}
	invertColumn := xorZeros >= 5 // invert costs (7-xorZeros)+1, keep costs xorZeros
	xorbi := !invertColumn

	out := bitblock.NewBits(80)
	for r := 0; r < 8; r++ {
		out.Append(uint64(rows[r].wire), 8)
		if r == 0 {
			out.AppendBit(xorbi)
		} else {
			x := rows[r].xor
			if invertColumn {
				x = !x
			}
			out.AppendBit(x)
		}
		out.AppendBit(rows[r].inv)
	}
	return out
}

// milcDecodeLane inverts milcEncodeLane.
func milcDecodeLane(cw *bitblock.Bits) uint64 {
	xorbi := cw.Get(8)
	invertColumn := !xorbi
	var lane uint64
	var prev byte
	for r := 0; r < 8; r++ {
		wire := byte(cw.Uint64(r*10, 8))
		invBit := cw.Get(r*10 + 9)
		if !invBit {
			wire = ^wire
		}
		if r > 0 {
			x := cw.Get(r*10 + 8)
			if invertColumn {
				x = !x
			}
			if x {
				wire ^= prev
			}
		}
		lane |= uint64(wire) << (8 * r)
		prev = wire
	}
	return lane
}

// Encode implements Codec.
func (MiLC) Encode(blk *bitblock.Block) *bitblock.Burst {
	bu := bitblock.NewBurst(BusWidth, 10)
	parkDBIPins(bu)
	for c := 0; c < bitblock.Chips; c++ {
		cw := milcEncodeLane(blk.Lane(c))
		for beat := 0; beat < 10; beat++ {
			bu.SetBeat(beat, chipDataPin(c, 0), cw.Uint64(beat*8, 8), 8)
		}
	}
	return bu
}

// Decode implements Codec. MiLC's 80-bit codeword space is dense (every
// mode-bit combination is meaningful), so corruption decodes to a wrong
// block silently; only dimension mismatches are detectable.
func (MiLC) Decode(bu *bitblock.Burst) (bitblock.Block, error) {
	var blk bitblock.Block
	if err := checkDims("milc", bu, 10); err != nil {
		return blk, err
	}
	for c := 0; c < bitblock.Chips; c++ {
		cw := bitblock.NewBits(80)
		for beat := 0; beat < 10; beat++ {
			cw.Append(bu.BeatBits(beat, chipDataPin(c, 0), 8), 8)
		}
		blk.SetLane(c, milcDecodeLane(cw))
	}
	return blk, nil
}
