package code

import (
	"fmt"
	"math/bits"

	"mil/internal/bitblock"
)

// CAFO adapts the cost-aware flip optimization of Maddah et al. (HPCA'15)
// to the MiL framework exactly as Section 7.2 describes: two-dimensional
// bus inversion over the same 8x8 per-chip square MiLC uses, iterating row
// and column flip passes. Each iteration costs one DRAM cycle of encode
// latency, so CAFO2 (one row pass + one column pass) adds 2 cycles to tCL
// and CAFO4 adds 4. The flags use the DBI convention (flag 0 = flipped) so
// the codeword is 64 data + 8 row flags + 8 column flags = 80 bits = burst
// length 10 over the 8 data pins, the same bandwidth overhead as MiLC.
type CAFO struct {
	iters int
}

// NewCAFO returns a CAFO codec running the given number of alternating
// row/column passes (>= 1). The paper evaluates 2 and 4.
func NewCAFO(iters int) CAFO {
	if iters < 1 {
		panic(fmt.Sprintf("code: CAFO iterations %d < 1", iters))
	}
	return CAFO{iters: iters}
}

// Name implements Codec.
func (c CAFO) Name() string { return fmt.Sprintf("cafo%d", c.iters) }

// Beats implements Codec.
func (CAFO) Beats() int { return 10 }

// ExtraLatency implements Codec.
func (c CAFO) ExtraLatency() int { return c.iters }

// Iterations returns the configured pass count.
func (c CAFO) Iterations() int { return c.iters }

// cafoLane holds the encoder state for one 8x8 square. Flips are kept as
// bitmasks so the wire matrix is data[r] ^ (rowFlip[r] ? 0xff : 0) ^
// colFlip, never rebuilt per bit: a flipped column is one XOR mask and a
// flipped row one complement, which keeps each pass O(64) instead of the
// O(8^3) the naive per-cell rebuild costs.
type cafoLane struct {
	data    [8]byte // original rows
	rowFlip byte    // bit r = row r transmitted inverted
	colFlip byte    // bit j = column j inverted
}

// wireRow returns row r after the current flips.
func (l *cafoLane) wireRow(r int) byte {
	w := l.data[r]
	if l.rowFlip>>r&1 == 1 {
		w = ^w
	}
	return w ^ l.colFlip
}

// rowPass greedily picks each row's flip to minimize that row's zeros plus
// the flag bit's own zero cost. Row decisions are independent (a row flip
// touches no other row), so each costs one popcount: keeping the row costs
// its zeros z, flipping costs (8-z)+1 for the flag transmitted as 0.
// Returns true if any flip changed.
func (l *cafoLane) rowPass() bool {
	changed := false
	for r := 0; r < 8; r++ {
		keep := l.rowFlip >> r & 1
		z := zeros8(l.data[r] ^ l.colFlip)
		var best byte
		if 8-z+1 < z {
			best = 1
		}
		l.rowFlip = l.rowFlip&^(1<<r) | best<<r
		if best != keep {
			changed = true
		}
	}
	return changed
}

// colPass is rowPass transposed: column decisions are likewise independent
// (column j's zeros depend only on bit j of each row), so one pass over the
// 8x8 square yields every column's zero count.
func (l *cafoLane) colPass() bool {
	var colOnes [8]int
	for r := 0; r < 8; r++ {
		w := l.data[r]
		if l.rowFlip>>r&1 == 1 {
			w = ^w
		}
		for j := 0; j < 8; j++ {
			colOnes[j] += int(w >> j & 1)
		}
	}
	changed := false
	for j := 0; j < 8; j++ {
		keep := l.colFlip >> j & 1
		z := 8 - colOnes[j]
		var best byte
		if 8-z+1 < z {
			best = 1
		}
		l.colFlip = l.colFlip&^(1<<j) | best<<j
		if best != keep {
			changed = true
		}
	}
	return changed
}

// optimize runs the alternating row/column passes with early convergence.
func (l *cafoLane) optimize(lane uint64, iters int) {
	for r := 0; r < 8; r++ {
		l.data[r] = byte(lane >> (8 * r))
	}
	for it := 0; it < iters; it++ {
		var changed bool
		if it%2 == 0 {
			changed = l.rowPass()
		} else {
			changed = l.colPass()
		}
		if !changed && it > 0 {
			break // converged early; remaining iterations are no-ops
		}
	}
}

// cafoEncodeLane runs the alternating passes and serializes the 80-bit
// codeword: 8 wire rows, then 8 row flags, then 8 column flags, each flag
// transmitted as 1 when no flip was applied.
func cafoEncodeLane(lane uint64, iters int) laneCW {
	var l cafoLane
	l.optimize(lane, iters)
	var cw laneCW
	for r := 0; r < 8; r++ {
		cw.append(uint64(l.wireRow(r)), 8)
	}
	cw.append(uint64(^l.rowFlip), 8) // flag bit r = 1 when row r not flipped
	cw.append(uint64(^l.colFlip), 8)
	return cw
}

// cafoLaneZeros is the cost probe: the zero count of the lane's codeword
// without serializing it - each flipped row/column flag is itself one
// transmitted zero.
func cafoLaneZeros(lane uint64, iters int) int {
	var l cafoLane
	l.optimize(lane, iters)
	z := 0
	for r := 0; r < 8; r++ {
		z += zeros8(l.wireRow(r))
	}
	return z + bits.OnesCount8(l.rowFlip) + bits.OnesCount8(l.colFlip)
}

// cafoDecodeLane inverts cafoEncodeLane.
func cafoDecodeLane(cw *laneCW) uint64 {
	colMask := ^byte(cw.uint64(72, 8)) // flag 0 = column flipped
	rowMask := ^byte(cw.uint64(64, 8))
	var lane uint64
	for r := 0; r < 8; r++ {
		w := byte(cw.uint64(r*8, 8)) ^ colMask
		if rowMask>>r&1 == 1 {
			w = ^w
		}
		lane |= uint64(w) << (8 * r)
	}
	return lane
}

// Encode implements Codec.
func (c CAFO) Encode(blk *bitblock.Block) *bitblock.Burst {
	bu := bitblock.NewBurst(BusWidth, 10)
	c.EncodeInto(blk, bu)
	return bu
}

// EncodeInto implements BurstEncoder.
func (c CAFO) EncodeInto(blk *bitblock.Block, bu *bitblock.Burst) {
	bu.Reset(BusWidth, 10)
	parkDBIPins(bu)
	var cws [bitblock.Chips]laneCW
	for ch := range cws {
		cws[ch] = cafoEncodeLane(blk.Lane(ch), c.iters)
	}
	storeLaneCodewords(bu, &cws, 10, 8)
}

// CostZeros implements ZeroCoster.
func (c CAFO) CostZeros(blk *bitblock.Block) int {
	z := 0
	for ch := 0; ch < bitblock.Chips; ch++ {
		z += cafoLaneZeros(blk.Lane(ch), c.iters)
	}
	return z
}

// Decode implements Codec. Like MiLC, every flag combination is valid, so
// only dimension mismatches are detectable.
func (CAFO) Decode(bu *bitblock.Burst) (bitblock.Block, error) {
	var blk bitblock.Block
	if err := checkDims("cafo", bu, 10); err != nil {
		return blk, err
	}
	if err := checkDriven("cafo", bu, false); err != nil {
		return blk, err
	}
	var cws [bitblock.Chips]laneCW
	loadLaneCodewords(bu, &cws, 10, 8)
	for ch := range cws {
		blk.SetLane(ch, cafoDecodeLane(&cws[ch]))
	}
	return blk, nil
}
