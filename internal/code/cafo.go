package code

import (
	"fmt"

	"mil/internal/bitblock"
)

// CAFO adapts the cost-aware flip optimization of Maddah et al. (HPCA'15)
// to the MiL framework exactly as Section 7.2 describes: two-dimensional
// bus inversion over the same 8x8 per-chip square MiLC uses, iterating row
// and column flip passes. Each iteration costs one DRAM cycle of encode
// latency, so CAFO2 (one row pass + one column pass) adds 2 cycles to tCL
// and CAFO4 adds 4. The flags use the DBI convention (flag 0 = flipped) so
// the codeword is 64 data + 8 row flags + 8 column flags = 80 bits = burst
// length 10 over the 8 data pins, the same bandwidth overhead as MiLC.
type CAFO struct {
	iters int
}

// NewCAFO returns a CAFO codec running the given number of alternating
// row/column passes (>= 1). The paper evaluates 2 and 4.
func NewCAFO(iters int) CAFO {
	if iters < 1 {
		panic(fmt.Sprintf("code: CAFO iterations %d < 1", iters))
	}
	return CAFO{iters: iters}
}

// Name implements Codec.
func (c CAFO) Name() string { return fmt.Sprintf("cafo%d", c.iters) }

// Beats implements Codec.
func (CAFO) Beats() int { return 10 }

// ExtraLatency implements Codec.
func (c CAFO) ExtraLatency() int { return c.iters }

// Iterations returns the configured pass count.
func (c CAFO) Iterations() int { return c.iters }

// cafoLane holds the encoder state for one 8x8 square.
type cafoLane struct {
	data    [8]byte // original rows
	rowFlip [8]bool
	colFlip [8]bool
}

// wireRow returns row r after the current flips.
func (l *cafoLane) wireRow(r int) byte {
	w := l.data[r]
	if l.rowFlip[r] {
		w = ^w
	}
	var colMask byte
	for j := 0; j < 8; j++ {
		if l.colFlip[j] {
			colMask |= 1 << j
		}
	}
	return w ^ colMask
}

// rowPass greedily picks each row's flip to minimize that row's zeros plus
// the flag bit's own zero cost. Returns true if any flip changed.
func (l *cafoLane) rowPass() bool {
	changed := false
	for r := 0; r < 8; r++ {
		keep := l.rowFlip[r]

		l.rowFlip[r] = false
		costOff := zeros8(l.wireRow(r)) // flag transmitted as 1: free

		l.rowFlip[r] = true
		costOn := zeros8(l.wireRow(r)) + 1 // flag transmitted as 0

		best := costOn < costOff
		l.rowFlip[r] = best
		if best != keep {
			changed = true
		}
	}
	return changed
}

// wireColZeros counts zeros in column j under the current flips.
func (l *cafoLane) wireColZeros(j int) int {
	n := 0
	for r := 0; r < 8; r++ {
		if l.wireRow(r)>>j&1 == 0 {
			n++
		}
	}
	return n
}

// colPass is rowPass transposed.
func (l *cafoLane) colPass() bool {
	changed := false
	for j := 0; j < 8; j++ {
		keep := l.colFlip[j]

		l.colFlip[j] = false
		costOff := l.wireColZeros(j)

		l.colFlip[j] = true
		costOn := l.wireColZeros(j) + 1

		best := costOn < costOff
		l.colFlip[j] = best
		if best != keep {
			changed = true
		}
	}
	return changed
}

// cafoEncodeLane runs the alternating passes and serializes the 80-bit
// codeword: 8 wire rows, then 8 row flags, then 8 column flags, each flag
// transmitted as 1 when no flip was applied.
func cafoEncodeLane(lane uint64, iters int) *bitblock.Bits {
	var l cafoLane
	for r := 0; r < 8; r++ {
		l.data[r] = byte(lane >> (8 * r))
	}
	for it := 0; it < iters; it++ {
		var changed bool
		if it%2 == 0 {
			changed = l.rowPass()
		} else {
			changed = l.colPass()
		}
		if !changed && it > 0 {
			break // converged early; remaining iterations are no-ops
		}
	}
	out := bitblock.NewBits(80)
	for r := 0; r < 8; r++ {
		out.Append(uint64(l.wireRow(r)), 8)
	}
	for r := 0; r < 8; r++ {
		out.AppendBit(!l.rowFlip[r])
	}
	for j := 0; j < 8; j++ {
		out.AppendBit(!l.colFlip[j])
	}
	return out
}

// cafoDecodeLane inverts cafoEncodeLane.
func cafoDecodeLane(cw *bitblock.Bits) uint64 {
	var colMask byte
	for j := 0; j < 8; j++ {
		if !cw.Get(72 + j) {
			colMask |= 1 << j
		}
	}
	var lane uint64
	for r := 0; r < 8; r++ {
		w := byte(cw.Uint64(r*8, 8)) ^ colMask
		if !cw.Get(64 + r) {
			w = ^w
		}
		lane |= uint64(w) << (8 * r)
	}
	return lane
}

// Encode implements Codec.
func (c CAFO) Encode(blk *bitblock.Block) *bitblock.Burst {
	bu := bitblock.NewBurst(BusWidth, 10)
	parkDBIPins(bu)
	for ch := 0; ch < bitblock.Chips; ch++ {
		cw := cafoEncodeLane(blk.Lane(ch), c.iters)
		for beat := 0; beat < 10; beat++ {
			bu.SetBeat(beat, chipDataPin(ch, 0), cw.Uint64(beat*8, 8), 8)
		}
	}
	return bu
}

// Decode implements Codec. Like MiLC, every flag combination is valid, so
// only dimension mismatches are detectable.
func (CAFO) Decode(bu *bitblock.Burst) (bitblock.Block, error) {
	var blk bitblock.Block
	if err := checkDims("cafo", bu, 10); err != nil {
		return blk, err
	}
	for ch := 0; ch < bitblock.Chips; ch++ {
		cw := bitblock.NewBits(80)
		for beat := 0; beat < 10; beat++ {
			cw.Append(bu.BeatBits(beat, chipDataPin(ch, 0), 8), 8)
		}
		blk.SetLane(ch, cafoDecodeLane(cw))
	}
	return blk, nil
}
