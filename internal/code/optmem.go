package code

import (
	"fmt"
	"math/bits"
	"sort"

	"mil/internal/bitblock"
)

// OptMem is the optimal memoryless bus encoding of Chee, Colbourn et al.
// (arXiv 0712.2640) instantiated for the Figure 12 rank: each data byte is
// mapped to one of the 2^8 lowest-weight 9-bit codewords of the widened
// per-chip bus (8 data pins plus the DBI pin, the same wire budget DBI
// already pays). Ranking all 512 nine-bit words by zero count, the best 256
// are exactly those with at most four zeros (1+9+36+84+126 = 256), so the
// code is a perfect packing of the weight-<=4 sphere and no memoryless
// (8,9) code can transmit fewer zeros for any byte-frequency distribution
// once the cheapest words go to the most frequent bytes.
//
// Codewords are assigned from a byte-frequency ranking: NewOptMem takes a
// histogram, and the default instance uses the sparse-data prior the
// paper's traffic study motivates (zero and near-zero bytes dominate), so
// 0x00 gets the all-ones codeword - one zero cheaper than DBI's inverted
// 0x00, which still pays for its DBI flag. Encode and decode are pure
// table lookups (256-entry forward, 512-entry inverse), the implementation
// the paper deems acceptable only because k = 9 keeps the tables tiny.
//
// Timing: BL8 with no extra CAS latency - the lookup happens in the pin
// mux, like DBI's inversion - so optmem shares the "fixed8" front-end
// timing class with the baseline.
type OptMem struct {
	enc  [256]uint16 // byte -> 9-bit codeword
	cost [256]uint8  // byte -> zeros its codeword transmits
	dec  [512]int16  // 9-bit word -> byte, -1 = outside the code
}

// optMemWordBits is the widened per-byte bus: 8 data pins + the DBI pin.
const optMemWordBits = PinsPerChip

// byteOrderByFrequency ranks the 256 byte values most-frequent-first for
// codeword assignment: by descending count for a real histogram (ties by
// value), or - for a nil or all-zero histogram - by the sparse-data prior:
// descending zero count, so 0x00 outranks everything and dense bytes rank
// last. Shared by OptMem and VLWC so their w=4/k=9 instances assign
// identically (pinned by TestVLWCWeight4MatchesOptMem).
func byteOrderByFrequency(freq *[256]uint64) [256]int {
	var order [256]int
	for i := range order {
		order[i] = i
	}
	empty := true
	if freq != nil {
		for _, f := range freq {
			if f != 0 {
				empty = false
				break
			}
		}
	}
	if empty {
		sort.SliceStable(order[:], func(i, j int) bool {
			return zeros8(byte(order[i])) > zeros8(byte(order[j]))
		})
		return order
	}
	sort.SliceStable(order[:], func(i, j int) bool {
		return freq[order[i]] > freq[order[j]]
	})
	return order
}

// NewOptMem builds the optimal memoryless (8,9) code for the byte-pattern
// histogram freq (nil or all-zero selects the sparse-data prior). The
// instance is immutable after construction and safe to share.
func NewOptMem(freq *[256]uint64) *OptMem {
	// The 256 cheapest 9-bit words, by ascending zero count (ties by value
	// for determinism): exactly the words with popcount >= 5.
	words := make([]uint16, 0, 256)
	for ones := optMemWordBits; ones >= 5; ones-- {
		for w := uint16(0); w < 1<<optMemWordBits; w++ {
			if bits.OnesCount16(w) == ones {
				words = append(words, w)
			}
		}
	}
	c := &OptMem{}
	for i := range c.dec {
		c.dec[i] = -1
	}
	order := byteOrderByFrequency(freq)
	for rank, b := range order {
		w := words[rank]
		c.enc[b] = w
		c.cost[b] = uint8(optMemWordBits - bits.OnesCount16(w))
		c.dec[w] = int16(b)
	}
	return c
}

// defaultOptMem is the shared sparse-prior instance ByName hands out.
var defaultOptMem = NewOptMem(nil)

// DefaultOptMem returns the shared instance built with the sparse-data
// prior (the registry configuration).
func DefaultOptMem() *OptMem { return defaultOptMem }

// Name implements Codec.
func (*OptMem) Name() string { return "optmem" }

// Beats implements Codec.
func (*OptMem) Beats() int { return 8 }

// ExtraLatency implements Codec: the table lookup sits in the pin mux like
// DBI's inversion, adding no CAS cycles.
func (*OptMem) ExtraLatency() int { return 0 }

// EncodeByte returns the 9-bit codeword for b.
func (c *OptMem) EncodeByte(b byte) uint16 { return c.enc[b] }

// DecodeWord returns the byte a 9-bit codeword stands for, and whether the
// word is inside the code at all (half the word space is not, which is
// what makes corruption detectable).
func (c *OptMem) DecodeWord(w uint16) (byte, bool) {
	b := c.dec[w&0x1ff]
	return byte(b), b >= 0
}

// Encode implements Codec.
func (c *OptMem) Encode(blk *bitblock.Block) *bitblock.Burst {
	bu := bitblock.NewBurst(BusWidth, 8)
	c.EncodeInto(blk, bu)
	return bu
}

// EncodeInto implements BurstEncoder: like DBI, each chip's 9-bit group for
// beat b is the codeword of the byte it transmits during that beat.
func (c *OptMem) EncodeInto(blk *bitblock.Block, bu *bitblock.Burst) {
	bu.Reset(BusWidth, 8)
	for beat := 0; beat < 8; beat++ {
		var lo, hi uint64
		for ch := 0; ch < bitblock.Chips; ch++ {
			orBeatBits(&lo, &hi, chipDataPin(ch, 0), uint64(c.enc[blk[beat*bitblock.Chips+ch]]), PinsPerChip)
		}
		bu.SetBeatWords(beat, lo, hi)
	}
}

// CostZeros implements ZeroCoster: 64 table lookups.
func (c *OptMem) CostZeros(blk *bitblock.Block) int {
	z := 0
	for _, b := range blk {
		z += int(c.cost[b])
	}
	return z
}

// Decode implements Codec. Only half of the 512 nine-bit words are in the
// code, so random corruption of a group is detected with probability 1/2
// per flip pattern - strictly better than DBI, which accepts every group.
func (c *OptMem) Decode(bu *bitblock.Burst) (bitblock.Block, error) {
	var blk bitblock.Block
	if err := checkDims("optmem", bu, 8); err != nil {
		return blk, err
	}
	if err := checkDriven("optmem", bu, true); err != nil {
		return blk, err
	}
	for beat := 0; beat < 8; beat++ {
		for ch := 0; ch < bitblock.Chips; ch++ {
			w := uint16(bu.BeatBits(beat, chipDataPin(ch, 0), PinsPerChip))
			b := c.dec[w]
			if b < 0 {
				return blk, fmt.Errorf("code: optmem chip %d beat %d: word %#03x outside the code", ch, beat, w)
			}
			blk[beat*bitblock.Chips+ch] = byte(b)
		}
	}
	return blk, nil
}
