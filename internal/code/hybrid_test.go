package code

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mil/internal/bitblock"
)

func TestHybridRoundTrip(t *testing.T) {
	f := func(raw [64]byte) bool {
		blk := bitblock.Block(raw)
		out, err := Hybrid{}.Decode(Hybrid{}.Encode(&blk))
		return err == nil && out == blk
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridLaneRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for n := 0; n < 5000; n++ {
		lane := rng.Uint64()
		cw := hybridEncodeLane(lane)
		if got, err := hybridDecodeLane(&cw); err != nil || got != lane {
			t.Fatalf("lane %016x decoded to %016x (%v)", lane, got, err)
		}
	}
}

func TestHybridSitsBetweenMiLCAndLWC3(t *testing.T) {
	// On zero-heavy data (3-LWC's strength) the hybrid's zeros must land
	// between MiLC's and 3-LWC's, and its burst length strictly between.
	var blk bitblock.Block // lots of 0x00 bytes
	for i := 0; i < 16; i++ {
		blk[i] = byte(i)
	}
	milcZ := MiLC{}.Encode(&blk).CountZeros()
	hybZ := Hybrid{}.Encode(&blk).CountZeros()
	lwcZ := LWC3{}.Encode(&blk).CountZeros()
	if !(lwcZ <= hybZ && hybZ <= milcZ) {
		t.Fatalf("zeros not ordered: lwc3=%d hybrid=%d milc=%d", lwcZ, hybZ, milcZ)
	}
	if h := (Hybrid{}).Beats(); h <= (MiLC{}).Beats() || h >= (LWC3{}).Beats() {
		t.Fatalf("hybrid beats %d not intermediate", h)
	}
}

func TestHybridPadBitsHigh(t *testing.T) {
	var blk bitblock.Block
	cw := hybridEncodeLane(blk.Lane(0))
	for i := hybridLaneBits - 4; i < hybridLaneBits; i++ {
		if !cw.bit(i) {
			t.Fatalf("pad bit %d low", i)
		}
	}
}

func TestHybridByName(t *testing.T) {
	c, err := ByName("hybrid")
	if err != nil || c.Name() != "hybrid" {
		t.Fatalf("ByName(hybrid) = %v, %v", c, err)
	}
}
