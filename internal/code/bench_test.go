package code

import (
	"math/rand"
	"testing"

	"mil/internal/bitblock"
)

// Per-codec encode/decode micro-benchmarks over the whole registry. The
// codecs sit on the simulator's innermost loop (every column command encodes
// once and decodes once), so their cost dominates sweep wall-clock;
// cmd/milbench samples these numbers into BENCH_sweep.json alongside the
// end-to-end sweep timings.

// benchBlocks returns a fixed pool of pseudorandom cache lines; random data
// is the codecs' worst case (no sparsity to exploit, every coset searched).
func benchBlocks(n int) []bitblock.Block {
	rng := rand.New(rand.NewSource(0x5eed))
	out := make([]bitblock.Block, n)
	for i := range out {
		rng.Read(out[i][:])
	}
	return out
}

func BenchmarkEncode(b *testing.B) {
	blocks := benchBlocks(64)
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(blocks[0])))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bu := c.Encode(&blocks[i%len(blocks)])
				if bu.Beats != c.Beats() {
					b.Fatalf("%s: %d-beat burst, want %d", name, bu.Beats, c.Beats())
				}
			}
		})
	}
}

// BenchmarkEncodeInto is the steady-state encode path the phys run: one
// scratch burst reused across operations. allocs/op must report 0.
func BenchmarkEncodeInto(b *testing.B) {
	blocks := benchBlocks(64)
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var scratch bitblock.Burst
			EncodeInto(c, &blocks[0], &scratch) // grow the scratch outside the timer
			b.SetBytes(int64(len(blocks[0])))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bu := EncodeInto(c, &blocks[i%len(blocks)], &scratch)
				if bu.Beats != c.Beats() {
					b.Fatalf("%s: %d-beat burst, want %d", name, bu.Beats, c.Beats())
				}
			}
		})
	}
}

// BenchmarkCostZeros measures the arithmetic cost probe the write
// optimization runs per candidate codec; it must be allocation-free and
// cheaper than encoding.
func BenchmarkCostZeros(b *testing.B) {
	blocks := benchBlocks(64)
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(blocks[0])))
			b.ReportAllocs()
			acc := 0
			for i := 0; i < b.N; i++ {
				acc += CostZeros(c, &blocks[i%len(blocks)])
			}
			if acc < 0 {
				b.Fatal("impossible zero count")
			}
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	blocks := benchBlocks(64)
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		// Encode outside the timed loop so Decode is measured alone.
		bursts := make([]*bitblock.Burst, len(blocks))
		for i := range blocks {
			bursts[i] = c.Encode(&blocks[i])
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(blocks[0])))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				j := i % len(bursts)
				got, err := c.Decode(bursts[j])
				if err != nil || got != blocks[j] {
					b.Fatalf("%s: round trip failed: %v", name, err)
				}
			}
		})
	}
}
