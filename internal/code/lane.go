package code

import "mil/internal/bitblock"

// This file is the codecs' shared kernel layer: a fixed-capacity,
// stack-allocated codeword vector (laneCW) replacing bitblock.Bits on the
// encode/decode hot paths, and word-parallel beat (de)serialization between
// the eight per-chip codewords and the 72-pin bus image. See DESIGN.md
// "Kernel layer".

// laneCWWords bounds the per-chip codeword at 192 bits; the largest lane
// payload is 3-LWC's 144 bits (16 beats x 9 pins).
const laneCWWords = 3

// laneCW is a fixed-capacity bit vector holding one chip's codeword. It is
// a value type so lane encoders build codewords entirely on the stack; bit 0
// is the first bit appended, matching bitblock.Bits.
type laneCW struct {
	w [laneCWWords]uint64
	n int
}

// append adds the low nbits (1..64) of v. The vector must have been zeroed
// (the zero value is), so bits are ORed in place.
func (l *laneCW) append(v uint64, nbits int) {
	if nbits < 64 {
		v &= 1<<nbits - 1
	}
	w, s := l.n/64, l.n%64
	l.w[w] |= v << s
	if s+nbits > 64 {
		l.w[w+1] |= v >> (64 - s)
	}
	l.n += nbits
}

// appendBit adds a single bit.
func (l *laneCW) appendBit(v bool) {
	if v {
		l.append(1, 1)
	} else {
		l.n++
	}
}

// uint64 extracts nbits (1..64) starting at bit offset off.
func (l *laneCW) uint64(off, nbits int) uint64 {
	w, s := off/64, off%64
	v := l.w[w] >> s
	if s+nbits > 64 {
		v |= l.w[w+1] << (64 - s)
	}
	if nbits < 64 {
		v &= 1<<nbits - 1
	}
	return v
}

// bit returns bit i.
func (l *laneCW) bit(i int) bool { return l.w[i/64]>>(i%64)&1 == 1 }

// orBeatBits ORs the low nbits (1..63) of v into a two-word beat image at
// bit position pos. The image must start zeroed.
func orBeatBits(lo, hi *uint64, pos int, v uint64, nbits int) {
	v &= 1<<nbits - 1
	if pos < 64 {
		*lo |= v << pos
		if pos+nbits > 64 {
			*hi |= v >> (64 - pos)
		}
	} else {
		*hi |= v << (pos - 64)
	}
}

// beatBitsOf extracts nbits (1..63) at bit position pos from a two-word beat
// image, the inverse of orBeatBits.
func beatBitsOf(lo, hi uint64, pos, nbits int) uint64 {
	var v uint64
	if pos < 64 {
		v = lo >> pos
		if pos+nbits > 64 {
			v |= hi << (64 - pos)
		}
	} else {
		v = hi >> (pos - 64)
	}
	return v & (1<<nbits - 1)
}

// storeLaneCodewords serializes the eight per-chip codewords onto the bus
// burst beat-major: chip c's codeword bits [pinsPer*b, pinsPer*(b+1)) appear
// on pins [c*PinsPerChip, c*PinsPerChip+pinsPer) during beat b. pinsPer is 8
// for the data-pin codecs (MiLC, CAFO, Hybrid) and 9 for 3-LWC, which
// reuses the DBI pin.
func storeLaneCodewords(bu *bitblock.Burst, cws *[bitblock.Chips]laneCW, beats, pinsPer int) {
	for beat := 0; beat < beats; beat++ {
		var lo, hi uint64
		for c := range cws {
			orBeatBits(&lo, &hi, c*PinsPerChip, cws[c].uint64(beat*pinsPer, pinsPer), pinsPer)
		}
		bu.SetBeatWords(beat, lo, hi)
	}
}

// loadLaneCodewords gathers the eight per-chip codewords back out of a
// burst, the inverse of storeLaneCodewords.
func loadLaneCodewords(bu *bitblock.Burst, cws *[bitblock.Chips]laneCW, beats, pinsPer int) {
	for beat := 0; beat < beats; beat++ {
		lo, hi := bu.BeatWords(beat)
		for c := range cws {
			cws[c].append(beatBitsOf(lo, hi, c*PinsPerChip, pinsPer), pinsPer)
		}
	}
}
