package code

import (
	"math/bits"
	"math/rand"
	"sort"
	"testing"

	"mil/internal/bitblock"
	"mil/internal/fault"
)

// This file referees the codec zoo from the related literature: OptMem
// against the closed-form optimal packing, VLWC's enumerative coder
// against the brute-force optimal-scheme reference (the arXiv 2303.06409
// construction: sort every k-bit word by zero count, keep the best 256),
// and ZAD's skip-transfer against the fault injector - skipped chunks must
// be corruption-immune, with only the mask sideband exposed.

// refLowWeightWords is the optimal-scheme reference: all 2^k words by
// ascending zero count (ties by value), truncated to the 256 the code
// assigns. Exponential in k - usable for k <= 12 in tests only.
func refLowWeightWords(t *testing.T, k int) []uint32 {
	t.Helper()
	if k > 12 {
		t.Fatalf("reference enumeration of 2^%d words is a test bug", k)
	}
	words := make([]uint32, 1<<k)
	for w := range words {
		words[w] = uint32(w)
	}
	sort.SliceStable(words, func(i, j int) bool {
		zi := k - bits.OnesCount32(words[i])
		zj := k - bits.OnesCount32(words[j])
		if zi != zj {
			return zi < zj
		}
		return words[i] < words[j]
	})
	return words[:256]
}

func TestOptMemCodeIsOptimalPacking(t *testing.T) {
	c := DefaultOptMem()
	ref := refLowWeightWords(t, 9)
	seen := map[uint16]bool{}
	refSet := map[uint32]bool{}
	for _, w := range ref {
		refSet[w] = true
	}
	for b := 0; b < 256; b++ {
		w := c.EncodeByte(byte(b))
		if seen[w] {
			t.Fatalf("codeword %#03x assigned twice", w)
		}
		seen[w] = true
		if !refSet[uint32(w)] {
			t.Errorf("byte %#02x got word %#03x outside the optimal 256", b, w)
		}
		if z := optMemWordBits - bits.OnesCount16(w); z > 4 {
			t.Errorf("byte %#02x word %#03x carries %d zeros, packing bound is 4", b, w, z)
		}
		got, ok := c.DecodeWord(w)
		if !ok || got != byte(b) {
			t.Errorf("DecodeWord(EncodeByte(%#02x)) = %#02x, %v", b, got, ok)
		}
	}
	// Sparse prior: the all-zero byte gets the free all-ones codeword -
	// one zero cheaper than under DBI, which pays for its flag bit.
	if w := c.EncodeByte(0); w != 0x1ff {
		t.Errorf("byte 0x00 word = %#03x, want the all-ones 0x1ff", w)
	}
	// Words outside the code must be rejected.
	for w := 0; w < 512; w++ {
		_, ok := c.DecodeWord(uint16(w))
		if inCode := bits.OnesCount16(uint16(w)) >= 5; ok != inCode {
			t.Fatalf("DecodeWord(%#03x) ok=%v, want %v", w, ok, inCode)
		}
	}
}

func TestOptMemFrequencyAssignment(t *testing.T) {
	var freq [256]uint64
	freq[0xa5] = 1000
	freq[0x17] = 10
	c := NewOptMem(&freq)
	if w := c.EncodeByte(0xa5); w != 0x1ff {
		t.Errorf("most frequent byte got word %#03x, want the zero-cost 0x1ff", w)
	}
	if z := optMemWordBits - bits.OnesCount16(c.EncodeByte(0x17)); z != 1 {
		t.Errorf("second byte's word carries %d zeros, want the next tier's 1", z)
	}
	var blk bitblock.Block
	if out, err := c.Decode(c.Encode(&blk)); err != nil || out != blk {
		t.Errorf("frequency-ranked instance does not round-trip: %v", err)
	}
}

func TestVLWCWidths(t *testing.T) {
	want := map[int]struct{ k, beats int }{
		2: {23, 24}, 3: {12, 12}, 4: {9, 10}, 8: {8, 8},
	}
	for w, dims := range want {
		c, err := NewVLWC(w, nil)
		if err != nil {
			t.Fatalf("NewVLWC(%d): %v", w, err)
		}
		if c.K() != dims.k || c.Beats() != dims.beats {
			t.Errorf("w=%d: k=%d beats=%d, want k=%d beats=%d", w, c.K(), c.Beats(), dims.k, dims.beats)
		}
	}
	for _, w := range []int{0, 1, 9} {
		if _, err := NewVLWC(w, nil); err == nil {
			t.Errorf("NewVLWC(%d) accepted an out-of-range weight bound", w)
		}
	}
}

// TestVLWCAgainstOptimalReference pins the enumerative coder to the
// brute-force optimal scheme: same per-rank zero profile (so the total
// transmitted zeros under any frequency ranking match the optimum), a
// bijective byte assignment, and an exact arithmetic inverse.
func TestVLWCAgainstOptimalReference(t *testing.T) {
	for _, w := range []int{3, 4} {
		c, err := NewVLWC(w, nil)
		if err != nil {
			t.Fatal(err)
		}
		ref := refLowWeightWords(t, c.K())
		seen := map[uint32]bool{}
		for rank := 0; rank < 256; rank++ {
			word := c.wordOfRank(rank)
			if seen[word] {
				t.Fatalf("w=%d: word %#x assigned twice", w, word)
			}
			seen[word] = true
			zGot := c.K() - bits.OnesCount32(word)
			zRef := c.K() - bits.OnesCount32(ref[rank])
			if zGot != zRef {
				t.Fatalf("w=%d rank %d: %d zeros, optimal reference has %d", w, rank, zGot, zRef)
			}
			back, err := c.rankOfWord(word)
			if err != nil || back != rank {
				t.Fatalf("w=%d: rankOfWord(wordOfRank(%d)) = %d, %v", w, rank, back, err)
			}
		}
		// Every over-bound or out-of-code word must be rejected.
		for word := uint32(0); word < 1<<c.K(); word++ {
			rank, err := c.rankOfWord(word)
			if z := c.K() - bits.OnesCount32(word); z > c.WeightBound() {
				if err == nil {
					t.Fatalf("w=%d: word %#x (%d zeros) ranked despite the bound", w, word, z)
				}
				continue
			}
			if err != nil {
				t.Fatalf("w=%d: in-bound word %#x rejected: %v", w, word, err)
			}
			if (rank < 256) != seen[word] {
				t.Fatalf("w=%d: word %#x rank %d disagrees with assignment", w, word, rank)
			}
		}
	}
}

// TestVLWCWeight4MatchesOptMem: at w=4 the fitting width is k=9, the
// OptMem geometry, and with the shared frequency ranking the arithmetic
// coder must reproduce the optimal memoryless code's per-byte cost
// exactly.
func TestVLWCWeight4MatchesOptMem(t *testing.T) {
	v, err := NewVLWC(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptMem()
	for b := 0; b < 256; b++ {
		zv := v.K() - bits.OnesCount32(v.EncodeByte(byte(b)))
		zo := optMemWordBits - bits.OnesCount16(o.EncodeByte(byte(b)))
		if zv != zo {
			t.Errorf("byte %#02x: vlwc4 pays %d zeros, optmem %d", b, zv, zo)
		}
	}
}

func TestVLWCRoundTripAllBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, w := range []int{2, 3, 4, 5, 8} {
		c, err := NewVLWC(w, nil)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < 200; n++ {
			blk := skewedBlock(rng)
			out, err := c.Decode(c.Encode(&blk))
			if err != nil || out != blk {
				t.Fatalf("w=%d block %d: round-trip failed (%v)", w, n, err)
			}
		}
	}
}

// zadTestBlock fills every chip with the pattern byte but zeroes chip
// zeroChip entirely, so each granularity has fully skipped chunks there.
func zadTestBlock(zeroChip int, pattern byte) bitblock.Block {
	var blk bitblock.Block
	for beat := 0; beat < 8; beat++ {
		for ch := 0; ch < bitblock.Chips; ch++ {
			if ch != zeroChip {
				blk[beat*bitblock.Chips+ch] = pattern
			}
		}
	}
	return blk
}

// TestZADSkippedChunksAreCorruptionImmune flips every data bit of a
// skipped chunk's elided beats: the decoder must not read them, so the
// block comes back bit-identical with no error, in both mask modes and
// at every granularity.
func TestZADSkippedChunksAreCorruptionImmune(t *testing.T) {
	for _, g := range []int{1, 2, 4, 8} {
		for _, resilient := range []bool{false, true} {
			z, err := NewZAD(g, resilient)
			if err != nil {
				t.Fatal(err)
			}
			blk := zadTestBlock(3, 0xb7)
			bu := z.Encode(&blk)
			for beat := 0; beat < 8; beat++ { // chip 3 is entirely skipped
				for pin := 0; pin < DataPinsPerChip; pin++ {
					bu.SetBit(beat, chipDataPin(3, pin), !bu.Bit(beat, chipDataPin(3, pin)))
				}
			}
			got, err := z.Decode(bu)
			if err != nil {
				t.Fatalf("%s: decode errored on skipped-chunk corruption: %v", z.Name(), err)
			}
			if got != blk {
				t.Fatalf("%s: skipped-chunk corruption leaked into the data", z.Name())
			}
		}
	}
}

// TestZADMaskSidebandExposure pins the documented trade: plain mode's
// single mask bit converts silently under one flip, resilient mode
// outvotes a minority of flips and detects an exact tie.
func TestZADMaskSidebandExposure(t *testing.T) {
	blk := zadTestBlock(5, 0x6c)

	plain, _ := NewZAD(4, false)
	bu := plain.Encode(&blk)
	bu.SetBit(0, chipDBIPin(5), true) // skipped -> "present": reads elided beats
	got, err := plain.Decode(bu)
	if err != nil {
		t.Fatalf("plain: mask flip reported an error; the single bit has no redundancy to detect with: %v", err)
	}
	if got == blk {
		t.Fatal("plain: mask flip did not corrupt - the exposure this mode documents")
	}

	res, _ := NewZAD(4, true)
	bu = res.Encode(&blk)
	bu.SetBit(1, chipDBIPin(5), true) // one of four copies: outvoted
	if got, err := res.Decode(bu); err != nil || got != blk {
		t.Fatalf("resilient: minority mask flip not outvoted (err %v)", err)
	}
	bu.SetBit(2, chipDBIPin(5), true) // two of four: an undecidable tie
	if _, err := res.Decode(bu); err == nil {
		t.Fatal("resilient: split mask vote decoded silently, want a detection error")
	}
}

// cloneBurst deep-copies a burst so the fault differential can diff the
// corrupted wires against the pristine transfer.
func cloneBurst(bu *bitblock.Burst) *bitblock.Burst {
	cp := bitblock.NewBurst(bu.Width, bu.Beats)
	for p := 0; p < bu.Width; p++ {
		cp.SetDriven(p, bu.Driven(p))
	}
	for b := 0; b < bu.Beats; b++ {
		lo, hi := bu.BeatWords(b)
		cp.SetBeatWords(b, lo, hi)
	}
	return cp
}

// TestZADFaultInjectorDifferential drives the PR-1 injector over a zero-
// heavy transfer: whenever every injected flip lands inside skipped
// chunks' elided beats, the decode must be exact - the skip-transfer
// immunity claim, proved against the same corruption stream the fault
// experiments use rather than hand-placed flips.
func TestZADFaultInjectorDifferential(t *testing.T) {
	z, err := NewZAD(8, false)
	if err != nil {
		t.Fatal(err)
	}
	// Chips 1..7 all zero (fully skipped); chip 0 carries data.
	var blk bitblock.Block
	for beat := 0; beat < 8; beat++ {
		blk[beat*bitblock.Chips] = byte(0x91 + beat)
	}
	pristine := z.Encode(&blk)

	elided := func(beat, pin int) bool {
		ch := pin / PinsPerChip
		return ch >= 1 && pin != chipDBIPin(ch)
	}
	immune, corrupted := 0, 0
	for seed := uint64(0); seed < 200; seed++ {
		inj := fault.MustNew(fault.Config{BER: 2e-3, Seed: seed})
		bu := cloneBurst(pristine)
		if inj.Corrupt(bu) == 0 {
			continue
		}
		allElided := true
		for beat := 0; beat < bu.Beats; beat++ {
			for pin := 0; pin < bu.Width; pin++ {
				if bu.Bit(beat, pin) != pristine.Bit(beat, pin) && !elided(beat, pin) {
					allElided = false
				}
			}
		}
		got, err := z.Decode(bu)
		if allElided {
			immune++
			if err != nil || got != blk {
				t.Fatalf("seed %d: flips confined to elided beats corrupted the decode (%v)", seed, err)
			}
		} else if err == nil && got != blk {
			corrupted++ // exposed surface hit: legal, the retry ladder's problem
		}
	}
	if immune == 0 {
		t.Fatal("no corruption run landed entirely in elided beats; differential never exercised")
	}
}

// TestZADCostAccounting pins the energy model's absolute numbers: an
// all-zero block costs one transmitted zero per chunk in plain mode and g
// per chunk in resilient mode, nothing else.
func TestZADCostAccounting(t *testing.T) {
	var zero bitblock.Block
	for _, tc := range []struct {
		g         int
		resilient bool
		want      int
	}{
		{1, false, 64}, {2, false, 32}, {4, false, 16}, {8, false, 8},
		{1, true, 64}, {2, true, 64}, {4, true, 64}, {8, true, 64},
	} {
		z, err := NewZAD(tc.g, tc.resilient)
		if err != nil {
			t.Fatal(err)
		}
		if got := z.Encode(&zero).CountZeros(); got != tc.want {
			t.Errorf("%s: all-zero block costs %d zeros, want %d", z.Name(), got, tc.want)
		}
	}
	// An all-ones block skips nothing and transmits no zeros at all.
	var ones bitblock.Block
	for i := range ones {
		ones[i] = 0xff
	}
	z, _ := NewZAD(4, false)
	if got := z.Encode(&ones).CountZeros(); got != 0 {
		t.Errorf("all-ones block costs %d zeros, want 0", got)
	}
}

// TestDecodeRejectsForeignDrivenMask is the satellite audit's pin: a burst
// with the right shape but another scheme's driven mask (raw parks the
// DBI pins, dbi drives them) must be rejected, not silently misread.
func TestDecodeRejectsForeignDrivenMask(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	blk := skewedBlock(rng)
	if _, err := (DBI{}).Decode(Raw{}.Encode(&blk)); err == nil {
		t.Error("dbi decoded a raw burst (parked DBI pins) without error")
	}
	if _, err := (Raw{}).Decode(DBI{}.Encode(&blk)); err == nil {
		t.Error("raw decoded a dbi burst (driven DBI pins) without error")
	}
	if _, err := DefaultOptMem().Decode(Raw{}.Encode(&blk)); err == nil {
		t.Error("optmem decoded a raw burst without error")
	}
	z, _ := NewZAD(4, false)
	if _, err := z.Decode(MiLC{}.Encode(&blk)); err == nil {
		t.Error("zad decoded a 10-beat milc burst without error")
	}
}
