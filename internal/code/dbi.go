package code

import (
	"math/bits"

	"mil/internal/bitblock"
)

// Raw transmits the block unmodified over the 64 data pins at burst length
// 8, with the DBI pins parked. It is the normalization point of the
// potential study in Figure 7 ("the number of zeroes observed on the
// original data").
type Raw struct{}

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// Beats implements Codec.
func (Raw) Beats() int { return 8 }

// ExtraLatency implements Codec.
func (Raw) ExtraLatency() int { return 0 }

// Encode implements Codec.
func (Raw) Encode(blk *bitblock.Block) *bitblock.Burst {
	bu := bitblock.NewBurst(BusWidth, 8)
	parkDBIPins(bu)
	for beat := 0; beat < 8; beat++ {
		for c := 0; c < bitblock.Chips; c++ {
			bu.SetBeat(beat, chipDataPin(c, 0), uint64(blk[beat*bitblock.Chips+c]), 8)
		}
	}
	return bu
}

// Decode implements Codec. Raw cannot detect corruption: every burst
// pattern is a valid encoding.
func (Raw) Decode(bu *bitblock.Burst) (bitblock.Block, error) {
	var blk bitblock.Block
	if err := checkDims("raw", bu, 8); err != nil {
		return blk, err
	}
	for beat := 0; beat < 8; beat++ {
		for c := 0; c < bitblock.Chips; c++ {
			blk[beat*bitblock.Chips+c] = byte(bu.BeatBits(beat, chipDataPin(c, 0), 8))
		}
	}
	return blk, nil
}

// DBI is the data bus inversion code DDR4 natively supports (Section
// 2.1.1): per byte, if more than four bits are 0 the ones' complement is
// sent with the DBI bit low (0); otherwise the original byte is sent with
// the DBI bit high (1). Every 9-bit group therefore carries at most four
// zeros. This is the baseline every evaluation figure normalizes to.
type DBI struct{}

// Name implements Codec.
func (DBI) Name() string { return "dbi" }

// Beats implements Codec.
func (DBI) Beats() int { return 8 }

// ExtraLatency implements Codec.
func (DBI) ExtraLatency() int { return 0 }

// dbiEncodeByte returns the wire byte and DBI bit for one data byte.
func dbiEncodeByte(b byte) (wire byte, dbiBit bool) {
	if zeros := 8 - bits.OnesCount8(b); zeros > 4 {
		return ^b, false
	}
	return b, true
}

// dbiDecodeByte inverts dbiEncodeByte.
func dbiDecodeByte(wire byte, dbiBit bool) byte {
	if !dbiBit {
		return ^wire
	}
	return wire
}

// Encode implements Codec.
func (DBI) Encode(blk *bitblock.Block) *bitblock.Burst {
	bu := bitblock.NewBurst(BusWidth, 8)
	for beat := 0; beat < 8; beat++ {
		for c := 0; c < bitblock.Chips; c++ {
			wire, dbiBit := dbiEncodeByte(blk[beat*bitblock.Chips+c])
			bu.SetBeat(beat, chipDataPin(c, 0), uint64(wire), 8)
			bu.SetBit(beat, chipDBIPin(c), dbiBit)
		}
	}
	return bu
}

// Decode implements Codec. DBI cannot detect corruption: every 9-bit
// group decodes to some byte.
func (DBI) Decode(bu *bitblock.Burst) (bitblock.Block, error) {
	var blk bitblock.Block
	if err := checkDims("dbi", bu, 8); err != nil {
		return blk, err
	}
	for beat := 0; beat < 8; beat++ {
		for c := 0; c < bitblock.Chips; c++ {
			wire := byte(bu.BeatBits(beat, chipDataPin(c, 0), 8))
			blk[beat*bitblock.Chips+c] = dbiDecodeByte(wire, bu.Bit(beat, chipDBIPin(c)))
		}
	}
	return blk, nil
}
