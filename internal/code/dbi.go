package code

import (
	"math/bits"

	"mil/internal/bitblock"
)

// Raw transmits the block unmodified over the 64 data pins at burst length
// 8, with the DBI pins parked. It is the normalization point of the
// potential study in Figure 7 ("the number of zeroes observed on the
// original data").
type Raw struct{}

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// Beats implements Codec.
func (Raw) Beats() int { return 8 }

// ExtraLatency implements Codec.
func (Raw) ExtraLatency() int { return 0 }

// Encode implements Codec.
func (r Raw) Encode(blk *bitblock.Block) *bitblock.Burst {
	bu := bitblock.NewBurst(BusWidth, 8)
	r.EncodeInto(blk, bu)
	return bu
}

// EncodeInto implements BurstEncoder.
func (Raw) EncodeInto(blk *bitblock.Block, bu *bitblock.Burst) {
	bu.Reset(BusWidth, 8)
	parkDBIPins(bu)
	for beat := 0; beat < 8; beat++ {
		var lo, hi uint64
		for c := 0; c < bitblock.Chips; c++ {
			orBeatBits(&lo, &hi, chipDataPin(c, 0), uint64(blk[beat*bitblock.Chips+c]), 8)
		}
		bu.SetBeatWords(beat, lo, hi)
	}
}

// CostZeros implements ZeroCoster: the data pins carry the block verbatim
// and the DBI pins are parked.
func (Raw) CostZeros(blk *bitblock.Block) int { return blk.CountZeros() }

// Decode implements Codec. Raw cannot detect corruption: every burst
// pattern is a valid encoding.
func (Raw) Decode(bu *bitblock.Burst) (bitblock.Block, error) {
	var blk bitblock.Block
	if err := checkDims("raw", bu, 8); err != nil {
		return blk, err
	}
	if err := checkDriven("raw", bu, false); err != nil {
		return blk, err
	}
	for beat := 0; beat < 8; beat++ {
		for c := 0; c < bitblock.Chips; c++ {
			blk[beat*bitblock.Chips+c] = byte(bu.BeatBits(beat, chipDataPin(c, 0), 8))
		}
	}
	return blk, nil
}

// DBI is the data bus inversion code DDR4 natively supports (Section
// 2.1.1): per byte, if more than four bits are 0 the ones' complement is
// sent with the DBI bit low (0); otherwise the original byte is sent with
// the DBI bit high (1). Every 9-bit group therefore carries at most four
// zeros. This is the baseline every evaluation figure normalizes to.
type DBI struct{}

// Name implements Codec.
func (DBI) Name() string { return "dbi" }

// Beats implements Codec.
func (DBI) Beats() int { return 8 }

// ExtraLatency implements Codec.
func (DBI) ExtraLatency() int { return 0 }

// dbiEncodeByte returns the wire byte and DBI bit for one data byte.
func dbiEncodeByte(b byte) (wire byte, dbiBit bool) {
	if zeros := 8 - bits.OnesCount8(b); zeros > 4 {
		return ^b, false
	}
	return b, true
}

// dbiDecodeByte inverts dbiEncodeByte.
func dbiDecodeByte(wire byte, dbiBit bool) byte {
	if !dbiBit {
		return ^wire
	}
	return wire
}

// Encode implements Codec.
func (d DBI) Encode(blk *bitblock.Block) *bitblock.Burst {
	bu := bitblock.NewBurst(BusWidth, 8)
	d.EncodeInto(blk, bu)
	return bu
}

// EncodeInto implements BurstEncoder.
func (DBI) EncodeInto(blk *bitblock.Block, bu *bitblock.Burst) {
	bu.Reset(BusWidth, 8)
	for beat := 0; beat < 8; beat++ {
		var lo, hi uint64
		for c := 0; c < bitblock.Chips; c++ {
			wire, dbiBit := dbiEncodeByte(blk[beat*bitblock.Chips+c])
			group := uint64(wire)
			if dbiBit {
				group |= 1 << DataPinsPerChip
			}
			orBeatBits(&lo, &hi, chipDataPin(c, 0), group, PinsPerChip)
		}
		bu.SetBeatWords(beat, lo, hi)
	}
}

// CostZeros implements ZeroCoster: a byte with z > 4 zeros is inverted and
// its DBI bit (transmitted 0) adds one zero; otherwise the byte's own zeros
// are paid.
func (DBI) CostZeros(blk *bitblock.Block) int {
	z := 0
	for _, b := range blk {
		if zb := 8 - bits.OnesCount8(b); zb > 4 {
			z += (8 - zb) + 1
		} else {
			z += zb
		}
	}
	return z
}

// Decode implements Codec. DBI cannot detect corruption: every 9-bit
// group decodes to some byte.
func (DBI) Decode(bu *bitblock.Burst) (bitblock.Block, error) {
	var blk bitblock.Block
	if err := checkDims("dbi", bu, 8); err != nil {
		return blk, err
	}
	if err := checkDriven("dbi", bu, true); err != nil {
		return blk, err
	}
	for beat := 0; beat < 8; beat++ {
		for c := 0; c < bitblock.Chips; c++ {
			wire := byte(bu.BeatBits(beat, chipDataPin(c, 0), 8))
			blk[beat*bitblock.Chips+c] = dbiDecodeByte(wire, bu.Bit(beat, chipDBIPin(c)))
		}
	}
	return blk, nil
}
