package code

import "mil/internal/bitblock"

// DDR4 write CRC (JEDEC optional feature, modeled by dram.Reliability):
// the controller computes a CRC-8 per device over the write burst and
// appends it in extra beats; the device recomputes and pulls ALERT_n low
// on mismatch, NACKing the write. The functions here implement the bit
// layer generically over any coded burst: each chip's CRC-8 covers every
// driven bit-time of the chip's 9-pin group across the data beats, and the
// appended beats carry the 8 CRC bits on the chip's data pins with the
// remaining extra bit-times driven high (free on a POD interface, matching
// how the codecs pad).

// crc8Poly is the ATM-8 HEC polynomial x^8 + x^2 + x + 1 JEDEC specifies
// for DDR4 write CRC.
const crc8Poly = 0x07

// crc8Table is the byte-at-a-time lookup table for crc8Poly.
var crc8Table = func() [256]byte {
	var t [256]byte
	for i := 0; i < 256; i++ {
		c := byte(i)
		for b := 0; b < 8; b++ {
			if c&0x80 != 0 {
				c = c<<1 ^ crc8Poly
			} else {
				c <<= 1
			}
		}
		t[i] = c
	}
	return t
}()

// chipCRC computes chip c's CRC-8 over the first dataBeats beats of bu.
// Undriven pins contribute a constant 1 (their parked level) so the CRC is
// well defined for codecs that park the DBI pin.
func chipCRC(bu *bitblock.Burst, c, dataBeats int) byte {
	crc := byte(0)
	for beat := 0; beat < dataBeats; beat++ {
		var v byte
		for i := 0; i < PinsPerChip; i++ {
			pin := chipDataPin(c, i)
			bit := true
			if bu.Driven(pin) {
				bit = bu.Bit(beat, pin)
			}
			if bit {
				v |= 1 << (i % 8)
			}
			if i%8 == 7 || i == PinsPerChip-1 {
				crc = crc8Table[crc^v]
				v = 0
			}
		}
	}
	return crc
}

// AppendWriteCRC returns a copy of bu extended by extraBeats beats carrying
// each chip's CRC-8 on its data pins; surplus bit-times in the CRC beats
// are driven high. extraBeats must be even and >= 2 (the dram.Reliability
// default is 2, matching JEDEC's BL8-to-BL10 extension).
func AppendWriteCRC(bu *bitblock.Burst, extraBeats int) *bitblock.Burst {
	if extraBeats < 2 || extraBeats%2 != 0 {
		panic("code: write CRC extra beats must be even and >= 2")
	}
	out := bitblock.NewBurst(bu.Width, bu.Beats+extraBeats)
	for p := 0; p < bu.Width; p++ {
		out.SetDriven(p, bu.Driven(p))
	}
	for beat := 0; beat < bu.Beats; beat++ {
		for p := 0; p < bu.Width; p++ {
			if bu.Driven(p) {
				out.SetBit(beat, p, bu.Bit(beat, p))
			}
		}
	}
	for beat := bu.Beats; beat < out.Beats; beat++ {
		for p := 0; p < bu.Width; p++ {
			if out.Driven(p) {
				out.SetBit(beat, p, true) // idle-high default
			}
		}
	}
	for c := 0; c < bitblock.Chips; c++ {
		crc := chipCRC(bu, c, bu.Beats)
		for i := 0; i < 8; i++ {
			pin := chipDataPin(c, i)
			if out.Driven(pin) {
				out.SetBit(bu.Beats, pin, crc>>i&1 == 1)
			}
		}
	}
	return out
}

// CheckWriteCRC recomputes each chip's CRC over the data beats of a burst
// produced by AppendWriteCRC (possibly corrupted in transit) and reports
// whether every chip's received CRC matches - the device-side ALERT_n
// decision. Multi-bit corruption that aliases a chip's CRC-8 (about 1 in
// 256 random patterns) passes undetected, exactly as in hardware.
func CheckWriteCRC(bu *bitblock.Burst, extraBeats int) bool {
	dataBeats := bu.Beats - extraBeats
	if dataBeats <= 0 {
		return false
	}
	for c := 0; c < bitblock.Chips; c++ {
		want := chipCRC(bu, c, dataBeats)
		var got byte
		for i := 0; i < 8; i++ {
			pin := chipDataPin(c, i)
			bit := true
			if bu.Driven(pin) {
				bit = bu.Bit(dataBeats, pin)
			}
			if bit {
				got |= 1 << i
			}
		}
		if got != want {
			return false
		}
	}
	return true
}

// StripWriteCRC returns the data-beat prefix of a CRC-extended burst, the
// burst the device decodes after a passing CRC check.
func StripWriteCRC(bu *bitblock.Burst, extraBeats int) *bitblock.Burst {
	dataBeats := bu.Beats - extraBeats
	out := bitblock.NewBurst(bu.Width, dataBeats)
	for p := 0; p < bu.Width; p++ {
		out.SetDriven(p, bu.Driven(p))
	}
	for beat := 0; beat < dataBeats; beat++ {
		for p := 0; p < bu.Width; p++ {
			if bu.Driven(p) {
				out.SetBit(beat, p, bu.Bit(beat, p))
			}
		}
	}
	return out
}
