package code

import "mil/internal/bitblock"

// Transition signaling (Sections 2.1.2, 4.5, 5.3, Figure 15) converts the
// energy problem of an unterminated interface (energy per wire toggle) into
// the terminated interface's problem (energy per transmitted symbol): the
// wire toggles exactly when the logical bit takes the costly value, and
// holds its level otherwise. MiL on LPDDR3 uses the flip-on-zero polarity so
// the zero-minimizing codecs above carry over unchanged: the number of wire
// toggles equals the number of zeros in the coded burst.

// SignalTransitions converts a logical coded burst into the physical wire
// levels under flip-on-zero transition signaling, starting from the given
// bus state; it advances the state to the wire levels after the burst and
// returns the physical burst. Undriven pins hold their level.
func SignalTransitions(bu *bitblock.Burst, s *bitblock.BusState) *bitblock.Burst {
	wire := bitblock.NewBurst(bu.Width, bu.Beats)
	for p := 0; p < bu.Width; p++ {
		wire.SetDriven(p, bu.Driven(p))
	}
	for beat := 0; beat < bu.Beats; beat++ {
		for p := 0; p < bu.Width; p++ {
			if !bu.Driven(p) {
				continue
			}
			level := s.Pin(p)
			if !bu.Bit(beat, p) { // logical 0: toggle the wire
				level = !level
				s.SetPin(p, level)
			}
			wire.SetBit(beat, p, level)
		}
	}
	return wire
}

// RecoverTransitions is the receiver side of SignalTransitions: it
// reconstructs the logical burst from wire levels, starting from the same
// initial bus state, and advances the state.
func RecoverTransitions(wire *bitblock.Burst, s *bitblock.BusState) *bitblock.Burst {
	bu := bitblock.NewBurst(wire.Width, wire.Beats)
	for p := 0; p < wire.Width; p++ {
		bu.SetDriven(p, wire.Driven(p))
	}
	for beat := 0; beat < wire.Beats; beat++ {
		for p := 0; p < wire.Width; p++ {
			if !wire.Driven(p) {
				continue
			}
			level := wire.Bit(beat, p)
			bu.SetBit(beat, p, level == s.Pin(p)) // no toggle = logical 1
			s.SetPin(p, level)
		}
	}
	return bu
}

// BusInvert is the classic bus-invert code (Stan & Burleson 1995) applied
// directly to the unterminated LPDDR3 interface, the baseline of Section
// 2.1.2: per 8-pin group and beat, if transmitting the byte as-is would
// toggle more than four of the nine wires (eight data + the BI wire), the
// inverted byte is sent and the BI wire is raised. Encoding is stateful
// because the toggle count depends on the previous wire levels.
type BusInvert struct{}

// Name identifies the scheme.
func (BusInvert) Name() string { return "bi" }

// Beats is the burst length (same as the raw data, 8).
func (BusInvert) Beats() int { return 8 }

// ExtraLatency is zero: BI is the native-latency baseline.
func (BusInvert) ExtraLatency() int { return 0 }

// EncodeWire produces the physical wire levels for blk given (and
// advancing) the bus state. The returned burst's bits are wire levels, so
// Transitions counting must use a fresh copy of the pre-burst state; to
// keep call sites simple the toggle count is also returned.
func (BusInvert) EncodeWire(blk *bitblock.Block, s *bitblock.BusState) (wire *bitblock.Burst, toggles int) {
	wire = bitblock.NewBurst(BusWidth, 8)
	for beat := 0; beat < 8; beat++ {
		for c := 0; c < bitblock.Chips; c++ {
			b := blk[beat*bitblock.Chips+c]
			// Toggles if sent as-is, counting the BI wire returning low.
			asIs := 0
			for i := 0; i < 8; i++ {
				if b>>i&1 == 1 != s.Pin(chipDataPin(c, i)) {
					asIs++
				}
			}
			if s.Pin(chipDBIPin(c)) {
				asIs++ // BI wire drops back to 0
			}
			inverted := 0
			for i := 0; i < 8; i++ {
				if ^b>>i&1 == 1 != s.Pin(chipDataPin(c, i)) {
					inverted++
				}
			}
			if !s.Pin(chipDBIPin(c)) {
				inverted++ // BI wire rises to 1
			}
			out, biLevel := b, false
			if inverted < asIs {
				out, biLevel = ^b, true
				toggles += inverted
			} else {
				toggles += asIs
			}
			for i := 0; i < 8; i++ {
				level := out>>i&1 == 1
				wire.SetBit(beat, chipDataPin(c, i), level)
				s.SetPin(chipDataPin(c, i), level)
			}
			wire.SetBit(beat, chipDBIPin(c), biLevel)
			s.SetPin(chipDBIPin(c), biLevel)
		}
	}
	return wire, toggles
}

// DecodeWire reconstructs the block from wire levels: a high BI wire means
// the byte was inverted.
func (BusInvert) DecodeWire(wire *bitblock.Burst) bitblock.Block {
	var blk bitblock.Block
	for beat := 0; beat < 8; beat++ {
		for c := 0; c < bitblock.Chips; c++ {
			b := byte(wire.BeatBits(beat, chipDataPin(c, 0), 8))
			if wire.Bit(beat, chipDBIPin(c)) {
				b = ^b
			}
			blk[beat*bitblock.Chips+c] = b
		}
	}
	return blk
}
