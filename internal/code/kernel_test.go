package code

import (
	"math/rand"
	"testing"

	"mil/internal/bitblock"
)

// This file is the referee for the word-parallel kernel layer: the cost
// probes (ZeroCoster) must equal encode-then-count exactly, the scratch
// encode path (BurstEncoder) must be bit-identical to the allocating path
// and allocation-free, and the word-parallel Burst counters must agree with
// deliberately naive bit-at-a-time reference implementations.

// refCountZeros is the pre-kernel bit-at-a-time CountZeros.
func refCountZeros(bu *bitblock.Burst) int {
	z := 0
	for b := 0; b < bu.Beats; b++ {
		for p := 0; p < bu.Width; p++ {
			if bu.Driven(p) && !bu.Bit(b, p) {
				z++
			}
		}
	}
	return z
}

// refTransitions is the pre-kernel bit-at-a-time Transitions: toggles on
// driven pins only, undriven pins hold their previous level.
func refTransitions(bu *bitblock.Burst, s *bitblock.BusState) int {
	n := 0
	for b := 0; b < bu.Beats; b++ {
		for p := 0; p < bu.Width; p++ {
			if !bu.Driven(p) {
				continue
			}
			v := bu.Bit(b, p)
			if v != s.Pin(p) {
				n++
			}
			s.SetPin(p, v)
		}
	}
	return n
}

// skewedBlock mixes sparse, dense, and uniform bytes so the codecs' mode
// decisions (inversion thresholds, xorbi, CAFO flips) all get exercised.
func skewedBlock(rng *rand.Rand) bitblock.Block {
	var blk bitblock.Block
	for i := range blk {
		switch rng.Intn(4) {
		case 0:
			blk[i] = 0x00
		case 1:
			blk[i] = 0xff
		default:
			blk[i] = byte(rng.Uint32())
		}
	}
	return blk
}

// registryCodecs returns every codec in the registry, failing the test on a
// lookup error.
func registryCodecs(t *testing.T) []Codec {
	t.Helper()
	var cs []Codec
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		cs = append(cs, c)
	}
	return cs
}

// TestCostZerosEquivalence is the acceptance check for the probe path: for
// every registry codec, CostZeros must equal Encode-then-CountZeros exactly
// on >= 1000 random blocks. Any drift here would silently change the MiL
// write-optimization decisions.
func TestCostZerosEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, c := range registryCodecs(t) {
		if _, ok := c.(ZeroCoster); !ok {
			t.Errorf("%s does not implement ZeroCoster", c.Name())
			continue
		}
		for n := 0; n < 1200; n++ {
			blk := skewedBlock(rng)
			probe := CostZeros(c, &blk)
			actual := c.Encode(&blk).CountZeros()
			if probe != actual {
				t.Fatalf("%s block %d: CostZeros=%d, Encode.CountZeros=%d", c.Name(), n, probe, actual)
			}
		}
	}
}

// TestEncodeIntoMatchesEncode proves the scratch path bit-identical to the
// allocating path: same dims, same driven mask, same bits every beat, with
// one scratch burst reused (dirty) across blocks and codecs of different
// shapes.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var scratch bitblock.Burst
	for n := 0; n < 300; n++ {
		blk := skewedBlock(rng)
		for _, c := range registryCodecs(t) {
			got := EncodeInto(c, &blk, &scratch)
			if got != &scratch {
				t.Fatalf("%s: EncodeInto fell back to allocation", c.Name())
			}
			want := c.Encode(&blk)
			if got.Width != want.Width || got.Beats != want.Beats {
				t.Fatalf("%s: dims %dx%d, want %dx%d", c.Name(), got.Width, got.Beats, want.Width, want.Beats)
			}
			gl, gh := got.DrivenWords()
			wl, wh := want.DrivenWords()
			if gl != wl || gh != wh {
				t.Fatalf("%s: driven %x,%x want %x,%x", c.Name(), gl, gh, wl, wh)
			}
			for b := 0; b < got.Beats; b++ {
				gl, gh = got.BeatWords(b)
				wl, wh = want.BeatWords(b)
				if gl != wl || gh != wh {
					t.Fatalf("%s beat %d: %016x,%016x want %016x,%016x", c.Name(), b, gl, gh, wl, wh)
				}
			}
		}
	}
}

// TestSteadyStateZeroAllocs pins the PR's allocation target: once the
// scratch burst has grown to its final shape, EncodeInto and CostZeros must
// not touch the heap.
func TestSteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	blk := skewedBlock(rng)
	for _, c := range registryCodecs(t) {
		c := c
		var scratch bitblock.Burst
		EncodeInto(c, &blk, &scratch) // grow the scratch once
		if n := testing.AllocsPerRun(100, func() {
			EncodeInto(c, &blk, &scratch)
		}); n != 0 {
			t.Errorf("%s: EncodeInto allocates %.1f/op, want 0", c.Name(), n)
		}
		if n := testing.AllocsPerRun(100, func() {
			CostZeros(c, &blk)
		}); n != 0 {
			t.Errorf("%s: CostZeros allocates %.1f/op, want 0", c.Name(), n)
		}
	}
}

// FuzzKernelEquivalence differentially fuzzes the word-parallel Burst
// kernels (CountZeros, Transitions) against the bit-at-a-time references
// above across arbitrary widths (including > 64 pins), beat counts, driven
// masks, and initial bus states, and the codec cost probes against
// encode-then-count on the fuzzed payload.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add(uint8(71), uint8(7), ^uint64(0), ^uint64(0), uint64(0), []byte("seed payload"))
	f.Add(uint8(63), uint8(1), ^uint64(0), uint64(0), uint64(5), []byte{0x00, 0xff, 0xa5})
	f.Add(uint8(127), uint8(15), uint64(0xdeadbeef), uint64(0x1234), ^uint64(0), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(4), uint8(3), uint64(0), uint64(0), uint64(0), []byte{})            // all pins undriven
	f.Add(uint8(8), uint8(9), uint64(0x100), uint64(0), uint64(0xff), []byte{0x80}) // DBI-style parked pins
	f.Fuzz(func(t *testing.T, w, nb uint8, dlo, dhi, state uint64, payload []byte) {
		width := 1 + int(w)%128
		beats := 1 + int(nb)%16
		bu := bitblock.NewBurst(width, beats)
		for p := 0; p < width; p++ {
			m := dlo
			if p >= 64 {
				m = dhi
			}
			bu.SetDriven(p, m>>(p%64)&1 == 1)
		}
		bit := 0
		for b := 0; b < beats; b++ {
			for p := 0; p < width; p++ {
				if len(payload) > 0 && payload[bit%len(payload)]>>(bit%8)&1 == 1 {
					bu.SetBit(b, p, true)
				}
				bit++
			}
		}

		if got, want := bu.CountZeros(), refCountZeros(bu); got != want {
			t.Fatalf("CountZeros %dx%d = %d, reference %d", width, beats, got, want)
		}

		var fast, slow bitblock.BusState
		for p := 0; p < width; p++ {
			v := state>>(p%64)&1 == 1
			fast.SetPin(p, v)
			slow.SetPin(p, v)
		}
		if got, want := bu.Transitions(&fast), refTransitions(bu, &slow); got != want {
			t.Fatalf("Transitions %dx%d = %d, reference %d", width, beats, got, want)
		}
		for p := 0; p < width; p++ {
			if fast.Pin(p) != slow.Pin(p) {
				t.Fatalf("bus state diverged at pin %d", p)
			}
		}

		var blk bitblock.Block
		copy(blk[:], payload)
		for _, name := range Names() {
			c, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if probe, actual := CostZeros(c, &blk), c.Encode(&blk).CountZeros(); probe != actual {
				t.Fatalf("%s: CostZeros=%d, Encode.CountZeros=%d", name, probe, actual)
			}
		}
	})
}
