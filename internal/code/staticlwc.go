package code

import (
	"fmt"
	"math/bits"
	"sort"
)

// StaticLWC is an optimal static (8,k) limited-weight code as used in the
// potential study of Section 3.2 / Figure 7: each of the 256 byte patterns
// is mapped to a unique k-bit codeword, chosen so that - weighted by the
// observed frequency of each byte pattern - the transmitted number of zeros
// is minimized. The construction picks the 256 k-bit words with the fewest
// zeros and assigns the zero-cheapest words to the most frequent bytes.
//
// These codes establish how much headroom exists beyond DBI; their codecs
// are table lookups (the paper deems them impractical to implement
// algorithmically, which is why MiL adopts MiLC/3-LWC instead), so they are
// not offered on the timing path.
type StaticLWC struct {
	k      int
	enc    [256]uint32
	dec    map[uint32]byte
	maxZer int
}

// NewStaticLWC builds the optimal (8,k) code for the byte-pattern frequency
// histogram freq (counts; an all-zero histogram is treated as uniform).
// k must be in [8, 24].
func NewStaticLWC(k int, freq *[256]uint64) (*StaticLWC, error) {
	if k < 8 || k > 24 {
		return nil, fmt.Errorf("code: static LWC width %d outside [8,24]", k)
	}
	// The 256 best codewords are those with the most ones. Enumerate by
	// descending popcount; ties broken by value for determinism.
	words := make([]uint32, 0, 256)
	for ones := k; ones >= 0 && len(words) < 256; ones-- {
		var tier []uint32
		for w := uint32(0); w < 1<<k; w++ {
			if bits.OnesCount32(w) == ones {
				tier = append(tier, w)
			}
		}
		sort.Slice(tier, func(i, j int) bool { return tier[i] < tier[j] })
		for _, w := range tier {
			if len(words) == 256 {
				break
			}
			words = append(words, w)
		}
	}

	// Bytes by descending frequency; ties broken by value.
	order := make([]int, 256)
	for i := range order {
		order[i] = i
	}
	uniform := true
	for _, f := range freq {
		if f != 0 {
			uniform = false
			break
		}
	}
	if !uniform {
		sort.SliceStable(order, func(i, j int) bool { return freq[order[i]] > freq[order[j]] })
	}

	c := &StaticLWC{k: k, dec: make(map[uint32]byte, 256)}
	for rank, b := range order {
		w := words[rank]
		c.enc[b] = w
		c.dec[w] = byte(b)
		if z := k - bits.OnesCount32(w); z > c.maxZer {
			c.maxZer = z
		}
	}
	return c, nil
}

// K returns the codeword width.
func (c *StaticLWC) K() int { return c.k }

// MaxZeros returns the largest number of zeros any assigned codeword
// carries (the effective weight limit of the code).
func (c *StaticLWC) MaxZeros() int { return c.maxZer }

// EncodeByte returns the k-bit codeword for b.
func (c *StaticLWC) EncodeByte(b byte) uint32 { return c.enc[b] }

// DecodeWord returns the byte a codeword stands for.
func (c *StaticLWC) DecodeWord(w uint32) (byte, bool) {
	b, ok := c.dec[w]
	return b, ok
}

// WeightedZeros returns the total transmitted zeros for the histogram freq
// under this code; used to produce Figure 7's series.
func (c *StaticLWC) WeightedZeros(freq *[256]uint64) uint64 {
	var total uint64
	for b, f := range freq {
		total += f * uint64(c.k-bits.OnesCount32(c.enc[b]))
	}
	return total
}

// RawZeros returns the total zeros of the uncoded bytes for freq, the
// normalization denominator of Figure 7.
func RawZeros(freq *[256]uint64) uint64 {
	var total uint64
	for b, f := range freq {
		total += f * uint64(8-bits.OnesCount8(byte(b)))
	}
	return total
}

// DBIZeros returns the total transmitted zeros (9 wires per byte) under
// DBI for freq, Figure 7's "DBI" series.
func DBIZeros(freq *[256]uint64) uint64 {
	var total uint64
	for b, f := range freq {
		wire, bit := dbiEncodeByte(byte(b))
		z := uint64(8 - bits.OnesCount8(wire))
		if !bit {
			z++
		}
		total += f * z
	}
	return total
}
