package code

import (
	"math/rand"
	"testing"

	"mil/internal/bitblock"
)

func randomBlock(rng *rand.Rand) bitblock.Block {
	var raw [64]byte
	rng.Read(raw[:])
	return bitblock.Block(raw)
}

func TestWriteCRCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, c := range []Codec{DBI{}, MiLC{}, LWC3{}, Raw{}} {
		for n := 0; n < 50; n++ {
			blk := randomBlock(rng)
			bu := c.Encode(&blk)
			ext := AppendWriteCRC(bu, 2)
			if ext.Beats != bu.Beats+2 {
				t.Fatalf("%s: CRC burst %d beats, want %d", c.Name(), ext.Beats, bu.Beats+2)
			}
			if !CheckWriteCRC(ext, 2) {
				t.Fatalf("%s: clean CRC burst rejected", c.Name())
			}
			got, err := c.Decode(StripWriteCRC(ext, 2))
			if err != nil || got != blk {
				t.Fatalf("%s: strip+decode failed (%v)", c.Name(), err)
			}
		}
	}
}

func TestWriteCRCDetectsSingleBitErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	blk := randomBlock(rng)
	bu := DBI{}.Encode(&blk)
	ext := AppendWriteCRC(bu, 2)
	// Any single flip of an information-carrying bit-time must trip the
	// check: CRC-8 detects all single-bit errors. Pad bit-times in the CRC
	// beats (everything except the 8 CRC bits on the first extra beat)
	// carry no information and are legitimately undetectable.
	for beat := 0; beat < ext.Beats; beat++ {
		for p := 0; p < ext.Width; p++ {
			if !ext.Driven(p) {
				continue
			}
			if beat >= bu.Beats && (beat != bu.Beats || p%PinsPerChip >= DataPinsPerChip) {
				continue // idle-high padding, not covered by the CRC
			}
			ext.SetBit(beat, p, !ext.Bit(beat, p))
			if CheckWriteCRC(ext, 2) {
				t.Fatalf("flip at beat %d pin %d passed CRC", beat, p)
			}
			ext.SetBit(beat, p, !ext.Bit(beat, p)) // restore
		}
	}
	if !CheckWriteCRC(ext, 2) {
		t.Fatal("restored burst no longer passes")
	}
}

func TestWriteCRCIdleHighPadding(t *testing.T) {
	// CRC beats park unused bit-times high: free on a POD interface, so
	// the CRC overhead in zeros is only the CRC bits that are zero.
	blk := bitblock.Block{} // all-zero data
	bu := Raw{}.Encode(&blk)
	ext := AppendWriteCRC(bu, 4)
	for beat := bu.Beats + 1; beat < ext.Beats; beat++ {
		for p := 0; p < ext.Width; p++ {
			if ext.Driven(p) && !ext.Bit(beat, p) {
				t.Fatalf("pad beat %d pin %d driven low", beat, p)
			}
		}
	}
}

func TestAppendWriteCRCRejectsBadBeats(t *testing.T) {
	bu := Raw{}.Encode(&bitblock.Block{})
	for _, bad := range []int{0, 1, 3, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AppendWriteCRC(%d) did not panic", bad)
				}
			}()
			AppendWriteCRC(bu, bad)
		}()
	}
}
