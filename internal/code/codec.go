// Package code implements every coding scheme the paper uses or compares
// against: DBI (the DDR4 baseline), BI (the LPDDR3 baseline), the improved
// 3-LWC of Section 5.2.2, MiLC (Section 4.3.2), CAFO (the HPCA'15
// comparison point, Section 7.2), transition signaling (Sections 2.1.2 and
// 5.3), and the optimal static (8,k) limited-weight codes of the potential
// study in Figure 7.
//
// All codecs operate on 512-bit cache blocks laid out over a rank of eight
// x8 chips per Figure 12: chip c owns pins [9c, 9c+8), eight data pins plus
// the chip's DBI pin. Codecs that do not use the DBI pins park them
// (undriven pins cost no IO energy).
package code

import (
	"fmt"
	"strconv"
	"strings"

	"mil/internal/bitblock"
)

// BusWidth is the number of wires in the modeled data bus: 8 chips x
// (8 data + 1 DBI) pins.
const BusWidth = bitblock.Chips * PinsPerChip

// PinsPerChip is the per-chip pin budget (8 data + 1 DBI).
const PinsPerChip = 9

// DataPinsPerChip is the number of data pins per x8 chip.
const DataPinsPerChip = 8

// Codec encodes 512-bit blocks into bus bursts in the "zero domain": fewer
// zeros in the produced burst means less IO energy on a VDDQ-terminated
// (POD) interface, and - after transition signaling - fewer wire toggles on
// an unterminated interface.
type Codec interface {
	// Name identifies the scheme ("dbi", "milc", "lwc3", "cafo2", ...).
	Name() string
	// Beats is the burst length the scheme needs on the bus (BL in beats).
	Beats() int
	// ExtraLatency is the number of DRAM cycles the codec adds to tCL
	// (Section 4.4 / Table 4: one cycle for MiLC and 3-LWC, one per
	// iteration for CAFO, none for plain DBI).
	ExtraLatency() int
	// Encode produces the burst that appears on the bus for blk.
	Encode(blk *bitblock.Block) *bitblock.Burst
	// Decode recovers the original block from a burst produced by Encode.
	// Bursts Encode never produces - wrong dimensions, or bit patterns
	// outside the code (possible after transmission errors) - yield an
	// error, never a panic: decoders are the first line of corruption
	// detection on the read path, where DDR4 has no CRC.
	Decode(bu *bitblock.Burst) (bitblock.Block, error)
}

// ZeroCoster is the optional cost-probe fast path of a codec: CostZeros
// returns exactly Encode(blk).CountZeros() - the coded burst's zero count on
// driven pins - computed arithmetically from lane popcounts, without
// materializing the burst. Scheme-selection logic (the MiL write
// optimization, the tiered policy) probes candidate codecs with it instead
// of paying for trial encodes it discards. The probe contract is exact
// equality, enforced by TestCostZerosEquivalence for every implementation.
type ZeroCoster interface {
	CostZeros(blk *bitblock.Block) int
}

// CostZeros returns the number of zeros c's encoding of blk would carry,
// via the arithmetic probe when c implements ZeroCoster and a trial encode
// otherwise.
func CostZeros(c Codec, blk *bitblock.Block) int {
	if zc, ok := c.(ZeroCoster); ok {
		return zc.CostZeros(blk)
	}
	return c.Encode(blk).CountZeros()
}

// BurstEncoder is the optional allocation-free encode path of a codec:
// EncodeInto resets bu to the codec's dimensions and writes the coded burst
// into it, so a caller-held scratch burst absorbs the per-op allocation of
// Encode. The caller owns bu before and after the call and may not assume
// any previous contents survive.
type BurstEncoder interface {
	EncodeInto(blk *bitblock.Block, bu *bitblock.Burst)
}

// EncodeInto encodes blk with c into scratch when c supports it, falling
// back to a fresh Encode. The returned burst aliases scratch on the fast
// path, so callers must treat it as invalidated by the next EncodeInto with
// the same scratch.
func EncodeInto(c Codec, blk *bitblock.Block, scratch *bitblock.Burst) *bitblock.Burst {
	if be, ok := c.(BurstEncoder); ok && scratch != nil {
		be.EncodeInto(blk, scratch)
		return scratch
	}
	return c.Encode(blk)
}

// checkDims validates a burst's shape against what a codec's Decode
// expects; every decoder calls it before touching bits so corrupted or
// misrouted bursts surface as errors instead of index panics.
func checkDims(name string, bu *bitblock.Burst, beats int) error {
	if bu == nil {
		return fmt.Errorf("code: %s decode of nil burst", name)
	}
	if bu.Width != BusWidth || bu.Beats != beats {
		return fmt.Errorf("code: %s decode of %dx%d burst, want %dx%d",
			name, bu.Width, bu.Beats, BusWidth, beats)
	}
	return nil
}

// drivenAll*/drivenData* are the two canonical driven masks any codec in
// this package produces: every bus pin, or every pin minus the per-chip
// DBI pins. Init-time constants for checkDriven.
var (
	drivenAllLo, drivenAllHi   uint64
	drivenDataLo, drivenDataHi uint64
)

func init() {
	drivenAllLo = ^uint64(0)
	drivenAllHi = 1<<(BusWidth-64) - 1
	drivenDataLo, drivenDataHi = drivenAllLo, drivenAllHi
	for c := 0; c < bitblock.Chips; c++ {
		p := chipDBIPin(c)
		if p < 64 {
			drivenDataLo &^= 1 << p
		} else {
			drivenDataHi &^= 1 << (p - 64)
		}
	}
}

// checkDriven validates a burst's per-pin driven mask against the
// canonical mask the codec's Encode produces (all pins, or the DBI pins
// parked). Decoders call it right after checkDims: a burst whose driven
// set disagrees with the code was produced by a different scheme or a
// misrouted replay, and reading data off pins the encoder never drove
// would silently accept garbage.
func checkDriven(name string, bu *bitblock.Burst, dbiPins bool) error {
	wantLo, wantHi := drivenAllLo, drivenAllHi
	if !dbiPins {
		wantLo, wantHi = drivenDataLo, drivenDataHi
	}
	lo, hi := bu.DrivenWords()
	if lo != wantLo || hi != wantHi {
		return fmt.Errorf("code: %s decode of burst with driven mask %02x_%016x, want %02x_%016x",
			name, hi, lo, wantHi, wantLo)
	}
	return nil
}

// chipDataPin returns the global pin index of data pin i of chip c.
func chipDataPin(c, i int) int { return c*PinsPerChip + i }

// chipDBIPin returns the global pin index of chip c's DBI pin.
func chipDBIPin(c int) int { return c*PinsPerChip + DataPinsPerChip }

// parkDBIPins marks every chip's DBI pin undriven for schemes that do not
// use it (MiLC, CAFO, raw data).
func parkDBIPins(bu *bitblock.Burst) {
	for c := 0; c < bitblock.Chips; c++ {
		bu.SetDriven(chipDBIPin(c), false)
	}
}

// ByName constructs a codec from its registry name. CAFO accepts any
// iteration count via "cafoN", VLWC any weight bound via "vlwcN", and ZAD
// any chunk granularity via "zadN"/"zadNr" (trailing r = resilient mask).
// It returns an error for unknown names.
func ByName(name string) (Codec, error) {
	switch name {
	case "raw":
		return Raw{}, nil
	case "dbi":
		return DBI{}, nil
	case "milc":
		return MiLC{}, nil
	case "lwc3":
		return LWC3{}, nil
	case "hybrid":
		return Hybrid{}, nil
	case "optmem":
		return DefaultOptMem(), nil
	case "vlwc":
		return DefaultVLWC(), nil
	case "zad":
		return NewZAD(4, false)
	case "zadr":
		return NewZAD(4, true)
	}
	var iters int
	if n, err := fmt.Sscanf(name, "cafo%d", &iters); n == 1 && err == nil && iters > 0 {
		return NewCAFO(iters), nil
	}
	var w int
	if n, err := fmt.Sscanf(name, "vlwc%d", &w); n == 1 && err == nil {
		return NewVLWC(w, nil)
	}
	if spec, ok := strings.CutPrefix(name, "zad"); ok {
		resilient := strings.HasSuffix(spec, "r")
		if g, err := strconv.Atoi(strings.TrimSuffix(spec, "r")); err == nil {
			return NewZAD(g, resilient)
		}
	}
	return nil, fmt.Errorf("code: unknown codec %q", name)
}

// Names lists the registry names ByName accepts (CAFO shown for the two
// iteration counts the paper evaluates, ZAD for both mask modes at the
// default 4-beat granularity).
func Names() []string {
	return []string{"raw", "dbi", "milc", "lwc3", "hybrid", "cafo2", "cafo4",
		"optmem", "vlwc", "zad", "zadr"}
}
