module mil

go 1.22
