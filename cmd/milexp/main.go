// Command milexp regenerates the paper's tables and figures and writes a
// markdown report.
//
// Usage:
//
//	milexp [-ops 6000] [-j N] [-out EXPERIMENTS.md] [-only "Figure 16"] [-q]
//
// Without -only, every experiment runs (a few hundred simulations). With
// -only, experiments whose ID contains the given substring run. Results
// within one invocation are shared across figures, and fresh simulations
// execute on a worker pool -j wide (default GOMAXPROCS). The report is
// byte-identical for every -j: scheduling never leaks into the tables.
//
// -stats appends the sweep's aggregated observability metrics snapshot
// (internal/obs CSV: counters, gauges, and the bus idle-window histogram,
// summed over every fresh simulation) to the report destination. The
// snapshot is byte-identical for every -j too.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mil/internal/experiments"
	"mil/internal/obs"
	"mil/internal/sim"
)

func main() {
	var (
		ops      = flag.Int64("ops", sim.DefaultMemOps, "memory operations per hardware thread")
		workers  = flag.Int("j", 0, "max simulations in flight (0 = GOMAXPROCS)")
		out      = flag.String("out", "", "write the report to this file (default stdout)")
		only     = flag.String("only", "", "run only experiments whose ID contains this substring")
		progress = flag.Bool("progress", true, "stream per-run progress and timing on stderr")
		quiet    = flag.Bool("q", false, "shortcut for -progress=false")
		seed     = flag.Uint64("seed", 0, "base stream seed (0 = legacy benchmark-derived streams)")
		stats    = flag.Bool("stats", false, "append the aggregated observability metrics snapshot (CSV) to the report")
	)
	flag.Parse()

	r := experiments.NewRunner(*ops)
	r.Workers = *workers
	r.BaseSeed = *seed
	if *stats {
		r.Metrics = obs.NewRegistry()
	}
	if *progress && !*quiet {
		r.Progress = os.Stderr
	}

	start := time.Now()
	tables, err := r.Tables(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "milexp:", err)
		os.Exit(1)
	}

	var sb strings.Builder
	sb.WriteString("# MiL reproduction — regenerated tables and figures\n\n")
	fmt.Fprintf(&sb, "Per-thread memory-op budget: %d. Every number is produced by the\n", *ops)
	sb.WriteString("simulator in this repository; see EXPERIMENTS.md for the archived run\n")
	sb.WriteString("and the paper-vs-measured commentary.\n\n")
	for _, t := range tables {
		sb.WriteString(t.String())
		sb.WriteString("\n")
	}
	if r.Metrics != nil {
		sb.WriteString("## Observability metrics snapshot\n\n")
		sb.WriteString("Aggregated over every fresh simulation of this sweep (see DESIGN.md §5.9).\n\n```csv\n")
		if err := r.Metrics.WriteCSV(&sb); err != nil {
			fmt.Fprintln(os.Stderr, "milexp:", err)
			os.Exit(1)
		}
		sb.WriteString("```\n")
	}

	if r.Progress != nil {
		runs, simTime := r.Stats()
		fmt.Fprintf(os.Stderr, "milexp: %d simulations, %.1fs simulated serially, %.1fs wall\n",
			runs, simTime.Seconds(), time.Since(start).Seconds())
	}

	if *out == "" {
		fmt.Print(sb.String())
		return
	}
	if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "milexp:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "milexp: wrote %s\n", *out)
}
