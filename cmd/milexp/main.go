// Command milexp regenerates the paper's tables and figures and writes a
// markdown report.
//
// Usage:
//
//	milexp [-ops 6000] [-j N] [-out EXPERIMENTS.md] [-only "Figure 16"] [-q]
//
// Without -only, every experiment runs (a few hundred simulations). With
// -only, experiments whose ID contains the given substring run. Results
// within one invocation are shared across figures, and fresh simulations
// execute on a worker pool -j wide (default GOMAXPROCS). The report is
// byte-identical for every -j: scheduling never leaks into the tables.
//
// -stats file writes the sweep's aggregated observability metrics
// snapshot (internal/obs CSV: counters, gauges, and the bus idle-window
// histogram, summed over every fresh simulation) to the file, truncating
// any previous content. The snapshot is byte-identical for every -j too.
//
// -trace-cache turns on the record/replay second-level cache (DESIGN.md
// §5.11): the first cell of each front-end timing class records its memory
// trace during a full simulation, and every sibling cell replays it,
// simulating only the memory backend. On an exact miss the cluster index
// (§5.12) additionally trials traces recorded by sibling timing classes
// over the same front-end inputs, adopting any that replay clean under the
// divergence fence. Tables are byte-identical with the flag on or off —
// the replay driver verifies every recorded cycle and falls back to a
// full simulation on divergence. Incompatible with -stats (replayed cells
// skip the front end, making the snapshot scheduling-dependent).
// -trace-cache-limit bounds the store's resident bytes with LRU eviction
// of whole streams, so a long-lived sweep cannot grow the cache without
// bound (0 = unlimited; an evicted class re-records on next use).
//
// Long sweeps are crash-safe with -resume file: every completed cell is
// appended to the JSONL journal as it settles, and rerunning the same
// command after a crash (or Ctrl-C) replays the journal, skips the
// finished cells, and simulates only the remainder. The journal keys
// embed the full run configuration, so a journal written under different
// flags never matches (and a torn final record from a crash is detected
// and dropped). -cell-timeout bounds any one simulation's wall-clock
// time, with capped-backoff retries, so a wedged cell fails instead of
// wedging the sweep. Artifacts (-out, -stats) are written atomically via
// a temp file and rename: a crash mid-write never leaves a half-report.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mil/internal/experiments"
	"mil/internal/obs"
	"mil/internal/scheme"
	"mil/internal/sim"
	"mil/internal/trace"
)

func main() {
	var (
		ops      = flag.Int64("ops", sim.DefaultMemOps, "memory operations per hardware thread")
		workers  = flag.Int("j", 0, "max simulations in flight (0 = GOMAXPROCS)")
		out      = flag.String("out", "", "write the report to this file (default stdout)")
		only     = flag.String("only", "", "run only experiments whose ID contains this substring")
		progress = flag.Bool("progress", true, "stream per-run progress and timing on stderr")
		quiet    = flag.Bool("q", false, "shortcut for -progress=false")
		seed     = flag.Uint64("seed", 0, "base stream seed (0 = legacy benchmark-derived streams)")
		stats    = flag.String("stats", "", "write the aggregated observability metrics snapshot (CSV) to this file (truncated, not appended)")
		resume   = flag.String("resume", "", "journal completed cells to this file and skip them when rerun (crash-safe sweeps)")
		timeout  = flag.Duration("cell-timeout", 0, "wall-clock budget per simulation, retried with backoff (0 = unbounded)")
		traceOn  = flag.Bool("trace-cache", false, "replay recorded memory traces across cells sharing a front-end timing class (tables are byte-identical either way)")
		traceCap = flag.Int64("trace-cache-limit", 0, "cap the trace cache's resident bytes, evicting least-recently-used streams (0 = unlimited; implies nothing without -trace-cache)")

		listSchemes = flag.Bool("list-schemes", false, "print the scheme registry table and exit")
	)
	flag.Parse()

	if *listSchemes {
		scheme.WriteTable(os.Stdout)
		return
	}

	if *traceOn && *stats != "" {
		// Which cell of a class records its trace is scheduling-dependent
		// under -j > 1, which would break the -stats snapshot's byte-identity
		// across worker counts; refuse the combination rather than silently
		// disabling one side.
		fmt.Fprintln(os.Stderr, "milexp: -trace-cache cannot combine with -stats (replayed cells skip the front end, so the metrics snapshot would depend on scheduling)")
		os.Exit(2)
	}

	r := experiments.NewRunner(*ops)
	r.Workers = *workers
	r.BaseSeed = *seed
	r.CellTimeout = *timeout
	if *stats != "" {
		r.Metrics = obs.NewRegistry()
	}
	if *traceCap < 0 {
		fmt.Fprintf(os.Stderr, "milexp: -trace-cache-limit %d: the byte cap cannot be negative\n", *traceCap)
		os.Exit(2)
	}
	if *traceOn {
		r.Traces = trace.NewStore()
		r.Traces.SetLimit(*traceCap)
	}
	if *progress && !*quiet {
		r.Progress = os.Stderr
	}
	if *resume != "" {
		replayed, err := r.OpenJournal(*resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "milexp:", err)
			os.Exit(1)
		}
		defer r.CloseJournal()
		if replayed > 0 {
			fmt.Fprintf(os.Stderr, "milexp: resumed %d completed cells from %s\n", replayed, *resume)
		}
	}

	start := time.Now()
	tables, err := r.Tables(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "milexp:", err)
		if errors.Is(err, scheme.ErrUnknown) {
			fmt.Fprintln(os.Stderr, "\nthe registry knows:")
			scheme.WriteTable(os.Stderr)
			os.Exit(2)
		}
		os.Exit(1)
	}

	var sb strings.Builder
	sb.WriteString("# MiL reproduction — regenerated tables and figures\n\n")
	fmt.Fprintf(&sb, "Per-thread memory-op budget: %d. Every number is produced by the\n", *ops)
	sb.WriteString("simulator in this repository; see EXPERIMENTS.md for the archived run\n")
	sb.WriteString("and the paper-vs-measured commentary.\n\n")
	for _, t := range tables {
		sb.WriteString(t.String())
		sb.WriteString("\n")
	}

	if r.Metrics != nil {
		var csv strings.Builder
		if err := r.Metrics.WriteCSV(&csv); err != nil {
			fmt.Fprintln(os.Stderr, "milexp:", err)
			os.Exit(1)
		}
		if err := writeFileAtomic(*stats, []byte(csv.String())); err != nil {
			fmt.Fprintln(os.Stderr, "milexp:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "milexp: wrote %s\n", *stats)
	}

	if r.Progress != nil {
		runs, simTime := r.Stats()
		fmt.Fprintf(os.Stderr, "milexp: %d simulations, %.1fs simulated serially, %.1fs wall\n",
			runs, simTime.Seconds(), time.Since(start).Seconds())
		if hits, replayTime := r.TraceStats(); hits > 0 {
			fmt.Fprintf(os.Stderr, "milexp: %d cells replayed from recorded traces (%.1fs)\n",
				hits, replayTime.Seconds())
		}
		if ch, ct, cm := r.ClusterStats(); ct > 0 {
			fmt.Fprintf(os.Stderr, "milexp: cluster store adopted %d classes in %d trials (%d recorded fresh)\n",
				ch, ct, cm)
		}
	}

	if *out == "" {
		fmt.Print(sb.String())
		return
	}
	if err := writeFileAtomic(*out, []byte(sb.String())); err != nil {
		fmt.Fprintln(os.Stderr, "milexp:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "milexp: wrote %s\n", *out)
}

// writeFileAtomic writes data to path via a temp file in the same
// directory and a rename, so readers (and crashes) never observe a
// partial artifact.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
