// Command milexp regenerates the paper's tables and figures and writes a
// markdown report.
//
// Usage:
//
//	milexp [-ops 6000] [-out EXPERIMENTS.md] [-only "Figure 16"] [-q]
//
// Without -only, every experiment runs (a few hundred simulations; expect
// minutes). With -only, experiments whose ID contains the given substring
// run. Results within one invocation are shared across figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mil/internal/experiments"
	"mil/internal/sim"
)

func main() {
	var (
		ops   = flag.Int64("ops", sim.DefaultMemOps, "memory operations per hardware thread")
		out   = flag.String("out", "", "write the report to this file (default stdout)")
		only  = flag.String("only", "", "run only experiments whose ID contains this substring")
		quiet = flag.Bool("q", false, "suppress per-run progress on stderr")
	)
	flag.Parse()

	r := experiments.NewRunner(*ops)
	if !*quiet {
		r.Progress = os.Stderr
	}

	var sb strings.Builder
	sb.WriteString("# MiL reproduction — regenerated tables and figures\n\n")
	fmt.Fprintf(&sb, "Per-thread memory-op budget: %d. Every number is produced by the\n", *ops)
	sb.WriteString("simulator in this repository; see EXPERIMENTS.md for the archived run\n")
	sb.WriteString("and the paper-vs-measured commentary.\n\n")
	for _, g := range experiments.Generators() {
		if *only != "" && !strings.Contains(g.ID, *only) {
			continue
		}
		t, err := g.Run(r)
		if err != nil {
			fmt.Fprintln(os.Stderr, "milexp:", err)
			os.Exit(1)
		}
		sb.WriteString(t.String())
		sb.WriteString("\n")
	}

	if *out == "" {
		fmt.Print(sb.String())
		return
	}
	if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "milexp:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "milexp: wrote %s\n", *out)
}
