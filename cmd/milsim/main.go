// Command milsim runs one simulation configuration and prints a detailed
// report: performance, bus statistics, zero counts, and the DRAM/system
// energy breakdown.
//
// Usage:
//
//	milsim [-system server|mobile] [-scheme mil] [-bench GUPS] [-ops 6000] [-x 8] [-verify] [-j N]
//
// Scheme names come from the scheme registry (internal/scheme): the
// baselines (baseline/bi/raw), the fixed codecs (milc/cafo2/cafo4/lwc3),
// the MiL family (mil/mil3/mil-nowropt/mil-x4/mil-degrade), the fixed
// burst lengths bl10-bl16, and the adaptive mil-bandit. -list-schemes
// prints the annotated table (aliases, timing class, platforms).
// With -bench all the suite runs on a worker pool -j wide (default
// GOMAXPROCS); reports print in suite order regardless of -j, and -progress
// streams per-run completion lines on stderr. -steplock selects the
// per-cycle reference loop; results are byte-identical to the default
// event-driven core, just slower (it exists for differential debugging).
//
// Observability (DESIGN.md §5.9): -trace out.json records the run's DRAM
// commands, data-bus busy/idle spans, and event-core fire/skip spans as
// Chrome trace-event JSON — open it at https://ui.perfetto.dev (or
// chrome://tracing). Tracing is single-run only, so -trace rejects
// -bench all. -metrics out.csv writes the metrics-registry snapshot
// (counters/gauges/histograms, including the bus idle-window histogram);
// it composes with -bench all and any -j, and the snapshot is
// byte-identical at any worker count. -cmdlog file keeps the older
// plain-text command log (one line per command; forces -j 1).
//
// Record/replay (DESIGN.md §5.11): -record-trace file writes the run's
// memory trace — the ordered request stream at the cache↔memctrl boundary —
// after a normal full simulation. -replay-trace file replays one, driving
// the memory controller directly (no cores, caches, or workload streams)
// and reproducing the full simulation's report byte for byte; the replayed
// scheme may be any scheme in the same front-end timing class as the
// recording one (e.g. a baseline trace replays for raw and bi). The file
// carries the recording configuration's front-end hash, and a mismatched
// replay is rejected up front; a trace that diverges mid-replay (a wrong
// same-class assumption) fails with a divergence error rather than
// reporting silently wrong numbers. Both flags are single-run only and
// reject -bench all and -checkpoint/-resume.
//
// Checkpoint/resume (DESIGN.md §5.10): -checkpoint file arms suspension —
// SIGINT/SIGTERM snapshot the run to the file and exit with status 3
// (a second signal kills immediately). -checkpoint-every N additionally
// writes the file every N CPU cycles while running to completion, and
// -checkpoint-at N suspends deterministically at cycle N (testing and
// CI). -resume file restarts a suspended run; every model flag must match
// the original invocation — the snapshot carries a config hash and a
// mismatch is rejected rather than silently diverging. Use -metrics on
// both legs (or neither) so the counters cross the suspend. All four
// flags describe a single run and reject -bench all.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mil/internal/fault"
	"mil/internal/memctrl"
	"mil/internal/obs"
	"mil/internal/profiling"
	schemereg "mil/internal/scheme"
	"mil/internal/sim"
	memtrace "mil/internal/trace"
	"mil/internal/workload"
)

func main() {
	var (
		system = flag.String("system", "server", "platform: server (DDR4) or mobile (LPDDR3)")
		scheme = flag.String("scheme", "mil", "coding scheme: "+strings.Join(sim.SchemeNames(), ", "))
		bench  = flag.String("bench", "GUPS", "benchmark: "+strings.Join(workload.Names(), ", ")+", or 'all'")
		ops    = flag.Int64("ops", sim.DefaultMemOps, "memory operations per hardware thread")
		x      = flag.Int("x", 0, "MiL look-ahead distance override (0 = default)")
		verify = flag.Bool("verify", false, "decode and check every burst")
		pd     = flag.Bool("powerdown", false, "enable the fast power-down extension")

		trace   = flag.String("trace", "", "write a Perfetto (Chrome trace-event) JSON trace to this file (single benchmark only)")
		metrics = flag.String("metrics", "", "write the observability metrics snapshot (CSV) to this file")
		cmdlog  = flag.String("cmdlog", "", "write a plain-text DRAM command log to this file")

		recordTrace = flag.String("record-trace", "", "record the run's memory trace to this file (single benchmark only)")
		replayTrace = flag.String("replay-trace", "", "replay a recorded memory trace, simulating only the memory backend (single benchmark only)")

		ber      = flag.Float64("ber", 0, "link bit-error rate per driven bit-time (0 = clean link)")
		bursterr = flag.Float64("bursterr", 0, "per-transfer probability of a correlated error burst")
		burstlen = flag.Int("burstlen", 0, "correlated error run length in beats (0 = default 4)")
		stuckpin = flag.Int("stuckpin", -1, "bus pin stuck at -stuckval (-1 = none)")
		stuckval = flag.Bool("stuckval", false, "level the stuck pin is read at")
		writecrc = flag.Bool("writecrc", false, "enable DDR4 write CRC with NACK-and-replay (server only)")
		caparity = flag.Bool("caparity", false, "enable DDR4 command/address parity (server only)")
		retries  = flag.Int("retries", 0, "replay budget per request (0 = default 8)")
		seed     = flag.Uint64("seed", 0, "run seed for streams and fault injection (0 = legacy streams)")
		steplock = flag.Bool("steplock", false, "use the per-cycle reference loop instead of the event core")
		workers  = flag.Int("j", 0, "runs in flight for -bench all (0 = GOMAXPROCS)")
		progress = flag.Bool("progress", false, "stream per-run completion lines on stderr")

		checkpoint      = flag.String("checkpoint", "", "snapshot file: arms SIGINT/SIGTERM suspend-to-disk (single benchmark only)")
		checkpointEvery = flag.Int64("checkpoint-every", 0, "also write -checkpoint every N CPU cycles (0 = only on signal)")
		checkpointAt    = flag.Int64("checkpoint-at", 0, "suspend to -checkpoint at CPU cycle N and exit 3 (0 = disabled)")
		resume          = flag.String("resume", "", "resume a run suspended to this snapshot file (flags must match the original run)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")

		listSchemes = flag.Bool("list-schemes", false, "print the scheme registry table and exit")
	)
	flag.Parse()

	if *listSchemes {
		schemereg.WriteTable(os.Stdout)
		return
	}

	// Flag-combo validation, before any side effects (profiles, files,
	// signal handlers): these invocations can never succeed, so fail them
	// up front with a usage-style exit code.
	if err := func() error {
		if *bench == "all" {
			if *trace != "" {
				return fmt.Errorf("-trace records a single run's timeline; pick one benchmark instead of -bench all")
			}
			if *checkpoint != "" || *resume != "" {
				return fmt.Errorf("-checkpoint/-resume describe a single run; pick one benchmark instead of -bench all")
			}
			if *recordTrace != "" || *replayTrace != "" {
				return fmt.Errorf("-record-trace/-replay-trace describe a single run; pick one benchmark instead of -bench all")
			}
		}
		if *recordTrace != "" && *replayTrace != "" {
			return fmt.Errorf("-record-trace and -replay-trace are mutually exclusive (a replayed run has no front end to record)")
		}
		if (*recordTrace != "" || *replayTrace != "") && (*checkpoint != "" || *resume != "") {
			return fmt.Errorf("-record-trace/-replay-trace cannot combine with -checkpoint/-resume (the trace layer and the snapshot layer each own the run)")
		}
		if *checkpoint == "" && (*checkpointEvery > 0 || *checkpointAt > 0) {
			return fmt.Errorf("-checkpoint-every/-checkpoint-at need -checkpoint to name the snapshot file")
		}
		if *checkpointEvery < 0 || *checkpointAt < 0 {
			return fmt.Errorf("-checkpoint-every/-checkpoint-at must be >= 0")
		}
		return nil
	}(); err != nil {
		fmt.Fprintln(os.Stderr, "milsim:", err)
		os.Exit(2)
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "milsim:", err)
		os.Exit(1)
	}
	// Finish the profiles on every exit path below (os.Exit skips defers).
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "milsim:", err)
		}
		os.Exit(code)
	}

	fc := fault.Config{BER: *ber, BurstRate: *bursterr, BurstLen: *burstlen}
	if *stuckpin >= 0 {
		fc.StuckPins = []int{*stuckpin}
		fc.StuckVal = *stuckval
	}

	var traceW io.Writer
	if *cmdlog != "" {
		f, err := os.Create(*cmdlog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "milsim:", err)
			exit(1)
		}
		defer f.Close()
		traceW = bufio.NewWriter(f)
		defer traceW.(*bufio.Writer).Flush()
	}

	// Observability sinks. The metrics registry is shared by every run (its
	// updates commute, so the snapshot is -j independent); the trace
	// recorder holds one run's timeline and therefore rejects -bench all.
	var reg *obs.Registry
	var rec *obs.Trace
	if *metrics != "" {
		reg = obs.NewRegistry()
	}
	if *trace != "" {
		rec = obs.NewTrace(0)
	}
	var obsLayer *obs.Obs
	if reg != nil || rec != nil {
		obsLayer = &obs.Obs{Metrics: reg, Trace: rec}
	}

	// With -checkpoint armed, the first SIGINT/SIGTERM asks the run to
	// suspend at its next landed cycle; detaching the handler right after
	// restores the default disposition, so a second signal kills a run
	// that is stuck or mid-snapshot.
	var intr *atomic.Bool
	if *checkpoint != "" {
		intr = new(atomic.Bool)
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigc
			intr.Store(true)
			signal.Stop(sigc)
			fmt.Fprintf(os.Stderr, "milsim: suspending to %s (signal again to kill)\n", *checkpoint)
		}()
	}

	kind := sim.Server
	switch *system {
	case "server":
	case "mobile":
		kind = sim.Mobile
	default:
		fmt.Fprintf(os.Stderr, "milsim: unknown system %q\n", *system)
		exit(2)
	}

	benches := []string{*bench}
	if *bench == "all" {
		benches = workload.Names()
	}

	j := *workers
	if j <= 0 {
		j = runtime.GOMAXPROCS(0)
	}
	if traceW != nil {
		// A shared trace writer would interleave commands from parallel runs.
		j = 1
	}

	// Run the requested benchmarks on a bounded pool. sim.Run is re-entrant
	// (see internal/sim), so parallel runs share nothing; each report is
	// buffered and printed in suite order so -j never reorders output.
	type outcome struct {
		res *sim.Result
		err error
	}
	results := make([]outcome, len(benches))
	sem := make(chan struct{}, j)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	// The memory trace of a -record-trace run, and the front-end hash that
	// binds the file (single-run only, so no synchronization needed beyond
	// the WaitGroup).
	var recorded *memtrace.Trace
	var recordedHash uint64
	var replayed *memtrace.Trace
	var replayElapsed time.Duration
	for i, name := range benches {
		b, err := workload.ByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "milsim:", err)
			exit(2)
		}
		i, name, b := i, name, b
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			cfg := sim.Config{
				System: kind, Scheme: *scheme, Benchmark: b,
				MemOpsPerThread: *ops, LookaheadX: *x, Verify: *verify,
				PowerDown: *pd, Trace: traceW, Obs: obsLayer,
				Fault: fc, WriteCRC: *writecrc, CAParity: *caparity,
				Retry:    memctrl.RetryConfig{MaxRetries: *retries},
				Seed:     *seed,
				Steplock: *steplock,
				Checkpoint: *checkpoint, CheckpointEvery: *checkpointEvery,
				CheckpointAt: *checkpointAt, Interrupt: intr, Resume: *resume,
			}
			if *recordTrace != "" {
				recordedHash = cfg.FrontEndHash()
				cfg.RecordTrace = func(t *memtrace.Trace) { recorded = t }
			}
			if *replayTrace != "" {
				tr, err := memtrace.ReadFile(*replayTrace, cfg.FrontEndHash())
				if err != nil {
					results[i] = outcome{nil, err}
					return
				}
				cfg.ReplayTrace = tr
				replayed = tr
			}
			res, err := sim.Run(cfg)
			if *replayTrace != "" {
				replayElapsed = time.Since(start)
			}
			results[i] = outcome{res, err}
			if *progress {
				progressMu.Lock()
				fmt.Fprintf(os.Stderr, "milsim: %s/%s/%s done (%.0fms)\n",
					kind, *scheme, name, float64(time.Since(start).Milliseconds()))
				progressMu.Unlock()
			}
		}()
	}
	wg.Wait()

	for _, o := range results {
		if errors.Is(o.err, sim.ErrCheckpointed) {
			fmt.Fprintf(os.Stderr, "milsim: run suspended to %s; restart with -resume %s (and the same flags) to continue\n",
				*checkpoint, *checkpoint)
			exit(3)
		}
		if o.err != nil {
			fmt.Fprintln(os.Stderr, "milsim:", o.err)
			if errors.Is(o.err, schemereg.ErrUnknown) {
				fmt.Fprintln(os.Stderr, "\nthe registry knows:")
				schemereg.WriteTable(os.Stderr)
				exit(2)
			}
			exit(1)
		}
		report(o.res)
	}

	if *recordTrace != "" && recorded != nil {
		if err := memtrace.WriteFile(*recordTrace, recordedHash, recorded); err != nil {
			fmt.Fprintln(os.Stderr, "milsim:", err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "milsim: recorded %d boundary events to %s\n", len(recorded.Events), *recordTrace)
	}
	if replayed != nil {
		// The replay fast path's visible receipt: how much backend work the
		// verified replay drove, and what it cost (compare against a fresh
		// run of the same flags to see the speedup first-hand).
		fmt.Fprintf(os.Stderr, "milsim: replayed %d boundary events over %d DRAM cycles in %.0fms\n",
			len(replayed.Events), replayed.DRAMCycles, float64(replayElapsed.Milliseconds()))
	}
	if rec != nil {
		if err := writeFileWith(*trace, rec.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "milsim:", err)
			exit(1)
		}
		if n := rec.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "milsim: trace buffer filled; %d events dropped\n", n)
		}
	}
	if reg != nil {
		if err := writeFileWith(*metrics, reg.WriteCSV); err != nil {
			fmt.Fprintln(os.Stderr, "milsim:", err)
			exit(1)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "milsim:", err)
		os.Exit(1)
	}
}

// writeFileWith streams write(w) into path through a buffered writer.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := write(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func report(r *sim.Result) {
	m := r.Mem
	fmt.Printf("== %s / %s / %s ==\n", r.System, r.Benchmark, r.Scheme)
	fmt.Printf("  cycles: cpu=%d dram=%d (%.3f ms)\n", r.CPUCycles, r.DRAMCycles, r.Seconds*1e3)
	fmt.Printf("  instructions: %d (IPC %.2f)\n", r.Instructions, float64(r.Instructions)/float64(r.CPUCycles))
	fmt.Printf("  mem: reads=%d writes=%d acts=%d refs=%d fwd=%d\n", m.Reads, m.Writes, m.Activates, m.Refreshes, m.Forwards)
	fmt.Printf("  bus: util=%.1f%% idle-pending=%.1f%% idle-empty=%.1f%% back-to-back=%.1f%%\n",
		100*m.BusUtilization(),
		100*float64(m.IdlePendingCycles)/float64(m.Ticks),
		100*float64(m.IdleEmptyCycles)/float64(m.Ticks),
		100*float64(m.BackToBack)/float64(max64(m.GapPairs, 1)))
	fmt.Printf("  zeros: %d (%.2f per burst) cost-units=%d\n", m.Zeros,
		float64(m.Zeros)/float64(max64(m.ColumnCommands(), 1)), m.CostUnits)
	if len(m.CodecBursts) > 1 {
		var names []string
		for k := range m.CodecBursts {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Printf("  codecs:")
		for _, k := range names {
			fmt.Printf(" %s=%.1f%%", k, 100*float64(m.CodecBursts[k])/float64(m.ColumnCommands()))
		}
		fmt.Println()
	}
	// Reliability section, only when the link actually saw trouble (on a
	// clean run the whole block is absent and the report matches the seed).
	if m.BitErrors > 0 || m.Failures() > 0 || m.CRCBeats > 0 {
		fmt.Printf("  link: bit-errors=%d silent=%d crc-alerts=%d ca-alerts=%d decode-fails=%d\n",
			m.BitErrors, m.SilentErrors, m.WriteCRCAlerts, m.CAParityAlerts, m.ReadDecodeFailures)
		fmt.Printf("  retry: writes=%d reads=%d exhausted=%d storms=%d wasted-beats=%d retry-energy=%.3g J\n",
			m.WriteRetries, m.ReadRetries, m.RetriesExhausted, m.RetryStorms, m.RetryBeats, r.RetryJ)
		if m.CRCBeats > 0 {
			fmt.Printf("  write-crc: extra-beats=%d (%.1f%% of data beats)\n",
				m.CRCBeats, 100*float64(m.CRCBeats)/float64(max64(m.BurstBeats-m.CRCBeats, 1)))
		}
	}
	d := r.DRAM
	fmt.Printf("  dram energy: total=%.3g J  background=%.1f%% act=%.1f%% rdwr=%.1f%% ref=%.1f%% io=%.1f%% codec=%.1f%%\n",
		d.Total(), 100*d.Background/d.Total(), 100*d.ActPre/d.Total(), 100*d.RdWr/d.Total(),
		100*d.Refresh/d.Total(), 100*d.IO/d.Total(), 100*d.Codec/d.Total())
	fmt.Printf("  system energy: %.3g J (dram %.1f%%)\n", r.SystemJ(), 100*d.Total()/r.SystemJ())
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
