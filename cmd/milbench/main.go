// Command milbench measures the sweep engine and the codec hot path and
// writes the numbers to a machine-readable JSON file (BENCH_sweep.json in
// the repo root, via make bench) so performance can be tracked across
// revisions.
//
// Two layers are timed:
//
//   - the full figure sweep on a reduced workload suite, three legs
//     sharing one trace store (DESIGN.md §5.11–5.12): first serially
//     (-j 1) from cold, which pays for every recording; then on the
//     worker pool (-j N) warm, whose ratio against the serial leg is the
//     engine's parallel speedup on this host; then warm at -j 1 again,
//     where every cell replays — that leg's wall-clock against the fresh
//     serial leg is replay_speedup, the honest per-leg answer to "does
//     replaying beat simulating?" (a sum of per-cell times under -j N
//     timesharing would overstate replay cost on a loaded host). The
//     simulations field keeps its historical meaning (full front-end
//     simulations in the parallel, measured leg); recorded_traces counts
//     distinct resident streams — with the cluster index, timing classes
//     that adopt a sibling's stream share one — and cluster_hits/
//     cluster_trials report the adoptions and the divergence-fence trials
//     they cost.
//   - every codec's Encode and Decode on random (worst-case) cache lines,
//     since the codecs dominate per-simulation cost.
//
// Past generations of the report accumulate in the trajectory array:
// whenever milbench overwrites BENCH_sweep.json, the overwritten report's
// headline numbers are appended, oldest first, so a committed file carries
// the full performance history across revisions rather than a single
// before/after pair (the pre-trajectory "previous" field is migrated).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"mil/internal/bitblock"
	"mil/internal/code"
	"mil/internal/experiments"
	"mil/internal/profiling"
	"mil/internal/trace"

	"math/rand"
)

type report struct {
	Generated  string       `json:"generated"`
	GoOS       string       `json:"goos"`
	GoArch     string       `json:"goarch"`
	NumCPU     int          `json:"num_cpu"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Sweep      sweepReport  `json:"sweep"`
	Codecs     []codecTimes `json:"codecs"`
	// Trajectory holds the headline numbers of every report this file has
	// carried before, oldest first; each milbench run appends the report it
	// overwrites. A committed BENCH_sweep.json therefore tracks performance
	// across every revision that regenerated it, not just the last pair.
	Trajectory []trajectoryEntry `json:"trajectory,omitempty"`
}

type trajectoryEntry struct {
	Generated        string       `json:"generated"`
	SerialSeconds    float64      `json:"serial_seconds"`
	ParallelSeconds  float64      `json:"parallel_seconds"`
	ReplayLegSeconds float64      `json:"replay_leg_seconds,omitempty"`
	ReplaySpeedup    float64      `json:"replay_speedup,omitempty"`
	Simulations      int64        `json:"simulations,omitempty"`
	RecordedTraces   int64        `json:"recorded_traces,omitempty"`
	TraceHits        int64        `json:"trace_hits,omitempty"`
	ClusterHits      int64        `json:"cluster_hits,omitempty"`
	ClusterTrials    int64        `json:"cluster_trials,omitempty"`
	EventsFired      int64        `json:"events_fired,omitempty"`
	CyclesSkipped    int64        `json:"cycles_skipped,omitempty"`
	Codecs           []codecTimes `json:"codecs,omitempty"`
}

type sweepReport struct {
	MemOps  int64    `json:"mem_ops"`
	Suite   []string `json:"suite"`
	Tables  int      `json:"tables"`
	Workers int      `json:"workers"`
	// Simulations counts full front-end simulations in the parallel
	// (measured) leg — the same leg every pre-trace-cache report counted,
	// so the trajectory stays comparable across revisions. With the shared
	// trace store warm from the serial leg it is the number of cells the
	// replay engine could NOT serve. RecordedTraces is the recording work
	// the serial leg paid for that: the number of distinct streams
	// resident after all legs — with the cluster index, front-end timing
	// classes whose boundary streams prove identical under the divergence
	// fence adopt one recording instead of each publishing their own.
	// ClusterHits counts those adoptions and ClusterTrials the candidate
	// replays the fence arbitrated (summed over all legs; only recording
	// leaders trial). TraceHits counts the cells satisfied by replay
	// across all legs. Earlier generations also emitted replay_seconds,
	// the per-cell replay wall-clock summed over every leg; on a loaded
	// host -j N timesharing multiplied each cell's apparent time by the
	// contention factor (7.4 "seconds" of replay in a 1.0s leg), so the
	// field is gone rather than recomputed — ReplayLegSeconds is the
	// honest number, and old trajectory entries never carried the bogus
	// sum in the first place.
	Simulations     int64   `json:"simulations"`
	RecordedTraces  int64   `json:"recorded_traces"`
	TraceHits       int64   `json:"trace_hits"`
	ClusterHits     int64   `json:"cluster_hits"`
	ClusterTrials   int64   `json:"cluster_trials"`
	ClusterMisses   int64   `json:"cluster_misses"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	// ReplayLegSeconds is the wall-clock of a third, warm, -j 1 sweep leg
	// in which every cell replays; ReplaySpeedup = SerialSeconds /
	// ReplayLegSeconds is the honest fresh-vs-replay ratio (≥ 1.0 means
	// replaying a sweep beats re-simulating it serially).
	ReplayLegSeconds float64 `json:"replay_leg_seconds"`
	ReplaySpeedup    float64 `json:"replay_speedup"`
	// Event-core counters summed over the serial leg's fresh simulations:
	// CPU cycles the main loop actually fired versus cycles proven no-ops
	// and skipped. skipped/(fired+skipped) is the work the event core
	// avoids.
	EventsFired   int64 `json:"events_fired"`
	CyclesSkipped int64 `json:"cycles_skipped"`
}

type codecTimes struct {
	Name           string  `json:"name"`
	EncodeNsOp     float64 `json:"encode_ns_per_op"`
	EncodeIntoNsOp float64 `json:"encode_into_ns_per_op"`
	DecodeNsOp     float64 `json:"decode_ns_per_op"`
	// Heap traffic of the steady-state (EncodeInto, scratch-burst) encode
	// path, the one the phys run per column command; the target is 0.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

func main() {
	ops := flag.Int64("ops", 120, "memory operations per thread for the sweep")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "worker-pool width for the parallel sweep leg")
	suite := flag.String("suite", "MM,STRMATCH,GUPS", "comma-separated reduced workload suite")
	iters := flag.Int("codec-iters", 2000, "iterations per codec micro-benchmark")
	out := flag.String("out", "BENCH_sweep.json", "output JSON path (- for stdout)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	// Reject nonsense dials up front instead of silently misbehaving (a
	// zero op budget would fall back to the 6000-op default deep in the
	// stack, a negative -j would serialize without saying so).
	switch {
	case *ops <= 0:
		fatal(fmt.Errorf("-ops %d: the per-thread op budget must be positive", *ops))
	case *workers < 0:
		fatal(fmt.Errorf("-j %d: the worker-pool width cannot be negative (0 selects GOMAXPROCS)", *workers))
	case *iters <= 0:
		fatal(fmt.Errorf("-codec-iters %d: the micro-benchmark needs a positive iteration count", *iters))
	}
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}

	names := strings.Split(*suite, ",")
	trajectory := loadTrajectory(*out)
	rep := report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	// Both legs share one trace store: the serial leg records each front-end
	// timing class once, and every other cell replays, so the sweep's
	// fresh-simulation count is the number of distinct front ends, not the
	// number of cells.
	store := trace.NewStore()
	serial, rs, err := timeSweep(*ops, names, 1, store)
	if err != nil {
		fatal(err)
	}
	parallel, rp, err := timeSweep(*ops, names, *workers, store)
	if err != nil {
		fatal(err)
	}
	// Third leg: warm, serial, every cell a replay. Its wall-clock against
	// the fresh serial leg is the one number that answers "does replaying
	// beat simulating?" without timesharing distortion.
	replayLeg, rr, err := timeSweep(*ops, names, 1, store)
	if err != nil {
		fatal(err)
	}
	serialSims, _ := rs.Stats()
	parallelSims, _ := rp.Stats()
	serialHits, _ := rs.TraceStats()
	parallelHits, _ := rp.TraceStats()
	replayLegHits, _ := rr.TraceStats()
	fired, skipped := rs.LoopTotals()
	var clHits, clTrials, clMisses int64
	for _, r := range []*experiments.Runner{rs, rp, rr} {
		h, tr, m := r.ClusterStats()
		clHits, clTrials, clMisses = clHits+h, clTrials+tr, clMisses+m
	}
	rep.Sweep = sweepReport{
		MemOps:           *ops,
		Suite:            names,
		Tables:           len(experiments.Generators()),
		Simulations:      parallelSims,
		RecordedTraces:   int64(store.Streams()),
		TraceHits:        serialHits + parallelHits + replayLegHits,
		ClusterHits:      clHits,
		ClusterTrials:    clTrials,
		ClusterMisses:    clMisses,
		Workers:          *workers,
		SerialSeconds:    serial.Seconds(),
		ParallelSeconds:  parallel.Seconds(),
		Speedup:          serial.Seconds() / parallel.Seconds(),
		ReplayLegSeconds: replayLeg.Seconds(),
		ReplaySpeedup:    serial.Seconds() / replayLeg.Seconds(),
		EventsFired:      fired,
		CyclesSkipped:    skipped,
	}
	fmt.Fprintf(os.Stderr, "milbench: sweep serial %.2fs (%d recorded, %d replayed), -j %d %.2fs (%d fresh, %d replayed; %.2fx)\n",
		serial.Seconds(), serialSims, serialHits, *workers, parallel.Seconds(), parallelSims, parallelHits, rep.Sweep.Speedup)
	fmt.Fprintf(os.Stderr, "milbench: replay leg %.2fs warm at -j 1 (%d replays; %.2fx vs fresh serial)\n",
		replayLeg.Seconds(), replayLegHits, rep.Sweep.ReplaySpeedup)
	fmt.Fprintf(os.Stderr, "milbench: %d resident streams; cluster adopted %d classes in %d trials (%d recorded fresh)\n",
		rep.Sweep.RecordedTraces, clHits, clTrials, clMisses)
	// Guard the empty-timeline case (fired+skipped == 0 would print NaN),
	// and call fired what it is: landed events, not cycles.
	skippedPct := 0.0
	if total := fired + skipped; total > 0 {
		skippedPct = 100 * float64(skipped) / float64(total)
	}
	fmt.Fprintf(os.Stderr, "milbench: event core fired %d events, skipped %d cycles (%.1f%% of the timeline)\n",
		fired, skipped, skippedPct)

	for _, name := range code.Names() {
		ct, err := timeCodec(name, *iters)
		if err != nil {
			fatal(err)
		}
		rep.Codecs = append(rep.Codecs, ct)
		fmt.Fprintf(os.Stderr, "milbench: %-7s encode %7.0f ns/op (into %7.0f, %.1f allocs/op), decode %7.0f ns/op\n",
			ct.Name, ct.EncodeNsOp, ct.EncodeIntoNsOp, ct.AllocsPerOp, ct.DecodeNsOp)
	}

	if err := stopProf(); err != nil {
		fatal(err)
	}

	rep.Trajectory = trajectory
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "milbench: wrote %s\n", *out)
}

// timeSweep renders every experiment table from a cold result cache (the
// shared trace store is the only state crossing legs) and returns the
// wall-clock time plus the Runner for its counters.
func timeSweep(ops int64, suite []string, workers int, store *trace.Store) (time.Duration, *experiments.Runner, error) {
	r := experiments.NewRunner(ops)
	r.Suite = suite
	r.Workers = workers
	r.Traces = store
	start := time.Now()
	tables, err := r.All()
	if err != nil {
		return 0, nil, err
	}
	elapsed := time.Since(start)
	if len(tables) != len(experiments.Generators()) {
		return 0, nil, fmt.Errorf("sweep produced %d tables, want %d",
			len(tables), len(experiments.Generators()))
	}
	return elapsed, r, nil
}

// timeCodec measures one codec's encode and decode over random cache lines
// (random data is the worst case: nothing sparse to exploit).
func timeCodec(name string, iters int) (codecTimes, error) {
	c, err := code.ByName(name)
	if err != nil {
		return codecTimes{}, err
	}
	rng := rand.New(rand.NewSource(0x5eed))
	blocks := make([]bitblock.Block, 64)
	for i := range blocks {
		rng.Read(blocks[i][:])
	}

	start := time.Now()
	bursts := make([]*bitblock.Burst, iters)
	for i := 0; i < iters; i++ {
		bursts[i] = c.Encode(&blocks[i%len(blocks)])
	}
	encNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

	// Steady-state path: one scratch burst reused, as the phys do. Measure
	// wall-clock and heap traffic (mallocs/bytes) around the same loop.
	var scratch bitblock.Burst
	code.EncodeInto(c, &blocks[0], &scratch) // grow the scratch outside the window
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start = time.Now()
	for i := 0; i < iters; i++ {
		code.EncodeInto(c, &blocks[i%len(blocks)], &scratch)
	}
	intoNs := float64(time.Since(start).Nanoseconds()) / float64(iters)
	runtime.ReadMemStats(&m1)

	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := c.Decode(bursts[i]); err != nil {
			return codecTimes{}, fmt.Errorf("%s decode: %w", name, err)
		}
	}
	decNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

	return codecTimes{
		Name:           name,
		EncodeNsOp:     encNs,
		EncodeIntoNsOp: intoNs,
		DecodeNsOp:     decNs,
		AllocsPerOp:    float64(m1.Mallocs-m0.Mallocs) / float64(iters),
		BytesPerOp:     float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters),
	}, nil
}

// loadTrajectory reads the report currently at path (if any) and returns
// its trajectory with that report's own headline numbers appended — the
// history the next report should carry. Reports written before the
// trajectory existed stored exactly one generation under "previous"; that
// entry is migrated to the front so no recorded history is ever dropped.
func loadTrajectory(path string) []trajectoryEntry {
	if path == "-" {
		return nil
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var old struct {
		report
		Previous *trajectoryEntry `json:"previous"`
	}
	if err := json.Unmarshal(buf, &old); err != nil {
		return nil
	}
	traj := old.Trajectory
	if len(traj) == 0 && old.Previous != nil {
		traj = append(traj, *old.Previous)
	}
	return append(traj, trajectoryEntry{
		Generated:        old.Generated,
		SerialSeconds:    old.Sweep.SerialSeconds,
		ParallelSeconds:  old.Sweep.ParallelSeconds,
		ReplayLegSeconds: old.Sweep.ReplayLegSeconds,
		ReplaySpeedup:    old.Sweep.ReplaySpeedup,
		Simulations:      old.Sweep.Simulations,
		RecordedTraces:   old.Sweep.RecordedTraces,
		TraceHits:        old.Sweep.TraceHits,
		ClusterHits:      old.Sweep.ClusterHits,
		ClusterTrials:    old.Sweep.ClusterTrials,
		EventsFired:      old.Sweep.EventsFired,
		CyclesSkipped:    old.Sweep.CyclesSkipped,
		Codecs:           old.Codecs,
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "milbench:", err)
	os.Exit(1)
}
