// Command milcodec pushes data through any coding scheme, 64 bytes at a
// time, and reports the bit-level statistics a memory-interface designer
// cares about: zeros on a POD (DDR4) bus and wire toggles under
// flip-on-zero transition signaling (LPDDR3), per scheme.
//
// Usage:
//
//	milcodec [-schemes dbi,milc,lwc3] [file]
//
// Codec names resolve through the scheme registry (internal/scheme), so
// the stretched burst lengths bl12/bl14 are available alongside raw,
// dbi, milc, lwc3, and cafoN; the default runs every registered codec.
// With no file, a built-in mixed sample is used. Every block is decoded
// and checked against the original.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mil/internal/bitblock"
	"mil/internal/code"
	schemereg "mil/internal/scheme"
)

func main() {
	schemes := flag.String("schemes", strings.Join(schemereg.CodecNames(), ","),
		"comma-separated codec names (any name from the scheme registry)")
	flag.Parse()

	data := sampleData()
	if flag.NArg() > 0 {
		var err error
		data, err = os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
	}
	blocks := (len(data) + 63) / 64
	if blocks == 0 {
		log.Fatal("milcodec: empty input")
	}
	fmt.Printf("input: %d bytes (%d blocks)\n\n", len(data), blocks)
	fmt.Printf("%-10s %10s %10s %12s %12s %10s\n",
		"scheme", "beats", "bus bits", "zeros(POD)", "toggles(TS)", "vs dbi")

	var dbiZeros int64
	for _, name := range strings.Split(*schemes, ",") {
		c, err := schemereg.Codec(strings.TrimSpace(name))
		if err != nil {
			if errors.Is(err, schemereg.ErrUnknown) {
				fmt.Fprintf(os.Stderr, "milcodec: %v; the registry knows:\n\n", err)
				schemereg.WriteTable(os.Stderr)
				os.Exit(2)
			}
			log.Fatal(err)
		}
		var zeros, bits, toggles int64
		var ts bitblock.BusState
		for i := 0; i < blocks; i++ {
			end := (i + 1) * 64
			if end > len(data) {
				end = len(data)
			}
			blk := bitblock.FromBytes(data[i*64 : end])
			bu := c.Encode(&blk)
			if got, err := c.Decode(bu); err != nil || got != blk {
				log.Fatalf("milcodec: %s corrupted block %d (%v)", c.Name(), i, err)
			}
			zeros += int64(bu.CountZeros())
			bits += int64(bu.TotalBits())
			wire := code.SignalTransitions(bu, &ts)
			_ = wire // toggles on the wire equal the coded zeros
			toggles += int64(bu.CountZeros())
		}
		if c.Name() == "dbi" {
			dbiZeros = zeros
		}
		rel := "-"
		if dbiZeros > 0 {
			rel = fmt.Sprintf("%.3f", float64(zeros)/float64(dbiZeros))
		}
		fmt.Printf("%-10s %10d %10d %12d %12d %10s\n",
			c.Name(), c.Beats(), bits, zeros, toggles, rel)
	}
}

// sampleData mixes text, small integers, and floats.
func sampleData() []byte {
	var out []byte
	out = append(out, []byte(strings.Repeat("opportunistic sparse coding. ", 40))...)
	for i := 0; i < 512; i++ {
		out = append(out, byte(i), byte(i>>8), 0, 0, 0, 0, 0, 0)
	}
	return out
}
