// The quickstart example exercises the coding data path alone: it encodes
// three characteristic cache blocks with every scheme, verifies the
// round trip, and reports the transmitted zeros - the quantity the DDR4 IO
// energy is proportional to.
package main

import (
	"fmt"
	"log"

	"mil"
)

func main() {
	samples := map[string]mil.Block{
		// ASCII text: every byte's top bit is zero.
		"text": mil.BlockFromBytes([]byte(
			"more is less: opportunistic sparse codes on the DDR4 data bus!!")),
		// Small 64-bit counters: upper bytes all zero.
		"counters": counters(),
		// Spatially correlated rows: repeated balanced bytes.
		"correlated": repeated(0xa5),
	}

	schemes := []string{"raw", "dbi", "milc", "lwc3", "cafo2", "cafo4"}
	fmt.Printf("%-12s", "block")
	for _, s := range schemes {
		fmt.Printf("%10s", s)
	}
	fmt.Println()

	for _, name := range []string{"text", "counters", "correlated"} {
		blk := samples[name]
		fmt.Printf("%-12s", name)
		for _, s := range schemes {
			c, err := mil.NewCodec(s)
			if err != nil {
				log.Fatal(err)
			}
			burst := c.Encode(&blk)
			if got, err := c.Decode(burst); err != nil || got != blk {
				log.Fatalf("%s failed to round-trip %s (%v)", s, name, err)
			}
			fmt.Printf("%7d/%-2d", burst.CountZeros(), burst.Beats)
		}
		fmt.Println()
	}
	fmt.Println("\ncells are zeros/burst-beats; fewer zeros = less DDR4 IO energy,")
	fmt.Println("more beats = more bus time (the trade MiL navigates opportunistically)")
}

func counters() mil.Block {
	var p [64]byte
	for i := 0; i < 8; i++ {
		p[i*8] = byte(i * 13) // low byte holds a small count
	}
	return mil.BlockFromBytes(p[:])
}

func repeated(b byte) mil.Block {
	var p [64]byte
	for i := range p {
		p[i] = b
	}
	return mil.BlockFromBytes(p[:])
}
