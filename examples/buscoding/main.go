// The buscoding example reproduces the Section 3.2 potential study on user
// data: it builds optimal static (8,k) limited-weight codes from the
// byte-value distribution of a file (or a built-in text sample) and reports
// how many zeros each code would transmit relative to the raw bytes and to
// DBI - the headroom that motivates MiL.
//
// Usage: buscoding [file]
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"mil/internal/code"
)

func main() {
	data := []byte(strings.Repeat(
		"The quick brown fox jumps over the lazy dog. 0123456789 -- ", 200))
	if len(os.Args) > 1 {
		var err error
		data, err = os.ReadFile(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("input: %s (%d bytes)\n", os.Args[1], len(data))
	} else {
		fmt.Printf("input: built-in text sample (%d bytes)\n", len(data))
	}

	var freq [256]uint64
	for _, b := range data {
		freq[b]++
	}
	raw := float64(code.RawZeros(&freq))
	if raw == 0 {
		log.Fatal("input has no zeros to save")
	}

	fmt.Printf("\n%-8s %12s %14s %16s\n", "code", "bits/byte", "zeros vs raw", "zeros vs DBI")
	dbi := float64(code.DBIZeros(&freq))
	fmt.Printf("%-8s %12d %13.1f%% %15.1f%%\n", "raw", 8, 100.0, 100*raw/dbi)
	fmt.Printf("%-8s %12d %13.1f%% %15.1f%%\n", "dbi", 9, 100*dbi/raw, 100.0)
	for k := 9; k <= 17; k++ {
		c, err := code.NewStaticLWC(k, &freq)
		if err != nil {
			log.Fatal(err)
		}
		z := float64(c.WeightedZeros(&freq))
		fmt.Printf("(8,%-2d) %13d %13.1f%% %15.1f%%\n", k, k, 100*z/raw, 100*z/dbi)
	}
	fmt.Println("\nwider codewords cost bandwidth; MiL spends idle bus cycles to get them free")
}
