// The microserver example runs the DDR4-3200 Niagara-like system (Table 2)
// on GUPS - the suite's most bandwidth-hostile workload - under the DBI
// baseline and under MiL, and reports the headline trade: IO energy falls
// by roughly half while execution time moves only a few percent.
package main

import (
	"fmt"
	"log"

	"mil"
)

func main() {
	run := func(scheme string) *mil.Result {
		res, err := mil.Run(mil.Config{
			System:          mil.Server,
			Scheme:          scheme,
			Benchmark:       "GUPS",
			MemOpsPerThread: 2000,
			Verify:          true, // decode-check every burst
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run("baseline")
	milres := run("mil")

	fmt.Println("GUPS on the DDR4 microserver, DBI baseline vs MiL")
	fmt.Printf("%-28s %14s %14s %9s\n", "", "baseline", "mil", "ratio")
	row := func(name string, b, m float64) {
		fmt.Printf("%-28s %14.4g %14.4g %8.3f\n", name, b, m, m/b)
	}
	row("execution time (CPU cycles)", float64(base.CPUCycles), float64(milres.CPUCycles))
	row("transmitted zeros", float64(base.Mem.Zeros), float64(milres.Mem.Zeros))
	row("IO energy (J)", base.DRAM.IO, milres.DRAM.IO)
	row("DRAM energy (J)", base.DRAM.Total(), milres.DRAM.Total())
	row("system energy (J)", base.SystemJ(), milres.SystemJ())

	total := float64(milres.Mem.ColumnCommands())
	fmt.Printf("\nMiL codec mix: %.1f%% MiLC (BL10), %.1f%% 3-LWC (BL16)\n",
		100*float64(milres.Mem.CodecBursts["milc"])/total,
		100*float64(milres.Mem.CodecBursts["lwc3"])/total)
	fmt.Printf("bus utilization: %.1f%% -> %.1f%%  (more bits moved, less energy: more is less)\n",
		100*base.BusUtilization(), 100*milres.BusUtilization())
}
