// The mobile example runs the LPDDR3-1600 Snapdragon-like system (Table 2)
// on SWIM. The unterminated LPDDR3 bus pays energy per wire toggle, so MiL
// first applies flip-on-zero transition signaling (Section 4.5) - making
// toggles equal coded zeros - and then the same sparse codes as on DDR4.
// Because LPDDR3's background power is lean, the IO savings translate into
// a much larger share of DRAM energy than on the server.
package main

import (
	"fmt"
	"log"

	"mil"
)

func main() {
	run := func(scheme string) *mil.Result {
		res, err := mil.Run(mil.Config{
			System:          mil.Mobile,
			Scheme:          scheme,
			Benchmark:       "SWIM",
			MemOpsPerThread: 1500,
			Verify:          true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run("baseline") // DBI carried by transition signaling
	milres := run("mil")    // transition signaling + MiLC/3-LWC

	fmt.Println("SWIM on the LPDDR3 mobile system, DBI baseline vs MiL")
	fmt.Printf("%-28s %14s %14s %9s\n", "", "baseline", "mil", "ratio")
	row := func(name string, b, m float64) {
		fmt.Printf("%-28s %14.4g %14.4g %8.3f\n", name, b, m, m/b)
	}
	row("execution time (CPU cycles)", float64(base.CPUCycles), float64(milres.CPUCycles))
	row("wire transitions", float64(base.Mem.CostUnits), float64(milres.Mem.CostUnits))
	row("IO energy (J)", base.DRAM.IO, milres.DRAM.IO)
	row("DRAM energy (J)", base.DRAM.Total(), milres.DRAM.Total())
	row("system energy (J)", base.SystemJ(), milres.SystemJ())
	fmt.Printf("\nIO share of DRAM energy: %.1f%% (baseline) -> %.1f%% (mil)\n",
		100*base.DRAM.IO/base.DRAM.Total(), 100*milres.DRAM.IO/milres.DRAM.Total())
}
