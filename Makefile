# Tier-1 verification for the MiL simulator. `make verify` is the gate a
# change must pass: build, vet, the full test suite, and the race detector.
# The sweep engine runs simulations concurrently, so the race pass first
# targets the packages that carry the concurrency (experiments, sim,
# workload) and then sweeps the rest of the tree.

GO ?= go

.PHONY: all build vet test race verify kernelcheck registrycheck cover fuzz bench benchdiff profile golden experiments clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/experiments/ ./internal/sim/ ./internal/workload/ ./internal/obs/ ./internal/trace/
	$(GO) test -race ./...

verify: build vet test race kernelcheck registrycheck

# The kernel-layer referee, run explicitly as part of verify: the
# differential fuzz seed corpus (word-parallel counters vs bit-at-a-time
# references) plus the probe/scratch equivalence and zero-alloc checks.
kernelcheck:
	$(GO) test -run 'FuzzKernelEquivalence|TestCostZerosEquivalence|TestEncodeIntoMatchesEncode|TestSteadyStateZeroAllocs|TestOptMem|TestVLWC|TestZAD|TestDecodeRejectsForeignDrivenMask' -count=1 ./internal/code/

# The registry-drift referee: the scheme registry must keep every
# pre-registry contract byte for byte — timing classes against the frozen
# legacy switch, codec parity with code.ByName, the front-end/cluster key
# golden for all schemes, and the epoch-feedback zero-cost gate.
registrycheck:
	$(GO) test -count=1 ./internal/scheme/
	$(GO) test -run 'TestFrontEndKeyGolden' -count=1 ./internal/sim/
	$(GO) test -run 'TestEpochFeedback|TestEpochLength' -count=1 ./internal/memctrl/

# Coverage gate: one instrumented run of the full suite, the repo-wide
# statement coverage (CI publishes it in the job summary), and a hard
# >= 90% floor on internal/trace — the record/replay container and the
# cluster/LRU store must stay measurably tested, since a quiet decode or
# eviction bug there corrupts or silently discards every replay.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@awk 'NR>1 { total+=$$2; if ($$3>0) hit+=$$2; \
	             if ($$1 ~ /^mil\/internal\/trace\//) { t+=$$2; if ($$3>0) th+=$$2 } } \
	     END { printf "repo-wide statement coverage: %.1f%%\n", 100*hit/total; \
	           pct = t ? 100*th/t : 0; \
	           printf "internal/trace statement coverage: %.1f%%\n", pct; \
	           if (pct < 90) { print "internal/trace coverage is below the 90% floor"; exit 1 } }' cover.out

# Short fuzz passes over the codec round-trip, corrupted-decode, kernel
# equivalence, and trace-container properties; CI-sized, not exhaustive.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzRoundTrip -fuzztime=30s ./internal/code/
	$(GO) test -run=NONE -fuzz=FuzzDecodeCorrupted -fuzztime=30s ./internal/code/
	$(GO) test -run=NONE -fuzz=FuzzDecodeDims -fuzztime=30s ./internal/code/
	$(GO) test -run=NONE -fuzz=FuzzKernelEquivalence -fuzztime=30s ./internal/code/
	$(GO) test -run=NONE -fuzz=FuzzTraceRoundTrip -fuzztime=30s ./internal/trace/

# Machine-readable sweep + codec timings (BENCH_sweep.json), the replay
# fast-path benchmark with allocation counts (BenchmarkReplay must stay
# decisively under BenchmarkFreshSim — DESIGN.md §5.12), then the go
# test benchmarks for spot numbers.
bench:
	$(GO) run ./cmd/milbench -j 8 -out BENCH_sweep.json
	$(GO) test -run=NONE -bench 'BenchmarkReplay|BenchmarkFreshSim' -benchmem -benchtime=1x ./internal/sim/
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Before/after comparison of the codec micro-benchmarks. Usage: run
# `make benchdiff` on the base commit (seeds bench.old.txt), switch to the
# change, run it again; it diffs via benchstat when installed and otherwise
# leaves the raw files side by side.
BENCHPKGS = ./internal/code/
benchdiff:
	@if [ -f bench.old.txt ]; then \
		$(GO) test -run=NONE -bench 'BenchmarkEncode|BenchmarkDecode|BenchmarkCostZeros' -benchmem -count=6 $(BENCHPKGS) | tee bench.new.txt; \
		if command -v benchstat >/dev/null 2>&1; then \
			benchstat bench.old.txt bench.new.txt; \
		else \
			echo "benchdiff: benchstat not installed; compare bench.old.txt vs bench.new.txt by hand"; \
		fi \
	else \
		$(GO) test -run=NONE -bench 'BenchmarkEncode|BenchmarkDecode|BenchmarkCostZeros' -benchmem -count=6 $(BENCHPKGS) | tee bench.old.txt; \
		echo "benchdiff: baseline saved to bench.old.txt; re-run after your change"; \
	fi

# CPU-profile the reduced sweep and print the top-10 cumulative functions.
# Profiles land under the gitignored prof/ directory, never the repo root.
profile:
	mkdir -p prof
	$(GO) run ./cmd/milbench -ops 60 -codec-iters 20000 -out /tmp/mil_profile_bench.json -cpuprofile prof/cpu.pprof -memprofile prof/mem.pprof
	$(GO) tool pprof -top -cum -nodecount=10 prof/cpu.pprof

# Re-bless the golden snapshots after an intentional model change: the
# experiment tables (internal/experiments/testdata/golden/), the
# observability artifacts (internal/sim/testdata/obs/), the
# checkpoint-format golden (internal/sim/testdata/snap/), and the
# front-end key snapshot (internal/sim/testdata/keys/). Review the
# diffs; a checkpoint-golden change also warrants a snap.Version bump,
# and a keys change orphans recorded trace streams.
golden:
	$(GO) test ./internal/experiments/ -run TestGolden -update
	$(GO) test ./internal/sim/ -run 'TestObsGolden|TestSnapshotGolden|TestFrontEndKeyGolden' -update

# Regenerate EXPERIMENTS.md (all figures and tables; slow).
experiments:
	$(GO) run ./cmd/milexp -out EXPERIMENTS.md

clean:
	$(GO) clean ./...
