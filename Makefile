# Tier-1 verification for the MiL simulator. `make verify` is the gate a
# change must pass: build, vet, the full test suite, and the same suite
# under the race detector (the simulator is single-threaded by design, so
# any race is a bug in test plumbing or a future parallelization hazard).

GO ?= go

.PHONY: all build vet test race verify fuzz bench experiments clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify: build vet test race

# Short fuzz passes over the codec round-trip and corrupted-decode
# properties; CI-sized, not exhaustive.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzRoundTrip -fuzztime=30s ./internal/code/
	$(GO) test -run=NONE -fuzz=FuzzDecodeCorrupted -fuzztime=30s ./internal/code/

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Regenerate EXPERIMENTS.md (all figures and tables; slow).
experiments:
	$(GO) run ./cmd/milexp -out EXPERIMENTS.md

clean:
	$(GO) clean ./...
