# Tier-1 verification for the MiL simulator. `make verify` is the gate a
# change must pass: build, vet, the full test suite, and the race detector.
# The sweep engine runs simulations concurrently, so the race pass first
# targets the packages that carry the concurrency (experiments, sim,
# workload) and then sweeps the rest of the tree.

GO ?= go

.PHONY: all build vet test race verify fuzz bench golden experiments clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/experiments/ ./internal/sim/ ./internal/workload/
	$(GO) test -race ./...

verify: build vet test race

# Short fuzz passes over the codec round-trip and corrupted-decode
# properties; CI-sized, not exhaustive.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzRoundTrip -fuzztime=30s ./internal/code/
	$(GO) test -run=NONE -fuzz=FuzzDecodeCorrupted -fuzztime=30s ./internal/code/

# Machine-readable sweep + codec timings (BENCH_sweep.json), then the go
# test benchmarks for spot numbers.
bench:
	$(GO) run ./cmd/milbench -j 8 -out BENCH_sweep.json
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Re-bless the golden experiment snapshots after an intentional model
# change; review the diff under internal/experiments/testdata/golden/.
golden:
	$(GO) test ./internal/experiments/ -run TestGolden -update

# Regenerate EXPERIMENTS.md (all figures and tables; slow).
experiments:
	$(GO) run ./cmd/milexp -out EXPERIMENTS.md

clean:
	$(GO) clean ./...
