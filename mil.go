// Package mil is the public facade of the MiL ("More is Less", MICRO 2015)
// reproduction: opportunistic sparse coding over DDR4/LPDDR3 memory
// interfaces. It exposes the coding schemes (DBI, BI, 3-LWC, MiLC, CAFO,
// transition signaling), the two evaluated platforms, and a one-call
// simulator that reports performance, bus, and energy results.
//
// Quick start:
//
//	res, err := mil.Run(mil.Config{
//		System:    mil.Server,
//		Scheme:    "mil",
//		Benchmark: "GUPS",
//	})
//
// or, for the data path alone:
//
//	codec, _ := mil.NewCodec("milc")
//	burst := codec.Encode(&block) // count zeros, decode, ...
package mil

import (
	"fmt"

	"mil/internal/bitblock"
	"mil/internal/code"
	"mil/internal/fault"
	"mil/internal/memctrl"
	"mil/internal/scheme"
	"mil/internal/sim"
	"mil/internal/workload"
)

// Block is a 512-bit cache block, the unit every codec operates on.
type Block = bitblock.Block

// Burst is the bit-level appearance of a coded block on the bus.
type Burst = bitblock.Burst

// Codec is a block coding scheme; see NewCodec.
type Codec = code.Codec

// SystemKind selects one of the evaluated platforms.
type SystemKind = sim.SystemKind

// The evaluated platforms of Table 2.
const (
	// Server is the Niagara-like microserver with DDR4-3200.
	Server = sim.Server
	// Mobile is the Snapdragon-like system with LPDDR3-1600.
	Mobile = sim.Mobile
)

// Result is a finished simulation; see the sim package for field docs.
type Result = sim.Result

// FaultConfig parameterizes link-error injection: random bit errors (BER),
// correlated burst errors, and stuck lanes. The zero value is a reliable
// link. See the fault package for field docs.
type FaultConfig = fault.Config

// RetryConfig bounds the controller's NACK-and-replay path; zero fields
// select the defaults. See the memctrl package for field docs.
type RetryConfig = memctrl.RetryConfig

// Config describes one simulation run.
type Config struct {
	// System picks the platform (Server or Mobile).
	System SystemKind
	// Scheme is a coding configuration from Schemes().
	Scheme string
	// Benchmark is a workload from Benchmarks().
	Benchmark string
	// MemOpsPerThread sets the run length (0 = default).
	MemOpsPerThread int64
	// LookaheadX overrides MiL's look-ahead distance when > 0.
	LookaheadX int
	// Verify decodes and checks every burst (slower; for validation).
	Verify bool

	// Fault injects link errors; the zero value is a clean link and the
	// whole fault path is a guaranteed no-op.
	Fault FaultConfig
	// WriteCRC enables DDR4 write CRC with NACK-and-replay (Server only).
	WriteCRC bool
	// CAParity enables DDR4 command/address parity (Server only).
	CAParity bool
	// Retry bounds the replay of NACKed transfers.
	Retry RetryConfig
	// Seed makes every stochastic path of the run reproducible (0 = the
	// legacy benchmark-derived streams).
	Seed uint64
}

// Run executes one configuration to completion.
func Run(cfg Config) (*Result, error) {
	b, err := workload.ByName(cfg.Benchmark)
	if err != nil {
		return nil, fmt.Errorf("mil: %w", err)
	}
	return sim.Run(sim.Config{
		System:          cfg.System,
		Scheme:          cfg.Scheme,
		Benchmark:       b,
		MemOpsPerThread: cfg.MemOpsPerThread,
		LookaheadX:      cfg.LookaheadX,
		Verify:          cfg.Verify,
		Fault:           cfg.Fault,
		WriteCRC:        cfg.WriteCRC,
		CAParity:        cfg.CAParity,
		Retry:           cfg.Retry,
		Seed:            cfg.Seed,
	})
}

// Benchmarks lists the Table 3 workload suite.
func Benchmarks() []string { return workload.Names() }

// Schemes lists the coding configurations Run accepts.
func Schemes() []string { return sim.SchemeNames() }

// NewCodec constructs a standalone codec by name: "raw", "dbi", "milc",
// "lwc3", "cafoN", or the stretched burst lengths "bl12"/"bl14".
func NewCodec(name string) (Codec, error) { return scheme.Codec(name) }

// BlockFromBytes builds a Block from up to 64 bytes (zero padded).
func BlockFromBytes(p []byte) Block { return bitblock.FromBytes(p) }
